// optrep_cli — run parameterized replication workloads from the command line.
//
//   optrep_cli state   [options]  drive a state-transfer system (BRV/CRV/SRV)
//   optrep_cli op      [options]  drive an operation-transfer system (SYNCG)
//   optrep_cli records [options]  drive a keyed record store with
//                                 semantic-over-syntactic conflict detection
//   optrep_cli sweep   [options]  run K independent state-transfer runs with
//                                 split seeds, sharded across a thread pool;
//                                 rows come out in run order for any
//                                 --threads value and per-worker metrics are
//                                 merged after the join
//   optrep_cli scenario [options] run a large-world gossip scenario: 10^4–10^6
//                                 sites on a mesh topology, arena-backed
//                                 replicas, scripted churn / partition-heal /
//                                 flash-crowd phases (src/sim/scenario.h)
//
// Common options:
//   --sites=N --objects=N --steps=N --update-prob=F --seed=N
//   --topology=gossip|ring|star|clustered
//   --mode=ideal|saw|pipelined [--latency-ms=F --bandwidth=BITS_PER_S]
//   --csv           one machine-readable result row (with header)
//   --json          full run report (schema optrep.run/v1, see
//                   docs/OBSERVABILITY.md): workload tags, totals, Table 2
//                   bound checks, and the system's metrics registry
//   --trace-out=F   write the structured protocol event trace to F as JSON
//                   (state and records commands; op has no vv sessions)
//   --profile-out=F write the wall-clock span profile to F as Chrome-trace /
//                   Perfetto JSON (schema optrep.profile/v1; open in
//                   chrome://tracing or ui.perfetto.dev). Also feeds
//                   "<span>.wall_ns" histograms into the run's metrics
//   --timeline-out=F      write a time-series timeline of the run's metrics —
//                         including the repl.divergence convergence probe —
//                         to F (schema optrep.timeline/v1; state and sweep).
//                         state samples every --sample-every sessions; sweep
//                         emits one sample per run, byte-identical for any
//                         --threads value
//   --sample-every=N      timeline sampling period in sync sessions (state;
//                         default 16; must be a positive integer)
//   --causal-out=F        write the causal propagation trace to F (schema
//                         optrep.causal/v1, see docs/OBSERVABILITY.md): one
//                         trace per originating update, spans per sync hop /
//                         retry attempt, wire + fault + apply edges, kDeliver
//                         and kConverge closure events. state writes one run;
//                         sweep writes a "runs" array assembled in config
//                         order, byte-identical for any --threads value. Feed
//                         the file to tools/optrep_trace for propagation
//                         trees and the convergence critical path
//   --dump-on-violation=F arm a protocol flight recorder and write the frozen
//                         ring of the last protocol events to F (schema
//                         optrep.flight/v1) when a Table 2 bound violation,
//                         typed decode error, or retry exhaustion fires
//                         (state and sweep)
// state options:
//   --kind=brv|crv|srv   --manual   (manual conflict resolution)
// op options:
//   --log-limit=N        (hybrid transfer; 0 = unlimited)
//   --full-graph         (baseline instead of SYNCG)
// records options:
//   --overlap=F --key-pool=N   (shared-key write probability / pool size)
//   --flag                     (flag true conflicts instead of LWW)
// sweep options:
//   --seeds=K            number of independent runs (seed_k = task_seed(seed, k))
//   --threads=N          worker threads (> 0); for 'state' this also selects
//                        the sharded parallel batch engine (even at N=1)
// scenario options:
//   --algo=brv|crv|srv|syncg   replication algorithm (default srv)
//   --writers=N          writer-pool size (bounds vector width; brv and syncg
//                        require exactly 1)
//   --mesh=ring|small-world|scale-free|geo   topology family (default ring)
//   --degree=N           mesh degree knob (lattice k / BA attachment m)
//   --script=S           named preset (converge | partition-heal | churn |
//                        flash-crowd) or a phase list like
//                        "warmup:64,quiesce,partition,warmup:32,quiesce,heal,quiesce"
//   scenario also honors --sites, --seed, --mode/--latency-ms/--bandwidth,
//   --csv/--json, and --timeline-out/--sample-every (samples every N rounds)
// fault options (state, records, sweep):
//   --loss=P --dup=P --reorder=P --corrupt=P   per-message fault probabilities
//   --fault-seed=N       fault stream seed (independent of --seed)
//
// Examples:
//   optrep_cli state --kind=srv --sites=32 --steps=5000 --update-prob=0.7
//   optrep_cli op --sites=12 --log-limit=64 --csv
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "obs/causal.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/prof.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "repl/record_system.h"
#include "rt/sweep.h"
#include "rt/thread_pool.h"
#include "tools/cli_util.h"
#include "workload/report.h"
#include "workload/scenario.h"
#include "workload/trace.h"

using namespace optrep;

namespace {

struct Args {
  std::string command;
  std::uint32_t sites{16};
  std::uint32_t objects{1};
  std::uint32_t steps{2000};
  double update_prob{0.5};
  std::uint64_t seed{1};
  wl::Topology topology{wl::Topology::kRandomGossip};
  vv::TransferMode mode{vv::TransferMode::kIdeal};
  double latency_ms{0};
  double bandwidth{0};  // 0 = infinite
  vv::VectorKind kind{vv::VectorKind::kSrv};
  bool manual{false};
  std::uint32_t log_limit{0};
  bool full_graph{false};
  bool csv{false};
  bool json{false};
  std::string trace_out;
  std::string profile_out;
  // Time-series telemetry + flight recorder (state and sweep commands).
  std::string timeline_out;
  std::uint32_t sample_every{16};
  std::string dump_out;
  std::string causal_out;
  double overlap{0.2};
  std::uint32_t key_pool{16};
  bool flag_policy{false};
  std::uint32_t sweep_seeds{8};
  unsigned threads{1};
  // 'state': an explicit --threads routes through the sharded batch engine
  // (StateSystem::run_batch) even at N=1, so t1 output is byte-comparable
  // against tN output of the same engine.
  bool threads_set{false};
  // Fault injection (state/records/sweep; op has no recovery path).
  double loss{0};
  double dup{0};
  double reorder{0};
  double corrupt{0};
  std::uint64_t fault_seed{1};
  // 'scenario': large-world gossip engine (src/sim/scenario.h).
  sim::ScenarioAlgo algo{sim::ScenarioAlgo::kSrv};
  std::uint32_t writers{8};
  sim::MeshKind mesh{sim::MeshKind::kRing};
  std::uint32_t degree{1};
  std::string script{"converge"};
  // Option names seen on the command line (through the '='), for
  // command/flag compatibility checks after the parse loop.
  std::vector<std::string> seen;

  bool saw(std::string_view name) const {
    for (const std::string& s : seen) {
      if (s == name) return true;
    }
    return false;
  }

  bool faults_requested() const {
    return loss > 0 || dup > 0 || reorder > 0 || corrupt > 0;
  }
};

[[noreturn]] void usage(const char* msg) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage: optrep_cli <state|op|records|sweep|scenario> [--sites=N] [--objects=N]\n"
               "       [--steps=N] [--update-prob=F] [--seed=N]\n"
               "       [--topology=gossip|ring|star|clustered]\n"
               "       [--mode=ideal|saw|pipelined] [--latency-ms=F] [--bandwidth=F]\n"
               "       [--kind=brv|crv|srv] [--manual] [--log-limit=N] [--full-graph]\n"
               "       [--csv] [--json] [--trace-out=FILE] [--profile-out=FILE]\n"
               "       [--timeline-out=FILE] [--sample-every=N] [--dump-on-violation=FILE]\n"
               "       [--causal-out=FILE]\n"
               "       [--seeds=K] [--threads=N]\n"
               "       [--loss=P] [--dup=P] [--reorder=P] [--corrupt=P] [--fault-seed=N]\n"
               "       [--algo=brv|crv|srv|syncg] [--writers=N]\n"
               "       [--mesh=ring|small-world|scale-free|geo] [--degree=N] [--script=S]\n");
  std::exit(2);
}

using cli::take;  // the shared --name[=value] matcher (tools/cli_util.h)

Args parse(int argc, char** argv) {
  if (argc < 2) usage("missing command");
  Args a;
  a.command = argv[1];
  if (a.command != "state" && a.command != "op" && a.command != "records" &&
      a.command != "sweep" && a.command != "scenario") {
    usage("command must be 'state', 'op', 'records', 'sweep' or 'scenario'");
  }
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    a.seen.emplace_back(arg.substr(0, arg.find('=')));
    std::string v;
    if (take(argv[i], "--sites", &v)) {
      a.sites = static_cast<std::uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (take(argv[i], "--objects", &v)) {
      a.objects = static_cast<std::uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (take(argv[i], "--steps", &v)) {
      a.steps = static_cast<std::uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (take(argv[i], "--update-prob", &v)) {
      a.update_prob = std::strtod(v.c_str(), nullptr);
    } else if (take(argv[i], "--seed", &v)) {
      a.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (take(argv[i], "--topology", &v)) {
      if (v == "gossip") a.topology = wl::Topology::kRandomGossip;
      else if (v == "ring") a.topology = wl::Topology::kRing;
      else if (v == "star") a.topology = wl::Topology::kStar;
      else if (v == "clustered") a.topology = wl::Topology::kClustered;
      else usage("unknown topology");
    } else if (take(argv[i], "--mode", &v)) {
      if (v == "ideal") a.mode = vv::TransferMode::kIdeal;
      else if (v == "saw") a.mode = vv::TransferMode::kStopAndWait;
      else if (v == "pipelined") a.mode = vv::TransferMode::kPipelined;
      else usage("unknown mode");
    } else if (take(argv[i], "--latency-ms", &v)) {
      a.latency_ms = std::strtod(v.c_str(), nullptr);
    } else if (take(argv[i], "--bandwidth", &v)) {
      a.bandwidth = std::strtod(v.c_str(), nullptr);
    } else if (take(argv[i], "--kind", &v)) {
      if (v == "brv") a.kind = vv::VectorKind::kBrv;
      else if (v == "crv") a.kind = vv::VectorKind::kCrv;
      else if (v == "srv") a.kind = vv::VectorKind::kSrv;
      else usage("unknown kind");
    } else if (take(argv[i], "--manual", &v)) {
      a.manual = true;
    } else if (take(argv[i], "--log-limit", &v)) {
      a.log_limit = static_cast<std::uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (take(argv[i], "--full-graph", &v)) {
      a.full_graph = true;
    } else if (take(argv[i], "--csv", &v)) {
      a.csv = true;
    } else if (take(argv[i], "--json", &v)) {
      a.json = true;
    } else if (take(argv[i], "--trace-out", &v)) {
      if (v.empty()) usage("--trace-out needs a file path");
      a.trace_out = v;
    } else if (take(argv[i], "--profile-out", &v)) {
      if (v.empty()) usage("--profile-out needs a file path");
      a.profile_out = v;
    } else if (take(argv[i], "--timeline-out", &v)) {
      if (v.empty()) usage("--timeline-out needs a file path");
      a.timeline_out = v;
    } else if (take(argv[i], "--sample-every", &v)) {
      a.sample_every = cli::parse_positive_u32(
          v, usage, "--sample-every must be a positive integer (sessions per sample)");
    } else if (take(argv[i], "--dump-on-violation", &v)) {
      if (v.empty()) usage("--dump-on-violation needs a file path");
      a.dump_out = v;
    } else if (take(argv[i], "--causal-out", &v)) {
      if (v.empty()) usage("--causal-out needs a file path");
      a.causal_out = v;
    } else if (take(argv[i], "--overlap", &v)) {
      a.overlap = std::strtod(v.c_str(), nullptr);
    } else if (take(argv[i], "--key-pool", &v)) {
      a.key_pool = static_cast<std::uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (take(argv[i], "--flag", &v)) {
      a.flag_policy = true;
    } else if (take(argv[i], "--loss", &v)) {
      a.loss = std::strtod(v.c_str(), nullptr);
    } else if (take(argv[i], "--dup", &v)) {
      a.dup = std::strtod(v.c_str(), nullptr);
    } else if (take(argv[i], "--reorder", &v)) {
      a.reorder = std::strtod(v.c_str(), nullptr);
    } else if (take(argv[i], "--corrupt", &v)) {
      a.corrupt = std::strtod(v.c_str(), nullptr);
    } else if (take(argv[i], "--fault-seed", &v)) {
      a.fault_seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (take(argv[i], "--seeds", &v)) {
      a.sweep_seeds = static_cast<std::uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (take(argv[i], "--algo", &v)) {
      if (v == "brv") a.algo = sim::ScenarioAlgo::kBrv;
      else if (v == "crv") a.algo = sim::ScenarioAlgo::kCrv;
      else if (v == "srv") a.algo = sim::ScenarioAlgo::kSrv;
      else if (v == "syncg") a.algo = sim::ScenarioAlgo::kSyncg;
      else usage("unknown algo (brv|crv|srv|syncg)");
    } else if (take(argv[i], "--writers", &v)) {
      a.writers = cli::parse_positive_u32(v, usage, "--writers must be a positive integer");
    } else if (take(argv[i], "--mesh", &v)) {
      if (v == "ring") a.mesh = sim::MeshKind::kRing;
      else if (v == "small-world") a.mesh = sim::MeshKind::kSmallWorld;
      else if (v == "scale-free") a.mesh = sim::MeshKind::kScaleFree;
      else if (v == "geo") a.mesh = sim::MeshKind::kGeoClustered;
      else usage("unknown mesh (ring|small-world|scale-free|geo)");
    } else if (take(argv[i], "--degree", &v)) {
      a.degree = cli::parse_positive_u32(v, usage, "--degree must be a positive integer");
    } else if (take(argv[i], "--script", &v)) {
      if (v.empty()) usage("--script needs a preset name or phase list");
      a.script = v;
    } else if (take(argv[i], "--threads", &v)) {
      // Parse signed first: strtoul silently wraps "-4" into a huge worker
      // count, and a trailing-garbage value ("4x") should be an error, not 4.
      char* end = nullptr;
      const long long n = std::strtoll(v.c_str(), &end, 10);
      if (v.empty() || end == nullptr || *end != '\0' || n <= 0 ||
          n > std::numeric_limits<unsigned>::max()) {
        usage("--threads must be a positive integer worker count");
      }
      a.threads = static_cast<unsigned>(n);
      a.threads_set = true;
    } else {
      usage((std::string("unknown option: ") + argv[i]).c_str());
    }
  }
  if (a.sites < 2) usage("--sites must be >= 2");
  if (a.objects < 1) usage("--objects must be >= 1");
  if (a.csv && a.json) usage("--csv and --json are mutually exclusive");
  if (!a.trace_out.empty() && a.command == "op") {
    usage("--trace-out applies to vector sessions; 'op' runs have none");
  }
  if (!a.timeline_out.empty() && a.command != "state" && a.command != "sweep" &&
      a.command != "scenario") {
    usage("--timeline-out applies to 'state', 'sweep' and 'scenario' runs");
  }
  if ((!a.dump_out.empty() || !a.causal_out.empty()) && a.command != "state" &&
      a.command != "sweep") {
    usage("--dump-on-violation / --causal-out apply to 'state' and 'sweep' runs");
  }
  if (a.command == "scenario") {
    // The scenario engine has its own workload model (writer pool + phase
    // script on a mesh) and its own instruments; every trace-style or
    // fault-injection flag below belongs to the per-step systems.
    static constexpr const char* kBanned[] = {
        "--kind",         "--manual",    "--topology",          "--objects",
        "--steps",        "--update-prob", "--trace-out",       "--profile-out",
        "--causal-out",   "--dump-on-violation", "--threads",   "--seeds",
        "--log-limit",    "--full-graph", "--overlap",          "--key-pool",
        "--flag",         "--loss",      "--dup",               "--reorder",
        "--corrupt",      "--fault-seed"};
    for (const char* f : kBanned) {
      if (a.saw(f)) {
        usage((std::string("'scenario' does not accept ") + f +
               " (see scenario options in --help)")
                  .c_str());
      }
    }
    if (a.algo == sim::ScenarioAlgo::kBrv || a.algo == sim::ScenarioAlgo::kSyncg) {
      // BRV holds concurrent pairs unresolved and SYNCG ships sink ancestors
      // only — a multi-writer world would never converge (scenario.h top
      // comment); reject instead of spinning to the quiesce cap.
      if (a.saw("--writers") && a.writers > 1) {
        usage("--algo=brv and --algo=syncg require --writers=1");
      }
      a.writers = 1;
    }
  } else {
    for (const char* f : {"--algo", "--writers", "--mesh", "--degree", "--script"}) {
      if (a.saw(f)) {
        usage((std::string(f) + " applies to 'scenario' runs").c_str());
      }
    }
  }
  if (a.command == "sweep") {
    if (a.sweep_seeds < 1) usage("--seeds must be >= 1");
    // Per-run tracing/profiling would interleave across workers; the sweep
    // reports merged metrics instead.
    if (!a.trace_out.empty() || !a.profile_out.empty()) {
      usage("'sweep' does not support --trace-out / --profile-out");
    }
  }
  for (const double p : {a.loss, a.dup, a.reorder, a.corrupt}) {
    if (p < 0 || p > 1) usage("fault probabilities must be in [0, 1]");
  }
  if (a.faults_requested() && a.command == "op") {
    usage("fault injection applies to vector sessions; 'op' has no recovery path");
  }
  if (a.kind == vv::VectorKind::kBrv) a.manual = true;  // §3.1: no reconciliation
  if (a.command == "state" && a.threads_set) {
    // The batch engine serializes commit effects but runs sessions
    // wave-parallel: manual holds mutate the *sender* (breaks wave
    // read-sharing), and tracer/timeline/recorder/profiler are sequential
    // per-session-order instruments. Causal tracing is supported.
    if (a.manual) {
      usage("state --threads requires automatic resolution "
            "(drop --manual / --kind=brv)");
    }
    if (!a.trace_out.empty() || !a.timeline_out.empty() || !a.dump_out.empty() ||
        !a.profile_out.empty()) {
      usage("state --threads is incompatible with --trace-out / --timeline-out "
            "/ --dump-on-violation / --profile-out (sequential per-session "
            "instruments; --causal-out is supported)");
    }
  }
  return a;
}

void write_file(const std::string& path, const std::string& content);

// Installs the global profiler for the run when --profile-out is given and
// writes the Chrome-trace JSON on scope exit. Span durations additionally
// land in `sink` as "<name>.wall_ns" histograms, so the --json report carries
// wall-clock percentiles next to the model-bit metrics (note: this makes the
// metrics section run-dependent; without --profile-out reports stay
// deterministic).
class ProfileScope {
 public:
  ProfileScope(const std::string& path, obs::Registry* sink) : path_(path) {
    if (path_.empty()) return;
    profiler_.emplace();
    profiler_->set_sink(sink);
    prof::set_global_profiler(&*profiler_);
  }
  ~ProfileScope() {
    if (!profiler_.has_value()) return;
    prof::set_global_profiler(nullptr);
    write_file(path_, prof::profile_to_json(*profiler_));
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  std::string path_;
  std::optional<prof::Profiler> profiler_;
};

void write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
}

// A full trace ring means the written document silently lacks the run's
// earliest events — worth a loud stderr note next to the output path.
void warn_trace_drops(const obs::Tracer& tracer, const std::string& path) {
  if (tracer.dropped() == 0) return;
  std::fprintf(stderr,
               "warning: trace ring dropped %llu of %llu events (capacity %zu); "
               "%s holds only the most recent events\n",
               (unsigned long long)tracer.dropped(),
               (unsigned long long)tracer.total_recorded(), tracer.capacity(),
               path.c_str());
}

// Write the flight-recorder dump only when an anomaly froze it; either way
// say on stderr what happened, so scripted runs can tell "clean" from
// "violated" without parsing exit codes.
void finish_flight_dump(const obs::FlightRecorder& rec, const std::string& path) {
  if (path.empty()) return;
  if (!rec.triggered()) {
    std::fprintf(stderr, "flight recorder: no violation; %s not written\n", path.c_str());
    return;
  }
  write_file(path, obs::flight_to_json(rec));
  std::fprintf(stderr,
               "flight recorder triggered (%s, %llu trigger(s)): wrote last %zu "
               "protocol events to %s\n",
               rec.reason().c_str(), (unsigned long long)rec.trigger_count(),
               rec.dump_size(), path.c_str());
}

wl::Trace make_trace(const Args& a) {
  wl::GeneratorConfig g;
  g.n_sites = a.sites;
  g.n_objects = a.objects;
  g.steps = a.steps;
  g.update_prob = a.update_prob;
  g.topology = a.topology;
  g.seed = a.seed;
  return wl::generate(g);
}

sim::NetConfig make_net(const Args& a) {
  sim::NetConfig net;
  net.latency_s = a.latency_ms / 1000.0;
  if (a.bandwidth > 0) net.bandwidth_bits_per_s = a.bandwidth;
  net.faults.drop = a.loss;
  net.faults.duplicate = a.dup;
  net.faults.reorder = a.reorder;
  net.faults.corrupt = a.corrupt;
  net.faults.seed = a.fault_seed;
  return net;
}

int run_state(const Args& a) {
  repl::StateSystem::Config cfg;
  cfg.n_sites = a.sites;
  cfg.kind = a.kind;
  cfg.policy = a.manual ? repl::ResolutionPolicy::kManual
                        : repl::ResolutionPolicy::kAutomatic;
  cfg.mode = a.mode;
  cfg.net = make_net(a);
  cfg.cost = CostModel{.n = a.sites, .m = 1 << 16};
  obs::Tracer tracer;
  if (!a.trace_out.empty()) cfg.tracer = &tracer;
  obs::Timeline timeline;
  if (!a.timeline_out.empty()) {
    cfg.timeline = &timeline;
    cfg.timeline_every = a.sample_every;
  }
  obs::FlightRecorder recorder;
  if (!a.dump_out.empty()) cfg.recorder = &recorder;
  // Trace ids derive from the workload seed, so two runs of the same
  // configuration write byte-identical causal dumps.
  obs::CausalTracer causal(a.seed);
  if (!a.causal_out.empty()) cfg.causal = &causal;
  repl::StateSystem sys(cfg);
  ProfileScope profile(a.profile_out, &sys.metrics());
  const wl::Trace trace = make_trace(a);
  wl::RunStats stats;
  repl::StateSystem::BatchStats bstats;
  if (a.threads_set) {
    // Sharded parallel engine: replica-disjoint sessions run on the pool,
    // commit effects land in spec order, so every output below — report,
    // totals, causal dump — is byte-identical for any --threads value.
    rt::ThreadPool pool(a.threads);
    stats = wl::run_state_parallel(sys, trace, pool, /*drive_to_consistency=*/true,
                                   &bstats);
  } else {
    stats = wl::run_state(sys, trace);
  }
  sys.sample_timeline();  // flush a final sample at the end of the run
  const auto& t = sys.totals();
  if (!a.trace_out.empty()) {
    write_file(a.trace_out, obs::trace_to_json(tracer));
    warn_trace_drops(tracer, a.trace_out);
  }
  if (!a.timeline_out.empty()) write_file(a.timeline_out, obs::timeline_to_json(timeline));
  if (!a.causal_out.empty()) {
    write_file(a.causal_out, obs::causal_to_json(causal));
    if (causal.dropped() > 0) {
      std::fprintf(stderr,
                   "warning: causal ring dropped %llu of %llu events (capacity %zu); "
                   "%s holds only the most recent events\n",
                   (unsigned long long)causal.dropped(),
                   (unsigned long long)causal.total_recorded(), causal.capacity(),
                   a.causal_out.c_str());
    }
  }
  finish_flight_dump(recorder, a.dump_out);
  if (a.json) {
    std::fputs(wl::state_run_report_json(sys, trace, stats).c_str(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }
  if (a.csv) {
    std::puts("kind,sites,objects,steps,update_prob,seed,sessions,bits,bytes,"
              "elems_sent,elems_redundant,skips,conflicts,reconciliations,"
              "consistent");
    std::puts(obs::CsvRow()
                  .add(vv::to_string(a.kind))
                  .add(a.sites)
                  .add(a.objects)
                  .add(a.steps)
                  .add(a.update_prob)
                  .add(a.seed)
                  .add(t.sessions)
                  .add(t.bits)
                  .add(t.bytes)
                  .add(t.elems_sent)
                  .add(t.elems_redundant)
                  .add(t.skips)
                  .add(t.conflicts_detected)
                  .add(t.reconciliations)
                  .add(int{stats.eventually_consistent})
                  .str()
                  .c_str());
    return 0;
  }
  std::printf("state-transfer run (%s, %s resolution)\n",
              std::string(vv::to_string(a.kind)).c_str(),
              a.manual ? "manual" : "automatic");
  std::printf("  events: %llu updates, %llu syncs (%llu skipped)\n",
              (unsigned long long)stats.updates, (unsigned long long)stats.syncs,
              (unsigned long long)stats.skipped);
  std::printf("  sessions: %llu   traffic: %llu model bits (%llu wire bytes)\n",
              (unsigned long long)t.sessions, (unsigned long long)t.bits,
              (unsigned long long)t.bytes);
  std::printf("  elements: %llu sent, %llu redundant (Gamma), %llu segment skips\n",
              (unsigned long long)t.elems_sent, (unsigned long long)t.elems_redundant,
              (unsigned long long)t.skips);
  std::printf("  conflicts: %llu detected, %llu reconciled\n",
              (unsigned long long)t.conflicts_detected,
              (unsigned long long)t.reconciliations);
  std::printf("  eventually consistent: %s (%u anti-entropy rounds)\n",
              stats.eventually_consistent ? "yes" : "no", stats.anti_entropy_rounds);
  if (a.threads_set) {
    std::printf("  parallel: %llu waves (max %llu sessions/wave), olock: "
                "%llu acquisitions, %llu optimistic retries, %llu queue waits\n",
                (unsigned long long)bstats.waves,
                (unsigned long long)bstats.max_wave_items,
                (unsigned long long)bstats.olock.acquisitions,
                (unsigned long long)bstats.olock.opt_retries,
                (unsigned long long)bstats.olock.queue_waits);
  }
  return stats.eventually_consistent || a.manual ? 0 : 1;
}

int run_op(const Args& a) {
  repl::OpSystem::Config cfg;
  cfg.n_sites = a.sites;
  cfg.mode = a.mode;
  cfg.net = make_net(a);
  cfg.cost = CostModel{.n = a.sites, .m = 1 << 20};
  cfg.use_incremental = !a.full_graph;
  cfg.op_log_limit = a.log_limit;
  repl::OpSystem sys(cfg);
  ProfileScope profile(a.profile_out, &sys.metrics());
  const wl::Trace trace = make_trace(a);
  const wl::RunStats stats = wl::run_op(sys, trace);
  const auto& t = sys.totals();
  if (a.json) {
    std::fputs(wl::op_run_report_json(sys, trace, stats).c_str(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }
  if (a.csv) {
    std::puts("algo,sites,objects,steps,update_prob,seed,log_limit,sessions,bits,"
              "nodes_sent,nodes_redundant,op_bytes,fallbacks,fallback_bytes,"
              "consistent");
    std::puts(obs::CsvRow()
                  .add(a.full_graph ? "full" : "syncg")
                  .add(a.sites)
                  .add(a.objects)
                  .add(a.steps)
                  .add(a.update_prob)
                  .add(a.seed)
                  .add(a.log_limit)
                  .add(t.sessions)
                  .add(t.bits)
                  .add(t.nodes_sent)
                  .add(t.nodes_redundant)
                  .add(t.op_bytes)
                  .add(t.state_fallbacks)
                  .add(t.state_fallback_bytes)
                  .add(int{stats.eventually_consistent})
                  .str()
                  .c_str());
    return 0;
  }
  std::printf("operation-transfer run (%s%s)\n", a.full_graph ? "full graph" : "SYNCG",
              a.log_limit ? (", log limit " + std::to_string(a.log_limit)).c_str() : "");
  std::printf("  events: %llu ops, %llu syncs\n", (unsigned long long)stats.updates,
              (unsigned long long)stats.syncs);
  std::printf("  sessions: %llu   metadata: %llu model bits\n",
              (unsigned long long)t.sessions, (unsigned long long)t.bits);
  std::printf("  nodes: %llu sent, %llu redundant overlap\n",
              (unsigned long long)t.nodes_sent, (unsigned long long)t.nodes_redundant);
  std::printf("  payload: %llu op bytes; %llu state fallbacks (%llu bytes)\n",
              (unsigned long long)t.op_bytes, (unsigned long long)t.state_fallbacks,
              (unsigned long long)t.state_fallback_bytes);
  std::printf("  reconciliations: %llu\n", (unsigned long long)t.reconciliations);
  std::printf("  eventually consistent: %s\n", stats.eventually_consistent ? "yes" : "no");
  return stats.eventually_consistent ? 0 : 1;
}

int run_records(const Args& a) {
  repl::RecordSystem::Config cfg;
  cfg.n_sites = a.sites;
  cfg.kind = a.kind;
  cfg.policy = a.flag_policy ? repl::SemanticPolicy::kFlag
                             : repl::SemanticPolicy::kLastWriterWins;
  cfg.mode = a.mode;
  cfg.net = make_net(a);
  cfg.cost = CostModel{.n = a.sites, .m = 1 << 16};
  obs::Tracer tracer;
  if (!a.trace_out.empty()) cfg.tracer = &tracer;
  repl::RecordSystem sys(cfg);
  ProfileScope profile(a.profile_out, &sys.metrics());
  const ObjectId db{0};
  Rng rng(a.seed);
  sys.create_object(SiteId{0}, db, "genesis", "x");
  for (std::uint32_t s = 1; s < a.sites; ++s) sys.sync(SiteId{s}, SiteId{0}, db);
  std::vector<std::uint64_t> priv(a.sites, 0);
  for (std::uint32_t step = 0; step < a.steps; ++step) {
    const auto s = static_cast<std::uint32_t>(rng.below(a.sites));
    if (rng.chance(a.update_prob)) {
      std::string key = rng.chance(a.overlap)
                            ? "shared:" + std::to_string(rng.below(a.key_pool))
                            : "own:" + std::to_string(s) + ":" +
                                  std::to_string(priv[s]++ % 64);
      sys.put(SiteId{s}, db, key, "v" + std::to_string(step));
    } else {
      auto p = static_cast<std::uint32_t>(rng.below(a.sites));
      if (p == s) p = (p + 1) % a.sites;
      sys.sync(SiteId{s}, SiteId{p}, db);
    }
  }
  const auto& t = sys.totals();
  if (!a.trace_out.empty()) {
    write_file(a.trace_out, obs::trace_to_json(tracer));
    warn_trace_drops(tracer, a.trace_out);
  }
  if (a.json) {
    wl::RecordsRunTags tags;
    tags.sites = a.sites;
    tags.steps = a.steps;
    tags.update_prob = a.update_prob;
    tags.overlap = a.overlap;
    tags.key_pool = a.key_pool;
    tags.seed = a.seed;
    std::fputs(wl::records_run_report_json(sys, tags).c_str(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }
  if (a.csv) {
    std::puts("kind,policy,sites,steps,overlap,key_pool,seed,sessions,bits,"
              "syntactic,syntactic_only,semantic,merged,flagged");
    std::puts(obs::CsvRow()
                  .add(vv::to_string(a.kind))
                  .add(a.flag_policy ? "flag" : "lww")
                  .add(a.sites)
                  .add(a.steps)
                  .add(a.overlap)
                  .add(a.key_pool)
                  .add(a.seed)
                  .add(t.sessions)
                  .add(t.bits)
                  .add(t.syntactic_conflicts)
                  .add(t.syntactic_only)
                  .add(t.semantic_conflicts)
                  .add(t.records_merged)
                  .add(t.flagged_records)
                  .str()
                  .c_str());
    return 0;
  }
  std::printf("record-store run (%s, %s resolution)\n",
              std::string(vv::to_string(a.kind)).c_str(),
              a.flag_policy ? "flag-for-repair" : "last-writer-wins");
  std::printf("  sessions: %llu   metadata: %llu model bits\n",
              (unsigned long long)t.sessions, (unsigned long long)t.bits);
  std::printf("  syntactic triggers: %llu (%llu dismissed as false alarms)\n",
              (unsigned long long)t.syntactic_conflicts,
              (unsigned long long)t.syntactic_only);
  std::printf("  true record conflicts: %llu; silent merges: %llu; flagged: %llu\n",
              (unsigned long long)t.semantic_conflicts,
              (unsigned long long)t.records_merged,
              (unsigned long long)t.flagged_records);
  return 0;
}

// Large-world gossip scenario. The phase list is parsed before the world is
// built so flash-crowd headroom is known up front — the optimistic-read
// pinning contract requires replica width to be reserved before any reader
// can observe the vector.
int run_scenario_cmd(const Args& a) {
  std::vector<wl::PhaseSpec> phases;
  std::string err;
  if (!wl::parse_scenario_script(a.script, a.sites, phases, err)) usage(err.c_str());
  const std::uint32_t flash = wl::scenario_flash_writers(phases);
  if (flash > 0 &&
      (a.algo == sim::ScenarioAlgo::kBrv || a.algo == sim::ScenarioAlgo::kSyncg)) {
    usage("flash phases add one-shot writers; brv/syncg worlds are single-writer");
  }
  sim::ScenarioWorld::Config cfg;
  cfg.algo = a.algo;
  cfg.sites = a.sites;
  cfg.writers = a.writers;
  cfg.mesh = a.mesh;
  cfg.degree = a.degree;
  cfg.seed = a.seed;
  cfg.mode = a.mode;
  cfg.net = make_net(a);
  cfg.cost = CostModel{.n = a.sites, .m = 1 << 16};
  cfg.extra_writers = flash;
  sim::ScenarioWorld world(cfg);
  obs::Timeline timeline;
  const wl::ScenarioStats stats = wl::run_scenario(
      world, phases, a.timeline_out.empty() ? nullptr : &timeline, a.sample_every);
  if (!a.timeline_out.empty()) write_file(a.timeline_out, obs::timeline_to_json(timeline));
  const auto& t = stats.totals;
  if (a.json) {
    std::fputs(wl::scenario_run_report_json(world, a.script, stats).c_str(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }
  if (a.csv) {
    std::puts("algo,sites,writers,mesh,degree,seed,rounds,updates,compares,sessions,"
              "bits,wire_bytes,converged,convergence_rounds,arena_live_bytes,"
              "replica_bytes");
    std::puts(obs::CsvRow()
                  .add(sim::to_string(a.algo))
                  .add(a.sites)
                  .add(a.writers)
                  .add(sim::to_string(a.mesh))
                  .add(a.degree)
                  .add(a.seed)
                  .add(t.rounds)
                  .add(t.updates)
                  .add(t.compares)
                  .add(t.sessions)
                  .add(t.bits)
                  .add(t.wire_bytes)
                  .add(int{stats.converged})
                  .add(stats.convergence_rounds)
                  .add(stats.arena.live_bytes)
                  .add(stats.replica_bytes)
                  .str()
                  .c_str());
    return 0;
  }
  std::printf("scenario run (%s, %s mesh, %u sites, %u writers)\n",
              std::string(sim::to_string(a.algo)).c_str(),
              std::string(sim::to_string(a.mesh)).c_str(), a.sites, a.writers);
  std::printf("  script: %s\n", a.script.c_str());
  std::printf("  rounds: %llu   updates: %llu   converged: %s",
              (unsigned long long)t.rounds, (unsigned long long)t.updates,
              stats.converged ? "yes" : "NO");
  if (stats.converged && stats.convergence_rounds > 0) {
    std::printf(" (round %llu)", (unsigned long long)stats.convergence_rounds);
  }
  if (stats.quiesce_truncated) std::printf(" [quiesce cap hit]");
  std::printf("\n");
  std::printf("  exchanges: %llu compares, %llu sync sessions, %llu msgs\n",
              (unsigned long long)t.compares, (unsigned long long)t.sessions,
              (unsigned long long)t.msgs);
  std::printf("  traffic: %llu model bits (%llu wire bytes)\n",
              (unsigned long long)t.bits, (unsigned long long)t.wire_bytes);
  std::printf("  applied: %llu elements, %llu graph nodes; %llu reconciliations, "
              "%llu conflicts held\n",
              (unsigned long long)t.elems_applied, (unsigned long long)t.nodes_applied,
              (unsigned long long)t.reconciliations,
              (unsigned long long)t.conflicts_held);
  std::printf("  memory: arena %llu live / %llu reserved bytes (%llu slabs); "
              "replicas %llu bytes, mesh %llu bytes\n",
              (unsigned long long)stats.arena.live_bytes,
              (unsigned long long)stats.arena.reserved_bytes,
              (unsigned long long)stats.arena.slabs,
              (unsigned long long)stats.replica_bytes,
              (unsigned long long)stats.mesh_bytes);
  return stats.converged ? 0 : 1;
}

// K independent state-transfer runs with per-task split seeds on a thread
// pool. Every run owns its system, trace, and event loop; per-worker metric
// shards are merged after the join, so the row table AND the merged registry
// are byte-identical for any --threads value.
int run_sweep(const Args& a) {
  struct Row {
    std::uint64_t seed{0};
    std::uint64_t sessions{0};
    std::uint64_t bits{0};
    std::uint64_t conflicts{0};
    std::uint64_t reconciliations{0};
    std::uint64_t retries{0};
    std::uint64_t failures{0};
    std::uint64_t divergence{0};
    bool consistent{false};
    std::string dump;    // flight dump JSON when this run tripped the recorder
    std::string causal;  // this run's optrep.causal/v1 fragment (--causal-out)
  };
  rt::ThreadPool pool(a.threads);
  rt::ObsShards shards(pool.threads());
  std::vector<std::uint32_t> runs(a.sweep_seeds);
  for (std::uint32_t k = 0; k < a.sweep_seeds; ++k) runs[k] = k;
  const auto rows = rt::parallel_sweep(
      pool, runs, shards,
      [&a](std::uint32_t k, std::size_t, rt::ObsShards::Shard& shard) {
        Args run = a;
        run.seed = rt::task_seed(a.seed, k);
        // Independent fault streams per run, like the workload seeds.
        run.fault_seed = rt::task_seed(a.fault_seed, k);
        repl::StateSystem::Config cfg;
        cfg.n_sites = run.sites;
        cfg.kind = run.kind;
        cfg.policy = run.manual ? repl::ResolutionPolicy::kManual
                                : repl::ResolutionPolicy::kAutomatic;
        cfg.mode = run.mode;
        cfg.net = make_net(run);
        cfg.cost = CostModel{.n = run.sites, .m = 1 << 16};
        obs::FlightRecorder rec;
        if (!a.dump_out.empty()) cfg.recorder = &rec;
        // Per-run tracer seeded with the run's split seed: trace ids depend
        // only on (seed, k), never on worker identity or scheduling. The
        // worker serializes its own fragment; the document is assembled in
        // config order after the join.
        obs::CausalTracer ct(rt::task_seed(a.seed, k));
        if (!a.causal_out.empty()) cfg.causal = &ct;
        repl::StateSystem sys(cfg);
        const wl::RunStats stats = wl::run_state(sys, make_trace(run));
        shard.registry.merge_from(sys.metrics());
        const auto& t = sys.totals();
        Row row{run.seed,
                t.sessions,
                t.bits,
                t.conflicts_detected,
                t.reconciliations,
                t.retries,
                t.sync_failures,
                sys.divergence(),
                stats.eventually_consistent,
                {},
                {}};
        if (rec.triggered()) row.dump = obs::flight_to_json(rec);
        if (!a.causal_out.empty()) row.causal = obs::causal_run_fragment(ct, k);
        // Live mid-sweep progress: single writer per shard, so read-add-
        // publish is race-free; readers get a consistent snapshot any time.
        const auto prev = shard.progress.read();
        shard.progress.publish(prev[0] + 1, prev[1] + t.sessions, prev[2] + t.bits);
        return row;
      });
  obs::Registry merged;
  shards.merge_into(&merged, nullptr);

  // The sweep timeline is assembled from the config-order row table after
  // the join — one sample per run on the "run" axis — so the document is
  // byte-identical for any --threads value by construction.
  if (!a.timeline_out.empty()) {
    obs::Timeline::Config tc;
    if (rows.size() > tc.max_samples) tc.max_samples = rows.size();
    obs::Timeline tl(tc);
    tl.set_axis("run");
    for (std::size_t k = 0; k < rows.size(); ++k) {
      const Row& r = rows[k];
      tl.begin_sample(static_cast<double>(k));
      tl.record("repl.divergence", static_cast<std::int64_t>(r.divergence));
      tl.record("state.bits", static_cast<std::int64_t>(r.bits));
      tl.record("state.conflicts_detected", static_cast<std::int64_t>(r.conflicts));
      tl.record("state.reconciliations", static_cast<std::int64_t>(r.reconciliations));
      tl.record("state.sessions", static_cast<std::int64_t>(r.sessions));
      if (a.faults_requested()) {
        tl.record("state.retries", static_cast<std::int64_t>(r.retries));
        tl.record("state.sync_failures", static_cast<std::int64_t>(r.failures));
      }
    }
    write_file(a.timeline_out, obs::timeline_to_json(tl));
  }
  // Causal sweep document: per-run fragments in config order, so the bytes
  // are thread-count-independent by construction.
  if (!a.causal_out.empty()) {
    std::vector<std::string> fragments;
    fragments.reserve(rows.size());
    for (const Row& r : rows) fragments.push_back(r.causal);
    write_file(a.causal_out, obs::causal_sweep_json(fragments));
  }
  // Dump-on-violation: the first triggered run in config order wins, which
  // keeps the written dump deterministic across thread counts too.
  if (!a.dump_out.empty()) {
    std::size_t hit = rows.size();
    for (std::size_t k = 0; k < rows.size(); ++k) {
      if (!rows[k].dump.empty()) {
        hit = k;
        break;
      }
    }
    if (hit < rows.size()) {
      write_file(a.dump_out, rows[hit].dump);
      std::fprintf(stderr, "flight recorder triggered in run %zu: wrote %s\n", hit,
                   a.dump_out.c_str());
    } else {
      std::fprintf(stderr, "flight recorder: no violation across %zu runs; %s not written\n",
                   rows.size(), a.dump_out.c_str());
    }
  }

  bool all_consistent = true;
  for (const Row& r : rows) all_consistent = all_consistent && r.consistent;
  if (a.json) {
    std::fputs(obs::metrics_to_json(merged).c_str(), stdout);
    std::fputc('\n', stdout);
    return all_consistent || a.manual ? 0 : 1;
  }
  if (a.csv) {
    std::puts("run,seed,sessions,bits,conflicts,reconciliations,consistent");
    for (std::size_t k = 0; k < rows.size(); ++k) {
      const Row& r = rows[k];
      std::puts(obs::CsvRow()
                    .add(static_cast<std::uint64_t>(k))
                    .add(r.seed)
                    .add(r.sessions)
                    .add(r.bits)
                    .add(r.conflicts)
                    .add(r.reconciliations)
                    .add(int{r.consistent})
                    .str()
                    .c_str());
    }
    return all_consistent || a.manual ? 0 : 1;
  }
  std::printf("sweep: %u runs of 'state' (%s) on %u worker(s)\n", a.sweep_seeds,
              std::string(vv::to_string(a.kind)).c_str(), pool.threads());
  std::printf("%-5s %-22s %-10s %-12s %-10s %-8s\n", "run", "seed", "sessions",
              "bits", "conflicts", "ok");
  std::uint64_t sessions = 0, bits = 0;
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const Row& r = rows[k];
    std::printf("%-5zu %-22llu %-10llu %-12llu %-10llu %-8s\n", k,
                (unsigned long long)r.seed, (unsigned long long)r.sessions,
                (unsigned long long)r.bits, (unsigned long long)r.conflicts,
                r.consistent ? "yes" : "NO");
    sessions += r.sessions;
    bits += r.bits;
  }
  std::printf("total: %llu sessions, %llu model bits; merged metrics: %zu counters\n",
              (unsigned long long)sessions, (unsigned long long)bits,
              merged.counters().size());
  return all_consistent || a.manual ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  if (a.command == "state") return run_state(a);
  if (a.command == "op") return run_op(a);
  if (a.command == "sweep") return run_sweep(a);
  if (a.command == "scenario") return run_scenario_cmd(a);
  return run_records(a);
}
