// optrep_load — closed-loop load generator for optrep_serve.
//
// N clients, each with a persistent connection and its own replica vector,
// issue a seeded mix of COMPARE / push / pull sessions against private and
// shared server replicas, then report session latency percentiles and
// throughput (schema optrep.serve/v1 with --json). The deterministic summary
// — sessions attempted / completed / killed / stalled per kind, a pure
// function of the seed — goes to --summary-out, which is what the fault-
// determinism ctest byte-compares across runs.
//
//   target (exactly one):
//     --port=N [--host=A]        connect to a running server
//     --port-file=FILE           read the port optrep_serve wrote (CI handshake)
//     --loopback                 start an in-process server (adds its stats
//                                to the report)  [--workers=N] [--prefill=N]
//   workload:
//     [--kind=brv|crv|srv] [--clients=N] [--sessions=N] [--replicas=N]
//     [--compare-frac=F] [--pull-frac=F] [--shared-frac=F] [--max-delta=N]
//     [--think-us=N] [--saw] [--io-chunk=N] [--seed=N] [--timeout-ms=N]
//     [--capacity=N]
//   fault injection:
//     [--fault]                  enable the default kill/stall mix
//     [--kill-prob=F] [--stall-prob=F] [--stall-ms=N]
//   output:
//     [--json] [--summary-out=FILE]
#include <cstdio>
#include <string>

#include "net/load_gen.h"
#include "tools/cli_util.h"

using namespace optrep;

namespace {

[[noreturn]] void usage(const char* msg) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage: optrep_load (--port=N | --port-file=FILE | --loopback)\n"
               "       [--host=A] [--workers=N] [--prefill=N] [--kind=brv|crv|srv]\n"
               "       [--clients=N] [--sessions=N] [--replicas=N] [--capacity=N]\n"
               "       [--compare-frac=F] [--pull-frac=F] [--shared-frac=F]\n"
               "       [--max-delta=N] [--think-us=N] [--saw] [--io-chunk=N]\n"
               "       [--seed=N] [--timeout-ms=N]\n"
               "       [--fault] [--kill-prob=F] [--stall-prob=F] [--stall-ms=N]\n"
               "       [--json] [--summary-out=FILE]\n");
  std::exit(2);
}

bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

std::uint16_t read_port_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) usage("cannot open --port-file");
  long port = -1;
  const int n = std::fscanf(f, "%ld", &port);
  std::fclose(f);
  if (n != 1 || port <= 0 || port > 65535) usage("--port-file does not contain a port");
  return static_cast<std::uint16_t>(port);
}

}  // namespace

int main(int argc, char** argv) {
  net::LoadConfig cfg;
  bool have_port = false;
  bool loopback = false;
  std::string port_file;
  unsigned server_workers = 1;
  std::uint32_t prefill = 0;
  bool fault_flag = false;
  bool json = false;
  std::string summary_out;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (cli::take(argv[i], "--host", &v)) {
      if (v.empty()) usage("--host needs an address");
      cfg.host = v;
    } else if (cli::take(argv[i], "--port-file", &v)) {
      if (v.empty()) usage("--port-file needs a file path");
      port_file = v;
    } else if (cli::take(argv[i], "--port", &v)) {
      cfg.port = cli::parse_port(v, usage, "--port must be an integer in [1, 65535]");
      if (cfg.port == 0) usage("--port must be an integer in [1, 65535]");
      have_port = true;
    } else if (cli::take(argv[i], "--loopback", &v)) {
      loopback = true;
    } else if (cli::take(argv[i], "--workers", &v)) {
      server_workers =
          cli::parse_positive_unsigned(v, usage, "--workers must be a positive integer worker count");
    } else if (cli::take(argv[i], "--prefill", &v)) {
      prefill = cli::parse_u32(v, usage, "--prefill must be a non-negative integer");
    } else if (cli::take(argv[i], "--kind", &v)) {
      cfg.kind = cli::parse_kind(v, usage, "--kind must be brv, crv or srv");
    } else if (cli::take(argv[i], "--clients", &v)) {
      cfg.clients =
          cli::parse_positive_unsigned(v, usage, "--clients must be a positive integer");
    } else if (cli::take(argv[i], "--sessions", &v)) {
      cfg.sessions_per_client =
          cli::parse_positive_u32(v, usage, "--sessions must be a positive integer");
    } else if (cli::take(argv[i], "--replicas", &v)) {
      cfg.replicas =
          cli::parse_positive_u32(v, usage, "--replicas must be a positive integer");
    } else if (cli::take(argv[i], "--capacity", &v)) {
      cfg.site_capacity =
          cli::parse_positive_u32(v, usage, "--capacity must be a positive integer");
    } else if (cli::take(argv[i], "--compare-frac", &v)) {
      cfg.compare_frac = cli::parse_unit(v, usage, "--compare-frac must be in [0, 1]");
    } else if (cli::take(argv[i], "--pull-frac", &v)) {
      cfg.pull_frac = cli::parse_unit(v, usage, "--pull-frac must be in [0, 1]");
    } else if (cli::take(argv[i], "--shared-frac", &v)) {
      cfg.shared_frac = cli::parse_unit(v, usage, "--shared-frac must be in [0, 1]");
    } else if (cli::take(argv[i], "--max-delta", &v)) {
      cfg.max_delta = cli::parse_u32(v, usage, "--max-delta must be a non-negative integer");
    } else if (cli::take(argv[i], "--think-us", &v)) {
      cfg.think_us = cli::parse_u32(v, usage, "--think-us must be a non-negative integer");
    } else if (cli::take(argv[i], "--saw", &v)) {
      cfg.stop_and_wait = true;
    } else if (cli::take(argv[i], "--io-chunk", &v)) {
      cfg.io_chunk =
          cli::parse_positive_u32(v, usage, "--io-chunk must be a positive byte count");
    } else if (cli::take(argv[i], "--seed", &v)) {
      cfg.seed = cli::parse_u64(v, usage, "--seed must be a non-negative integer");
    } else if (cli::take(argv[i], "--timeout-ms", &v)) {
      cfg.timeout_ms = static_cast<int>(
          cli::parse_positive_u32(v, usage, "--timeout-ms must be a positive integer"));
    } else if (cli::take(argv[i], "--fault", &v)) {
      fault_flag = true;
    } else if (cli::take(argv[i], "--kill-prob", &v)) {
      cfg.kill_prob = cli::parse_unit(v, usage, "--kill-prob must be in [0, 1]");
    } else if (cli::take(argv[i], "--stall-prob", &v)) {
      cfg.stall_prob = cli::parse_unit(v, usage, "--stall-prob must be in [0, 1]");
    } else if (cli::take(argv[i], "--stall-ms", &v)) {
      cfg.stall_ms = cli::parse_positive_u32(v, usage, "--stall-ms must be a positive integer");
    } else if (cli::take(argv[i], "--json", &v)) {
      json = true;
    } else if (cli::take(argv[i], "--summary-out", &v)) {
      if (v.empty()) usage("--summary-out needs a file path");
      summary_out = v;
    } else {
      usage((std::string("unknown option: ") + argv[i]).c_str());
    }
  }

  const int targets = (have_port ? 1 : 0) + (port_file.empty() ? 0 : 1) + (loopback ? 1 : 0);
  if (targets != 1) usage("need exactly one of --port, --port-file or --loopback");
  if (cfg.site_capacity < cfg.replicas) {
    usage("--capacity must be >= --replicas (own sites must fit)");
  }
  if (fault_flag && cfg.kill_prob == 0.0 && cfg.stall_prob == 0.0) {
    cfg.kill_prob = 0.1;
    cfg.stall_prob = 0.05;
  }

  std::unique_ptr<net::Server> server;
  if (loopback) {
    net::ServerConfig sc;
    sc.workers = server_workers;
    sc.store.kind = cfg.kind;
    sc.store.replicas = cfg.replicas;
    sc.store.site_capacity = cfg.site_capacity;
    sc.store.seed = cfg.seed;
    sc.store.prefill_updates = prefill;
    server = std::make_unique<net::Server>(sc);
    std::string err;
    if (!server->start(&err)) {
      std::fprintf(stderr, "optrep_load: loopback server: %s\n", err.c_str());
      return 1;
    }
    cfg.host = "127.0.0.1";
    cfg.port = server->port();
  } else if (!port_file.empty()) {
    cfg.port = read_port_file(port_file);
  }

  const net::LoadReport r = net::run_load(cfg);
  net::ServerStats sstats;
  if (server) {
    sstats = server->stats();
    server->stop();
  }

  if (!summary_out.empty() &&
      !write_file(summary_out, net::summary_json(cfg, r) + "\n")) {
    std::fprintf(stderr, "optrep_load: cannot write %s\n", summary_out.c_str());
    return 1;
  }
  if (json) {
    std::printf("%s\n", net::report_json(cfg, r, server ? &sstats : nullptr).c_str());
  } else {
    std::printf("sessions: %llu attempted, %llu completed, %llu killed, %llu stalled, "
                "%llu errors\n",
                static_cast<unsigned long long>(r.attempted),
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.killed),
                static_cast<unsigned long long>(r.stalled),
                static_cast<unsigned long long>(r.errors));
    std::printf("mix: %llu compare, %llu push, %llu pull; %llu transfers, %llu noops\n",
                static_cast<unsigned long long>(r.compare_sessions),
                static_cast<unsigned long long>(r.push_sessions),
                static_cast<unsigned long long>(r.pull_sessions),
                static_cast<unsigned long long>(r.transfers),
                static_cast<unsigned long long>(r.noops));
    std::printf("throughput: %.0f sessions/s, %.0f bytes/s over %.3f s\n",
                r.sessions_per_s, r.bytes_per_s, r.elapsed_s);
    std::printf("latency us: p50=%.1f p90=%.1f p99=%.1f p999=%.1f max=%.1f\n",
                r.p50_us, r.p90_us, r.p99_us, r.p999_us, r.max_us);
    if (r.errors > 0) {
      std::printf("first error: %s\n", r.first_error.c_str());
    }
  }
  return r.errors == 0 ? 0 : 1;
}
