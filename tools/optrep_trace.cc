// optrep_trace — analyze optrep.causal/v1 dumps (optrep_cli --causal-out).
//
//   optrep_trace <causal.json>                 per-update propagation summary +
//                                              the convergence critical path
//   optrep_trace <causal.json> --tree          also print every propagation tree
//   optrep_trace <causal.json> --check         schema-validate the dump and run
//                                              the brute-force oracle: forward
//                                              knowledge simulation, converge
//                                              soundness/completeness, and
//                                              independent recomputation of the
//                                              critical path (exit 1 on any
//                                              disagreement)
//   optrep_trace <causal.json> --perfetto-out=F  re-export as Chrome-trace JSON
//                                              with flow events (sweep docs
//                                              need --run=K)
//   optrep_trace <causal.json> --run=K         restrict to run K of a sweep doc
//
// The analyzer never trusts its own tree walk: --check recomputes convergence
// times and the critical path by brute force over the raw events and compares.
// Update identity is the (obj, site, seq) triple — exact in JSON — rather than
// the 64-bit trace id, which a double-typed DOM could round.
//
// Exit codes: 0 analyzed (and, with --check, validated); 1 oracle or
// validation failure; 2 usage, I/O, or parse errors.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/ids.h"
#include "obs/causal.h"
#include "obs/json.h"

using namespace optrep;

namespace {

[[noreturn]] void usage(const char* msg) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage: optrep_trace <causal.json> [--check] [--tree] [--run=K]\n"
               "       [--perfetto-out=FILE]\n");
  std::exit(2);
}

struct Options {
  std::string path;
  bool check{false};
  bool tree{false};
  long run{-1};  // -1 = all runs
  std::string perfetto_out;
};

// Update identity: exact in JSON (small integers), unlike the 64-bit trace id.
using UpdateKey = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>;  // obj, site, seq

struct Span {
  double begin_at{0};
  double end_at{0};
  SiteId src{};
  SiteId dst{};
  std::uint64_t parent{0};
  std::uint32_t attempt{0};
  std::uint64_t bits{0};
  bool ok{true};
  bool ended{false};
  // Aggregated over the span subtree rooted here (filled for roots only).
  std::uint32_t attempts{1};
  std::uint32_t faults{0};
  std::uint64_t applies{0};
};

struct Delivery {
  double at{0};
  std::uint64_t span{0};
  SiteId src{};
  SiteId dst{};
};

struct TraceInfo {
  bool has_origin{false};
  double origin_at{0};
  SiteId origin_site{};
  std::vector<Delivery> delivers;   // event order
  std::vector<double> converges;    // event order
};

// One event as parsed, kept in file order for the oracle's forward replay.
struct RawEvent {
  double at{0};
  obs::CausalEventType type{obs::CausalEventType::kOrigin};
  std::uint64_t obj{0}, site{0}, seq{0}, span{0}, parent{0}, src{0}, dst{0};
  std::uint64_t bits{0}, value{0};
  std::uint32_t attempt{0};
  bool ok{true};
  bool forward{true};
  std::string fault;
};

struct Run {
  std::uint64_t index{0};
  double run_seed{0};  // display only: a double DOM may round 64-bit seeds
  std::uint64_t total_recorded{0};
  std::uint64_t dropped{0};
  std::uint64_t spans_declared{0};
  std::vector<RawEvent> events;
  std::map<std::uint64_t, Span> spans;
  std::map<UpdateKey, TraceInfo> traces;
  std::vector<std::string> errors;  // schema/structural violations
};

Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--check") == 0) {
      o.check = true;
    } else if (std::strcmp(arg, "--tree") == 0) {
      o.tree = true;
    } else if (std::strncmp(arg, "--run=", 6) == 0) {
      char* end = nullptr;
      o.run = std::strtol(arg + 6, &end, 10);
      if (end == nullptr || *end != '\0' || o.run < 0) usage("--run needs a run index");
    } else if (std::strncmp(arg, "--perfetto-out=", 15) == 0) {
      o.perfetto_out = arg + 15;
      if (o.perfetto_out.empty()) usage("--perfetto-out needs a file path");
    } else if (arg[0] == '-') {
      usage((std::string("unknown option: ") + arg).c_str());
    } else if (o.path.empty()) {
      o.path = arg;
    } else {
      usage("exactly one input file expected");
    }
  }
  if (o.path.empty()) usage("missing input file");
  return o;
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::string out;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

void write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    std::exit(2);
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
}

double num_field(const obs::JsonValue& obj, const char* name, bool* ok) {
  const obs::JsonValue* v = obj.find(name);
  if (v == nullptr || !v->is_number()) {
    *ok = false;
    return 0;
  }
  return v->number;
}

std::string str_field(const obs::JsonValue& obj, const char* name, bool* ok) {
  const obs::JsonValue* v = obj.find(name);
  if (v == nullptr || v->type != obs::JsonValue::Type::kString) {
    *ok = false;
    return {};
  }
  return v->string;
}

bool type_from_string(const std::string& s, obs::CausalEventType* out) {
  using T = obs::CausalEventType;
  static const std::pair<const char*, T> kMap[] = {
      {"origin", T::kOrigin},    {"span_begin", T::kSpanBegin},
      {"span_end", T::kSpanEnd}, {"send", T::kWireSend},
      {"recv", T::kWireRecv},    {"fault", T::kFault},
      {"apply", T::kApply},      {"deliver", T::kDeliver},
      {"converge", T::kConverge}};
  for (const auto& [name, t] : kMap) {
    if (s == name) {
      *out = t;
      return true;
    }
  }
  return false;
}

obs::FlightFault fault_from_string(const std::string& s) {
  using F = obs::FlightFault;
  if (s == "dropped") return F::kDropped;
  if (s == "duplicated") return F::kDuplicated;
  if (s == "reordered") return F::kReordered;
  if (s == "corrupted") return F::kCorrupted;
  if (s == "decode_error") return F::kDecodeError;
  return F::kNone;
}

void err(Run* run, std::size_t i, const std::string& what) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "event %zu: ", i);
  run->errors.push_back(buf + what);
}

// Parse one run object (a single-run document or one element of "runs") into
// the analyzer's model, recording every schema violation instead of stopping
// at the first.
Run parse_run(const obs::JsonValue& doc, std::uint64_t index) {
  Run run;
  run.index = index;
  bool hdr = true;
  run.run_seed = num_field(doc, "run_seed", &hdr);
  run.total_recorded = static_cast<std::uint64_t>(num_field(doc, "total_recorded", &hdr));
  run.dropped = static_cast<std::uint64_t>(num_field(doc, "dropped", &hdr));
  run.spans_declared = static_cast<std::uint64_t>(num_field(doc, "spans", &hdr));
  if (!hdr) run.errors.push_back("header: missing run_seed/total_recorded/dropped/spans");
  const obs::JsonValue* events = doc.find("events");
  if (events == nullptr || !events->is_array()) {
    run.errors.push_back("header: missing events array");
    return run;
  }
  double prev_at = -1;
  for (std::size_t i = 0; i < events->items.size(); ++i) {
    const obs::JsonValue& ev = events->items[i];
    if (!ev.is_object()) {
      err(&run, i, "not an object");
      continue;
    }
    bool ok = true;
    RawEvent e;
    e.at = num_field(ev, "t", &ok);
    const std::string type = str_field(ev, "type", &ok);
    if (!ok || !type_from_string(type, &e.type)) {
      err(&run, i, "missing/unknown type '" + type + "'");
      continue;
    }
    if (e.at < prev_at) err(&run, i, "timestamps must be non-decreasing");
    prev_at = e.at;
    using T = obs::CausalEventType;
    switch (e.type) {
      case T::kOrigin:
      case T::kConverge: {
        e.obj = static_cast<std::uint64_t>(num_field(ev, "obj", &ok));
        e.site = static_cast<std::uint64_t>(num_field(ev, "site", &ok));
        e.seq = static_cast<std::uint64_t>(num_field(ev, "seq", &ok));
        num_field(ev, "trace", &ok);
        if (!ok) {
          err(&run, i, type + ": missing trace/obj/site/seq");
          continue;
        }
        TraceInfo& t = run.traces[{e.obj, e.site, e.seq}];
        if (e.type == T::kOrigin) {
          if (t.has_origin) err(&run, i, "duplicate origin for one update");
          t.has_origin = true;
          t.origin_at = e.at;
          t.origin_site = SiteId{static_cast<std::uint32_t>(e.site)};
        } else {
          t.converges.push_back(e.at);
        }
        break;
      }
      case T::kDeliver: {
        e.obj = static_cast<std::uint64_t>(num_field(ev, "obj", &ok));
        e.site = static_cast<std::uint64_t>(num_field(ev, "site", &ok));
        e.seq = static_cast<std::uint64_t>(num_field(ev, "seq", &ok));
        e.span = static_cast<std::uint64_t>(num_field(ev, "span", &ok));
        e.src = static_cast<std::uint64_t>(num_field(ev, "src", &ok));
        e.dst = static_cast<std::uint64_t>(num_field(ev, "dst", &ok));
        num_field(ev, "trace", &ok);
        if (!ok) {
          err(&run, i, "deliver: missing trace/span/obj/site/seq/src/dst");
          continue;
        }
        run.traces[{e.obj, e.site, e.seq}].delivers.push_back(
            Delivery{e.at, e.span, SiteId{static_cast<std::uint32_t>(e.src)},
                     SiteId{static_cast<std::uint32_t>(e.dst)}});
        break;
      }
      case T::kSpanBegin: {
        e.span = static_cast<std::uint64_t>(num_field(ev, "span", &ok));
        e.parent = static_cast<std::uint64_t>(num_field(ev, "parent", &ok));
        e.src = static_cast<std::uint64_t>(num_field(ev, "src", &ok));
        e.dst = static_cast<std::uint64_t>(num_field(ev, "dst", &ok));
        e.attempt = static_cast<std::uint32_t>(num_field(ev, "attempt", &ok));
        if (!ok) {
          err(&run, i, "span_begin: missing span/parent/src/dst/attempt");
          continue;
        }
        if (run.spans.contains(e.span)) err(&run, i, "duplicate span id");
        Span s;
        s.begin_at = e.at;
        s.src = SiteId{static_cast<std::uint32_t>(e.src)};
        s.dst = SiteId{static_cast<std::uint32_t>(e.dst)};
        s.parent = e.parent;
        s.attempt = e.attempt;
        run.spans[e.span] = s;
        break;
      }
      case T::kSpanEnd: {
        e.span = static_cast<std::uint64_t>(num_field(ev, "span", &ok));
        e.bits = static_cast<std::uint64_t>(num_field(ev, "bits", &ok));
        const obs::JsonValue* okv = ev.find("ok");
        if (!ok || okv == nullptr || okv->type != obs::JsonValue::Type::kBool) {
          err(&run, i, "span_end: missing span/bits/ok");
          continue;
        }
        e.ok = okv->boolean;
        auto it = run.spans.find(e.span);
        if (it == run.spans.end()) {
          err(&run, i, "span_end without span_begin");
          continue;
        }
        if (it->second.ended) err(&run, i, "span ended twice");
        it->second.ended = true;
        it->second.end_at = e.at;
        it->second.bits = e.bits;
        it->second.ok = e.ok;
        break;
      }
      case T::kWireSend:
      case T::kWireRecv:
      case T::kFault: {
        e.span = static_cast<std::uint64_t>(num_field(ev, "span", &ok));
        e.site = static_cast<std::uint64_t>(num_field(ev, "site", &ok));
        e.value = static_cast<std::uint64_t>(num_field(ev, "value", &ok));
        const std::string dir = str_field(ev, "dir", &ok);
        if (e.type == T::kFault) {
          e.fault = str_field(ev, "fault", &ok);
        } else {
          e.bits = static_cast<std::uint64_t>(num_field(ev, "bits", &ok));
        }
        if (!ok || (dir != "fwd" && dir != "rev")) {
          err(&run, i, type + ": missing span/dir/site/value fields");
          continue;
        }
        e.forward = dir == "fwd";
        if (!run.spans.contains(e.span)) err(&run, i, type + " on unknown span");
        break;
      }
      case T::kApply: {
        e.span = static_cast<std::uint64_t>(num_field(ev, "span", &ok));
        e.site = static_cast<std::uint64_t>(num_field(ev, "site", &ok));
        e.value = static_cast<std::uint64_t>(num_field(ev, "value", &ok));
        if (!ok) {
          err(&run, i, "apply: missing span/site/value");
          continue;
        }
        break;
      }
    }
    run.events.push_back(e);
  }
  // Aggregate child spans and faults/applies into their root span: the repl
  // layer attaches deliveries to the recovery root, so per-hop retry and
  // fault charges roll up there.
  const auto root_of = [&run](std::uint64_t id) {
    std::size_t guard = run.spans.size() + 1;
    while (guard-- > 0) {
      const auto it = run.spans.find(id);
      if (it == run.spans.end() || it->second.parent == 0) return id;
      id = it->second.parent;
    }
    return id;  // parent cycle: already reported as a schema error elsewhere
  };
  for (const auto& [id, s] : run.spans) {
    if (s.parent == 0) continue;
    auto it = run.spans.find(root_of(id));
    if (it == run.spans.end()) continue;
    // attempts starts at 1 (the root itself stands for one session when it
    // has no children); the first child replaces that placeholder.
    if (it->second.attempts == 1 && it->second.faults == 0) it->second.attempts = 0;
    ++it->second.attempts;
  }
  for (const RawEvent& e : run.events) {
    if (e.type == obs::CausalEventType::kFault) {
      auto it = run.spans.find(root_of(e.span));
      if (it != run.spans.end()) ++it->second.faults;
    } else if (e.type == obs::CausalEventType::kApply) {
      auto it = run.spans.find(root_of(e.span));
      if (it != run.spans.end()) ++it->second.applies;
    }
  }
  return run;
}

std::string update_label(const UpdateKey& k) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "obj%llu %s:%llu", (unsigned long long)std::get<0>(k),
                site_name(SiteId{static_cast<std::uint32_t>(std::get<1>(k))}).c_str(),
                (unsigned long long)std::get<2>(k));
  return buf;
}

// The chain of deliveries that carried the update from its origin site to the
// site whose delivery completed the (last) convergence, oldest hop first.
// Empty when the trace never converged or converged at origin (single host).
std::vector<Delivery> critical_path(const TraceInfo& t) {
  std::vector<Delivery> path;
  if (t.converges.empty()) return path;
  const double tc = t.converges.back();
  // The completing delivery: the last delivery at the converge instant.
  const Delivery* cur = nullptr;
  for (const Delivery& d : t.delivers) {
    if (d.at == tc) cur = &d;
  }
  if (cur == nullptr) return path;  // converged at an origin (single host)
  // Walk back through the first delivery into each hop's source site.
  std::size_t guard = t.delivers.size() + 1;
  while (cur != nullptr && guard-- > 0) {
    path.push_back(*cur);
    const SiteId need = cur->src;
    cur = nullptr;
    if (t.has_origin && need == t.origin_site) break;
    for (const Delivery& d : t.delivers) {
      if (d.dst == need) {
        cur = &d;
        break;  // deliveries are unique per destination site
      }
    }
  }
  std::reverse(path.begin(), path.end());
  return path;
}

double known_at(const TraceInfo& t, SiteId site) {
  if (t.has_origin && site == t.origin_site) return t.origin_at;
  for (const Delivery& d : t.delivers) {
    if (d.dst == site) return d.at;
  }
  return -1;
}

void print_hop(const Run& run, const TraceInfo& t, const Delivery& d) {
  const double from = known_at(t, d.src);
  char lat[48];
  std::snprintf(lat, sizeof lat, "%.6g", from >= 0 ? d.at - from : 0.0);
  std::printf("    %s -> %s  at %.6g  latency %s", site_name(d.src).c_str(),
              site_name(d.dst).c_str(), d.at, lat);
  const auto it = run.spans.find(d.span);
  if (d.span != 0 && it != run.spans.end()) {
    const Span& s = it->second;
    std::printf("  bits %llu  attempts %u  faults %u", (unsigned long long)s.bits,
                s.attempts, s.faults);
  }
  std::printf("\n");
}

void analyze_run(const Run& run, const Options& opt) {
  std::printf("run %llu: %zu events (%llu recorded, %llu dropped), %zu spans, %zu traces\n",
              (unsigned long long)run.index, run.events.size(),
              (unsigned long long)run.total_recorded, (unsigned long long)run.dropped,
              run.spans.size(), run.traces.size());
  // Per-trace summary, slowest-to-converge last so it reads bottom-up.
  std::vector<std::pair<UpdateKey, const TraceInfo*>> order;
  for (const auto& [k, t] : run.traces) order.emplace_back(k, &t);
  std::stable_sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    const TraceInfo& ta = *a.second;
    const TraceInfo& tb = *b.second;
    const double ca = ta.converges.empty() ? -1 : ta.converges.back() - ta.origin_at;
    const double cb = tb.converges.empty() ? -1 : tb.converges.back() - tb.origin_at;
    return ca < cb;
  });
  for (const auto& [key, tp] : order) {
    const TraceInfo& t = *tp;
    std::printf("  %s: origin %s at %.6g, %zu deliveries, ", update_label(key).c_str(),
                t.has_origin ? site_name(t.origin_site).c_str() : "?", t.origin_at,
                t.delivers.size());
    if (t.converges.empty()) {
      std::printf("never converged\n");
    } else {
      std::printf("converged at %.6g (+%.6g)\n", t.converges.back(),
                  t.converges.back() - t.origin_at);
    }
    if (opt.tree) {
      for (const Delivery& d : t.delivers) print_hop(run, t, d);
    }
  }
  // The convergence critical path of the slowest trace: the hop chain that
  // bounded fleet convergence, with per-hop latency/bits/retries charges.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TraceInfo& t = *it->second;
    if (t.converges.empty()) continue;
    const std::vector<Delivery> path = critical_path(t);
    std::printf("  critical path (%s, %zu hop(s), %.6g s origin-to-converge):\n",
                update_label(it->first).c_str(), path.size(),
                t.converges.back() - t.origin_at);
    for (const Delivery& d : path) print_hop(run, t, d);
    break;
  }
}

// ---- brute-force oracle ----------------------------------------------------
//
// Replays the raw event list forward with no reference to the analyzer's
// structures: per-trace knowledge sets, per-object visible host sets, and a
// recomputed converge sequence. Any disagreement with the emitted events or
// with the analyzer's critical path is a failure.
struct OracleResult {
  std::vector<std::string> failures;
};

void oracle_check(const Run& run, OracleResult* out) {
  const auto fail = [&](const std::string& m) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "run %llu: ", (unsigned long long)run.index);
    out->failures.push_back(buf + m);
  };
  if (run.dropped > 0) {
    fail("ring dropped events; a truncated dump cannot be validated");
    return;
  }
  for (const std::string& e : run.errors) fail("schema: " + e);
  if (run.events.size() != run.total_recorded) {
    fail("header total_recorded disagrees with the events array length");
  }
  // Hidden hosts: a failed session (span ok=false) can create an empty
  // replica that never shows up in the event stream, delaying converges the
  // visible-host replay below would predict earlier. Soundness checks still
  // run; only converge *completeness* is skipped then.
  bool any_failed_span = false;
  for (const auto& [id, s] : run.spans) {
    if (s.ended && !s.ok) any_failed_span = true;
    if (!s.ended) fail("span never ended");
    if (s.ended && s.end_at < s.begin_at) fail("span ends before it begins");
    if (s.parent != 0 && !run.spans.contains(s.parent)) fail("span parent unknown");
  }

  std::map<UpdateKey, std::map<SiteId, double>> known;     // first-known times
  std::map<std::uint64_t, std::vector<SiteId>> hosts;      // obj -> visible hosts
  std::map<UpdateKey, std::vector<double>> predicted;      // converge times
  std::map<UpdateKey, std::vector<double>> emitted;

  const auto add_host = [&hosts](std::uint64_t obj, SiteId s) {
    auto& h = hosts[obj];
    if (std::find(h.begin(), h.end(), s) == h.end()) h.push_back(s);
  };
  // The tracer's emission rule, reproduced independently: the systems check
  // convergence of exactly the update an origin/deliver event concerns, with
  // no memory — converge fires at *every* such event after which all current
  // hosts know the update (the origin's single-host converge is real, and a
  // delivery to a freshly-born replica re-closes the trace the birth
  // re-opened). A host born without the update silently re-opens its traces;
  // the next delivery of the update closes them again.
  const auto predict = [&](const UpdateKey& key, double at) {
    const auto& k = known[key];
    for (const SiteId s : hosts[std::get<0>(key)]) {
      if (!k.contains(s)) return;
    }
    predicted[key].push_back(at);
  };

  for (std::size_t i = 0; i < run.events.size(); ++i) {
    const RawEvent& e = run.events[i];
    using T = obs::CausalEventType;
    if (e.type == T::kOrigin) {
      const UpdateKey key{e.obj, e.site, e.seq};
      const SiteId site{static_cast<std::uint32_t>(e.site)};
      if (known[key].contains(site)) fail("origin of an already-known update");
      known[key][site] = e.at;
      add_host(e.obj, site);
      predict(key, e.at);
    } else if (e.type == T::kDeliver) {
      const UpdateKey key{e.obj, e.site, e.seq};
      const SiteId src{static_cast<std::uint32_t>(e.src)};
      const SiteId dst{static_cast<std::uint32_t>(e.dst)};
      auto& k = known[key];
      if (k.contains(dst)) fail("duplicate delivery to one site: " + update_label(key));
      if (!k.contains(src) || k[src] > e.at) {
        fail("delivery from a site that does not know the update yet: " +
             update_label(key));
      }
      k[dst] = e.at;
      add_host(e.obj, dst);
      predict(key, e.at);
    } else if (e.type == T::kConverge) {
      const UpdateKey key{e.obj, e.site, e.seq};
      emitted[key].push_back(e.at);
      // Soundness: every visible host of the object knows the update by now.
      for (const SiteId s : hosts[e.obj]) {
        if (!known[key].contains(s) || known[key][s] > e.at) {
          fail("converge emitted while a visible host lacks " + update_label(key));
          break;
        }
      }
    }
  }
  // Completeness: without failed sessions the visible hosts ARE the hosts, so
  // the emitted converge sequence must equal the brute-force prediction.
  if (!any_failed_span) {
    for (const auto& [key, times] : predicted) {
      const auto it = emitted.find(key);
      const std::vector<double> got = it == emitted.end() ? std::vector<double>{}
                                                          : it->second;
      if (got != times) {
        fail("converge sequence mismatch for " + update_label(key) + ": oracle " +
             std::to_string(times.size()) + " event(s), dump " +
             std::to_string(got.size()));
      }
    }
    for (const auto& [key, times] : emitted) {
      if (!predicted.contains(key)) {
        fail("dump converges " + update_label(key) + " but the oracle never does");
      }
    }
  }
  // Critical-path agreement: independent recomputation of origin-to-converge
  // latency as the max first-known time, compared with the analyzer's walk.
  for (const auto& [key, t] : run.traces) {
    if (t.converges.empty() || !t.has_origin) continue;
    double max_known = t.origin_at;
    for (const Delivery& d : t.delivers) max_known = std::max(max_known, d.at);
    const std::vector<Delivery> path = critical_path(t);
    const double path_end = path.empty() ? t.origin_at : path.back().at;
    // The last converge coincides with the delivery (or origin) completing
    // coverage; the analyzer's path must end exactly there.
    if (!any_failed_span && path_end != t.converges.back()) {
      fail("analyzer critical path ends at " + std::to_string(path_end) +
           " but the trace converged at " + std::to_string(t.converges.back()) +
           " for " + update_label(key));
    }
    // Path must chain: each hop leaves from a site that knows the update.
    double cursor = t.origin_at;
    SiteId at_site = t.origin_site;
    for (const Delivery& d : path) {
      const double src_known = known_at(t, d.src);
      if (d.src != at_site && src_known < 0) {
        fail("critical path hop departs an unknowing site for " + update_label(key));
      }
      if (d.at < cursor) fail("critical path runs backward for " + update_label(key));
      cursor = d.at;
      at_site = d.dst;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  const std::string text = read_file(opt.path);
  obs::JsonValue doc;
  std::string error;
  if (!obs::json_parse(text, &doc, &error)) {
    std::fprintf(stderr, "error: %s: %s\n", opt.path.c_str(), error.c_str());
    return 2;
  }
  const obs::JsonValue* schema = doc.find("schema");
  if (schema == nullptr || schema->string != "optrep.causal/v1") {
    std::fprintf(stderr, "error: %s is not an optrep.causal/v1 document\n",
                 opt.path.c_str());
    return 2;
  }

  std::vector<Run> runs;
  if (const obs::JsonValue* arr = doc.find("runs"); arr != nullptr && arr->is_array()) {
    for (std::size_t k = 0; k < arr->items.size(); ++k) {
      if (opt.run >= 0 && static_cast<std::size_t>(opt.run) != k) continue;
      runs.push_back(parse_run(arr->items[k], k));
    }
    if (opt.run >= 0 && runs.empty()) {
      std::fprintf(stderr, "error: --run=%ld out of range (%zu runs)\n", opt.run,
                   arr->items.size());
      return 2;
    }
  } else {
    runs.push_back(parse_run(doc, 0));
  }

  for (const Run& run : runs) analyze_run(run, opt);

  if (!opt.perfetto_out.empty()) {
    if (runs.size() != 1) {
      std::fprintf(stderr, "error: --perfetto-out needs a single run (use --run=K)\n");
      return 2;
    }
    const Run& run = runs.front();
    // Refill a tracer from the parsed events and reuse the library exporter.
    // Trace ids are re-derived from the update identity so a double-typed DOM
    // cannot round them.
    obs::CausalTracer t(static_cast<std::uint64_t>(run.run_seed),
                        std::max<std::size_t>(1, run.events.size()));
    for (const RawEvent& e : run.events) {
      obs::CausalEvent c;
      c.at = e.at;
      c.type = e.type;
      c.obj = ObjectId{static_cast<std::uint32_t>(e.obj)};
      c.site = SiteId{static_cast<std::uint32_t>(e.site)};
      c.seq = e.seq != 0 ? e.seq : e.value;
      c.span = e.span;
      c.parent = e.parent;
      c.src = SiteId{static_cast<std::uint32_t>(e.src)};
      c.dst = SiteId{static_cast<std::uint32_t>(e.dst)};
      c.attempt = e.attempt;
      c.bits = e.bits;
      c.forward = e.forward;
      c.ok = e.ok;
      c.fault = fault_from_string(e.fault);
      using T = obs::CausalEventType;
      if (e.type == T::kOrigin || e.type == T::kDeliver || e.type == T::kConverge) {
        c.trace = t.trace_id(c.obj, c.site, c.seq);
      }
      t.record(c);
    }
    write_file(opt.perfetto_out, obs::causal_to_perfetto_json(t));
    std::printf("wrote %s\n", opt.perfetto_out.c_str());
  }

  bool failed = false;
  for (const Run& run : runs) {
    if (!run.errors.empty() && !opt.check) {
      for (const std::string& e : run.errors) {
        std::fprintf(stderr, "warning: run %llu: %s\n", (unsigned long long)run.index,
                     e.c_str());
      }
    }
    if (opt.check) {
      OracleResult res;
      oracle_check(run, &res);
      if (res.failures.empty()) {
        std::printf("run %llu: oracle agrees (%zu traces, %zu spans validated)\n",
                    (unsigned long long)run.index, run.traces.size(), run.spans.size());
      } else {
        for (const std::string& f : res.failures) {
          std::fprintf(stderr, "FAIL: %s\n", f.c_str());
        }
        failed = true;
      }
    }
  }
  return failed ? 1 : 0;
}
