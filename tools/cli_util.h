// Shared strict argument parsing for the optrep command-line tools.
//
// Every tool keeps its own [[noreturn]] usage(msg) with tool-specific help
// text; what is shared is the flag matcher and the validation discipline:
// integers are parsed signed-first so "-5" is a typed usage error instead of
// a silent strtoul wrap, trailing garbage ("4x") rejects instead of parsing
// as 4, and probabilities must lie in [0, 1]. The cli_args ctest pins these
// contracts for optrep_cli, optrep_serve and optrep_load alike.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include "vv/rotating_vector.h"

namespace optrep::cli {

// Matches "--name" (value = "") or "--name=value".
inline bool take(const char* arg, const char* name, std::string* value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = "";
    return true;
  }
  if (arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

// Each tool's usage(msg) — noreturn, exits 2.
using FailFn = void (*)(const char*);

inline long long parse_ll(const std::string& v, FailFn fail, const char* msg) {
  char* end = nullptr;
  const long long n = std::strtoll(v.c_str(), &end, 10);
  if (v.empty() || end == nullptr || *end != '\0') fail(msg);
  return n;
}

inline std::uint32_t parse_positive_u32(const std::string& v, FailFn fail,
                                        const char* msg) {
  const long long n = parse_ll(v, fail, msg);
  if (n <= 0 || n > std::numeric_limits<std::uint32_t>::max()) fail(msg);
  return static_cast<std::uint32_t>(n);
}

inline std::uint32_t parse_u32(const std::string& v, FailFn fail, const char* msg) {
  const long long n = parse_ll(v, fail, msg);
  if (n < 0 || n > std::numeric_limits<std::uint32_t>::max()) fail(msg);
  return static_cast<std::uint32_t>(n);
}

inline unsigned parse_positive_unsigned(const std::string& v, FailFn fail,
                                        const char* msg) {
  const long long n = parse_ll(v, fail, msg);
  if (n <= 0 || n > std::numeric_limits<unsigned>::max()) fail(msg);
  return static_cast<unsigned>(n);
}

inline std::uint64_t parse_u64(const std::string& v, FailFn fail, const char* msg) {
  char* end = nullptr;
  if (!v.empty() && v[0] == '-') fail(msg);
  const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
  if (v.empty() || end == nullptr || *end != '\0') fail(msg);
  return n;
}

inline std::uint16_t parse_port(const std::string& v, FailFn fail, const char* msg) {
  const long long n = parse_ll(v, fail, msg);
  if (n < 0 || n > 65535) fail(msg);
  return static_cast<std::uint16_t>(n);
}

// A probability / fraction in [0, 1], strict.
inline double parse_unit(const std::string& v, FailFn fail, const char* msg) {
  char* end = nullptr;
  const double d = std::strtod(v.c_str(), &end);
  if (v.empty() || end == nullptr || *end != '\0' || !(d >= 0.0) || !(d <= 1.0)) {
    fail(msg);
  }
  return d;
}

inline vv::VectorKind parse_kind(const std::string& v, FailFn fail, const char* msg) {
  if (v == "brv") return vv::VectorKind::kBrv;
  if (v == "crv") return vv::VectorKind::kCrv;
  if (v == "srv") return vv::VectorKind::kSrv;
  fail(msg);
  return vv::VectorKind::kSrv;  // unreachable
}

}  // namespace optrep::cli
