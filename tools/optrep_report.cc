// optrep_report — compare two sets of measurement artifacts and gate on
// regressions.
//
//   optrep_report --baseline=PATH --current=PATH [options]
//
// PATH is either a single JSON document (BENCH_*.json, optrep.run/v1) or a
// directory; in directory mode every *.json in the baseline is paired with
// the same-named file under --current. Documents are flattened to scalar
// paths and diffed (see src/obs/report_diff.h): traffic (bits/bytes),
// wall-clock span percentiles (wall_ns), γ/redundancy accounting, drop
// counters and bound violations gate on increase; consistency booleans gate
// on decrease; everything else is informational.
//
// Options:
//   --threshold=T   relative regression tolerance: "5%" or "0.05" (default 5%)
//   --out=FILE      write the comparison (markdown, or CSV with --csv) to FILE
//                   instead of stdout
//   --csv           emit the flat CSV table instead of markdown
//   --strict        also fail on missing/new metric paths and string drift
//
// Exit codes: 0 = no regression; 1 = gate failed; 2 = usage/IO/parse error.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/report_diff.h"

using namespace optrep;
namespace fs = std::filesystem;

namespace {

struct Args {
  std::string baseline;
  std::string current;
  std::string out;
  obs::DiffOptions diff;
  bool csv{false};
};

[[noreturn]] void usage(const char* msg) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage: optrep_report --baseline=PATH --current=PATH\n"
               "       [--threshold=5%%|0.05] [--out=FILE] [--csv] [--strict]\n"
               "PATH: a JSON artifact or a directory of *.json artifacts.\n"
               "exit: 0 pass, 1 regression, 2 usage/IO/parse error\n");
  std::exit(2);
}

bool take(const char* arg, const char* name, std::string* value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = "";
    return true;
  }
  if (arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

double parse_threshold(const std::string& v) {
  if (v.empty()) usage("--threshold needs a value");
  char* end = nullptr;
  double t = std::strtod(v.c_str(), &end);
  if (end != nullptr && *end == '%') {
    t /= 100.0;
    ++end;
  }
  if (end == nullptr || *end != '\0' || t < 0) usage("bad --threshold (use 5%% or 0.05)");
  return t;
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (take(argv[i], "--baseline", &v)) {
      a.baseline = v;
    } else if (take(argv[i], "--current", &v)) {
      a.current = v;
    } else if (take(argv[i], "--threshold", &v)) {
      a.diff.threshold = parse_threshold(v);
    } else if (take(argv[i], "--out", &v)) {
      if (v.empty()) usage("--out needs a file path");
      a.out = v;
    } else if (take(argv[i], "--csv", &v)) {
      a.csv = true;
    } else if (take(argv[i], "--strict", &v)) {
      a.diff.strict = true;
    } else {
      usage((std::string("unknown option: ") + argv[i]).c_str());
    }
  }
  if (a.baseline.empty() || a.current.empty()) {
    usage("--baseline and --current are required");
  }
  return a;
}

bool read_file(const fs::path& path, std::string* out) {
  std::FILE* f = std::fopen(path.string().c_str(), "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  out->clear();
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

// Load and flatten one artifact; exits with code 2 on IO or parse failure —
// a gate that cannot read its inputs must not look green.
obs::FlatDoc load_doc(const fs::path& path) {
  std::string text;
  if (!read_file(path, &text)) {
    std::fprintf(stderr, "optrep_report: cannot read %s\n", path.string().c_str());
    std::exit(2);
  }
  obs::JsonValue doc;
  std::string err;
  if (!obs::json_parse(text, &doc, &err)) {
    std::fprintf(stderr, "optrep_report: %s: %s\n", path.string().c_str(), err.c_str());
    std::exit(2);
  }
  return obs::json_flatten(doc);
}

std::vector<fs::path> json_files_in(const fs::path& dir) {
  std::vector<fs::path> out;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.is_regular_file() && e.path().extension() == ".json") out.push_back(e.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  const fs::path base_path(a.baseline), cur_path(a.current);
  std::error_code ec;
  if (!fs::exists(base_path, ec)) usage("--baseline path does not exist");
  if (!fs::exists(cur_path, ec)) usage("--current path does not exist");

  std::vector<obs::DocDiff> diffs;
  bool missing_pair = false;
  if (fs::is_directory(base_path)) {
    if (!fs::is_directory(cur_path)) usage("--baseline is a directory but --current is not");
    const auto files = json_files_in(base_path);
    if (files.empty()) {
      std::fprintf(stderr, "optrep_report: no *.json under %s\n",
                   base_path.string().c_str());
      return 2;
    }
    for (const auto& bf : files) {
      const fs::path cf = cur_path / bf.filename();
      if (!fs::exists(cf, ec)) {
        std::fprintf(stderr, "optrep_report: %s has no counterpart under %s\n",
                     bf.filename().string().c_str(), cur_path.string().c_str());
        missing_pair = true;
        continue;
      }
      diffs.push_back(
          obs::diff_docs(bf.filename().string(), load_doc(bf), load_doc(cf), a.diff));
    }
  } else {
    diffs.push_back(obs::diff_docs(base_path.filename().string(), load_doc(base_path),
                                   load_doc(cur_path), a.diff));
  }

  const std::string rendered =
      a.csv ? obs::diff_to_csv(diffs) : obs::diff_to_markdown(diffs, a.diff);
  if (a.out.empty()) {
    std::fputs(rendered.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(a.out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "optrep_report: cannot write %s\n", a.out.c_str());
      return 2;
    }
    std::fwrite(rendered.data(), 1, rendered.size(), f);
    std::fclose(f);
  }

  const bool failed = obs::gate_failed(diffs, a.diff) || (a.diff.strict && missing_pair);
  if (missing_pair && !a.diff.strict) {
    std::fprintf(stderr, "optrep_report: warning: unpaired baseline files skipped\n");
  }
  if (failed) {
    std::size_t regressions = 0;
    for (const auto& d : diffs) regressions += d.regressions();
    std::fprintf(stderr, "optrep_report: GATE FAILED (%zu regression(s), threshold %.4g%%)\n",
                 regressions, a.diff.threshold * 100.0);
    return 1;
  }
  return 0;
}
