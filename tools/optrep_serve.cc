// optrep_serve — the epoll-driven optimistic-replication sync server.
//
// Hosts a ReplicaStore of rotating vectors and speaks the optrep.serve wire
// protocol (src/net/wire_stream.h): COMPARE, SYNCB/SYNCC/SYNCS push and pull
// sessions over persistent TCP connections, N reactor workers sharing the
// store through per-slot optimistic locks and whole-session write tickets.
// Runs until SIGINT/SIGTERM (or --max-seconds), then reports its counters.
//
//   optrep_serve [--host=A] [--port=N]        bind address (port 0 = ephemeral)
//                [--workers=N]                reactor threads (default 1)
//                [--kind=brv|crv|srv]         the store's sync algorithm
//                [--replicas=N]               replica slots (default 16)
//                [--capacity=N]               max sites per replica (default 1024)
//                [--prefill=N]                seeded local updates per replica
//                [--seed=N]
//                [--burst=N]                  pipelined sender batch (default 32)
//                [--level-triggered]          epoll LT fallback (default ET)
//                [--port-file=FILE]           write the bound port (CI handshake)
//                [--stats-out=FILE]           write optrep.serve.stats/v1 on exit
//                [--max-seconds=N]            exit by deadline (0 = run forever)
#include <signal.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "net/server.h"
#include "obs/export.h"
#include "tools/cli_util.h"

using namespace optrep;

namespace {

volatile sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

[[noreturn]] void usage(const char* msg) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage: optrep_serve [--host=A] [--port=N] [--workers=N]\n"
               "       [--kind=brv|crv|srv] [--replicas=N] [--capacity=N]\n"
               "       [--prefill=N] [--seed=N] [--burst=N] [--level-triggered]\n"
               "       [--port-file=FILE] [--stats-out=FILE] [--max-seconds=N]\n");
  std::exit(2);
}

bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

std::string stats_json(const net::Server& sv) {
  const net::ServerStats s = sv.stats();
  const net::ReplicaStore::Counters c = sv.store().counters();
  const rt::OLock::Counters oc = sv.store().olock_counters();
  obs::JsonWriter w;
  w.begin_object()
      .field("schema", "optrep.serve.stats/v1")
      .field("workers", std::uint64_t{sv.config().workers})
      .field("replicas", sv.store().replicas())
      .field("conns_accepted", s.conns_accepted)
      .field("conns_closed", s.conns_closed)
      .field("hellos", s.hellos)
      .field("bad_hellos", s.bad_hellos)
      .field("sessions_completed", s.sessions_completed)
      .field("sessions_aborted", s.sessions_aborted)
      .field("compare_sessions", s.compare_sessions)
      .field("push_sessions", s.push_sessions)
      .field("pull_sessions", s.pull_sessions)
      .field("commits", s.commits)
      .field("noops", s.noops)
      .field("capacity_rejects", s.capacity_rejects)
      .field("parked", s.parked)
      .field("bytes_rx", s.bytes_rx)
      .field("bytes_tx", s.bytes_tx)
      .field("decode_errors", s.decode_errors)
      .field("backpressure_pauses", s.backpressure_pauses)
      .field("store_snapshots", c.snapshots)
      .field("store_snapshot_retries", c.snapshot_retries)
      .field("store_snapshot_fallbacks", c.snapshot_fallbacks)
      .field("store_commits", c.commits)
      .field("store_capacity_rejects", c.capacity_rejects)
      .field("store_write_parks", c.write_parks)
      .field("olock_acquisitions", oc.acquisitions)
      .field("olock_opt_retries", oc.opt_retries)
      .field("olock_queue_waits", oc.queue_waits)
      .end_object();
  return w.take();
}

}  // namespace

int main(int argc, char** argv) {
  net::ServerConfig cfg;
  std::string port_file;
  std::string stats_out;
  std::uint32_t max_seconds = 0;
  std::uint64_t seed = 1;
  std::uint32_t prefill = 0;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (cli::take(argv[i], "--host", &v)) {
      if (v.empty()) usage("--host needs an address");
      cfg.host = v;
    } else if (cli::take(argv[i], "--port", &v)) {
      cfg.port = cli::parse_port(v, usage, "--port must be an integer in [0, 65535]");
    } else if (cli::take(argv[i], "--workers", &v)) {
      cfg.workers =
          cli::parse_positive_unsigned(v, usage, "--workers must be a positive integer worker count");
    } else if (cli::take(argv[i], "--kind", &v)) {
      cfg.store.kind = cli::parse_kind(v, usage, "--kind must be brv, crv or srv");
    } else if (cli::take(argv[i], "--replicas", &v)) {
      cfg.store.replicas =
          cli::parse_positive_u32(v, usage, "--replicas must be a positive integer");
    } else if (cli::take(argv[i], "--capacity", &v)) {
      cfg.store.site_capacity =
          cli::parse_positive_u32(v, usage, "--capacity must be a positive integer");
    } else if (cli::take(argv[i], "--prefill", &v)) {
      prefill = cli::parse_u32(v, usage, "--prefill must be a non-negative integer");
    } else if (cli::take(argv[i], "--seed", &v)) {
      seed = cli::parse_u64(v, usage, "--seed must be a non-negative integer");
    } else if (cli::take(argv[i], "--burst", &v)) {
      cfg.burst = cli::parse_positive_u32(v, usage, "--burst must be a positive integer");
    } else if (cli::take(argv[i], "--level-triggered", &v)) {
      cfg.edge_triggered = false;
    } else if (cli::take(argv[i], "--port-file", &v)) {
      if (v.empty()) usage("--port-file needs a file path");
      port_file = v;
    } else if (cli::take(argv[i], "--stats-out", &v)) {
      if (v.empty()) usage("--stats-out needs a file path");
      stats_out = v;
    } else if (cli::take(argv[i], "--max-seconds", &v)) {
      max_seconds = cli::parse_u32(v, usage, "--max-seconds must be a non-negative integer");
    } else {
      usage((std::string("unknown option: ") + argv[i]).c_str());
    }
  }
  if (cfg.store.site_capacity < cfg.store.replicas) {
    usage("--capacity must be >= --replicas (own sites must fit)");
  }
  cfg.store.seed = seed;
  cfg.store.prefill_updates = prefill;

  net::Server server(cfg);
  std::string err;
  if (!server.start(&err)) {
    std::fprintf(stderr, "optrep_serve: %s\n", err.c_str());
    return 1;
  }
  std::fprintf(stderr, "optrep_serve: listening on %s:%u (%u worker%s)\n",
               cfg.host.c_str(), server.port(), cfg.workers, cfg.workers == 1 ? "" : "s");
  if (!port_file.empty() &&
      !write_file(port_file, std::to_string(server.port()) + "\n")) {
    std::fprintf(stderr, "optrep_serve: cannot write %s\n", port_file.c_str());
    server.stop();
    return 1;
  }

  struct sigaction sa {};
  sa.sa_handler = on_signal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(max_seconds);
  while (g_stop == 0) {
    if (max_seconds > 0 && std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.stop();

  const std::string json = stats_json(server);
  if (!stats_out.empty() && !write_file(stats_out, json + "\n")) {
    std::fprintf(stderr, "optrep_serve: cannot write %s\n", stats_out.c_str());
    return 1;
  }
  const net::ServerStats s = server.stats();
  std::fprintf(stderr,
               "optrep_serve: %llu sessions (%llu aborted), %llu commits, "
               "%llu parked, %llu bytes rx, %llu bytes tx\n",
               static_cast<unsigned long long>(s.sessions_completed),
               static_cast<unsigned long long>(s.sessions_aborted),
               static_cast<unsigned long long>(s.commits),
               static_cast<unsigned long long>(s.parked),
               static_cast<unsigned long long>(s.bytes_rx),
               static_cast<unsigned long long>(s.bytes_tx));
  return 0;
}
