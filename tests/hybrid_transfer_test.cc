// Hybrid transfer (§6): "a system may preserve a short history of operations
// and when a replica is too old, the entire object is transmitted."
#include <gtest/gtest.h>

#include "repl/op_system.h"

namespace optrep::repl {
namespace {

const SiteId A{0}, B{1}, C{2};
const ObjectId kObj{0};

OpSystem::Config cfg(std::uint32_t log_limit) {
  OpSystem::Config c;
  c.n_sites = 4;
  c.cost = CostModel{.n = 8, .m = 1 << 16};
  c.op_log_limit = log_limit;
  return c;
}

TEST(HybridTransfer, FreshPeerWithinLogLimitGetsOps) {
  OpSystem sys(cfg(/*log_limit=*/16));
  sys.create_object(A, kObj, "aaaa");
  for (int i = 0; i < 5; ++i) sys.update(A, kObj, "op");
  auto out = sys.sync(B, A, kObj);
  EXPECT_FALSE(out.state_fallback);
  EXPECT_EQ(sys.totals().state_fallbacks, 0u);
  EXPECT_TRUE(sys.replicas_consistent(kObj));
}

TEST(HybridTransfer, StalePeerForcesStateFallback) {
  OpSystem sys(cfg(/*log_limit=*/4));
  sys.create_object(A, kObj, std::string(100, 'x'));
  // 20 updates: the creation op's payload is long evicted from A's log.
  for (int i = 0; i < 20; ++i) sys.update(A, kObj, "op");
  auto out = sys.sync(B, A, kObj);
  EXPECT_TRUE(out.state_fallback);
  // The fallback ships the whole object: all op bytes.
  EXPECT_EQ(out.state_fallback_bytes, sys.replica(A, kObj).graph.total_op_bytes());
  EXPECT_EQ(sys.totals().state_fallbacks, 1u);
  // The graph metadata still synchronized fully.
  EXPECT_TRUE(sys.replicas_consistent(kObj));
}

TEST(HybridTransfer, RecentPeerAvoidsFallbackAfterCatchUp) {
  OpSystem sys(cfg(/*log_limit=*/4));
  sys.create_object(A, kObj, "base");
  for (int i = 0; i < 10; ++i) sys.update(A, kObj, "old");
  sys.sync(B, A, kObj);  // fallback (B way behind)
  ASSERT_EQ(sys.totals().state_fallbacks, 1u);
  // Now B is current; small increments stay within the log.
  for (int round = 0; round < 5; ++round) {
    sys.update(A, kObj, "new");
    auto out = sys.sync(B, A, kObj);
    EXPECT_FALSE(out.state_fallback) << "round " << round;
  }
  EXPECT_EQ(sys.totals().state_fallbacks, 1u);
  EXPECT_TRUE(sys.replicas_consistent(kObj));
}

TEST(HybridTransfer, UnlimitedLogNeverFallsBack) {
  OpSystem sys(cfg(/*log_limit=*/0));
  sys.create_object(A, kObj, "base");
  for (int i = 0; i < 50; ++i) sys.update(A, kObj, "op");
  sys.sync(B, A, kObj);
  EXPECT_EQ(sys.totals().state_fallbacks, 0u);
}

TEST(HybridTransfer, MergeNodesNeverForceFallback) {
  // Merge operations carry no payload; a peer missing only merge nodes must
  // not trigger the state path.
  OpSystem sys(cfg(/*log_limit=*/3));
  sys.create_object(A, kObj, "base");
  sys.sync(B, A, kObj);
  sys.update(A, kObj, "a1");
  sys.update(B, kObj, "b1");
  auto rec = sys.sync(B, A, kObj);  // reconciliation creates a merge node
  ASSERT_EQ(rec.action, OpSyncOutcome::Action::kReconciled);
  auto back = sys.sync(A, B, kObj);  // A needs b1 + the merge node: in log
  EXPECT_FALSE(back.state_fallback);
  EXPECT_TRUE(sys.replicas_consistent(kObj));
}

TEST(HybridTransfer, ReceiverLogInheritedOnFallback) {
  OpSystem sys(cfg(/*log_limit=*/4));
  sys.create_object(A, kObj, "base");
  for (int i = 0; i < 12; ++i) sys.update(A, kObj, "op");
  sys.sync(B, A, kObj);  // fallback: B adopts A's retained window
  // B can immediately serve a third peer that is only slightly behind A.
  sys.sync(C, A, kObj);  // C gets the state too (also stale)
  sys.update(B, kObj, "fresh");
  auto out = sys.sync(C, B, kObj);  // C needs only "fresh": from B's log
  EXPECT_FALSE(out.state_fallback);
  auto to_a = sys.sync(A, B, kObj);  // and A catches up the same way
  EXPECT_FALSE(to_a.state_fallback);
  EXPECT_TRUE(sys.replicas_consistent(kObj));
}

TEST(HybridTransfer, FallbackAccountingAccumulates) {
  OpSystem sys(cfg(/*log_limit=*/2));
  sys.create_object(A, kObj, std::string(50, 'p'));
  for (int i = 0; i < 8; ++i) sys.update(A, kObj, std::string(10, 'q'));
  sys.sync(B, A, kObj);
  for (int i = 0; i < 8; ++i) sys.update(A, kObj, std::string(10, 'r'));
  sys.sync(C, A, kObj);
  EXPECT_EQ(sys.totals().state_fallbacks, 2u);
  EXPECT_EQ(sys.totals().state_fallback_bytes,
            (50 + 8 * 10) + (50 + 16 * 10u));
}

}  // namespace
}  // namespace optrep::repl
