// FlatSiteIndex growth racing optimistic readers — the concurrency property
// the arena backing buys (vv/flat_index.h header, rule 1). A heap-backed
// table must never rehash under readers: the old arrays are freed. An
// arena-backed table retires its outgrown arrays IN PLACE (still mapped), so
// a reader racing a rehash reads stale-but-defined cells and its olock
// validation rejects the attempt. This test drives a writer through many
// table doublings (no reserve — growth is the point) while readers probe
// optimistically; every VALIDATED read is checked against a writer-built
// per-version oracle. The conc_tests binary runs wholesale under TSan in CI,
// so the memory model of the racing rehash is checked there too.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "rt/olock.h"
#include "vv/arena.h"
#include "vv/flat_index.h"

namespace optrep::vv {
namespace {

TEST(ConcurrentFlatIndex, ValidatedReadsSurviveArenaRehash) {
  constexpr std::uint32_t kKeys = 4096;  // ≫ kMinCapacity: ~10 doublings
  constexpr std::uint32_t kReaders = 3;

  Arena arena;
  FlatSiteIndex idx;
  idx.attach_arena(&arena);  // growth retires old arrays in place

  // Writer-only oracle: lock version -> number of keys inserted by that
  // committed epoch. Key k is always inserted with slot k, in key order, so
  // the full table contents are reconstructible from the count alone.
  std::unordered_map<std::uint64_t, std::uint32_t> oracle;
  oracle[idx.olock().version()] = 0;

  struct Obs {
    std::uint64_t version;
    std::uint32_t key;
    std::uint32_t slot;  // find() result
  };
  std::atomic<bool> stop{false};
  std::vector<std::vector<Obs>> seen(kReaders);
  std::vector<std::thread> readers;
  for (std::uint32_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&idx, &stop, &seen, r] {
      Rng rng(0xfeedULL + r);
      while (!stop.load(std::memory_order_acquire)) {
        const auto key = static_cast<std::uint32_t>(rng.below(kKeys));
        const std::uint64_t snap = idx.olock().read_begin();
        const std::uint32_t slot = idx.find(SiteId{key});
        if (idx.olock().read_validate(snap)) {
          seen[r].push_back({snap >> 1, key, slot});
        }
      }
    });
  }

  for (std::uint32_t k = 0; k < kKeys; ++k) {
    {
      rt::OLockGuard g(idx.olock());
      idx.insert(SiteId{k}, k);
    }
    oracle[idx.olock().version()] = k + 1;
    // A back-to-back locked loop leaves readers almost no committed window;
    // the periodic yield spreads validated reads across table generations.
    if ((k & 127u) == 0) std::this_thread::yield();
  }
  // Let the readers observe the fully-populated final epoch before stopping,
  // so present-key hits are guaranteed even on a slow machine.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  // The table grew through many arena rehashes while readers probed.
  EXPECT_GT(arena.stats().retired_bytes, 0u);
  EXPECT_EQ(idx.size(), kKeys);
  for (std::uint32_t k = 0; k < kKeys; ++k) EXPECT_EQ(idx.find(SiteId{k}), k);

  std::uint64_t validated = 0, hits = 0;
  for (const auto& obs_list : seen) {
    for (const Obs& o : obs_list) {
      auto it = oracle.find(o.version);
      // A validated read's version names exactly one committed epoch the
      // writer recorded (it alone advances the lock).
      ASSERT_NE(it, oracle.end()) << "validated read at unknown version " << o.version;
      const std::uint32_t count = it->second;
      if (o.key < count) {
        EXPECT_EQ(o.slot, o.key) << "key " << o.key << " at epoch with " << count;
        ++hits;
      } else {
        EXPECT_EQ(o.slot, FlatSiteIndex::kNilSlot)
            << "phantom key " << o.key << " at epoch with " << count;
      }
      ++validated;
    }
  }
  // Smoke the harness itself: with 4096 insertions the readers must have
  // landed plenty of validated reads, some of them present-key hits.
  EXPECT_GT(validated, 100u);
  EXPECT_GT(hits, 0u);
}

}  // namespace
}  // namespace optrep::vv
