// Table 2's communication upper bounds as parameterized unit tests: for
// every (kind, n) cell the worst-case synchronization must stay within the
// paper's printed closed form. (bench_table2 prints the same numbers; this
// keeps them enforced under ctest.)
#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "vv/session.h"

namespace optrep::vv {
namespace {

struct BoundCase {
  VectorKind kind;
  std::uint32_t n;
};

class Table2Bounds : public ::testing::TestWithParam<BoundCase> {};

RotatingVector linear(std::uint32_t n) {
  RotatingVector v;
  for (std::uint32_t i = 0; i < n; ++i) v.record_update(SiteId{i});
  return v;
}

std::uint64_t bound_for(const CostModel& cm, VectorKind kind) {
  switch (kind) {
    case VectorKind::kBrv: return cm.brv_upper_bound_bits();
    case VectorKind::kCrv: return cm.crv_upper_bound_bits();
    case VectorKind::kSrv: return cm.srv_upper_bound_bits();
  }
  return 0;
}

TEST_P(Table2Bounds, WorstCaseFullCopyStaysWithinBound) {
  const auto [kind, n] = GetParam();
  const CostModel cm{.n = n, .m = 1 << 16};
  const RotatingVector b = linear(n);
  RotatingVector a;
  auto opt = test::ideal(kind, n);
  opt.known_relation = Ordering::kBefore;
  sim::EventLoop loop;
  const auto rep = sync_rotating(loop, a, b, opt);
  EXPECT_LE(rep.total_bits(), bound_for(cm, kind));
  EXPECT_TRUE(a.identical_to(b));
}

TEST_P(Table2Bounds, SkipHeavyWorkloadStaysWithinBound) {
  // Exercise the SKIP machinery too: the receiver knows interleaved tagged
  // segments of the sender, so SRV emits skips; traffic must still respect
  // the n·log(8mn) + n·log(2n) + 1 budget.
  const auto [kind, n] = GetParam();
  if (kind == VectorKind::kBrv) {
    GTEST_SKIP() << "BRV supports no reconciliation (§3.1)";
  }
  const CostModel cm{.n = n, .m = 1 << 16};
  // Build b with many single-element tagged segments via reconciliations.
  RotatingVector b;
  b.record_update(SiteId{0});
  for (std::uint32_t i = 1; i < n; ++i) {
    RotatingVector side;
    side.record_update(SiteId{i});
    sim::EventLoop loop;
    auto opt = test::ideal(kind, n);
    sync_rotating(loop, b, side, opt);  // concurrent: tags element i
  }
  RotatingVector a = b;  // receiver knows everything…
  a.record_update(SiteId{0});
  // …and b advances so a must listen past tagged elements.
  b.record_update(SiteId{n / 2});
  sim::EventLoop loop;
  auto opt = test::ideal(kind, n);
  const auto rep = sync_rotating(loop, a, b, opt);
  EXPECT_LE(rep.total_bits(), bound_for(cm, kind) + compare_cost_bits(cm));
  EXPECT_TRUE(a.same_values([&] {
    VersionVector o = a.to_version_vector();
    o.join(b.to_version_vector());
    return o;
  }()));
}

INSTANTIATE_TEST_SUITE_P(
    Cells, Table2Bounds,
    ::testing::Values(BoundCase{VectorKind::kBrv, 4}, BoundCase{VectorKind::kBrv, 32},
                      BoundCase{VectorKind::kBrv, 256}, BoundCase{VectorKind::kCrv, 4},
                      BoundCase{VectorKind::kCrv, 32}, BoundCase{VectorKind::kCrv, 256},
                      BoundCase{VectorKind::kSrv, 4}, BoundCase{VectorKind::kSrv, 32},
                      BoundCase{VectorKind::kSrv, 256}),
    [](const auto& info) {
      return std::string(to_string(info.param.kind)) + "N" +
             std::to_string(info.param.n);
    });

}  // namespace
}  // namespace optrep::vv
