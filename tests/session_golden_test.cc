// Golden-transcript regression for the session layer.
//
// tests/data/golden_sessions.txt was captured from the pre-refactor
// sessions (the monolithic actor implementation, before the sans-I/O
// protocol cores were split out of session.cc). This test regenerates the
// same seeded grid — every kind × transfer mode × frame budget, plus the
// traditional and Singhal–Kshemkalyani baselines and COMPARE sessions —
// and requires every SyncReport field and final vector digest to be
// bit-identical. Any drift in traffic accounting, element counts, timing,
// or the resulting vectors is a protocol change, not a refactor.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "vv/compare.h"
#include "vv/session.h"

namespace optrep::vv {
namespace {

struct VecPair {
  RotatingVector a;
  RotatingVector b;
};

VecPair make_pair_(Rng& rng, std::uint32_t n_sites, std::uint32_t shared,
                   std::uint32_t extra, bool concurrent) {
  VecPair p;
  for (std::uint32_t i = 0; i < shared; ++i)
    p.a.record_update(SiteId{static_cast<std::uint32_t>(rng.range(0, n_sites - 1))});
  p.b = p.a;
  for (std::uint32_t i = 0; i < extra; ++i)
    p.b.record_update(SiteId{static_cast<std::uint32_t>(rng.range(0, n_sites - 1))});
  if (concurrent) {
    for (std::uint32_t i = 0; i < extra / 2 + 1; ++i)
      p.a.record_update(SiteId{static_cast<std::uint32_t>(rng.range(0, n_sites - 1))});
  }
  return p;
}

std::string report_line(const char* tag, const SyncReport& r) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "%s %d %llu %llu %llu %llu %llu %llu %llu %llu %llu %llu %llu %llu %llu "
                "%llu %llu %llu %llu %.17g %.17g",
                tag, static_cast<int>(r.initial_relation),
                (unsigned long long)r.bits_fwd, (unsigned long long)r.bits_rev,
                (unsigned long long)r.bytes_fwd, (unsigned long long)r.bytes_rev,
                (unsigned long long)r.msgs_fwd, (unsigned long long)r.msgs_rev,
                (unsigned long long)r.frames_fwd, (unsigned long long)r.frames_rev,
                (unsigned long long)r.framed_bytes_fwd,
                (unsigned long long)r.framed_bytes_rev,
                (unsigned long long)r.elems_sent, (unsigned long long)r.elems_applied,
                (unsigned long long)r.elems_redundant,
                (unsigned long long)r.elems_straggler,
                (unsigned long long)r.elems_after_halt,
                (unsigned long long)(r.skip_msgs + r.segments_skipped * 1000000ull),
                (unsigned long long)r.ack_msgs, r.duration, r.receiver_done_at);
  return buf;
}

std::string digest_line(const char* tag, const RotatingVector& v) {
  std::uint64_t h = 1469598103934665603ull;
  for (auto it = v.begin(); it != v.end(); ++it) {
    h = (h ^ it->site.value) * 1099511628211ull;
    h = (h ^ it->value) * 1099511628211ull;
    h = (h ^ (it->conflict ? 2 : 0) ^ (it->segment ? 1 : 0)) * 1099511628211ull;
  }
  char buf[128];
  std::snprintf(buf, sizeof buf, "vec:%s %llu", tag, (unsigned long long)h);
  return buf;
}

// Regenerate the exact grid the golden file was captured from. The seed, the
// draw order and the session parameters must never change — edit the golden
// file and this generator together or not at all.
std::vector<std::string> generate_grid() {
  std::vector<std::string> out;
  Rng rng(424242);
  for (auto kind : {VectorKind::kBrv, VectorKind::kCrv, VectorKind::kSrv}) {
    for (auto mode :
         {TransferMode::kPipelined, TransferMode::kStopAndWait, TransferMode::kIdeal}) {
      for (std::uint32_t budget : {0u, 1u, 4u, 16u}) {
        for (int trial = 0; trial < 4; ++trial) {
          const bool concurrent = kind != VectorKind::kBrv && trial % 2 == 1;
          VecPair p = make_pair_(rng, 8, 25, 12 + trial * 7, concurrent);
          const Ordering rel = compare_fast(p.a, p.b);
          if (rel == Ordering::kEqual || rel == Ordering::kAfter) continue;
          if (kind == VectorKind::kBrv && rel == Ordering::kConcurrent) continue;
          SyncOptions opt;
          opt.kind = kind;
          opt.mode = mode;
          opt.cost = CostModel{.n = 8, .m = 1 << 16};
          opt.net = {.latency_s = 0.0013, .bandwidth_bits_per_s = 997.0};
          opt.net.frame_budget = budget;
          sim::EventLoop loop;
          const SyncReport r = sync_rotating(loop, p.a, p.b, opt);
          char tag[64];
          std::snprintf(tag, sizeof tag, "rot:%d:%d:%u:%d", (int)kind, (int)mode, budget,
                        trial);
          out.push_back(report_line(tag, r));
          out.push_back(digest_line(tag, p.a));
        }
      }
    }
  }
  for (std::uint32_t budget : {0u, 8u}) {
    for (int trial = 0; trial < 3; ++trial) {
      VecPair p = make_pair_(rng, 8, 25, 12 + trial * 7, trial == 1);
      VersionVector va = p.a.to_version_vector();
      const VersionVector vb = p.b.to_version_vector();
      SyncOptions opt;
      opt.cost = CostModel{.n = 8, .m = 1 << 16};
      opt.net = {.latency_s = 0.0013, .bandwidth_bits_per_s = 997.0};
      opt.net.frame_budget = budget;
      sim::EventLoop loop;
      char tag[64];
      std::snprintf(tag, sizeof tag, "trad:%u:%d", budget, trial);
      out.push_back(report_line(tag, sync_traditional(loop, va, vb, opt)));
      VersionVector va2 = p.a.to_version_vector();
      VersionVector last = p.a.to_version_vector();
      sim::EventLoop loop2;
      std::snprintf(tag, sizeof tag, "sk:%u:%d", budget, trial);
      out.push_back(report_line(tag, sync_singhal_kshemkalyani(loop2, va2, vb, last, opt)));
    }
  }
  for (int trial = 0; trial < 6; ++trial) {
    VecPair p = make_pair_(rng, 6, 10, 5 + trial, trial % 2 == 0);
    sim::EventLoop loop;
    sim::NetConfig net{.latency_s = 0.0013, .bandwidth_bits_per_s = 997.0};
    const CompareSessionResult c =
        compare_session(loop, p.a, p.b, net, CostModel{.n = 6, .m = 1 << 16});
    char buf[128];
    std::snprintf(buf, sizeof buf, "cmp:%d %d %d %llu %.17g", trial, (int)c.at_a,
                  (int)c.at_b, (unsigned long long)c.total_bits, c.duration);
    out.push_back(buf);
  }
  return out;
}

std::vector<std::string> load_golden() {
  std::ifstream in(std::string(OPTREP_TEST_DATA_DIR) + "/golden_sessions.txt");
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(SessionGolden, GridIsBitIdenticalToPreRefactorCapture) {
  const std::vector<std::string> golden = load_golden();
  ASSERT_FALSE(golden.empty()) << "golden_sessions.txt missing or empty";
  const std::vector<std::string> now = generate_grid();
  ASSERT_EQ(now.size(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(now[i], golden[i]) << "golden line " << i + 1;
  }
}

// The recovery wrapper must be a strict no-op layer when faults are off:
// same report, same resulting vector, plus the recovery bookkeeping fields
// in their fault-free defaults.
TEST(SessionGolden, RecoveryWrapperIsIdentityWithoutFaults) {
  Rng rng(777);
  for (auto kind : {VectorKind::kBrv, VectorKind::kCrv, VectorKind::kSrv}) {
    for (int trial = 0; trial < 6; ++trial) {
      const bool concurrent = kind != VectorKind::kBrv && trial % 2 == 1;
      VecPair p = make_pair_(rng, 6, 15, 8 + trial * 3, concurrent);
      const Ordering rel = compare_fast(p.a, p.b);
      if (rel == Ordering::kEqual || rel == Ordering::kAfter) continue;
      if (kind == VectorKind::kBrv && rel == Ordering::kConcurrent) continue;
      SyncOptions opt;
      opt.kind = kind;
      opt.cost = CostModel{.n = 6, .m = 1 << 16};
      opt.net = {.latency_s = 0.001, .bandwidth_bits_per_s = 1000.0};
      RotatingVector plain = p.a;
      sim::EventLoop loop1;
      const SyncReport r1 = sync_rotating(loop1, plain, p.b, opt);
      RotatingVector wrapped = p.a;
      sim::EventLoop loop2;
      const SyncReport r2 = sync_with_recovery(loop2, wrapped, p.b, opt);
      EXPECT_EQ(report_line("x", r1), report_line("x", r2));
      EXPECT_EQ(digest_line("x", plain), digest_line("x", wrapped));
      EXPECT_EQ(r2.attempts, 1u);
      EXPECT_EQ(r2.retries, 0u);
      EXPECT_EQ(r2.recovery_bits, 0u);
      EXPECT_TRUE(r2.converged);
      EXPECT_EQ(r2.total_faults(), 0u);
    }
  }
}

}  // namespace
}  // namespace optrep::vv
