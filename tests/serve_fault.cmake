# Fault-mode reproducibility gate for the closed-loop load generator: two
# --fault runs with the same seed — but different server worker counts, so
# the actual interleavings differ — must emit byte-identical
# optrep.load.summary/v1 documents. The summary only contains quantities
# that are pure functions of the seed (attempted / completed / killed /
# stalled sessions and the per-kind mix); anything dependent on server-side
# interleaving (transfers, element counts, bytes) is banished to the stats
# section, and this test is what keeps that boundary honest.
#
# Invoked from ctest:  cmake -DLOAD=<optrep_load binary> -DOUT=<scratch dir>
#                            -P serve_fault.cmake
if(NOT DEFINED LOAD OR NOT DEFINED OUT)
  message(FATAL_ERROR "pass -DLOAD=<binary> and -DOUT=<scratch dir>")
endif()

file(REMOVE_RECURSE ${OUT})
file(MAKE_DIRECTORY ${OUT})

foreach(run 1 2)
  # Different worker counts on purpose: the summary must not see them.
  math(EXPR workers "${run} * 2 - 1")  # 1, then 3
  execute_process(COMMAND ${LOAD} --loopback --workers=${workers} --prefill=8
                          --clients=6 --sessions=40 --replicas=8 --seed=97
                          --fault --stall-ms=1
                          --summary-out=${OUT}/summary_${run}.json
                  RESULT_VARIABLE rc
                  OUTPUT_QUIET ERROR_VARIABLE err)
  # --fault runs abort sessions by design; the binary still exits 0 unless a
  # session failed with a protocol ERROR (faults are not errors).
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "faulty load run ${run} (workers=${workers}) failed: ${err}")
  endif()
endforeach()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${OUT}/summary_1.json ${OUT}/summary_2.json
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "fault summaries differ across worker counts — a "
                      "server-state-dependent quantity leaked into the summary")
endif()

# The run must actually have injected faults, or the gate is vacuous.
file(READ ${OUT}/summary_1.json body)
if(body MATCHES "\"killed\":0[,}]")
  message(FATAL_ERROR "no sessions were killed — fault injection did not fire: ${body}")
endif()
message(STATUS "fault summaries byte-identical across worker counts")
