// End-to-end gate for the epoll sync server (src/net/server.h) against the
// simulator oracle: a real TCP client drives COMPARE / SYNCB / SYNCC / SYNCS
// push and pull sessions while the same session script runs through
// vv::sync_rotating on shadow vectors, and the final replica states must
// agree — byte-identical (identical_to: same values, same ≺ order, same
// bits) in stop-and-wait mode, value-identical in pipelined mode.
//
// The fault cases pin the PR 5 recovery invariant structurally: a connection
// killed at any record of a transferring push or pull must leave the
// receiver replica byte-identical to its pre-session state (server side
// checked through the concurrent snapshot path, client side on the local
// vector), and a capacity-rejected push must do the same while reporting
// DoneStatus::kCapacity. io_chunk = 1 feeds both directions one byte at a
// time, exercising the codec's kTruncated resume on every boundary.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "net/client.h"
#include "net/load_gen.h"
#include "net/server.h"
#include "sim/event_loop.h"
#include "vv/compare.h"
#include "vv/session.h"

namespace optrep::net {
namespace {

using vv::Ordering;
using vv::RotatingVector;
using vv::VectorKind;

SessionKind to_session_kind(VectorKind k) {
  switch (k) {
    case VectorKind::kBrv: return SessionKind::kSyncB;
    case VectorKind::kCrv: return SessionKind::kSyncC;
    default: return SessionKind::kSyncS;
  }
}

bool transfer_needed(Ordering receiver_rel, VectorKind kind) {
  return receiver_rel == Ordering::kBefore ||
         (receiver_rel == Ordering::kConcurrent && kind != VectorKind::kBrv);
}

// The server/client session semantics on shadow state: COMPARE decides the
// receiver's relation, a needed transfer runs the simulator session, and a
// reconciled concurrent sync ends with the §2.2 mandated local update —
// exactly what both endpoints do to their private clones before committing.
// Returns the receiver's relation to the sender.
Ordering oracle_sync(RotatingVector& recv, const RotatingVector& send, VectorKind kind,
                     SiteId own, bool stop_and_wait) {
  const Ordering rel = vv::compare_fast(recv, send);
  if (!transfer_needed(rel, kind)) return rel;
  vv::SyncOptions opt;
  opt.kind = kind;
  opt.mode = stop_and_wait ? vv::TransferMode::kStopAndWait : vv::TransferMode::kPipelined;
  opt.known_relation = rel;
  sim::EventLoop loop;
  vv::sync_rotating(loop, recv, send, opt);
  if (rel == Ordering::kConcurrent) recv.record_update(own);
  return rel;
}

std::unique_ptr<Server> start_server(VectorKind kind, std::uint32_t replicas,
                                     std::uint32_t prefill, unsigned workers,
                                     std::size_t capacity = 1024) {
  ServerConfig cfg;
  cfg.workers = workers;
  cfg.store.kind = kind;
  cfg.store.replicas = replicas;
  cfg.store.site_capacity = capacity;
  cfg.store.seed = 42;
  cfg.store.prefill_updates = prefill;
  auto sv = std::make_unique<Server>(cfg);
  std::string err;
  EXPECT_TRUE(sv->start(&err)) << err;
  return sv;
}

// Server-side counters advance asynchronously with a disconnect; poll.
bool poll_until(const std::function<bool()>& pred, int timeout_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

// Runs the same seeded session script through the wire and through the
// oracle and requires the end states to agree.
void run_oracle_script(VectorKind kind, bool stop_and_wait, std::size_t io_chunk,
                       unsigned workers) {
  constexpr std::uint32_t kReplicas = 4;
  constexpr int kSteps = 60;
  auto sv = start_server(kind, kReplicas, /*prefill=*/6, workers);

  // Shadow state: the server's prefilled replicas (quiesced — no client has
  // connected yet) and the client vector, which starts empty.
  std::vector<RotatingVector> shadow(kReplicas);
  for (std::uint32_t r = 0; r < kReplicas; ++r) shadow[r] = sv->store().replica_unsafe(r);
  RotatingVector mine;
  RotatingVector shadow_mine;
  const SiteId own{100};

  SyncClient::Options copt;
  copt.port = sv->port();
  copt.io_chunk = io_chunk;
  SyncClient cl(copt);
  std::string err;
  ASSERT_TRUE(cl.connect(&err)) << err;

  Rng rng(0x5e55101ULL);
  for (int step = 0; step < kSteps; ++step) {
    const auto updates = rng.below(3);
    for (std::uint64_t u = 0; u < updates; ++u) {
      mine.record_update(own);
      shadow_mine.record_update(own);
    }
    const auto r = static_cast<std::uint32_t>(rng.below(kReplicas));
    const std::uint64_t action = rng.below(3);  // 0 compare, 1 push, 2 pull

    SyncClient::SessionSpec spec;
    spec.kind = action == 0 ? SessionKind::kCompare : to_session_kind(kind);
    spec.pull = action == 2;
    spec.stop_and_wait = stop_and_wait;
    spec.replica = r;
    spec.mine = &mine;
    spec.own_site = own;
    const SyncClient::SessionResult res = cl.run_session(spec);
    ASSERT_TRUE(res.ok) << "step " << step << ": " << res.error;
    ASSERT_EQ(res.accept, AcceptStatus::kOk);

    // Oracle step. res.relation is always client-vs-server.
    if (action == 0) {
      EXPECT_EQ(res.relation, vv::compare_fast(shadow_mine, shadow[r])) << "step " << step;
      EXPECT_FALSE(res.transfer);
    } else if (action == 1) {
      const Ordering rel =
          oracle_sync(shadow[r], shadow_mine, kind, sv->store().own_site(r), stop_and_wait);
      EXPECT_EQ(res.relation, flip(rel)) << "step " << step;
      EXPECT_EQ(res.transfer, transfer_needed(rel, kind)) << "step " << step;
      EXPECT_EQ(res.done,
                res.transfer ? DoneStatus::kCommitted : DoneStatus::kNoop)
          << "step " << step;
    } else {
      const Ordering rel = oracle_sync(shadow_mine, shadow[r], kind, own, stop_and_wait);
      EXPECT_EQ(res.relation, rel) << "step " << step;
      EXPECT_EQ(res.transfer, transfer_needed(rel, kind)) << "step " << step;
    }
    if (testing::Test::HasFatalFailure()) return;
  }

  cl.close();
  sv->stop();

  // Final-state agreement: every replica and the client vector.
  for (std::uint32_t r = 0; r < kReplicas; ++r) {
    if (stop_and_wait) {
      EXPECT_TRUE(sv->store().replica_unsafe(r).identical_to(shadow[r]))
          << "replica " << r << "\n got " << sv->store().replica_unsafe(r).to_string()
          << "\nwant " << shadow[r].to_string();
    } else {
      EXPECT_TRUE(sv->store().replica_unsafe(r).same_values(shadow[r].to_version_vector()))
          << "replica " << r << "\n got " << sv->store().replica_unsafe(r).to_string()
          << "\nwant " << shadow[r].to_string();
    }
  }
  if (stop_and_wait) {
    EXPECT_TRUE(mine.identical_to(shadow_mine))
        << " got " << mine.to_string() << "\nwant " << shadow_mine.to_string();
  } else {
    EXPECT_TRUE(mine.same_values(shadow_mine.to_version_vector()))
        << " got " << mine.to_string() << "\nwant " << shadow_mine.to_string();
  }

  const ServerStats st = sv->stats();
  EXPECT_EQ(st.sessions_completed, static_cast<std::uint64_t>(kSteps));
  EXPECT_EQ(st.sessions_aborted, 0u);
  EXPECT_EQ(st.decode_errors, 0u);
}

TEST(ServeOracle, BrvStopAndWaitByteIdentical) {
  run_oracle_script(VectorKind::kBrv, /*saw=*/true, /*io_chunk=*/65536, /*workers=*/1);
}
TEST(ServeOracle, CrvStopAndWaitByteIdentical) {
  run_oracle_script(VectorKind::kCrv, true, 65536, 1);
}
TEST(ServeOracle, SrvStopAndWaitByteIdentical) {
  run_oracle_script(VectorKind::kSrv, true, 65536, 1);
}
TEST(ServeOracle, BrvPipelinedSameValues) {
  run_oracle_script(VectorKind::kBrv, /*saw=*/false, 65536, 2);
}
TEST(ServeOracle, CrvPipelinedSameValues) {
  run_oracle_script(VectorKind::kCrv, false, 65536, 2);
}
TEST(ServeOracle, SrvPipelinedSameValues) {
  run_oracle_script(VectorKind::kSrv, false, 65536, 2);
}

// One byte per syscall in both directions: every frame crosses the decoder's
// kTruncated resume path, and the server's edge-triggered read loop must keep
// making progress on fragmented input.
TEST(ServeOracle, SingleByteIoChunkSurvivesShortReads) {
  run_oracle_script(VectorKind::kSrv, /*saw=*/true, /*io_chunk=*/1, /*workers=*/1);
}

// A push killed immediately before ANY outgoing record — from the COMPARE
// probe through mid-transfer to the final END — must leave the server
// replica byte-identical (the session ran on a private clone that was never
// committed). The snapshot read races only the server's teardown of the
// dead connection, which by the invariant never touches the slot.
TEST(ServeFaults, KilledPushLeavesServerReplicaUntouched) {
  auto sv = start_server(VectorKind::kSrv, /*replicas=*/2, /*prefill=*/8, /*workers=*/1);
  const SiteId own{100};

  SyncClient::Options copt;
  copt.port = sv->port();
  SyncClient cl(copt);
  std::string err;
  ASSERT_TRUE(cl.connect(&err)) << err;

  // Sync up, then diverge locally so a push has real elements to move.
  RotatingVector mine;
  SyncClient::SessionSpec pull;
  pull.kind = SessionKind::kSyncS;
  pull.pull = true;
  pull.replica = 0;
  pull.mine = &mine;
  pull.own_site = own;
  ASSERT_TRUE(cl.run_session(pull).ok);
  for (int u = 0; u < 5; ++u) mine.record_update(own);

  RotatingVector baseline;
  sv->store().snapshot(0, &baseline);
  ASSERT_FALSE(baseline.identical_to(mine)) << "push must not be a no-op";

  std::uint64_t aborted = 0;
  for (std::uint32_t rec = 2; rec <= 6; ++rec) {
    SyncClient::SessionSpec push;
    push.kind = SessionKind::kSyncS;
    push.replica = 0;
    push.mine = &mine;
    push.own_site = own;
    push.fault = {SyncClient::FaultPlan::Kind::kKill, rec, 0};
    const SyncClient::SessionResult res = cl.run_session(push);
    ASSERT_TRUE(res.killed) << "record " << rec;
    ASSERT_FALSE(res.ok);

    ++aborted;
    ASSERT_TRUE(poll_until([&] { return sv->stats().sessions_aborted >= aborted; }))
        << "server never noticed the dropped connection (record " << rec << ")";
    RotatingVector snap;
    sv->store().snapshot(0, &snap);
    EXPECT_TRUE(snap.identical_to(baseline))
        << "killed at record " << rec << " leaked partial state: " << snap.to_string();

    ASSERT_TRUE(cl.connect(&err)) << err;  // the kill closed the connection
  }
  EXPECT_EQ(sv->stats().commits, 0u);

  // The same push, unkilled, commits — proving the killed runs were not
  // no-ops that happened to leave the replica alone.
  SyncClient::SessionSpec push;
  push.kind = SessionKind::kSyncS;
  push.replica = 0;
  push.mine = &mine;
  push.own_site = own;
  const SyncClient::SessionResult res = cl.run_session(push);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.done, DoneStatus::kCommitted);
  // The client strictly dominated the replica (it pulled, then updated), so
  // the committed replica now carries exactly the client's values — though
  // not necessarily its rotation order, hence value equality.
  RotatingVector snap;
  sv->store().snapshot(0, &snap);
  EXPECT_TRUE(snap.same_values(mine.to_version_vector()))
      << " got " << snap.to_string() << "\nwant " << mine.to_string();
  EXPECT_EQ(sv->stats().commits, 1u);
}

// Pull-side mirror: the client receives into a private clone and copies it
// over `mine` only at a clean END — a connection killed right before the
// DONE record (the last outgoing record of a pull) must leave `mine`
// byte-identical.
TEST(ServeFaults, KilledPullLeavesClientVectorUntouched) {
  auto sv = start_server(VectorKind::kSrv, /*replicas=*/1, /*prefill=*/12, /*workers=*/1);

  SyncClient::Options copt;
  copt.port = sv->port();
  SyncClient cl(copt);
  std::string err;
  ASSERT_TRUE(cl.connect(&err)) << err;

  RotatingVector mine;  // empty ≺ prefilled replica: the pull must transfer
  const RotatingVector before = mine;
  for (std::uint32_t rec = 2; rec <= 4; ++rec) {
    SyncClient::SessionSpec pull;
    pull.kind = SessionKind::kSyncS;
    pull.pull = true;
    pull.replica = 0;
    pull.mine = &mine;
    pull.own_site = SiteId{100};
    pull.fault = {SyncClient::FaultPlan::Kind::kKill, rec, 0};
    const SyncClient::SessionResult res = cl.run_session(pull);
    ASSERT_TRUE(res.killed) << "record " << rec;
    EXPECT_TRUE(mine.identical_to(before)) << "killed at record " << rec;
    ASSERT_TRUE(cl.connect(&err)) << err;
  }

  // Clean pull converges.
  SyncClient::SessionSpec pull;
  pull.kind = SessionKind::kSyncS;
  pull.pull = true;
  pull.replica = 0;
  pull.mine = &mine;
  pull.own_site = SiteId{100};
  ASSERT_TRUE(cl.run_session(pull).ok);
  EXPECT_TRUE(mine.identical_to(sv->store().replica_unsafe(0)));
}

// A stalled record delays the session but must not corrupt it.
TEST(ServeFaults, StalledRecordStillCompletes) {
  auto sv = start_server(VectorKind::kSrv, 1, /*prefill=*/6, 1);
  SyncClient::Options copt;
  copt.port = sv->port();
  SyncClient cl(copt);
  std::string err;
  ASSERT_TRUE(cl.connect(&err)) << err;

  RotatingVector mine;
  SyncClient::SessionSpec pull;
  pull.kind = SessionKind::kSyncS;
  pull.pull = true;
  pull.replica = 0;
  pull.mine = &mine;
  pull.own_site = SiteId{100};
  pull.fault = {SyncClient::FaultPlan::Kind::kStall, 3, 50};
  const SyncClient::SessionResult res = cl.run_session(pull);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(res.stalled);
  EXPECT_TRUE(mine.identical_to(sv->store().replica_unsafe(0)));
}

// A push that exceeds the slot's pinned site capacity is rejected whole:
// DoneStatus::kCapacity and a byte-identical replica (no partial replay).
TEST(ServeFaults, CapacityRejectedPushIsWholeSessionNoop) {
  auto sv = start_server(VectorKind::kSrv, /*replicas=*/1, /*prefill=*/0, /*workers=*/1,
                         /*capacity=*/4);
  SyncClient::Options copt;
  copt.port = sv->port();
  SyncClient cl(copt);
  std::string err;
  ASSERT_TRUE(cl.connect(&err)) << err;

  RotatingVector mine;
  for (std::uint32_t s = 10; s < 16; ++s) mine.record_update(SiteId{s});  // 6 > 4

  SyncClient::SessionSpec push;
  push.kind = SessionKind::kSyncS;
  push.replica = 0;
  push.mine = &mine;
  push.own_site = SiteId{100};
  const SyncClient::SessionResult res = cl.run_session(push);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.done, DoneStatus::kCapacity);
  EXPECT_EQ(sv->store().replica_unsafe(0).size(), 0u);
  EXPECT_EQ(sv->stats().capacity_rejects, 1u);
  EXPECT_EQ(sv->stats().commits, 0u);
}

// Rejected HELLOs: a replica index out of range and a session kind that does
// not match the store's algorithm both produce a typed ACCEPT status, and
// the server closes without counting a completed session.
TEST(ServeFaults, BadHellosGetTypedAcceptStatuses) {
  auto sv = start_server(VectorKind::kCrv, /*replicas=*/2, 0, 1);
  const SyncClient::Options copt{.port = sv->port()};

  {
    SyncClient cl(copt);
    std::string err;
    ASSERT_TRUE(cl.connect(&err)) << err;
    RotatingVector mine;
    SyncClient::SessionSpec bad;
    bad.kind = SessionKind::kSyncC;
    bad.replica = 7;  // out of range
    bad.mine = &mine;
    const SyncClient::SessionResult res = cl.run_session(bad);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.accept, AcceptStatus::kBadReplica);
  }
  {
    SyncClient cl(copt);
    std::string err;
    ASSERT_TRUE(cl.connect(&err)) << err;
    RotatingVector mine;
    SyncClient::SessionSpec bad;
    bad.kind = SessionKind::kSyncB;  // store speaks CRV
    bad.replica = 0;
    bad.mine = &mine;
    const SyncClient::SessionResult res = cl.run_session(bad);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.accept, AcceptStatus::kBadKind);
  }
  EXPECT_TRUE(poll_until([&] { return sv->stats().bad_hellos >= 2; }));
  EXPECT_EQ(sv->stats().sessions_completed, 0u);
}

// Concurrent closed-loop load through the real stack: many clients, several
// reactor workers, shared replicas (write-ticket parking), pipelined
// transfers. Every attempted session must complete and the server must agree
// with the client-side tally. The TSan CI job reruns the ServeConcurrency
// suite under the race detector.
TEST(ServeConcurrency, ParallelClientsConvergeWithoutErrors) {
  LoadConfig cfg;
  cfg.clients = 8;
  cfg.sessions_per_client = 40;
  cfg.replicas = 4;           // heavy sharing
  cfg.shared_frac = 0.75;
  cfg.seed = 11;

  auto sv = start_server(VectorKind::kSrv, cfg.replicas, /*prefill=*/8, /*workers=*/4);
  cfg.port = sv->port();
  const LoadReport r = run_load(cfg);
  EXPECT_EQ(r.errors, 0u) << r.first_error;
  EXPECT_EQ(r.attempted, 8u * 40u);
  EXPECT_EQ(r.completed, r.attempted);

  const ServerStats st = sv->stats();
  EXPECT_EQ(st.sessions_completed, r.attempted);
  EXPECT_EQ(st.sessions_aborted, 0u);
  EXPECT_EQ(st.decode_errors, 0u);
}

// Same under fault injection: kills and stalls across concurrent clients
// must abort cleanly (no decode errors, no protocol-level failures) and the
// server's abort count must cover every kill the clients recorded.
TEST(ServeConcurrency, FaultyParallelClientsAbortCleanly) {
  LoadConfig cfg;
  cfg.clients = 6;
  cfg.sessions_per_client = 30;
  cfg.replicas = 4;
  cfg.shared_frac = 0.5;
  cfg.kill_prob = 0.15;
  cfg.stall_prob = 0.1;
  cfg.stall_ms = 1;
  cfg.seed = 23;

  auto sv = start_server(VectorKind::kSrv, cfg.replicas, /*prefill=*/8, /*workers=*/4);
  cfg.port = sv->port();
  const LoadReport r = run_load(cfg);
  EXPECT_EQ(r.errors, 0u) << r.first_error;
  EXPECT_EQ(r.completed + r.killed, r.attempted);
  EXPECT_GT(r.killed, 0u);

  ASSERT_TRUE(poll_until([&] {
    const ServerStats st = sv->stats();
    return st.sessions_completed + st.sessions_aborted >= r.attempted;
  }));
  const ServerStats st = sv->stats();
  EXPECT_EQ(st.decode_errors, 0u);
  EXPECT_EQ(st.sessions_completed, r.completed);
}

}  // namespace
}  // namespace optrep::net
