// Conservation laws: accounting identities that must hold for every sync
// session, across all vector kinds, transfer modes and network shapes.
// These catch bookkeeping bugs (double counting, lost messages) that
// functional tests can miss.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "vv/compare.h"
#include "vv/session.h"

namespace optrep::vv {
namespace {

struct NetCase {
  TransferMode mode;
  sim::NetConfig net;
  const char* name;
};

class Conservation : public ::testing::TestWithParam<NetCase> {};

TEST_P(Conservation, ElementAccountingBalances) {
  const NetCase& nc = GetParam();
  Rng rng(808);
  for (int trial = 0; trial < 40; ++trial) {
    // Evolve a small fleet, then audit one sync.
    constexpr std::uint32_t kSites = 6;
    std::vector<RotatingVector> vec(kSites);
    for (int step = 0; step < 60; ++step) {
      const auto i = static_cast<std::uint32_t>(rng.below(kSites));
      if (rng.chance(0.55)) {
        vec[i].record_update(SiteId{i});
        continue;
      }
      auto j = static_cast<std::uint32_t>(rng.below(kSites));
      if (j == i) j = (j + 1) % kSites;
      const Ordering rel = compare_fast(vec[i], vec[j]);
      if (rel == Ordering::kEqual || rel == Ordering::kAfter) continue;

      SyncOptions opt;
      opt.kind = VectorKind::kSrv;
      opt.mode = nc.mode;
      opt.net = nc.net;
      opt.cost = CostModel{.n = kSites, .m = 1 << 16};
      opt.known_relation = rel;
      sim::EventLoop loop;
      const SyncReport rep = sync_rotating(loop, vec[i], vec[j], opt);
      if (rel == Ordering::kConcurrent) vec[i].record_update(SiteId{i});

      // (1) Every transmitted element is accounted for exactly once:
      //     applied + redundant + stragglers + after-halt + the halt
      //     trigger (0 or 1).
      const std::uint64_t accounted = rep.elems_applied + rep.elems_redundant +
                                      rep.elems_straggler + rep.elems_after_halt;
      ASSERT_GE(rep.elems_sent, accounted);
      ASSERT_LE(rep.elems_sent, accounted + 1);

      // (2) Skips: every honored skip was requested; requests may exceed
      //     honors only via pipelining races.
      ASSERT_LE(rep.segments_skipped, rep.skip_msgs);
      if (nc.mode != TransferMode::kPipelined) {
        ASSERT_EQ(rep.segments_skipped, rep.skip_msgs);
      }

      // (3) Forward traffic decomposes into elements + control markers.
      const CostModel cm = opt.cost;
      const std::uint64_t elem_bits = rep.elems_sent * cm.elem_bits(2);
      ASSERT_GE(rep.bits_fwd, elem_bits);
      ASSERT_LE(rep.bits_fwd, elem_bits + 2 * (rep.segments_skipped + 1));

      // (4) Messages: forward = elements + SKIPPED markers + at most one
      //     HALT; reverse = skips + acks + at most one HALT.
      ASSERT_LE(rep.msgs_fwd, rep.elems_sent + rep.segments_skipped + 1);
      ASSERT_LE(rep.msgs_rev, rep.skip_msgs + rep.ack_msgs + 1);

      // (5) Time: the receiver finishes no later than session quiescence.
      ASSERT_LE(rep.receiver_done_at, rep.duration + 1e-12);
    }
  }
}

TEST_P(Conservation, EqualSyncIsMinimal) {
  const NetCase& nc = GetParam();
  RotatingVector a;
  a.record_update(SiteId{0});
  a.record_update(SiteId{1});
  RotatingVector b = a;
  SyncOptions opt;
  opt.kind = VectorKind::kSrv;
  opt.mode = nc.mode;
  opt.net = nc.net;
  opt.cost = CostModel{.n = 4, .m = 16};
  opt.known_relation = Ordering::kEqual;
  sim::EventLoop loop;
  const auto rep = sync_rotating(loop, a, b, opt);
  EXPECT_EQ(rep.elems_applied, 0u);
  if (nc.mode == TransferMode::kPipelined) {
    // The front element triggers the halt; anything extra is the β overshoot
    // of speculative streaming (§3.1) — here at most the one other element.
    EXPECT_GE(rep.elems_sent, 1u);
    EXPECT_LE(rep.elems_sent, 2u);
    EXPECT_EQ(rep.elems_after_halt, rep.elems_sent - 1);
  } else {
    EXPECT_EQ(rep.elems_sent, 1u);  // flow control stops the sender exactly
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, Conservation,
    ::testing::Values(
        NetCase{TransferMode::kIdeal, {}, "ideal"},
        NetCase{TransferMode::kStopAndWait, {.latency_s = 0.01}, "saw"},
        NetCase{TransferMode::kPipelined, {.latency_s = 0.0}, "pipe_zero"},
        NetCase{TransferMode::kPipelined,
                {.latency_s = 0.01, .bandwidth_bits_per_s = 1e5},
                "pipe_slow"},
        NetCase{TransferMode::kPipelined,
                {.latency_s = 0.05, .bandwidth_bits_per_s = 1e9},
                "pipe_fat"}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace optrep::vv
