// Protocol transcripts via link taps: the exact message sequences of the
// paper's worked examples, observed on the wire.
#include <gtest/gtest.h>

#include <vector>

#include "tests/test_util.h"
#include "vv/session.h"

namespace optrep::vv {
namespace {

const SiteId A{0}, B{1}, C{2}, E{4}, F{5}, G{6}, H{7};

RotatingVector copy_replica(const RotatingVector& src) {
  RotatingVector dst;
  sim::EventLoop loop;
  sync_rotating(loop, dst, src, test::ideal(VectorKind::kSrv, 8));
  return dst;
}

RotatingVector reconcile(RotatingVector a, const RotatingVector& b) {
  sim::EventLoop loop;
  sync_rotating(loop, a, b, test::ideal(VectorKind::kSrv, 8));
  return a;
}

// Figure 1's θ7 and θ9 (see sync_skip_test.cc for the full build).
struct Fig {
  RotatingVector theta7, theta9;
  Fig() {
    RotatingVector t1, t2, t3, t4, t5, t6, t8;
    t1.record_update(A);
    t2 = copy_replica(t1);
    t2.record_update(B);
    t3 = copy_replica(t2);
    t3.record_update(C);
    t4 = copy_replica(t1);
    t4.record_update(E);
    t5 = copy_replica(t4);
    t5.record_update(F);
    t6 = copy_replica(t5);
    t6.record_update(G);
    theta7 = reconcile(t2, t6);
    t8 = copy_replica(theta7);
    t8.record_update(H);
    theta9 = reconcile(t8, t3);
  }
};

TEST(Transcript, Figure2SyncsExactMessageSequence) {
  // §4: "only C, H, G and Bth elements are sent" plus one SKIP covering
  // <F, E> — observed here on the wire, message by message.
  Fig f;
  std::vector<std::string> fwd, rev;
  auto opt = test::ideal(VectorKind::kSrv, 8);
  opt.add_tap([&](bool forward, const VvMsg& m) {
    (forward ? fwd : rev).push_back(m.to_string());
  });
  RotatingVector a = f.theta7;
  sim::EventLoop loop;
  sync_skip(loop, a, f.theta9, opt);

  const std::vector<std::string> want_fwd = {
      "ELEM(C:1,c,s)", "ELEM(H:1)", "ELEM(G:1,c)", "SKIPPED", "ELEM(B:1)",
  };
  EXPECT_EQ(fwd, want_fwd);
  ASSERT_EQ(rev.size(), 4u);  // acks + SKIP + HALT in ideal lockstep
  EXPECT_EQ(rev[0], "ACK");       // C applied
  EXPECT_EQ(rev[1], "ACK");       // H applied
  EXPECT_EQ(rev[2], "SKIP(1)");   // G known+tagged → skip segment 1
  EXPECT_EQ(rev[3], "HALT");      // B known, untagged → stop
}

TEST(Transcript, EqualVectorsExchangeOneElementAndHalt) {
  RotatingVector a;
  a.record_update(A);
  RotatingVector b = a;
  std::vector<std::string> fwd, rev;
  auto opt = test::ideal(VectorKind::kSrv, 8);
  opt.add_tap([&](bool forward, const VvMsg& m) {
    (forward ? fwd : rev).push_back(m.to_string());
  });
  sim::EventLoop loop;
  sync_skip(loop, a, b, opt);
  EXPECT_EQ(fwd, (std::vector<std::string>{"ELEM(A:1)"}));
  EXPECT_EQ(rev, (std::vector<std::string>{"HALT"}));
}

TEST(Transcript, SenderExhaustionEndsWithHalt) {
  RotatingVector a, b;
  b.record_update(A);
  b.record_update(B);
  std::vector<std::string> fwd;
  auto opt = test::ideal(VectorKind::kSrv, 8);
  opt.add_tap([&](bool forward, const VvMsg& m) {
    if (forward) fwd.push_back(m.to_string());
  });
  sim::EventLoop loop;
  sync_skip(loop, a, b, opt);
  EXPECT_EQ(fwd, (std::vector<std::string>{"ELEM(B:1)", "ELEM(A:1)", "HALT"}));
}

}  // namespace
}  // namespace optrep::vv
