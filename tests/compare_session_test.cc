#include <gtest/gtest.h>

#include "common/rng.h"
#include "vv/compare.h"
#include "vv/session.h"

namespace optrep::vv {
namespace {

const SiteId A{0}, B{1}, C{2};

CompareSessionResult run(const RotatingVector& a, const RotatingVector& b,
                         sim::NetConfig net = {}) {
  sim::EventLoop loop;
  return compare_session(loop, a, b, net, CostModel{.n = 8, .m = 1 << 10});
}

TEST(CompareSession, BothSidesAgreeOnEqual) {
  RotatingVector a;
  a.record_update(A);
  RotatingVector b = a;
  const auto r = run(a, b);
  EXPECT_EQ(r.at_a, Ordering::kEqual);
  EXPECT_EQ(r.at_b, Ordering::kEqual);
}

TEST(CompareSession, VerdictsAreMirrored) {
  RotatingVector a;
  a.record_update(A);
  RotatingVector b = a;
  b.record_update(B);
  const auto r = run(a, b);
  EXPECT_EQ(r.at_a, Ordering::kBefore);
  EXPECT_EQ(r.at_b, Ordering::kAfter);
}

TEST(CompareSession, ConcurrentDetectedOnBothSides) {
  RotatingVector base;
  base.record_update(A);
  RotatingVector a = base, b = base;
  a.record_update(B);
  b.record_update(C);
  const auto r = run(a, b);
  EXPECT_EQ(r.at_a, Ordering::kConcurrent);
  EXPECT_EQ(r.at_b, Ordering::kConcurrent);
}

TEST(CompareSession, EmptyVectors) {
  RotatingVector a, b;
  auto r = run(a, b);
  EXPECT_EQ(r.at_a, Ordering::kEqual);
  b.record_update(B);
  r = run(a, b);
  EXPECT_EQ(r.at_a, Ordering::kBefore);
  EXPECT_EQ(r.at_b, Ordering::kAfter);
}

TEST(CompareSession, CostIsTwoProbesPlusTwoBits) {
  // §3.3: "(2·log mn) bits are transferred" — plus the two O(1) verdict
  // bits our simultaneous variant uses (see compare.h).
  RotatingVector a;
  a.record_update(A);
  RotatingVector b = a;
  const CostModel cm{.n = 8, .m = 1 << 10};
  const auto r = run(a, b);
  EXPECT_EQ(r.total_bits, 2 * cm.compare_probe_bits() + 2);
}

TEST(CompareSession, CompletesInOneRoundTrip) {
  RotatingVector a;
  a.record_update(A);
  RotatingVector b = a;
  b.record_update(B);
  const auto r = run(a, b, {.latency_s = 0.1});
  // Probes cross (0.1 s), verdicts cross (another 0.1 s).
  EXPECT_DOUBLE_EQ(r.duration, 0.2);
}

TEST(CompareSession, AgreesWithLocalCompareOnRandomRestStates) {
  Rng rng(606);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<RotatingVector> reps(5);
    for (int step = 0; step < 40; ++step) {
      const auto i = rng.below(reps.size());
      if (rng.chance(0.6)) {
        reps[i].record_update(SiteId{static_cast<std::uint32_t>(i)});
      } else {
        const auto j = rng.below(reps.size());
        if (i == j) continue;
        const auto rel = compare_full(reps[i], reps[j]);
        if (rel == Ordering::kBefore) reps[i] = reps[j];
        if (rel == Ordering::kAfter) reps[j] = reps[i];
      }
    }
    for (std::size_t i = 0; i < reps.size(); ++i) {
      for (std::size_t j = i + 1; j < reps.size(); ++j) {
        const auto r = run(reps[i], reps[j]);
        EXPECT_EQ(r.at_a, compare_fast(reps[i], reps[j])) << "trial " << trial;
        EXPECT_EQ(r.at_b, compare_fast(reps[j], reps[i])) << "trial " << trial;
        EXPECT_EQ(r.at_a, flip(r.at_b));
      }
    }
  }
}

}  // namespace
}  // namespace optrep::vv
