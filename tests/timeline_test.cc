// obs::Timeline + obs::FlightRecorder: sampler semantics (carry-forward,
// caps, delta encoding), the optrep.timeline/v1 and optrep.flight/v1
// documents, the event loop's time-advance sampling hook, the repl systems'
// convergence probe, and the dump-on-violation trigger paths.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/timeline.h"
#include "repl/op_system.h"
#include "repl/state_system.h"
#include "sim/event_loop.h"
#include "vv/session.h"
#include "workload/trace.h"

using namespace optrep;

namespace {

// ---- Timeline sampler ------------------------------------------------------

TEST(Timeline, DeltaEncodedExport) {
  obs::Timeline t;
  t.set_axis("sessions");
  t.begin_sample(1);
  t.record("a", 10);
  t.begin_sample(2);
  t.record("a", 25);
  t.begin_sample(3);
  t.record("a", 25);
  const std::string json = obs::timeline_to_json(t);
  // First value raw, then successive differences.
  EXPECT_NE(json.find("{\"name\":\"a\",\"start\":0,\"first\":10,\"deltas\":[15,0]}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"schema\":\"optrep.timeline/v1\""), std::string::npos);
  EXPECT_NE(json.find("\"axis\":\"sessions\""), std::string::npos);
  EXPECT_NE(json.find("\"x\":[1,2,3]"), std::string::npos) << json;
}

TEST(Timeline, CarryForwardAndLateSeries) {
  obs::Timeline t;
  t.begin_sample(0);
  t.record("early", 5);
  t.begin_sample(1);  // `early` not recorded: carries 5 forward
  t.record("late", 100);
  t.begin_sample(2);
  t.record("early", 7);
  t.record("late", 90);

  const obs::Timeline::Series* early = t.find("early");
  ASSERT_NE(early, nullptr);
  EXPECT_EQ(early->start, 0u);
  EXPECT_EQ(early->values, (std::vector<std::int64_t>{5, 5, 7}));

  const obs::Timeline::Series* late = t.find("late");
  ASSERT_NE(late, nullptr);
  EXPECT_EQ(late->start, 1u);  // column-aligned from its first sample
  EXPECT_EQ(late->values, (std::vector<std::int64_t>{100, 90}));

  // Negative deltas survive the round trip (deltas are signed).
  const std::string json = obs::timeline_to_json(t);
  EXPECT_NE(json.find("{\"name\":\"late\",\"start\":1,\"first\":100,\"deltas\":[-10]}"),
            std::string::npos)
      << json;
}

TEST(Timeline, SampleAndSeriesCapsAreCountedNotSilent) {
  obs::Timeline t(obs::Timeline::Config{.max_samples = 2, .max_series = 1});
  t.begin_sample(0);
  t.record("a", 1);
  t.record("b", 2);  // past max_series: dropped and counted
  t.begin_sample(1);
  t.record("a", 3);
  t.begin_sample(2);  // past max_samples: dropped and counted
  t.record("a", 4);   // lands nowhere (current sample is dropped)
  EXPECT_EQ(t.samples(), 2u);
  EXPECT_EQ(t.series_count(), 1u);
  EXPECT_EQ(t.dropped_samples(), 1u);
  EXPECT_EQ(t.dropped_series(), 1u);
  const obs::Timeline::Series* a = t.find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->values, (std::vector<std::int64_t>{1, 3}));
  EXPECT_EQ(t.find("b"), nullptr);
  EXPECT_NE(obs::timeline_to_json(t).find("\"dropped_samples\":1"), std::string::npos);
}

TEST(Timeline, SampleRegistryCoversAllInstrumentKinds) {
  obs::Registry reg;
  reg.counter("c").inc(3);
  reg.gauge("g").set(-2);
  reg.histogram("h").record(10);
  obs::Timeline t;
  t.begin_sample(0);
  t.sample_registry(reg);
  ASSERT_NE(t.find("c"), nullptr);
  EXPECT_EQ(t.find("c")->values.back(), 3);
  ASSERT_NE(t.find("g"), nullptr);
  EXPECT_EQ(t.find("g")->values.back(), -2);
  ASSERT_NE(t.find("h.count"), nullptr);
  ASSERT_NE(t.find("h.p50"), nullptr);
  ASSERT_NE(t.find("h.p99"), nullptr);
  ASSERT_NE(t.find("h.p999"), nullptr);
}

TEST(Timeline, ExportIsValidJsonAndNameSorted) {
  obs::Timeline t;
  t.begin_sample(0);
  t.record("zeta", 1);
  t.record("alpha", 2);
  const std::string json = obs::timeline_to_json(t);
  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::json_parse(json, &doc, &err)) << err;
  const obs::JsonValue* series = doc.find("series");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->items.size(), 2u);
  EXPECT_EQ(series->items[0].find("name")->string, "alpha");
  EXPECT_EQ(series->items[1].find("name")->string, "zeta");
}

// ---- EventLoop time-advance sampler ----------------------------------------

TEST(EventLoopSampler, FiresPerCrossedBoundaryBeforeTheCrossingEvent) {
  sim::EventLoop loop;
  std::vector<double> fired;
  loop.set_time_sampler(
      1.0, &fired, +[](void* ctx, sim::Time t) {
        static_cast<std::vector<double>*>(ctx)->push_back(t);
      });
  loop.schedule(0.5, [] {});
  loop.schedule(2.5, [] {});  // crosses boundaries 1.0 and 2.0 at once
  loop.schedule(3.0, [] {});  // lands exactly on boundary 3.0: sample first
  loop.run();
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(EventLoopSampler, ClearStopsSampling) {
  sim::EventLoop loop;
  int fired = 0;
  loop.set_time_sampler(
      1.0, &fired, +[](void* ctx, sim::Time) { ++*static_cast<int*>(ctx); });
  loop.clear_time_sampler();
  loop.schedule(5.0, [] {});
  loop.run();
  EXPECT_EQ(fired, 0);
}

// ---- FlightRecorder --------------------------------------------------------

obs::FlightRecord rec_at(double at, std::uint64_t value) {
  obs::FlightRecord r;
  r.at = at;
  r.value = value;
  return r;
}

TEST(FlightRecorder, RingKeepsLastKOldestFirst) {
  obs::FlightRecorder r(4);
  for (std::uint64_t i = 0; i < 10; ++i) r.record(rec_at(double(i), i));
  EXPECT_EQ(r.capacity(), 4u);
  EXPECT_EQ(r.size(), 4u);
  EXPECT_EQ(r.total_recorded(), 10u);
  EXPECT_EQ(r.dropped(), 6u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(r.event(i).value, 6 + i);
}

TEST(FlightRecorder, FirstTriggerFreezesTheSnapshot) {
  obs::FlightRecorder r(4);
  for (std::uint64_t i = 0; i < 3; ++i) r.record(rec_at(double(i), i));
  r.trigger("decode_error", 2.5);
  // Later traffic and later triggers must not disturb the frozen evidence.
  for (std::uint64_t i = 3; i < 8; ++i) r.record(rec_at(double(i), i));
  r.trigger("retry_exhausted", 7.0);
  EXPECT_TRUE(r.triggered());
  EXPECT_EQ(r.trigger_count(), 2u);
  EXPECT_EQ(r.reason(), "decode_error");
  EXPECT_EQ(r.triggered_at(), 2.5);
  ASSERT_EQ(r.dump_size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(r.dump_event(i).value, i);
  EXPECT_EQ(r.dump_total_recorded(), 3u);
  // The live ring keeps rolling independently of the snapshot.
  EXPECT_EQ(r.size(), 4u);
  EXPECT_EQ(r.event(3).value, 7u);
}

TEST(FlightRecorder, DumpJsonShape) {
  obs::FlightRecorder r(4);
  obs::FlightRecord e;
  e.at = 1.25;
  e.session = 3;
  e.type = obs::TraceEventType::kElemSent;
  e.forward = false;
  e.site = SiteId{7};
  e.value = 42;
  e.bits = 19;
  e.fault = obs::FlightFault::kDecodeError;
  r.record(e);
  r.trigger("decode_error", 1.25);
  const std::string json = obs::flight_to_json(r);
  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::json_parse(json, &doc, &err)) << err;
  EXPECT_EQ(doc.find("schema")->string, "optrep.flight/v1");
  EXPECT_EQ(doc.find("trigger_reason")->string, "decode_error");
  EXPECT_EQ(doc.find("triggered")->boolean, true);
  const obs::JsonValue* events = doc.find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items.size(), 1u);
  const obs::JsonValue& ev = events->items[0];
  EXPECT_EQ(ev.find("dir")->string, "rev");
  EXPECT_EQ(ev.find("site")->number, 7);
  EXPECT_EQ(ev.find("value")->number, 42);
  EXPECT_EQ(ev.find("fault")->string, "decode_error");
}

// ---- StateSystem convergence probe + sampling ------------------------------

repl::StateSystem::Config state_cfg(std::uint32_t sites) {
  repl::StateSystem::Config cfg;
  cfg.n_sites = sites;
  cfg.kind = vv::VectorKind::kSrv;
  cfg.cost = CostModel{.n = sites, .m = 1 << 16};
  return cfg;
}

TEST(StateDivergence, CountsMissingElementsAndReachesZeroOnConvergence) {
  repl::StateSystem sys(state_cfg(3));
  const ObjectId obj{1};
  sys.create_object(SiteId{0}, obj, "a");
  EXPECT_EQ(sys.divergence(), 0u);  // single replica is trivially converged
  sys.sync(SiteId{1}, SiteId{0}, obj);
  EXPECT_EQ(sys.divergence(), 0u);
  sys.update(SiteId{0}, obj, "b");
  // Site 1 now lags site 0's entry by one update.
  EXPECT_EQ(sys.divergence(), 1u);
  sys.update(SiteId{1}, obj, "c");
  // Both lag each other's latest entry.
  EXPECT_EQ(sys.divergence(), 2u);
  sys.sync(SiteId{1}, SiteId{0}, obj);  // concurrent: reconcile + local update
  sys.sync(SiteId{0}, SiteId{1}, obj);
  EXPECT_EQ(sys.divergence(), 0u);
  EXPECT_TRUE(sys.replicas_consistent(obj));
}

TEST(StateDivergence, ConflictedReplicasCount) {
  auto cfg = state_cfg(2);
  cfg.policy = repl::ResolutionPolicy::kManual;
  repl::StateSystem sys(cfg);
  const ObjectId obj{1};
  sys.create_object(SiteId{0}, obj, "a");
  sys.sync(SiteId{1}, SiteId{0}, obj);
  sys.update(SiteId{0}, obj, "b");
  sys.update(SiteId{1}, obj, "c");
  sys.sync(SiteId{1}, SiteId{0}, obj);  // manual policy: both excluded
  // 2 missing elements + 2 excluded replicas.
  EXPECT_EQ(sys.divergence(), 4u);
}

TEST(StateTimeline, SamplesEverySessionIntervalAndEmitsDivergence) {
  obs::Timeline tl;
  auto cfg = state_cfg(3);
  cfg.timeline = &tl;
  cfg.timeline_every = 2;
  repl::StateSystem sys(cfg);
  EXPECT_EQ(tl.axis(), "sessions");
  const ObjectId obj{1};
  sys.create_object(SiteId{0}, obj, "a");
  for (int i = 0; i < 5; ++i) {
    sys.update(SiteId{0}, obj, "u" + std::to_string(i));
    sys.sync(SiteId{1}, SiteId{0}, obj);
  }
  EXPECT_EQ(tl.samples(), 2u);  // sessions 2 and 4
  sys.sample_timeline();
  EXPECT_EQ(tl.samples(), 3u);  // manual flush at session 5
  sys.sample_timeline();
  EXPECT_EQ(tl.samples(), 3u);  // suppressed: same session count
  const obs::Timeline::Series* div = tl.find("repl.divergence");
  ASSERT_NE(div, nullptr);
  EXPECT_EQ(div->values.back(), 0);  // every sync pulled dst up to date
  ASSERT_NE(tl.find("state.sessions"), nullptr);
  EXPECT_EQ(tl.find("state.sessions")->values.back(), 5);
  EXPECT_EQ(tl.xs().back(), 5.0);
}

TEST(StateTimeline, TimeAxisSamplingFollowsTheSimulatedClock) {
  obs::Timeline tl;
  auto cfg = state_cfg(3);
  cfg.timeline = &tl;
  cfg.timeline_every_s = 0.005;
  cfg.mode = vv::TransferMode::kStopAndWait;
  cfg.net.latency_s = 0.01;  // every session crosses sampling boundaries
  repl::StateSystem sys(cfg);
  EXPECT_EQ(tl.axis(), "time_s");
  const ObjectId obj{1};
  sys.create_object(SiteId{0}, obj, "a");
  sys.update(SiteId{0}, obj, "b");
  sys.sync(SiteId{1}, SiteId{0}, obj);
  sys.sync(SiteId{2}, SiteId{0}, obj);
  ASSERT_GE(tl.samples(), 2u);
  // Samples land on exact period boundaries of the simulated clock.
  for (std::size_t i = 0; i < tl.samples(); ++i) {
    const double x = tl.xs()[i];
    EXPECT_NEAR(x / 0.005, std::round(x / 0.005), 1e-9) << x;
  }
  ASSERT_NE(tl.find("repl.divergence"), nullptr);
}

TEST(StateTimeline, EqualRunsExportByteIdenticalDocuments) {
  const auto run = [] {
    obs::Timeline tl;
    auto cfg = state_cfg(6);
    cfg.timeline = &tl;
    cfg.timeline_every = 4;
    repl::StateSystem sys(cfg);
    wl::GeneratorConfig g;
    g.n_sites = 6;
    g.n_objects = 2;
    g.steps = 120;
    g.seed = 11;
    wl::run_state(sys, wl::generate(g));
    sys.sample_timeline();
    return obs::timeline_to_json(tl);
  };
  EXPECT_EQ(run(), run());
}

// ---- OpSystem convergence probe --------------------------------------------

TEST(OpDivergence, CountsMissingOperations) {
  repl::OpSystem::Config cfg;
  cfg.n_sites = 3;
  cfg.cost = CostModel{.n = 3, .m = 1 << 20};
  repl::OpSystem sys(cfg);
  const ObjectId obj{1};
  sys.create_object(SiteId{0}, obj, "a");
  sys.sync(SiteId{1}, SiteId{0}, obj);
  EXPECT_EQ(sys.divergence(), 0u);
  sys.update(SiteId{0}, obj, "b");
  sys.update(SiteId{1}, obj, "c");
  EXPECT_EQ(sys.divergence(), 2u);  // each replica misses the other's op
  sys.sync(SiteId{1}, SiteId{0}, obj);  // reconciles: merge node at site 1
  sys.sync(SiteId{0}, SiteId{1}, obj);
  EXPECT_EQ(sys.divergence(), 0u);
  EXPECT_TRUE(sys.replicas_consistent(obj));
}

// ---- dump-on-violation end to end ------------------------------------------

TEST(FlightRecorderIntegration, RetryExhaustionUnderHeavyLossTriggersAnnotatedDump) {
  obs::FlightRecorder rec;
  auto cfg = state_cfg(3);
  cfg.recorder = &rec;
  cfg.net.latency_s = 0.001;
  cfg.net.faults.drop = 0.95;
  cfg.net.faults.seed = 5;
  repl::StateSystem sys(cfg);
  const ObjectId obj{1};
  sys.create_object(SiteId{0}, obj, "a");
  // Heavy loss: some sync eventually exhausts its retry budget.
  for (int i = 0; i < 30 && !rec.triggered(); ++i) {
    sys.update(SiteId{0}, obj, "u" + std::to_string(i));
    sys.sync(SiteId{1}, SiteId{0}, obj);
  }
  ASSERT_TRUE(rec.triggered());
  EXPECT_EQ(rec.reason(), "retry_exhausted");
  // The system stamped its fault seed so the dump names the exact replay.
  EXPECT_EQ(rec.fault_seed(), 5u);
  EXPECT_GT(rec.trigger_seq(), 0u);
  ASSERT_GT(rec.dump_size(), 0u);
  bool any_fault = false;
  for (std::size_t i = 0; i < rec.dump_size(); ++i) {
    any_fault = any_fault || rec.dump_event(i).fault != obs::FlightFault::kNone;
  }
  EXPECT_TRUE(any_fault) << "the ring leading to retry exhaustion must show faults";
  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::json_parse(obs::flight_to_json(rec), &doc, &err)) << err;
  EXPECT_EQ(doc.find("trigger_reason")->string, "retry_exhausted");
}

TEST(FlightRecorderIntegration, CorruptionDecodeErrorTriggers) {
  // Not every corruption defeats the CRC into a typed decode error, so scan
  // seeds until one does; determinism makes the first hit stable.
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 64 && !found; ++seed) {
    sim::EventLoop loop;
    obs::FlightRecorder rec;
    vv::RotatingVector b;
    for (std::uint32_t i = 0; i < 8; ++i) b.record_update(SiteId{i});
    vv::RotatingVector a;  // empty receiver: everything must flow
    vv::SyncOptions opt;
    opt.kind = vv::VectorKind::kSrv;
    opt.cost = CostModel{.n = 8, .m = 1 << 16};
    opt.net = {.latency_s = 0.002, .bandwidth_bits_per_s = 2000.0};
    opt.known_relation = vv::Ordering::kBefore;
    opt.retry.base_backoff_s = 0.001;
    opt.net.faults.corrupt = 0.5;
    opt.net.faults.seed = seed;
    opt.recorder = &rec;
    const vv::SyncReport r = vv::sync_with_recovery(loop, a, b, opt);
    if (r.faults_decode_errors == 0) continue;
    found = true;
    ASSERT_TRUE(rec.triggered());
    // Retry exhaustion may have re-triggered later, but the freeze keeps the
    // first anomaly.
    EXPECT_EQ(rec.reason(), "decode_error");
    bool saw_decode = false;
    for (std::size_t i = 0; i < rec.dump_size(); ++i) {
      saw_decode =
          saw_decode || rec.dump_event(i).fault == obs::FlightFault::kDecodeError;
    }
    EXPECT_TRUE(saw_decode);
  }
  EXPECT_TRUE(found) << "no seed in [1,64] produced a typed decode error";
}

// ---- ring wrap boundaries + re-trigger semantics ---------------------------

TEST(Timeline, SampleCapBoundaryIsExact) {
  obs::Timeline t(obs::Timeline::Config{.max_samples = 3, .max_series = 4});
  // Exactly at the cap: every sample retained, nothing counted as dropped.
  for (std::uint64_t i = 0; i < 3; ++i) {
    t.begin_sample(double(i));
    t.record("a", std::int64_t(i));
  }
  EXPECT_EQ(t.samples(), 3u);
  EXPECT_EQ(t.dropped_samples(), 0u);
  // One past the cap: dropped, and records into it land nowhere.
  t.begin_sample(3);
  t.record("a", 99);
  EXPECT_EQ(t.samples(), 3u);
  EXPECT_EQ(t.dropped_samples(), 1u);
  const obs::Timeline::Series* a = t.find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->values, (std::vector<std::int64_t>{0, 1, 2}));
}

TEST(FlightRecorder, RingWrapBoundaryIsExact) {
  obs::FlightRecorder r(4);
  // Exactly full: all four retained, oldest first, nothing dropped.
  for (std::uint64_t i = 0; i < 4; ++i) r.record(rec_at(double(i), i));
  EXPECT_EQ(r.size(), 4u);
  EXPECT_EQ(r.dropped(), 0u);
  EXPECT_EQ(r.event(0).value, 0u);
  EXPECT_EQ(r.event(3).value, 3u);
  // One past capacity: the oldest record is overwritten, dropped() advances.
  r.record(rec_at(4.0, 4));
  EXPECT_EQ(r.size(), 4u);
  EXPECT_EQ(r.total_recorded(), 5u);
  EXPECT_EQ(r.dropped(), 1u);
  EXPECT_EQ(r.event(0).value, 1u);
  EXPECT_EQ(r.event(3).value, 4u);
}

TEST(FlightRecorder, ReTriggerAfterFreezeKeepsTheFirstAnomalyContext) {
  obs::FlightRecorder r(4);
  r.set_fault_seed(77);
  r.note_attempt(2);
  for (std::uint64_t i = 0; i < 3; ++i) r.record(rec_at(double(i), i));
  r.trigger("bound_violation", 2.0);
  // A second anomaly in the same (already-anomalous) run: counted, but the
  // frozen header and snapshot still describe the first.
  r.note_attempt(5);
  for (std::uint64_t i = 3; i < 9; ++i) r.record(rec_at(double(i), i));
  r.trigger("retry_exhausted", 8.0);
  EXPECT_EQ(r.trigger_count(), 2u);
  EXPECT_EQ(r.reason(), "bound_violation");
  EXPECT_EQ(r.triggered_at(), 2.0);
  EXPECT_EQ(r.trigger_attempt(), 2u);
  EXPECT_EQ(r.trigger_seq(), 3u);
  EXPECT_EQ(r.fault_seed(), 77u);
  ASSERT_EQ(r.dump_size(), 3u);
  EXPECT_EQ(r.dump_event(2).value, 2u);
  // clear() rearms the freeze for the next run.
  r.clear();
  EXPECT_FALSE(r.triggered());
  EXPECT_EQ(r.trigger_seq(), 0u);
  r.record(rec_at(10.0, 10));
  r.trigger("decode_error", 10.0);
  EXPECT_EQ(r.reason(), "decode_error");
  EXPECT_EQ(r.trigger_seq(), 1u);
}

TEST(FlightRecorder, DumpHeaderCarriesReplayContext) {
  obs::FlightRecorder r(4);
  r.set_fault_seed(1234);
  r.note_attempt(3);
  r.record(rec_at(1.0, 7));
  r.trigger("retry_exhausted", 1.5);
  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::json_parse(obs::flight_to_json(r), &doc, &err)) << err;
  EXPECT_EQ(doc.find("fault_seed")->number, 1234);
  EXPECT_EQ(doc.find("trigger_attempt")->number, 3);
  EXPECT_EQ(doc.find("trigger_seq")->number, 1);
}

TEST(FlightRecorderIntegration, FaultFreeSessionsRecordWithoutTriggering) {
  obs::FlightRecorder rec;
  auto cfg = state_cfg(3);
  cfg.recorder = &rec;
  repl::StateSystem sys(cfg);
  const ObjectId obj{1};
  sys.create_object(SiteId{0}, obj, "a");
  sys.sync(SiteId{1}, SiteId{0}, obj);
  EXPECT_GT(rec.total_recorded(), 0u);  // wire events landed in the ring
  EXPECT_FALSE(rec.triggered());        // bounds hold: nothing froze
  for (std::size_t i = 0; i < rec.dump_size(); ++i) {
    EXPECT_EQ(rec.dump_event(i).fault, obs::FlightFault::kNone);
  }
}

}  // namespace
