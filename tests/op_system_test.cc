#include <gtest/gtest.h>

#include "repl/op_system.h"

namespace optrep::repl {
namespace {

const SiteId A{0}, B{1}, C{2};
const ObjectId kObj{0};

OpSystem::Config cfg(bool incremental = true) {
  OpSystem::Config c;
  c.n_sites = 4;
  c.cost = CostModel{.n = 8, .m = 1 << 16};
  c.use_incremental = incremental;
  return c;
}

TEST(OpSystem, CreateAndAppendOps) {
  OpSystem sys(cfg());
  sys.create_object(A, kObj, "hello");
  sys.update(A, kObj, "world");
  const OpReplica& r = sys.replica(A, kObj);
  EXPECT_EQ(r.graph.node_count(), 2u);
  EXPECT_EQ(r.graph.sink(), (UpdateId{A, 2}));
  EXPECT_TRUE(r.graph.validate_closed());
}

TEST(OpSystem, FastForwardOnDominatingSender) {
  OpSystem sys(cfg());
  sys.create_object(A, kObj, "hello");
  sys.update(A, kObj, "world");
  auto out = sys.sync(B, A, kObj);
  EXPECT_EQ(out.action, OpSyncOutcome::Action::kFastForwarded);
  EXPECT_TRUE(sys.replicas_consistent(kObj));
  EXPECT_EQ(sys.materialize(B, kObj), sys.materialize(A, kObj));
}

TEST(OpSystem, ConcurrentOpsReconcileWithMergeNode) {
  OpSystem sys(cfg());
  sys.create_object(A, kObj, "base");
  sys.sync(B, A, kObj);
  sys.update(A, kObj, "a-op");
  sys.update(B, kObj, "b-op");
  auto out = sys.sync(B, A, kObj);
  EXPECT_EQ(out.relation, vv::Ordering::kConcurrent);
  EXPECT_EQ(out.action, OpSyncOutcome::Action::kReconciled);
  const OpReplica& rb = sys.replica(B, kObj);
  EXPECT_TRUE(rb.graph.find(rb.graph.sink())->is_merge());
  EXPECT_TRUE(rb.graph.validate_closed());
  // Propagate the merge back to A.
  auto back = sys.sync(A, B, kObj);
  EXPECT_EQ(back.action, OpSyncOutcome::Action::kFastForwarded);
  EXPECT_TRUE(sys.replicas_consistent(kObj));
  EXPECT_NE(sys.materialize(A, kObj).find("a-op"), std::string::npos);
  EXPECT_NE(sys.materialize(A, kObj).find("b-op"), std::string::npos);
}

TEST(OpSystem, IncrementalBeatsFullTransferOnLongSharedHistory) {
  OpSystem inc(cfg(true)), full(cfg(false));
  for (OpSystem* sys : {&inc, &full}) {
    sys->create_object(A, kObj, "base");
    for (int i = 0; i < 100; ++i) sys->update(A, kObj, "op" + std::to_string(i));
    sys->sync(B, A, kObj);  // B now shares the long history
    sys->update(A, kObj, "fresh");
    sys->sync(B, A, kObj);  // only "fresh" is missing
  }
  EXPECT_LT(inc.totals().nodes_sent, full.totals().nodes_sent);
  EXPECT_GT(full.totals().nodes_redundant, 90u);
  EXPECT_LE(inc.totals().nodes_redundant, 2u);
  EXPECT_TRUE(inc.replicas_consistent(kObj));
  EXPECT_TRUE(full.replicas_consistent(kObj));
}

TEST(OpSystem, OpPayloadBytesShipOnlyForNewNodes) {
  OpSystem sys(cfg());
  sys.create_object(A, kObj, std::string(1000, 'x'));
  sys.sync(B, A, kObj);
  EXPECT_EQ(sys.totals().op_bytes, 1000u);
  sys.update(A, kObj, std::string(10, 'y'));
  sys.sync(B, A, kObj);
  EXPECT_EQ(sys.totals().op_bytes, 1010u);  // the 1000-byte op is not resent
}

TEST(OpSystem, MaterializeIsDeterministicAcrossReplicas) {
  OpSystem sys(cfg());
  sys.create_object(A, kObj, "1");
  sys.sync(B, A, kObj);
  sys.sync(C, A, kObj);
  sys.update(A, kObj, "2");
  sys.update(B, kObj, "3");
  sys.update(C, kObj, "4");
  for (int i = 0; i < 4; ++i) {
    sys.sync(B, A, kObj);
    sys.sync(C, B, kObj);
    sys.sync(A, C, kObj);
  }
  ASSERT_TRUE(sys.replicas_consistent(kObj));
  EXPECT_EQ(sys.materialize(A, kObj), sys.materialize(B, kObj));
  EXPECT_EQ(sys.materialize(B, kObj), sys.materialize(C, kObj));
}

TEST(OpSystem, SyncToSelfRejected) {
  OpSystem sys(cfg());
  sys.create_object(A, kObj, "x");
  EXPECT_DEATH(sys.sync(A, A, kObj), "cannot synchronize with itself");
}

}  // namespace
}  // namespace optrep::repl
