#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/test_util.h"
#include "vv/compare.h"
#include "vv/pruning.h"
#include "vv/session.h"

namespace optrep::vv {
namespace {

const SiteId A{0}, B{1}, C{2}, D{3};

TEST(RotatingVectorErase, RemovesElementAndRelinks) {
  RotatingVector v;
  v.record_update(A);
  v.record_update(B);
  v.record_update(C);  // <C, B, A>
  v.erase(B);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_FALSE(v.contains(B));
  EXPECT_EQ(v.front()->site, C);
  EXPECT_EQ(*v.next(C), A);
  EXPECT_EQ(v.back()->site, A);
}

TEST(RotatingVectorErase, HeadAndTailAndSingleton) {
  RotatingVector v;
  v.record_update(A);
  v.record_update(B);  // <B, A>
  v.erase(B);          // erase head
  EXPECT_EQ(v.front()->site, A);
  v.record_update(C);  // <C, A>
  v.erase(A);          // erase tail
  EXPECT_EQ(v.back()->site, C);
  v.erase(C);          // erase last element
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(v.front().has_value());
  v.erase(D);  // absent: no-op
  EXPECT_TRUE(v.empty());
}

TEST(RotatingVectorErase, CarriesSegmentBit) {
  RotatingVector v;
  v.record_update(A);
  v.record_update(B);
  v.record_update(C);  // <C, B, A>
  v.set_segment_bit(B, true);
  v.erase(B);
  EXPECT_TRUE(v.segment_bit(C));  // boundary moved to the predecessor
}

TEST(RotatingVectorErase, SlotReuseKeepsIntegrity) {
  RotatingVector v;
  for (std::uint32_t i = 0; i < 10; ++i) v.record_update(SiteId{i});
  for (std::uint32_t i = 0; i < 5; ++i) v.erase(SiteId{i});
  for (std::uint32_t i = 20; i < 28; ++i) v.record_update(SiteId{i});
  EXPECT_EQ(v.size(), 13u);
  // Walk the order and confirm it is coherent.
  const auto elems = v.in_order();
  ASSERT_EQ(elems.size(), 13u);
  EXPECT_EQ(elems.front().site, SiteId{27});
  // The oracle view agrees.
  EXPECT_TRUE(v.same_values(v.to_version_vector()));
}

TEST(MembershipManager, RetireAndFloor) {
  MembershipManager mm;
  mm.retire(D);
  VersionVector r1, r2;
  r1.set(D, 3);
  r1.set(A, 5);
  r2.set(D, 3);
  mm.observe_replica(r1);
  mm.observe_replica(r2);
  const auto p = mm.prunable();
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0].first, D);
  EXPECT_EQ(p[0].second, 3u);
}

TEST(MembershipManager, FloorIsMinimumOverReports) {
  MembershipManager mm;
  mm.retire(D);
  VersionVector r1, r2;
  r1.set(D, 3);
  r2.set(D, 2);  // a straggler replica has only seen D:2
  mm.observe_replica(r1);
  mm.observe_replica(r2);
  EXPECT_EQ(mm.prunable()[0].second, 2u);
}

TEST(MembershipManager, PruneRemovesOnlyStableValues) {
  MembershipManager mm;
  mm.retire(D);
  VersionVector seen;
  seen.set(D, 2);
  mm.observe_replica(seen);

  RotatingVector fresh;  // holds a NEWER value than the floor: keep it
  fresh.record_update(D);
  fresh.record_update(D);
  fresh.record_update(D);
  EXPECT_EQ(mm.prune(fresh), 0u);
  EXPECT_TRUE(fresh.contains(D));

  RotatingVector stable;
  stable.record_update(D);
  stable.record_update(D);
  stable.record_update(A);
  EXPECT_EQ(mm.prune(stable), 1u);
  EXPECT_FALSE(stable.contains(D));
  EXPECT_TRUE(stable.contains(A));
}

TEST(Pruning, ComparisonsUnchangedAfterPruning) {
  // Build replicas that all absorbed retired site D's final value, prune,
  // and verify pairwise COMPARE outcomes are identical pre/post.
  Rng rng(404);
  for (int trial = 0; trial < 50; ++trial) {
    RotatingVector base;
    base.record_update(D);
    base.record_update(D);  // D's final state: D:2
    std::vector<RotatingVector> reps(4, base);
    for (int step = 0; step < 30; ++step) {
      const auto i = rng.below(reps.size());
      if (rng.chance(0.6)) {
        // Updater ids offset past D: a retired site never updates again.
        reps[i].record_update(SiteId{static_cast<std::uint32_t>(i) + 10});
      } else {
        const auto j = rng.below(reps.size());
        if (i == j) continue;
        const auto rel = compare_full(reps[i], reps[j]);
        if (rel == Ordering::kBefore) reps[i] = reps[j];
        if (rel == Ordering::kAfter) reps[j] = reps[i];
      }
    }
    MembershipManager mm;
    mm.retire(D);
    for (const auto& r : reps) mm.observe_replica(r.to_version_vector());

    std::vector<RotatingVector> pruned = reps;
    for (auto& r : pruned) EXPECT_EQ(mm.prune(r), 1u);
    for (std::size_t i = 0; i < reps.size(); ++i) {
      for (std::size_t j = 0; j < reps.size(); ++j) {
        EXPECT_EQ(compare_fast(pruned[i], pruned[j]), compare_fast(reps[i], reps[j]))
            << "trial " << trial;
      }
    }
  }
}

TEST(Pruning, SynchronizationStillConvergesAfterPruning) {
  RotatingVector base;
  base.record_update(D);
  RotatingVector a = base, b = base;
  a.record_update(A);
  b.record_update(B);
  b.record_update(C);

  MembershipManager mm;
  mm.retire(D);
  mm.observe_replica(a.to_version_vector());
  mm.observe_replica(b.to_version_vector());
  mm.prune(a);
  mm.prune(b);

  sim::EventLoop loop;
  auto rep = sync_skip(loop, a, b, test::ideal(VectorKind::kSrv, 8));
  EXPECT_EQ(rep.initial_relation, Ordering::kConcurrent);
  EXPECT_EQ(a.value(A), 1u);
  EXPECT_EQ(a.value(B), 1u);
  EXPECT_EQ(a.value(C), 1u);
  EXPECT_FALSE(a.contains(D));  // stays pruned
}

TEST(Pruning, FrontElementRetirementIsSafeOnceStable) {
  // Even the front (dominating) element can be pruned once every replica
  // absorbed it: the remaining front still dominates the remainder.
  RotatingVector base;
  base.record_update(A);
  base.record_update(D);  // <D, A> — D is the front
  RotatingVector a = base, b = base;
  a.record_update(B);  // <B, D, A>
  MembershipManager mm;
  mm.retire(D);
  mm.observe_replica(a.to_version_vector());
  mm.observe_replica(b.to_version_vector());
  mm.prune(a);
  mm.prune(b);
  EXPECT_EQ(compare_fast(b, a), Ordering::kBefore);
  EXPECT_EQ(compare_fast(a, b), Ordering::kAfter);
}

}  // namespace
}  // namespace optrep::vv
