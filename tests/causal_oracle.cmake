# Causal analyzer oracle gate: dump optrep.causal/v1 traces for small worlds
# with optrep_cli and require optrep_trace --check (the brute-force oracle:
# forward knowledge replay, converge soundness/completeness, critical-path
# recomputation) to agree on every one — including a lossy world exercising
# retry spans and fault edges, and a multi-run sweep document.
#
# Invoked from ctest:  cmake -DCLI=<optrep_cli> -DTRACE=<optrep_trace>
#                            -DOUT=<scratch dir> -P causal_oracle.cmake
if(NOT DEFINED CLI OR NOT DEFINED TRACE OR NOT DEFINED OUT)
  message(FATAL_ERROR "pass -DCLI=, -DTRACE= and -DOUT=")
endif()

file(REMOVE_RECURSE ${OUT})
file(MAKE_DIRECTORY ${OUT})

set(cases
  "two_site|state --kind=srv --sites=2 --steps=150 --seed=3"
  "three_site_crv|state --kind=crv --sites=3 --steps=250 --seed=5 --objects=2"
  "four_site|state --kind=srv --sites=4 --steps=400 --seed=7 --latency-ms=2"
  "three_site_lossy|state --kind=srv --sites=3 --steps=200 --seed=11 --loss=0.1 --dup=0.05 --fault-seed=9"
  "sweep|sweep --kind=srv --sites=4 --steps=150 --seeds=4 --threads=2 --seed=13"
)

foreach(case IN LISTS cases)
  string(REPLACE "|" ";" parts "${case}")
  list(GET parts 0 name)
  list(GET parts 1 argstr)
  separate_arguments(args UNIX_COMMAND "${argstr}")
  execute_process(COMMAND ${CLI} ${args} --csv --causal-out=${OUT}/${name}.json
                  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${CLI} ${name} failed: ${rc}")
  endif()
  if(NOT EXISTS ${OUT}/${name}.json)
    message(FATAL_ERROR "${name}: no causal dump written")
  endif()
  execute_process(COMMAND ${TRACE} ${OUT}/${name}.json --check
                  RESULT_VARIABLE rc OUTPUT_VARIABLE stdout ERROR_VARIABLE stderr)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${name}: oracle disagreed (${rc}):\n${stdout}\n${stderr}")
  endif()
  if(NOT stdout MATCHES "oracle agrees")
    message(FATAL_ERROR "${name}: analyzer did not report oracle agreement:\n${stdout}")
  endif()
endforeach()

message(STATUS "causal oracle agrees on all small worlds")
