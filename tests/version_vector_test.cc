#include <gtest/gtest.h>

#include "vv/version_vector.h"

namespace optrep::vv {
namespace {

const SiteId A{0}, B{1}, C{2};

TEST(VersionVector, StartsEmpty) {
  VersionVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.value(A), 0u);
  EXPECT_FALSE(v.contains(A));
}

TEST(VersionVector, IncrementAndValue) {
  VersionVector v;
  v.increment(A);
  v.increment(A);
  v.increment(B);
  EXPECT_EQ(v.value(A), 2u);
  EXPECT_EQ(v.value(B), 1u);
  EXPECT_EQ(v.size(), 2u);
}

TEST(VersionVector, SetZeroErases) {
  VersionVector v;
  v.set(A, 3);
  EXPECT_TRUE(v.contains(A));
  v.set(A, 0);
  EXPECT_FALSE(v.contains(A));
  EXPECT_TRUE(v.empty());
}

TEST(VersionVector, JoinTakesElementwiseMax) {
  VersionVector a, b;
  a.set(A, 2);
  a.set(B, 1);
  b.set(B, 3);
  b.set(C, 1);
  a.join(b);
  EXPECT_EQ(a.value(A), 2u);
  EXPECT_EQ(a.value(B), 3u);
  EXPECT_EQ(a.value(C), 1u);
}

TEST(VersionVector, CompareEqual) {
  VersionVector a, b;
  a.set(A, 1);
  b.set(A, 1);
  EXPECT_EQ(a.compare(b), Ordering::kEqual);
  EXPECT_EQ(VersionVector{}.compare(VersionVector{}), Ordering::kEqual);
}

TEST(VersionVector, CompareBeforeAfter) {
  VersionVector a, b;
  a.set(A, 1);
  b.set(A, 2);
  EXPECT_EQ(a.compare(b), Ordering::kBefore);
  EXPECT_EQ(b.compare(a), Ordering::kAfter);
  // Superset domination.
  b.set(B, 1);
  EXPECT_EQ(a.compare(b), Ordering::kBefore);
}

TEST(VersionVector, CompareEmptyPrecedesNonEmpty) {
  VersionVector a, b;
  b.set(A, 1);
  EXPECT_EQ(a.compare(b), Ordering::kBefore);
  EXPECT_EQ(b.compare(a), Ordering::kAfter);
}

TEST(VersionVector, CompareConcurrent) {
  VersionVector a, b;
  a.set(A, 2);
  a.set(B, 1);
  b.set(A, 1);
  b.set(B, 2);
  EXPECT_EQ(a.compare(b), Ordering::kConcurrent);
  EXPECT_EQ(b.compare(a), Ordering::kConcurrent);
}

TEST(VersionVector, DisjointSitesAreConcurrent) {
  VersionVector a, b;
  a.set(A, 1);
  b.set(B, 1);
  EXPECT_EQ(a.compare(b), Ordering::kConcurrent);
}

TEST(VersionVector, ToStringSortsSites) {
  VersionVector v;
  v.set(B, 1);
  v.set(A, 2);
  EXPECT_EQ(v.to_string(), "<A:2, B:1>");
}

TEST(VersionVector, FlipOrdering) {
  EXPECT_EQ(flip(Ordering::kBefore), Ordering::kAfter);
  EXPECT_EQ(flip(Ordering::kAfter), Ordering::kBefore);
  EXPECT_EQ(flip(Ordering::kEqual), Ordering::kEqual);
  EXPECT_EQ(flip(Ordering::kConcurrent), Ordering::kConcurrent);
}

}  // namespace
}  // namespace optrep::vv
