// vv::Arena / vv::Column: the bump/slab allocator and the SoA column type
// backing RotatingVector and FlatSiteIndex (vv/arena.h). The tests pin the
// properties replica code depends on: alignment, byte accounting, the
// never-free/retire-in-place discipline, Column copy/move backing rules, and
// the zero-alloc steady state of an arena-backed reserved vector.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "common/ids.h"
#include "vv/arena.h"
#include "vv/rotating_vector.h"

namespace optrep::vv {
namespace {

TEST(Arena, AllocationsAlignedAndAccounted) {
  Arena a;
  EXPECT_EQ(a.stats().reserved_bytes, 0u);
  void* p = a.allocate(10);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % Arena::kAlign, 0u);
  // 10 bytes round up to one 16-byte line.
  EXPECT_EQ(a.stats().live_bytes, 16u);
  EXPECT_EQ(a.stats().slabs, 1u);
  EXPECT_EQ(a.stats().reserved_bytes, Arena::kDefaultSlabBytes);
  void* q = a.allocate(16);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) % Arena::kAlign, 0u);
  EXPECT_NE(p, q);
  EXPECT_EQ(a.stats().live_bytes, 32u);
  EXPECT_EQ(a.stats().slabs, 1u);  // both fit the first slab
}

TEST(Arena, ZeroBytesIsNull) {
  Arena a;
  EXPECT_EQ(a.allocate(0), nullptr);
  EXPECT_EQ(a.stats().reserved_bytes, 0u);
}

TEST(Arena, OversizedRequestGetsDedicatedSlab) {
  Arena a(/*slab_bytes=*/4096);
  a.allocate(64);
  EXPECT_EQ(a.stats().slabs, 1u);
  // > slab/2 goes to its own (full) slab instead of forcing a sequence of
  // mostly-empty bump slabs.
  void* big = a.allocate(3000);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(a.stats().slabs, 2u);
  const std::uint64_t reserved = a.stats().reserved_bytes;
  EXPECT_EQ(reserved, 4096u + 3008u);  // bump slab + rounded dedicated slab
  // The dedicated slab is born full: the next small request opens a fresh
  // bump slab rather than fitting in it.
  a.allocate(64);
  EXPECT_EQ(a.stats().slabs, 3u);
}

TEST(Arena, RetireMovesLiveToRetiredButKeepsReservation) {
  Arena a;
  a.allocate(128);
  a.allocate(64);
  const std::uint64_t reserved = a.stats().reserved_bytes;
  a.retire(128);
  EXPECT_EQ(a.stats().live_bytes, 64u);
  EXPECT_EQ(a.stats().retired_bytes, 128u);
  EXPECT_EQ(a.stats().reserved_bytes, reserved);  // never returned to the OS
  EXPECT_EQ(a.stats().high_water_bytes, 192u);
}

TEST(Arena, HighWaterTracksPeakLive) {
  Arena a;
  a.allocate(256);
  a.retire(256);
  a.allocate(64);
  EXPECT_EQ(a.stats().live_bytes, 64u);
  EXPECT_EQ(a.stats().high_water_bytes, 256u);
}

TEST(Column, HeapModeBehavesLikeVector) {
  Column<std::uint32_t> c;
  EXPECT_TRUE(c.empty());
  for (std::uint32_t i = 0; i < 100; ++i) c.push_back(i);
  ASSERT_EQ(c.size(), 100u);
  EXPECT_EQ(c[42], 42u);
  EXPECT_EQ(c.back(), 99u);
  c.pop_back();
  EXPECT_EQ(c.size(), 99u);
  c.resize(4);
  EXPECT_EQ(c.size(), 4u);
  c.resize(8);  // growth back fills with default
  EXPECT_EQ(c[7], 0u);
  c.assign(3, 7u);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c[2], 7u);
}

TEST(Column, ArenaBackedGrowthRetiresOldBlockInPlace) {
  Arena a;
  Column<std::uint64_t> c(&a);
  c.reserve(8);
  const std::uint64_t first = a.stats().live_bytes;
  EXPECT_EQ(first, 64u);
  for (int i = 0; i < 8; ++i) c.push_back(i);
  EXPECT_EQ(a.stats().live_bytes, first);  // within capacity: no allocation
  c.push_back(8);  // forces regrow
  EXPECT_EQ(a.stats().retired_bytes, first);
  EXPECT_EQ(c[3], 3u);  // contents survived the move
  EXPECT_EQ(c.size(), 9u);
}

TEST(Column, ShrinkKeepsCapacityAndBlock) {
  Arena a;
  Column<std::uint32_t> c(&a);
  c.assign(64, 1u);
  const std::uint64_t retired = a.stats().retired_bytes;
  const std::size_t cap = c.capacity();
  c.resize(2);
  c.clear();
  EXPECT_EQ(c.capacity(), cap);
  EXPECT_EQ(a.stats().retired_bytes, retired);  // nothing retired by shrinking
}

TEST(Column, CopyIsHeapSnapshotNeverArenaBound) {
  Arena a;
  Column<std::uint32_t> c(&a);
  c.assign(16, 5u);
  const std::uint64_t live = a.stats().live_bytes;
  Column<std::uint32_t> copy(c);
  EXPECT_EQ(copy.arena(), nullptr);
  EXPECT_EQ(a.stats().live_bytes, live);  // copy came off the heap
  ASSERT_EQ(copy.size(), 16u);
  EXPECT_EQ(copy[9], 5u);
  copy.assign(64, 3u);  // growing the copy touches only the heap
  EXPECT_EQ(a.stats().live_bytes, live);
}

TEST(Column, CopyAssignKeepsDestinationBacking) {
  Arena a;
  Column<std::uint32_t> dst(&a);
  dst.reserve(32);
  Column<std::uint32_t> src;
  src.assign(8, 9u);
  dst = src;
  EXPECT_EQ(dst.arena(), &a);  // still arena-bound
  ASSERT_EQ(dst.size(), 8u);
  EXPECT_EQ(dst[0], 9u);
}

TEST(Column, MoveKeepsSourceArenaWithNoBlock) {
  Arena a;
  Column<std::uint32_t> c(&a);
  c.assign(8, 2u);
  Column<std::uint32_t> moved(std::move(c));
  EXPECT_EQ(moved.arena(), &a);
  ASSERT_EQ(moved.size(), 8u);
  EXPECT_EQ(moved[7], 2u);
  // Moved-from: empty, still bound to the arena, usable again.
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.arena(), &a);
  const std::uint64_t live = a.stats().live_bytes;
  c.assign(4, 1u);
  EXPECT_GT(a.stats().live_bytes, live);  // new block carved from the arena
}

// An arena-backed, reserved RotatingVector runs its whole mutation surface
// without another arena allocation — the zero-alloc steady state that the
// concurrent-reader pinning contract (and bench_microops) relies on.
TEST(ArenaVector, ReservedVectorIsZeroAllocSteadyState) {
  Arena a;
  RotatingVector v;
  v.attach_arena(&a);
  v.reserve(16);
  const std::uint64_t live = a.stats().live_bytes;
  const std::uint64_t retired = a.stats().retired_bytes;
  EXPECT_GT(live, 0u);
  for (std::uint32_t round = 0; round < 50; ++round) {
    for (std::uint32_t i = 0; i < 16; ++i) v.record_update(SiteId{i});
    v.set_conflict_bit(SiteId{3}, true);
    v.erase(SiteId{round % 16});
  }
  EXPECT_EQ(a.stats().live_bytes, live);
  EXPECT_EQ(a.stats().retired_bytes, retired);
  EXPECT_EQ(v.memory_bytes(), a.stats().live_bytes);
}

TEST(ArenaVector, CopyOfArenaVectorIsPlainValue) {
  Arena a;
  RotatingVector v;
  v.attach_arena(&a);
  v.reserve(4);
  v.record_update(SiteId{1});
  v.record_update(SiteId{2});
  RotatingVector snap(v);
  const std::uint64_t live = a.stats().live_bytes;
  // Mutating the snapshot never touches the world's arena.
  for (std::uint32_t i = 0; i < 64; ++i) snap.record_update(SiteId{i});
  EXPECT_EQ(a.stats().live_bytes, live);
  EXPECT_TRUE(v.identical_to(RotatingVector(v)));
  EXPECT_EQ(snap.value(SiteId{1}), 2u);
}

}  // namespace
}  // namespace optrep::vv
