// The large-world scenario stack: sim::ScenarioWorld (dirty-queue gossip
// engine over a Mesh, arena-backed replicas) plus the wl phase driver
// (script parsing, run_scenario, optrep.run/v1 report). Worlds here are
// small (tens to hundreds of sites) so the whole suite runs in milliseconds;
// bench_scenario owns the 10^5-site scale checks.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/scenario.h"
#include "workload/scenario.h"

namespace optrep {
namespace {

using sim::ScenarioAlgo;
using sim::ScenarioWorld;
using wl::PhaseSpec;

ScenarioWorld::Config small_world_cfg(ScenarioAlgo algo, std::uint32_t sites,
                                      std::uint32_t writers) {
  ScenarioWorld::Config cfg;
  cfg.algo = algo;
  cfg.sites = sites;
  cfg.writers = writers;
  cfg.mesh = sim::MeshKind::kRing;
  cfg.degree = 2;
  cfg.seed = 11;
  return cfg;
}

std::vector<PhaseSpec> parse_ok(const std::string& script, std::uint32_t sites) {
  std::vector<PhaseSpec> phases;
  std::string err;
  const bool ok = wl::parse_scenario_script(script, sites, phases, err);
  EXPECT_TRUE(ok) << script << ": " << err;
  return phases;
}

TEST(ScenarioWorld, ConvergesOnEveryVvAlgo) {
  for (const ScenarioAlgo algo :
       {ScenarioAlgo::kBrv, ScenarioAlgo::kCrv, ScenarioAlgo::kSrv}) {
    const std::uint32_t writers = algo == ScenarioAlgo::kBrv ? 1 : 4;
    ScenarioWorld world(small_world_cfg(algo, 64, writers));
    const auto phases = parse_ok("warmup:16,quiesce", 64);
    const wl::ScenarioStats stats = wl::run_scenario(world, phases);
    EXPECT_TRUE(stats.converged) << sim::to_string(algo);
    EXPECT_EQ(world.dirty_count(), 0u);
    EXPECT_EQ(stats.totals.updates, 16u);
    EXPECT_GT(stats.totals.sessions, 0u);
    EXPECT_GE(stats.totals.compares, stats.totals.sessions / 2);
    EXPECT_GT(stats.totals.bits, 0u);
    EXPECT_GT(stats.convergence_rounds, 0u);
    EXPECT_FALSE(stats.quiesce_truncated);
    // Arena-backed replicas: footprint is visible and consistent.
    EXPECT_GT(stats.arena.live_bytes, 0u);
    EXPECT_EQ(stats.replica_bytes, world.replica_memory_bytes());
    EXPECT_GT(stats.mesh_bytes, 0u);
  }
}

TEST(ScenarioWorld, SyncgConvergesAndShipsNodes) {
  ScenarioWorld world(small_world_cfg(ScenarioAlgo::kSyncg, 48, 1));
  const wl::ScenarioStats stats = wl::run_scenario(world, parse_ok("warmup:8,quiesce", 48));
  EXPECT_TRUE(stats.converged);
  EXPECT_GT(stats.totals.nodes_applied, 0u);
  EXPECT_EQ(stats.totals.elems_applied, 0u);
  EXPECT_EQ(stats.totals.reconciliations, 0u);
  // Graph replicas are heap σ-structures; the arena only backs vv columns.
  EXPECT_EQ(stats.replica_bytes, 0u);
}

// BRV cannot merge concurrent pairs (§3.1: reconciliation is manual) — a
// two-writer BRV world must report held conflicts and fail to converge
// rather than spin: every exchange leaves both sides unchanged, so the dirty
// queue drains and quiesce terminates.
TEST(ScenarioWorld, BrvHoldsConcurrentPairsAndQuiesces) {
  ScenarioWorld world(small_world_cfg(ScenarioAlgo::kBrv, 32, 2));
  const wl::ScenarioStats stats = wl::run_scenario(world, parse_ok("warmup:4,quiesce", 32));
  EXPECT_FALSE(stats.converged);
  EXPECT_GT(stats.totals.conflicts_held, 0u);
  EXPECT_EQ(stats.totals.reconciliations, 0u);
  EXPECT_EQ(world.dirty_count(), 0u);  // terminated, not truncated
  EXPECT_FALSE(stats.quiesce_truncated);
}

TEST(ScenarioWorld, PartitionBlocksCrossHalfConvergence) {
  ScenarioWorld world(small_world_cfg(ScenarioAlgo::kSrv, 64, 4));
  world.set_partitioned(true);
  // Writers sit at 0, 16, 32, 48 (spread evenly over 64 sites), so both
  // halves of the 32-boundary split diverge.
  for (int i = 0; i < 8; ++i) world.local_update(world.next_writer());
  while (world.dirty_count() > 0) world.gossip_round();
  EXPECT_FALSE(world.converged());  // halves equalized internally only
  world.set_partitioned(false);     // heal dirties the boundary
  EXPECT_GT(world.dirty_count(), 0u);
  while (world.dirty_count() > 0) world.gossip_round();
  EXPECT_TRUE(world.converged());
}

TEST(ScenarioWorld, ChurnedSitesCatchUpAfterComingBack) {
  ScenarioWorld world(small_world_cfg(ScenarioAlgo::kCrv, 64, 4));
  world.take_offline(16);
  EXPECT_EQ(world.offline_count(), 16u);
  for (int i = 0; i < 6; ++i) world.local_update(world.next_writer());
  while (world.dirty_count() > 0) world.gossip_round();
  // Offline sites missed the wave; the world cannot be converged yet.
  EXPECT_FALSE(world.converged());
  world.bring_online();
  EXPECT_EQ(world.offline_count(), 0u);
  while (world.dirty_count() > 0) world.gossip_round();
  EXPECT_TRUE(world.converged());
}

TEST(ScenarioDriver, FlashCrowdWidensTheWriterSet) {
  const auto phases = parse_ok("flash-crowd", 200);
  const std::uint32_t flash = wl::scenario_flash_writers(phases);
  EXPECT_GT(flash, 0u);
  ScenarioWorld::Config cfg = small_world_cfg(ScenarioAlgo::kSrv, 200, 4);
  cfg.extra_writers = flash;  // reserve width before any reader can pin
  ScenarioWorld world(cfg);
  const wl::ScenarioStats stats = wl::run_scenario(world, phases);
  EXPECT_TRUE(stats.converged);
  // warmup:16 + one update per flash writer.
  EXPECT_EQ(stats.totals.updates, 16u + flash);
}

TEST(ScenarioDriver, PresetsParseAndConverge) {
  for (const char* preset : {"converge", "partition-heal", "churn", "flash-crowd"}) {
    const auto phases = parse_ok(preset, 128);
    ScenarioWorld::Config cfg = small_world_cfg(ScenarioAlgo::kSrv, 128, 4);
    cfg.extra_writers = wl::scenario_flash_writers(phases);
    ScenarioWorld world(cfg);
    const wl::ScenarioStats stats = wl::run_scenario(world, phases);
    EXPECT_TRUE(stats.converged) << preset;
    EXPECT_FALSE(stats.quiesce_truncated) << preset;
  }
}

TEST(ScenarioDriver, ScriptParserRejectsMalformedInput) {
  std::vector<PhaseSpec> phases;
  std::string err;
  // Unknown phase name.
  EXPECT_FALSE(wl::parse_scenario_script("warp:4", 64, phases, err));
  EXPECT_NE(err.find("warp"), std::string::npos);
  // Zero counts are meaningless.
  EXPECT_FALSE(wl::parse_scenario_script("warmup:0", 64, phases, err));
  EXPECT_FALSE(wl::parse_scenario_script("gossip:0", 64, phases, err));
  // Wrong arity.
  EXPECT_FALSE(wl::parse_scenario_script("warmup", 64, phases, err));
  EXPECT_FALSE(wl::parse_scenario_script("churn:4", 64, phases, err));
  EXPECT_FALSE(wl::parse_scenario_script("partition:2", 64, phases, err));
  EXPECT_FALSE(wl::parse_scenario_script("", 64, phases, err));
  // Malformed integers.
  EXPECT_FALSE(wl::parse_scenario_script("warmup:x", 64, phases, err));
}

TEST(ScenarioDriver, ExplicitPhaseListParses) {
  const auto phases = parse_ok("warmup:8,gossip:4,quiesce,churn:3:5,partition,heal,flash:2",
                               64);
  ASSERT_EQ(phases.size(), 7u);
  EXPECT_EQ(phases[0].kind, PhaseSpec::Kind::kWarmup);
  EXPECT_EQ(phases[0].a, 8u);
  EXPECT_EQ(phases[1].kind, PhaseSpec::Kind::kGossip);
  EXPECT_EQ(phases[3].kind, PhaseSpec::Kind::kChurn);
  EXPECT_EQ(phases[3].a, 3u);
  EXPECT_EQ(phases[3].b, 5u);
  EXPECT_EQ(phases[6].kind, PhaseSpec::Kind::kFlash);
  EXPECT_EQ(wl::scenario_flash_writers(phases), 2u);
}

TEST(ScenarioDriver, QuiesceCapTruncatesHonestly) {
  // A two-writer BRV world with a tiny cap: quiesce stops at the cap only if
  // sites are still dirty; this config drains instead, so force truncation
  // with cap=1 on a world mid-wave.
  ScenarioWorld world(small_world_cfg(ScenarioAlgo::kSrv, 64, 4));
  std::vector<PhaseSpec> phases;
  phases.push_back({PhaseSpec::Kind::kWarmup, 8, 0});
  phases.push_back({PhaseSpec::Kind::kQuiesce, 0, 0});
  const wl::ScenarioStats stats =
      wl::run_scenario(world, phases, nullptr, 64, /*quiesce_cap=*/2);
  EXPECT_TRUE(stats.quiesce_truncated);
  EXPECT_FALSE(stats.converged);
  EXPECT_GT(world.dirty_count(), 0u);
}

TEST(ScenarioDriver, RunsAreDeterministic) {
  auto run = [] {
    ScenarioWorld world(small_world_cfg(ScenarioAlgo::kSrv, 100, 4));
    const wl::ScenarioStats stats = wl::run_scenario(
        world, [] {
          std::vector<PhaseSpec> p;
          std::string e;
          wl::parse_scenario_script("partition-heal", 100, p, e);
          return p;
        }());
    return wl::scenario_run_report_json(world, "partition-heal", stats);
  };
  EXPECT_EQ(run(), run());
}

TEST(ScenarioDriver, ReportCarriesSchemaAndMemorySections) {
  ScenarioWorld world(small_world_cfg(ScenarioAlgo::kSrv, 64, 4));
  const wl::ScenarioStats stats = wl::run_scenario(world, parse_ok("converge", 64));
  const std::string json = wl::scenario_run_report_json(world, "converge", stats);
  for (const char* key :
       {"\"schema\":\"optrep.run/v1\"", "\"command\":\"scenario\"", "\"algo\":\"srv\"",
        "\"mesh\":\"ring\"", "\"converged\":true", "\"arena_live_bytes\"",
        "\"replica_bytes\"", "\"mesh_bytes\"", "\"rt.arena.live_bytes\"",
        "\"scenario.rounds\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(ScenarioDriver, TimelineSamplesOnRoundAxis) {
  ScenarioWorld world(small_world_cfg(ScenarioAlgo::kSrv, 128, 4));
  obs::Timeline timeline;
  const wl::ScenarioStats stats =
      wl::run_scenario(world, parse_ok("converge", 128), &timeline, /*sample_every=*/8);
  EXPECT_TRUE(stats.converged);
  const std::string json = obs::timeline_to_json(timeline);
  EXPECT_NE(json.find("\"axis\":\"rounds\""), std::string::npos);
  EXPECT_NE(json.find("scenario.dirty_sites"), std::string::npos);
  EXPECT_NE(json.find("rt.arena.live_bytes"), std::string::npos);
}

}  // namespace
}  // namespace optrep
