// optrep::rt — deterministic parallel runtime tests: every index runs exactly
// once for any thread count, parallel_sweep returns results in config order,
// task_seed splitting is schedule-independent, and observability shards merge
// into the same registry a serial run would have produced.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "rt/sweep.h"
#include "rt/thread_pool.h"

namespace optrep::rt {
namespace {

TEST(ThreadPool, SingleThreadRunsInlineInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  std::vector<std::size_t> order;
  pool.for_each_index(16, [&order](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnceForAnyThreadCount) {
  for (unsigned threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.threads(), threads);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<std::uint32_t>> hits(kCount);
    pool.for_each_index(kCount, [&hits](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1u) << "index " << i << ", threads " << threads;
    }
  }
}

TEST(ThreadPool, WorkerIndexIsDenseAndInRange) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 256;
  std::vector<std::atomic<std::uint32_t>> by_worker(8);
  pool.for_each_index_worker(kCount, [&by_worker](std::size_t, unsigned worker) {
    ASSERT_LT(worker, 4u);
    by_worker[worker].fetch_add(1, std::memory_order_relaxed);
  });
  std::uint32_t total = 0;
  for (const auto& w : by_worker) total += w.load();
  EXPECT_EQ(total, kCount);
}

TEST(ThreadPool, ZeroItemsAndBackToBackJobsWork) {
  ThreadPool pool(3);
  pool.for_each_index(0, [](std::size_t) { FAIL() << "no items to run"; });
  std::atomic<std::uint64_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.for_each_index(10, [&sum](std::size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 50u * 45u);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(2);
  std::vector<std::atomic<std::uint32_t>> hits(100);
  parallel_for(pool, 10, 90, [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 10 && i < 90) ? 1u : 0u) << i;
  }
}

TEST(TaskSeed, IndependentOfScheduleAndDecorrelated) {
  // Pure function of (base, index): no hidden state to leak schedules into.
  EXPECT_EQ(task_seed(42, 7), task_seed(42, 7));
  EXPECT_NE(task_seed(42, 7), task_seed(42, 8));
  EXPECT_NE(task_seed(42, 7), task_seed(43, 7));
  // Streams from adjacent indexes must diverge immediately.
  Rng a(task_seed(1, 0));
  Rng b(task_seed(1, 1));
  EXPECT_NE(a.next(), b.next());
}

TEST(ParallelSweep, ResultsInConfigOrderForAnyThreadCount) {
  const std::vector<std::uint32_t> configs = [] {
    std::vector<std::uint32_t> v(64);
    std::iota(v.begin(), v.end(), 1);
    return v;
  }();
  const auto model = [](std::uint32_t c, std::size_t idx) {
    // Deterministic per-item work using the split seed.
    Rng rng(task_seed(99, idx));
    return static_cast<std::uint64_t>(c) * 1000 + rng.below(1000);
  };
  ThreadPool serial(1);
  const auto expected = parallel_sweep(serial, configs, model);
  for (unsigned threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(parallel_sweep(pool, configs, model), expected)
        << "threads=" << threads;
  }
}

TEST(ObsShards, MergedRegistryMatchesSerialRun) {
  const std::size_t kItems = 200;
  // Serial reference: one registry, all items.
  obs::Registry expected;
  for (std::size_t i = 0; i < kItems; ++i) {
    expected.counter("sweep.items").inc();
    expected.histogram("sweep.value").record(i % 17);
  }
  for (unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    ObsShards shards(pool.threads());
    std::vector<int> configs(kItems, 0);
    parallel_sweep(pool, configs, shards,
                   [](int, std::size_t idx, ObsShards::Shard& shard) {
                     shard.registry.counter("sweep.items").inc();
                     shard.registry.histogram("sweep.value").record(idx % 17);
                     return 0;
                   });
    obs::Registry merged;
    shards.merge_into(&merged, nullptr);
    EXPECT_EQ(merged.counter("sweep.items").value(), kItems);
    EXPECT_EQ(merged.histogram("sweep.value").count(), kItems);
    EXPECT_EQ(merged.histogram("sweep.value").sum(),
              expected.histogram("sweep.value").sum());
    EXPECT_EQ(merged.histogram("sweep.value").max(),
              expected.histogram("sweep.value").max());
  }
}

TEST(ProgressCell, ReadReturnsWhatPublishWrote) {
  ProgressCell cell;
  const auto zero = cell.read();
  EXPECT_EQ(zero[0], 0u);
  EXPECT_EQ(zero[3], 0u);
  cell.publish(3, 40, 500);
  const auto snap = cell.read();
  EXPECT_EQ(snap[0], 3u);
  EXPECT_EQ(snap[1], 40u);
  EXPECT_EQ(snap[2], 500u);
  EXPECT_EQ(snap[3], 3u + 40u + 500u);  // checksum word
}

TEST(ProgressCell, ConcurrentReadersNeverObserveTornSnapshots) {
  // Seqlock torture: a writer publishes related triples whose checksum word
  // ties them together; readers must never see a snapshot where the checksum
  // doesn't match — that would mean a torn (mid-publish) read.
  ProgressCell cell;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto s = cell.read();
        if (s[0] + s[1] + s[2] != s[3]) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::uint64_t i = 1; i <= 20000; ++i) cell.publish(i, i * 7, i * 131);
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0u);
  const auto last = cell.read();
  EXPECT_EQ(last[0], 20000u);
  EXPECT_EQ(last[1], 20000u * 7);
  EXPECT_EQ(last[2], 20000u * 131);
}

TEST(ObsShards, HarvestProgressSumsShardCells) {
  ObsShards shards(3);
  shards.shard(0).progress.publish(1, 10, 100);
  shards.shard(2).progress.publish(2, 20, 200);
  const auto total = shards.harvest_progress();
  EXPECT_EQ(total[0], 3u);
  EXPECT_EQ(total[1], 30u);
  EXPECT_EQ(total[2], 300u);
}

TEST(ObsShards, ProfilerAbsorbKeepsSpansAndTotals) {
  ObsShards shards(2);
  shards.profiler(0).record_closed("a", 100, 10, 0, 0);
  shards.profiler(1).record_closed("b", 200, 20, 0, 0);
  prof::Profiler merged(prof::Profiler::kDefaultCapacity);
  shards.merge_into(nullptr, &merged);
  EXPECT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged.total_recorded(), 2u);
}

}  // namespace
}  // namespace optrep::rt
