# Sharded-session thread-count determinism gate: run the same `optrep_cli
# state` workload through the parallel batch engine at --threads=1 and
# --threads=8 and require BOTH emitted documents — the optrep.run/v1 report
# (stdout under --json) and the optrep.causal/v1 propagation trace — to be
# byte-identical. Sessions compute in parallel but commit in spec order
# (StateSystem::run_batch), so any divergence here is a scheduling leak into
# protocol results. A second pass repeats the check under fault injection,
# whose per-session streams derive from the configured seed and must be
# equally schedule-independent.
#
# Invoked from ctest:  cmake -DCLI=<optrep_cli binary> -DOUT=<scratch dir>
#                            -P session_determinism.cmake
if(NOT DEFINED CLI OR NOT DEFINED OUT)
  message(FATAL_ERROR "pass -DCLI=<binary> and -DOUT=<scratch dir>")
endif()

file(REMOVE_RECURSE ${OUT})
file(MAKE_DIRECTORY ${OUT})

foreach(variant clean faulty)
  if(variant STREQUAL "clean")
    set(faults)
  else()
    set(faults --loss=0.05 --dup=0.02)
  endif()
  foreach(threads 1 8)
    execute_process(COMMAND ${CLI} state --kind=srv --sites=16 --objects=3
                            --steps=1200 --update-prob=0.4 --seed=9 --json
                            --causal-out=${OUT}/${variant}_t${threads}.causal.json
                            --threads=${threads} ${faults}
                    RESULT_VARIABLE rc
                    OUTPUT_FILE ${OUT}/${variant}_t${threads}.run.json
                    ERROR_QUIET)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
              "${CLI} state (${variant}) failed with --threads=${threads}: ${rc}")
    endif()
    if(NOT EXISTS ${OUT}/${variant}_t${threads}.causal.json)
      message(FATAL_ERROR
              "state (${variant}) with --threads=${threads} wrote no causal trace")
    endif()
  endforeach()

  foreach(doc run causal)
    execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                            ${OUT}/${variant}_t1.${doc}.json
                            ${OUT}/${variant}_t8.${doc}.json
                    RESULT_VARIABLE same)
    if(NOT same EQUAL 0)
      message(FATAL_ERROR
              "${doc} document (${variant}) differs between --threads=1 and --threads=8")
    endif()
  endforeach()
endforeach()

message(STATUS "state run + causal documents byte-identical across thread counts")
