#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "vv/compare.h"
#include "vv/session.h"

namespace optrep::vv {
namespace {

using test::ideal;

const SiteId A{0}, B{1}, C{2}, E{4}, F{5}, G{6}, H{7};

// Replays one replica's state onto a fresh site (state transfer to a site
// that has no replica yet), using the given sync algorithm.
RotatingVector copy_replica(const RotatingVector& src, VectorKind kind) {
  RotatingVector dst;
  sim::EventLoop loop;
  sync_rotating(loop, dst, src, ideal(kind, 8));
  return dst;
}

RotatingVector reconcile(RotatingVector a, const RotatingVector& b, VectorKind kind,
                         SyncReport* rep = nullptr) {
  sim::EventLoop loop;
  auto r = sync_rotating(loop, a, b, ideal(kind, 8));
  if (rep != nullptr) *rep = r;
  return a;
}

// Builds the replication history of Figure 1 (nine nodes, sites A–H) with
// the given vector kind, returning θ1..θ9 (index 0 unused).
struct FigureStates {
  RotatingVector theta[10];
};

FigureStates build_figure1(VectorKind kind) {
  FigureStates f;
  // Node 1: the object is created on site A.
  f.theta[1].record_update(A);
  // Node 2: B receives A's replica and updates.
  f.theta[2] = copy_replica(f.theta[1], kind);
  f.theta[2].record_update(B);
  // Node 3: C receives node 2 and updates.
  f.theta[3] = copy_replica(f.theta[2], kind);
  f.theta[3].record_update(C);
  // Nodes 4–6: E, F, G chain off node 1.
  f.theta[4] = copy_replica(f.theta[1], kind);
  f.theta[4].record_update(E);
  f.theta[5] = copy_replica(f.theta[4], kind);
  f.theta[5].record_update(F);
  f.theta[6] = copy_replica(f.theta[5], kind);
  f.theta[6].record_update(G);
  // Node 7: θ7 := SYNC*_θ6(θ2) — reconciliation of nodes 2 and 6 (footnote 1).
  f.theta[7] = reconcile(f.theta[2], f.theta[6], kind);
  // Node 8: H receives node 7 and updates.
  f.theta[8] = copy_replica(f.theta[7], kind);
  f.theta[8].record_update(H);
  // Node 9: θ9 := SYNC*_θ3(θ8) — reconciliation of nodes 3 and 8.
  f.theta[9] = reconcile(f.theta[8], f.theta[3], kind);
  return f;
}

TEST(Figure1, VectorsMatchThePaper) {
  const FigureStates f = build_figure1(VectorKind::kSrv);
  EXPECT_EQ(f.theta[1].to_string(), "<A:1>");
  EXPECT_EQ(f.theta[2].to_string(), "<B:1, A:1>");
  EXPECT_EQ(f.theta[3].to_string(), "<C:1, B:1, A:1>");
  EXPECT_EQ(f.theta[4].to_string(), "<E:1, A:1>");
  EXPECT_EQ(f.theta[5].to_string(), "<F:1, E:1, A:1>");
  EXPECT_EQ(f.theta[6].to_string(), "<G:1, F:1, E:1, A:1>");
  // θ7 = <G:1, F:1, E:1, B:1, A:1>, G/F/E tagged, segment closed at E.
  EXPECT_EQ(f.theta[7].to_string(), "<G:1*, F:1*, E:1*|, B:1, A:1>");
  EXPECT_EQ(f.theta[8].to_string(), "<H:1, G:1*, F:1*, E:1*|, B:1, A:1>");
  // θ9 = <C,H,G,F,E,B,A>; C tagged and closes its own segment (Figure 2).
  EXPECT_EQ(f.theta[9].to_string(), "<C:1*|, H:1, G:1*, F:1*, E:1*|, B:1, A:1>");
}

TEST(Figure1, Theta7IsReconciliationOfConcurrentNodes) {
  const FigureStates f = build_figure1(VectorKind::kSrv);
  EXPECT_EQ(compare_fast(f.theta[2], f.theta[6]), Ordering::kConcurrent);
  EXPECT_EQ(compare_fast(f.theta[3], f.theta[8]), Ordering::kConcurrent);
  EXPECT_EQ(compare_fast(f.theta[7], f.theta[9]), Ordering::kBefore);
}

TEST(Figure2, CrvTransmitsSixElementsWithGammaThree) {
  // §4: "SYNCC_θ9(θ7) sends θ9's first six elements from B to A but only the
  // first two elements are new to A. Here, |Δ| = 2 and |Γ| = 3."
  const FigureStates f = build_figure1(VectorKind::kCrv);
  SyncReport rep;
  const RotatingVector merged = reconcile(f.theta[7], f.theta[9], VectorKind::kCrv, &rep);
  EXPECT_EQ(rep.elems_sent, 6u);
  EXPECT_EQ(rep.elems_applied, 2u);    // |Δ| = 2 (C and H)
  EXPECT_EQ(rep.elems_redundant, 3u);  // |Γ| = 3 (G, F, E)
  EXPECT_TRUE(merged.same_values(f.theta[9].to_version_vector()));
}

TEST(Figure2, SrvSendsOnlyCHGAndB) {
  // §4: "Eventually, only C, H, G and Bth elements are sent. Segment <A:1>
  // is skipped all together because the Bth element has the conflict bit of
  // zero."
  const FigureStates f = build_figure1(VectorKind::kSrv);
  SyncReport rep;
  const RotatingVector merged = reconcile(f.theta[7], f.theta[9], VectorKind::kSrv, &rep);
  EXPECT_EQ(rep.elems_sent, 4u);       // C, H, G, B
  EXPECT_EQ(rep.elems_applied, 2u);    // Δ = {C, H}
  EXPECT_EQ(rep.elems_redundant, 1u);  // only G forced a redundant transfer
  EXPECT_EQ(rep.skip_msgs, 1u);        // one SKIP covering <F, E>
  EXPECT_EQ(rep.segments_skipped, 1u); // γ = 1
  EXPECT_TRUE(merged.same_values(f.theta[9].to_version_vector()));
  EXPECT_EQ(merged.to_string(), "<C:1*|, H:1|, G:1*, F:1*, E:1*|, B:1, A:1>");
}

TEST(Figure2, SegmentsOfTheta9) {
  // Figure 2 boxes θ9's prefixing segments; our segment bits delimit
  // {C}, {H,G,F,E}, {B,A} — a safe coarsening of the five CRG segments
  // (H dominates G/F/E and B dominates A; see DESIGN.md).
  const FigureStates f = build_figure1(VectorKind::kSrv);
  EXPECT_TRUE(f.theta[9].segment_bit(C));
  EXPECT_TRUE(f.theta[9].segment_bit(E));
  EXPECT_FALSE(f.theta[9].segment_bit(H));
  EXPECT_FALSE(f.theta[9].segment_bit(G));
  EXPECT_FALSE(f.theta[9].segment_bit(B));
}

TEST(SyncSkip, SkipStragglersAreIgnoredUnderPipelining) {
  // Same θ7/θ9 exchange but over a slow pipelined link: in-flight elements
  // of the skipped segment must be ignored without corrupting the result.
  const FigureStates f = build_figure1(VectorKind::kSrv);
  RotatingVector a = f.theta[7];
  auto opt = ideal(VectorKind::kSrv, 8);
  opt.mode = TransferMode::kPipelined;
  opt.net = {.latency_s = 0.1, .bandwidth_bits_per_s = 1e9};  // huge bandwidth: all in flight
  sim::EventLoop loop;
  auto rep = sync_skip(loop, a, f.theta[9], opt);
  EXPECT_TRUE(a.same_values(f.theta[9].to_version_vector()));
  // The skip came too late: everything was already on the wire.
  EXPECT_EQ(rep.elems_sent, 7u);
  EXPECT_EQ(rep.segments_skipped, 0u);
}

TEST(SyncSkip, PipelinedModerateBandwidthMatchesIdealResult) {
  const FigureStates f = build_figure1(VectorKind::kSrv);
  for (double bw : {1e3, 1e4, 1e5, 1e7}) {
    RotatingVector a = f.theta[7];
    auto opt = ideal(VectorKind::kSrv, 8);
    opt.mode = TransferMode::kPipelined;
    opt.net = {.latency_s = 0.001, .bandwidth_bits_per_s = bw};
    sim::EventLoop loop;
    sync_skip(loop, a, f.theta[9], opt);
    EXPECT_TRUE(a.same_values(f.theta[9].to_version_vector())) << "bw=" << bw;
  }
}

TEST(SyncSkip, StopAndWaitMatchesIdeal) {
  const FigureStates f = build_figure1(VectorKind::kSrv);
  RotatingVector a1 = f.theta[7], a2 = f.theta[7];
  auto i = ideal(VectorKind::kSrv, 8);
  auto saw = i;
  saw.mode = TransferMode::kStopAndWait;
  saw.net = {.latency_s = 0.01};
  sim::EventLoop l1, l2;
  auto r1 = sync_skip(l1, a1, f.theta[9], i);
  auto r2 = sync_skip(l2, a2, f.theta[9], saw);
  EXPECT_TRUE(a1.identical_to(a2));
  EXPECT_EQ(r1.elems_sent, r2.elems_sent);
  EXPECT_EQ(r1.segments_skipped, r2.segments_skipped);
}

TEST(SyncSkip, ConsecutiveKnownSegmentsEachSkipOnce) {
  // Receiver knows several multi-element tagged segments of the sender; each
  // must cost one SKIP + one SKIPPED instead of a full retransmission.
  RotatingVector base;
  base.record_update(A);
  RotatingVector s1 = base, s2 = base, s3 = base;
  s1.record_update(B);
  s2.record_update(C);
  s2.record_update(H);  // two-element branch → two-element tagged segment
  s3.record_update(E);
  s3.record_update(G);

  // b accumulates two tagged two-element segments via reconciliations.
  RotatingVector b = s1;
  b = reconcile(b, s2, VectorKind::kSrv);  // <H*, C*|, B, A>
  b = reconcile(b, s3, VectorKind::kSrv);  // <G*, E*|, H*, C*|, B, A>
  ASSERT_EQ(b.to_string(), "<G:1*, E:1*|, H:1*, C:1*|, B:1, A:1>");

  // a knows all of b, then diverges locally so a ≻ b at sync time.
  RotatingVector a = copy_replica(b, VectorKind::kSrv);
  a.record_update(F);

  SyncReport rep;
  RotatingVector merged = reconcile(a, b, VectorKind::kSrv, &rep);
  EXPECT_TRUE(merged.same_values(a.to_version_vector())) << merged.to_string();
  // Stream G(skip E), H(skip C), B(halt): three elements, two skips.
  EXPECT_EQ(rep.elems_sent, 3u);
  EXPECT_EQ(rep.skip_msgs, 2u);
  EXPECT_EQ(rep.segments_skipped, 2u);
  EXPECT_EQ(rep.elems_redundant, 2u);

  // CRV on the same states pays |Γ| = 4 instead.
  const RotatingVector b_crv = b;  // bits are a superset of CRV's
  RotatingVector a_crv = a;
  sim::EventLoop loop;
  auto crv_rep = sync_conflict(loop, a_crv, b_crv, ideal(VectorKind::kCrv, 8));
  EXPECT_EQ(crv_rep.elems_sent, 5u);
  EXPECT_EQ(crv_rep.elems_redundant, 4u);
}

TEST(SyncSkip, EqualVectorsCostOneElement) {
  RotatingVector a;
  a.record_update(A);
  a.record_update(B);
  RotatingVector b = a;
  sim::EventLoop loop;
  auto rep = sync_skip(loop, a, b, ideal(VectorKind::kSrv, 8));
  EXPECT_EQ(rep.elems_sent, 1u);
}

TEST(SyncSkip, EmptyReceiverCopiesBitsExactly) {
  const FigureStates f = build_figure1(VectorKind::kSrv);
  RotatingVector a = copy_replica(f.theta[9], VectorKind::kSrv);
  EXPECT_TRUE(a.identical_to(f.theta[9])) << a.to_string();
}

}  // namespace
}  // namespace optrep::vv
