#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/event_loop.h"
#include "sim/link.h"

namespace optrep::sim {
namespace {

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(3.0, [&] { order.push_back(3); });
  loop.schedule(1.0, [&] { order.push_back(1); });
  loop.schedule(2.0, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(loop.now(), 3.0);
}

TEST(EventLoop, SimultaneousEventsRunFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) loop.schedule(1.0, [&order, i] { order.push_back(i); });
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventLoop, CancelledEventDoesNotRun) {
  EventLoop loop;
  bool ran = false;
  auto id = loop.schedule(1.0, [&] { ran = true; });
  loop.cancel(id);
  loop.run();
  EXPECT_FALSE(ran);
}

TEST(EventLoop, CountsExecutedCancelledAndQueueDepth) {
  EventLoop loop;
  EXPECT_EQ(loop.executed_events(), 0u);
  EXPECT_EQ(loop.max_queue_depth(), 0u);
  const auto id = loop.schedule(1.0, [] {});
  loop.schedule(2.0, [] {});
  loop.schedule(3.0, [] {});
  EXPECT_EQ(loop.queue_depth(), 3u);
  EXPECT_EQ(loop.max_queue_depth(), 3u);
  loop.cancel(id);
  EXPECT_EQ(loop.cancelled_events(), 1u);
  loop.run();
  // The cancelled event was skipped, the other two executed.
  EXPECT_EQ(loop.executed_events(), 2u);
  EXPECT_EQ(loop.queue_depth(), 0u);
  EXPECT_EQ(loop.max_queue_depth(), 3u);  // high-water mark survives the drain
}

TEST(EventLoop, EventsCanScheduleMoreEvents) {
  EventLoop loop;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) loop.schedule_after(1.0, tick);
  };
  loop.schedule(0.0, tick);
  loop.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(loop.now(), 4.0);
}

struct TestMsg {
  int id{0};
};

TEST(Link, LatencyOnlyDelivery) {
  EventLoop loop;
  Link<TestMsg> link(&loop, NetConfig{.latency_s = 0.5});
  std::vector<std::pair<Time, int>> got;
  link.set_receiver([&](const TestMsg& m) { got.emplace_back(loop.now(), m.id); });
  loop.schedule(0.0, [&] {
    link.send(TestMsg{1}, 100, 13);
    link.send(TestMsg{2}, 100, 13);
  });
  loop.run();
  ASSERT_EQ(got.size(), 2u);
  // Infinite bandwidth: both arrive after exactly the propagation latency.
  EXPECT_DOUBLE_EQ(got[0].first, 0.5);
  EXPECT_DOUBLE_EQ(got[1].first, 0.5);
  EXPECT_EQ(got[0].second, 1);
  EXPECT_EQ(got[1].second, 2);
}

TEST(Link, BandwidthPacesTransmissions) {
  EventLoop loop;
  // 100 bits/s, 0.1 s latency: a 100-bit message occupies the link for 1 s.
  Link<TestMsg> link(&loop, NetConfig{.latency_s = 0.1, .bandwidth_bits_per_s = 100});
  std::vector<Time> arrivals;
  link.set_receiver([&](const TestMsg&) { arrivals.push_back(loop.now()); });
  loop.schedule(0.0, [&] {
    link.send(TestMsg{1}, 100, 13);
    link.send(TestMsg{2}, 100, 13);  // queued FIFO behind the first
  });
  loop.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_DOUBLE_EQ(arrivals[0], 1.1);  // 1 s transmit + 0.1 s propagation
  EXPECT_DOUBLE_EQ(arrivals[1], 2.1);
}

TEST(Link, FreeAtReflectsQueue) {
  EventLoop loop;
  Link<TestMsg> link(&loop, NetConfig{.latency_s = 0.0, .bandwidth_bits_per_s = 10});
  link.set_receiver([](const TestMsg&) {});
  loop.schedule(0.0, [&] {
    const Time f1 = link.send(TestMsg{1}, 10, 2);
    EXPECT_DOUBLE_EQ(f1, 1.0);
    const Time f2 = link.send(TestMsg{2}, 20, 4);
    EXPECT_DOUBLE_EQ(f2, 3.0);
  });
  loop.run();
}

TEST(Link, StatsAccumulate) {
  EventLoop loop;
  Link<TestMsg> link(&loop, NetConfig{});
  link.set_receiver([](const TestMsg&) {});
  loop.schedule(0.0, [&] {
    link.send(TestMsg{1}, 10, 2);
    link.send(TestMsg{2}, 30, 5);
  });
  loop.run();
  EXPECT_EQ(link.stats().messages, 2u);
  EXPECT_EQ(link.stats().model_bits, 40u);
  EXPECT_EQ(link.stats().wire_bytes, 7u);
}

TEST(Link, RttIsTwiceLatency) {
  NetConfig cfg{.latency_s = 0.05};
  EXPECT_DOUBLE_EQ(cfg.rtt(), 0.1);
}

TEST(Duplex, IndependentDirections) {
  EventLoop loop;
  Duplex<TestMsg> d(&loop, NetConfig{.latency_s = 1.0});
  int a_got = 0, b_got = 0;
  d.a_to_b().set_receiver([&](const TestMsg&) { ++b_got; });
  d.b_to_a().set_receiver([&](const TestMsg&) { ++a_got; });
  loop.schedule(0.0, [&] {
    d.a_to_b().send(TestMsg{1}, 8, 1);
    d.b_to_a().send(TestMsg{2}, 8, 1);
    d.b_to_a().send(TestMsg{3}, 8, 1);
  });
  loop.run();
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(a_got, 2);
}

}  // namespace
}  // namespace optrep::sim
