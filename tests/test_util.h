// Shared helpers for optrep tests.
#pragma once

#include <cstdint>

#include "sim/event_loop.h"
#include "vv/session.h"

namespace optrep::test {

// Options for a zero-latency, idealized-flow-control session: measures the
// algorithms' textbook communication exactly (halt takes effect instantly).
inline vv::SyncOptions ideal(vv::VectorKind kind, std::uint64_t n = 64,
                             std::uint64_t m = 1024) {
  vv::SyncOptions opt;
  opt.kind = kind;
  opt.mode = vv::TransferMode::kIdeal;
  opt.net = {};  // zero latency, infinite bandwidth
  opt.cost = CostModel{.n = n, .m = m};
  return opt;
}

inline vv::SyncReport run_sync(vv::RotatingVector& a, const vv::RotatingVector& b,
                               const vv::SyncOptions& opt) {
  sim::EventLoop loop;
  return vv::sync_rotating(loop, a, b, opt);
}

}  // namespace optrep::test
