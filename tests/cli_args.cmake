# CLI argument validation gate. For optrep_cli: --threads must reject
# non-numeric, zero, negative, and trailing-garbage values with the typed
# usage error (exit 2), mirroring the --sample-every contract, and the
# `state --threads` combination checks must fire before any work runs. A
# final positive case proves a valid invocation still succeeds. The same
# strict-parse discipline (shared via tools/cli_util.h) is then pinned for
# optrep_serve and optrep_load when those binaries are passed in.
#
# Invoked from ctest:
#   cmake -DCLI=<optrep_cli> [-DSERVE=<optrep_serve>] [-DLOAD=<optrep_load>]
#         -P cli_args.cmake
if(NOT DEFINED CLI)
  message(FATAL_ERROR "pass -DCLI=<binary>")
endif()

function(expect_rejected_by bin msg_fragment)
  execute_process(COMMAND ${bin} ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_QUIET
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 2)
    message(FATAL_ERROR "'${ARGN}' exited ${rc}, want usage exit 2")
  endif()
  string(FIND "${err}" "${msg_fragment}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "'${ARGN}' stderr lacks \"${msg_fragment}\": ${err}")
  endif()
endfunction()

function(expect_rejected msg_fragment)
  expect_rejected_by(${CLI} "${msg_fragment}" ${ARGN})
endfunction()

set(threads_err "--threads must be a positive integer worker count")
foreach(bad 0 -1 -8 abc 4x 2.5 "")
  expect_rejected("${threads_err}" state --sites=4 --steps=20 "--threads=${bad}")
endforeach()

# Combination checks: the batch engine requires automatic resolution and
# forbids the sequential per-session instruments.
expect_rejected("requires automatic resolution"
                state --kind=crv --manual --sites=4 --steps=20 --threads=2)
expect_rejected("sequential per-session instruments"
                state --sites=4 --steps=20 --threads=2 --trace-out=unused.json)
expect_rejected("sequential per-session instruments"
                state --sites=4 --steps=20 --threads=2 --timeline-out=unused.json)

# Valid invocations still pass: boundary value 1 and a plain multi-thread run.
foreach(good 1 4)
  execute_process(COMMAND ${CLI} state --sites=4 --steps=50 "--threads=${good}"
                  RESULT_VARIABLE rc
                  OUTPUT_QUIET ERROR_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "valid 'state --threads=${good}' run exited ${rc}")
  endif()
endforeach()

# 'scenario' combination checks: the large-world engine has its own workload
# model, so per-step-system flags must be rejected up front, scenario-only
# flags must be rejected on other commands, and the single-writer algorithms
# must refuse multi-writer (and flash-crowd) configurations.
foreach(banned --kind=srv --manual --topology=ring --steps=10 --update-prob=0.5
        --threads=2 --seeds=4 --loss=0.1 --fault-seed=9 --trace-out=x.json
        --full-graph --overlap=0.2)
  expect_rejected("'scenario' does not accept" scenario --sites=16 ${banned})
endforeach()
foreach(banned --causal-out=x.json --dump-on-violation=x.json)
  expect_rejected("apply to 'state' and 'sweep' runs" scenario --sites=16 ${banned})
endforeach()
foreach(scen_only --algo=srv --mesh=ring --degree=2 --writers=4 --script=converge)
  expect_rejected("applies to 'scenario' runs" state --sites=4 --steps=20 ${scen_only})
endforeach()
expect_rejected("require --writers=1" scenario --sites=16 --algo=brv --writers=2)
expect_rejected("require --writers=1" scenario --sites=16 --algo=syncg --writers=3)
expect_rejected("single-writer" scenario --sites=64 --algo=syncg --script=flash-crowd)
expect_rejected("unknown algo" scenario --sites=16 --algo=xrv)
expect_rejected("unknown mesh" scenario --sites=16 --mesh=torus)
expect_rejected("unknown phase" scenario --sites=16 --script=warp:4)
expect_rejected("--degree must be a positive integer" scenario --sites=16 --degree=0)
expect_rejected("--writers must be a positive integer" scenario --sites=16 --writers=x)

# A valid scenario run converges and exits 0 on every algorithm.
foreach(algo brv crv srv syncg)
  execute_process(COMMAND ${CLI} scenario --sites=64 "--algo=${algo}" --degree=2
                          --script=converge
                  RESULT_VARIABLE rc
                  OUTPUT_QUIET ERROR_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "valid 'scenario --algo=${algo}' run exited ${rc}")
  endif()
endforeach()
message(STATUS "scenario validation and combination checks hold")

# The serving tools share the strict parsers: same signed-first integer
# contract, plus the [0, 1] fraction check, the kind enum, and the
# exactly-one-target rule for the load generator. None of these cases bind
# a socket, so they are safe in a sandboxed ctest.
if(DEFINED SERVE)
  foreach(bad 0 -2 x 3q "")
    expect_rejected_by(${SERVE} "--workers must be a positive integer worker count"
                       "--workers=${bad}")
  endforeach()
  expect_rejected_by(${SERVE} "--port must be an integer in [0, 65535]" --port=65536)
  expect_rejected_by(${SERVE} "--port must be an integer in [0, 65535]" --port=-1)
  expect_rejected_by(${SERVE} "--kind must be brv, crv or srv" --kind=xrv)
  expect_rejected_by(${SERVE} "--capacity must be >= --replicas"
                     --replicas=8 --capacity=4)
  expect_rejected_by(${SERVE} "unknown option" --bogus)
  message(STATUS "optrep_serve strict-validation checks hold")
endif()

if(DEFINED LOAD)
  expect_rejected_by(${LOAD} "need exactly one of --port, --port-file or --loopback")
  expect_rejected_by(${LOAD} "need exactly one of --port, --port-file or --loopback"
                     --port=4000 --loopback)
  expect_rejected_by(${LOAD} "--port must be an integer in [1, 65535]" --port=0)
  foreach(bad -0.1 1.5 nan x "")
    expect_rejected_by(${LOAD} "--kill-prob must be in [0, 1]"
                       --loopback "--kill-prob=${bad}")
  endforeach()
  expect_rejected_by(${LOAD} "--clients must be a positive integer"
                     --loopback --clients=0)
  expect_rejected_by(${LOAD} "--sessions must be a positive integer"
                     --loopback --sessions=-3)
  expect_rejected_by(${LOAD} "--seed must be a non-negative integer"
                     --loopback --seed=-1)
  expect_rejected_by(${LOAD} "--capacity must be >= --replicas"
                     --loopback --replicas=8 --capacity=4)
  message(STATUS "optrep_load strict-validation checks hold")
endif()

message(STATUS "--threads validation and combination checks hold")
