# CLI argument validation gate for the parallel-session flags: --threads must
# reject non-numeric, zero, negative, and trailing-garbage values with the
# typed usage error (exit 2), mirroring the --sample-every contract, and the
# `state --threads` combination checks must fire before any work runs. A
# final positive case proves a valid invocation still succeeds.
#
# Invoked from ctest:  cmake -DCLI=<optrep_cli binary> -P cli_args.cmake
if(NOT DEFINED CLI)
  message(FATAL_ERROR "pass -DCLI=<binary>")
endif()

function(expect_rejected msg_fragment)
  execute_process(COMMAND ${CLI} ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_QUIET
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 2)
    message(FATAL_ERROR "'${ARGN}' exited ${rc}, want usage exit 2")
  endif()
  string(FIND "${err}" "${msg_fragment}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "'${ARGN}' stderr lacks \"${msg_fragment}\": ${err}")
  endif()
endfunction()

set(threads_err "--threads must be a positive integer worker count")
foreach(bad 0 -1 -8 abc 4x 2.5 "")
  expect_rejected("${threads_err}" state --sites=4 --steps=20 "--threads=${bad}")
endforeach()

# Combination checks: the batch engine requires automatic resolution and
# forbids the sequential per-session instruments.
expect_rejected("requires automatic resolution"
                state --kind=crv --manual --sites=4 --steps=20 --threads=2)
expect_rejected("sequential per-session instruments"
                state --sites=4 --steps=20 --threads=2 --trace-out=unused.json)
expect_rejected("sequential per-session instruments"
                state --sites=4 --steps=20 --threads=2 --timeline-out=unused.json)

# Valid invocations still pass: boundary value 1 and a plain multi-thread run.
foreach(good 1 4)
  execute_process(COMMAND ${CLI} state --sites=4 --steps=50 "--threads=${good}"
                  RESULT_VARIABLE rc
                  OUTPUT_QUIET ERROR_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "valid 'state --threads=${good}' run exited ${rc}")
  endif()
endforeach()

message(STATUS "--threads validation and combination checks hold")
