#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/test_util.h"
#include "vv/compare.h"
#include "vv/session.h"

namespace optrep::vv {
namespace {

using test::ideal;
using test::run_sync;

const SiteId A{0}, B{1}, C{2}, D{3};

TEST(SyncBasic, OverwritesWhenReceiverPrecedes) {
  RotatingVector a;
  a.record_update(A);
  RotatingVector b = a;
  b.record_update(B);
  b.record_update(C);

  sim::EventLoop loop;
  auto rep = sync_basic(loop, a, b, ideal(VectorKind::kBrv));
  // Theorem 3.1: a ≺ b ⇒ result equals b (values and, here, full order).
  EXPECT_EQ(rep.initial_relation, Ordering::kBefore);
  EXPECT_TRUE(a.identical_to(b));
}

TEST(SyncBasic, NoOpWhenReceiverDominates) {
  RotatingVector b;
  b.record_update(A);
  RotatingVector a = b;
  a.record_update(B);

  const RotatingVector before = a;
  sim::EventLoop loop;
  auto rep = sync_basic(loop, a, b, ideal(VectorKind::kBrv));
  EXPECT_EQ(rep.initial_relation, Ordering::kAfter);
  EXPECT_TRUE(a.identical_to(before));
  // The sender's first (and only transmitted) element already halts us.
  EXPECT_EQ(rep.elems_applied, 0u);
  EXPECT_EQ(rep.elems_sent, 1u);
}

TEST(SyncBasic, NoOpWhenEqual) {
  RotatingVector a;
  a.record_update(A);
  RotatingVector b = a;
  sim::EventLoop loop;
  auto rep = sync_basic(loop, a, b, ideal(VectorKind::kBrv));
  EXPECT_EQ(rep.initial_relation, Ordering::kEqual);
  EXPECT_EQ(rep.elems_applied, 0u);
}

TEST(SyncBasic, EmptySenderHaltsImmediately) {
  RotatingVector a, b;
  a.record_update(A);
  sim::EventLoop loop;
  auto rep = sync_basic(loop, a, b, ideal(VectorKind::kBrv));
  EXPECT_EQ(rep.elems_sent, 0u);
  EXPECT_EQ(a.value(A), 1u);
}

TEST(SyncBasic, EmptyReceiverCopiesEverything) {
  RotatingVector a, b;
  b.record_update(A);
  b.record_update(B);
  b.record_update(A);
  sim::EventLoop loop;
  auto rep = sync_basic(loop, a, b, ideal(VectorKind::kBrv));
  EXPECT_TRUE(a.identical_to(b));
  EXPECT_EQ(rep.elems_applied, 2u);
}

TEST(SyncBasic, TransmitsOnlyDeltaPlusHaltElement) {
  // Build a long shared history, then a short fresh suffix on b: SYNCB must
  // transmit |Δ| elements plus the single element it halts on — independent
  // of the vector length (§3.3: O(|Δ|) communication).
  RotatingVector a;
  for (std::uint32_t i = 0; i < 50; ++i) a.record_update(SiteId{i});
  RotatingVector b = a;
  b.record_update(SiteId{50});
  b.record_update(SiteId{51});
  b.record_update(SiteId{52});

  sim::EventLoop loop;
  auto rep = sync_basic(loop, a, b, ideal(VectorKind::kBrv, /*n=*/64));
  EXPECT_EQ(rep.elems_applied, 3u);  // |Δ| = 3
  EXPECT_EQ(rep.elems_sent, 4u);     // Δ plus the halting element
  EXPECT_EQ(rep.elems_redundant, 0u);
  EXPECT_TRUE(a.identical_to(b));
}

TEST(SyncBasic, CommunicationWithinTable2Bound) {
  CostModel cm{.n = 64, .m = 1024};
  RotatingVector a;
  RotatingVector b;
  for (std::uint32_t i = 0; i < 64; ++i) b.record_update(SiteId{i});

  auto opt = ideal(VectorKind::kBrv, 64, 1024);
  opt.known_relation = Ordering::kBefore;  // isolate sync traffic
  sim::EventLoop loop;
  auto rep = sync_basic(loop, a, b, opt);
  // Worst case (everything new): n elements + HALT ≤ n·log(2mn)+2.
  EXPECT_LE(rep.bits_fwd, cm.brv_upper_bound_bits());
  EXPECT_EQ(rep.bits_fwd, 64 * cm.elem_bits(0) + cm.halt_bits());
}

TEST(SyncBasic, Section32CounterexampleBreaksAfterConcurrentUse) {
  // §3.2: θ1 = <A:2, B:1>, θ2 = <B:2, A:1>. Misusing SYNCB to "reconcile"
  // θ2 with θ1 produces θ3 = <A:2, B:2> whose order hides B from θ1 in a
  // later SYNCB — exactly the failure CRV exists to fix.
  RotatingVector theta1, theta2;
  theta1.record_update(B);
  theta1.record_update(A);
  theta1.record_update(A);  // <A:2, B:1>
  theta2.record_update(A);
  theta2.record_update(B);
  theta2.record_update(B);  // <B:2, A:1>
  ASSERT_EQ(theta1.to_string(), "<A:2, B:1>");
  ASSERT_EQ(theta2.to_string(), "<B:2, A:1>");
  ASSERT_EQ(compare_fast(theta1, theta2), Ordering::kConcurrent);

  // θ3 := SYNCB_θ1(θ2): single call still produces the correct max values…
  RotatingVector theta3 = theta2;
  sim::EventLoop loop;
  sync_basic(loop, theta3, theta1, ideal(VectorKind::kBrv));
  EXPECT_EQ(theta3.to_string(), "<A:2, B:2>");

  // …but the subsequent SYNCB_θ3(θ1) halts on A, leaving θ1[B] stale.
  sim::EventLoop loop2;
  sync_basic(loop2, theta1, theta3, ideal(VectorKind::kBrv));
  EXPECT_EQ(theta1.value(B), 1u) << "documented BRV failure mode should reproduce";
}

TEST(SyncBasic, PipelinedAndIdealProduceIdenticalVectors) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    RotatingVector base;
    for (int i = 0; i < 20; ++i)
      base.record_update(SiteId{static_cast<std::uint32_t>(rng.below(8))});
    RotatingVector b = base;
    for (int i = 0; i < 10; ++i)
      b.record_update(SiteId{static_cast<std::uint32_t>(rng.below(8))});

    RotatingVector a1 = base, a2 = base;
    auto opt_ideal = ideal(VectorKind::kBrv, 8);
    auto opt_pipe = opt_ideal;
    opt_pipe.mode = TransferMode::kPipelined;
    opt_pipe.net = {.latency_s = 0.01, .bandwidth_bits_per_s = 1e4};
    sim::EventLoop l1, l2;
    sync_basic(l1, a1, b, opt_ideal);
    sync_basic(l2, a2, b, opt_pipe);
    EXPECT_TRUE(a1.identical_to(a2)) << a1.to_string() << " vs " << a2.to_string();
    EXPECT_TRUE(a1.identical_to(b));
  }
}

TEST(SyncBasic, PipeliningSavesRoundTrips) {
  // k elements: stop-and-wait pays ~k·rtt, pipelining ~1·rtt + k·transmit.
  RotatingVector a;
  RotatingVector b;
  for (std::uint32_t i = 0; i < 20; ++i) b.record_update(SiteId{i});

  auto pipe = ideal(VectorKind::kBrv, 32);
  pipe.mode = TransferMode::kPipelined;
  pipe.net = {.latency_s = 0.05, .bandwidth_bits_per_s = 1e6};
  auto saw = pipe;
  saw.mode = TransferMode::kStopAndWait;

  RotatingVector a1 = a, a2 = a;
  sim::EventLoop l1, l2;
  auto rp = sync_basic(l1, a1, b, pipe);
  auto rs = sync_basic(l2, a2, b, saw);
  EXPECT_TRUE(a1.identical_to(a2));
  // §3.1: pipelining reduces running time by (k−1)·rtt.
  const double rtt = 0.1;
  EXPECT_GT(rs.duration - rp.duration, (20 - 2) * rtt);
}

TEST(SyncBasic, ReportTrafficSplitsByDirection) {
  RotatingVector a, b;
  b.record_update(A);
  b.record_update(B);
  auto opt = ideal(VectorKind::kBrv);
  opt.known_relation = Ordering::kBefore;
  sim::EventLoop loop;
  auto rep = sync_basic(loop, a, b, opt);
  CostModel cm = opt.cost;
  EXPECT_EQ(rep.bits_fwd, 2 * cm.elem_bits(0) + cm.halt_bits());
  EXPECT_EQ(rep.bits_rev, 0u);  // ideal mode: acks are free
  EXPECT_EQ(rep.ack_msgs, 2u);
}

TEST(SyncBasic, ChargesCompareWhenRelationUnknown) {
  RotatingVector a, b;
  b.record_update(A);
  auto opt = ideal(VectorKind::kBrv);
  sim::EventLoop loop;
  auto rep = sync_basic(loop, a, b, opt);
  const auto probe = opt.cost.compare_probe_bits();
  EXPECT_EQ(rep.bits_fwd, probe + opt.cost.elem_bits(0) + opt.cost.halt_bits());
  EXPECT_EQ(rep.bits_rev, probe);
}

TEST(SyncBasic, PipelinedOvershootBoundedByBandwidthDelayProduct) {
  // β = bandwidth · rtt (§3.1): elements transmitted after the receiver's
  // HALT was emitted are bounded by the bandwidth-delay product.
  RotatingVector a;
  a.record_update(D);  // receiver dominates: halts on the first element
  RotatingVector b;    // sender: long vector, all stale
  for (std::uint32_t i = 0; i < 100; ++i) b.record_update(SiteId{i});
  a = b;  // receiver knows everything
  a.record_update(D);

  auto opt = ideal(VectorKind::kBrv, 128);
  opt.mode = TransferMode::kPipelined;
  opt.net = {.latency_s = 0.01, .bandwidth_bits_per_s = 20000};
  opt.known_relation = Ordering::kAfter;
  sim::EventLoop loop;
  auto rep = sync_basic(loop, a, b, opt);

  const CostModel cm = opt.cost;
  const double beta_bits = opt.net.bandwidth_bits_per_s * opt.net.rtt();
  const double max_excess_elems = beta_bits / cm.elem_bits(0) + 2;
  EXPECT_LE(rep.elems_sent, 1 + max_excess_elems);
  EXPECT_GT(rep.elems_sent, 1u);  // but pipelining did overshoot
}

}  // namespace
}  // namespace optrep::vv
