// obs::CausalTracer: trace/span identity, ring semantics, the
// optrep.causal/v1 exporters, and the repl systems' causal instrumentation
// (origins, per-hop delivers, converge closing, retry span parenting under
// fault injection, byte determinism).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/causal.h"
#include "obs/json.h"
#include "repl/op_system.h"
#include "repl/state_system.h"
#include "workload/trace.h"

using namespace optrep;

namespace {

// ---- tracer unit tests -----------------------------------------------------

TEST(CausalTracer, TraceIdsAreStableNonZeroAndSeedSensitive) {
  obs::CausalTracer a(42), b(42), c(43);
  const std::uint64_t id = a.trace_id(ObjectId{1}, SiteId{2}, 3);
  EXPECT_EQ(id, b.trace_id(ObjectId{1}, SiteId{2}, 3));
  EXPECT_NE(id, c.trace_id(ObjectId{1}, SiteId{2}, 3));
  EXPECT_NE(id, a.trace_id(ObjectId{1}, SiteId{2}, 4));
  EXPECT_NE(id, a.trace_id(ObjectId{2}, SiteId{2}, 3));
  EXPECT_NE(id, 0u);
  // origin/deliver/converge for the same update share one trace id.
  a.origin(1.0, ObjectId{1}, SiteId{2}, 3);
  a.deliver(2.0, ObjectId{1}, SiteId{2}, 3, /*span=*/7, SiteId{2}, SiteId{0});
  a.converge(3.0, ObjectId{1}, SiteId{2}, 3);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.event(0).trace, id);
  EXPECT_EQ(a.event(1).trace, id);
  EXPECT_EQ(a.event(2).trace, id);
}

TEST(CausalTracer, SpanIdsAreSequentialAndParented) {
  obs::CausalTracer t(1);
  const std::uint64_t root = t.begin_span(0.0, 0, SiteId{0}, SiteId{1}, 0);
  const std::uint64_t a0 = t.begin_span(0.1, root, SiteId{0}, SiteId{1}, 0);
  const std::uint64_t a1 = t.begin_span(0.2, root, SiteId{0}, SiteId{1}, 1);
  EXPECT_EQ(root, 1u);
  EXPECT_EQ(a0, 2u);
  EXPECT_EQ(a1, 3u);
  EXPECT_EQ(t.spans_opened(), 3u);
  EXPECT_EQ(t.event(1).parent, root);
  EXPECT_EQ(t.event(2).parent, root);
  EXPECT_EQ(t.event(2).attempt, 1u);
  t.end_span(0.3, a1, 128, true);
  EXPECT_EQ(t.event(3).bits, 128u);
  EXPECT_TRUE(t.event(3).ok);
}

TEST(CausalTracer, RingWrapsAtExactCapacityBoundary) {
  obs::CausalTracer t(1, /*capacity=*/4);
  for (std::uint64_t s = 1; s <= 4; ++s) t.origin(double(s), ObjectId{1}, SiteId{0}, s);
  // Exactly full: nothing dropped yet.
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 0u);
  EXPECT_EQ(t.event(0).seq, 1u);
  // One past capacity: the oldest event (seq 1) is overwritten.
  t.origin(5.0, ObjectId{1}, SiteId{0}, 5);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.total_recorded(), 5u);
  EXPECT_EQ(t.dropped(), 1u);
  EXPECT_EQ(t.event(0).seq, 2u);
  EXPECT_EQ(t.event(3).seq, 5u);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
  EXPECT_EQ(t.spans_opened(), 0u);
}

// ---- exporters -------------------------------------------------------------

TEST(CausalExport, SingleRunDocumentShape) {
  obs::CausalTracer t(9);
  t.origin(0.0, ObjectId{3}, SiteId{1}, 1);
  const std::uint64_t s = t.begin_span(0.5, 0, SiteId{1}, SiteId{0}, 0);
  t.wire(0.6, /*recv=*/false, s, /*forward=*/true, SiteId{1}, 1, 40);
  t.wire(0.7, /*recv=*/true, s, /*forward=*/true, SiteId{1}, 1, 0);
  t.apply(0.7, s, SiteId{1}, 1);
  t.deliver(0.8, ObjectId{3}, SiteId{1}, 1, s, SiteId{1}, SiteId{0});
  t.converge(0.8, ObjectId{3}, SiteId{1}, 1);
  t.end_span(0.9, s, 40, true);
  const std::string json = obs::causal_to_json(t);
  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::json_parse(json, &doc, &err)) << err << "\n" << json;
  EXPECT_EQ(doc.find("schema")->string, "optrep.causal/v1");
  EXPECT_EQ(doc.find("total_recorded")->number, 8);
  EXPECT_EQ(doc.find("dropped")->number, 0);
  EXPECT_EQ(doc.find("spans")->number, 1);
  const obs::JsonValue* events = doc.find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items.size(), 8u);
  EXPECT_EQ(events->items[0].find("type")->string, "origin");
  EXPECT_EQ(events->items[1].find("type")->string, "span_begin");
  EXPECT_EQ(events->items[5].find("type")->string, "deliver");
  EXPECT_EQ(events->items[5].find("span")->number, double(s));
  EXPECT_EQ(events->items[7].find("type")->string, "span_end");
  EXPECT_EQ(events->items[7].find("bits")->number, 40);
}

TEST(CausalExport, SweepDocumentAssemblesFragmentsInOrder) {
  obs::CausalTracer t0(1), t1(2);
  t0.origin(0.0, ObjectId{1}, SiteId{0}, 1);
  t1.origin(0.0, ObjectId{1}, SiteId{1}, 1);
  const std::vector<std::string> frags = {obs::causal_run_fragment(t0, 0),
                                          obs::causal_run_fragment(t1, 1)};
  const std::string json = obs::causal_sweep_json(frags);
  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::json_parse(json, &doc, &err)) << err << "\n" << json;
  EXPECT_EQ(doc.find("schema")->string, "optrep.causal/v1");
  EXPECT_EQ(doc.find("axis")->string, "run");
  const obs::JsonValue* runs = doc.find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->items.size(), 2u);
  EXPECT_EQ(runs->items[0].find("run")->number, 0);
  EXPECT_EQ(runs->items[1].find("run")->number, 1);
  EXPECT_EQ(runs->items[1].find("events")->items.size(), 1u);
}

TEST(CausalExport, PerfettoDocumentHasSlicesAndFlows) {
  obs::CausalTracer t(5);
  t.origin(0.0, ObjectId{1}, SiteId{0}, 1);
  const std::uint64_t s = t.begin_span(0.5, 0, SiteId{0}, SiteId{1}, 0);
  t.deliver(0.8, ObjectId{1}, SiteId{0}, 1, s, SiteId{0}, SiteId{1});
  t.converge(0.8, ObjectId{1}, SiteId{0}, 1);
  t.end_span(0.9, s, 64, true);
  const std::string json = obs::causal_to_perfetto_json(t);
  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::json_parse(json, &doc, &err)) << err << "\n" << json;
  const obs::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::set<std::string> phases;
  for (const obs::JsonValue& e : events->items) phases.insert(e.find("ph")->string);
  EXPECT_TRUE(phases.count("X"));  // span slices
  EXPECT_TRUE(phases.count("s"));  // flow start
  EXPECT_TRUE(phases.count("f"));  // hop flow end
  EXPECT_TRUE(phases.count("i"));  // origin/deliver/converge instants
}

// ---- StateSystem integration -----------------------------------------------

repl::StateSystem::Config state_cfg(std::uint32_t sites, obs::CausalTracer* c) {
  repl::StateSystem::Config cfg;
  cfg.n_sites = sites;
  cfg.kind = vv::VectorKind::kSrv;
  cfg.cost = CostModel{.n = sites, .m = 1 << 16};
  cfg.causal = c;
  return cfg;
}

// Index the retained ring by type for invariant checks.
struct Indexed {
  std::vector<obs::CausalEvent> origins, delivers, converges, begins, ends, faults;
  std::map<std::uint64_t, obs::CausalEvent> span_begin;  // span id -> begin
  explicit Indexed(const obs::CausalTracer& t) {
    for (std::size_t i = 0; i < t.size(); ++i) {
      const obs::CausalEvent& e = t.event(i);
      switch (e.type) {
        case obs::CausalEventType::kOrigin: origins.push_back(e); break;
        case obs::CausalEventType::kDeliver: delivers.push_back(e); break;
        case obs::CausalEventType::kConverge: converges.push_back(e); break;
        case obs::CausalEventType::kSpanBegin:
          begins.push_back(e);
          span_begin[e.span] = e;
          break;
        case obs::CausalEventType::kSpanEnd: ends.push_back(e); break;
        case obs::CausalEventType::kFault: faults.push_back(e); break;
        default: break;
      }
    }
  }
};

TEST(CausalStateSystem, OriginsDeliversAndConvergeCloseEveryTrace) {
  obs::CausalTracer tracer(7);
  repl::StateSystem sys(state_cfg(3, &tracer));
  const ObjectId obj{1};
  sys.create_object(SiteId{0}, obj, "a");
  sys.sync(SiteId{1}, SiteId{0}, obj);
  sys.sync(SiteId{2}, SiteId{0}, obj);
  sys.update(SiteId{1}, obj, "b");
  sys.sync(SiteId{0}, SiteId{1}, obj);
  sys.sync(SiteId{2}, SiteId{1}, obj);
  ASSERT_TRUE(sys.replicas_consistent(obj));

  const Indexed ix(tracer);
  ASSERT_GE(ix.origins.size(), 2u);  // the create + the update
  ASSERT_FALSE(ix.delivers.empty());
  // Every origin's trace eventually converges (the fleet is consistent).
  std::set<std::uint64_t> converged;
  for (const obs::CausalEvent& e : ix.converges) converged.insert(e.trace);
  for (const obs::CausalEvent& e : ix.origins) {
    EXPECT_TRUE(converged.count(e.trace))
        << "origin (site " << e.site.value << ", seq " << e.seq
        << ") never converged";
  }
  // Delivers reference real spans, and those spans closed ok.
  std::set<std::uint64_t> ended_ok;
  for (const obs::CausalEvent& e : ix.ends)
    if (e.ok) ended_ok.insert(e.span);
  for (const obs::CausalEvent& e : ix.delivers) {
    ASSERT_NE(e.span, 0u);
    EXPECT_TRUE(ix.span_begin.count(e.span));
    EXPECT_TRUE(ended_ok.count(e.span));
    EXPECT_NE(e.src, e.dst);
  }
  // Convergence coincides with the last delivery of that trace (fault-free).
  std::map<std::uint64_t, double> last_deliver;
  for (const obs::CausalEvent& e : ix.delivers) last_deliver[e.trace] = e.at;
  for (const obs::CausalEvent& e : ix.converges) {
    if (last_deliver.count(e.trace)) {
      EXPECT_EQ(e.at, last_deliver[e.trace]);
    }
  }
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(CausalStateSystem, RetrySpansParentToTheRecoveryRootUnderLoss) {
  obs::CausalTracer tracer(3);
  auto cfg = state_cfg(3, &tracer);
  cfg.net.latency_s = 0.001;
  cfg.net.faults.drop = 0.3;
  cfg.net.faults.seed = 11;
  repl::StateSystem sys(cfg);
  const ObjectId obj{1};
  sys.create_object(SiteId{0}, obj, "a");
  for (int i = 0; i < 12; ++i) {
    sys.update(SiteId{0}, obj, "u" + std::to_string(i));
    sys.sync(SiteId{1}, SiteId{0}, obj);
    sys.sync(SiteId{2}, SiteId{0}, obj);
  }
  const Indexed ix(tracer);
  ASSERT_FALSE(ix.faults.empty()) << "30% drop must inject visible faults";
  // Attempt spans parent to a root span that is itself parentless; a retried
  // session shows attempt > 0 under the same root.
  bool saw_retry = false;
  for (const obs::CausalEvent& e : ix.begins) {
    if (e.parent == 0) continue;
    ASSERT_TRUE(ix.span_begin.count(e.parent));
    EXPECT_EQ(ix.span_begin.at(e.parent).parent, 0u);
    saw_retry = saw_retry || e.attempt > 0;
  }
  EXPECT_TRUE(saw_retry) << "expected at least one retry attempt span";
  // Fault events attach to an open span.
  for (const obs::CausalEvent& e : ix.faults) {
    EXPECT_TRUE(ix.span_begin.count(e.span));
    EXPECT_NE(e.fault, obs::FlightFault::kNone);
  }
}

TEST(CausalStateSystem, WorkloadRunsExportByteIdenticalDocuments) {
  const auto run = [] {
    obs::CausalTracer tracer(99);
    auto cfg = state_cfg(4, &tracer);
    cfg.net.faults.drop = 0.05;
    cfg.net.faults.seed = 21;
    cfg.net.latency_s = 0.001;
    repl::StateSystem sys(cfg);
    wl::GeneratorConfig g;
    g.n_sites = 4;
    g.n_objects = 2;
    g.steps = 150;
    g.seed = 17;
    wl::run_state(sys, wl::generate(g));
    return obs::causal_to_json(tracer);
  };
  const std::string a = run();
  EXPECT_EQ(a, run());
  EXPECT_NE(a.find("\"type\":\"converge\""), std::string::npos);
}

// ---- OpSystem integration --------------------------------------------------

TEST(CausalOpSystem, OperationTracesCloseWithSpanlessDelivers) {
  obs::CausalTracer tracer(5);
  repl::OpSystem::Config cfg;
  cfg.n_sites = 3;
  cfg.cost = CostModel{.n = 3, .m = 1 << 20};
  cfg.causal = &tracer;
  repl::OpSystem sys(cfg);
  const ObjectId obj{1};
  sys.create_object(SiteId{0}, obj, "a");
  sys.sync(SiteId{1}, SiteId{0}, obj);
  sys.update(SiteId{0}, obj, "b");
  sys.update(SiteId{1}, obj, "c");
  sys.sync(SiteId{1}, SiteId{0}, obj);  // reconciles: merge node opens a trace
  sys.sync(SiteId{0}, SiteId{1}, obj);
  ASSERT_TRUE(sys.replicas_consistent(obj));

  const Indexed ix(tracer);
  ASSERT_GE(ix.origins.size(), 3u);  // create + two updates (+ merge)
  std::set<std::uint64_t> converged;
  for (const obs::CausalEvent& e : ix.converges) converged.insert(e.trace);
  for (const obs::CausalEvent& e : ix.origins) {
    EXPECT_TRUE(converged.count(e.trace))
        << "op (site " << e.site.value << ", seq " << e.seq << ") never converged";
  }
  // Operation transfer has no vv spans: delivers carry span 0 but still name
  // the (src, dst) hop.
  ASSERT_FALSE(ix.delivers.empty());
  for (const obs::CausalEvent& e : ix.delivers) {
    EXPECT_EQ(e.span, 0u);
    EXPECT_NE(e.src, e.dst);
  }
}

}  // namespace
