// Frame batching must be invisible to the protocols: with any frame budget,
// a session produces bit-identical reports and vector states to the unframed
// run — including the §3.1 pipelining overshoot, which requires HALT to
// cancel the not-yet-transmitted tail of an open frame.
//
// Pipelined grids use finite, non-round bandwidth/latency: with infinite
// bandwidth a speculative burst transmits instantaneously at enqueue time, so
// "not yet transmitting" is undecidable and framed speculation is undefined
// (DESIGN.md §5) — real pipelining always has finite bandwidth.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "vv/compare.h"
#include "vv/session.h"

namespace optrep::vv {
namespace {

struct VecPair {
  RotatingVector a;
  RotatingVector b;
};

// A shared history, then per-replica divergence: b always grows past a;
// `concurrent` lets a advance on its own sites too.
VecPair make_pair(Rng& rng, std::uint32_t n_sites, std::uint32_t shared,
                  std::uint32_t extra, bool concurrent) {
  VecPair p;
  for (std::uint32_t i = 0; i < shared; ++i) {
    const SiteId s{static_cast<std::uint32_t>(rng.range(0, n_sites - 1))};
    p.a.record_update(s);
  }
  p.b = p.a;
  for (std::uint32_t i = 0; i < extra; ++i) {
    p.b.record_update(SiteId{static_cast<std::uint32_t>(rng.range(0, n_sites - 1))});
  }
  if (concurrent) {
    for (std::uint32_t i = 0; i < extra / 2 + 1; ++i) {
      p.a.record_update(SiteId{static_cast<std::uint32_t>(rng.range(0, n_sites - 1))});
    }
  }
  return p;
}

void expect_reports_identical(const SyncReport& unframed, const SyncReport& framed) {
  EXPECT_EQ(unframed.initial_relation, framed.initial_relation);
  EXPECT_EQ(unframed.bits_fwd, framed.bits_fwd);
  EXPECT_EQ(unframed.bits_rev, framed.bits_rev);
  EXPECT_EQ(unframed.bytes_fwd, framed.bytes_fwd);
  EXPECT_EQ(unframed.bytes_rev, framed.bytes_rev);
  EXPECT_EQ(unframed.msgs_fwd, framed.msgs_fwd);
  EXPECT_EQ(unframed.msgs_rev, framed.msgs_rev);
  EXPECT_EQ(unframed.elems_sent, framed.elems_sent);
  EXPECT_EQ(unframed.elems_applied, framed.elems_applied);
  EXPECT_EQ(unframed.elems_redundant, framed.elems_redundant);
  EXPECT_EQ(unframed.elems_straggler, framed.elems_straggler);
  EXPECT_EQ(unframed.elems_after_halt, framed.elems_after_halt);
  EXPECT_EQ(unframed.skip_msgs, framed.skip_msgs);
  EXPECT_EQ(unframed.segments_skipped, framed.segments_skipped);
  EXPECT_EQ(unframed.ack_msgs, framed.ack_msgs);
  // Simulated time is computed by the same arithmetic in the same order:
  // exact equality, not approximate.
  EXPECT_EQ(unframed.duration, framed.duration);
  EXPECT_EQ(unframed.receiver_done_at, framed.receiver_done_at);
}

SyncOptions make_opt(VectorKind kind, TransferMode mode, std::uint32_t n_sites,
                     std::uint32_t budget) {
  SyncOptions opt;
  opt.kind = kind;
  opt.mode = mode;
  opt.cost = CostModel{.n = n_sites, .m = 1 << 16};
  // Non-round figures so timing ties cannot mask ordering bugs.
  opt.net = {.latency_s = 0.0013, .bandwidth_bits_per_s = 997.0};
  opt.net.frame_budget = budget;
  return opt;
}

TEST(FrameSession, ReportsAndStatesBitIdenticalAcrossBudgets) {
  Rng rng(77);
  for (auto kind : {VectorKind::kBrv, VectorKind::kCrv, VectorKind::kSrv}) {
    for (auto mode :
         {TransferMode::kPipelined, TransferMode::kStopAndWait, TransferMode::kIdeal}) {
      for (std::uint32_t budget : {1u, 3u, 8u, 64u}) {
        for (int trial = 0; trial < 6; ++trial) {
          const bool concurrent = kind != VectorKind::kBrv && trial % 2 == 1;
          VecPair p = make_pair(rng, 8, 20, 15 + static_cast<std::uint32_t>(trial) * 9,
                                concurrent);
          const Ordering rel = compare_fast(p.a, p.b);
          if (rel == Ordering::kEqual || rel == Ordering::kAfter) continue;
          if (kind == VectorKind::kBrv && rel == Ordering::kConcurrent) continue;

          RotatingVector a0 = p.a, a1 = p.a;
          SyncOptions opt0 = make_opt(kind, mode, 8, 0);
          opt0.known_relation = rel;
          sim::EventLoop loop0;
          const SyncReport r0 = sync_rotating(loop0, a0, p.b, opt0);

          SyncOptions opt1 = make_opt(kind, mode, 8, budget);
          opt1.known_relation = rel;
          sim::EventLoop loop1;
          const SyncReport r1 = sync_rotating(loop1, a1, p.b, opt1);

          SCOPED_TRACE(testing::Message()
                       << "kind=" << static_cast<int>(kind) << " mode="
                       << static_cast<int>(mode) << " budget=" << budget
                       << " trial=" << trial);
          expect_reports_identical(r0, r1);
          EXPECT_TRUE(a0.identical_to(a1));
          // Framing only batches: fewer-or-equal frames and dispatches, and
          // the realistic framed bytes never exceed the unframed encoding.
          EXPECT_LE(r1.total_frames(), r0.total_frames());
          EXPECT_LE(r1.total_framed_bytes(), r0.bytes_fwd + r0.bytes_rev);
          EXPECT_LE(r1.loop_events, r0.loop_events);
        }
      }
    }
  }
}

TEST(FrameSession, PipelinedHaltStillOvershootsByBeta) {
  // A receiver that already covers most of b halts early; the pipelined
  // sender overshoots by up to β = bandwidth·rtt past the halt — the framed
  // run must reproduce the unframed overshoot exactly: HALT revokes only the
  // unsent frame tail, not elements already on the wire.
  Rng rng(123);
  RotatingVector a;
  for (int i = 0; i < 400; ++i) {
    a.record_update(SiteId{static_cast<std::uint32_t>(rng.range(0, 9))});
  }
  RotatingVector b = a;
  b.record_update(SiteId{3});  // a ≺ b by one element

  for (auto kind : {VectorKind::kBrv, VectorKind::kCrv, VectorKind::kSrv}) {
    RotatingVector a0 = a, a1 = a;
    SyncOptions opt0 = make_opt(kind, TransferMode::kPipelined, 10, 0);
    sim::EventLoop loop0;
    const SyncReport r0 = sync_rotating(loop0, a0, b, opt0);

    SyncOptions opt1 = make_opt(kind, TransferMode::kPipelined, 10, 16);
    sim::EventLoop loop1;
    const SyncReport r1 = sync_rotating(loop1, a1, b, opt1);

    SCOPED_TRACE(testing::Message() << "kind=" << static_cast<int>(kind));
    expect_reports_identical(r0, r1);
    EXPECT_TRUE(a0.identical_to(a1));
    // The overshoot is real (halt raced in-flight elements) but bounded:
    // the sender did not stream the whole 400-element vector.
    EXPECT_GT(r1.elems_after_halt, 0u);
    EXPECT_LT(r1.elems_sent, 400u);
  }
}

TEST(FrameSession, BatchedDispatchExecutesFarFewerEvents) {
  // The tentpole claim at protocol level: a budget-16 pipelined session
  // executes at least 5× fewer event-loop dispatches than unframed.
  Rng rng(9);
  RotatingVector a;
  for (int i = 0; i < 30; ++i) {
    a.record_update(SiteId{static_cast<std::uint32_t>(rng.range(0, 7))});
  }
  RotatingVector b = a;
  for (int i = 0; i < 3000; ++i) {
    b.record_update(SiteId{static_cast<std::uint32_t>(rng.range(0, 7))});
  }
  RotatingVector a0 = a, a1 = a;
  SyncOptions opt0 = make_opt(VectorKind::kSrv, TransferMode::kPipelined, 8, 0);
  sim::EventLoop loop0;
  const SyncReport r0 = sync_rotating(loop0, a0, b, opt0);
  SyncOptions opt1 = make_opt(VectorKind::kSrv, TransferMode::kPipelined, 8, 16);
  sim::EventLoop loop1;
  const SyncReport r1 = sync_rotating(loop1, a1, b, opt1);
  expect_reports_identical(r0, r1);
  EXPECT_GE(r0.loop_events, 5 * r1.loop_events);
  EXPECT_LT(r1.total_framed_bytes(), r0.total_bytes());
}

}  // namespace
}  // namespace optrep::vv
