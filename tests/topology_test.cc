// sim::Mesh (sim/topology.h): the four gossip topology families. Pins the
// CSR invariants every consumer assumes (symmetry, sorted neighbor runs, no
// self-loops or duplicates), per-family shape properties, connectivity for
// the parameterizations the scenario presets use, and construction
// determinism — committed bench baselines depend on build() being a pure
// function of (kind, n, degree, seed).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/topology.h"

namespace optrep::sim {
namespace {

// CSR sanity: neighbor runs sorted strictly ascending (no duplicates), no
// self-loops, and every edge present in both directions.
void check_invariants(const Mesh& m) {
  for (std::uint32_t s = 0; s < m.sites(); ++s) {
    for (std::uint32_t j = 0; j < m.degree(s); ++j) {
      const std::uint32_t t = m.neighbor(s, j);
      ASSERT_LT(t, m.sites());
      ASSERT_NE(t, s) << "self-loop at " << s;
      if (j > 0) {
        ASSERT_LT(m.neighbor(s, j - 1), t) << "unsorted/duplicate at " << s;
      }
      bool back = false;
      for (std::uint32_t i = 0; i < m.degree(t); ++i) back |= m.neighbor(t, i) == s;
      ASSERT_TRUE(back) << "edge " << s << "->" << t << " not symmetric";
    }
  }
}

bool connected(const Mesh& m) {
  std::vector<std::uint8_t> seen(m.sites(), 0);
  std::vector<std::uint32_t> stack{0};
  seen[0] = 1;
  std::uint32_t count = 1;
  while (!stack.empty()) {
    const std::uint32_t s = stack.back();
    stack.pop_back();
    for (std::uint32_t j = 0; j < m.degree(s); ++j) {
      const std::uint32_t t = m.neighbor(s, j);
      if (!seen[t]) {
        seen[t] = 1;
        ++count;
        stack.push_back(t);
      }
    }
  }
  return count == m.sites();
}

bool same_adjacency(const Mesh& a, const Mesh& b) {
  if (a.sites() != b.sites() || a.edge_count() != b.edge_count()) return false;
  for (std::uint32_t s = 0; s < a.sites(); ++s) {
    if (a.degree(s) != b.degree(s)) return false;
    for (std::uint32_t j = 0; j < a.degree(s); ++j) {
      if (a.neighbor(s, j) != b.neighbor(s, j)) return false;
    }
  }
  return true;
}

TEST(MeshRing, LatticeShape) {
  const Mesh m = Mesh::ring(10, 2);
  check_invariants(m);
  EXPECT_TRUE(connected(m));
  EXPECT_EQ(m.edge_count(), 20u);  // n·k undirected edges
  for (std::uint32_t s = 0; s < 10; ++s) EXPECT_EQ(m.degree(s), 4u);
  // Site 0's neighbors are ±1, ±2 mod 10.
  EXPECT_EQ(m.neighbor(0, 0), 1u);
  EXPECT_EQ(m.neighbor(0, 1), 2u);
  EXPECT_EQ(m.neighbor(0, 2), 8u);
  EXPECT_EQ(m.neighbor(0, 3), 9u);
}

TEST(MeshRing, DegreeClampedOnTinyWorlds) {
  // k is clamped to (n-1)/2 so no pair appears twice.
  const Mesh m = Mesh::ring(4, 100);
  check_invariants(m);
  EXPECT_TRUE(connected(m));
  EXPECT_EQ(m.edge_count(), 4u);  // plain cycle
}

TEST(MeshSmallWorld, PreservesEdgeCountAndConnects) {
  const Mesh m = Mesh::small_world(200, 3, 0.1, 42);
  check_invariants(m);
  EXPECT_TRUE(connected(m));
  // Watts–Strogatz rewires endpoints but never adds or removes edges.
  EXPECT_EQ(m.edge_count(), 600u);
  // β=0.1 on 600 edges rewires ~60: the mesh must differ from the lattice.
  EXPECT_FALSE(same_adjacency(m, Mesh::ring(200, 3)));
}

TEST(MeshSmallWorld, BetaZeroIsTheLattice) {
  EXPECT_TRUE(same_adjacency(Mesh::small_world(64, 2, 0.0, 7), Mesh::ring(64, 2)));
}

TEST(MeshScaleFree, AttachmentCountAndHubs) {
  const Mesh m = Mesh::scale_free(300, 2, 9);
  check_invariants(m);
  EXPECT_TRUE(connected(m));
  // Seed clique C(3,2)=3 edges + 2 per later site.
  EXPECT_EQ(m.edge_count(), 3u + 297u * 2u);
  // Preferential attachment produces hubs far above the attachment degree.
  EXPECT_GE(m.max_degree(), 8u);
  std::uint32_t min_deg = m.degree(0);
  for (std::uint32_t s = 1; s < m.sites(); ++s) min_deg = std::min(min_deg, m.degree(s));
  EXPECT_GE(min_deg, 2u);  // every site attached with ≥ m edges
}

TEST(MeshGeoClustered, ClustersBridgedByGateways) {
  const Mesh m = Mesh::geo_clustered(256, 32, 2, 5);
  check_invariants(m);
  EXPECT_TRUE(connected(m));
  // Gateways (cluster bases) carry the inter-region ring + chords on top of
  // their intra-region lattice degree.
  EXPECT_GT(m.degree(0), m.degree(1));
}

TEST(MeshBuild, DispatchesAndTagsKind) {
  EXPECT_EQ(Mesh::build(MeshKind::kRing, 32, 2, 1).kind(), MeshKind::kRing);
  EXPECT_EQ(Mesh::build(MeshKind::kSmallWorld, 32, 2, 1).kind(), MeshKind::kSmallWorld);
  EXPECT_EQ(Mesh::build(MeshKind::kScaleFree, 32, 2, 1).kind(), MeshKind::kScaleFree);
  EXPECT_EQ(Mesh::build(MeshKind::kGeoClustered, 32, 2, 1).kind(), MeshKind::kGeoClustered);
}

TEST(MeshBuild, DeterministicForFixedParameters) {
  for (const MeshKind k : {MeshKind::kRing, MeshKind::kSmallWorld, MeshKind::kScaleFree,
                           MeshKind::kGeoClustered}) {
    const Mesh a = Mesh::build(k, 500, 3, 77);
    const Mesh b = Mesh::build(k, 500, 3, 77);
    EXPECT_TRUE(same_adjacency(a, b)) << to_string(k);
    check_invariants(a);
    EXPECT_TRUE(connected(a)) << to_string(k);
  }
  // A different seed moves the randomized families.
  EXPECT_FALSE(same_adjacency(Mesh::build(MeshKind::kSmallWorld, 500, 3, 77),
                              Mesh::build(MeshKind::kSmallWorld, 500, 3, 78)));
}

TEST(MeshBuild, MemoryFootprintIsFlat) {
  const Mesh m = Mesh::build(MeshKind::kRing, 10000, 2, 1);
  // offsets (n+1) + neighbors (2·edges) u32s; CSR, no per-node allocation.
  EXPECT_GE(m.memory_bytes(), (10001u + 40000u) * sizeof(std::uint32_t));
  EXPECT_LT(m.memory_bytes(), 2u * (10001u + 40000u) * sizeof(std::uint32_t));
}

}  // namespace
}  // namespace optrep::sim
