// End-to-end property tests: generated workload traces drive complete
// replication systems. The StateSystem continuously cross-checks rotating
// vectors against the traditional-vector oracle and ground-truth causality
// (any divergence aborts the process), so a green run here is a strong
// statement about protocol correctness on thousands of synchronizations.
#include <gtest/gtest.h>

#include "workload/trace.h"

namespace optrep::wl {
namespace {

repl::StateSystem::Config state_cfg(vv::VectorKind kind, std::uint32_t n_sites,
                                    vv::TransferMode mode = vv::TransferMode::kIdeal) {
  repl::StateSystem::Config cfg;
  cfg.n_sites = n_sites;
  cfg.kind = kind;
  cfg.policy = kind == vv::VectorKind::kBrv ? repl::ResolutionPolicy::kManual
                                            : repl::ResolutionPolicy::kAutomatic;
  cfg.mode = mode;
  cfg.cost = CostModel{.n = n_sites, .m = 1 << 16};
  if (mode == vv::TransferMode::kPipelined) {
    cfg.net = {.latency_s = 0.002, .bandwidth_bits_per_s = 1e6};
  }
  return cfg;
}

struct TraceCase {
  vv::VectorKind kind;
  vv::TransferMode mode;
  std::uint64_t seed;
};

class StateTraceTest : public ::testing::TestWithParam<TraceCase> {};

TEST_P(StateTraceTest, RandomGossipConvergesWithOracleChecks) {
  const TraceCase& tc = GetParam();
  GeneratorConfig g;
  g.n_sites = 6;
  g.n_objects = 3;
  g.steps = 400;
  g.update_prob = 0.45;
  g.seed = tc.seed;
  const Trace trace = generate(g);

  repl::StateSystem sys(state_cfg(tc.kind, g.n_sites, tc.mode));
  const RunStats stats = run_state(sys, trace);
  if (tc.kind != vv::VectorKind::kBrv) {
    EXPECT_TRUE(stats.eventually_consistent);
  }
  EXPECT_GT(stats.updates, 0u);
  EXPECT_GT(stats.syncs, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    KindsModesSeeds, StateTraceTest,
    ::testing::Values(
        TraceCase{vv::VectorKind::kCrv, vv::TransferMode::kIdeal, 1},
        TraceCase{vv::VectorKind::kCrv, vv::TransferMode::kIdeal, 2},
        TraceCase{vv::VectorKind::kCrv, vv::TransferMode::kStopAndWait, 3},
        TraceCase{vv::VectorKind::kCrv, vv::TransferMode::kPipelined, 4},
        TraceCase{vv::VectorKind::kSrv, vv::TransferMode::kIdeal, 5},
        TraceCase{vv::VectorKind::kSrv, vv::TransferMode::kIdeal, 6},
        TraceCase{vv::VectorKind::kSrv, vv::TransferMode::kStopAndWait, 7},
        TraceCase{vv::VectorKind::kSrv, vv::TransferMode::kPipelined, 8},
        TraceCase{vv::VectorKind::kBrv, vv::TransferMode::kIdeal, 9},
        TraceCase{vv::VectorKind::kBrv, vv::TransferMode::kPipelined, 10}),
    [](const auto& info) {
      const TraceCase& tc = info.param;
      std::string name{to_string(tc.kind)};
      switch (tc.mode) {
        case vv::TransferMode::kIdeal: name += "Ideal"; break;
        case vv::TransferMode::kStopAndWait: name += "StopAndWait"; break;
        case vv::TransferMode::kPipelined: name += "Pipelined"; break;
      }
      return name + "Seed" + std::to_string(tc.seed);
    });

TEST(Integration, SrvNeverMoreRedundantThanCrvOnSameTrace) {
  // §4's whole point: SRV replaces CRV's |Γ| with γ ≤ |Γ| redundant work.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Trace trace = append_only_log(6, 300, seed);
    repl::StateSystem crv(state_cfg(vv::VectorKind::kCrv, 6));
    repl::StateSystem srv(state_cfg(vv::VectorKind::kSrv, 6));
    run_state(crv, trace);
    run_state(srv, trace);
    EXPECT_LE(srv.totals().elems_redundant, crv.totals().elems_redundant)
        << "seed " << seed;
    EXPECT_TRUE(crv.replicas_consistent(ObjectId{0}));
    EXPECT_TRUE(srv.replicas_consistent(ObjectId{0}));
  }
}

TEST(Integration, HighConflictLogShowsGammaGap) {
  // On the append-only-log scenario the CRV redundancy must be visibly
  // nonzero while SRV's stays near its skip count.
  const Trace trace = append_only_log(8, 600, 42);
  repl::StateSystem crv(state_cfg(vv::VectorKind::kCrv, 8));
  repl::StateSystem srv(state_cfg(vv::VectorKind::kSrv, 8));
  run_state(crv, trace);
  run_state(srv, trace);
  EXPECT_GT(crv.totals().elems_redundant, 0u);
  EXPECT_LT(srv.totals().elems_sent, crv.totals().elems_sent);
}

TEST(Integration, ScenariosRunToConsistency) {
  {
    repl::StateSystem sys(state_cfg(vv::VectorKind::kSrv, 10));
    const RunStats s = run_state(sys, dtn_store(10, 8, 500, 7));
    EXPECT_TRUE(s.eventually_consistent);
  }
  {
    repl::StateSystem sys(state_cfg(vv::VectorKind::kSrv, 12));
    const RunStats s = run_state(sys, collaboration(12, 500, 11));
    EXPECT_TRUE(s.eventually_consistent);
  }
}

TEST(Integration, ManualPolicyHoldsConflictsInsteadOfMerging) {
  const Trace trace = append_only_log(5, 200, 3);
  repl::StateSystem sys(state_cfg(vv::VectorKind::kBrv, 5));
  const RunStats stats = run_state(sys, trace, /*drive_to_consistency=*/false);
  // Heavy concurrent appends must have been flagged at least once…
  EXPECT_GT(sys.totals().conflicts_detected, 0u);
  // …and never silently merged.
  EXPECT_EQ(sys.totals().reconciliations, 0u);
  EXPECT_GT(stats.skipped, 0u);  // excluded replicas refuse updates/syncs
}

TEST(Integration, OpTransferTracesConverge) {
  for (std::uint64_t seed : {21, 22, 23}) {
    GeneratorConfig g;
    g.n_sites = 5;
    g.n_objects = 2;
    g.steps = 300;
    g.update_prob = 0.5;
    g.seed = seed;
    repl::OpSystem::Config cfg;
    cfg.n_sites = g.n_sites;
    cfg.cost = CostModel{.n = g.n_sites, .m = 1 << 16};
    repl::OpSystem sys(cfg);
    const RunStats stats = run_op(sys, generate(g));
    EXPECT_TRUE(stats.eventually_consistent) << "seed " << seed;
  }
}

TEST(Integration, OpTransferIncrementalVsFullSameResult) {
  GeneratorConfig g;
  g.n_sites = 4;
  g.n_objects = 1;
  g.steps = 200;
  g.seed = 77;
  const Trace trace = generate(g);

  repl::OpSystem::Config inc_cfg;
  inc_cfg.n_sites = g.n_sites;
  inc_cfg.use_incremental = true;
  repl::OpSystem::Config full_cfg = inc_cfg;
  full_cfg.use_incremental = false;

  repl::OpSystem inc(inc_cfg), full(full_cfg);
  run_op(inc, trace);
  run_op(full, trace);
  EXPECT_TRUE(inc.replicas_consistent(ObjectId{0}));
  EXPECT_TRUE(full.replicas_consistent(ObjectId{0}));
  // Same converged graph on representative sites.
  for (std::uint32_t s = 0; s < g.n_sites; ++s) {
    const SiteId site{s};
    if (inc.has_replica(site, ObjectId{0}) && full.has_replica(site, ObjectId{0})) {
      EXPECT_EQ(inc.materialize(site, ObjectId{0}), full.materialize(site, ObjectId{0}));
    }
  }
  EXPECT_LE(inc.totals().nodes_sent, full.totals().nodes_sent);
}

TEST(Integration, GeneratedTracesAreDeterministic) {
  GeneratorConfig g;
  g.seed = 5;
  g.steps = 100;
  const Trace t1 = generate(g);
  const Trace t2 = generate(g);
  ASSERT_EQ(t1.events.size(), t2.events.size());
  for (std::size_t i = 0; i < t1.events.size(); ++i) {
    EXPECT_EQ(t1.events[i].site, t2.events[i].site);
    EXPECT_EQ(static_cast<int>(t1.events[i].type), static_cast<int>(t2.events[i].type));
  }
}

TEST(Integration, TopologiesProduceValidTraces) {
  for (auto topo : {Topology::kRandomGossip, Topology::kRing, Topology::kStar,
                    Topology::kClustered}) {
    GeneratorConfig g;
    g.n_sites = 9;
    g.topology = topo;
    g.steps = 200;
    g.seed = 13;
    const Trace t = generate(g);
    for (const Event& ev : t.events) {
      EXPECT_LT(ev.site.value, g.n_sites);
      if (ev.type == Event::Type::kSync) {
        EXPECT_LT(ev.peer.value, g.n_sites);
        EXPECT_NE(ev.peer, ev.site);
      }
    }
  }
}

}  // namespace
}  // namespace optrep::wl
