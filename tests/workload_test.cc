#include <gtest/gtest.h>

#include "workload/trace.h"

namespace optrep::wl {
namespace {

TEST(Generator, CreatesEveryObjectExactlyOnce) {
  GeneratorConfig g;
  g.n_sites = 5;
  g.n_objects = 7;
  g.steps = 100;
  g.seed = 3;
  const Trace t = generate(g);
  std::vector<int> creates(g.n_objects, 0);
  for (const Event& ev : t.events) {
    if (ev.type == Event::Type::kCreate) ++creates[ev.obj.value];
  }
  for (int c : creates) EXPECT_EQ(c, 1);
  // Creations come first, on deterministic home sites.
  for (std::uint32_t o = 0; o < g.n_objects; ++o) {
    EXPECT_EQ(static_cast<int>(t.events[o].type), static_cast<int>(Event::Type::kCreate));
    EXPECT_EQ(t.events[o].site.value, o % g.n_sites);
  }
}

TEST(Generator, UpdateProbabilityShapesMix) {
  GeneratorConfig g;
  g.n_sites = 6;
  g.steps = 4000;
  g.seed = 9;
  g.update_prob = 0.8;
  const Trace hi = generate(g);
  g.update_prob = 0.2;
  g.seed = 9;
  const Trace lo = generate(g);
  auto count_updates = [](const Trace& t) {
    std::size_t u = 0;
    for (const Event& ev : t.events) u += ev.type == Event::Type::kUpdate;
    return u;
  };
  EXPECT_NEAR(static_cast<double>(count_updates(hi)) / g.steps, 0.8, 0.05);
  EXPECT_NEAR(static_cast<double>(count_updates(lo)) / g.steps, 0.2, 0.05);
}

TEST(Generator, RingTopologySyncsNeighboursOnly) {
  GeneratorConfig g;
  g.n_sites = 10;
  g.steps = 1000;
  g.topology = Topology::kRing;
  g.seed = 4;
  for (const Event& ev : generate(g).events) {
    if (ev.type != Event::Type::kSync) continue;
    const auto d = (ev.site.value + g.n_sites - ev.peer.value) % g.n_sites;
    EXPECT_TRUE(d == 1 || d == g.n_sites - 1) << ev.site.value << " " << ev.peer.value;
  }
}

TEST(Generator, StarTopologyAlwaysInvolvesHub) {
  GeneratorConfig g;
  g.n_sites = 8;
  g.steps = 500;
  g.topology = Topology::kStar;
  g.seed = 6;
  for (const Event& ev : generate(g).events) {
    if (ev.type != Event::Type::kSync) continue;
    EXPECT_TRUE(ev.site.value == 0 || ev.peer.value == 0);
  }
}

TEST(Generator, ClusteredTopologyMostlyIntraCluster) {
  GeneratorConfig g;
  g.n_sites = 16;
  g.cluster_size = 4;
  g.bridge_prob = 0.1;
  g.steps = 4000;
  g.update_prob = 0.0;  // all syncs
  g.topology = Topology::kClustered;
  g.seed = 12;
  std::size_t intra = 0, inter = 0, syncs = 0;
  for (const Event& ev : generate(g).events) {
    if (ev.type != Event::Type::kSync) continue;
    ++syncs;
    (ev.site.value / 4 == ev.peer.value / 4 ? intra : inter) += 1;
  }
  EXPECT_NEAR(static_cast<double>(inter) / static_cast<double>(syncs), 0.1, 0.03);
  EXPECT_GT(intra, inter);
}

TEST(Generator, LocalitySkewsUpdatersToHotSites) {
  GeneratorConfig g;
  g.n_sites = 16;
  g.steps = 4000;
  g.update_prob = 1.0;
  g.locality = 0.75;
  g.hot_sites = 2;
  g.seed = 8;
  std::size_t hot = 0, updates = 0;
  for (const Event& ev : generate(g).events) {
    if (ev.type != Event::Type::kUpdate) continue;
    ++updates;
    hot += ev.site.value < 2;
  }
  // 75% land on the hot pair plus the uniform tail's share.
  EXPECT_GT(static_cast<double>(hot) / static_cast<double>(updates), 0.7);
}

TEST(Scenarios, HaveDocumentedShapes) {
  const Trace log = append_only_log(6, 300, 1);
  EXPECT_EQ(log.n_objects, 1u);
  const Trace dtn = dtn_store(10, 9, 300, 1);
  EXPECT_EQ(dtn.n_objects, 9u);
  EXPECT_EQ(dtn.n_sites, 10u);
  const Trace collab = collaboration(12, 300, 1);
  EXPECT_EQ(collab.n_sites, 12u);
}

TEST(Driver, SkipsUpdatesWhenNoHostReachable) {
  // A trace whose first post-create events hit sites without replicas and
  // whose object creator is the only host: the driver must bootstrap
  // replicas by syncing from the creator, not crash.
  Trace t;
  t.n_sites = 3;
  t.n_objects = 1;
  t.events.push_back(Event{Event::Type::kCreate, SiteId{0}, SiteId{}, ObjectId{0}});
  t.events.push_back(Event{Event::Type::kUpdate, SiteId{2}, SiteId{}, ObjectId{0}});
  t.events.push_back(Event{Event::Type::kSync, SiteId{1}, SiteId{2}, ObjectId{0}});

  repl::StateSystem::Config cfg;
  cfg.n_sites = 3;
  cfg.kind = vv::VectorKind::kSrv;
  cfg.policy = repl::ResolutionPolicy::kAutomatic;
  cfg.cost = CostModel{.n = 3, .m = 16};
  repl::StateSystem sys(cfg);
  const RunStats stats = run_state(sys, t);
  EXPECT_EQ(stats.updates, 2u);  // create + the bootstrapped update
  EXPECT_TRUE(sys.has_replica(SiteId{2}, ObjectId{0}));
  EXPECT_TRUE(stats.eventually_consistent);
}

TEST(Driver, ManualPolicySkipsConflictedReplicas) {
  repl::StateSystem::Config cfg;
  cfg.n_sites = 4;
  cfg.kind = vv::VectorKind::kBrv;
  cfg.policy = repl::ResolutionPolicy::kManual;
  cfg.cost = CostModel{.n = 4, .m = 1 << 10};
  repl::StateSystem sys(cfg);
  const Trace t = append_only_log(4, 200, 17);
  const RunStats stats = run_state(sys, t, /*drive_to_consistency=*/false);
  // Conflicts freeze replicas; the driver records skips instead of crashing.
  if (sys.totals().conflicts_detected > 0) {
    EXPECT_GT(stats.skipped, 0u);
  }
}

TEST(Driver, OpDriverMatchesStateDriverEventHandling) {
  GeneratorConfig g;
  g.n_sites = 4;
  g.n_objects = 2;
  g.steps = 200;
  g.seed = 31;
  const Trace t = generate(g);
  repl::OpSystem::Config cfg;
  cfg.n_sites = g.n_sites;
  cfg.cost = CostModel{.n = 4, .m = 1 << 16};
  repl::OpSystem sys(cfg);
  const RunStats stats = run_op(sys, t);
  EXPECT_TRUE(stats.eventually_consistent);
  EXPECT_GT(stats.updates, 0u);
}

}  // namespace
}  // namespace optrep::wl
