# Causal-dump thread-count determinism gate: the same optrep_cli sweep with
# --threads=1 and --threads=8 must write byte-identical optrep.causal/v1
# documents. Per-run trace ids derive from rt::task_seed(seed, k) and the
# sweep document is assembled from per-run fragments in config order after the
# join, so any divergence is a scheduling leak into the causal path.
#
# Invoked from ctest:  cmake -DCLI=<optrep_cli binary> -DOUT=<scratch dir>
#                            -P causal_determinism.cmake
if(NOT DEFINED CLI OR NOT DEFINED OUT)
  message(FATAL_ERROR "pass -DCLI=<binary> and -DOUT=<scratch dir>")
endif()

file(REMOVE_RECURSE ${OUT})
file(MAKE_DIRECTORY ${OUT})
foreach(threads 1 8)
  execute_process(COMMAND ${CLI} sweep --seeds=8 --sites=6 --steps=200
                          --loss=0.02 --causal-out=${OUT}/c${threads}.json
                          --threads=${threads}
                  RESULT_VARIABLE rc
                  OUTPUT_QUIET ERROR_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${CLI} sweep failed with --threads=${threads}: ${rc}")
  endif()
  if(NOT EXISTS ${OUT}/c${threads}.json)
    message(FATAL_ERROR "sweep with --threads=${threads} wrote no causal dump")
  endif()
endforeach()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${OUT}/c1.json ${OUT}/c8.json
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "causal dump differs between --threads=1 and --threads=8")
endif()
message(STATUS "causal dump byte-identical across thread counts")
