# Thread-count determinism gate: run one bench with --threads=1 and
# --threads=8 in separate scratch directories and require every emitted
# BENCH_*.json to be byte-identical. The sweep runtime (src/rt/) promises
# results in config order with per-task seeds, so any divergence here is a
# scheduling leak.
#
# Invoked from ctest:  cmake -DBENCH=<bench binary> -DOUT=<scratch dir>
#                            -P bench_determinism.cmake
if(NOT DEFINED BENCH OR NOT DEFINED OUT)
  message(FATAL_ERROR "pass -DBENCH=<binary> and -DOUT=<scratch dir>")
endif()

file(REMOVE_RECURSE ${OUT})
foreach(threads 1 8)
  file(MAKE_DIRECTORY ${OUT}/t${threads})
  execute_process(COMMAND ${BENCH} --smoke --threads=${threads} --benchmark_filter=^$
                  WORKING_DIRECTORY ${OUT}/t${threads}
                  RESULT_VARIABLE rc
                  OUTPUT_QUIET ERROR_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${BENCH} failed with --threads=${threads}: ${rc}")
  endif()
endforeach()

file(GLOB rows RELATIVE ${OUT}/t1 ${OUT}/t1/BENCH_*.json)
if(rows STREQUAL "")
  message(FATAL_ERROR "${BENCH} wrote no BENCH_*.json rows")
endif()
foreach(f ${rows})
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT}/t1/${f} ${OUT}/t8/${f}
                  RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR "${f} differs between --threads=1 and --threads=8")
  endif()
endforeach()
message(STATUS "byte-identical across thread counts: ${rows}")
