#include <gtest/gtest.h>

#include "common/rng.h"
#include "vv/codec.h"
#include "vv/session.h"

namespace optrep::vv {
namespace {

const SiteId A{0}, B{1};

TEST(BitWriter, PacksMsbFirst) {
  BitWriter w;
  w.put(0b101, 3);
  w.put(0b01, 2);
  EXPECT_EQ(w.bit_size(), 5u);
  ASSERT_EQ(w.bytes().size(), 1u);
  EXPECT_EQ(w.bytes()[0], 0b10101000);
}

TEST(BitWriter, CrossesByteBoundaries) {
  BitWriter w;
  w.put(0xABCD, 16);
  w.put(1, 1);
  EXPECT_EQ(w.bit_size(), 17u);
  ASSERT_EQ(w.bytes().size(), 3u);
  EXPECT_EQ(w.bytes()[0], 0xAB);
  EXPECT_EQ(w.bytes()[1], 0xCD);
  EXPECT_EQ(w.bytes()[2], 0x80);
}

TEST(BitRoundTrip, RandomFields) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    BitWriter w;
    std::vector<std::pair<std::uint64_t, std::uint32_t>> fields;
    for (int f = 0; f < 20; ++f) {
      const auto bits = static_cast<std::uint32_t>(rng.range(1, 63));
      const std::uint64_t value = rng.next() & ((std::uint64_t{1} << bits) - 1);
      fields.emplace_back(value, bits);
      w.put(value, bits);
    }
    BitReader r(w.bytes());
    for (const auto& [value, bits] : fields) {
      EXPECT_EQ(r.get(bits), value);
    }
  }
}

TEST(MsgCodec, SizesMatchCostModelExactly) {
  // The codec *is* the §3.3 cost model: encoded size == msg_model_bits.
  const CostModel cm{.n = 64, .m = 1 << 12};
  for (auto kind : {VectorKind::kBrv, VectorKind::kCrv, VectorKind::kSrv}) {
    std::vector<std::pair<VvMsg, Direction>> msgs = {
        {VvMsg{.kind = VvMsg::Kind::kElem, .site = SiteId{17}, .value = 93,
               .conflict = true, .segment = true},
         Direction::kForward},
        {VvMsg{.kind = VvMsg::Kind::kHalt}, Direction::kForward},
        {VvMsg{.kind = VvMsg::Kind::kHalt}, Direction::kReverse},
        {VvMsg{.kind = VvMsg::Kind::kSkipped}, Direction::kForward},
        {VvMsg{.kind = VvMsg::Kind::kSkip, .arg = 12}, Direction::kReverse},
        {VvMsg{.kind = VvMsg::Kind::kAck}, Direction::kReverse},
    };
    for (const auto& [msg, dir] : msgs) {
      BitWriter w;
      encode_msg(w, cm, kind, dir, msg);
      EXPECT_EQ(w.bit_size(), msg_model_bits(cm, kind, msg))
          << to_string(kind) << " " << msg.to_string();
    }
  }
}

TEST(MsgCodec, RoundTripsAllKinds) {
  const CostModel cm{.n = 256, .m = 1 << 16};
  Rng rng(11);
  for (auto kind : {VectorKind::kBrv, VectorKind::kCrv, VectorKind::kSrv}) {
    for (int trial = 0; trial < 100; ++trial) {
      VvMsg msg;
      msg.kind = VvMsg::Kind::kElem;
      msg.site = SiteId{static_cast<std::uint32_t>(rng.below(256))};
      msg.value = rng.below(1 << 16);
      msg.conflict = rng.chance(0.5);
      msg.segment = rng.chance(0.5);
      BitWriter w;
      encode_msg(w, cm, kind, Direction::kForward, msg);
      BitReader r(w.bytes());
      const VvMsg got = decode_msg(r, cm, kind, Direction::kForward);
      EXPECT_EQ(got.site, msg.site);
      EXPECT_EQ(got.value, msg.value);
      if (kind != VectorKind::kBrv) {
        EXPECT_EQ(got.conflict, msg.conflict);
      }
      if (kind == VectorKind::kSrv) {
        EXPECT_EQ(got.segment, msg.segment);
      }
    }
  }
  // Control messages.
  const CostModel cm2{.n = 64, .m = 64};
  for (auto [kind_in, dir] :
       std::vector<std::pair<VvMsg::Kind, Direction>>{
           {VvMsg::Kind::kHalt, Direction::kForward},
           {VvMsg::Kind::kSkipped, Direction::kForward},
           {VvMsg::Kind::kHalt, Direction::kReverse},
           {VvMsg::Kind::kAck, Direction::kReverse}}) {
    BitWriter w;
    encode_msg(w, cm2, VectorKind::kSrv, dir, VvMsg{.kind = kind_in});
    BitReader r(w.bytes());
    EXPECT_EQ(decode_msg(r, cm2, VectorKind::kSrv, dir).kind, kind_in);
  }
  {
    BitWriter w;
    encode_msg(w, cm2, VectorKind::kSrv, Direction::kReverse,
               VvMsg{.kind = VvMsg::Kind::kSkip, .arg = 33});
    BitReader r(w.bytes());
    const VvMsg got = decode_msg(r, cm2, VectorKind::kSrv, Direction::kReverse);
    EXPECT_EQ(got.kind, VvMsg::Kind::kSkip);
    EXPECT_EQ(got.arg, 33u);
  }
}

TEST(MsgCodec, StreamOfMessagesDecodesInOrder) {
  // A whole sender stream (elements + SKIPPED + HALT) in one buffer.
  const CostModel cm{.n = 16, .m = 1 << 8};
  BitWriter w;
  std::vector<VvMsg> stream;
  for (std::uint32_t i = 0; i < 5; ++i) {
    VvMsg m{.kind = VvMsg::Kind::kElem, .site = SiteId{i}, .value = i + 1,
            .conflict = (i % 2) != 0, .segment = i == 2};
    stream.push_back(m);
    encode_msg(w, cm, VectorKind::kSrv, Direction::kForward, m);
  }
  stream.push_back(VvMsg{.kind = VvMsg::Kind::kSkipped});
  encode_msg(w, cm, VectorKind::kSrv, Direction::kForward, stream.back());
  stream.push_back(VvMsg{.kind = VvMsg::Kind::kHalt});
  encode_msg(w, cm, VectorKind::kSrv, Direction::kForward, stream.back());

  BitReader r(w.bytes());
  for (const VvMsg& want : stream) {
    const VvMsg got = decode_msg(r, cm, VectorKind::kSrv, Direction::kForward);
    EXPECT_EQ(static_cast<int>(got.kind), static_cast<int>(want.kind));
    if (want.kind == VvMsg::Kind::kElem) {
      EXPECT_EQ(got.site, want.site);
      EXPECT_EQ(got.value, want.value);
      EXPECT_EQ(got.conflict, want.conflict);
      EXPECT_EQ(got.segment, want.segment);
    }
  }
  EXPECT_EQ(r.bits_read(), w.bit_size());
}

TEST(VectorSnapshot, RoundTripPreservesEverything) {
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    RotatingVector v;
    for (int i = 0; i < 30; ++i) {
      v.record_update(SiteId{static_cast<std::uint32_t>(rng.below(12))});
    }
    if (!v.empty()) {
      v.set_conflict_bit(v.front()->site, true);
      v.set_segment_bit(v.back()->site, true);
    }
    const RotatingVector back = decode_vector(encode_vector(v));
    EXPECT_TRUE(back.identical_to(v)) << v.to_string() << " vs " << back.to_string();
  }
}

TEST(VectorSnapshot, EmptyVector) {
  RotatingVector v;
  const RotatingVector back = decode_vector(encode_vector(v));
  EXPECT_TRUE(back.empty());
}

TEST(BitReaderDeath, ReadPastEndOfBufferIsRejected) {
  BitWriter w;
  w.put(0b1011, 4);
  BitReader r(w.bytes());  // one byte buffered: 8 readable bits
  EXPECT_EQ(r.get(4), 0b1011u);
  EXPECT_EQ(r.get(4), 0u);  // padding bits of the final byte
  EXPECT_DEATH(r.get(1), "read past end of buffer");

  BitReader r2(w.bytes());
  EXPECT_DEATH(r2.get(9), "read past end of buffer");  // overshoots upfront

  const std::vector<std::uint8_t> empty;
  BitReader r3(empty);
  EXPECT_DEATH(r3.get(1), "read past end of buffer");
}

}  // namespace
}  // namespace optrep::vv
