// optrep::prof — RAII span timers, ring storage, metrics sink, and the
// Chrome-trace (optrep.profile/v1) exporter.
#include <gtest/gtest.h>

#include <string>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/prof.h"

namespace optrep::prof {
namespace {

TEST(Profiler, SpansRecordWithNestingDepthInnerClosesFirst) {
  Profiler p(/*capacity=*/16);
  {
    Span outer(&p, "outer");
    {
      Span inner(&p, "inner");
    }
  }
  ASSERT_EQ(p.size(), 2u);
  // RAII closes inner-first, so the inner span is the older record.
  EXPECT_STREQ(p.span(0).name, "inner");
  EXPECT_STREQ(p.span(1).name, "outer");
  EXPECT_EQ(p.span(1).depth + 1, p.span(0).depth);
  EXPECT_EQ(p.span(0).tid, p.span(1).tid);
  // The outer span brackets the inner one in time.
  EXPECT_LE(p.span(1).start_ns, p.span(0).start_ns);
  EXPECT_GE(p.span(1).start_ns + p.span(1).dur_ns,
            p.span(0).start_ns + p.span(0).dur_ns);
}

TEST(Profiler, RingOverflowDropsOldestAndWrapBoundaryIsExact) {
  Profiler p(/*capacity=*/4);
  const char* names[] = {"s0", "s1", "s2", "s3", "s4", "s5"};
  for (int i = 0; i < 4; ++i) Span s(&p, names[i]);
  // Exactly at capacity: full, nothing dropped yet.
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(p.total_recorded(), 4u);
  EXPECT_EQ(p.dropped(), 0u);

  for (int i = 4; i < 6; ++i) Span s(&p, names[i]);
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(p.total_recorded(), 6u);
  EXPECT_EQ(p.dropped(), 2u);
  // The two oldest records were evicted: s2..s5 survive, oldest first.
  for (std::size_t i = 0; i < p.size(); ++i) EXPECT_STREQ(p.span(i).name, names[i + 2]);

  p.clear();
  EXPECT_EQ(p.size(), 0u);
  EXPECT_EQ(p.total_recorded(), 0u);
  EXPECT_EQ(p.dropped(), 0u);
}

TEST(Profiler, SinkPublishesWallNsHistogramsPerSpanName) {
  Profiler p;
  obs::Registry reg;
  p.set_sink(&reg);
  for (int i = 0; i < 3; ++i) Span s(&p, "work.step");
  { Span s(&p, "work.flush"); }
  EXPECT_EQ(reg.histogram("work.step.wall_ns").count(), 3u);
  EXPECT_EQ(reg.histogram("work.flush.wall_ns").count(), 1u);

  // Detaching stops publication; the ring keeps recording.
  p.set_sink(nullptr);
  { Span s(&p, "work.step"); }
  EXPECT_EQ(reg.histogram("work.step.wall_ns").count(), 3u);
  EXPECT_EQ(p.total_recorded(), 5u);
}

TEST(Profiler, GlobalInstallRoutesMacroSpansAndUninstallStops) {
  ASSERT_EQ(global_profiler(), nullptr);
  Profiler p;
  set_global_profiler(&p);
  { OPTREP_SPAN("macro.scope"); }
  set_global_profiler(nullptr);
  { OPTREP_SPAN("macro.scope"); }  // no profiler: must be a no-op
  ASSERT_EQ(p.total_recorded(), 1u);
  EXPECT_STREQ(p.span(0).name, "macro.scope");
}

TEST(ProfileJson, ExportIsValidChromeTraceWithSchemaTag) {
  Profiler p(/*capacity=*/8);
  {
    Span outer(&p, "vv.compare");
    { Span inner(&p, "sim.dispatch"); }
  }
  const std::string json = profile_to_json(p);

  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(json_parse(json, &doc, &err)) << err;
  const obs::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->items.size(), 2u);
  for (const auto& ev : events->items) {
    EXPECT_EQ(ev.find("ph")->string, "X");
    EXPECT_EQ(ev.find("cat")->string, "optrep");
    EXPECT_TRUE(ev.find("ts")->is_number());
    EXPECT_TRUE(ev.find("dur")->is_number());
    EXPECT_TRUE(ev.find("args")->find("depth")->is_number());
  }
  EXPECT_EQ(events->items[0].find("name")->string, "sim.dispatch");
  EXPECT_EQ(events->items[1].find("name")->string, "vv.compare");

  const obs::JsonValue* other = doc.find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->find("schema")->string, "optrep.profile/v1");
  EXPECT_EQ(other->find("total_recorded")->number, 2.0);
  EXPECT_EQ(other->find("dropped")->number, 0.0);
  EXPECT_EQ(doc.find("displayTimeUnit")->string, "ns");
}

TEST(ProfileJson, EmptyProfilerExportsEmptyEventArray) {
  Profiler p;
  obs::JsonValue doc;
  ASSERT_TRUE(json_parse(profile_to_json(p), &doc));
  ASSERT_TRUE(doc.find("traceEvents")->is_array());
  EXPECT_TRUE(doc.find("traceEvents")->items.empty());
}

}  // namespace
}  // namespace optrep::prof
