// Pruning × sessions: site retirement interleaved with multi-round
// synchronization. The §7 membership manager must be able to retire a site
// *between* sync rounds — after the fleet converged on its final value —
// prune it from every replica, and leave all later rounds (fresh updates,
// reconciliation, further syncs) fully functional for BRV, CRV and SRV.
#include <gtest/gtest.h>

#include <vector>

#include "vv/compare.h"
#include "vv/pruning.h"
#include "vv/session.h"

namespace optrep::vv {
namespace {

SyncReport sync_pair(RotatingVector& a, const RotatingVector& b, VectorKind kind) {
  const Ordering rel = compare_full(a, b);
  if (rel == Ordering::kEqual || rel == Ordering::kAfter) return {};
  // BRV cannot reconcile concurrent replicas (§3.1); callers below only
  // create concurrency for CRV/SRV.
  EXPECT_FALSE(kind == VectorKind::kBrv && rel == Ordering::kConcurrent);
  SyncOptions opt;
  opt.kind = kind;
  opt.cost = CostModel{.n = 8, .m = 1 << 16};
  opt.net = {.latency_s = 0.001, .bandwidth_bits_per_s = 5000.0};
  opt.known_relation = rel;
  sim::EventLoop loop;
  return sync_rotating(loop, a, b, opt);
}

// Pairwise anti-entropy until every replica holds identical values.
void converge(std::vector<RotatingVector>& reps, VectorKind kind) {
  for (int round = 0; round < 20; ++round) {
    for (std::size_t i = 0; i < reps.size(); ++i)
      for (std::size_t j = 0; j < reps.size(); ++j)
        if (i != j) sync_pair(reps[i], reps[j], kind);
    bool all_equal = true;
    for (std::size_t i = 1; i < reps.size(); ++i)
      all_equal &= compare_full(reps[0], reps[i]) == Ordering::kEqual;
    if (all_equal) return;
  }
  FAIL() << "replicas did not converge within the round budget";
}

TEST(PruningSessions, RetirementBetweenSyncRoundsAllKinds) {
  const SiteId A{0}, B{1}, C{2}, D{3};
  for (auto kind : {VectorKind::kBrv, VectorKind::kCrv, VectorKind::kSrv}) {
    const bool concurrent_ok = kind != VectorKind::kBrv;
    std::vector<RotatingVector> reps(4);

    // Round 1: everyone (including the soon-retired D) updates. For BRV the
    // updates flow through replica 0 so no pair ever goes concurrent.
    if (concurrent_ok) {
      reps[0].record_update(A);
      reps[1].record_update(B);
      reps[2].record_update(C);
      reps[3].record_update(D);
      reps[3].record_update(D);
    } else {
      reps[0].record_update(A);
      reps[0].record_update(B);
      reps[0].record_update(C);
      reps[0].record_update(D);
      reps[0].record_update(D);
    }
    converge(reps, kind);

    // D retires: once every live replica reports having absorbed its final
    // value, the element is provably stable and prunable everywhere.
    MembershipManager mm;
    mm.retire(D);
    for (const auto& r : reps) mm.observe_replica(r.to_version_vector());
    ASSERT_EQ(mm.prunable().size(), 1u);
    for (auto& r : reps) {
      EXPECT_EQ(mm.prune(r), 1u);
      EXPECT_FALSE(r.contains(D));
    }
    // Pruning a stable element changes no pairwise relation.
    for (std::size_t i = 1; i < reps.size(); ++i)
      EXPECT_EQ(compare_full(reps[0], reps[i]), Ordering::kEqual);

    // Round 2: fresh updates on the surviving sites, then full convergence
    // through pruned vectors. The retired element must not resurface.
    if (concurrent_ok) {
      reps[0].record_update(A);
      reps[1].record_update(B);
      reps[2].record_update(C);
    } else {
      reps[1].record_update(A);
    }
    converge(reps, kind);
    for (const auto& r : reps) EXPECT_FALSE(r.contains(D));

    // Round 3: retire another site (C) mid-stream and repeat, proving the
    // manager composes across epochs on already-pruned vectors.
    mm.retire(C);
    for (const auto& r : reps) mm.observe_replica(r.to_version_vector());
    for (auto& r : reps) mm.prune(r);
    for (const auto& r : reps) EXPECT_FALSE(r.contains(C));
    if (concurrent_ok) {
      reps[0].record_update(A);
      reps[1].record_update(B);
    } else {
      reps[2].record_update(B);
    }
    converge(reps, kind);
  }
}

// Pruned vectors through the lossy-network recovery path: retirement and
// fault tolerance compose. (The fault model never resurrects a pruned
// element — faulted attempts restart from the receiver's pruned state.)
TEST(PruningSessions, PrunedVectorsSyncUnderFaults) {
  const SiteId A{0}, B{1}, D{3};
  RotatingVector a, b;
  a.record_update(A);
  a.record_update(D);
  b = a;
  b.record_update(B);
  b.record_update(B);

  MembershipManager mm;
  mm.retire(D);
  mm.observe_replica(a.to_version_vector());
  mm.observe_replica(b.to_version_vector());
  ASSERT_EQ(mm.prune(a), 1u);
  ASSERT_EQ(mm.prune(b), 1u);

  SyncOptions opt;
  opt.kind = VectorKind::kSrv;
  opt.cost = CostModel{.n = 4, .m = 1 << 16};
  opt.net = {.latency_s = 0.001, .bandwidth_bits_per_s = 2000.0};
  opt.known_relation = Ordering::kBefore;
  opt.net.faults.drop = 0.2;
  opt.net.faults.duplicate = 0.1;
  opt.net.faults.seed = 11;
  opt.retry.base_backoff_s = 0.001;
  sim::EventLoop loop;
  const SyncReport r = sync_with_recovery(loop, a, b, opt);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(compare_full(a, b), Ordering::kEqual);
  EXPECT_FALSE(a.contains(D));
}

}  // namespace
}  // namespace optrep::vv
