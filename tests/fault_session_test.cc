// End-to-end fault injection through the simulated sessions: every
// sync_with_recovery call under a lossy network must terminate, keep its
// retries within the configured budget, and leave the receiver either
// exactly converged (element-wise maximum, Theorem 3.1) or — when the
// budget runs out — exactly as it started.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "vv/compare.h"
#include "vv/session.h"

namespace optrep::vv {
namespace {

struct VecPair {
  RotatingVector a;
  RotatingVector b;
};

// §2.1-conformant pair from a gossip world: each replica increments only its
// own site's counter and may adopt another replica's full state when that
// state covers its own, so every drawn vector is reachable by a real history.
// The rotation-order invariant the receiver-halt rule depends on only holds
// for such states — independently randomized vectors can coincidentally agree
// on an element's value without sharing the history behind it.
std::optional<VecPair> try_world_pair(Rng& rng, std::uint32_t n_sites,
                                      bool want_concurrent) {
  std::vector<RotatingVector> w(n_sites);
  const std::uint64_t steps = rng.range(20, 80);
  for (std::uint64_t i = 0; i < steps; ++i) {
    const auto r = static_cast<std::uint32_t>(rng.range(0, n_sites - 1));
    if (rng.chance(0.55)) {
      w[r].record_update(SiteId{r});
    } else {
      const auto s = static_cast<std::uint32_t>(rng.range(0, n_sites - 1));
      if (s != r && compare_full(w[r], w[s]) == Ordering::kBefore) w[r] = w[s];
    }
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> cands;
  for (std::uint32_t i = 0; i < n_sites; ++i)
    for (std::uint32_t j = 0; j < n_sites; ++j) {
      if (i == j) continue;
      const Ordering rel = compare_full(w[i], w[j]);
      if (want_concurrent ? rel == Ordering::kConcurrent : rel == Ordering::kBefore)
        cands.push_back({i, j});
    }
  if (cands.empty()) return std::nullopt;
  const auto [i, j] = cands[rng.range(0, cands.size() - 1)];
  return VecPair{w[i], w[j]};
}

VecPair make_pair_(Rng& rng, std::uint32_t n_sites, bool want_concurrent) {
  for (;;) {
    if (auto p = try_world_pair(rng, n_sites, want_concurrent)) return *p;
  }
}

std::string digest(const RotatingVector& v) {
  std::string out;
  for (auto it = v.begin(); it != v.end(); ++it) {
    out += std::to_string(it->site.value) + ":" + std::to_string(it->value) +
           (it->conflict ? "c" : "") + (it->segment ? "s" : "") + " ";
  }
  return out;
}

bool covers_max(const RotatingVector& a, const RotatingVector& orig,
                const RotatingVector& b) {
  for (auto it = b.begin(); it != b.end(); ++it)
    if (a.value(it->site) != std::max(orig.value(it->site), it->value)) return false;
  for (auto it = orig.begin(); it != orig.end(); ++it)
    if (a.value(it->site) < it->value) return false;
  return true;
}

SyncOptions base_options(VectorKind kind, TransferMode mode) {
  SyncOptions opt;
  opt.kind = kind;
  opt.mode = mode;
  opt.cost = CostModel{.n = 6, .m = 1 << 16};
  opt.net = {.latency_s = 0.002, .bandwidth_bits_per_s = 2000.0};
  return opt;
}

struct FaultMix {
  const char* name;
  double drop, dup, reorder, corrupt;
};

constexpr FaultMix kMixes[] = {
    {"drop", 0.25, 0, 0, 0},
    {"dup", 0, 0.3, 0, 0},
    {"reorder", 0, 0, 0.3, 0},
    {"corrupt", 0, 0, 0, 0.25},
    {"all", 0.1, 0.1, 0.1, 0.1},
    // Near-blackhole: almost nothing gets through, so the retry budget is
    // exhausted and the restore path actually runs.
    {"blackhole", 0.9, 0, 0, 0.5},
};

// The convergence/atomicity contract, swept over kinds × modes × fault
// classes × seeds. Heavy rates on purpose: failed attempts and exhausted
// budgets must be reachable, and both outcomes are asserted exactly.
TEST(FaultSessions, EverySessionTerminatesConvergedOrRestored) {
  Rng rng(4242);
  std::uint64_t converged_runs = 0, failed_runs = 0, total_faults = 0;
  for (const FaultMix& mix : kMixes) {
    for (auto kind : {VectorKind::kBrv, VectorKind::kCrv, VectorKind::kSrv}) {
      for (auto mode : {TransferMode::kPipelined, TransferMode::kStopAndWait}) {
        for (int trial = 0; trial < 25; ++trial) {
          const bool concurrent = kind != VectorKind::kBrv && rng.chance(0.5);
          VecPair p = make_pair_(rng, 6, concurrent);
          const Ordering rel = compare_full(p.a, p.b);
          const RotatingVector original = p.a;

          SyncOptions opt = base_options(kind, mode);
          opt.known_relation = rel;
          opt.net.faults.drop = mix.drop;
          opt.net.faults.duplicate = mix.dup;
          opt.net.faults.reorder = mix.reorder;
          opt.net.faults.corrupt = mix.corrupt;
          opt.net.faults.seed = rng.range(1, 1 << 20);
          opt.retry.base_backoff_s = 0.001;  // keep simulated time small

          sim::EventLoop loop;
          const SyncReport r = sync_with_recovery(loop, p.a, p.b, opt);

          EXPECT_LE(r.retries, opt.retry.max_retries) << mix.name;
          EXPECT_EQ(r.attempts, r.retries + 1) << mix.name;
          total_faults += r.total_faults();
          if (r.converged) {
            ++converged_runs;
            EXPECT_TRUE(covers_max(p.a, original, p.b))
                << mix.name << " kind " << (int)kind << " trial " << trial;
            const Ordering after = compare_full(p.a, p.b);
            EXPECT_TRUE(after == Ordering::kEqual || after == Ordering::kAfter);
          } else {
            ++failed_runs;
            // Atomicity: a failed sync is a complete no-op on the receiver.
            EXPECT_EQ(digest(p.a), digest(original)) << mix.name;
          }
          if (r.retries > 0) {
            EXPECT_GT(r.recovery_bits, 0u);
          }
        }
      }
    }
  }
  // The sweep must actually exercise both the fault machinery and both
  // outcomes, or the assertions above are vacuous.
  EXPECT_GT(total_faults, 0u);
  EXPECT_GT(converged_runs, 0u);
  EXPECT_GT(failed_runs, 0u);
}

// Corrupted messages hit the real codec: with corruption enabled, a portion
// of the flips must be caught as typed decode errors (the rest by the
// modeled checksum), and both counters surface in the report.
TEST(FaultSessions, CorruptionIsCountedAndSomeCaughtByTypedDecoders) {
  Rng rng(99);
  std::uint64_t corrupted = 0, decode_errors = 0;
  for (int trial = 0; trial < 40; ++trial) {
    VecPair p = make_pair_(rng, 6, false);
    if (compare_full(p.a, p.b) != Ordering::kBefore) continue;
    SyncOptions opt = base_options(VectorKind::kSrv, TransferMode::kPipelined);
    opt.known_relation = Ordering::kBefore;
    opt.net.faults.corrupt = 0.3;
    opt.net.faults.seed = 1000 + trial;
    opt.retry.base_backoff_s = 0.001;
    sim::EventLoop loop;
    const SyncReport r = sync_with_recovery(loop, p.a, p.b, opt);
    corrupted += r.faults_corrupted;
    decode_errors += r.faults_decode_errors;
  }
  EXPECT_GT(corrupted, 0u);
  EXPECT_GT(decode_errors, 0u);
  EXPECT_LE(decode_errors, corrupted);
}

// Per-attempt fault seeds are independent: a session whose first attempt is
// disrupted converges on a later attempt (the same stream would fail
// forever), and the whole run is reproducible seed-for-seed.
TEST(FaultSessions, RetriesUseIndependentSeedsAndAreDeterministic) {
  auto run = [](std::uint64_t seed) {
    Rng rng(2026);
    VecPair p = make_pair_(rng, 5, false);
    SyncOptions opt = base_options(VectorKind::kCrv, TransferMode::kPipelined);
    opt.known_relation = Ordering::kBefore;
    opt.net.faults.drop = 0.35;
    opt.net.faults.seed = seed;
    opt.retry.base_backoff_s = 0.001;
    sim::EventLoop loop;
    const SyncReport r = sync_with_recovery(loop, p.a, p.b, opt);
    return std::make_pair(r, digest(p.a));
  };
  // Find a seed whose first attempt is disrupted but which converges.
  bool saw_retry_then_converge = false;
  for (std::uint64_t seed = 1; seed <= 60 && !saw_retry_then_converge; ++seed) {
    const auto [r, d] = run(seed);
    if (r.converged && r.retries > 0) {
      saw_retry_then_converge = true;
      const auto [r2, d2] = run(seed);  // bit-for-bit reproducible
      EXPECT_EQ(r2.retries, r.retries);
      EXPECT_EQ(r2.recovery_bits, r.recovery_bits);
      EXPECT_EQ(r2.total_faults(), r.total_faults());
      EXPECT_EQ(d2, d);
    }
  }
  EXPECT_TRUE(saw_retry_then_converge);
}

// The retry budget is a real bound: with a network that drops everything,
// the session gives up after exactly max_retries retries, restores the
// receiver, and reports converged = false.
TEST(FaultSessions, TotalLossExhaustsTheBudgetAndRestores) {
  Rng rng(7);
  VecPair p = make_pair_(rng, 5, false);
  ASSERT_EQ(compare_full(p.a, p.b), Ordering::kBefore);
  const RotatingVector original = p.a;
  SyncOptions opt = base_options(VectorKind::kSrv, TransferMode::kPipelined);
  opt.known_relation = Ordering::kBefore;
  opt.net.faults.drop = 1.0;
  opt.retry.max_retries = 3;
  opt.retry.base_backoff_s = 0.001;
  sim::EventLoop loop;
  const SyncReport r = sync_with_recovery(loop, p.a, p.b, opt);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.retries, 3u);
  EXPECT_EQ(r.attempts, 4u);
  EXPECT_EQ(digest(p.a), digest(original));
}

}  // namespace
}  // namespace optrep::vv
