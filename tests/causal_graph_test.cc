#include <gtest/gtest.h>

#include "graph/causal_graph.h"
#include "graph/dot.h"

namespace optrep::graph {
namespace {

const SiteId A{0}, B{1}, C{2}, E{4}, F{5}, G{6};

UpdateId op(SiteId s, std::uint64_t seq) { return UpdateId{s, seq}; }

// Operation history of Figure 1 read as a causal graph: node k is written
// op(k) here; nodes 1..6 are plain operations, 7 merges 2 and 6.
struct Fig3 {
  // op ids keyed by figure node number.
  UpdateId n1 = op(A, 1), n2 = op(B, 1), n4 = op(E, 1), n5 = op(F, 1), n6 = op(G, 1),
           n7 = op(A, 2);

  CausalGraph site_a;  // nodes 1, 2, 4–7
  CausalGraph site_c;  // nodes 1, 4–6

  Fig3() {
    site_a.create(n1);
    site_a.append(n2);
    site_a.insert_raw(Node{n4, n1});
    site_a.insert_raw(Node{n5, n4});
    site_a.insert_raw(Node{n6, n5});
    site_a.merge(n7, n6);  // lp = old sink (node 2), rp = node 6

    site_c.create(n1);
    site_c.append(n4);
    site_c.append(n5);
    site_c.append(n6);
  }
};

TEST(CausalGraph, CreateAppendMerge) {
  CausalGraph g;
  EXPECT_TRUE(g.empty());
  g.create(op(A, 1));
  EXPECT_EQ(g.source(), op(A, 1));
  EXPECT_EQ(g.sink(), op(A, 1));
  g.append(op(A, 2));
  g.append(op(B, 1));
  EXPECT_EQ(g.sink(), op(B, 1));
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.arc_count(), 2u);
  EXPECT_TRUE(g.validate_closed());
}

TEST(CausalGraph, MergeCreatesDoubleParentNode) {
  Fig3 f;
  const Node* seven = f.site_a.find(f.n7);
  ASSERT_NE(seven, nullptr);
  EXPECT_TRUE(seven->is_merge());
  EXPECT_EQ(seven->lp, f.n2);
  EXPECT_EQ(seven->rp, f.n6);
  EXPECT_EQ(f.site_a.node_count(), 6u);
  EXPECT_EQ(f.site_a.arc_count(), 6u);
  EXPECT_TRUE(f.site_a.validate_closed());
}

TEST(CausalGraph, CompareBySinkContainment) {
  Fig3 f;
  // C's sink (node 6) is in A's graph, A's sink (node 7) is not in C's.
  EXPECT_EQ(f.site_c.compare(f.site_a), vv::Ordering::kBefore);
  EXPECT_EQ(f.site_a.compare(f.site_c), vv::Ordering::kAfter);
  EXPECT_EQ(f.site_a.compare(f.site_a), vv::Ordering::kEqual);
}

TEST(CausalGraph, ConcurrentSinks) {
  Fig3 f;
  CausalGraph d;  // a third site that only saw node 1 and updated
  d.create(f.n1);
  d.append(op(C, 1));
  EXPECT_EQ(d.compare(f.site_a), vv::Ordering::kConcurrent);
  EXPECT_EQ(f.site_a.compare(d), vv::Ordering::kConcurrent);
}

TEST(CausalGraph, EmptyGraphPrecedesAll) {
  CausalGraph a, b;
  EXPECT_EQ(a.compare(b), vv::Ordering::kEqual);
  b.create(op(A, 1));
  EXPECT_EQ(a.compare(b), vv::Ordering::kBefore);
  EXPECT_EQ(b.compare(a), vv::Ordering::kAfter);
}

TEST(CausalGraph, IsAncestor) {
  Fig3 f;
  EXPECT_TRUE(f.site_a.is_ancestor(f.n1, f.n7));
  EXPECT_TRUE(f.site_a.is_ancestor(f.n6, f.n7));
  EXPECT_TRUE(f.site_a.is_ancestor(f.n2, f.n7));
  EXPECT_FALSE(f.site_a.is_ancestor(f.n7, f.n2));
  EXPECT_FALSE(f.site_a.is_ancestor(f.n2, f.n6));
}

TEST(CausalGraph, ValidateClosedDetectsDanglingParent) {
  CausalGraph g;
  g.create(op(A, 1));
  g.insert_raw(Node{op(B, 2), op(B, 1)});  // parent B:1 missing
  EXPECT_FALSE(g.validate_closed());
}

TEST(CausalGraph, ValidateClosedDetectsNonDominatingSink) {
  CausalGraph g;
  g.create(op(A, 1));
  g.append(op(A, 2));
  // A stray branch not reachable from the sink.
  g.insert_raw(Node{op(B, 1), op(A, 1)});
  EXPECT_FALSE(g.validate_closed());
}

TEST(CausalGraph, InsertRawIsIdempotent) {
  CausalGraph g;
  g.create(op(A, 1));
  g.insert_raw(Node{op(A, 1)});
  EXPECT_EQ(g.node_count(), 1u);
  EXPECT_EQ(g.arc_count(), 0u);
}

TEST(CausalGraph, OpBytesAccumulate) {
  CausalGraph g;
  g.create(op(A, 1), 100);
  g.append(op(A, 2), 50);
  EXPECT_EQ(g.total_op_bytes(), 150u);
}

TEST(CausalGraph, DotExportContainsNodesAndMergeShading) {
  Fig3 f;
  const std::string dot = to_dot(f.site_a, "fig1");
  EXPECT_NE(dot.find("digraph fig1"), std::string::npos);
  EXPECT_NE(dot.find("\"A:2\" [style=filled, fillcolor=gray]"), std::string::npos);
  EXPECT_NE(dot.find("\"G:1\" -> \"A:2\""), std::string::npos);
  EXPECT_NE(dot.find("\"A:1\" -> \"B:1\""), std::string::npos);
}

}  // namespace
}  // namespace optrep::graph
