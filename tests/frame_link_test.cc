// sim::FrameLink: frame coalescing must keep per-message Link timing exactly,
// flush on budget / control / direction turn, and let cancel_tail revoke only
// the speculative not-yet-transmitting tail.
#include <gtest/gtest.h>

#include <type_traits>
#include <utility>
#include <vector>

#include "sim/event_loop.h"
#include "sim/frame_link.h"
#include "sim/link.h"

namespace optrep::sim {
namespace {

struct FMsg {
  int id{0};
  bool control{false};
};

// Regression for the moved-Link dangling-handler bug: delivery closures
// capture the link's address, so both link types are pinned in place.
static_assert(!std::is_copy_constructible_v<Link<FMsg>>);
static_assert(!std::is_move_constructible_v<Link<FMsg>>);
static_assert(!std::is_copy_assignable_v<Link<FMsg>>);
static_assert(!std::is_move_assignable_v<Link<FMsg>>);
static_assert(!std::is_copy_constructible_v<FrameLink<FMsg>>);
static_assert(!std::is_move_constructible_v<FrameLink<FMsg>>);

NetConfig finite_net(std::uint32_t budget) {
  NetConfig net;
  net.latency_s = 0.25;
  net.bandwidth_bits_per_s = 100.0;
  net.frame_budget = budget;
  return net;
}

TEST(FrameLink, BudgetZeroMatchesLinkTimingAndEvents) {
  EventLoop unframed_loop;
  Link<FMsg> link(&unframed_loop, finite_net(0));
  std::vector<std::pair<Time, int>> got_link;
  link.set_receiver([&](const FMsg& m) { got_link.emplace_back(unframed_loop.now(), m.id); });
  unframed_loop.schedule(0.0, [&] {
    for (int i = 0; i < 5; ++i) link.send(FMsg{i}, 100, 13);
  });
  unframed_loop.run();

  EventLoop framed_loop;
  FrameLink<FMsg> flink(&framed_loop, finite_net(0));
  std::vector<std::pair<Time, int>> got_flink;
  flink.set_receiver([&](const FMsg& m) { got_flink.emplace_back(framed_loop.now(), m.id); });
  framed_loop.schedule(0.0, [&] {
    for (int i = 0; i < 5; ++i) flink.send(FMsg{i}, 100, 13);
  });
  framed_loop.run();

  EXPECT_EQ(got_link, got_flink);
  EXPECT_EQ(unframed_loop.executed_events(), framed_loop.executed_events());
  EXPECT_EQ(flink.stats().frames, 5u);             // every message its own frame
  EXPECT_EQ(flink.stats().framed_wire_bytes, 5u * 13u);
  EXPECT_EQ(flink.stats().wire_bytes, link.stats().wire_bytes);
}

TEST(FrameLink, FramedDeliveryKeepsPerMessageTimes) {
  EventLoop loop;
  FrameLink<FMsg> link(&loop, finite_net(8));
  std::vector<std::pair<Time, int>> got;
  link.set_receiver([&](const FMsg& m) { got.emplace_back(loop.now(), m.id); });
  loop.schedule(0.0, [&] {
    for (int i = 0; i < 4; ++i) link.send(FMsg{i}, 100, 13);
  });
  loop.run();
  link.close_frame();

  // Message i transmits [i, i+1) at 100 bits / 100 bit/s, arrives at i+1.25.
  ASSERT_EQ(got.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(got[i].first, i + 1.25);
    EXPECT_EQ(got[i].second, i);
  }
  // One send burst + one coalesced delivery walk.
  EXPECT_EQ(loop.executed_events(), 2u);
  EXPECT_EQ(link.stats().frames, 1u);
  EXPECT_EQ(link.stats().messages, 4u);
}

TEST(FrameLink, BudgetClosesFrames) {
  EventLoop loop;
  FrameLink<FMsg> link(&loop, finite_net(2));
  link.set_receiver([](const FMsg&) {});
  loop.schedule(0.0, [&] {
    for (int i = 0; i < 5; ++i) link.send(FMsg{i}, 100, 13);
  });
  loop.run();
  link.close_frame();
  EXPECT_EQ(link.stats().frames, 3u);  // 2 + 2 + 1
}

TEST(FrameLink, FlushAfterControlMessageClosesFrame) {
  EventLoop loop;
  FrameLink<FMsg> link(&loop, finite_net(100));
  link.set_receiver([](const FMsg&) {});
  link.set_flush_after([](const FMsg& m) { return m.control; });
  loop.schedule(0.0, [&] {
    link.send(FMsg{0}, 100, 13);
    link.send(FMsg{1}, 100, 13);
    link.send(FMsg{2, /*control=*/true}, 10, 1);
    link.send(FMsg{3}, 100, 13);
  });
  loop.run();
  link.close_frame();
  EXPECT_EQ(link.stats().frames, 2u);  // {0,1,control} then {3}
}

TEST(FrameLink, DirectionTurnClosesPeerFrame) {
  EventLoop loop;
  FrameDuplex<FMsg> duplex(&loop, finite_net(100));
  duplex.a_to_b().set_receiver([&](const FMsg&) { duplex.b_to_a().send(FMsg{99}, 10, 1); });
  duplex.b_to_a().set_receiver([](const FMsg&) {});
  loop.schedule(0.0, [&] {
    duplex.a_to_b().send(FMsg{0}, 100, 13);
    duplex.a_to_b().send(FMsg{1}, 100, 13);
  });
  loop.run();
  duplex.a_to_b().close_frame();
  duplex.b_to_a().close_frame();
  // The reply closed a→b's open frame; both directions hold one frame.
  EXPECT_EQ(duplex.a_to_b().stats().frames, 1u);
  EXPECT_EQ(duplex.b_to_a().stats().frames, 1u);
}

TEST(FrameLink, FrameSizerPricesWholeFrames) {
  EventLoop loop;
  FrameLink<FMsg> link(&loop, finite_net(10));
  link.set_receiver([](const FMsg&) {});
  // A frame of k messages costs 5 + k bytes (amortized header).
  link.set_frame_sizer([](const std::vector<FMsg>& msgs) {
    return std::uint64_t{5} + msgs.size();
  });
  loop.schedule(0.0, [&] {
    for (int i = 0; i < 3; ++i) link.send(FMsg{i}, 100, 13);
  });
  loop.run();
  link.close_frame();
  EXPECT_EQ(link.stats().frames, 1u);
  EXPECT_EQ(link.stats().framed_wire_bytes, 8u);
  EXPECT_EQ(link.stats().wire_bytes, 39u);  // per-message accounting untouched
}

TEST(FrameLink, CancelTailRevokesOnlyFutureSpeculativeSends) {
  EventLoop loop;
  FrameLink<FMsg> link(&loop, finite_net(10));
  std::vector<int> delivered;
  link.set_receiver([&](const FMsg& m) { delivered.push_back(m.id); });
  std::vector<int> revoked;
  loop.schedule(0.0, [&] {
    link.send(FMsg{0}, 100, 13, /*revocable=*/false);  // transmits [0,1)
    link.send(FMsg{1}, 100, 13, /*revocable=*/true);   // transmits [1,2)
    link.send(FMsg{2}, 100, 13, /*revocable=*/true);   // transmits [2,3)
    link.send(FMsg{3}, 100, 13, /*revocable=*/true);   // transmits [3,4)
  });
  // At t=2 message 2 has started transmitting (start == 2 is committed: its
  // first bit leaves exactly now); only message 3 is still revocable.
  loop.schedule(2.0, [&] {
    link.peek_tail([&](const FMsg& m) { revoked.push_back(m.id + 100); });  // dry run
    const std::size_t n = link.cancel_tail([&](const FMsg& m) { revoked.push_back(m.id); });
    EXPECT_EQ(n, 1u);
    EXPECT_DOUBLE_EQ(link.free_at(), 3.0);  // rolled back to msg 2's finish
  });
  loop.run();
  link.close_frame();
  EXPECT_EQ(revoked, (std::vector<int>{103, 3}));
  EXPECT_EQ(delivered, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(link.stats().messages, 3u);
  EXPECT_EQ(link.stats().model_bits, 300u);
  EXPECT_EQ(link.stats().wire_bytes, 39u);
}

TEST(FrameLink, LinkReusableAfterTailRevocation) {
  EventLoop loop;
  FrameLink<FMsg> link(&loop, finite_net(10));
  std::vector<int> delivered;
  link.set_receiver([&](const FMsg& m) { delivered.push_back(m.id); });
  loop.schedule(0.0, [&] {
    link.send(FMsg{0}, 100, 13, /*revocable=*/false);  // [0,1), arrives 1.25
    link.send(FMsg{1}, 100, 13, /*revocable=*/true);   // [1,2), arrives 2.25
  });
  loop.schedule(0.5, [&] {
    EXPECT_EQ(link.cancel_tail([](const FMsg&) {}), 1u);
    EXPECT_DOUBLE_EQ(link.free_at(), 1.0);  // back to msg 0's finish
    // A replacement send reuses the freed slot immediately.
    link.send(FMsg{7}, 100, 13);  // starts at 1.0, arrives 2.25
  });
  loop.run();
  EXPECT_EQ(delivered, (std::vector<int>{0, 7}));
  EXPECT_EQ(link.stats().messages, 2u);
}

TEST(FrameLink, TapSeesSpeculativeSendsOnlyOnceDelivered) {
  EventLoop loop;
  FrameLink<FMsg> link(&loop, finite_net(10));
  link.set_receiver([](const FMsg&) {});
  std::vector<std::pair<Time, int>> tapped;
  link.set_tap([&](Time t, const FMsg& m, std::uint64_t) { tapped.emplace_back(t, m.id); });
  loop.schedule(0.0, [&] {
    link.send(FMsg{0}, 100, 13, /*revocable=*/false);
    link.send(FMsg{1}, 100, 13, /*revocable=*/true);
    link.send(FMsg{2}, 100, 13, /*revocable=*/true);
  });
  loop.schedule(1.5, [&] { link.cancel_tail([](const FMsg&) {}); });  // revokes msg 2
  loop.run();
  ASSERT_EQ(tapped.size(), 2u);  // the revoked message never appears
  EXPECT_EQ(tapped[0], (std::pair<Time, int>{0.0, 0}));  // tapped at hand-off
  EXPECT_EQ(tapped[1], (std::pair<Time, int>{1.0, 1}));  // stamped with its start
}

}  // namespace
}  // namespace optrep::sim
