// optrep::obs — metrics registry, structured tracing, and exporter tests,
// including the determinism contract (same seed ⇒ byte-identical JSON) and
// the no-allocation guarantee on the hot recording paths.
#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <string>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "repl/state_system.h"
#include "vv/session.h"
#include "workload/report.h"
#include "workload/trace.h"

// Global allocation counter: every path through operator new bumps it, so a
// test can assert that a code region performed no heap allocation at all.
static std::uint64_t g_alloc_count = 0;

// GCC pairs the replaced operators against the built-in malloc/free and warns
// spuriously; replacement operators routing through malloc are well-defined.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t n) {
  ++g_alloc_count;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  ++g_alloc_count;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace optrep::obs {
namespace {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  for (std::uint64_t v = 0; v < 16; ++v) h.record(v);
  // Below 2^(kSubBits+1) = 16 every value has its own bucket, so percentiles
  // are exact, not approximations.
  EXPECT_EQ(h.percentile(0.0), 0u);
  EXPECT_EQ(h.percentile(1.0), 15u);
  EXPECT_EQ(h.count(), 16u);
  EXPECT_EQ(h.sum(), 120u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 15u);
}

TEST(Histogram, PercentilesWithinQuantizationErrorOnKnownDistribution) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const struct {
    double q;
    double expected;
  } cases[] = {{0.50, 500.0}, {0.90, 900.0}, {0.99, 990.0}};
  for (const auto& c : cases) {
    const auto got = static_cast<double>(h.percentile(c.q));
    // Log-bucketing with kSubBits=3 bounds relative error by 2^-3 = 12.5%.
    EXPECT_NEAR(got, c.expected, c.expected * 0.125)
        << "q=" << c.q << " got " << got;
  }
  EXPECT_EQ(h.percentile(0.0), 1u);
  EXPECT_EQ(h.percentile(1.0), 1000u);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_EQ(s.p50, h.percentile(0.5));
  EXPECT_EQ(s.p999, h.percentile(0.999));
  EXPECT_GE(s.p999, s.p99);  // percentiles are monotone in q
}

TEST(Histogram, EmptyHistogramIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.p99, 0u);
  EXPECT_EQ(s.p999, 0u);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, InstrumentsAreStableAndIterationIsSorted) {
  Registry reg;
  Counter& c1 = reg.counter("z.last");
  Counter& c2 = reg.counter("a.first");
  c1.inc(3);
  reg.counter("m.middle");
  // Registering more instruments must not invalidate earlier references, and
  // re-lookup must yield the same instrument.
  EXPECT_EQ(&reg.counter("z.last"), &c1);
  EXPECT_EQ(&reg.counter("a.first"), &c2);
  EXPECT_EQ(reg.counter("z.last").value(), 3u);

  std::string order;
  for (const auto& [name, c] : reg.counters()) order += name + ";";
  EXPECT_EQ(order, "a.first;m.middle;z.last;");
}

TEST(Registry, GaugeTracksHighWaterMark) {
  Registry reg;
  Gauge& g = reg.gauge("depth");
  g.set(5);
  g.set(12);
  g.set(3);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.max(), 12);
  g.add(-10);
  EXPECT_EQ(g.value(), -7);
  EXPECT_EQ(g.max(), 12);
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(Tracer, RingOverflowDropsOldestAndCountsDrops) {
  Tracer t(/*capacity=*/8);
  for (std::uint64_t i = 0; i < 12; ++i) {
    TraceEvent e;
    e.value = i;
    t.record(e);
  }
  EXPECT_EQ(t.capacity(), 8u);
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.total_recorded(), 12u);
  EXPECT_EQ(t.dropped(), 4u);
  // The oldest retained event is the 5th recorded (values 4..11 survive).
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.event(i).value, i + 4);

  const std::string json = trace_to_json(t);
  EXPECT_NE(json.find("\"dropped\":4"), std::string::npos);
  EXPECT_NE(json.find("\"total_recorded\":12"), std::string::npos);
}

TEST(Tracer, WrapBoundaryIsExact) {
  // Exactly `capacity` records: the ring is full but nothing has been
  // overwritten yet — an off-by-one here would report a phantom drop.
  Tracer t(/*capacity=*/8);
  TraceEvent e;
  for (std::uint64_t i = 0; i < 8; ++i) {
    e.value = i;
    t.record(e);
  }
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.total_recorded(), 8u);
  EXPECT_EQ(t.dropped(), 0u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.event(i).value, i);

  // The (capacity+1)-th record evicts exactly one event: the oldest.
  e.value = 8;
  t.record(e);
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.total_recorded(), 9u);
  EXPECT_EQ(t.dropped(), 1u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.event(i).value, i + 1);
}

// ---------------------------------------------------------------------------
// JsonWriter / exporters
// ---------------------------------------------------------------------------

TEST(JsonWriter, NestedContainersAndEscaping) {
  JsonWriter w;
  w.begin_object();
  w.field("s", "a\"b\\c\nd");
  w.key("arr").begin_array().value(std::uint64_t{1}).value(true).null().end_array();
  w.key("o").begin_object().field("x", 1.5).end_object();
  w.end_object();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\",\"arr\":[1,true,null],\"o\":{\"x\":1.5}}");
}

TEST(Export, MetricsJsonAndCsvAreNameSorted) {
  Registry reg;
  reg.counter("b").inc(2);
  reg.counter("a").inc(1);
  reg.gauge("g").set(7);
  reg.histogram("h").record(5);
  const std::string json = metrics_to_json(reg);
  EXPECT_LT(json.find("\"a\":1"), json.find("\"b\":2"));
  EXPECT_NE(json.find("\"p99\":5"), std::string::npos);
  EXPECT_NE(json.find("\"p999\":5"), std::string::npos);
  const std::string csv = metrics_to_csv(reg);
  EXPECT_NE(csv.find("counter,a,value,1\n"), std::string::npos);
  EXPECT_NE(csv.find("gauge,g,max,7\n"), std::string::npos);
}

TEST(Export, BoundViolationAdvancesCounterAndIsExplicitInJson) {
  const CostModel cm{.n = 8, .m = 1 << 16};
  vv::SyncReport r;
  r.bits_fwd = cm.srv_upper_bound_bits() * 10;  // way past the Table 2 bound
  Registry reg;
  const std::string json = sync_report_to_json(r, vv::VectorKind::kSrv, cm, &reg);
  EXPECT_NE(json.find("\"within_table2_bound\":false"), std::string::npos);
  EXPECT_EQ(reg.counter("obs.bound_violations").value(), 1u);

  vv::SyncReport ok;
  ok.bits_fwd = 1;
  EXPECT_NE(sync_report_to_json(ok, vv::VectorKind::kSrv, cm, &reg)
                .find("\"within_table2_bound\":true"),
            std::string::npos);
  EXPECT_EQ(reg.counter("obs.bound_violations").value(), 1u);  // unchanged
}

// ---------------------------------------------------------------------------
// Session integration: taps, tracer, metrics
// ---------------------------------------------------------------------------

TEST(SessionObservability, AllTapSubscribersSeeEveryMessage) {
  vv::RotatingVector a, b;
  for (std::uint32_t i = 0; i < 4; ++i) b.record_update(SiteId{i});
  vv::SyncOptions opt;
  opt.kind = vv::VectorKind::kSrv;
  opt.mode = vv::TransferMode::kIdeal;
  opt.cost = CostModel{.n = 8, .m = 256};
  opt.known_relation = vv::Ordering::kBefore;
  int first = 0, extra1 = 0, extra2 = 0;
  opt.add_tap([&](bool, const vv::VvMsg&) { ++first; });
  opt.add_tap([&](bool, const vv::VvMsg&) { ++extra1; });
  opt.add_tap([&](bool, const vv::VvMsg&) { ++extra2; });
  sim::EventLoop loop;
  vv::sync_rotating(loop, a, b, opt);
  EXPECT_GT(first, 0);
  EXPECT_EQ(first, extra1);
  EXPECT_EQ(first, extra2);
}

TEST(SessionObservability, TracerRecordsSessionBracketsAndMetricsAggregate) {
  vv::RotatingVector a, b;
  for (std::uint32_t i = 0; i < 4; ++i) b.record_update(SiteId{i});
  Tracer tracer;
  Registry reg;
  vv::SyncOptions opt;
  opt.kind = vv::VectorKind::kSrv;
  opt.mode = vv::TransferMode::kIdeal;
  opt.cost = CostModel{.n = 8, .m = 256};
  opt.known_relation = vv::Ordering::kBefore;
  opt.tracer = &tracer;
  opt.trace_session = 42;
  opt.metrics = &reg;
  sim::EventLoop loop;
  const vv::SyncReport rep = vv::sync_rotating(loop, a, b, opt);

  ASSERT_GE(tracer.size(), 2u);
  EXPECT_EQ(tracer.event(0).type, TraceEventType::kSessionBegin);
  EXPECT_EQ(tracer.event(tracer.size() - 1).type, TraceEventType::kSessionEnd);
  EXPECT_EQ(tracer.event(tracer.size() - 1).bits, rep.total_bits());
  std::size_t sent = 0;
  for (std::size_t i = 0; i < tracer.size(); ++i) {
    EXPECT_EQ(tracer.event(i).session, 42u);
    if (tracer.event(i).type == TraceEventType::kElemSent) ++sent;
  }
  EXPECT_EQ(sent, rep.elems_sent);

  EXPECT_EQ(reg.counter("vv.sessions").value(), 1u);
  EXPECT_EQ(reg.counter("vv.elems_applied").value(), rep.elems_applied);
  EXPECT_EQ(reg.histogram("vv.session_bits").count(), 1u);
}

// ---------------------------------------------------------------------------
// Determinism: same seed ⇒ byte-identical exported artifacts
// ---------------------------------------------------------------------------

struct RunArtifacts {
  std::string report;
  std::string trace_json;
  std::string metrics_csv;
};

RunArtifacts run_once(std::uint64_t seed) {
  wl::GeneratorConfig g;
  g.n_sites = 8;
  g.n_objects = 2;
  g.steps = 300;
  g.seed = seed;
  const wl::Trace trace = wl::generate(g);
  Tracer tracer;
  repl::StateSystem::Config cfg;
  cfg.n_sites = g.n_sites;
  cfg.kind = vv::VectorKind::kSrv;
  cfg.cost = CostModel{.n = g.n_sites, .m = 1 << 16};
  cfg.tracer = &tracer;
  repl::StateSystem sys(cfg);
  const wl::RunStats stats = wl::run_state(sys, trace);
  return {wl::state_run_report_json(sys, trace, stats), trace_to_json(tracer),
          metrics_to_csv(sys.metrics())};
}

TEST(Determinism, SameSeedRunsExportByteIdenticalJson) {
  const RunArtifacts r1 = run_once(7);
  const RunArtifacts r2 = run_once(7);
  EXPECT_EQ(r1.report, r2.report);
  EXPECT_EQ(r1.trace_json, r2.trace_json);
  // The CSV export must be byte-identical too: no wall-clock values leak into
  // the default metrics (profiling sinks are opt-in via --profile-out).
  EXPECT_EQ(r1.metrics_csv, r2.metrics_csv);
  EXPECT_NE(r1.metrics_csv.find("counter,"), std::string::npos);
  // And the artifacts are not degenerate.
  EXPECT_NE(r1.report.find("\"schema\":\"optrep.run/v1\""), std::string::npos);
  EXPECT_NE(r1.trace_json.find("\"session_begin\""), std::string::npos);
  // A different seed must actually change the report (guards against the
  // tags being ignored).
  EXPECT_NE(run_once(8).report, r1.report);
}

// ---------------------------------------------------------------------------
// Hot paths allocate nothing
// ---------------------------------------------------------------------------

TEST(HotPath, RecordingAllocatesNoHeapMemory) {
  Registry reg;
  Counter& c = reg.counter("hot.counter");
  Histogram& h = reg.histogram("hot.histogram");
  Gauge& g = reg.gauge("hot.gauge");
  Tracer t(/*capacity=*/64);  // small ring, forced to wrap many times
  TraceEvent e;
  e.type = TraceEventType::kElemSent;

  const std::uint64_t before = g_alloc_count;
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    c.inc();
    h.record(i);
    g.set(static_cast<std::int64_t>(i));
    e.value = i;
    t.record(e);
  }
  EXPECT_EQ(g_alloc_count, before) << "hot instrument paths must not allocate";

  // Re-looking up an already-registered instrument is also allocation-free
  // (heterogeneous string_view find, no temporary std::string).
  const std::uint64_t before_lookup = g_alloc_count;
  for (int i = 0; i < 1000; ++i) reg.counter("hot.counter").inc();
  EXPECT_EQ(g_alloc_count, before_lookup);
}

TEST(HotPath, SpanRecordingAllocatesNoHeapMemory) {
  prof::Profiler profiler(/*capacity=*/64);  // small ring, wraps many times
  Registry reg;
  profiler.set_sink(&reg);
  prof::set_global_profiler(&profiler);

  // First record per distinct span name registers its ".wall_ns" histogram in
  // the sink (one-time allocation); warm both names up front.
  { OPTREP_SPAN("hot.outer"); { OPTREP_SPAN("hot.inner"); } }

  const std::uint64_t before = g_alloc_count;
  for (int i = 0; i < 10'000; ++i) {
    OPTREP_SPAN("hot.outer");
    { OPTREP_SPAN("hot.inner"); }
  }
  EXPECT_EQ(g_alloc_count, before) << "span recording must not allocate";
  prof::set_global_profiler(nullptr);

  EXPECT_EQ(profiler.total_recorded(), 20'002u);
  EXPECT_EQ(profiler.size(), 64u);
  EXPECT_EQ(reg.histogram("hot.outer.wall_ns").count(), 10'001u);
  EXPECT_EQ(reg.histogram("hot.inner.wall_ns").count(), 10'001u);
}

// The tentpole no-allocation contract: once a receiver's slot table, the
// event-loop queue and the link handlers are warm, a whole sync session —
// element messages, acks, HALT — runs without touching the heap. Message
// delivery closures live in the EventLoop's FixedFunction inline storage and
// the flat site index grows only when the site set does.
TEST(HotPath, SteadyStateSyncSessionAllocatesNoHeapMemory) {
  constexpr std::uint32_t kSites = 24;
  constexpr std::uint32_t kMissing = 8;
  vv::RotatingVector base;
  for (std::uint32_t i = 0; i < kSites - kMissing; ++i) base.record_update(SiteId{i});
  vv::RotatingVector b = base;
  for (std::uint32_t i = kSites - kMissing; i < kSites; ++i) b.record_update(SiteId{i});

  vv::SyncOptions opt;
  opt.kind = vv::VectorKind::kSrv;
  opt.mode = vv::TransferMode::kPipelined;
  opt.cost = CostModel{.n = kSites, .m = 1 << 16};
  opt.known_relation = vv::Ordering::kBefore;

  sim::EventLoop loop;
  loop.reserve(4 * kSites);

  // Warm-up session: grows the receiver's slot table and whatever scratch the
  // loop/link layer sizes on first use.
  vv::RotatingVector warm = base;
  warm.reserve(kSites);
  vv::sync_rotating(loop, warm, b, opt);

  vv::RotatingVector a = base;
  a.reserve(kSites);
  const std::uint64_t before = g_alloc_count;
  const vv::SyncReport rep = vv::sync_rotating(loop, a, b, opt);
  EXPECT_EQ(g_alloc_count, before)
      << "steady-state sync sessions must not allocate per message";
  EXPECT_EQ(rep.elems_applied, kMissing);
  // SRV may skip dominated segments, so a's order need not equal b's; the
  // values must.
  for (std::uint32_t i = 0; i < kSites; ++i) {
    EXPECT_EQ(a.value(SiteId{i}), b.value(SiteId{i})) << "site " << i;
  }
}

}  // namespace
}  // namespace optrep::obs
