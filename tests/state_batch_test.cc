// StateSystem::run_batch / wl::run_state_parallel — the sharded wave engine
// must be EXACTLY equivalent to the sequential driver (rt/shard.h's wave
// argument): same RunStats, same Totals, same replica states, same causal
// dumps — and invariant in the worker thread count. These tests run the two
// engines side by side on generated traces (including under fault injection,
// whose per-session streams derive from the configured seed) and compare
// everything observable.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/causal.h"
#include "repl/state_system.h"
#include "rt/thread_pool.h"
#include "workload/trace.h"

namespace optrep {
namespace {

using repl::ResolutionPolicy;
using repl::StateSystem;

StateSystem::Config batch_cfg(vv::VectorKind kind, std::uint32_t n_sites) {
  StateSystem::Config cfg;
  cfg.n_sites = n_sites;
  cfg.kind = kind;
  cfg.policy = ResolutionPolicy::kAutomatic;
  cfg.cost = CostModel{.n = n_sites, .m = 1 << 16};
  return cfg;
}

wl::Trace make_trace(std::uint32_t n_sites, std::uint64_t seed) {
  wl::GeneratorConfig g;
  g.n_sites = n_sites;
  g.n_objects = 3;
  g.steps = 1200;
  g.update_prob = 0.4;
  g.seed = seed;
  return wl::generate(g);
}

void expect_same_totals(const StateSystem::Totals& a, const StateSystem::Totals& b) {
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.msgs, b.msgs);
  EXPECT_EQ(a.frames, b.frames);
  EXPECT_EQ(a.framed_bytes, b.framed_bytes);
  EXPECT_EQ(a.payload_bytes, b.payload_bytes);
  EXPECT_EQ(a.elems_sent, b.elems_sent);
  EXPECT_EQ(a.elems_applied, b.elems_applied);
  EXPECT_EQ(a.elems_redundant, b.elems_redundant);
  EXPECT_EQ(a.skips, b.skips);
  EXPECT_EQ(a.conflicts_detected, b.conflicts_detected);
  EXPECT_EQ(a.reconciliations, b.reconciliations);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.sync_failures, b.sync_failures);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.recovery_bits, b.recovery_bits);
  EXPECT_EQ(a.bound_violations, b.bound_violations);
}

void expect_same_stats(const wl::RunStats& a, const wl::RunStats& b) {
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_EQ(a.syncs, b.syncs);
  EXPECT_EQ(a.skipped, b.skipped);
  EXPECT_EQ(a.conflicts, b.conflicts);
  EXPECT_EQ(a.eventually_consistent, b.eventually_consistent);
  EXPECT_EQ(a.anti_entropy_rounds, b.anti_entropy_rounds);
}

void expect_same_state(const StateSystem& a, const StateSystem& b,
                       std::uint32_t n_objects) {
  for (std::uint32_t o = 0; o < n_objects; ++o) {
    const ObjectId obj{o};
    const std::vector<SiteId> ha = a.hosts_of(obj);
    ASSERT_EQ(ha, b.hosts_of(obj)) << "hosts diverge for object " << o;
    for (const SiteId site : ha) {
      const repl::StateReplica& ra = a.replica(site, obj);
      const repl::StateReplica& rb = b.replica(site, obj);
      EXPECT_EQ(ra.data, rb.data);
      EXPECT_TRUE(ra.vector.identical_to(rb.vector))
          << "site " << site.value << " object " << o << ": "
          << ra.vector.to_string() << " vs " << rb.vector.to_string();
      EXPECT_EQ(ra.conflicted, rb.conflicted);
      EXPECT_EQ(ra.oracle_history, rb.oracle_history);
    }
  }
}

TEST(StateBatch, MatchesSequentialDriverAcrossKindsAndSeeds) {
  for (const vv::VectorKind kind : {vv::VectorKind::kCrv, vv::VectorKind::kSrv}) {
    for (const std::uint64_t seed : {1ULL, 7ULL}) {
      const wl::Trace trace = make_trace(12, seed);

      StateSystem seq(batch_cfg(kind, trace.n_sites));
      const wl::RunStats s_seq = wl::run_state(seq, trace);

      StateSystem par(batch_cfg(kind, trace.n_sites));
      rt::ThreadPool pool(4);
      const wl::RunStats s_par = wl::run_state_parallel(par, trace, pool);

      expect_same_stats(s_seq, s_par);
      expect_same_totals(seq.totals(), par.totals());
      expect_same_state(seq, par, trace.n_objects);
      EXPECT_TRUE(s_par.eventually_consistent);
    }
  }
}

TEST(StateBatch, FaultInjectionIsThreadInvariantAndConverges) {
  // Under active faults the batch engine draws per-spec-index fault streams
  // (the sequential engine salts by cumulative loop events, a quantity that
  // does not exist under parallel execution — see StateSystem::run_batch),
  // so the guarantees are: (a) the batch engine is byte-identical across
  // thread counts, faults included; (b) both engines inject faults, retry,
  // and still drive every replica to the same converged contents.
  StateSystem::Config cfg = batch_cfg(vv::VectorKind::kSrv, 10);
  cfg.net.faults.drop = 0.05;
  cfg.net.faults.duplicate = 0.02;
  cfg.net.faults.seed = 11;
  cfg.check_oracle = false;  // oracles cannot model partial joins (see Config)
  const wl::Trace trace = make_trace(10, 3);

  StateSystem seq(cfg);
  const wl::RunStats s_seq = wl::run_state(seq, trace);

  StateSystem par1(cfg);
  rt::ThreadPool pool1(1);
  const wl::RunStats s_par1 = wl::run_state_parallel(par1, trace, pool1);
  StateSystem par4(cfg);
  rt::ThreadPool pool4(4);
  const wl::RunStats s_par4 = wl::run_state_parallel(par4, trace, pool4);

  // (a) thread-count invariance: everything matches, fault stats included.
  expect_same_stats(s_par1, s_par4);
  expect_same_totals(par1.totals(), par4.totals());
  expect_same_state(par1, par4, trace.n_objects);

  // (b) engine agreement on protocol outcomes.
  EXPECT_GT(seq.totals().faults_injected, 0u) << "fault smoke must actually fault";
  EXPECT_GT(par4.totals().faults_injected, 0u) << "fault smoke must actually fault";
  EXPECT_TRUE(s_seq.eventually_consistent);
  EXPECT_TRUE(s_par4.eventually_consistent);
  EXPECT_EQ(s_seq.updates, s_par4.updates);
  for (std::uint32_t o = 0; o < trace.n_objects; ++o) {
    const ObjectId obj{o};
    const std::vector<SiteId> hosts = seq.hosts_of(obj);
    ASSERT_EQ(hosts, par4.hosts_of(obj));
    for (const SiteId site : hosts) {
      // Converged CONTENTS are fault-independent (set-union resolution).
      // Vector values are not compared across engines: a reconciliation
      // bumps the resolver's component, and which sessions reconcile is a
      // function of the fault stream.
      EXPECT_EQ(seq.replica(site, obj).data, par4.replica(site, obj).data);
    }
  }
}

TEST(StateBatch, ThreadCountInvariantIncludingCausalDumps) {
  const wl::Trace trace = make_trace(12, 5);

  obs::CausalTracer t1(/*run_seed=*/42);
  StateSystem::Config c1 = batch_cfg(vv::VectorKind::kSrv, trace.n_sites);
  c1.causal = &t1;
  StateSystem sys1(c1);
  rt::ThreadPool pool1(1);
  StateSystem::BatchStats b1;
  const wl::RunStats s1 = wl::run_state_parallel(sys1, trace, pool1, true, &b1);

  obs::CausalTracer t4(/*run_seed=*/42);
  StateSystem::Config c4 = batch_cfg(vv::VectorKind::kSrv, trace.n_sites);
  c4.causal = &t4;
  StateSystem sys4(c4);
  rt::ThreadPool pool4(4);
  StateSystem::BatchStats b4;
  const wl::RunStats s4 = wl::run_state_parallel(sys4, trace, pool4, true, &b4);

  expect_same_stats(s1, s4);
  expect_same_totals(sys1.totals(), sys4.totals());
  expect_same_state(sys1, sys4, trace.n_objects);

  // The wave schedule is a function of the spec alone — identical plans,
  // identical lock traffic, for any worker count.
  EXPECT_EQ(b1.waves, b4.waves);
  EXPECT_EQ(b1.max_wave_items, b4.max_wave_items);
  EXPECT_EQ(b1.olock.acquisitions, b4.olock.acquisitions);
  EXPECT_EQ(b1.olock.opt_retries, b4.olock.opt_retries);
  EXPECT_EQ(b1.olock.queue_waits, b4.olock.queue_waits);
  EXPECT_GT(b1.waves, 0u);
  EXPECT_GT(b1.olock.acquisitions, 0u);

  // Byte-identical causal dumps: span ids, event order, everything.
  EXPECT_EQ(obs::causal_to_json(t1), obs::causal_to_json(t4));
}

TEST(StateBatch, EmptyBatchIsANoOp) {
  StateSystem sys(batch_cfg(vv::VectorKind::kSrv, 4));
  rt::ThreadPool pool(2);
  StateSystem::BatchStats stats;
  const std::vector<repl::SyncOutcome> out = sys.run_batch({}, pool, &stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.waves, 0u);
  EXPECT_EQ(sys.totals().sessions, 0u);
}

TEST(StateBatch, MixedBatchMatchesDirectCalls) {
  const SiteId A{0}, B{1}, C{2};
  const ObjectId kObj{0};

  StateSystem direct(batch_cfg(vv::VectorKind::kSrv, 4));
  direct.create_object(A, kObj, "base");
  direct.update(A, kObj, "a1");
  direct.sync(B, A, kObj);
  direct.sync(C, A, kObj);
  direct.update(B, kObj, "b1");
  direct.update(C, kObj, "c1");
  direct.sync(B, C, kObj);

  StateSystem batched(batch_cfg(vv::VectorKind::kSrv, 4));
  rt::ThreadPool pool(3);
  using BE = StateSystem::BatchEvent;
  const std::vector<repl::SyncOutcome> out = batched.run_batch(
      {
          BE{BE::Type::kCreate, A, {}, kObj, "base"},
          BE{BE::Type::kUpdate, A, {}, kObj, "a1"},
          BE{BE::Type::kSync, B, A, kObj, {}},
          BE{BE::Type::kSync, C, A, kObj, {}},  // shares sender A with the row above
          BE{BE::Type::kUpdate, B, {}, kObj, "b1"},
          BE{BE::Type::kUpdate, C, {}, kObj, "c1"},
          BE{BE::Type::kSync, B, C, kObj, {}},  // concurrent edit -> reconciliation
      },
      pool);

  ASSERT_EQ(out.size(), 7u);
  EXPECT_EQ(out[2].action, repl::SyncOutcome::Action::kPulled);
  EXPECT_EQ(out[6].action, repl::SyncOutcome::Action::kReconciled);
  expect_same_totals(direct.totals(), batched.totals());
  expect_same_state(direct, batched, 1);
}

TEST(StateBatchDeath, RejectsManualResolutionAndSequentialInstruments) {
  rt::ThreadPool pool(2);
  {
    StateSystem::Config cfg = batch_cfg(vv::VectorKind::kCrv, 4);
    cfg.policy = ResolutionPolicy::kManual;
    StateSystem sys(cfg);
    EXPECT_DEATH(sys.run_batch({}, pool), "requires automatic resolution");
  }
  {
    StateSystem::Config cfg = batch_cfg(vv::VectorKind::kSrv, 4);
    obs::Tracer tracer;
    cfg.tracer = &tracer;
    StateSystem sys(cfg);
    EXPECT_DEATH(sys.run_batch({}, pool), "per-session instruments");
  }
}

}  // namespace
}  // namespace optrep
