// obs/json.h parser + flattener and obs/report_diff.h gate semantics — the
// pieces optrep_report is built from.
#include <gtest/gtest.h>

#include <string>

#include "obs/json.h"
#include "obs/report_diff.h"

namespace optrep::obs {
namespace {

// ---------------------------------------------------------------------------
// json_parse
// ---------------------------------------------------------------------------

TEST(JsonParse, ParsesTheRepoArtifactShapes) {
  const std::string text =
      "{\"schema\":\"optrep.bench/v1\",\"bench\":\"demo\",\"rows\":[\n"
      "{\"n\":64,\"ok\":true,\"x\":-1.5e2,\"none\":null}\n"
      "]}\n";
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(json_parse(text, &doc, &err)) << err;
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("schema")->string, "optrep.bench/v1");
  const JsonValue* rows = doc.find("rows");
  ASSERT_TRUE(rows->is_array());
  ASSERT_EQ(rows->items.size(), 1u);
  const JsonValue& row = rows->items[0];
  EXPECT_EQ(row.find("n")->number, 64.0);
  EXPECT_TRUE(row.find("ok")->boolean);
  EXPECT_EQ(row.find("x")->number, -150.0);
  EXPECT_EQ(row.find("none")->type, JsonValue::Type::kNull);
  EXPECT_EQ(row.find("absent"), nullptr);
}

TEST(JsonParse, StringEscapesIncludingUnicode) {
  JsonValue v;
  ASSERT_TRUE(json_parse("\"a\\\"b\\\\c\\nd\\u0041\\u00e9\"", &v));
  EXPECT_EQ(v.string, "a\"b\\c\ndA\xc3\xa9");
}

TEST(JsonParse, MalformedInputReportsOffsetNotUB) {
  JsonValue v;
  std::string err;
  EXPECT_FALSE(json_parse("{\"a\":}", &v, &err));
  EXPECT_NE(err.find("5"), std::string::npos) << err;  // offset of the '}'
  EXPECT_FALSE(json_parse("[1,2", &v, &err));
  EXPECT_FALSE(json_parse("{\"a\":1} trailing", &v, &err));
  EXPECT_FALSE(json_parse("", &v, &err));
}

// ---------------------------------------------------------------------------
// json_flatten
// ---------------------------------------------------------------------------

TEST(JsonFlatten, DottedPathsWithArrayIndicesBoolsAndStrings) {
  JsonValue doc;
  ASSERT_TRUE(json_parse(
      "{\"bench\":\"demo\",\"rows\":[{\"bits\":8,\"within\":true},"
      "{\"bits\":16,\"within\":false}],\"skip\":null}",
      &doc));
  const FlatDoc flat = json_flatten(doc);
  EXPECT_EQ(flat.strings.at("bench"), "demo");
  EXPECT_EQ(flat.numbers.at("rows[0].bits"), 8.0);
  EXPECT_EQ(flat.numbers.at("rows[1].bits"), 16.0);
  EXPECT_EQ(flat.numbers.at("rows[0].within"), 1.0);
  EXPECT_EQ(flat.numbers.at("rows[1].within"), 0.0);
  EXPECT_EQ(flat.numbers.count("skip"), 0u);
  EXPECT_EQ(flat.strings.count("skip"), 0u);
}

// ---------------------------------------------------------------------------
// diff_docs / gate rules
// ---------------------------------------------------------------------------

FlatDoc flat_of(const std::string& text) {
  JsonValue v;
  std::string err;
  EXPECT_TRUE(json_parse(text, &v, &err)) << err;
  return json_flatten(v);
}

TEST(ReportDiff, IdenticalDocsPassTheGate) {
  const FlatDoc d = flat_of("{\"rows\":[{\"srv_bits\":100,\"within\":1}]}");
  DiffOptions opt;
  const DocDiff diff = diff_docs("BENCH_demo.json", d, d, opt);
  EXPECT_EQ(diff.regressions(), 0u);
  EXPECT_EQ(diff.changes(), 0u);
  EXPECT_FALSE(gate_failed({diff}, opt));
}

TEST(ReportDiff, BitsIncreaseBeyondThresholdRegresses) {
  const FlatDoc base = flat_of("{\"rows\":[{\"srv_bits\":100}]}");
  const FlatDoc within = flat_of("{\"rows\":[{\"srv_bits\":104}]}");
  const FlatDoc beyond = flat_of("{\"rows\":[{\"srv_bits\":200}]}");
  DiffOptions opt;
  opt.threshold = 0.05;
  EXPECT_FALSE(gate_failed({diff_docs("d", base, within, opt)}, opt));
  const DocDiff bad = diff_docs("d", base, beyond, opt);
  ASSERT_EQ(bad.deltas.size(), 1u);
  EXPECT_TRUE(bad.deltas[0].gated);
  EXPECT_TRUE(bad.deltas[0].regressed);
  EXPECT_DOUBLE_EQ(bad.deltas[0].ratio(), 2.0);
  EXPECT_TRUE(gate_failed({bad}, opt));
  // A *decrease* in bits is an improvement, never a regression.
  EXPECT_FALSE(gate_failed({diff_docs("d", beyond, base, opt)}, opt));
}

TEST(ReportDiff, EventAndFrameIncreasesRegress) {
  // The frame-batching figures are gated: more executed dispatches or more
  // frames for the same workload means the coalescing regressed.
  DiffOptions opt;
  opt.threshold = 0.05;
  for (const char* field : {"events_framed", "events_unframed", "frames",
                            "framed_wire_bytes"}) {
    const std::string key = std::string("{\"rows\":[{\"") + field + "\":";
    const FlatDoc base = flat_of(key + "100}]}");
    const FlatDoc worse = flat_of(key + "150}]}");
    const DocDiff diff = diff_docs("BENCH_wire.json", base, worse, opt);
    ASSERT_EQ(diff.deltas.size(), 1u) << field;
    EXPECT_TRUE(diff.deltas[0].gated) << field;
    EXPECT_TRUE(gate_failed({diff}, opt)) << field;
    // Improvements (fewer events, smaller frames) pass.
    EXPECT_FALSE(gate_failed({diff_docs("BENCH_wire.json", worse, base, opt)}, opt))
        << field;
  }
}

TEST(ReportDiff, TailLatencyP999IncreaseRegresses) {
  // Histogram p999 columns are gated on increase: a fatter tail with the same
  // median is exactly the regression percentile summaries hide. The p999 rule
  // precedes the generic "bits" substring rule, so "session_bits.p999" gates
  // as a tail-latency figure either way (both fail on increase).
  DiffOptions opt;
  opt.threshold = 0.05;
  for (const char* field : {"sync_ms.p999", "session_bits.p999"}) {
    const std::string key = std::string("{\"rows\":[{\"") + field + "\":";
    const FlatDoc base = flat_of(key + "100}]}");
    const FlatDoc worse = flat_of(key + "150}]}");
    const DocDiff diff = diff_docs("BENCH_micro.json", base, worse, opt);
    ASSERT_EQ(diff.deltas.size(), 1u) << field;
    EXPECT_TRUE(diff.deltas[0].gated) << field;
    EXPECT_TRUE(diff.deltas[0].regressed) << field;
    EXPECT_TRUE(gate_failed({diff}, opt)) << field;
    // A thinner tail is an improvement.
    EXPECT_FALSE(gate_failed({diff_docs("BENCH_micro.json", worse, base, opt)}, opt))
        << field;
  }
}

TEST(ReportRender, P999RegressionRendersInMarkdownAndCsv) {
  const FlatDoc base = flat_of("{\"rows\":[{\"sync_ms.p999\":10}]}");
  const FlatDoc worse = flat_of("{\"rows\":[{\"sync_ms.p999\":20}]}");
  DiffOptions opt;
  opt.threshold = 0.05;
  const DocDiff diff = diff_docs("BENCH_micro.json", base, worse, opt);
  EXPECT_NE(diff_to_markdown({diff}, opt).find("sync_ms.p999"), std::string::npos);
  EXPECT_NE(diff_to_csv({diff}).find("sync_ms.p999"), std::string::npos);
}

TEST(ReportDiff, ConsistencyDecreaseRegressesIncreaseDoesNot) {
  const FlatDoc good = flat_of("{\"eventually_consistent\":1}");
  const FlatDoc bad = flat_of("{\"eventually_consistent\":0}");
  DiffOptions opt;
  EXPECT_TRUE(gate_failed({diff_docs("d", good, bad, opt)}, opt));
  EXPECT_FALSE(gate_failed({diff_docs("d", bad, good, opt)}, opt));
}

TEST(ReportDiff, ZeroBaselineRegressesOnAnyIncrease) {
  const FlatDoc zero = flat_of("{\"dropped\":0}");
  const FlatDoc one = flat_of("{\"dropped\":1}");
  DiffOptions opt;
  EXPECT_TRUE(gate_failed({diff_docs("d", zero, one, opt)}, opt));
  EXPECT_FALSE(gate_failed({diff_docs("d", zero, zero, opt)}, opt));
}

TEST(ReportDiff, UnmatchedPathsAreInformationalOnly) {
  // "syncs" matches no gate rule: a 10x move must not fail the gate.
  const FlatDoc base = flat_of("{\"stats\":{\"syncs\":10}}");
  const FlatDoc cur = flat_of("{\"stats\":{\"syncs\":100}}");
  DiffOptions opt;
  const DocDiff diff = diff_docs("d", base, cur, opt);
  ASSERT_EQ(diff.deltas.size(), 1u);
  EXPECT_FALSE(diff.deltas[0].gated);
  EXPECT_EQ(diff.changes(), 1u);
  EXPECT_FALSE(gate_failed({diff}, opt));
}

TEST(ReportDiff, StrictModeFailsOnStructuralDrift) {
  const FlatDoc base = flat_of("{\"schema\":\"optrep.bench/v1\",\"a\":1}");
  const FlatDoc cur = flat_of("{\"schema\":\"optrep.bench/v2\",\"b\":1}");
  DiffOptions opt;
  const DocDiff diff = diff_docs("d", base, cur, opt);
  ASSERT_EQ(diff.only_base.size(), 1u);
  EXPECT_EQ(diff.only_base[0], "a");
  ASSERT_EQ(diff.only_cur.size(), 1u);
  EXPECT_EQ(diff.only_cur[0], "b");
  ASSERT_EQ(diff.string_mismatches.size(), 1u);
  EXPECT_FALSE(gate_failed({diff}, opt));  // default: informational
  opt.strict = true;
  EXPECT_TRUE(gate_failed({diff_docs("d", base, cur, opt)}, opt));
}

// ---------------------------------------------------------------------------
// Renderers
// ---------------------------------------------------------------------------

TEST(ReportRender, MarkdownAndCsvNameTheRegressedPath) {
  const FlatDoc base = flat_of("{\"rows\":[{\"srv_bits\":100,\"n\":8}]}");
  const FlatDoc cur = flat_of("{\"rows\":[{\"srv_bits\":200,\"n\":8}]}");
  DiffOptions opt;
  const std::vector<DocDiff> diffs = {diff_docs("BENCH_demo.json", base, cur, opt)};
  const std::string md = diff_to_markdown(diffs, opt);
  EXPECT_NE(md.find("BENCH_demo.json"), std::string::npos);
  EXPECT_NE(md.find("rows[0].srv_bits"), std::string::npos);
  EXPECT_NE(md.find("REGRESSED"), std::string::npos);
  const std::string csv = diff_to_csv(diffs);
  EXPECT_NE(csv.find("doc,path,base,current,ratio,gated,regressed"), std::string::npos);
  EXPECT_NE(csv.find("rows[0].srv_bits"), std::string::npos);
}

}  // namespace
}  // namespace optrep::obs
