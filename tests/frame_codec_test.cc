// vv frame codec: the delta-varint frame encoding must round-trip exactly,
// size itself exactly, and never exceed the unframed per-message encoding —
// fuzzed with the per-message codec's message model as oracle.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "vv/frame_codec.h"
#include "vv/session.h"
#include "vv/wire.h"

namespace optrep::vv {
namespace {

// Field-wise equality over the fields each kind transmits.
void expect_msg_eq(const VvMsg& want, const VvMsg& got) {
  ASSERT_EQ(want.kind, got.kind);
  switch (want.kind) {
    case VvMsg::Kind::kElem:
      EXPECT_EQ(want.site, got.site);
      EXPECT_EQ(want.value, got.value);
      EXPECT_EQ(want.conflict, got.conflict);
      EXPECT_EQ(want.segment, got.segment);
      break;
    case VvMsg::Kind::kProbe:
      EXPECT_EQ(want.site, got.site);
      EXPECT_EQ(want.value, got.value);
      break;
    case VvMsg::Kind::kSkip:
    case VvMsg::Kind::kVerdict:
      EXPECT_EQ(want.arg, got.arg);
      break;
    case VvMsg::Kind::kHalt:
    case VvMsg::Kind::kSkipped:
    case VvMsg::Kind::kAck:
      break;
  }
}

void check_frame(const std::vector<VvMsg>& msgs) {
  std::vector<std::uint8_t> bytes;
  const std::uint64_t appended = frame_encode(bytes, msgs);
  EXPECT_EQ(appended, bytes.size());
  EXPECT_EQ(appended, frame_wire_bytes(msgs));  // sizer is exact

  const std::vector<VvMsg> decoded = frame_decode(bytes);
  ASSERT_EQ(decoded.size(), msgs.size());
  for (std::size_t i = 0; i < msgs.size(); ++i) expect_msg_eq(msgs[i], decoded[i]);

  // A frame never exceeds the per-message encodings it replaces, and the
  // §3.3 model-bit total of the decoded sequence is unchanged — framing is
  // a byte-level optimization, invisible to the cost model.
  const CostModel cm{.n = 1 << 16, .m = 1 << 20};
  std::uint64_t unframed = 0, bits_in = 0, bits_out = 0;
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    unframed += msg_wire_bytes(VectorKind::kSrv, msgs[i]);
    bits_in += msg_model_bits(cm, VectorKind::kSrv, msgs[i]);
    bits_out += msg_model_bits(cm, VectorKind::kSrv, decoded[i]);
  }
  EXPECT_LE(appended, unframed);
  EXPECT_EQ(bits_in, bits_out);
}

TEST(FrameCodec, TypicalElementRunIsMuchSmaller) {
  // A ≺-ordered element stream: site ids scattered, values within one epoch.
  std::vector<VvMsg> msgs;
  for (int i = 0; i < 64; ++i) {
    msgs.push_back(VvMsg{.kind = VvMsg::Kind::kElem, .site = SiteId{static_cast<uint32_t>(i * 7)},
                         .value = 100'000 + static_cast<std::uint64_t>(i) * 3,
                         .segment = i % 8 == 0});
  }
  msgs.push_back(VvMsg{.kind = VvMsg::Kind::kHalt});
  check_frame(msgs);
  // 64 elements at 14 unframed bytes each collapse to a few bytes apiece.
  EXPECT_LT(frame_wire_bytes(msgs), 64 * 14 / 3);
}

TEST(FrameCodec, SingleControlFrameCostsOneByte) {
  for (auto kind : {VvMsg::Kind::kHalt, VvMsg::Kind::kSkipped, VvMsg::Kind::kAck}) {
    const std::vector<VvMsg> one{VvMsg{.kind = kind}};
    EXPECT_EQ(frame_wire_bytes(one), 1u);
    EXPECT_EQ(frame_wire_bytes_single(one[0]), 1u);
    check_frame(one);
  }
  check_frame({VvMsg{.kind = VvMsg::Kind::kVerdict, .arg = 0}});
  check_frame({VvMsg{.kind = VvMsg::Kind::kVerdict, .arg = 1}});
}

TEST(FrameCodec, WideFallbacksCapFieldSizes) {
  // Deltas that would need >4 (site) / >8 (value) varint bytes switch to the
  // fixed-width encoding; a huge SKIP index caps at the 5 unframed bytes.
  std::vector<VvMsg> msgs{
      VvMsg{.kind = VvMsg::Kind::kElem, .site = SiteId{0xFFFFFFFF}, .value = ~std::uint64_t{0}},
      VvMsg{.kind = VvMsg::Kind::kElem, .site = SiteId{0}, .value = 0},
      VvMsg{.kind = VvMsg::Kind::kProbe, .site = SiteId{0x80000000}, .value = 1ull << 63},
      VvMsg{.kind = VvMsg::Kind::kSkip, .arg = 0xFFFFFFFF},  // 5-varint-byte index → wide
  };
  check_frame(msgs);
}

TEST(FrameCodec, FuzzRoundTripAgainstPerMessageSizes) {
  Rng rng(2026);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<VvMsg> msgs;
    const int len = 1 + static_cast<int>(rng.range(0, 40));
    std::uint64_t value = rng.next() >> (rng.next() % 64);
    for (int i = 0; i < len; ++i) {
      VvMsg m;
      switch (rng.range(0, 9)) {
        case 0: m.kind = VvMsg::Kind::kHalt; break;
        case 1: m.kind = VvMsg::Kind::kSkipped; break;
        case 2: m.kind = VvMsg::Kind::kAck; break;
        case 3:
          m.kind = VvMsg::Kind::kSkip;
          m.arg = static_cast<std::uint32_t>(rng.next()) >> (rng.next() % 32);
          break;
        case 4:
          m.kind = VvMsg::Kind::kVerdict;
          m.arg = rng.range(0, 1);
          break;
        case 5:
          m.kind = VvMsg::Kind::kProbe;
          m.site = SiteId{static_cast<std::uint32_t>(rng.next())};
          m.value = rng.next() >> (rng.next() % 64);
          break;
        default:  // bias toward elements, the common message
          m.kind = VvMsg::Kind::kElem;
          m.site = SiteId{static_cast<std::uint32_t>(rng.next() >> (rng.next() % 32))};
          value += rng.range(0, 1000);  // mostly small deltas, as in ≺ order
          if (rng.range(0, 20) == 0) value = rng.next();  // occasional jump
          m.value = value;
          m.conflict = rng.range(0, 1) == 1;
          m.segment = rng.range(0, 1) == 1;
          break;
      }
      msgs.push_back(m);
    }
    check_frame(msgs);
  }
}

TEST(FrameCodecErrors, TruncatedFrameReturnsTypedError) {
  std::vector<VvMsg> msgs{
      VvMsg{.kind = VvMsg::Kind::kElem, .site = SiteId{12}, .value = 345678},
      VvMsg{.kind = VvMsg::Kind::kElem, .site = SiteId{13}, .value = 345679},
  };
  std::vector<std::uint8_t> bytes;
  frame_encode(bytes, msgs);
  ASSERT_GT(bytes.size(), 1u);
  bytes.pop_back();  // cut the last value field short
  std::vector<VvMsg> out;
  EXPECT_EQ(try_frame_decode(bytes, &out), FrameDecodeError::kTruncated);
  // Partial-decode semantics: everything before the damage is preserved.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].site.value, msgs[0].site.value);
  EXPECT_EQ(out[0].value, msgs[0].value);
}

TEST(FrameCodecErrors, UnknownTagReturnsTypedError) {
  std::vector<VvMsg> msgs{VvMsg{.kind = VvMsg::Kind::kHalt}};
  std::vector<std::uint8_t> bytes;
  frame_encode(bytes, msgs);
  bytes.push_back(0x18);  // a tag byte outside the codec's map
  std::vector<VvMsg> out;
  EXPECT_EQ(try_frame_decode(bytes, &out), FrameDecodeError::kUnknownTag);
  EXPECT_EQ(out.size(), 1u);
}

TEST(FrameCodecErrors, VarintOverflowReturnsTypedError) {
  std::vector<VvMsg> msgs{VvMsg{.kind = VvMsg::Kind::kElem, .site = SiteId{1}, .value = 2}};
  std::vector<std::uint8_t> bytes;
  frame_encode(bytes, msgs);
  // Replace the encoded value with a varint that continues past 64 bits.
  while (!bytes.empty() && (bytes.back() & 0x80) == 0 &&
         bytes.size() > 1)  // strip the short value varint
    bytes.pop_back();
  for (int i = 0; i < 11; ++i) bytes.push_back(0x80);
  bytes.push_back(0x01);
  std::vector<VvMsg> out;
  EXPECT_EQ(try_frame_decode(bytes, &out), FrameDecodeError::kVarintOverflow);
}

// Golden frames for the streaming-resume contract: every shape the protocols
// emit (element runs, wide fallbacks, control bytes, skip indexes, probes).
std::vector<std::vector<VvMsg>> golden_frames() {
  std::vector<std::vector<VvMsg>> frames;
  {
    std::vector<VvMsg> run;
    for (int i = 0; i < 24; ++i) {
      run.push_back(VvMsg{.kind = VvMsg::Kind::kElem,
                          .site = SiteId{static_cast<uint32_t>(i * 11)},
                          .value = 50'000 + static_cast<std::uint64_t>(i) * 7,
                          .conflict = i % 5 == 0, .segment = i % 6 == 0});
    }
    run.push_back(VvMsg{.kind = VvMsg::Kind::kHalt});
    frames.push_back(std::move(run));
  }
  frames.push_back({
      VvMsg{.kind = VvMsg::Kind::kElem, .site = SiteId{0xFFFFFFFF}, .value = ~std::uint64_t{0}},
      VvMsg{.kind = VvMsg::Kind::kElem, .site = SiteId{0}, .value = 0},
      VvMsg{.kind = VvMsg::Kind::kProbe, .site = SiteId{0x80000000}, .value = 1ull << 63},
      VvMsg{.kind = VvMsg::Kind::kSkip, .arg = 0xFFFFFFFF},
  });
  frames.push_back({
      VvMsg{.kind = VvMsg::Kind::kProbe, .site = SiteId{3}, .value = 17},
      VvMsg{.kind = VvMsg::Kind::kVerdict, .arg = 1},
      VvMsg{.kind = VvMsg::Kind::kVerdict, .arg = 0},
      VvMsg{.kind = VvMsg::Kind::kSkipped},
      VvMsg{.kind = VvMsg::Kind::kAck},
      VvMsg{.kind = VvMsg::Kind::kSkip, .arg = 7},
      VvMsg{.kind = VvMsg::Kind::kHalt},
  });
  {
    Rng rng(99);
    std::vector<VvMsg> mixed;
    std::uint64_t value = 1'000'000;
    for (int i = 0; i < 40; ++i) {
      VvMsg m;
      m.kind = VvMsg::Kind::kElem;
      m.site = SiteId{static_cast<std::uint32_t>(rng.next() >> (rng.next() % 32))};
      value += rng.range(0, 900);
      if (i % 13 == 0) value = rng.next();  // wide-value jumps
      m.value = value;
      mixed.push_back(m);
      if (i % 9 == 0) mixed.push_back(VvMsg{.kind = VvMsg::Kind::kSkipped});
    }
    frames.push_back(std::move(mixed));
  }
  return frames;
}

// Satellite: the net layer resumes decoding mid-frame after kTruncated. Split
// every golden frame at every byte boundary, decode the prefix, then hand the
// decoder the rest — the reassembled message sequence must equal the
// whole-frame oracle, with *pos parked at the incomplete message's first byte
// in between (partial progress is never lost and never double-counted).
TEST(FrameCodecStream, ResumesAfterTruncationAtEveryByteBoundary) {
  for (const std::vector<VvMsg>& msgs : golden_frames()) {
    std::vector<std::uint8_t> bytes;
    frame_encode(bytes, msgs);
    const std::vector<VvMsg> oracle = frame_decode(bytes);
    for (std::size_t split = 0; split <= bytes.size(); ++split) {
      std::size_t pos = 0;
      FrameDeltaState st;
      std::vector<VvMsg> out;
      const auto err = frame_decode_stream(bytes.data(), split, &pos, &st, &out);
      if (split == bytes.size()) {
        ASSERT_EQ(err, FrameDecodeError::kNone);
      } else if (err == FrameDecodeError::kNone) {
        ASSERT_EQ(pos, split);  // clean message boundary
      } else {
        ASSERT_EQ(err, FrameDecodeError::kTruncated);
        ASSERT_LE(pos, split);  // parked at the incomplete message's start
      }
      // Prefix decode yields an exact prefix of the oracle, nothing invented.
      ASSERT_LE(out.size(), oracle.size());
      for (std::size_t i = 0; i < out.size(); ++i) expect_msg_eq(oracle[i], out[i]);
      // Resume with the full buffer: the suffix must complete the sequence.
      ASSERT_EQ(frame_decode_stream(bytes.data(), bytes.size(), &pos, &st, &out),
                FrameDecodeError::kNone);
      ASSERT_EQ(pos, bytes.size());
      ASSERT_EQ(out.size(), oracle.size());
      for (std::size_t i = 0; i < out.size(); ++i) expect_msg_eq(oracle[i], out[i]);
    }
  }
}

// Byte-at-a-time arrival (the pathological slow client): every chunk is one
// byte, so the decoder reports kTruncated at almost every step and must keep
// resuming without corrupting the delta chain.
TEST(FrameCodecStream, ByteAtATimeArrival) {
  for (const std::vector<VvMsg>& msgs : golden_frames()) {
    std::vector<std::uint8_t> bytes;
    frame_encode(bytes, msgs);
    const std::vector<VvMsg> oracle = frame_decode(bytes);
    std::size_t pos = 0;
    FrameDeltaState st;
    std::vector<VvMsg> out;
    for (std::size_t avail = 1; avail <= bytes.size(); ++avail) {
      const auto err = frame_decode_stream(bytes.data(), avail, &pos, &st, &out);
      ASSERT_TRUE(err == FrameDecodeError::kNone || err == FrameDecodeError::kTruncated);
    }
    ASSERT_EQ(pos, bytes.size());
    ASSERT_EQ(out.size(), oracle.size());
    for (std::size_t i = 0; i < out.size(); ++i) expect_msg_eq(oracle[i], out[i]);
  }
}

// The streaming encoder is the frame encoder unrolled: one call per message
// over a shared chain produces byte-identical output.
TEST(FrameCodecStream, StreamingEncoderMatchesFrameEncoder) {
  for (const std::vector<VvMsg>& msgs : golden_frames()) {
    std::vector<std::uint8_t> whole, streamed;
    frame_encode(whole, msgs);
    FrameDeltaState st;
    for (const VvMsg& m : msgs) frame_encode_msg(streamed, m, &st);
    EXPECT_EQ(whole, streamed);
  }
}

// kUnknownTag parks *pos on the foreign byte with the chain state intact —
// this is what lets the net layer carry its control tags (HELLO/ACCEPT/
// END/DONE) in-band between codec messages and keep decoding afterwards.
TEST(FrameCodecStream, UnknownTagParksAtTheForeignByte) {
  const std::vector<VvMsg> head{
      VvMsg{.kind = VvMsg::Kind::kElem, .site = SiteId{5}, .value = 1000}};
  const std::vector<VvMsg> tail{
      VvMsg{.kind = VvMsg::Kind::kElem, .site = SiteId{6}, .value = 1001}};
  std::vector<std::uint8_t> bytes;
  FrameDeltaState enc;
  frame_encode_msg(bytes, head[0], &enc);
  const std::size_t foreign_at = bytes.size();
  bytes.push_back(0x45);  // a net-layer control byte, not a codec tag
  frame_encode_msg(bytes, tail[0], &enc);

  std::size_t pos = 0;
  FrameDeltaState st;
  std::vector<VvMsg> out;
  ASSERT_EQ(frame_decode_stream(bytes.data(), bytes.size(), &pos, &st, &out),
            FrameDecodeError::kUnknownTag);
  EXPECT_EQ(pos, foreign_at);
  ASSERT_EQ(out.size(), 1u);
  expect_msg_eq(head[0], out[0]);
  ++pos;  // the caller consumes its control byte and resumes the stream
  ASSERT_EQ(frame_decode_stream(bytes.data(), bytes.size(), &pos, &st, &out),
            FrameDecodeError::kNone);
  ASSERT_EQ(out.size(), 2u);
  expect_msg_eq(tail[0], out[1]);
}

// The aborting API keeps its trusted-input contract: feeding it a damaged
// buffer is API misuse, not a recoverable condition.
TEST(FrameCodecDeath, TruncatedFrameAbortsTheTrustedDecoder) {
  std::vector<VvMsg> msgs{
      VvMsg{.kind = VvMsg::Kind::kElem, .site = SiteId{12}, .value = 345678},
  };
  std::vector<std::uint8_t> bytes;
  frame_encode(bytes, msgs);
  ASSERT_GT(bytes.size(), 1u);
  bytes.pop_back();  // cut the value field short
  EXPECT_DEATH(frame_decode(bytes), "truncated input");
}

}  // namespace
}  // namespace optrep::vv
