// rt::OLock — the OptiQL-style versioned lock guarding the vv storage
// structures. Deterministic single-thread tests pin the epoch arithmetic,
// validation protocol, and counter semantics; the threaded tests exercise
// writer mutual exclusion through the MCS queue and the reader/writer
// epoch-consistency invariant (both meaningful under TSan, where the CI
// concurrency job runs this binary).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "rt/olock.h"

namespace optrep::rt {
namespace {

TEST(OLock, VersionAdvancesOneEpochPerWriteCycle) {
  OLock l;
  EXPECT_EQ(l.version(), 0u);
  EXPECT_FALSE(l.locked());
  for (std::uint64_t i = 0; i < 5; ++i) {
    OLockGuard g(l);
    EXPECT_TRUE(l.locked());
    // The epoch is published at unlock: inside cycle i the version still
    // reads i, and the word is odd (locked).
    EXPECT_EQ(l.version(), i);
  }
  EXPECT_FALSE(l.locked());
  EXPECT_EQ(l.version(), 5u);
}

TEST(OLock, ValidateSucceedsAcrossQuiescenceAndIsRepeatable) {
  OLock l;
  const std::uint64_t snap = l.read_begin();
  EXPECT_TRUE(l.read_validate(snap));
  EXPECT_TRUE(l.read_validate(snap));  // validation does not consume the snapshot
  EXPECT_EQ(l.counters().opt_retries, 0u);
}

TEST(OLock, WriteCycleInvalidatesInFlightSnapshot) {
  OLock l;
  const std::uint64_t snap = l.read_begin();
  { OLockGuard g(l); }
  EXPECT_FALSE(l.read_validate(snap));
  // A fresh snapshot taken after the writer retired validates again.
  const std::uint64_t snap2 = l.read_begin();
  EXPECT_TRUE(l.read_validate(snap2));
}

TEST(OLock, CountersTrackAcquisitionsRetriesAndReset) {
  OLock l;
  EXPECT_EQ(l.counters().acquisitions, 0u);
  for (int i = 0; i < 3; ++i) OLockGuard g(l);
  OLock::Counters c = l.counters();
  EXPECT_EQ(c.acquisitions, 3u);
  EXPECT_EQ(c.queue_waits, 0u);  // uncontended: nobody found a predecessor
  EXPECT_EQ(c.opt_retries, 0u);

  const std::uint64_t snap = l.read_begin();
  { OLockGuard g(l); }
  EXPECT_FALSE(l.read_validate(snap));  // one failed validation
  c = l.counters();
  EXPECT_EQ(c.acquisitions, 4u);
  EXPECT_EQ(c.opt_retries, 1u);

  l.reset_counters();
  c = l.counters();
  EXPECT_EQ(c.acquisitions, 0u);
  EXPECT_EQ(c.opt_retries, 0u);
  EXPECT_EQ(c.queue_waits, 0u);
}

TEST(OLock, OptimisticReadHelperRunsOnceWhenUncontended) {
  OLock l;
  int runs = 0;
  EXPECT_TRUE(optimistic_read(l, 8, [&] { ++runs; }));
  EXPECT_EQ(runs, 1);
}

TEST(OLock, OptimisticReadHelperExhaustsTriesUnderSelfInterference) {
  OLock l;
  // Each attempt performs a full write cycle between begin and validate, so
  // every validation fails and the helper reports failure after max_tries.
  unsigned runs = 0;
  const bool ok = optimistic_read(l, 4, [&] {
    ++runs;
    OLockGuard g(l);
  });
  EXPECT_FALSE(ok);
  EXPECT_EQ(runs, 4u);
  // The documented fallback: join the writer queue and re-run exclusively.
  {
    OLockGuard g(l);
    ++runs;
  }
  EXPECT_EQ(runs, 5u);
}

TEST(OLock, WriterMutualExclusionThroughQueue) {
  OLock l;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kIncrements = 20000;
  std::uint64_t plain = 0;  // deliberately non-atomic: guarded by the lock
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&l, &plain] {
      for (std::uint64_t i = 0; i < kIncrements; ++i) {
        OLockGuard g(l);
        ++plain;
      }
    });
  }
  for (std::thread& t : ts) t.join();
  EXPECT_EQ(plain, kThreads * kIncrements);
  const OLock::Counters c = l.counters();
  EXPECT_EQ(c.acquisitions, kThreads * kIncrements);
  EXPECT_EQ(l.version(), kThreads * kIncrements);
  EXPECT_FALSE(l.locked());
}

TEST(OLock, ValidatedReadersObserveOnlyCommittedEpochs) {
  OLock l;
  // Writer maintains b == a + 1 under the lock with release payload stores;
  // any reader whose validation succeeds must have seen one committed epoch.
  std::atomic<std::uint64_t> a{0};
  std::atomic<std::uint64_t> b{1};
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  std::vector<std::uint64_t> validated(2, 0);
  for (std::size_t r = 0; r < validated.size(); ++r) {
    readers.emplace_back([&, r] {
      while (!stop.load(std::memory_order_acquire)) {
        const std::uint64_t snap = l.read_begin();
        const std::uint64_t ra = a.load(std::memory_order_acquire);
        const std::uint64_t rb = b.load(std::memory_order_acquire);
        if (l.read_validate(snap)) {
          ASSERT_EQ(rb, ra + 1);
          ++validated[r];
        }
      }
    });
  }

  for (std::uint64_t i = 1; i <= 10000; ++i) {
    OLockGuard g(l);
    a.store(i, std::memory_order_release);
    b.store(i + 1, std::memory_order_release);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(a.load(), 10000u);
  // At minimum the post-quiescence reads validate; typically far more.
  for (std::size_t r = 0; r < validated.size(); ++r) {
    const std::uint64_t snap = l.read_begin();
    EXPECT_TRUE(l.read_validate(snap));
  }
}

}  // namespace
}  // namespace optrep::rt
