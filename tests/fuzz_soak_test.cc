// Protocol-level fuzz/soak tests.
//
// These drive the raw synchronization protocols (no harness) with random
// §2.1-conformant histories and cross-check every step against the
// traditional-vector oracle:
//   - values always converge to the element-wise max,
//   - COMPARE always agrees with ground-truth causality,
//   - all transfer modes produce identical results.
//
// This is the harness that surfaced the two missing segment-boundary cases
// in the paper's Algorithm 4 (DESIGN.md §5); it stays in-tree to keep them
// fixed. On failure it prints the offending operation sequence, greedily
// shrunk to a (locally) minimal reproducer.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>

#include "common/rng.h"
#include "vv/compare.h"
#include "vv/session.h"

namespace optrep::vv {
namespace {

struct Op {
  bool is_update;
  std::uint32_t r, s;
};

struct FuzzConfig {
  VectorKind kind{VectorKind::kSrv};
  TransferMode mode{TransferMode::kIdeal};
  std::uint32_t n_sites{6};
  std::uint32_t steps{120};
  double update_prob{0.45};
};

std::string describe(const std::vector<Op>& ops) {
  std::ostringstream out;
  for (const Op& op : ops) {
    if (op.is_update) {
      out << "U" << op.r << " ";
    } else {
      out << "S" << op.r << "<-" << op.s << " ";
    }
  }
  return out.str();
}

// Returns the index of the first failing op, or nullopt on success.
std::optional<std::size_t> run_ops(const FuzzConfig& cfg, const std::vector<Op>& ops,
                                   std::string* why) {
  std::vector<RotatingVector> vec(cfg.n_sites);
  std::vector<VersionVector> oracle(cfg.n_sites);
  for (std::size_t k = 0; k < ops.size(); ++k) {
    const Op& op = ops[k];
    if (op.is_update) {
      vec[op.r].record_update(SiteId{op.r});
      oracle[op.r].increment(SiteId{op.r});
    } else {
      const Ordering fast = compare_fast(vec[op.r], vec[op.s]);
      const Ordering truth = oracle[op.r].compare(oracle[op.s]);
      if (fast != truth) {
        *why = "COMPARE disagrees with oracle";
        return k;
      }
      if (fast == Ordering::kEqual || fast == Ordering::kAfter) continue;
      // BRV must not be fuzzed into reconciliation (its documented limit).
      if (cfg.kind == VectorKind::kBrv && fast == Ordering::kConcurrent) continue;
      SyncOptions opt;
      opt.kind = cfg.kind;
      opt.mode = cfg.mode;
      opt.cost = CostModel{.n = cfg.n_sites, .m = 1 << 16};
      opt.known_relation = fast;
      if (cfg.mode == TransferMode::kPipelined) {
        opt.net = {.latency_s = 0.001 * (k % 4),
                   .bandwidth_bits_per_s = (k % 2) != 0 ? 2e5 : 1e7};
      }
      sim::EventLoop loop;
      sync_rotating(loop, vec[op.r], vec[op.s], opt);
      oracle[op.r].join(oracle[op.s]);
      if (fast == Ordering::kConcurrent) {
        vec[op.r].record_update(SiteId{op.r});
        oracle[op.r].increment(SiteId{op.r});
      }
    }
    if (!vec[op.r].same_values(oracle[op.r])) {
      *why = "vector diverged from oracle: got " + vec[op.r].to_string() + ", want " +
             oracle[op.r].to_string();
      return k;
    }
  }
  return std::nullopt;
}

// Greedy delta-debugging: drop ops while the failure persists.
std::vector<Op> shrink(const FuzzConfig& cfg, std::vector<Op> ops) {
  std::string why;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      std::vector<Op> cand = ops;
      cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
      if (run_ops(cfg, cand, &why).has_value()) {
        ops = std::move(cand);
        changed = true;
        break;
      }
    }
  }
  return ops;
}

void fuzz(const FuzzConfig& cfg, std::uint64_t seed_lo, std::uint64_t seed_hi) {
  for (std::uint64_t seed = seed_lo; seed <= seed_hi; ++seed) {
    Rng rng(seed);
    std::vector<Op> ops;
    ops.reserve(cfg.steps);
    for (std::uint32_t step = 0; step < cfg.steps; ++step) {
      Op op;
      op.is_update = rng.chance(cfg.update_prob);
      op.r = static_cast<std::uint32_t>(rng.below(cfg.n_sites));
      do {
        op.s = static_cast<std::uint32_t>(rng.below(cfg.n_sites));
      } while (op.s == op.r);
      ops.push_back(op);
    }
    std::string why;
    const auto fail = run_ops(cfg, ops, &why);
    if (fail.has_value()) {
      ops.resize(*fail + 1);
      const auto minimal = shrink(cfg, ops);
      FAIL() << "seed " << seed << ": " << why << "\nminimal repro ("
             << minimal.size() << " ops): " << describe(minimal);
    }
  }
}

struct SoakCase {
  VectorKind kind;
  TransferMode mode;
};

class ProtocolSoak : public ::testing::TestWithParam<SoakCase> {};

TEST_P(ProtocolSoak, RandomHistoriesNeverDiverge) {
  FuzzConfig cfg;
  cfg.kind = GetParam().kind;
  cfg.mode = GetParam().mode;
  fuzz(cfg, 1, 250);
}

TEST_P(ProtocolSoak, DenseUpdateHistories) {
  FuzzConfig cfg;
  cfg.kind = GetParam().kind;
  cfg.mode = GetParam().mode;
  cfg.update_prob = 0.8;  // long vectors, rare syncs with big Δ
  cfg.steps = 200;
  fuzz(cfg, 300, 400);
}

TEST_P(ProtocolSoak, SyncHeavyHistories) {
  FuzzConfig cfg;
  cfg.kind = GetParam().kind;
  cfg.mode = GetParam().mode;
  cfg.update_prob = 0.15;  // constant reconciliation churn
  cfg.steps = 200;
  fuzz(cfg, 500, 600);
}

TEST_P(ProtocolSoak, TwoSitesPingPong) {
  FuzzConfig cfg;
  cfg.kind = GetParam().kind;
  cfg.mode = GetParam().mode;
  cfg.n_sites = 2;
  cfg.steps = 300;
  fuzz(cfg, 700, 780);
}

TEST_P(ProtocolSoak, ManySites) {
  FuzzConfig cfg;
  cfg.kind = GetParam().kind;
  cfg.mode = GetParam().mode;
  cfg.n_sites = 24;
  cfg.steps = 150;
  fuzz(cfg, 900, 960);
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAllModes, ProtocolSoak,
    ::testing::Values(SoakCase{VectorKind::kBrv, TransferMode::kIdeal},
                      SoakCase{VectorKind::kBrv, TransferMode::kPipelined},
                      SoakCase{VectorKind::kCrv, TransferMode::kIdeal},
                      SoakCase{VectorKind::kCrv, TransferMode::kStopAndWait},
                      SoakCase{VectorKind::kCrv, TransferMode::kPipelined},
                      SoakCase{VectorKind::kSrv, TransferMode::kIdeal},
                      SoakCase{VectorKind::kSrv, TransferMode::kStopAndWait},
                      SoakCase{VectorKind::kSrv, TransferMode::kPipelined}),
    [](const auto& info) {
      std::string name{to_string(info.param.kind)};
      switch (info.param.mode) {
        case TransferMode::kIdeal: name += "Ideal"; break;
        case TransferMode::kStopAndWait: name += "StopAndWait"; break;
        case TransferMode::kPipelined: name += "Pipelined"; break;
      }
      return name;
    });

}  // namespace
}  // namespace optrep::vv
