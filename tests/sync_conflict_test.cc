#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "vv/compare.h"
#include "vv/session.h"

namespace optrep::vv {
namespace {

using test::ideal;

const SiteId A{0}, B{1}, C{2}, D{3}, E{4};

TEST(SyncConflict, BehavesLikeBasicWithoutConflicts) {
  RotatingVector a;
  a.record_update(A);
  RotatingVector b = a;
  b.record_update(B);
  b.record_update(C);

  sim::EventLoop loop;
  auto rep = sync_conflict(loop, a, b, ideal(VectorKind::kCrv));
  EXPECT_TRUE(a.identical_to(b));
  EXPECT_EQ(rep.elems_redundant, 0u);
  EXPECT_EQ(rep.elems_sent, 3u);  // Δ=2 plus the halting element
}

TEST(SyncConflict, ReconciliationTagsReceivedElements) {
  RotatingVector base;
  base.record_update(A);
  RotatingVector a = base, b = base;
  a.record_update(B);
  b.record_update(C);
  ASSERT_EQ(compare_fast(a, b), Ordering::kConcurrent);

  sim::EventLoop loop;
  auto rep = sync_conflict(loop, a, b, ideal(VectorKind::kCrv));
  EXPECT_EQ(rep.initial_relation, Ordering::kConcurrent);
  // a now holds the element-wise max of both vectors.
  EXPECT_EQ(a.value(A), 1u);
  EXPECT_EQ(a.value(B), 1u);
  EXPECT_EQ(a.value(C), 1u);
  // The element modified during reconciliation carries the conflict bit.
  EXPECT_TRUE(a.conflict_bit(C));
  EXPECT_FALSE(a.conflict_bit(B));
}

TEST(SyncConflict, Section32ScenarioFixedByConflictBits) {
  // The θ1/θ2/θ3 example of §3.2: with CRV, the second synchronization does
  // not halt prematurely because (A,2) carries a conflict bit in θ3.
  RotatingVector theta1, theta2;
  theta1.record_update(B);
  theta1.record_update(A);
  theta1.record_update(A);  // <A:2, B:1>
  theta2.record_update(A);
  theta2.record_update(B);
  theta2.record_update(B);  // <B:2, A:1>

  RotatingVector theta3 = theta2;
  sim::EventLoop l1;
  sync_conflict(l1, theta3, theta1, ideal(VectorKind::kCrv));
  EXPECT_EQ(theta3.value(A), 2u);
  EXPECT_EQ(theta3.value(B), 2u);
  EXPECT_TRUE(theta3.conflict_bit(A)) << theta3.to_string();

  sim::EventLoop l2;
  sync_conflict(l2, theta1, theta3, ideal(VectorKind::kCrv));
  // Unlike SYNCB (see sync_basic_test), CRV propagates B:2 through the
  // tagged A element.
  EXPECT_EQ(theta1.value(B), 2u) << theta1.to_string();
  EXPECT_EQ(theta1.value(A), 2u);
}

TEST(SyncConflict, RedundantTransferCountsGamma) {
  // Γ grows with elements that are already known but carry conflict bits.
  RotatingVector base;
  base.record_update(A);
  RotatingVector a = base, b = base;
  a.record_update(B);
  b.record_update(C);

  // Reconcile a with b: a = <C*, B, A> (C tagged).
  sim::EventLoop l1;
  sync_conflict(l1, a, b, ideal(VectorKind::kCrv));
  // §2.2: reconciliation is followed by a local update on the receiving site.
  a.record_update(B);

  // Now b syncs from a: a = <B:2, C:1*, B…>. b already knows C.
  sim::EventLoop l2;
  auto rep = sync_conflict(l2, b, a, ideal(VectorKind::kCrv));
  EXPECT_EQ(b.value(B), 2u);
  EXPECT_EQ(b.value(C), 1u);
  EXPECT_EQ(b.value(A), 1u);
  // C was transmitted although b knew it — that is Γ.
  EXPECT_EQ(rep.elems_redundant, 1u);
}

TEST(SyncConflict, ConflictBitsClearOnLocalUpdate) {
  RotatingVector base;
  base.record_update(A);
  RotatingVector a = base, b = base;
  a.record_update(B);
  b.record_update(C);
  sim::EventLoop l1;
  sync_conflict(l1, a, b, ideal(VectorKind::kCrv));
  ASSERT_TRUE(a.conflict_bit(C));
  // A later local update on site C clears its bit again.
  a.record_update(C);
  EXPECT_FALSE(a.conflict_bit(C));
}

TEST(SyncConflict, ChainOfReconciliationsConvergesToJoin) {
  // Three-way divergence reconciled pairwise; values must converge to the
  // element-wise maximum at every step (validated against the oracle).
  RotatingVector base;
  base.record_update(A);
  RotatingVector x = base, y = base, z = base;
  x.record_update(B);
  y.record_update(C);
  z.record_update(D);
  z.record_update(E);

  VersionVector oracle = x.to_version_vector();
  oracle.join(y.to_version_vector());

  sim::EventLoop l1;
  sync_conflict(l1, x, y, ideal(VectorKind::kCrv));
  EXPECT_TRUE(x.same_values(oracle));
  x.record_update(B);  // §2.2 post-reconciliation update
  oracle = x.to_version_vector();

  oracle.join(z.to_version_vector());
  sim::EventLoop l2;
  sync_conflict(l2, x, z, ideal(VectorKind::kCrv));
  EXPECT_TRUE(x.same_values(oracle)) << x.to_string();
}

TEST(SyncConflict, EqualVectorsExchangeOnlyHaltElement) {
  RotatingVector a;
  a.record_update(A);
  a.record_update(B);
  RotatingVector b = a;
  sim::EventLoop loop;
  auto rep = sync_conflict(loop, a, b, ideal(VectorKind::kCrv));
  EXPECT_EQ(rep.elems_sent, 1u);
  EXPECT_EQ(rep.elems_applied, 0u);
}

TEST(SyncConflict, PipelinedMatchesIdealResult) {
  RotatingVector base;
  for (std::uint32_t i = 0; i < 10; ++i) base.record_update(SiteId{i});
  RotatingVector a = base, b = base;
  a.record_update(SiteId{10});
  b.record_update(SiteId{11});
  b.record_update(SiteId{12});

  RotatingVector a_pipe = a;
  auto opt = ideal(VectorKind::kCrv, 16);
  sim::EventLoop l1;
  sync_conflict(l1, a, b, opt);

  auto pipe = opt;
  pipe.mode = TransferMode::kPipelined;
  pipe.net = {.latency_s = 0.02, .bandwidth_bits_per_s = 5e4};
  sim::EventLoop l2;
  sync_conflict(l2, a_pipe, b, pipe);
  EXPECT_TRUE(a.identical_to(a_pipe));
}

}  // namespace
}  // namespace optrep::vv
