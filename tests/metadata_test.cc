#include <gtest/gtest.h>

#include "metadata/hash_history.h"
#include "metadata/predecessor_set.h"

namespace optrep::meta {
namespace {

const SiteId A{0}, B{1};

TEST(HashHistory, PristineStatesAreEqual) {
  HashHistory a, b;
  EXPECT_EQ(a.compare(b), vv::Ordering::kEqual);
  EXPECT_EQ(a.storage_bytes(), 0u);
}

TEST(HashHistory, UpdateCreatesOrderedVersions) {
  HashHistory a;
  a.record_update(UpdateId{A, 1});
  HashHistory b = a;
  b.record_update(UpdateId{B, 1});
  EXPECT_EQ(a.compare(b), vv::Ordering::kBefore);
  EXPECT_EQ(b.compare(a), vv::Ordering::kAfter);
}

TEST(HashHistory, DivergenceIsConcurrent) {
  HashHistory base;
  base.record_update(UpdateId{A, 1});
  HashHistory x = base, y = base;
  x.record_update(UpdateId{A, 2});
  y.record_update(UpdateId{B, 1});
  EXPECT_EQ(x.compare(y), vv::Ordering::kConcurrent);
}

TEST(HashHistory, MergeConvergesDeterministically) {
  HashHistory base;
  base.record_update(UpdateId{A, 1});
  HashHistory x = base, y = base;
  x.record_update(UpdateId{A, 2});
  y.record_update(UpdateId{B, 1});
  HashHistory mx = x, my = y;
  mx.merge(y);
  my.merge(x);
  // Same pair of heads → same merge version on both sites.
  EXPECT_EQ(mx.head(), my.head());
  EXPECT_EQ(mx.compare(my), vv::Ordering::kEqual);
}

TEST(HashHistory, FastForwardAdoptsHead) {
  HashHistory a;
  a.record_update(UpdateId{A, 1});
  HashHistory b = a;
  b.record_update(UpdateId{B, 1});
  a.fast_forward(b);
  EXPECT_EQ(a.compare(b), vv::Ordering::kEqual);
}

TEST(HashHistory, StorageGrowsWithVersionsNotSites) {
  HashHistory a;
  for (int i = 1; i <= 10; ++i) a.record_update(UpdateId{A, static_cast<std::uint64_t>(i)});
  EXPECT_EQ(a.version_count(), 10u);
  EXPECT_EQ(a.storage_bytes(), 10 * HashHistory::kBytesPerEntry);
}

TEST(PredecessorSet, CompareBySubset) {
  PredecessorSet a, b;
  a.record_update(UpdateId{A, 1});
  b.record_update(UpdateId{A, 1});
  EXPECT_EQ(a.compare(b), vv::Ordering::kEqual);
  b.record_update(UpdateId{B, 1});
  EXPECT_EQ(a.compare(b), vv::Ordering::kBefore);
  a.record_update(UpdateId{A, 2});
  EXPECT_EQ(a.compare(b), vv::Ordering::kConcurrent);
}

TEST(PredecessorSet, JoinUnions) {
  PredecessorSet a, b;
  a.record_update(UpdateId{A, 1});
  b.record_update(UpdateId{B, 1});
  a.join(b);
  EXPECT_TRUE(a.contains(UpdateId{B, 1}));
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.compare(b), vv::Ordering::kAfter);
}

TEST(PredecessorSet, StorageGrowsWithTotalUpdates) {
  // Observation 2.1: at least one entry per active site, and it keeps
  // growing with updates — worse than a version vector.
  PredecessorSet p;
  for (std::uint32_t s = 0; s < 8; ++s) {
    for (std::uint64_t u = 1; u <= 5; ++u) p.record_update(UpdateId{SiteId{s}, u});
  }
  EXPECT_EQ(p.size(), 40u);
  EXPECT_EQ(p.storage_bytes(), 40 * PredecessorSet::kBytesPerEntry);
}

}  // namespace
}  // namespace optrep::meta
