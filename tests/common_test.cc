#include <gtest/gtest.h>

#include <set>

#include "common/cost_model.h"
#include "common/ids.h"
#include "common/rng.h"

namespace optrep {
namespace {

TEST(Ids, SiteNamesMatchPaperConvention) {
  EXPECT_EQ(site_name(SiteId{0}), "A");
  EXPECT_EQ(site_name(SiteId{7}), "H");
  EXPECT_EQ(site_name(SiteId{25}), "Z");
  EXPECT_EQ(site_name(SiteId{26}), "S26");
}

TEST(Ids, UpdateIdOrderingAndNames) {
  UpdateId a{SiteId{0}, 1};
  UpdateId b{SiteId{0}, 2};
  UpdateId c{SiteId{1}, 1};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(update_name(a), "A:1");
}

TEST(Ids, StrongTypesHashDistinctly) {
  std::set<std::size_t> hashes;
  for (std::uint32_t i = 0; i < 100; ++i) {
    hashes.insert(std::hash<SiteId>{}(SiteId{i}));
  }
  EXPECT_EQ(hashes.size(), 100u);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.below(17), 17u);
    const auto v = r.range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r(3);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.chance(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ForkIsIndependent) {
  Rng a(42);
  Rng child = a.fork();
  Rng b(42);
  (void)b.fork();
  // Parent stream after fork still matches a re-created parent.
  EXPECT_EQ(a.next(), b.next());
  // Child differs from parent stream.
  Rng a2(42);
  (void)a2.next();
  EXPECT_NE(child.next(), a2.next());
}

TEST(CostModel, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 1u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(CostModel, FieldWidths) {
  CostModel cm{.n = 256, .m = 1024};
  EXPECT_EQ(cm.site_bits(), 8u);
  EXPECT_EQ(cm.value_bits(), 10u);
  // BRV element: 1 + log n + log m = log(2mn).
  EXPECT_EQ(cm.elem_bits(0), 19u);
  EXPECT_EQ(cm.elem_bits(1), 20u);  // CRV: log(4mn)
  EXPECT_EQ(cm.elem_bits(2), 21u);  // SRV: log(8mn)
}

TEST(CostModel, Table2UpperBounds) {
  CostModel cm{.n = 256, .m = 1024};
  // Table 2: BRV ≤ n·log(2mn)+2, CRV ≤ n·log(4mn)+2,
  //          SRV ≤ n·log(8mn)+n·log(2n)+1.
  EXPECT_EQ(cm.brv_upper_bound_bits(), 256 * 19 + 2u);
  EXPECT_EQ(cm.crv_upper_bound_bits(), 256 * 20 + 2u);
  EXPECT_EQ(cm.srv_upper_bound_bits(), 256 * 21 + 256 * 9 + 1u);
  // COMPARE: 2·log(mn) bits (§3.3).
  EXPECT_EQ(2 * cm.compare_probe_bits(), 2 * (8 + 10u));
}

}  // namespace
}  // namespace optrep
