// Edge cases and misuse guards across the library: death tests for contract
// violations and behaviour at extreme scales.
#include <gtest/gtest.h>

#include "graph/sync_graph.h"
#include "tests/test_util.h"
#include "vv/codec.h"
#include "vv/session.h"
#include "workload/trace.h"

namespace optrep {
namespace {

using vv::RotatingVector;
using vv::VectorKind;

TEST(EdgeCases, EventLoopRejectsSchedulingIntoThePast) {
  sim::EventLoop loop;
  loop.schedule(5.0, [] {});
  loop.run();
  EXPECT_DEATH(loop.schedule(1.0, [] {}), "cannot schedule into the past");
}

TEST(EdgeCases, LinkWithoutReceiverDies) {
  sim::EventLoop loop;
  sim::Link<int> link(&loop, {});
  EXPECT_DEATH(link.send(1, 8, 1), "link has no receiver");
}

TEST(EdgeCases, BitReaderPastEndDies) {
  vv::BitWriter w;
  w.put(0b1, 1);
  vv::BitReader r(w.bytes());
  r.get(1);
  // The buffer has 7 padding bits in its single byte; reading beyond dies.
  EXPECT_DEATH(r.get(16), "read past end of buffer");
}

TEST(EdgeCases, BitWriterRejectsOverwideValues) {
  vv::BitWriter w;
  EXPECT_DEATH(w.put(4, 2), "value does not fit field");
}

TEST(EdgeCases, RotateAfterUnknownPrevDies) {
  RotatingVector v;
  v.record_update(SiteId{0});
  EXPECT_DEATH(v.rotate_after(SiteId{9}, SiteId{0}), "prev element not present");
}

TEST(EdgeCases, GraphMisuseDies) {
  graph::CausalGraph g;
  EXPECT_DEATH(g.append(UpdateId{SiteId{0}, 1}), "append\\(\\) on an empty graph");
  g.create(UpdateId{SiteId{0}, 1});
  EXPECT_DEATH(g.create(UpdateId{SiteId{0}, 2}), "create\\(\\) on a non-empty graph");
  EXPECT_DEATH(g.append(UpdateId{SiteId{0}, 1}), "duplicate operation id");
  EXPECT_DEATH(g.merge(UpdateId{SiteId{0}, 2}, UpdateId{SiteId{9}, 9}),
               "merge head must be present");
}

TEST(EdgeCases, SingleSiteSystemDegenerates) {
  // n = 1: every vector has one element; COMPARE and SYNC stay trivial.
  RotatingVector a, b;
  b.record_update(SiteId{0});
  b.record_update(SiteId{0});
  sim::EventLoop loop;
  auto rep = sync_rotating(loop, a, b, test::ideal(VectorKind::kSrv, 2));
  EXPECT_EQ(a.value(SiteId{0}), 2u);
  EXPECT_EQ(rep.elems_applied, 1u);
}

TEST(EdgeCases, LargeValuesSurviveSyncAndSnapshot) {
  RotatingVector b;
  b.record_update(SiteId{0});
  b.set_element(SiteId{0}, 0xFFFFFFFFFFFFULL, false, false);  // 48-bit count
  RotatingVector a;
  sim::EventLoop loop;
  auto opt = test::ideal(VectorKind::kSrv, 4, /*m=*/std::uint64_t{1} << 48);
  sync_rotating(loop, a, b, opt);
  EXPECT_EQ(a.value(SiteId{0}), 0xFFFFFFFFFFFFULL);
  EXPECT_TRUE(vv::decode_vector(vv::encode_vector(a)).identical_to(a));
}

TEST(EdgeCases, TenThousandSiteVectorRemainsFast) {
  // O(1) update/rotate at scale: building and syncing a 10⁴-element vector
  // must complete comfortably within the test budget.
  constexpr std::uint32_t kN = 10000;
  RotatingVector b;
  for (std::uint32_t i = 0; i < kN; ++i) b.record_update(SiteId{i});
  RotatingVector a = b;
  b.record_update(SiteId{42});
  sim::EventLoop loop;
  auto rep = sync_rotating(loop, a, b, test::ideal(VectorKind::kSrv, kN));
  EXPECT_EQ(rep.elems_applied, 1u);
  EXPECT_EQ(rep.elems_sent, 2u);  // the fresh element + the halt trigger
  EXPECT_EQ(a.value(SiteId{42}), 2u);
}

TEST(EdgeCases, DeepGraphSyncDoesNotOverflow) {
  // 50k-node chain: iterative DFS (no recursion) must handle it.
  graph::CausalGraph b;
  b.create(UpdateId{SiteId{0}, 1});
  for (std::uint64_t i = 2; i <= 50000; ++i) b.append(UpdateId{SiteId{0}, i});
  graph::CausalGraph a;
  graph::GraphSyncOptions opt;
  opt.mode = vv::TransferMode::kIdeal;
  opt.cost = CostModel{.n = 4, .m = 1 << 20};
  sim::EventLoop loop;
  auto rep = sync_graph(loop, a, b, opt);
  EXPECT_EQ(rep.nodes_new, 50000u);
  a.set_sink(b.sink());
  EXPECT_TRUE(a.validate_closed());
}

TEST(EdgeCases, ZeroStepTraceIsHarmless) {
  wl::GeneratorConfig g;
  g.n_sites = 2;
  g.n_objects = 1;
  g.steps = 0;
  const wl::Trace t = wl::generate(g);
  EXPECT_EQ(t.events.size(), 1u);  // just the creation
  repl::StateSystem::Config cfg;
  cfg.n_sites = 2;
  cfg.cost = CostModel{.n = 2, .m = 2};
  repl::StateSystem sys(cfg);
  const auto stats = wl::run_state(sys, t);
  EXPECT_TRUE(stats.eventually_consistent);
}

}  // namespace
}  // namespace optrep
