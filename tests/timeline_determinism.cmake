# Timeline thread-count determinism gate: run the same optrep_cli sweep with
# --threads=1 and --threads=8 and require the emitted optrep.timeline/v1
# document to be byte-identical. The sweep timeline is assembled after the
# join from rows in config order, so any divergence here is a scheduling leak
# into the telemetry path.
#
# Invoked from ctest:  cmake -DCLI=<optrep_cli binary> -DOUT=<scratch dir>
#                            -P timeline_determinism.cmake
if(NOT DEFINED CLI OR NOT DEFINED OUT)
  message(FATAL_ERROR "pass -DCLI=<binary> and -DOUT=<scratch dir>")
endif()

file(REMOVE_RECURSE ${OUT})
file(MAKE_DIRECTORY ${OUT})
foreach(threads 1 8)
  execute_process(COMMAND ${CLI} sweep --seeds=8 --sites=8 --steps=200
                          --loss=0.02 --timeline-out=${OUT}/t${threads}.json
                          --threads=${threads}
                  RESULT_VARIABLE rc
                  OUTPUT_QUIET ERROR_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${CLI} sweep failed with --threads=${threads}: ${rc}")
  endif()
  if(NOT EXISTS ${OUT}/t${threads}.json)
    message(FATAL_ERROR "sweep with --threads=${threads} wrote no timeline")
  endif()
endforeach()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${OUT}/t1.json ${OUT}/t8.json
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "timeline differs between --threads=1 and --threads=8")
endif()
message(STATUS "timeline byte-identical across thread counts")
