#include <gtest/gtest.h>

#include "vv/rotating_vector.h"

namespace optrep::vv {
namespace {

const SiteId A{0}, B{1}, C{2}, D{3};

// Regression for the free-list growth bug the §7 pruning extension exposed:
// before slot compaction, every erase() parked a dead slot on free_slots_
// forever when inserts targeted fresh sites, so column height (and
// memory_bytes) grew monotonically with retirement churn. erase() now
// compacts once dead slots outnumber live elements, keeping height O(live).
TEST(RotatingVector, PruningChurnKeepsSlotCountBounded) {
  RotatingVector v;
  constexpr std::uint32_t kLive = 8;
  for (std::uint32_t i = 0; i < kLive; ++i) v.record_update(SiteId{i});
  const std::uint64_t steady_bytes = [&] {
    // One churn burst to let columns and index reach their steady capacity.
    for (std::uint32_t i = 0; i < 64; ++i) {
      v.erase(SiteId{i});
      v.record_update(SiteId{kLive + i});
    }
    return v.memory_bytes();
  }();
  for (std::uint32_t i = 64; i < 2000; ++i) {
    v.erase(SiteId{i});                    // retire the oldest live site
    v.record_update(SiteId{kLive + i});    // admit a brand-new one
    ASSERT_EQ(v.size(), kLive);
    // Dead slots never outnumber live elements by more than one erase.
    ASSERT_LE(v.free_slot_count(), kLive);
    ASSERT_LE(v.slot_count(), 2 * kLive + 1);
  }
  EXPECT_EQ(v.memory_bytes(), steady_bytes);  // footprint stopped growing
  // The survivors (sites 2000..2007) kept their values through relocations.
  EXPECT_EQ(v.size(), kLive);
  for (std::uint32_t s = 2000; s < 2000 + kLive; ++s) {
    EXPECT_EQ(v.value(SiteId{s}), 1u) << s;
  }
}

std::vector<SiteId> order_sites(const RotatingVector& v) {
  std::vector<SiteId> out;
  for (const auto& e : v) out.push_back(e.site);  // exercises the iterator
  return out;
}

TEST(RotatingVector, StartsEmpty) {
  RotatingVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(v.front().has_value());
  EXPECT_FALSE(v.back().has_value());
  EXPECT_EQ(v.value(A), 0u);
}

TEST(RotatingVector, UpdateRotatesToFront) {
  RotatingVector v;
  v.record_update(A);
  v.record_update(B);
  v.record_update(C);
  // §3.1: the most recent updater is ⌊v⌋.
  EXPECT_EQ(order_sites(v), (std::vector<SiteId>{C, B, A}));
  EXPECT_EQ(v.front()->site, C);
  EXPECT_EQ(v.back()->site, A);

  v.record_update(A);
  EXPECT_EQ(order_sites(v), (std::vector<SiteId>{A, C, B}));
  EXPECT_EQ(v.value(A), 2u);
}

TEST(RotatingVector, RepeatedUpdateKeepsFront) {
  RotatingVector v;
  v.record_update(A);
  v.record_update(A);
  v.record_update(A);
  EXPECT_EQ(v.value(A), 3u);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v.front()->site, A);
}

TEST(RotatingVector, UpdateClearsConflictBit) {
  RotatingVector v;
  v.record_update(A);
  v.set_conflict_bit(A, true);
  EXPECT_TRUE(v.conflict_bit(A));
  v.record_update(A);
  // §3.2: the bit is reset whenever v[i] is incremented by a local update.
  EXPECT_FALSE(v.conflict_bit(A));
}

TEST(RotatingVector, NextWalksTowardBack) {
  RotatingVector v;
  v.record_update(A);
  v.record_update(B);
  EXPECT_EQ(*v.next(B), A);
  EXPECT_FALSE(v.next(A).has_value());
}

TEST(RotatingVector, RotateAfterInsertsUnknownElement) {
  RotatingVector v;
  v.record_update(A);
  // A receiver rotates an incoming element it has never seen (Alg 2 line 7).
  v.rotate_after(std::nullopt, B);
  v.set_element(B, 5, false, false);
  EXPECT_EQ(order_sites(v), (std::vector<SiteId>{B, A}));
  EXPECT_EQ(v.value(B), 5u);
}

TEST(RotatingVector, RotateAfterMovesBehindPrev) {
  RotatingVector v;
  v.record_update(A);
  v.record_update(B);
  v.record_update(C);  // <C, B, A>
  v.rotate_after(C, A);
  EXPECT_EQ(order_sites(v), (std::vector<SiteId>{C, A, B}));
}

TEST(RotatingVector, RotateNoOpWhenAlreadyInPlace) {
  RotatingVector v;
  v.record_update(A);
  v.record_update(B);  // <B, A>
  v.set_segment_bit(B, true);
  v.rotate_after(std::nullopt, B);  // already at front
  // A no-op rotate must not run the segment-bit carry.
  EXPECT_TRUE(v.segment_bit(B));
  EXPECT_FALSE(v.segment_bit(A));
  v.rotate_after(B, A);  // already right after B
  EXPECT_EQ(order_sites(v), (std::vector<SiteId>{B, A}));
}

TEST(RotatingVector, SegmentBitCarriesToPredecessorOnRotate) {
  RotatingVector v;
  v.record_update(A);
  v.record_update(B);
  v.record_update(C);  // <C, B, A>
  v.set_segment_bit(B, true);  // segments: {C, B}, {A}
  // §4: rotating B out must move the boundary to its predecessor C.
  v.record_update(B);  // B rotates to front (value 2)
  EXPECT_EQ(order_sites(v), (std::vector<SiteId>{B, C, A}));
  EXPECT_TRUE(v.segment_bit(C));
  EXPECT_FALSE(v.segment_bit(B));
}

TEST(RotatingVector, FrontSingletonSegmentKeepsBitOnRepeatUpdate) {
  RotatingVector v;
  v.record_update(A);
  v.record_update(B);  // <B, A>
  v.set_segment_bit(B, true);  // segments: {B}, {A}
  v.record_update(B);
  // B is already ⌊v⌋, so the rotate is positionally a no-op and the boundary
  // stays on B: the fresh element forms a closed singleton segment. This is a
  // finer segmentation than strictly necessary, which is always safe (a skip
  // can only under-approximate).
  EXPECT_TRUE(v.segment_bit(B));
  EXPECT_FALSE(v.segment_bit(A));
}

TEST(RotatingVector, SetElementPreservesPosition) {
  RotatingVector v;
  v.record_update(A);
  v.record_update(B);
  v.set_element(A, 7, true, true);
  EXPECT_EQ(order_sites(v), (std::vector<SiteId>{B, A}));
  EXPECT_EQ(v.value(A), 7u);
  EXPECT_TRUE(v.conflict_bit(A));
  EXPECT_TRUE(v.segment_bit(A));
}

TEST(RotatingVector, SetElementInsertsAtFrontWhenAbsent) {
  RotatingVector v;
  v.record_update(A);
  v.set_element(D, 4, false, false);
  EXPECT_EQ(v.front()->site, D);
  EXPECT_EQ(v.value(D), 4u);
}

TEST(RotatingVector, ToVersionVectorMatchesValues) {
  RotatingVector v;
  v.record_update(A);
  v.record_update(B);
  v.record_update(A);
  const VersionVector vv = v.to_version_vector();
  EXPECT_EQ(vv.value(A), 2u);
  EXPECT_EQ(vv.value(B), 1u);
  EXPECT_TRUE(v.same_values(vv));
}

TEST(RotatingVector, SameValuesDetectsMismatch) {
  RotatingVector v;
  v.record_update(A);
  VersionVector oracle;
  oracle.set(A, 2);
  EXPECT_FALSE(v.same_values(oracle));
  oracle.set(A, 1);
  EXPECT_TRUE(v.same_values(oracle));
  oracle.set(B, 1);
  EXPECT_FALSE(v.same_values(oracle));
}

TEST(RotatingVector, ToStringShowsOrderAndBits) {
  RotatingVector v;
  v.record_update(B);
  v.record_update(A);  // <A:1, B:1>
  v.set_conflict_bit(B, true);
  v.set_segment_bit(A, true);
  EXPECT_EQ(v.to_string(), "<A:1|, B:1*>");
}

TEST(RotatingVector, IdenticalToComparesOrderValuesAndBits) {
  RotatingVector u, v;
  u.record_update(A);
  u.record_update(B);
  v.record_update(A);
  v.record_update(B);
  EXPECT_TRUE(u.identical_to(v));
  v.set_conflict_bit(A, true);
  EXPECT_FALSE(u.identical_to(v));
}

TEST(RotatingVector, ManySitesStressOrderIntegrity) {
  RotatingVector v;
  constexpr std::uint32_t kSites = 500;
  for (std::uint32_t round = 0; round < 3; ++round) {
    for (std::uint32_t i = 0; i < kSites; ++i) v.record_update(SiteId{i});
  }
  EXPECT_EQ(v.size(), kSites);
  auto elems = v.in_order();
  ASSERT_EQ(elems.size(), kSites);
  // Order: most recent updater first → site kSites-1 down to 0.
  for (std::uint32_t i = 0; i < kSites; ++i) {
    EXPECT_EQ(elems[i].site, SiteId{kSites - 1 - i});
    EXPECT_EQ(elems[i].value, 3u);
  }
}

}  // namespace
}  // namespace optrep::vv
