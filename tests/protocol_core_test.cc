// Direct adversarial fuzzing of the sans-I/O protocol cores.
//
// No event loop, no links, no clocks: the cores are pumped over in-memory
// FIFO queues by a harness that drops, duplicates, reorders and corrupts
// messages at delivery time. This exercises exactly the robustness contract
// in protocol/core.h — a core must tolerate ANY event sequence without
// aborting — and the recovery model: a faulted attempt may leave the
// receiver short or wrong, but restarting from the original receiver state
// (what sync_with_recovery does) must converge to the element-wise maximum
// once a fault-free attempt runs.
#include <gtest/gtest.h>

#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "vv/compare.h"
#include "vv/protocol/compare_core.h"
#include "vv/protocol/receiver_core.h"
#include "vv/protocol/sender_core.h"
#include "vv/rotating_vector.h"

namespace optrep::vv::protocol {
namespace {

struct FaultPlan {
  double drop{0};
  double dup{0};
  double reorder{0};
  double corrupt{0};
};

// Random control-plane garbage. Element values stay 0 on purpose: the wire
// model's checksum rules out silently corrupted payloads, so an element that
// would *apply* (value above the receiver's) can never materialize from thin
// air — but every other impossible kind/flag/arg combination can.
VvMsg garbage_msg(Rng& rng) {
  VvMsg m;
  m.kind = static_cast<VvMsg::Kind>(rng.range(0, 6));
  m.site = SiteId{static_cast<std::uint32_t>(rng.range(0, 1 << 10))};
  m.conflict = rng.chance(0.5);
  m.segment = rng.chance(0.5);
  m.arg = rng.range(0, 1 << 10);
  return m;
}

// Pumps one sender core and one receiver core over two lossy FIFO queues
// until no deliverable event remains (drained queues, no parked pump).
template <typename ReceiverCore>
class CoreHarness {
 public:
  CoreHarness(ElementSenderCore::Config scfg, const RotatingVector* b,
              ReceiverCore receiver, Rng& rng, FaultPlan faults)
      : sender_(scfg, b), receiver_(std::move(receiver)), rng_(rng), faults_(faults) {}

  void run() {
    Actions acts;
    sender_.step(Event::start(), acts);
    dispatch_sender(acts);
    std::uint64_t steps = 0;
    while (steps++ < 200000) {
      // Pick uniformly among the available moves so every interleaving of
      // forward delivery, reverse delivery and pump firing is reachable.
      int moves[3];
      int n = 0;
      if (!fwd_.empty()) moves[n++] = 0;
      if (!rev_.empty()) moves[n++] = 1;
      if (pump_pending_) moves[n++] = 2;
      if (n == 0) break;
      switch (moves[rng_.range(0, n - 1)]) {
        case 0: deliver(fwd_, /*to_receiver=*/true); break;
        case 1: deliver(rev_, /*to_receiver=*/false); break;
        case 2: {
          pump_pending_ = false;
          Actions out;
          sender_.step(Event::link_free(), out);
          dispatch_sender(out);
          break;
        }
      }
    }
    EXPECT_LT(steps, 200000u) << "harness failed to quiesce (livelock)";
  }

  const ElementSenderCore& sender() const { return sender_; }
  const ReceiverCore& receiver() const { return receiver_; }

 private:
  void deliver(std::deque<VvMsg>& q, bool to_receiver) {
    std::size_t idx = 0;
    if (q.size() > 1 && rng_.chance(faults_.reorder)) idx = 1;  // jump the queue
    VvMsg m = q[idx];
    // The fault model assumes a frame checksum: every in-flight corruption is
    // detected and discarded (silent corruption is out of scope), so at this
    // layer corrupt behaves like drop.
    if (rng_.chance(faults_.corrupt) || rng_.chance(faults_.drop)) {
      q.erase(q.begin() + static_cast<std::ptrdiff_t>(idx));
      return;
    }
    if (!rng_.chance(faults_.dup)) {
      q.erase(q.begin() + static_cast<std::ptrdiff_t>(idx));  // else redeliver later
    }
    Actions out;
    if (to_receiver) {
      receiver_.step(Event::msg_arrival(m), out);
      dispatch_receiver(out);
    } else {
      sender_.step(Event::msg_arrival(m), out);
      dispatch_sender(out);
    }
  }

  void dispatch_sender(const Actions& acts) {
    for (const Action& a : acts) {
      switch (a.type) {
        case Action::Type::kSend:
        case Action::Type::kSendRevocable:
          fwd_.push_back(a.msg);
          break;
        case Action::Type::kPumpWhenFree:
        case Action::Type::kRepumpAtResume:
          pump_pending_ = true;
          break;
        default:
          break;  // revoke/capture/finish/traces: transport concerns
      }
    }
  }

  void dispatch_receiver(const Actions& acts) {
    for (const Action& a : acts) {
      if (a.type == Action::Type::kSend) rev_.push_back(a.msg);
    }
  }

  ElementSenderCore sender_;
  ReceiverCore receiver_;
  Rng& rng_;
  FaultPlan faults_;
  std::deque<VvMsg> fwd_, rev_;
  bool pump_pending_{false};
};

// §2.1-conformant pair from a gossip world: each replica increments only its
// own site's counter, and may adopt another replica's full state when that
// state covers its own (the resulting vector is exactly what a fresh replica
// pulling everything would hold, so every world state is reachable by a real
// history). Drawing both vectors from one world keeps the rotation-order
// invariant the receiver-halt rule relies on — independent random vectors can
// coincidentally agree on an element's value without sharing the history
// behind it, which no real version-vector run can do (element s is only ever
// incremented at site s).
struct VecPair {
  RotatingVector a;
  RotatingVector b;
};

std::optional<VecPair> try_world_pair(Rng& rng, std::uint32_t n_sites,
                                      bool want_concurrent) {
  std::vector<RotatingVector> w(n_sites);
  const std::uint64_t steps = rng.range(20, 80);
  for (std::uint64_t i = 0; i < steps; ++i) {
    const auto r = static_cast<std::uint32_t>(rng.range(0, n_sites - 1));
    if (rng.chance(0.55)) {
      w[r].record_update(SiteId{r});
    } else {
      const auto s = static_cast<std::uint32_t>(rng.range(0, n_sites - 1));
      if (s != r && compare_full(w[r], w[s]) == Ordering::kBefore) w[r] = w[s];
    }
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> cands;
  for (std::uint32_t i = 0; i < n_sites; ++i)
    for (std::uint32_t j = 0; j < n_sites; ++j) {
      if (i == j) continue;
      const Ordering rel = compare_full(w[i], w[j]);
      if (want_concurrent ? rel == Ordering::kConcurrent : rel == Ordering::kBefore)
        cands.push_back({i, j});
    }
  if (cands.empty()) return std::nullopt;
  const auto [i, j] = cands[rng.range(0, cands.size() - 1)];
  return VecPair{w[i], w[j]};
}

VecPair make_pair_(Rng& rng, std::uint32_t n_sites, bool want_concurrent) {
  for (;;) {
    if (auto p = try_world_pair(rng, n_sites, want_concurrent)) return *p;
  }
}

bool is_elementwise_max(const RotatingVector& a, const RotatingVector& orig,
                        const RotatingVector& b) {
  for (auto it = b.begin(); it != b.end(); ++it)
    if (a.value(it->site) != std::max(orig.value(it->site), it->value)) return false;
  for (auto it = orig.begin(); it != orig.end(); ++it)
    if (a.value(it->site) < it->value) return false;
  return true;
}

enum class Algo { kBasic, kConflict, kSkip };

template <typename Fn>
void run_attempt(Algo algo, bool pipelined, const RotatingVector& b, RotatingVector& a,
                 bool concurrent, Rng& rng, FaultPlan faults, Fn&& check) {
  ElementSenderCore::Config scfg;
  scfg.skip_enabled = algo == Algo::kSkip;
  scfg.pipelined = pipelined;
  switch (algo) {
    case Algo::kBasic: {
      CoreHarness<BasicReceiverCore> h(scfg, &b, BasicReceiverCore(pipelined, &a), rng,
                                       faults);
      h.run();
      check(h.receiver().counters());
      break;
    }
    case Algo::kConflict: {
      CoreHarness<ConflictReceiverCore> h(
          scfg, &b, ConflictReceiverCore(pipelined, &a, concurrent), rng, faults);
      h.run();
      check(h.receiver().counters());
      break;
    }
    case Algo::kSkip: {
      CoreHarness<SkipReceiverCore> h(
          scfg, &b, SkipReceiverCore(pipelined, &a, concurrent), rng, faults);
      h.run();
      check(h.receiver().counters());
      break;
    }
  }
}

// Lossy attempts restart from the original receiver state (the
// sync_with_recovery model); a fault-free attempt must then produce exactly
// the element-wise maximum (Theorem 3.1) for every algorithm and mode.
TEST(ProtocolCoreFuzz, LossyAttemptsThenCleanRetryConverge) {
  Rng rng(20260807);
  const FaultPlan lossy{.drop = 0.15, .dup = 0.1, .reorder = 0.15, .corrupt = 0.08};
  for (int iter = 0; iter < 120; ++iter) {
    for (Algo algo : {Algo::kBasic, Algo::kConflict, Algo::kSkip}) {
      for (bool pipelined : {true, false}) {
        const bool concurrent = algo != Algo::kBasic && rng.chance(0.5);
        VecPair p = make_pair_(rng, 6, concurrent);
        const RotatingVector original = p.a;
        bool converged = false;
        const int max_attempts = 6;
        for (int attempt = 0; attempt < max_attempts && !converged; ++attempt) {
          p.a = original;  // every attempt restarts from the pre-sync state
          const FaultPlan plan = attempt == max_attempts - 1 ? FaultPlan{} : lossy;
          run_attempt(algo, pipelined, p.b, p.a, concurrent, rng, plan,
                      [](const ReceiverCounters&) {});
          converged = is_elementwise_max(p.a, original, p.b);
        }
        EXPECT_TRUE(converged) << "iter " << iter << " algo " << (int)algo
                               << " pipelined " << pipelined;
      }
    }
  }
}

// Fault-free runs through the in-memory harness (uniformly random event
// interleaving, still FIFO per direction) must converge on the first
// attempt and classify every element without protocol violations.
TEST(ProtocolCoreFuzz, FaultFreeHarnessConvergesFirstAttempt) {
  Rng rng(99173);
  for (int iter = 0; iter < 200; ++iter) {
    for (Algo algo : {Algo::kBasic, Algo::kConflict, Algo::kSkip}) {
      for (bool pipelined : {true, false}) {
        const bool concurrent = algo != Algo::kBasic && rng.chance(0.5);
        VecPair p = make_pair_(rng, 5, concurrent);
        const RotatingVector original = p.a;
        run_attempt(algo, pipelined, p.b, p.a, concurrent, rng, FaultPlan{},
                    [](const ReceiverCounters& c) { EXPECT_EQ(c.violations, 0u); });
        EXPECT_TRUE(is_elementwise_max(p.a, original, p.b))
            << "iter " << iter << " algo " << (int)algo << " pipelined " << pipelined;
      }
    }
  }
}

// Pure garbage: every core must absorb arbitrary event sequences — random
// message kinds and fields, spurious link-free ticks, repeated starts, an
// abort in the middle — without crashing. Impossible wire messages surface
// as counted violations, never as failures.
TEST(ProtocolCoreFuzz, CoresTolerateArbitraryEventSequences) {
  Rng rng(5551212);
  for (int iter = 0; iter < 300; ++iter) {
    VecPair p = make_pair_(rng, 4, rng.chance(0.5));
    ElementSenderCore::Config scfg;
    scfg.skip_enabled = rng.chance(0.5);
    scfg.pipelined = rng.chance(0.5);
    ElementSenderCore sender(scfg, &p.b);
    BasicReceiverCore basic(scfg.pipelined, &p.a);
    RotatingVector a2 = p.a;
    ConflictReceiverCore conflict(scfg.pipelined, &a2, rng.chance(0.5));
    RotatingVector a3 = p.a;
    SkipReceiverCore skip(scfg.pipelined, &a3, rng.chance(0.5));
    CompareCore cmp(&p.a);
    Actions out;
    const int events = static_cast<int>(rng.range(10, 80));
    for (int e = 0; e < events; ++e) {
      Event ev;
      switch (rng.range(0, 3)) {
        case 0: ev = Event::start(); break;
        case 1: ev = Event::msg_arrival(garbage_msg(rng)); break;
        case 2: ev = Event::link_free(); break;
        case 3: ev = Event::abort(); break;
      }
      out.clear();
      sender.step(ev, out);
      out.clear();
      basic.step(ev, out);
      out.clear();
      conflict.step(ev, out);
      out.clear();
      skip.step(ev, out);
      out.clear();
      cmp.step(ev, out);
    }
  }
}

// COMPARE over the in-memory queues, including duplicated delivery, agrees
// with the exact comparison oracle at both endpoints.
TEST(ProtocolCoreFuzz, CompareCoreMatchesOracle) {
  Rng rng(31337);
  for (int iter = 0; iter < 400; ++iter) {
    VecPair p = make_pair_(rng, 5, rng.chance(0.6));
    CompareCore at_a(&p.a);
    CompareCore at_b(&p.b);
    std::deque<VvMsg> to_a, to_b;
    Actions out;
    at_a.step(Event::start(), out);
    for (const Action& act : out) to_b.push_back(act.msg);
    out.clear();
    at_b.step(Event::start(), out);
    for (const Action& act : out) to_a.push_back(act.msg);
    std::uint64_t guard = 0;
    while ((!to_a.empty() || !to_b.empty()) && guard++ < 1000) {
      const bool pick_a = !to_a.empty() && (to_b.empty() || rng.chance(0.5));
      std::deque<VvMsg>& q = pick_a ? to_a : to_b;
      CompareCore& dst = pick_a ? at_a : at_b;
      std::deque<VvMsg>& back = pick_a ? to_b : to_a;
      VvMsg m = q.front();
      if (!rng.chance(0.15)) q.pop_front();  // else duplicate delivery
      out.clear();
      dst.step(Event::msg_arrival(m), out);
      for (const Action& act : out) back.push_back(act.msg);
    }
    ASSERT_TRUE(at_a.complete() && at_b.complete());
    EXPECT_EQ(at_a.decide(), compare_full(p.a, p.b)) << "iter " << iter;
    EXPECT_EQ(at_b.decide(), compare_full(p.b, p.a)) << "iter " << iter;
  }
}

}  // namespace
}  // namespace optrep::vv::protocol
