// Fault injection through the replication systems: the state- and
// record-transfer layers must surface retries and failures from the session
// layer, keep a failed sync a complete no-op, and stay convergent once the
// network lets a sync through.
#include <gtest/gtest.h>

#include <string>

#include "common/check.h"
#include "repl/op_system.h"
#include "repl/record_system.h"
#include "repl/state_system.h"

namespace optrep::repl {
namespace {

const SiteId A{0}, B{1}, C{2};
const ObjectId kObj{0};

StateSystem::Config lossy_state_cfg(double drop, std::uint64_t seed) {
  StateSystem::Config cfg;
  cfg.n_sites = 4;
  cfg.kind = vv::VectorKind::kSrv;
  cfg.policy = ResolutionPolicy::kAutomatic;
  cfg.cost = CostModel{.n = 8, .m = 1024};
  cfg.net.latency_s = 0.001;
  cfg.net.faults.drop = drop;
  cfg.net.faults.seed = seed;
  return cfg;
}

TEST(ReplFaults, StateSyncRetriesAndConverges) {
  StateSystem sys(lossy_state_cfg(0.2, 5));
  sys.create_object(A, kObj, "base");
  for (int i = 0; i < 6; ++i) sys.update(A, kObj, "v" + std::to_string(i));
  const auto out = sys.sync(B, A, kObj);
  ASSERT_EQ(out.action, SyncOutcome::Action::kPulled);
  EXPECT_TRUE(out.report.converged);
  EXPECT_TRUE(sys.replicas_consistent(kObj));
  EXPECT_GT(sys.totals().faults_injected, 0u);
}

TEST(ReplFaults, StateSyncFailureIsACompleteNoOp) {
  StateSystem sys(lossy_state_cfg(1.0, 1));  // nothing ever arrives
  sys.create_object(A, kObj, "base");
  sys.update(A, kObj, "v1");
  const auto out = sys.sync(B, A, kObj);  // creates B's replica, empty
  EXPECT_EQ(out.action, SyncOutcome::Action::kFailed);
  EXPECT_FALSE(out.report.converged);
  EXPECT_EQ(out.report.retries, vv::RetryPolicy{}.max_retries);
  EXPECT_EQ(sys.totals().sync_failures, 1u);
  // The receiver's metadata never claims content that was not transferred.
  EXPECT_TRUE(sys.replica(B, kObj).vector.to_version_vector() == vv::VersionVector{});
  EXPECT_TRUE(sys.replica(B, kObj).data.entries.empty());
}

TEST(ReplFaults, FaultTotalsAccumulateAcrossSessions) {
  StateSystem sys(lossy_state_cfg(0.25, 77));
  sys.create_object(A, kObj, "base");
  for (int round = 0; round < 5; ++round) {
    sys.update(A, kObj, "a" + std::to_string(round));
    sys.sync(B, A, kObj);
    sys.sync(C, B, kObj);
  }
  const auto& t = sys.totals();
  EXPECT_GT(t.faults_injected, 0u);
  EXPECT_GT(t.retries + t.sync_failures, 0u);
  EXPECT_GT(t.recovery_bits, 0u);
}

TEST(ReplFaults, RecordSyncUnderFaultsMergesOrRollsBack) {
  RecordSystem::Config cfg;
  cfg.n_sites = 4;
  cfg.kind = vv::VectorKind::kSrv;
  cfg.cost = CostModel{.n = 8, .m = 1024};
  cfg.net.latency_s = 0.001;
  cfg.net.faults.drop = 0.25;
  cfg.net.faults.seed = 3;
  RecordSystem sys(cfg);
  sys.create_object(A, kObj, "k0", "v0");
  for (int i = 0; i < 5; ++i) sys.put(A, kObj, "k" + std::to_string(i), "vA");
  sys.sync(B, A, kObj);
  sys.put(B, kObj, "kb", "vB");
  sys.put(A, kObj, "ka", "vA2");
  for (int round = 0; round < 8; ++round) {
    const auto r1 = sys.sync(B, A, kObj);
    const auto r2 = sys.sync(A, B, kObj);
    if (r1.report.converged && r2.report.converged) break;
  }
  EXPECT_TRUE(sys.replicas_consistent(kObj));
  EXPECT_GT(sys.totals().faults_injected, 0u);
}

TEST(ReplFaultsDeath, OpTransferRejectsFaultInjection) {
  OpSystem::Config cfg;
  cfg.n_sites = 3;
  cfg.net.faults.drop = 0.1;
  EXPECT_DEATH(OpSystem{cfg}, "fault injection is not supported");
}

}  // namespace
}  // namespace optrep::repl
