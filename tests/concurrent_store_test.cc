// Concurrency fuzz for the olock-embedded storage structures: a single
// writer mutates vv::RotatingVector / vv::FlatSiteIndex under the writer
// queue while optimistic readers race the probe/walk paths. The writer keeps
// a race-free oracle keyed by lock version (it alone advances the epoch, so
// the version observed by a validated reader names exactly one committed
// state); after the join every validated reader observation is checked
// against the oracle entry for its epoch. This is the differential-fuzz
// idiom of flat_storage_fuzz_test.cc lifted to concurrent executions, and
// the binary is part of the TSan CI job — the sanitizer checks the memory
// model while the oracle checks linearizability of validated reads.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "rt/olock.h"
#include "vv/flat_index.h"
#include "vv/rotating_vector.h"

namespace optrep::vv {
namespace {

constexpr std::uint64_t kSigSeed = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kTorn = 0xffffffffffffffffULL;  // walk exceeded bound

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

// Order-sensitive signature of the vector's rotation list. A concurrent
// writer can make the walk observe a transiently cyclic or stretched chain,
// so the step count is capped; an over-long walk returns kTorn and the
// caller discards the attempt (validation would fail anyway — the cap only
// bounds the work).
std::uint64_t vector_signature(const RotatingVector& v, std::uint32_t max_steps) {
  std::uint64_t h = kSigSeed;
  std::uint32_t steps = 0;
  for (const RotatingVector::Element e : v) {
    if (++steps > max_steps) return kTorn;
    h = mix(h, e.site.value);
    h = mix(h, e.value);
    h = mix(h, static_cast<std::uint64_t>(e.conflict) << 1 |
                   static_cast<std::uint64_t>(e.segment));
  }
  return h;
}

TEST(ConcurrentRotatingVector, ValidatedReadersMatchPerVersionOracle) {
  constexpr std::uint32_t kSites = 24;
  constexpr std::uint32_t kOps = 6000;
  constexpr std::uint32_t kReaders = 3;

  RotatingVector vec;
  vec.reserve(kSites);  // concurrent-reader contract: no table growth after this

  // Writer-only oracle: lock version -> signature of the state committed at
  // that version. Published to readers by the joins (happens-before), never
  // written concurrently with their lookups.
  std::unordered_map<std::uint64_t, std::uint64_t> oracle;
  oracle[vec.olock().version()] = vector_signature(vec, kSites + 1);

  struct Obs {
    std::uint64_t version;
    std::uint64_t sig;
  };
  std::atomic<bool> stop{false};
  std::vector<std::vector<Obs>> seen(kReaders);
  std::vector<std::thread> readers;
  for (std::uint32_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&vec, &stop, &seen, r] {
      while (!stop.load(std::memory_order_acquire)) {
        const std::uint64_t snap = vec.olock().read_begin();
        const std::uint64_t sig = vector_signature(vec, kSites + 1);
        if (sig != kTorn && vec.olock().read_validate(snap)) {
          seen[r].push_back({snap >> 1, sig});
        }
      }
    });
  }

  Rng rng(0x5eedULL);
  std::unordered_set<std::uint32_t> present;  // writer-local membership
  for (std::uint32_t op = 0; op < kOps; ++op) {
    const SiteId site{static_cast<std::uint32_t>(rng.below(kSites))};
    const std::uint64_t roll = rng.below(10);
    {
      rt::OLockGuard g(vec.olock());
      if (roll < 5 || present.empty()) {
        vec.record_update(site);
        present.insert(site.value);
      } else if (roll < 7 && present.count(site.value) != 0) {
        vec.erase(site);
        present.erase(site.value);
      } else if (present.count(site.value) != 0) {
        vec.set_conflict_bit(site, roll % 2 == 0);
        vec.set_segment_bit(site, roll % 3 == 0);
      } else {
        vec.record_update(site);
        present.insert(site.value);
      }
    }
    oracle[vec.olock().version()] = vector_signature(vec, kSites + 1);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  std::uint64_t validated = 0;
  for (const std::vector<Obs>& obs : seen) {
    for (const Obs& o : obs) {
      const auto it = oracle.find(o.version);
      ASSERT_NE(it, oracle.end()) << "validated reader saw unknown epoch " << o.version;
      EXPECT_EQ(it->second, o.sig) << "epoch " << o.version;
      ++validated;
    }
  }
  // Post-quiescence the read path must validate (sanity that readers ran
  // against a live structure, not a permanently failing one).
  const std::uint64_t snap = vec.olock().read_begin();
  EXPECT_NE(vector_signature(vec, kSites + 1), kTorn);
  EXPECT_TRUE(vec.olock().read_validate(snap));
  SUCCEED() << validated << " validated reads cross-checked";
}

TEST(ConcurrentFlatSiteIndex, ValidatedProbesMatchPerVersionOracle) {
  constexpr std::uint32_t kKeys = 48;
  constexpr std::uint32_t kOps = 6000;
  constexpr std::uint32_t kReaders = 3;

  FlatSiteIndex idx;
  idx.reserve(kKeys);  // no rehash while readers race (concurrency contract)

  // version -> full key→slot map at that epoch (writer-only, read post-join).
  std::unordered_map<std::uint64_t, std::unordered_map<std::uint32_t, std::uint32_t>>
      oracle;
  std::unordered_map<std::uint32_t, std::uint32_t> state;
  oracle[idx.olock().version()] = state;

  struct Obs {
    std::uint64_t version;
    std::uint32_t key;
    std::uint32_t slot;  // FlatSiteIndex::kNilSlot when absent
  };
  std::atomic<bool> stop{false};
  std::vector<std::vector<Obs>> seen(kReaders);
  std::vector<std::thread> readers;
  for (std::uint32_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&idx, &stop, &seen, r] {
      Rng rng(0x600dULL + r);
      while (!stop.load(std::memory_order_acquire)) {
        const std::uint32_t key = static_cast<std::uint32_t>(rng.below(kKeys));
        const std::uint64_t snap = idx.olock().read_begin();
        const std::uint32_t slot = idx.find(SiteId{key});
        if (idx.olock().read_validate(snap)) {
          seen[r].push_back({snap >> 1, key, slot});
        }
      }
    });
  }

  Rng rng(0xf00dULL);
  std::uint32_t next_slot = 1;
  for (std::uint32_t op = 0; op < kOps; ++op) {
    const std::uint32_t key = static_cast<std::uint32_t>(rng.below(kKeys));
    {
      rt::OLockGuard g(idx.olock());
      const auto it = state.find(key);
      if (it == state.end()) {
        idx.insert(SiteId{key}, next_slot);
        state.emplace(key, next_slot);
        ++next_slot;
      } else {
        // Backward-shift deletion while readers probe: the displaced suffix
        // moves under them, which validation must catch.
        idx.erase(SiteId{key});
        state.erase(it);
      }
    }
    oracle[idx.olock().version()] = state;
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  for (const std::vector<Obs>& obs : seen) {
    for (const Obs& o : obs) {
      const auto epoch = oracle.find(o.version);
      ASSERT_NE(epoch, oracle.end()) << "validated probe saw unknown epoch " << o.version;
      const auto it = epoch->second.find(o.key);
      const std::uint32_t want =
          it == epoch->second.end() ? FlatSiteIndex::kNilSlot : it->second;
      EXPECT_EQ(o.slot, want) << "epoch " << o.version << " key " << o.key;
    }
  }
}

// The deterministic core of the race above: a backward-shifting erase moves
// a colliding key to a different cell between a reader's probe and its
// validation. The stale answer may be wrong in either direction (hit the old
// cell or miss entirely) — the version stamp is what rejects it.
TEST(FlatSiteIndexOlock, BackwardShiftDeletionInvalidatesInFlightProbe) {
  FlatSiteIndex idx;
  idx.reserve(16);
  for (std::uint32_t k = 0; k < 12; ++k) idx.insert(SiteId{k}, k + 100);

  const std::uint64_t snap = idx.olock().read_begin();
  // Probe mid-read: answers are correct for the snapshot epoch...
  EXPECT_EQ(idx.find(SiteId{7}), 107u);
  // ...then a writer erases a key, backward-shifting the cluster suffix.
  {
    rt::OLockGuard g(idx.olock());
    EXPECT_TRUE(idx.erase(SiteId{3}));
  }
  // The in-flight snapshot is now stale and must NOT validate, even though
  // the individual probe happened to return a live value.
  EXPECT_FALSE(idx.olock().read_validate(snap));

  // The retry protocol: re-begin, re-probe, validate — now consistent.
  const std::uint64_t snap2 = idx.olock().read_begin();
  EXPECT_EQ(idx.find(SiteId{7}), 107u);
  EXPECT_EQ(idx.find(SiteId{3}), FlatSiteIndex::kNilSlot);
  EXPECT_TRUE(idx.olock().read_validate(snap2));
}

// Same protocol on the rotating vector: a rotation between begin and
// validate invalidates the walk even when every element value it returned
// still exists (the ORDER is the rotated state, §3 — stale order must not
// leak into session logic).
TEST(RotatingVectorOlock, RotationInvalidatesInFlightWalk) {
  RotatingVector v;
  v.reserve(8);
  for (std::uint32_t s = 0; s < 4; ++s) v.record_update(SiteId{s});

  const std::uint64_t snap = v.olock().read_begin();
  const std::uint64_t sig_before = vector_signature(v, 9);
  {
    rt::OLockGuard g(v.olock());
    v.record_update(SiteId{2});  // rotates site 2 to the front
  }
  EXPECT_FALSE(v.olock().read_validate(snap));

  const std::uint64_t snap2 = v.olock().read_begin();
  EXPECT_NE(vector_signature(v, 9), sig_before);
  EXPECT_TRUE(v.olock().read_validate(snap2));
}

}  // namespace
}  // namespace optrep::vv
