#include <gtest/gtest.h>

#include <unordered_set>

#include "common/rng.h"
#include "graph/sync_graph.h"

namespace optrep::graph {
namespace {

const SiteId A{0}, B{1}, C{2}, D{3}, E{4}, F{5}, G{6};

UpdateId op(SiteId s, std::uint64_t seq) { return UpdateId{s, seq}; }

GraphSyncOptions ideal_opt() {
  GraphSyncOptions o;
  o.mode = vv::TransferMode::kIdeal;
  o.cost = CostModel{.n = 64, .m = 1024};
  return o;
}

GraphSyncReport run(CausalGraph& a, const CausalGraph& b, const GraphSyncOptions& opt) {
  sim::EventLoop loop;
  return sync_graph(loop, a, b, opt);
}

// Node-set union check.
bool is_union(const CausalGraph& result, const CausalGraph& x, const CausalGraph& y) {
  if (result.node_count() != x.node_count() + y.node_count() -
                                 [&] {
                                   std::size_t shared = 0;
                                   for (const Node& n : x.all_nodes())
                                     shared += y.contains(n.id);
                                   return shared;
                                 }()) {
    return false;
  }
  for (const Node& n : x.all_nodes())
    if (!result.contains(n.id)) return false;
  for (const Node& n : y.all_nodes())
    if (!result.contains(n.id)) return false;
  return true;
}

// The two causal graphs of Figure 3 (site A: nodes 1,2,4–7; site C: 1,4–6).
struct Fig3 {
  UpdateId n1 = op(A, 1), n2 = op(B, 1), n4 = op(E, 1), n5 = op(F, 1), n6 = op(G, 1),
           n7 = op(A, 2);
  CausalGraph site_a, site_c;
  Fig3() {
    site_a.create(n1);
    site_a.append(n2);
    site_a.insert_raw(Node{n4, n1});
    site_a.insert_raw(Node{n5, n4});
    site_a.insert_raw(Node{n6, n5});
    site_a.merge(n7, n6);
    site_c.create(n1);
    site_c.append(n4);
    site_c.append(n5);
    site_c.append(n6);
  }
};

TEST(SyncGraph, Figure3MissingBranchPlusOverlap) {
  // §6.1: synchronizing C's graph with A's transmits only the missing nodes
  // plus one overlapping node per explored branch.
  Fig3 f;
  CausalGraph a = f.site_c;
  auto rep = run(a, f.site_a, ideal_opt());
  EXPECT_EQ(rep.initial_relation, vv::Ordering::kBefore);
  EXPECT_TRUE(is_union(a, f.site_c, f.site_a));
  EXPECT_TRUE(a.contains(f.n7));
  EXPECT_EQ(rep.nodes_new, 2u);  // nodes 7 and 2
  // Node 6 is never transmitted: the receiver sees rp=6 of node 7 and knows
  // it, so the whole 6,5,4 branch is pruned receiver-side. Only the lp
  // branch's overlap (node 1) is transmitted.
  EXPECT_EQ(rep.nodes_redundant, 1u);
  EXPECT_EQ(rep.nodes_sent, 3u);
}

TEST(SyncGraph, Figure3OtherDirectionUsesSkipto) {
  // Receiver holds the 1–2 branch; the sender jumps to node 6's branch after
  // the receiver aborts the lp branch at node 2.
  Fig3 f;
  CausalGraph a;
  a.create(f.n1);
  a.append(f.n2);
  auto rep = run(a, f.site_a, ideal_opt());
  EXPECT_TRUE(is_union(a, a, f.site_a));
  EXPECT_EQ(rep.nodes_new, 4u);       // 7, 6, 5, 4
  EXPECT_EQ(rep.nodes_redundant, 2u); // 2 (aborts lp branch), 1 (final halt)
  EXPECT_EQ(rep.skipto_msgs, 1u);
  EXPECT_EQ(rep.nodes_sent, 6u);
}

TEST(SyncGraph, IdenticalGraphsCostOneNode) {
  Fig3 f;
  CausalGraph a = f.site_a;
  auto rep = run(a, f.site_a, ideal_opt());
  EXPECT_EQ(rep.nodes_sent, 1u);  // the sink; receiver halts everything
  EXPECT_EQ(rep.nodes_new, 0u);
  EXPECT_EQ(a.node_count(), f.site_a.node_count());
}

TEST(SyncGraph, EmptyReceiverGetsFullGraph) {
  Fig3 f;
  CausalGraph a;
  auto rep = run(a, f.site_a, ideal_opt());
  EXPECT_EQ(rep.nodes_new, f.site_a.node_count());
  EXPECT_EQ(rep.nodes_redundant, 0u);
  EXPECT_TRUE(a.contains(f.n7));
  a.set_sink(f.n7);
  EXPECT_TRUE(a.validate_closed());
}

TEST(SyncGraph, EmptySenderSendsNothing) {
  Fig3 f;
  CausalGraph a = f.site_c, b;
  auto rep = run(a, b, ideal_opt());
  EXPECT_EQ(rep.nodes_sent, 0u);
  EXPECT_EQ(a.node_count(), f.site_c.node_count());
}

TEST(SyncGraph, ShipsOperationPayloads) {
  CausalGraph b;
  b.create(op(A, 1), 1000);
  b.append(op(A, 2), 500);
  CausalGraph a;
  auto opt = ideal_opt();
  auto rep = run(a, b, opt);
  EXPECT_EQ(rep.op_bytes_shipped, 1500u);
  EXPECT_EQ(a.total_op_bytes(), 1500u);

  CausalGraph a2;
  opt.ship_ops = false;
  auto rep2 = run(a2, b, opt);
  EXPECT_EQ(rep2.op_bytes_shipped, 0u);
}

TEST(SyncGraph, FullTransferBaselineSendsEverything) {
  Fig3 f;
  CausalGraph a = f.site_c;
  sim::EventLoop loop;
  auto rep = sync_graph_full(loop, a, f.site_a, ideal_opt());
  EXPECT_EQ(rep.nodes_sent, f.site_a.node_count());
  EXPECT_TRUE(is_union(a, f.site_c, f.site_a));
  EXPECT_EQ(rep.nodes_new, 2u);
  EXPECT_EQ(rep.nodes_redundant, 4u);
}

TEST(SyncGraph, DeepChainsSyncIncrementally) {
  // A long shared chain with a short fresh suffix: traffic ∝ suffix.
  CausalGraph b;
  b.create(op(A, 1));
  for (std::uint64_t i = 2; i <= 500; ++i) b.append(op(A, i));
  CausalGraph a = b;
  for (std::uint64_t i = 501; i <= 505; ++i) b.append(op(A, i));
  auto rep = run(a, b, ideal_opt());
  EXPECT_EQ(rep.nodes_new, 5u);
  EXPECT_EQ(rep.nodes_sent, 6u);  // suffix + one overlap
  EXPECT_EQ(a.node_count(), 505u);
}

// ---------------------------------------------------------------------------
// Property test: random multi-site operation-transfer histories. Each site
// appends ops to its own replica graph and anti-entropy sessions merge them;
// after every SYNCG the receiver must hold exactly the union, stay closed,
// and in ideal mode the traffic must obey nodes_redundant ≤ skipto_msgs + 1.
// ---------------------------------------------------------------------------

struct OpSite {
  CausalGraph g;
  std::uint64_t next_seq{1};
};

TEST(SyncGraph, RandomHistoriesProduceExactUnions) {
  Rng rng(909);
  for (int trial = 0; trial < 40; ++trial) {
    constexpr std::size_t kSites = 5;
    std::vector<OpSite> sites(kSites);
    // Common source operation, replicated everywhere.
    for (auto& s : sites) s.g.create(op(SiteId{31}, 1));

    for (int step = 0; step < 80; ++step) {
      const std::size_t i = rng.below(kSites);
      if (rng.chance(0.55)) {
        sites[i].g.append(op(SiteId{static_cast<std::uint32_t>(i)}, sites[i].next_seq++));
        continue;
      }
      const std::size_t j = rng.below(kSites);
      if (i == j) continue;
      OpSite& dst = sites[i];
      const OpSite& src = sites[j];
      const CausalGraph before = dst.g;
      auto rep = run(dst.g, src.g, ideal_opt());
      ASSERT_TRUE(is_union(dst.g, before, src.g)) << "trial " << trial;
      ASSERT_LE(rep.nodes_redundant, rep.skipto_msgs + 1) << "trial " << trial;
      ASSERT_EQ(rep.nodes_new, dst.g.node_count() - before.node_count());
      // Sink maintenance: fast-forward or reconcile (§6.1).
      switch (rep.initial_relation) {
        case vv::Ordering::kBefore:
          dst.g.set_sink(src.g.sink());
          break;
        case vv::Ordering::kConcurrent:
          dst.g.merge(op(SiteId{static_cast<std::uint32_t>(i)}, dst.next_seq++),
                      src.g.sink());
          break;
        default:
          break;
      }
      ASSERT_TRUE(dst.g.validate_closed()) << "trial " << trial;
    }
  }
}

TEST(SyncGraph, PipelinedMatchesIdealUnion) {
  Rng rng(4242);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<OpSite> sites(4);
    for (auto& s : sites) s.g.create(op(SiteId{31}, 1));
    for (int step = 0; step < 50; ++step) {
      const std::size_t i = rng.below(sites.size());
      if (rng.chance(0.5)) {
        sites[i].g.append(op(SiteId{static_cast<std::uint32_t>(i)}, sites[i].next_seq++));
        continue;
      }
      const std::size_t j = rng.below(sites.size());
      if (i == j) continue;
      CausalGraph ideal_result = sites[i].g;
      CausalGraph pipe_result = sites[i].g;
      const CausalGraph& src = sites[j].g;
      run(ideal_result, src, ideal_opt());

      GraphSyncOptions pipe = ideal_opt();
      pipe.mode = vv::TransferMode::kPipelined;
      pipe.net = {.latency_s = 0.001 * (trial % 5),
                  .bandwidth_bits_per_s = (step % 2) ? 1e5 : 1e7};
      sim::EventLoop loop;
      run(pipe_result, src, pipe);
      ASSERT_TRUE(ideal_result == pipe_result) << "trial " << trial << " step " << step;

      sites[i].g = ideal_result;
      const auto rel = sites[i].g.compare(src);
      if (rel == vv::Ordering::kBefore) {
        // cannot happen: union contains our sink
      }
      if (!sites[i].g.contains(src.sink())) continue;
      if (sites[i].g.sink() != src.sink() &&
          sites[i].g.is_ancestor(sites[i].g.sink(), src.sink())) {
        sites[i].g.set_sink(src.sink());
      } else if (sites[i].g.sink() != src.sink() &&
                 !sites[i].g.is_ancestor(src.sink(), sites[i].g.sink())) {
        sites[i].g.merge(op(SiteId{static_cast<std::uint32_t>(i)}, sites[i].next_seq++),
                         src.sink());
      }
    }
  }
}

TEST(SyncGraph, WideBranchingFanOut) {
  // One site merges many concurrent branches; later syncs of nearly-equal
  // graphs must stay cheap (one node + halts / skiptos per missing branch).
  CausalGraph hub;
  hub.create(op(A, 1));
  std::vector<CausalGraph> spokes;
  for (std::uint32_t k = 0; k < 8; ++k) {
    CausalGraph s;
    s.create(op(A, 1));
    s.append(op(SiteId{k + 1}, 1));
    s.append(op(SiteId{k + 1}, 2));
    spokes.push_back(std::move(s));
  }
  std::uint64_t hub_seq = 1;
  for (auto& s : spokes) {
    auto rep = run(hub, s, ideal_opt());
    EXPECT_EQ(rep.nodes_new, 2u);
    if (rep.initial_relation == vv::Ordering::kConcurrent) {
      hub.merge(op(A, ++hub_seq), s.sink());
    } else if (rep.initial_relation == vv::Ordering::kBefore) {
      hub.set_sink(s.sink());  // first spoke dominated the bare root
    }
    ASSERT_TRUE(hub.validate_closed());
  }
  EXPECT_EQ(hub.node_count(), 1 + 8 * 2 + 7u);  // root + spokes + merge nodes
}

}  // namespace
}  // namespace optrep::graph
