// Integration of tap + codec: every message of a live SYNCS session is
// bit-encoded as it crosses the wire; the decoded stream must replay
// identically, and the encoded size must equal the session's reported
// traffic. This pins the claim that SyncReport's "model bits" correspond to
// a real serialization, end to end.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/test_util.h"
#include "vv/codec.h"
#include "vv/session.h"

namespace optrep::vv {
namespace {

TEST(TranscriptCodec, SessionStreamsRoundTripAtReportedSize) {
  Rng rng(101);
  for (int trial = 0; trial < 60; ++trial) {
    // Random pair of valid replicas.
    constexpr std::uint32_t kSites = 8;
    std::vector<RotatingVector> vec(kSites);
    for (int step = 0; step < 50; ++step) {
      const auto i = static_cast<std::uint32_t>(rng.below(kSites));
      if (rng.chance(0.55)) {
        vec[i].record_update(SiteId{i});
      } else {
        auto j = static_cast<std::uint32_t>(rng.below(kSites));
        if (j == i) continue;
        sim::EventLoop loop;
        auto o = test::ideal(VectorKind::kSrv, kSites);
        const auto rel = compare_fast(vec[i], vec[j]);
        if (rel == Ordering::kBefore || rel == Ordering::kConcurrent) {
          sync_rotating(loop, vec[i], vec[j], o);
          if (rel == Ordering::kConcurrent) vec[i].record_update(SiteId{i});
        }
      }
    }
    const auto a0 = rng.below(kSites);
    auto b0 = rng.below(kSites);
    if (b0 == a0) b0 = (b0 + 1) % kSites;
    RotatingVector a = vec[a0];
    const RotatingVector& b = vec[b0];
    const auto rel = compare_fast(a, b);
    if (rel == Ordering::kEqual || rel == Ordering::kAfter) continue;

    // Tap + encode every message in both directions.
    auto opt = test::ideal(VectorKind::kSrv, kSites);
    opt.known_relation = rel;
    BitWriter fwd_bits, rev_bits;
    std::vector<VvMsg> fwd_msgs, rev_msgs;
    opt.add_tap([&](bool forward, const VvMsg& m) {
      if (m.kind == VvMsg::Kind::kAck) return;  // free in ideal mode
      if (forward) {
        encode_msg(fwd_bits, opt.cost, opt.kind, Direction::kForward, m);
        fwd_msgs.push_back(m);
      } else {
        encode_msg(rev_bits, opt.cost, opt.kind, Direction::kReverse, m);
        rev_msgs.push_back(m);
      }
    });
    sim::EventLoop loop;
    const auto rep = sync_skip(loop, a, b, opt);

    // Encoded size equals the session's reported model bits.
    ASSERT_EQ(fwd_bits.bit_size(), rep.bits_fwd) << "trial " << trial;
    ASSERT_EQ(rev_bits.bit_size(), rep.bits_rev) << "trial " << trial;

    // The streams decode back to the identical message sequences.
    BitReader fr(fwd_bits.bytes());
    for (const VvMsg& want : fwd_msgs) {
      const VvMsg got = decode_msg(fr, opt.cost, opt.kind, Direction::kForward);
      ASSERT_EQ(static_cast<int>(got.kind), static_cast<int>(want.kind));
      if (want.kind == VvMsg::Kind::kElem) {
        ASSERT_EQ(got.site, want.site);
        ASSERT_EQ(got.value, want.value);
        ASSERT_EQ(got.conflict, want.conflict);
        ASSERT_EQ(got.segment, want.segment);
      }
    }
    ASSERT_EQ(fr.bits_read(), fwd_bits.bit_size());
    BitReader rr(rev_bits.bytes());
    for (const VvMsg& want : rev_msgs) {
      const VvMsg got = decode_msg(rr, opt.cost, opt.kind, Direction::kReverse);
      ASSERT_EQ(static_cast<int>(got.kind), static_cast<int>(want.kind));
      if (want.kind == VvMsg::Kind::kSkip) {
        ASSERT_EQ(got.arg, want.arg);
      }
    }
  }
}

}  // namespace
}  // namespace optrep::vv
