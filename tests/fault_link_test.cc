// sim::FaultInjector unit tests: determinism, per-class behavior, and the
// seed-derivation helpers the recovery layer builds on.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/event_loop.h"
#include "sim/fault_link.h"

namespace optrep::sim {
namespace {

NetConfig::FaultConfig rates(double drop, double dup, double reorder, double corrupt,
                             std::uint64_t seed = 7) {
  NetConfig::FaultConfig cfg;
  cfg.drop = drop;
  cfg.duplicate = dup;
  cfg.reorder = reorder;
  cfg.corrupt = corrupt;
  cfg.seed = seed;
  return cfg;
}

TEST(FaultInjector, ZeroRatesDeliverEverythingInOrder) {
  EventLoop loop;
  FaultInjector<int> inj(&loop, rates(0, 0, 0, 0), kFaultSaltForward, 0.01);
  std::vector<int> got;
  inj.set_receiver([&](const int& m) { got.push_back(m); });
  for (int i = 0; i < 200; ++i) inj.deliver(i);
  loop.run();
  ASSERT_EQ(got.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(got[i], i);
  EXPECT_EQ(inj.stats().injected(), 0u);
  EXPECT_EQ(inj.stats().delivered, 200u);
}

TEST(FaultInjector, DropOneDiscardsEverything) {
  EventLoop loop;
  FaultInjector<int> inj(&loop, rates(1, 0, 0, 0), kFaultSaltForward, 0.01);
  std::vector<int> got;
  inj.set_receiver([&](const int& m) { got.push_back(m); });
  for (int i = 0; i < 50; ++i) inj.deliver(i);
  loop.run();
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(inj.stats().dropped, 50u);
  EXPECT_EQ(inj.stats().delivered, 0u);
}

TEST(FaultInjector, DuplicateOneDeliversEveryMessageTwice) {
  EventLoop loop;
  FaultInjector<int> inj(&loop, rates(0, 1, 0, 0), kFaultSaltForward, 0.01);
  std::vector<int> got;
  inj.set_receiver([&](const int& m) { got.push_back(m); });
  for (int i = 0; i < 20; ++i) inj.deliver(i);
  loop.run();  // duplicate copies are scheduled at `now`
  EXPECT_EQ(got.size(), 40u);
  EXPECT_EQ(inj.stats().duplicated, 20u);
  EXPECT_EQ(inj.stats().delivered, 40u);
}

TEST(FaultInjector, CorruptOneDiscardsAllAndRunsTheCorrupter) {
  EventLoop loop;
  FaultInjector<int> inj(&loop, rates(0, 0, 0, 1), kFaultSaltForward, 0.01);
  std::vector<int> got;
  int corrupter_calls = 0;
  inj.set_receiver([&](const int& m) { got.push_back(m); });
  inj.set_corrupter([&](int&, Rng&) {
    ++corrupter_calls;
    return corrupter_calls % 2 == 0;  // half detected by the "codec"
  });
  for (int i = 0; i < 30; ++i) inj.deliver(i);
  loop.run();
  EXPECT_TRUE(got.empty());  // the checksum model discards every corruption
  EXPECT_EQ(inj.stats().corrupted, 30u);
  EXPECT_EQ(corrupter_calls, 30);
  EXPECT_EQ(inj.stats().corrupt_decode_errors, 15u);
}

TEST(FaultInjector, ReorderHoldsDeliveryPastLaterTraffic) {
  EventLoop loop;
  std::vector<int> got;
  // Message 1 goes through an always-reorder injector (held by 0.01 s);
  // message 2 through a clean one sharing the receiver. Despite being
  // handed off first, message 1 lands second.
  FaultInjector<int> held(&loop, rates(0, 0, 1, 0), kFaultSaltForward, 0.01);
  FaultInjector<int> clean(&loop, rates(0, 0, 0, 0), kFaultSaltReverse, 0.01);
  held.set_receiver([&](const int& m) { got.push_back(m); });
  clean.set_receiver([&](const int& m) { got.push_back(m); });
  held.deliver(1);
  clean.deliver(2);
  loop.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 2);
  EXPECT_EQ(got[1], 1);
  EXPECT_EQ(held.stats().reordered, 1u);
}

TEST(FaultInjector, SameSeedReproducesTheExactFaultPattern) {
  auto run = [](std::uint64_t seed) {
    EventLoop loop;
    FaultInjector<int> inj(&loop, rates(0.3, 0.2, 0.25, 0.1, seed), kFaultSaltForward,
                           0.005);
    std::vector<int> got;
    inj.set_receiver([&](const int& m) { got.push_back(m); });
    for (int i = 0; i < 300; ++i) {
      loop.schedule(loop.now() + 0.001, [&inj, i] { inj.deliver(i); });
      loop.run();
    }
    return std::make_pair(got, inj.stats());
  };
  const auto [got1, s1] = run(42);
  const auto [got2, s2] = run(42);
  EXPECT_EQ(got1, got2);
  EXPECT_EQ(s1.dropped, s2.dropped);
  EXPECT_EQ(s1.duplicated, s2.duplicated);
  EXPECT_EQ(s1.reordered, s2.reordered);
  EXPECT_EQ(s1.corrupted, s2.corrupted);
  EXPECT_EQ(s1.delivered, s2.delivered);
  // A different seed produces a different pattern (overwhelmingly likely
  // over 300 messages at these rates).
  const auto [got3, s3] = run(43);
  EXPECT_NE(got1, got3);
}

TEST(FaultSeeds, StreamAndAttemptDerivationsAreDistinct) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t salt : {kFaultSaltForward, kFaultSaltReverse, std::uint64_t{0}})
    seen.insert(fault_stream_seed(1, salt));
  for (std::uint32_t attempt = 0; attempt < 8; ++attempt)
    seen.insert(fault_attempt_seed(1, attempt));
  EXPECT_EQ(seen.size(), 11u);  // no collisions across directions and attempts
}

}  // namespace
}  // namespace optrep::sim
