// Randomized differential tests for the hot-path storage layer:
//
//  * FlatSiteIndex vs a std::unordered_map oracle — inserts, erases (the
//    tombstone-free backward-shift path), finds and growth.
//  * RotatingVector vs a std::list + std::unordered_map oracle — the full
//    mutator surface (record_update / rotate_after / set_element / erase),
//    including free-slot reuse after erase and the §4 segment-bit carry to
//    the predecessor on unlink.
//
// Everything is seeded: a failure reproduces exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "vv/flat_index.h"
#include "vv/rotating_vector.h"

namespace optrep::vv {
namespace {

TEST(FlatSiteIndexFuzz, MatchesUnorderedMapOracle) {
  FlatSiteIndex index;
  std::unordered_map<std::uint32_t, std::uint32_t> oracle;
  Rng rng(20250807);
  constexpr std::uint32_t kSitePool = 300;  // dense enough to force collisions

  for (int op = 0; op < 20'000; ++op) {
    const SiteId site{static_cast<std::uint32_t>(rng.below(kSitePool))};
    const auto roll = rng.below(10);
    if (roll < 5) {  // insert / overwrite
      const auto slot = static_cast<std::uint32_t>(rng.below(0xfffffffeu));
      if (oracle.count(site.value) == 0) {
        index.insert(site, slot);
        oracle[site.value] = slot;
      }
    } else if (roll < 8) {  // erase (backward-shift deletion)
      index.erase(site);
      oracle.erase(site.value);
    } else {  // point lookup
      const auto it = oracle.find(site.value);
      EXPECT_EQ(index.find(site), it == oracle.end() ? FlatSiteIndex::kNilSlot
                                                     : it->second);
    }
    ASSERT_EQ(index.size(), oracle.size());
  }
  // Full sweep at the end: every key, plus some guaranteed-absent ones.
  for (std::uint32_t s = 0; s < 2 * kSitePool; ++s) {
    const auto it = oracle.find(s);
    EXPECT_EQ(index.find(SiteId{s}),
              it == oracle.end() ? FlatSiteIndex::kNilSlot : it->second);
  }
  // Probe chains must stay short at load factor <= 0.75 with backward-shift
  // deletion (no tombstone accumulation after 20k ops).
  const auto ps = index.probe_stats();
  EXPECT_LE(ps.max, 16u);
}

// Mirror of the RotatingVector mutators over std::list + std::unordered_map.
struct Oracle {
  struct Elem {
    std::uint32_t site;
    std::uint64_t value{0};
    bool conflict{false};
    bool segment{false};
  };
  std::list<Elem> order;
  std::unordered_map<std::uint32_t, std::list<Elem>::iterator> idx;

  bool contains(std::uint32_t site) const { return idx.count(site) > 0; }

  std::list<Elem>::iterator insert_front(std::uint32_t site) {
    order.push_front(Elem{site});
    return idx[site] = order.begin();
  }

  // §4 carry: a rotated-out or erased segment boundary moves to the element
  // before it (if any).
  void carry_segment(std::list<Elem>::iterator it) {
    if (!it->segment) return;
    it->segment = false;
    if (it != order.begin()) std::prev(it)->segment = true;
  }

  void rotate_after(std::optional<std::uint32_t> prev, std::uint32_t site) {
    auto it = idx.count(site) ? idx[site] : insert_front(site);
    auto pos = order.begin();
    if (prev.has_value()) {
      auto p = idx.at(*prev);
      if (std::next(p) == it) return;  // already directly after prev: no-op
      pos = std::next(p);
    } else if (it == order.begin()) {
      return;  // already at the front: no-op
    }
    carry_segment(it);
    order.splice(pos, order, it);  // iterators stay valid
  }

  void record_update(std::uint32_t site) {
    rotate_after(std::nullopt, site);
    auto it = idx.at(site);
    it->value += 1;
    it->conflict = false;
  }

  void set_element(std::uint32_t site, std::uint64_t value, bool conflict, bool segment) {
    auto it = idx.count(site) ? idx[site] : insert_front(site);
    it->value = value;
    it->conflict = conflict;
    it->segment = segment;
  }

  void erase(std::uint32_t site) {
    const auto f = idx.find(site);
    if (f == idx.end()) return;
    carry_segment(f->second);
    order.erase(f->second);
    idx.erase(f);
  }
};

void expect_same(const RotatingVector& v, const Oracle& o, int op) {
  ASSERT_EQ(v.size(), o.order.size()) << "op " << op;
  auto it = v.begin();
  std::size_t pos = 0;
  for (const auto& e : o.order) {
    ASSERT_NE(it, v.end()) << "op " << op << " pos " << pos;
    EXPECT_EQ(it->site.value, e.site) << "op " << op << " pos " << pos;
    EXPECT_EQ(it->value, e.value) << "op " << op << " pos " << pos;
    EXPECT_EQ(it->conflict, e.conflict) << "op " << op << " pos " << pos;
    EXPECT_EQ(it->segment, e.segment) << "op " << op << " pos " << pos;
    ++it;
    ++pos;
  }
  EXPECT_EQ(it, v.end()) << "op " << op;
}

TEST(RotatingVectorFuzz, MatchesListOracle) {
  RotatingVector v;
  Oracle o;
  Rng rng(424242);
  constexpr std::uint32_t kSitePool = 48;
  std::vector<std::uint32_t> present;  // sites currently in the vector

  const auto refresh_present = [&] {
    present.clear();
    for (const auto& e : o.order) present.push_back(e.site);
  };

  for (int op = 0; op < 12'000; ++op) {
    const SiteId site{static_cast<std::uint32_t>(rng.below(kSitePool))};
    const auto roll = rng.below(100);
    if (roll < 35) {
      v.record_update(site);
      o.record_update(site.value);
    } else if (roll < 55) {
      // rotate_after with a valid prev (present, != site) or φ.
      refresh_present();
      std::optional<SiteId> prev;
      if (!present.empty() && rng.chance(0.7)) {
        const auto p = present[rng.below(present.size())];
        if (p != site.value) prev = SiteId{p};
      }
      v.rotate_after(prev, site);
      o.rotate_after(prev.has_value() ? std::optional<std::uint32_t>{prev->value}
                                      : std::nullopt,
                     site.value);
    } else if (roll < 70) {
      const std::uint64_t value = rng.below(1 << 20);
      const bool conflict = rng.chance(0.3);
      const bool segment = rng.chance(0.3);
      v.set_element(site, value, conflict, segment);
      o.set_element(site.value, value, conflict, segment);
    } else if (roll < 90) {
      // Erase exercises free-slot reuse (the next insert takes the slot back)
      // and the segment-bit carry on unlink.
      v.erase(site);
      o.erase(site.value);
    } else {
      EXPECT_EQ(v.value(site), o.contains(site.value) ? o.idx.at(site.value)->value : 0);
      expect_same(v, o, op);
      if (::testing::Test::HasFailure()) return;  // seeded: first divergence is enough
    }
  }
  expect_same(v, o, 12'000);
}

}  // namespace
}  // namespace optrep::vv
