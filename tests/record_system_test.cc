#include <gtest/gtest.h>

#include "common/rng.h"
#include "repl/record_system.h"

namespace optrep::repl {
namespace {

const SiteId A{0}, B{1}, C{2};
const ObjectId kDb{0};

RecordSystem::Config cfg(SemanticPolicy policy = SemanticPolicy::kLastWriterWins) {
  RecordSystem::Config c;
  c.n_sites = 4;
  c.kind = vv::VectorKind::kSrv;
  c.policy = policy;
  c.cost = CostModel{.n = 8, .m = 1 << 16};
  return c;
}

TEST(RecordSystem, PutAndPull) {
  RecordSystem sys(cfg());
  sys.create_object(A, kDb, "user:1", "alice");
  sys.put(A, kDb, "user:2", "bob");
  sys.sync(B, A, kDb);
  EXPECT_EQ(sys.replica(B, kDb).records.at("user:1").value, "alice");
  EXPECT_EQ(sys.replica(B, kDb).records.at("user:2").value, "bob");
  EXPECT_TRUE(sys.replicas_consistent(kDb));
}

TEST(RecordSystem, DisjointKeysAreSyntacticOnly) {
  // Concurrent writes to different records: a syntactic conflict the
  // semantic detector dismisses entirely.
  RecordSystem sys(cfg());
  sys.create_object(A, kDb, "base", "v");
  sys.sync(B, A, kDb);
  sys.put(A, kDb, "from-a", "1");
  sys.put(B, kDb, "from-b", "2");
  const auto out = sys.sync(B, A, kDb);
  EXPECT_TRUE(out.syntactic_conflict);
  EXPECT_EQ(out.semantic_conflicts, 0u);
  EXPECT_EQ(sys.replica(B, kDb).records.size(), 3u);
  EXPECT_EQ(sys.totals().syntactic_conflicts, 1u);
  EXPECT_EQ(sys.totals().semantic_conflicts, 0u);
}

TEST(RecordSystem, SameKeySameValueIsFiltered) {
  // Concurrent but identical writes: semantically consistent (§2.1:
  // "identical or merely semantically equivalent").
  RecordSystem sys(cfg());
  sys.create_object(A, kDb, "base", "v");
  sys.sync(B, A, kDb);
  sys.put(A, kDb, "k", "same");
  sys.put(B, kDb, "k", "same");
  const auto out = sys.sync(B, A, kDb);
  EXPECT_TRUE(out.syntactic_conflict);
  EXPECT_EQ(out.semantic_conflicts, 0u);
  EXPECT_EQ(sys.replica(B, kDb).records.at("k").value, "same");
}

TEST(RecordSystem, SameKeyDifferentValueIsTrueConflict) {
  RecordSystem sys(cfg());
  sys.create_object(A, kDb, "base", "v");
  sys.sync(B, A, kDb);
  sys.put(A, kDb, "k", "from-a");
  sys.put(B, kDb, "k", "from-b");
  const auto out = sys.sync(B, A, kDb);
  EXPECT_TRUE(out.syntactic_conflict);
  EXPECT_EQ(out.semantic_conflicts, 1u);
  // LWW: B's write has the larger writer id (site B > site A at equal seq).
  EXPECT_EQ(sys.replica(B, kDb).records.at("k").value, "from-b");
}

TEST(RecordSystem, LastWriterWinsIsSymmetric) {
  // Both directions resolve to the same value → convergence.
  RecordSystem sys(cfg());
  sys.create_object(A, kDb, "base", "v");
  sys.sync(B, A, kDb);
  sys.put(A, kDb, "k", "from-a");
  sys.put(B, kDb, "k", "from-b");
  sys.sync(B, A, kDb);
  sys.sync(A, B, kDb);
  EXPECT_TRUE(sys.replicas_consistent(kDb));
  EXPECT_EQ(sys.replica(A, kDb).records.at("k").value, "from-b");
}

TEST(RecordSystem, CausalOverwriteIsNotAConflict) {
  // B reads A's write, then overwrites it; a later sync must recognize the
  // causal order despite the replicas being syntactically concurrent due to
  // unrelated keys.
  RecordSystem sys(cfg());
  sys.create_object(A, kDb, "k", "v1");
  sys.sync(B, A, kDb);
  sys.put(B, kDb, "k", "v2");      // causally after A's write
  sys.put(A, kDb, "other", "x");   // makes the replicas concurrent
  const auto out = sys.sync(A, B, kDb);
  EXPECT_TRUE(out.syntactic_conflict);
  EXPECT_EQ(out.semantic_conflicts, 0u);
  EXPECT_EQ(sys.replica(A, kDb).records.at("k").value, "v2");
}

TEST(RecordSystem, FlagPolicyHoldsLocalValue) {
  RecordSystem sys(cfg(SemanticPolicy::kFlag));
  sys.create_object(A, kDb, "base", "v");
  sys.sync(B, A, kDb);
  sys.put(A, kDb, "k", "from-a");
  sys.put(B, kDb, "k", "from-b");
  const auto out = sys.sync(B, A, kDb);
  EXPECT_EQ(out.semantic_conflicts, 1u);
  const RecordCell& cell = sys.replica(B, kDb).records.at("k");
  EXPECT_TRUE(cell.flagged);
  EXPECT_EQ(cell.value, "from-b");  // local value kept for the human
  EXPECT_EQ(sys.totals().flagged_records, 1u);
  // A fresh local write clears the flag.
  sys.put(B, kDb, "k", "repaired");
  EXPECT_FALSE(sys.replica(B, kDb).records.at("k").flagged);
}

TEST(RecordSystem, AppendOnlyLogFiltersAllConflicts) {
  // §4's motivating case: every site appends to its own region of a log —
  // syntactic conflicts abound, none are semantic.
  RecordSystem sys(cfg());
  sys.create_object(A, kDb, "log:A:0", "genesis");
  sys.sync(B, A, kDb);
  sys.sync(C, A, kDb);
  Rng rng(5150);
  int seq[3] = {1, 1, 1};
  for (int step = 0; step < 200; ++step) {
    const auto s = static_cast<std::uint32_t>(rng.below(3));
    const SiteId site{s};
    if (rng.chance(0.6)) {
      sys.put(site, kDb,
              "log:" + site_name(site) + ":" + std::to_string(seq[s]++),
              "entry");
    } else {
      auto p = static_cast<std::uint32_t>(rng.below(3));
      if (p == s) p = (p + 1) % 3;
      sys.sync(site, SiteId{p}, kDb);
    }
  }
  EXPECT_GT(sys.totals().syntactic_conflicts, 10u);
  EXPECT_EQ(sys.totals().semantic_conflicts, 0u);
}

TEST(RecordSystem, RandomMixedWorkloadConvergesUnderLww) {
  Rng rng(22);
  for (int trial = 0; trial < 10; ++trial) {
    RecordSystem sys(cfg());
    sys.create_object(A, kDb, "k0", "init");
    sys.sync(B, A, kDb);
    sys.sync(C, A, kDb);
    for (int step = 0; step < 150; ++step) {
      const auto s = static_cast<std::uint32_t>(rng.below(3));
      if (rng.chance(0.5)) {
        // Small key space → plenty of genuine write-write conflicts.
        sys.put(SiteId{s}, kDb, "k" + std::to_string(rng.below(4)),
                "v" + std::to_string(step));
      } else {
        auto p = static_cast<std::uint32_t>(rng.below(3));
        if (p == s) p = (p + 1) % 3;
        sys.sync(SiteId{s}, SiteId{p}, kDb);
      }
    }
    // Anti-entropy sweeps to convergence.
    for (int round = 0; round < 6; ++round) {
      sys.sync(B, A, kDb);
      sys.sync(C, B, kDb);
      sys.sync(A, C, kDb);
      sys.sync(B, C, kDb);
      sys.sync(A, B, kDb);
    }
    EXPECT_TRUE(sys.replicas_consistent(kDb)) << "trial " << trial;
    EXPECT_GT(sys.totals().semantic_conflicts, 0u);
  }
}

}  // namespace
}  // namespace optrep::repl
