#include <gtest/gtest.h>

#include "repl/state_system.h"

namespace optrep::repl {
namespace {

const SiteId A{0}, B{1}, C{2};
const ObjectId kObj{0};

StateSystem::Config auto_cfg(vv::VectorKind kind = vv::VectorKind::kSrv) {
  StateSystem::Config cfg;
  cfg.n_sites = 4;
  cfg.kind = kind;
  cfg.policy = ResolutionPolicy::kAutomatic;
  cfg.cost = CostModel{.n = 8, .m = 1024};
  return cfg;
}

TEST(StateSystem, CreateAndLocalUpdate) {
  StateSystem sys(auto_cfg());
  sys.create_object(A, kObj, "v1");
  sys.update(A, kObj, "v2");
  const StateReplica& r = sys.replica(A, kObj);
  EXPECT_EQ(r.vector.value(A), 2u);
  EXPECT_EQ(r.data.entries.size(), 2u);
}

TEST(StateSystem, PullPropagatesState) {
  StateSystem sys(auto_cfg());
  sys.create_object(A, kObj, "v1");
  auto out = sys.sync(B, A, kObj);
  EXPECT_EQ(out.action, SyncOutcome::Action::kPulled);
  EXPECT_TRUE(sys.replicas_consistent(kObj));
  EXPECT_EQ(sys.replica(B, kObj).data, sys.replica(A, kObj).data);
}

TEST(StateSystem, EqualReplicasExchangeOnlyProbes) {
  StateSystem sys(auto_cfg());
  sys.create_object(A, kObj, "v1");
  sys.sync(B, A, kObj);
  auto out = sys.sync(B, A, kObj);
  EXPECT_EQ(out.action, SyncOutcome::Action::kNone);
  EXPECT_EQ(out.report.total_bits(), vv::compare_cost_bits(sys.config().cost));
}

TEST(StateSystem, DominatingReceiverPullsNothing) {
  StateSystem sys(auto_cfg());
  sys.create_object(A, kObj, "v1");
  sys.sync(B, A, kObj);
  sys.update(B, kObj, "v2");
  auto out = sys.sync(B, A, kObj);
  EXPECT_EQ(out.action, SyncOutcome::Action::kPushedBack);
  EXPECT_EQ(out.report.elems_sent, 0u);
}

TEST(StateSystem, AutomaticReconciliationMergesPayloads) {
  StateSystem sys(auto_cfg());
  sys.create_object(A, kObj, "base");
  sys.sync(B, A, kObj);
  sys.update(A, kObj, "from-A");
  sys.update(B, kObj, "from-B");
  auto out = sys.sync(B, A, kObj);
  EXPECT_EQ(out.relation, vv::Ordering::kConcurrent);
  EXPECT_EQ(out.action, SyncOutcome::Action::kReconciled);
  const StateReplica& rb = sys.replica(B, kObj);
  EXPECT_TRUE(rb.data.entries.contains("from-A"));
  EXPECT_TRUE(rb.data.entries.contains("from-B"));
  // §2.2 mandated post-reconciliation update: B's element grew by one extra.
  EXPECT_EQ(rb.vector.value(B), 2u);
  EXPECT_EQ(sys.totals().reconciliations, 1u);

  // Push the merged state back: A now simply precedes B.
  auto back = sys.sync(A, B, kObj);
  EXPECT_EQ(back.action, SyncOutcome::Action::kPulled);
  EXPECT_TRUE(sys.replicas_consistent(kObj));
}

TEST(StateSystem, ManualPolicyExcludesConflictingReplicas) {
  auto cfg = auto_cfg(vv::VectorKind::kBrv);
  cfg.policy = ResolutionPolicy::kManual;
  StateSystem sys(cfg);
  sys.create_object(A, kObj, "base");
  sys.sync(B, A, kObj);
  sys.update(A, kObj, "from-A");
  sys.update(B, kObj, "from-B");
  auto out = sys.sync(B, A, kObj);
  EXPECT_EQ(out.action, SyncOutcome::Action::kConflictHeld);
  EXPECT_TRUE(sys.replica(A, kObj).conflicted);
  EXPECT_TRUE(sys.replica(B, kObj).conflicted);
  // Excluded replicas neither update nor synchronize.
  auto again = sys.sync(C, A, kObj);
  EXPECT_EQ(again.action, SyncOutcome::Action::kSkipped);
  EXPECT_EQ(sys.totals().conflicts_detected, 1u);
}

TEST(StateSystem, BrvRequiresManualPolicy) {
  auto cfg = auto_cfg(vv::VectorKind::kBrv);
  EXPECT_DEATH(StateSystem{cfg}, "BRV supports no conflict reconciliation");
}

TEST(StateSystem, SelfSyncRejected) {
  StateSystem sys(auto_cfg());
  sys.create_object(A, kObj, "v1");
  EXPECT_DEATH(sys.sync(A, A, kObj), "cannot synchronize with itself");
}

TEST(StateSystem, SyncFromMissingReplicaSkips) {
  StateSystem sys(auto_cfg());
  auto out = sys.sync(B, A, kObj);
  EXPECT_EQ(out.action, SyncOutcome::Action::kSkipped);
}

TEST(StateSystem, TrafficAccumulatesInTotals) {
  StateSystem sys(auto_cfg());
  sys.create_object(A, kObj, "v1");
  sys.sync(B, A, kObj);
  sys.update(A, kObj, "v2");
  sys.sync(B, A, kObj);
  EXPECT_EQ(sys.totals().sessions, 2u);
  EXPECT_GT(sys.totals().bits, 0u);
  EXPECT_GT(sys.totals().elems_sent, 0u);
}

TEST(StateSystem, ThreeSiteConvergence) {
  for (auto kind : {vv::VectorKind::kCrv, vv::VectorKind::kSrv}) {
    StateSystem sys(auto_cfg(kind));
    sys.create_object(A, kObj, "base");
    sys.sync(B, A, kObj);
    sys.sync(C, A, kObj);
    sys.update(A, kObj, "a1");
    sys.update(B, kObj, "b1");
    sys.update(C, kObj, "c1");
    // Gossip until quiet.
    for (int round = 0; round < 4; ++round) {
      sys.sync(B, A, kObj);
      sys.sync(C, B, kObj);
      sys.sync(A, C, kObj);
    }
    EXPECT_TRUE(sys.replicas_consistent(kObj)) << to_string(kind);
    EXPECT_TRUE(sys.replica(A, kObj).data.entries.contains("b1"));
  }
}

}  // namespace
}  // namespace optrep::repl
