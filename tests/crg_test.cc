#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "graph/crg.h"
#include "tests/test_util.h"
#include "vv/compare.h"
#include "vv/session.h"

namespace optrep::graph {
namespace {

const SiteId A{0}, B{1}, C{2}, E{4}, F{5}, G{6}, H{7};

using SegElem = ReplicationGraph::SegElem;

// The replication graph of Figure 1 (node indices shifted down by one:
// paper node k = tracker node k-1).
struct Fig1Graph {
  ReplicationGraph g;
  ReplicationGraph::NodeIdx n[10];
  Fig1Graph() {
    n[1] = g.add_root(A);
    n[2] = g.add_update(n[1], B);
    n[3] = g.add_update(n[2], C);
    n[4] = g.add_update(n[1], E);
    n[5] = g.add_update(n[4], F);
    n[6] = g.add_update(n[5], G);
    n[7] = g.add_merge(n[2], n[6]);
    n[8] = g.add_update(n[7], H);
    n[9] = g.add_merge(n[8], n[3]);
  }
};

TEST(ReplicationGraph, Figure1Vectors) {
  Fig1Graph f;
  EXPECT_EQ(f.g.vector_of(f.n[1]).to_string(), "<A:1>");
  EXPECT_EQ(f.g.vector_of(f.n[3]).to_string(), "<A:1, B:1, C:1>");
  EXPECT_EQ(f.g.vector_of(f.n[6]).to_string(), "<A:1, E:1, F:1, G:1>");
  EXPECT_EQ(f.g.vector_of(f.n[7]).to_string(), "<A:1, B:1, E:1, F:1, G:1>");
  EXPECT_EQ(f.g.vector_of(f.n[9]).to_string(), "<A:1, B:1, C:1, E:1, F:1, G:1, H:1>");
}

TEST(ReplicationGraph, Figure2Coalescing) {
  // Figure 2: nodes 4, 5, 6 coalesce into one chain; everything else stands
  // alone (node 1 and 2 each have two children; 3 and 8 are below merges).
  Fig1Graph f;
  EXPECT_EQ(f.g.chain_of(f.n[4]), f.g.chain_of(f.n[6]));
  EXPECT_EQ(f.g.chain_of(f.n[5]), f.g.chain_of(f.n[6]));
  EXPECT_EQ(f.g.chain_of(f.n[6]), f.n[6]);
  EXPECT_EQ(f.g.chain_of(f.n[1]), f.n[1]);
  EXPECT_EQ(f.g.chain_of(f.n[2]), f.n[2]);
  EXPECT_EQ(f.g.chain_of(f.n[3]), f.n[3]);
  EXPECT_EQ(f.g.chain_of(f.n[8]), f.n[8]);
  // Merge nodes belong to no chain.
  EXPECT_EQ(f.g.chain_of(f.n[7]), ReplicationGraph::kNone);
  EXPECT_EQ(f.g.chain_of(f.n[9]), ReplicationGraph::kNone);
}

TEST(ReplicationGraph, Figure2PrefixingSegments) {
  Fig1Graph f;
  // "θ3 prefixes θ2 with <C:1>; θ6 prefixes θ1 with <G:1, F:1, E:1>."
  EXPECT_EQ(f.g.prefixing_segment(f.n[3]),
            (std::vector<SegElem>{{C, 1}}));
  EXPECT_EQ(f.g.prefixing_segment(f.n[6]),
            (std::vector<SegElem>{{G, 1}, {F, 1}, {E, 1}}));
  EXPECT_EQ(f.g.prefixing_segment(f.n[1]), (std::vector<SegElem>{{A, 1}}));
  EXPECT_EQ(f.g.prefixing_segment(f.n[8]), (std::vector<SegElem>{{H, 1}}));
}

TEST(ReplicationGraph, Theta9SegmentsMatchFigure2) {
  // "The five segments in θ9 are <C:1>, <H:1>, <G:1,F:1,E:1>, <B:1>, <A:1>."
  Fig1Graph f;
  const auto segs = f.g.live_segments(f.n[9]);
  ASSERT_EQ(segs.size(), 5u);
  std::vector<std::vector<SegElem>> expected = {
      {{A, 1}}, {{B, 1}}, {{C, 1}}, {{G, 1}, {F, 1}, {E, 1}}, {{H, 1}}};
  // live_segments orders by chain id = creation order: A, B, C, GFE, H.
  EXPECT_EQ(segs, expected);
}

TEST(ReplicationGraph, PiSets) {
  Fig1Graph f;
  // Π_θ7 = {chain(1), chain(2), chain(6)}; Π_θ3 = {1, 2, 3}.
  const auto pi7 = f.g.pi(f.n[7]);
  EXPECT_EQ(pi7.size(), 3u);
  EXPECT_TRUE(pi7.contains(f.n[1]));
  EXPECT_TRUE(pi7.contains(f.n[2]));
  EXPECT_TRUE(pi7.contains(f.n[6]));
  const auto pi3 = f.g.pi(f.n[3]);
  EXPECT_EQ(pi3.size(), 3u);
  // Shared: chains 1 and 2 → γ for a θ7/θ3 sync is bounded by 2.
  EXPECT_EQ(f.g.gamma_bound(f.n[7], f.n[3]), 2u);
  // θ7 vs θ9: everything of θ7 is shared.
  EXPECT_EQ(f.g.gamma_bound(f.n[7], f.n[9]), f.g.pi(f.n[7]).size());
}

TEST(ReplicationGraph, SegmentsShrinkWhenElementsRotateOut) {
  // Property iii (§4): segments never grow; they shrink as elements are
  // modified, and vanish at size zero.
  ReplicationGraph g;
  const auto r = g.add_root(A);
  const auto u1 = g.add_update(r, B);  // chain {r, u1}: segment <B:1, A:1>
  const auto u2 = g.add_update(u1, C);  // first branch
  const auto u3 = g.add_update(u1, SiteId{3});  // second branch (site D)
  ASSERT_EQ(g.prefixing_segment(g.chain_of(r)),
            (std::vector<SegElem>{{B, 1}, {A, 1}}));
  const auto m = g.add_merge(u2, u3);
  // B updates again after the merge: B:1 leaves the old segment.
  const auto u4 = g.add_update(m, B);
  const auto live = g.live_segments(u4);
  ASSERT_EQ(live.size(), 4u);
  EXPECT_EQ(live[0], (std::vector<SegElem>{{A, 1}}));  // shrunk: B:1 gone
  EXPECT_EQ(live[1], (std::vector<SegElem>{{C, 1}}));
  EXPECT_EQ(live[2], (std::vector<SegElem>{{SiteId{3}, 1}}));
  EXPECT_EQ(live[3], (std::vector<SegElem>{{B, 2}}));
}

TEST(ReplicationGraph, SegmentsVanishCompletely) {
  // A singleton segment whose only element is overwritten disappears (Φ).
  ReplicationGraph g;
  const auto r = g.add_root(A);
  const auto u1 = g.add_update(r, B);
  const auto u2 = g.add_update(r, C);  // r now has two children: all chains split
  const auto m = g.add_merge(u1, u2);
  const auto u3 = g.add_update(m, B);  // B:2 — chain {u1}'s segment <B:1> vanishes
  const auto live = g.live_segments(u3);
  for (const auto& seg : live) {
    EXPECT_NE(seg, (std::vector<SegElem>{{B, 1}}));
  }
  ASSERT_EQ(live.size(), 3u);  // <A:1>, <C:1>, <B:2>
}

// ---------------------------------------------------------------------------
// Theorem 5.1 validation: evolve replicas with the *real* SYNCS protocol
// while mirroring every action in the replication-graph tracker; at every
// synchronization the observed skipped-segment count must respect the
// |Π_a ∩ Π_b| bound.
// ---------------------------------------------------------------------------

TEST(ReplicationGraph, ObservedGammaRespectsTheorem51Bound) {
  Rng rng(31337);
  for (int trial = 0; trial < 30; ++trial) {
    constexpr std::uint32_t kSites = 5;
    ReplicationGraph g;
    std::vector<vv::RotatingVector> vec(kSites);
    std::vector<ReplicationGraph::NodeIdx> at(kSites, ReplicationGraph::kNone);
    // Site 0 creates the object; everyone else copies lazily on first use.
    const auto root = g.add_root(SiteId{0});
    vec[0].record_update(SiteId{0});
    at[0] = root;

    std::uint64_t checked = 0;
    for (int step = 0; step < 120; ++step) {
      const auto i = static_cast<std::uint32_t>(rng.below(kSites));
      if (rng.chance(0.45)) {
        if (at[i] == ReplicationGraph::kNone) continue;
        vec[i].record_update(SiteId{i});
        at[i] = g.add_update(at[i], SiteId{i});
        continue;
      }
      auto j = static_cast<std::uint32_t>(rng.below(kSites));
      if (j == i) j = (j + 1) % kSites;
      if (at[j] == ReplicationGraph::kNone) continue;
      if (at[i] == ReplicationGraph::kNone) {
        // First contact: copy the replica.
        sim::EventLoop loop;
        vv::sync_skip(loop, vec[i], vec[j], test::ideal(vv::VectorKind::kSrv, kSites));
        at[i] = at[j];
        continue;
      }
      const auto rel = vv::compare_fast(vec[i], vec[j]);
      const std::size_t bound = g.gamma_bound(at[i], at[j]);
      sim::EventLoop loop;
      const auto rep =
          vv::sync_skip(loop, vec[i], vec[j], test::ideal(vv::VectorKind::kSrv, kSites));
      ASSERT_LE(rep.segments_skipped, bound)
          << "trial " << trial << " step " << step << ": observed gamma exceeds "
          << "the Theorem 5.1 bound";
      ++checked;
      switch (rel) {
        case vv::Ordering::kBefore:
          at[i] = at[j];
          break;
        case vv::Ordering::kConcurrent: {
          const auto merged = g.add_merge(at[i], at[j]);
          vec[i].record_update(SiteId{i});  // §2.2 post-reconciliation update
          at[i] = g.add_update(merged, SiteId{i});
          break;
        }
        default:
          break;  // kEqual / kAfter: receiver unchanged
      }
      // The tracker's vector must agree with the protocol's.
      ASSERT_TRUE(vec[i].same_values(g.vector_of(at[i])))
          << "trial " << trial << " step " << step;
    }
    ASSERT_GT(checked, 10u) << "trial " << trial << " exercised too few syncs";
  }
}

}  // namespace
}  // namespace optrep::graph
