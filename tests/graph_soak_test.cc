// SYNCG soak tests with shrinking, mirroring the vector-protocol soak: random
// multi-site operation histories, checked for exact unions, closure, and
// traffic invariants, with greedy minimization of any failing sequence.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>

#include "common/rng.h"
#include "graph/sync_graph.h"

namespace optrep::graph {
namespace {

struct GOp {
  bool is_update;
  std::uint32_t r, s;
};

struct GraphFuzzConfig {
  vv::TransferMode mode{vv::TransferMode::kIdeal};
  std::uint32_t n_sites{5};
  std::uint32_t steps{100};
  double update_prob{0.5};
};

std::string describe(const std::vector<GOp>& ops) {
  std::ostringstream out;
  for (const GOp& op : ops) {
    if (op.is_update) {
      out << "U" << op.r << " ";
    } else {
      out << "S" << op.r << "<-" << op.s << " ";
    }
  }
  return out.str();
}

std::optional<std::size_t> run_ops(const GraphFuzzConfig& cfg, const std::vector<GOp>& ops,
                                   std::string* why) {
  std::vector<CausalGraph> g(cfg.n_sites);
  std::vector<std::uint64_t> seq(cfg.n_sites, 0);
  for (auto& gr : g) gr.create(UpdateId{SiteId{31}, 1});

  for (std::size_t k = 0; k < ops.size(); ++k) {
    const GOp& op = ops[k];
    if (op.is_update) {
      g[op.r].append(UpdateId{SiteId{op.r}, ++seq[op.r]});
      continue;
    }
    const CausalGraph& src = g[op.s];
    CausalGraph& dst = g[op.r];
    const vv::Ordering rel = dst.compare(src);
    if (rel == vv::Ordering::kEqual || rel == vv::Ordering::kAfter) continue;

    const std::size_t before_nodes = dst.node_count();
    GraphSyncOptions opt;
    opt.mode = cfg.mode;
    opt.cost = CostModel{.n = cfg.n_sites, .m = 1 << 20};
    if (cfg.mode == vv::TransferMode::kPipelined) {
      opt.net = {.latency_s = 0.001 * (k % 3),
                 .bandwidth_bits_per_s = (k % 2) != 0 ? 1e5 : 1e8};
    }
    sim::EventLoop loop;
    const auto rep = sync_graph(loop, dst, src, opt);

    for (const Node& n : src.all_nodes()) {
      if (!dst.contains(n.id)) {
        *why = "union is missing node " + update_name(n.id);
        return k;
      }
    }
    if (rep.nodes_new != dst.node_count() - before_nodes) {
      *why = "nodes_new accounting mismatch";
      return k;
    }
    if (cfg.mode == vv::TransferMode::kIdeal &&
        rep.nodes_redundant > rep.skipto_msgs + 1) {
      *why = "redundancy exceeded one per branch in ideal mode";
      return k;
    }
    if (rel == vv::Ordering::kBefore) {
      dst.set_sink(src.sink());
    } else {
      dst.merge(UpdateId{SiteId{op.r}, ++seq[op.r]}, src.sink());
    }
    if (!dst.validate_closed()) {
      *why = "graph not closed after sync";
      return k;
    }
  }
  return std::nullopt;
}

std::vector<GOp> shrink(const GraphFuzzConfig& cfg, std::vector<GOp> ops) {
  std::string why;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      std::vector<GOp> cand = ops;
      cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
      if (run_ops(cfg, cand, &why).has_value()) {
        ops = std::move(cand);
        changed = true;
        break;
      }
    }
  }
  return ops;
}

void fuzz(const GraphFuzzConfig& cfg, std::uint64_t seed_lo, std::uint64_t seed_hi) {
  for (std::uint64_t seed = seed_lo; seed <= seed_hi; ++seed) {
    Rng rng(seed);
    std::vector<GOp> ops;
    for (std::uint32_t step = 0; step < cfg.steps; ++step) {
      GOp op;
      op.is_update = rng.chance(cfg.update_prob);
      op.r = static_cast<std::uint32_t>(rng.below(cfg.n_sites));
      do {
        op.s = static_cast<std::uint32_t>(rng.below(cfg.n_sites));
      } while (op.s == op.r);
      ops.push_back(op);
    }
    std::string why;
    const auto fail = run_ops(cfg, ops, &why);
    if (fail.has_value()) {
      ops.resize(*fail + 1);
      const auto minimal = shrink(cfg, ops);
      FAIL() << "seed " << seed << ": " << why << "\nminimal repro ("
             << minimal.size() << " ops): " << describe(minimal);
    }
  }
}

class GraphSoak : public ::testing::TestWithParam<vv::TransferMode> {};

TEST_P(GraphSoak, RandomHistoriesProduceExactUnions) {
  GraphFuzzConfig cfg;
  cfg.mode = GetParam();
  fuzz(cfg, 1, 120);
}

TEST_P(GraphSoak, MergeHeavyHistories) {
  GraphFuzzConfig cfg;
  cfg.mode = GetParam();
  cfg.update_prob = 0.2;  // constant branching + merging
  cfg.steps = 150;
  fuzz(cfg, 200, 280);
}

TEST_P(GraphSoak, DeepChains) {
  GraphFuzzConfig cfg;
  cfg.mode = GetParam();
  cfg.update_prob = 0.85;
  cfg.steps = 250;
  fuzz(cfg, 400, 450);
}

INSTANTIATE_TEST_SUITE_P(Modes, GraphSoak,
                         ::testing::Values(vv::TransferMode::kIdeal,
                                           vv::TransferMode::kStopAndWait,
                                           vv::TransferMode::kPipelined),
                         [](const auto& info) {
                           switch (info.param) {
                             case vv::TransferMode::kIdeal: return "Ideal";
                             case vv::TransferMode::kStopAndWait: return "StopAndWait";
                             case vv::TransferMode::kPipelined: return "Pipelined";
                           }
                           return "?";
                         });

}  // namespace
}  // namespace optrep::graph
