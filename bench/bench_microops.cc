// Micro-operation benchmarks for the RotatingVector hot paths that the flat
// site index (src/vv/flat_index.h) accelerates: record_update, rotate_after,
// value lookup, erase, and COMPARE.
//
// Two kinds of output:
//   * BM_* wall-clock microbenchmarks — machine-dependent, never gated.
//   * structural rows in BENCH_microops.json — flat-index probe statistics,
//     index footprint and an order checksum after a fixed churn workload.
//     These carry only model-derived integers, so the smoke rows are
//     byte-identical on every machine and serve as the committed baseline
//     for the optrep_report regression gate ("probe" metrics gate on any
//     probe-chain growth; the checksum pins the ≺ order itself).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

using namespace optrep;
using namespace optrep::bench;

namespace {

// FNV-1a over the iteration order, values and flag bits: any change to the
// ≺ list or the element payloads changes the hash.
std::uint64_t order_hash(const vv::RotatingVector& v) {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t x) { h = (h ^ x) * 1099511628211ull; };
  for (const auto& e : v) {
    mix(e.site.value);
    mix(e.value);
    mix((e.segment ? 2u : 0u) | (e.conflict ? 1u : 0u));
  }
  return h;
}

struct OpsRow {
  std::uint64_t size{0};
  std::uint64_t probe_total{0};
  std::uint64_t probe_max{0};
  std::uint64_t index_bytes{0};
  std::uint64_t order{0};
};

// Deterministic churn: build a linear history, erase every third site
// (exercising backward-shift deletion and segment-bit carry), re-insert a
// subset at the front, then run a few update rounds. The final probe stats
// measure the index the workload actually leaves behind — tombstone-free
// deletion keeps the chains short, which is exactly what the gate pins.
OpsRow churn(std::uint32_t n) {
  vv::RotatingVector v = linear_history(n);
  for (std::uint32_t i = 0; i < n; i += 3) v.erase(SiteId{i});
  for (std::uint32_t i = 0; i < n; i += 6) {
    v.rotate_after(std::nullopt, SiteId{i});
    v.set_element(SiteId{i}, i + 1, false, false);
  }
  for (std::uint32_t round = 0; round < 4; ++round) {
    for (std::uint32_t i = 1; i < n; i += 2) v.record_update(SiteId{i});
  }
  const auto ps = v.index_probe_stats();
  return {v.size(), ps.total, ps.max, ps.bytes, order_hash(v)};
}

// ---- wall-clock micro-ops (not gated) -------------------------------------

void BM_RecordUpdateHit(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  vv::RotatingVector v = linear_history(n);
  std::uint32_t i = 0;
  for (auto _ : state) v.record_update(SiteId{i++ % n});
  benchmark::DoNotOptimize(v.size());
}
BENCHMARK(BM_RecordUpdateHit)->RangeMultiplier(8)->Range(8, 32768);

void BM_Value(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const vv::RotatingVector v = linear_history(n);
  std::uint32_t i = 0;
  for (auto _ : state) benchmark::DoNotOptimize(v.value(SiteId{i++ % n}));
}
BENCHMARK(BM_Value)->RangeMultiplier(8)->Range(8, 32768);

void BM_RotateAfterFront(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  vv::RotatingVector v = linear_history(n);
  std::uint32_t i = 0;
  for (auto _ : state) v.rotate_after(std::nullopt, SiteId{i++ % n});
  benchmark::DoNotOptimize(v.size());
}
BENCHMARK(BM_RotateAfterFront)->RangeMultiplier(8)->Range(8, 4096);

void BM_EraseReinsert(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  vv::RotatingVector v = linear_history(n);
  std::uint32_t i = 0;
  for (auto _ : state) {
    const SiteId s{i++ % n};
    v.erase(s);
    v.rotate_after(std::nullopt, s);
    v.set_element(s, 1, false, false);
  }
  benchmark::DoNotOptimize(v.size());
}
BENCHMARK(BM_EraseReinsert)->RangeMultiplier(8)->Range(8, 4096);

void BM_CompareFast(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  vv::RotatingVector b = linear_history(n);
  vv::RotatingVector a = b;
  b.record_update(SiteId{0});
  for (auto _ : state) benchmark::DoNotOptimize(vv::compare_fast(a, b));
}
BENCHMARK(BM_CompareFast)->RangeMultiplier(8)->Range(8, 32768);

}  // namespace

int main(int argc, char** argv) {
  init_bench(&argc, argv);
  std::printf("==== bench_microops: RotatingVector point-op structure ====\n");
  std::printf("(fixed churn workload: linear history, erase 1/3, reinsert 1/6,\n"
              " 4 update rounds; probe stats over the surviving flat index)\n\n");
  std::printf("%-8s | %-8s %-12s %-10s %-12s %-18s\n", "n", "size", "probe_tot",
              "probe_max", "index B", "order hash");
  print_rule(76);
  const std::vector<std::uint32_t> ns =
      smoke() ? std::vector<std::uint32_t>{64, 256}
              : std::vector<std::uint32_t>{64, 256, 1024, 4096, 16384};
  const auto rows =
      sweep(ns, [](std::uint32_t n, std::size_t) { return churn(n); });
  BenchReporter reporter("microops");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const OpsRow& r = rows[i];
    std::printf("%-8u | %-8llu %-12llu %-10llu %-12llu %016llx\n", ns[i],
                (unsigned long long)r.size, (unsigned long long)r.probe_total,
                (unsigned long long)r.probe_max, (unsigned long long)r.index_bytes,
                (unsigned long long)r.order);
    obs::JsonWriter w;
    w.begin_object();
    w.field("n", ns[i]);
    w.field("size", r.size);
    w.field("probe_total", r.probe_total);
    w.field("probe_max", r.probe_max);
    w.field("index_bytes", r.index_bytes);
    w.field("order_hash", r.order);
    w.end_object();
    reporter.add_row(w.take());
  }
  reporter.flush();
  std::printf("\n(expected shape: probe_total stays near size — load factor <= 0.75 and\n"
              " backward-shift deletion keep chains short; probe_max stays O(1). The\n"
              " order hash pins the exact ≺ order the churn leaves behind.)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
