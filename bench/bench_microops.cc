// Micro-operation benchmarks for the RotatingVector hot paths that the flat
// site index (src/vv/flat_index.h) accelerates: record_update, rotate_after,
// value lookup, erase, and COMPARE.
//
// Two kinds of output:
//   * BM_* wall-clock microbenchmarks — machine-dependent, never gated.
//   * structural rows in BENCH_microops.json — flat-index probe statistics,
//     index footprint and an order checksum after a fixed churn workload.
//     These carry only model-derived integers, so the smoke rows are
//     byte-identical on every machine and serve as the committed baseline
//     for the optrep_report regression gate ("probe" metrics gate on any
//     probe-chain growth; the checksum pins the ≺ order itself).
// A locked_churn row family replays the same churn under the vector's
// embedded optimistic versioned lock (rt/olock.h) — guarded mutations plus a
// validated optimistic readback — and pins the single-threaded lock traffic
// (acquisitions exact, retries/queue waits 0) and that the result is
// bit-identical to the unlocked run.
// A third row family measures the telemetry contract (src/obs/timeline.h):
// with sampling off, a steady-state sync session must touch the allocator
// zero times (timeline_off_allocs, gated at its committed baseline of 0);
// with sampling on, a fixed state-transfer run pins the timeline's sample /
// series counts and exported byte size — all model-derived integers. The
// causal-tracing family (src/obs/causal.h) makes the same two claims:
// causal_off_allocs and causal_on_allocs are both gated at 0 (the tracer's
// ring is sized at construction, so even tracing-on steady state stays off
// the allocator), and a fixed run pins the optrep.causal/v1 dump shape.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "bench/bench_util.h"
#include "obs/causal.h"
#include "obs/timeline.h"
#include "repl/state_system.h"
#include "rt/olock.h"
#include "workload/trace.h"

// Global allocation counter (same pattern as tests/obs_test.cc): every path
// through operator new bumps it, so the sampling-overhead row can report how
// many heap allocations a measured region performed. Atomic because the
// sweep pool's workers allocate concurrently.
static std::atomic<std::uint64_t> g_alloc_count{0};

// GCC pairs the replaced operators against the built-in malloc/free and warns
// spuriously; replacement operators routing through malloc are well-defined.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

using namespace optrep;
using namespace optrep::bench;

namespace {

// FNV-1a over the iteration order, values and flag bits: any change to the
// ≺ list or the element payloads changes the hash.
std::uint64_t order_hash(const vv::RotatingVector& v) {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t x) { h = (h ^ x) * 1099511628211ull; };
  for (const auto& e : v) {
    mix(e.site.value);
    mix(e.value);
    mix((e.segment ? 2u : 0u) | (e.conflict ? 1u : 0u));
  }
  return h;
}

struct OpsRow {
  std::uint64_t size{0};
  std::uint64_t probe_total{0};
  std::uint64_t probe_max{0};
  std::uint64_t index_bytes{0};
  std::uint64_t order{0};
};

// Deterministic churn: build a linear history, erase every third site
// (exercising backward-shift deletion and segment-bit carry), re-insert a
// subset at the front, then run a few update rounds. The final probe stats
// measure the index the workload actually leaves behind — tombstone-free
// deletion keeps the chains short, which is exactly what the gate pins.
OpsRow churn(std::uint32_t n) {
  vv::RotatingVector v = linear_history(n);
  for (std::uint32_t i = 0; i < n; i += 3) v.erase(SiteId{i});
  for (std::uint32_t i = 0; i < n; i += 6) {
    v.rotate_after(std::nullopt, SiteId{i});
    v.set_element(SiteId{i}, i + 1, false, false);
  }
  for (std::uint32_t round = 0; round < 4; ++round) {
    for (std::uint32_t i = 1; i < n; i += 2) v.record_update(SiteId{i});
  }
  const auto ps = v.index_probe_stats();
  return {v.size(), ps.total, ps.max, ps.bytes, order_hash(v)};
}

// ---- optimistic-lock overhead on the churn workload (gated) ---------------

// The identical churn run with every mutation under the vector's embedded
// versioned lock (rt/olock.h) and a post-churn readback of every site slot
// through a validated optimistic read. Single-threaded, so the lock traffic
// is a pure function of the workload: acquisitions counts the guarded
// mutation blocks exactly, opt_retries and queue_waits are 0 (nobody to
// interfere), every readback validates first try, and the order hash must
// equal the unlocked run's — the lock changes synchronization, never
// results. The committed baseline pins all of it; any retry or hash drift
// fails the report gate.
struct LockedRow {
  OpsRow ops;
  std::uint64_t acquisitions{0};
  std::uint64_t opt_retries{0};
  std::uint64_t queue_waits{0};
  std::uint64_t validated_reads{0};
};

LockedRow locked_churn(std::uint32_t n) {
  vv::RotatingVector v = linear_history(n);
  v.olock().reset_counters();
  for (std::uint32_t i = 0; i < n; i += 3) {
    rt::OLockGuard g(v.olock());
    v.erase(SiteId{i});
  }
  for (std::uint32_t i = 0; i < n; i += 6) {
    rt::OLockGuard g(v.olock());
    v.rotate_after(std::nullopt, SiteId{i});
    v.set_element(SiteId{i}, i + 1, false, false);
  }
  for (std::uint32_t round = 0; round < 4; ++round) {
    rt::OLockGuard g(v.olock());
    for (std::uint32_t i = 1; i < n; i += 2) v.record_update(SiteId{i});
  }
  LockedRow row;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint64_t sink = 0;
    if (rt::optimistic_read(v.olock(), 4, [&] { sink = v.value(SiteId{i}); })) {
      ++row.validated_reads;
    }
    benchmark::DoNotOptimize(sink);
  }
  const auto ps = v.index_probe_stats();
  row.ops = {v.size(), ps.total, ps.max, ps.bytes, order_hash(v)};
  const rt::OLock::Counters c = v.olock().counters();
  row.acquisitions = c.acquisitions;
  row.opt_retries = c.opt_retries;
  row.queue_waits = c.queue_waits;
  return row;
}

// ---- telemetry sampling overhead (gated) ----------------------------------

// Heap allocations performed by one steady-state SRV sync session with all
// sampling off (no timeline, no recorder, no tracer) — the telemetry-disabled
// hot path. The committed baseline is 0; the "timeline" gate rule fails the
// report on any increase, so telemetry can never silently put the per-message
// path back on the allocator. Mirrors obs_test's HotPath setup: warm one
// session to size every retained buffer, then measure the second.
std::uint64_t timeline_off_allocs() {
  constexpr std::uint32_t kSites = 24;
  constexpr std::uint32_t kMissing = 8;
  vv::RotatingVector base;
  for (std::uint32_t i = 0; i < kSites - kMissing; ++i) base.record_update(SiteId{i});
  vv::RotatingVector b = base;
  for (std::uint32_t i = kSites - kMissing; i < kSites; ++i) b.record_update(SiteId{i});

  vv::SyncOptions opt;
  opt.kind = vv::VectorKind::kSrv;
  opt.mode = vv::TransferMode::kPipelined;
  opt.cost = CostModel{.n = kSites, .m = 1 << 16};
  opt.known_relation = vv::Ordering::kBefore;

  sim::EventLoop loop;
  loop.reserve(4 * kSites);
  vv::RotatingVector warm = base;
  warm.reserve(kSites);
  vv::sync_rotating(loop, warm, b, opt);

  vv::RotatingVector a = base;
  a.reserve(kSites);
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  benchmark::DoNotOptimize(vv::sync_rotating(loop, a, b, opt));
  return g_alloc_count.load(std::memory_order_relaxed) - before;
}

// Same contract for causal tracing (src/obs/causal.h): with no tracer wired
// the per-message path is identical to the telemetry-off build, and with a
// tracer attached the steady state is ring writes only — the tracer's buffer
// is sized once at construction, so a warmed traced session must also touch
// the allocator zero times. Both rows are gated at their committed baseline
// of 0 (the "causal" / "timeline" report rules).
std::uint64_t causal_session_allocs(obs::CausalTracer* causal) {
  constexpr std::uint32_t kSites = 24;
  constexpr std::uint32_t kMissing = 8;
  vv::RotatingVector base;
  for (std::uint32_t i = 0; i < kSites - kMissing; ++i) base.record_update(SiteId{i});
  vv::RotatingVector b = base;
  for (std::uint32_t i = kSites - kMissing; i < kSites; ++i) b.record_update(SiteId{i});

  vv::SyncOptions opt;
  opt.kind = vv::VectorKind::kSrv;
  opt.mode = vv::TransferMode::kPipelined;
  opt.cost = CostModel{.n = kSites, .m = 1 << 16};
  opt.known_relation = vv::Ordering::kBefore;
  opt.causal = causal;
  opt.src_site = SiteId{1};
  opt.dst_site = SiteId{0};

  sim::EventLoop loop;
  loop.reserve(4 * kSites);
  vv::RotatingVector warm = base;
  warm.reserve(kSites);
  vv::sync_rotating(loop, warm, b, opt);

  vv::RotatingVector a = base;
  a.reserve(kSites);
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  benchmark::DoNotOptimize(vv::sync_rotating(loop, a, b, opt));
  return g_alloc_count.load(std::memory_order_relaxed) - before;
}

// A fixed state-transfer run with causal tracing on: event/span counts and
// the exported optrep.causal/v1 byte size are pure functions of the workload
// — machine-independent integers pinning the dump shape.
struct CausalRow {
  std::uint64_t events{0};
  std::uint64_t spans{0};
  std::uint64_t dropped{0};
  std::uint64_t json_bytes{0};
};

CausalRow causal_on_row() {
  obs::CausalTracer tracer(7);
  repl::StateSystem::Config cfg;
  cfg.n_sites = 8;
  cfg.kind = vv::VectorKind::kSrv;
  cfg.causal = &tracer;
  cfg.cost = CostModel{.n = 8, .m = 1 << 16};
  repl::StateSystem sys(cfg);
  wl::GeneratorConfig g;
  g.n_sites = 8;
  g.n_objects = 1;
  g.steps = 200;
  g.update_prob = 0.5;
  g.seed = 7;
  wl::run_state(sys, wl::generate(g));
  return {tracer.total_recorded(), tracer.spans_opened(), tracer.dropped(),
          obs::causal_to_json(tracer).size()};
}

// A fixed state-transfer run with per-session timeline sampling on: the
// sample/series counts and the exported document's byte size are pure
// functions of the workload, so these rows are byte-identical on every
// machine and pin the optrep.timeline/v1 output shape.
struct SamplingRow {
  std::uint64_t samples{0};
  std::uint64_t series{0};
  std::uint64_t dropped_samples{0};
  std::uint64_t json_bytes{0};
  std::uint64_t divergence_final{0};
};

SamplingRow timeline_on_row() {
  obs::Timeline tl;
  repl::StateSystem::Config cfg;
  cfg.n_sites = 8;
  cfg.kind = vv::VectorKind::kSrv;
  cfg.timeline = &tl;
  cfg.timeline_every = 4;
  cfg.cost = CostModel{.n = 8, .m = 1 << 16};
  repl::StateSystem sys(cfg);
  wl::GeneratorConfig g;
  g.n_sites = 8;
  g.n_objects = 1;
  g.steps = 200;
  g.update_prob = 0.5;
  g.seed = 7;
  wl::run_state(sys, wl::generate(g));
  sys.sample_timeline();
  const std::string json = obs::timeline_to_json(tl);
  const obs::Timeline::Series* div = tl.find("repl.divergence");
  return {tl.samples(), tl.series_count(), tl.dropped_samples(), json.size(),
          div != nullptr && !div->values.empty()
              ? static_cast<std::uint64_t>(div->values.back())
              : std::uint64_t{0}};
}

// ---- wall-clock micro-ops (not gated) -------------------------------------

void BM_RecordUpdateHit(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  vv::RotatingVector v = linear_history(n);
  std::uint32_t i = 0;
  for (auto _ : state) v.record_update(SiteId{i++ % n});
  benchmark::DoNotOptimize(v.size());
}
BENCHMARK(BM_RecordUpdateHit)->RangeMultiplier(8)->Range(8, 32768);

void BM_Value(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const vv::RotatingVector v = linear_history(n);
  std::uint32_t i = 0;
  for (auto _ : state) benchmark::DoNotOptimize(v.value(SiteId{i++ % n}));
}
BENCHMARK(BM_Value)->RangeMultiplier(8)->Range(8, 32768);

void BM_RotateAfterFront(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  vv::RotatingVector v = linear_history(n);
  std::uint32_t i = 0;
  for (auto _ : state) v.rotate_after(std::nullopt, SiteId{i++ % n});
  benchmark::DoNotOptimize(v.size());
}
BENCHMARK(BM_RotateAfterFront)->RangeMultiplier(8)->Range(8, 4096);

void BM_EraseReinsert(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  vv::RotatingVector v = linear_history(n);
  std::uint32_t i = 0;
  for (auto _ : state) {
    const SiteId s{i++ % n};
    v.erase(s);
    v.rotate_after(std::nullopt, s);
    v.set_element(s, 1, false, false);
  }
  benchmark::DoNotOptimize(v.size());
}
BENCHMARK(BM_EraseReinsert)->RangeMultiplier(8)->Range(8, 4096);

// Locked-vs-unlocked wall costs of the hot point ops: BM_RecordUpdateLocked
// against BM_RecordUpdateHit prices the writer path (one uncontended MCS
// acquire/release per mutation), BM_ValueOptimistic against BM_Value prices
// a validated optimistic read (two version-word loads around the probe).
void BM_RecordUpdateLocked(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  vv::RotatingVector v = linear_history(n);
  std::uint32_t i = 0;
  for (auto _ : state) {
    rt::OLockGuard g(v.olock());
    v.record_update(SiteId{i++ % n});
  }
  benchmark::DoNotOptimize(v.size());
}
BENCHMARK(BM_RecordUpdateLocked)->RangeMultiplier(8)->Range(8, 32768);

void BM_ValueOptimistic(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const vv::RotatingVector v = linear_history(n);
  std::uint32_t i = 0;
  for (auto _ : state) {
    std::uint64_t sink = 0;
    rt::optimistic_read(v.olock(), 4, [&] { sink = v.value(SiteId{i++ % n}); });
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_ValueOptimistic)->RangeMultiplier(8)->Range(8, 32768);

void BM_CompareFast(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  vv::RotatingVector b = linear_history(n);
  vv::RotatingVector a = b;
  b.record_update(SiteId{0});
  for (auto _ : state) benchmark::DoNotOptimize(vv::compare_fast(a, b));
}
BENCHMARK(BM_CompareFast)->RangeMultiplier(8)->Range(8, 32768);

}  // namespace

int main(int argc, char** argv) {
  init_bench(&argc, argv);
  std::printf("==== bench_microops: RotatingVector point-op structure ====\n");
  std::printf("(fixed churn workload: linear history, erase 1/3, reinsert 1/6,\n"
              " 4 update rounds; probe stats over the surviving flat index)\n\n");
  std::printf("%-8s | %-8s %-12s %-10s %-12s %-18s\n", "n", "size", "probe_tot",
              "probe_max", "index B", "order hash");
  print_rule(76);
  const std::vector<std::uint32_t> ns =
      smoke() ? std::vector<std::uint32_t>{64, 256}
              : std::vector<std::uint32_t>{64, 256, 1024, 4096, 16384};
  const auto rows =
      sweep(ns, [](std::uint32_t n, std::size_t) { return churn(n); });
  BenchReporter reporter("microops");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const OpsRow& r = rows[i];
    std::printf("%-8u | %-8llu %-12llu %-10llu %-12llu %016llx\n", ns[i],
                (unsigned long long)r.size, (unsigned long long)r.probe_total,
                (unsigned long long)r.probe_max, (unsigned long long)r.index_bytes,
                (unsigned long long)r.order);
    obs::JsonWriter w;
    w.begin_object();
    w.field("n", ns[i]);
    w.field("size", r.size);
    w.field("probe_total", r.probe_total);
    w.field("probe_max", r.probe_max);
    w.field("index_bytes", r.index_bytes);
    w.field("order_hash", r.order);
    w.end_object();
    reporter.add_row(w.take());
  }
  std::printf("\n---- optimistic-lock overhead (same churn, guarded writes +\n"
              "     validated optimistic readback; must be result-identical) ----\n");
  std::printf("%-8s | %-12s %-10s %-10s %-10s %-10s\n", "n", "acquisitions",
              "retries", "qwaits", "validated", "order ok");
  print_rule(70);
  const auto locked_rows =
      sweep(ns, [](std::uint32_t n, std::size_t) { return locked_churn(n); });
  for (std::size_t i = 0; i < locked_rows.size(); ++i) {
    const LockedRow& r = locked_rows[i];
    const bool order_ok = r.ops.order == rows[i].order;
    std::printf("%-8u | %-12llu %-10llu %-10llu %-10llu %s\n", ns[i],
                (unsigned long long)r.acquisitions,
                (unsigned long long)r.opt_retries,
                (unsigned long long)r.queue_waits,
                (unsigned long long)r.validated_reads, order_ok ? "yes" : "NO");
    if (!order_ok) {
      std::fprintf(stderr, "FAIL: locked churn diverged from unlocked at n=%u\n",
                   ns[i]);
      return 1;
    }
    obs::JsonWriter w;
    w.begin_object();
    w.field("scenario", "locked_churn");
    w.field("n", ns[i]);
    w.field("olock_acquisitions", r.acquisitions);
    w.field("olock_opt_retries", r.opt_retries);
    w.field("olock_queue_waits", r.queue_waits);
    w.field("validated_reads", r.validated_reads);
    w.field("order_matches_unlocked", std::uint64_t{1});
    w.field("order_hash", r.ops.order);
    w.end_object();
    reporter.add_row(w.take());
  }
  std::printf("\n---- telemetry sampling overhead "
              "(timeline off: allocs; on: document shape) ----\n");
  const std::uint64_t off_allocs = timeline_off_allocs();
  const SamplingRow on = timeline_on_row();
  std::printf("timeline off: %llu heap allocations in a steady-state session\n",
              (unsigned long long)off_allocs);
  std::printf("timeline on:  %llu samples x %llu series, %llu dropped, "
              "%llu JSON bytes, final divergence %llu\n",
              (unsigned long long)on.samples, (unsigned long long)on.series,
              (unsigned long long)on.dropped_samples, (unsigned long long)on.json_bytes,
              (unsigned long long)on.divergence_final);
  {
    obs::JsonWriter w;
    w.begin_object();
    w.field("scenario", "timeline_off");
    w.field("timeline_off_allocs", off_allocs);
    w.end_object();
    reporter.add_row(w.take());
  }
  {
    obs::JsonWriter w;
    w.begin_object();
    w.field("scenario", "timeline_on");
    w.field("timeline_samples", on.samples);
    w.field("timeline_series", on.series);
    w.field("timeline_dropped_samples", on.dropped_samples);
    w.field("timeline_json_bytes", on.json_bytes);
    w.field("timeline_divergence_final", on.divergence_final);
    w.end_object();
    reporter.add_row(w.take());
  }
  std::printf("\n---- causal tracing overhead (off: allocs; on: allocs + dump shape) ----\n");
  const std::uint64_t causal_off = causal_session_allocs(nullptr);
  obs::CausalTracer bench_tracer(7);
  const std::uint64_t causal_on = causal_session_allocs(&bench_tracer);
  const CausalRow crow = causal_on_row();
  std::printf("causal off: %llu heap allocations in a steady-state session\n",
              (unsigned long long)causal_off);
  std::printf("causal on:  %llu heap allocations; fixed run: %llu events, "
              "%llu spans, %llu dropped, %llu JSON bytes\n",
              (unsigned long long)causal_on, (unsigned long long)crow.events,
              (unsigned long long)crow.spans, (unsigned long long)crow.dropped,
              (unsigned long long)crow.json_bytes);
  {
    obs::JsonWriter w;
    w.begin_object();
    w.field("scenario", "causal_off");
    w.field("causal_off_allocs", causal_off);
    w.end_object();
    reporter.add_row(w.take());
  }
  {
    obs::JsonWriter w;
    w.begin_object();
    w.field("scenario", "causal_on");
    w.field("causal_on_allocs", causal_on);
    w.field("causal_events", crow.events);
    w.field("causal_spans", crow.spans);
    w.field("causal_dropped", crow.dropped);
    w.field("causal_json_bytes", crow.json_bytes);
    w.end_object();
    reporter.add_row(w.take());
  }
  reporter.flush();
  std::printf("\n(expected shape: probe_total stays near size — load factor <= 0.75 and\n"
              " backward-shift deletion keep chains short; probe_max stays O(1). The\n"
              " order hash pins the exact ≺ order the churn leaves behind.\n"
              " timeline_off_allocs, causal_off_allocs and causal_on_allocs are gated at 0:\n"
              " telemetry must cost nothing when off, and tracing must stay off the\n"
              " allocator even when on.)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
