// Fault-injection overhead — what a lossy link costs the SYNC* protocols
// when sync_with_recovery retries under drop / duplicate / reorder / corrupt
// faults (src/sim/fault_link.h).
//
// Sweeps fault mix × rate over a fixed fast-forward workload and prints, per
// configuration: injected faults, retries, exhausted budgets, recovery bits
// and total transferred bits. Everything is model-derived and seeded, so the
// BENCH_faults.json rows are byte-identical on every machine; the regression
// gate holds retries / failures / *_bits to the committed baseline.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

using namespace optrep;
using namespace optrep::bench;

namespace {

struct Mix {
  const char* name;
  double drop, dup, reorder, corrupt;
};

constexpr Mix kMixes[] = {
    {"drop", 1, 0, 0, 0},
    {"dup", 0, 1, 0, 0},
    {"reorder", 0, 0, 1, 0},
    {"corrupt", 0, 0, 0, 1},
    {"all", 0.25, 0.25, 0.25, 0.25},
};

struct Row {
  std::uint64_t faults{}, retries{}, failures{}, recovery_bits{}, total_bits{};
};

// `sessions` fast-forward syncs (n sites, fixed delta) through a link whose
// per-message fault probabilities are `mix` scaled by `rate`.
Row measure(const Mix& mix, double rate, std::uint32_t sessions) {
  constexpr std::uint32_t kSites = 32, kDelta = 6;
  Row row;
  const vv::RotatingVector base = linear_history(kSites - kDelta);
  for (std::uint32_t t = 0; t < sessions; ++t) {
    vv::RotatingVector b = base;
    for (std::uint32_t i = 0; i < kDelta; ++i)
      b.record_update(SiteId{kSites - kDelta + i});
    vv::RotatingVector a = base;

    vv::SyncOptions opt;
    opt.kind = vv::VectorKind::kSrv;
    opt.mode = vv::TransferMode::kPipelined;
    opt.cost = CostModel{.n = kSites, .m = 1 << 16};
    opt.net = {.latency_s = 0.002, .bandwidth_bits_per_s = 1e5};
    opt.known_relation = vv::Ordering::kBefore;
    opt.net.faults.drop = mix.drop * rate;
    opt.net.faults.duplicate = mix.dup * rate;
    opt.net.faults.reorder = mix.reorder * rate;
    opt.net.faults.corrupt = mix.corrupt * rate;
    opt.net.faults.seed = 1 + t;  // reproducible per-session streams
    opt.retry.base_backoff_s = 0.001;

    sim::EventLoop loop;
    const vv::SyncReport rep = vv::sync_with_recovery(loop, a, b, opt);
    row.faults += rep.total_faults();
    row.retries += rep.retries;
    row.failures += rep.converged ? 0 : 1;
    row.recovery_bits += rep.recovery_bits;
    row.total_bits += rep.total_bits();
  }
  return row;
}

void BM_RecoveredSync(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0)) / 100.0;
  const vv::RotatingVector base = linear_history(24);
  vv::RotatingVector b = base;
  for (std::uint32_t i = 0; i < 6; ++i) b.record_update(SiteId{24 + i});
  vv::SyncOptions opt;
  opt.kind = vv::VectorKind::kSrv;
  opt.mode = vv::TransferMode::kPipelined;
  opt.cost = CostModel{.n = 30, .m = 1 << 16};
  opt.net = {.latency_s = 0.002, .bandwidth_bits_per_s = 1e5};
  opt.known_relation = vv::Ordering::kBefore;
  opt.net.faults.drop = rate;
  opt.net.faults.seed = 9;
  opt.retry.base_backoff_s = 0.001;
  for (auto _ : state) {
    state.PauseTiming();
    vv::RotatingVector a = base;
    state.ResumeTiming();
    sim::EventLoop loop;
    benchmark::DoNotOptimize(vv::sync_with_recovery(loop, a, b, opt).total_bits());
  }
}
// Wall time grows with the retry count, not with the fault machinery itself
// (rate 0 runs the exact pre-fault fast path).
BENCHMARK(BM_RecoveredSync)->Arg(0)->Arg(10)->Arg(30)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  init_bench(&argc, argv);
  std::printf("==== bench_faults: retry/recovery cost on a lossy link ====\n\n");
  std::printf("%-9s %-6s | %-8s %-8s %-9s | %-14s %-12s\n", "mix", "rate", "faults",
              "retries", "failures", "recovery_bits", "total_bits");
  print_rule(80);
  BenchReporter reporter("faults");
  const std::uint32_t sessions = smoke() ? 20 : 200;
  const std::vector<double> rates = smoke() ? std::vector<double>{0.1, 0.3}
                                            : std::vector<double>{0.05, 0.1, 0.2, 0.3};
  struct Config {
    const Mix* mix;
    double rate;
  };
  std::vector<Config> configs;
  for (const Mix& mix : kMixes)
    for (double rate : rates) configs.push_back({&mix, rate});
  const auto rows = sweep(configs, [sessions](const Config& c, std::size_t) {
    return measure(*c.mix, c.rate, sessions);
  });
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& [mix, rate] = configs[i];
    const Row& r = rows[i];
    std::printf("%-9s %-6.2f | %-8llu %-8llu %-9llu | %-14llu %-12llu\n", mix->name,
                rate, (unsigned long long)r.faults, (unsigned long long)r.retries,
                (unsigned long long)r.failures, (unsigned long long)r.recovery_bits,
                (unsigned long long)r.total_bits);
    obs::JsonWriter w;
    w.begin_object();
    w.field("mix", mix->name);
    w.field("rate_pct", static_cast<std::uint64_t>(rate * 100 + 0.5));
    w.field("sessions", static_cast<std::uint64_t>(sessions));
    w.field("faults_injected", r.faults);
    w.field("retries", r.retries);
    w.field("sync_failures", r.failures);
    w.field("recovery_bits", r.recovery_bits);
    w.field("total_bits", r.total_bits);
    w.end_object();
    reporter.add_row(w.take());
  }
  reporter.flush();
  std::printf("\n(recovery bits and retries rise with the fault rate; failures stay rare\n"
              " until the rate approaches saturation because per-attempt fault streams\n"
              " are independent. Corruption costs double: the bits of the discarded\n"
              " message plus the retransmission it forces.)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
