// Shared helpers for the optrep benchmark harness.
//
// VectorFleet evolves one replica per site under the §2.1 system model
// (updates are serial per site; synchronization via the real protocols), so
// benches can sample realistic vector pairs at any moment. Everything is
// seeded and deterministic.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "obs/export.h"
#include "rt/sweep.h"
#include "rt/thread_pool.h"
#include "sim/event_loop.h"
#include "vv/compare.h"
#include "vv/session.h"

namespace optrep::bench {

// --smoke mode: every bench shrinks its parameter sweeps to a tiny but
// representative subset so ctest/CI can exercise the full harness — including
// the BENCH_*.json writers the regression gate consumes — in seconds. The
// smoke rows ARE the committed baselines under bench/baselines/: they carry
// only model-derived integers, so they are identical on every machine.
inline bool g_smoke = false;
inline bool smoke() { return g_smoke; }

// --threads=N (0 = all hardware threads; default 1): how many workers the
// bench's sweep() fans configuration points across. Results are byte-identical
// for every N — see src/rt/thread_pool.h.
inline unsigned g_threads = 1;
inline unsigned threads() { return g_threads; }

// Strip harness flags (--smoke, --threads=N) before benchmark::Initialize
// sees the argument list.
inline void init_bench(int* argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
      continue;
    }
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      const long n = std::atol(argv[i] + 10);
      g_threads = n <= 0 ? rt::ThreadPool::hardware_threads() : static_cast<unsigned>(n);
      continue;
    }
    argv[kept++] = argv[i];
  }
  *argc = kept;
}

// The process-wide sweep pool, sized by --threads. Constructed on first use
// so init_bench has already parsed the flag.
inline rt::ThreadPool& sweep_pool() {
  static rt::ThreadPool pool(g_threads);
  return pool;
}

// Map fn(config, index) over a config vector on the sweep pool; results come
// back in config order regardless of thread count (rt::parallel_sweep), so
// callers print/report rows sequentially afterwards and emit byte-identical
// output for any --threads.
template <class Config, class Fn>
auto sweep(const std::vector<Config>& configs, Fn&& fn) {
  OPTREP_SPAN("bench.sweep");
  return rt::parallel_sweep(sweep_pool(), configs, std::forward<Fn>(fn));
}

inline vv::SyncOptions ideal_options(vv::VectorKind kind, std::uint64_t n,
                                     std::uint64_t m = 1 << 16) {
  vv::SyncOptions opt;
  opt.kind = kind;
  opt.mode = vv::TransferMode::kIdeal;
  opt.cost = CostModel{.n = n, .m = m};
  return opt;
}

// One replica per site, all evolving with the chosen vector kind.
class VectorFleet {
 public:
  VectorFleet(std::uint32_t n_sites, vv::VectorKind kind, std::uint64_t seed)
      : kind_(kind), rng_(seed), vecs_(n_sites) {}

  std::uint32_t size() const { return static_cast<std::uint32_t>(vecs_.size()); }
  const vv::RotatingVector& vec(std::uint32_t i) const { return vecs_[i]; }
  vv::RotatingVector& vec_mut(std::uint32_t i) { return vecs_[i]; }
  vv::VectorKind kind() const { return kind_; }

  void update(std::uint32_t site) { vecs_[site].record_update(SiteId{site}); }

  // One synchronization step dst←src through the real protocol (ideal mode);
  // applies the §2.2 post-reconciliation increment. Returns the report.
  vv::SyncReport sync(std::uint32_t dst, std::uint32_t src) {
    auto opt = ideal_options(kind_, size());
    sim::EventLoop loop;
    const auto rel = vv::compare_fast(vecs_[dst], vecs_[src]);
    opt.known_relation = rel;
    vv::SyncReport rep;
    if (rel == vv::Ordering::kBefore || rel == vv::Ordering::kConcurrent) {
      rep = vv::sync_rotating(loop, vecs_[dst], vecs_[src], opt);
      if (rel == vv::Ordering::kConcurrent) update(dst);
    } else {
      rep.initial_relation = rel;
    }
    return rep;
  }

  // Advance the fleet by `steps` random events (update with prob p_update,
  // otherwise a random pairwise sync).
  void evolve(std::uint32_t steps, double p_update) {
    for (std::uint32_t s = 0; s < steps; ++s) {
      const auto i = static_cast<std::uint32_t>(rng_.below(size()));
      if (rng_.chance(p_update)) {
        update(i);
      } else {
        auto j = static_cast<std::uint32_t>(rng_.below(size()));
        if (j == i) j = (j + 1) % size();
        sync(i, j);
      }
    }
  }

  Rng& rng() { return rng_; }

 private:
  vv::VectorKind kind_;
  Rng rng_;
  std::vector<vv::RotatingVector> vecs_;
};

// A long-lineage vector of exactly `n` distinct sites (linear history: the
// replica migrates site to site, each updating once).
inline vv::RotatingVector linear_history(std::uint32_t n) {
  vv::RotatingVector v;
  for (std::uint32_t i = 0; i < n; ++i) v.record_update(SiteId{i});
  return v;
}

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

// Machine-readable bench results: collects JSON rows and writes
// BENCH_<name>.json ({"schema":"optrep.bench/v1","bench":name,"rows":[...]})
// into the working directory on flush (or destruction). CI uploads these as
// artifacts, so every bench run leaves a diffable record next to its
// human-readable stdout tables.
class BenchReporter {
 public:
  explicit BenchReporter(std::string name) : name_(std::move(name)) {}
  BenchReporter(const BenchReporter&) = delete;
  BenchReporter& operator=(const BenchReporter&) = delete;
  ~BenchReporter() { flush(); }

  // `row_json` must be one complete JSON object (use obs::JsonWriter).
  void add_row(const std::string& row_json) { rows_.push_back(row_json); }

  void flush() {
    if (flushed_) return;
    flushed_ = true;
    obs::JsonWriter hdr;
    hdr.begin_object();
    hdr.field("schema", "optrep.bench/v1");
    hdr.field("bench", name_);
    std::string out = hdr.take();  // unterminated: rows follow
    out += ",\"rows\":[";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out += i == 0 ? "\n" : ",\n";
      out += rows_[i];
    }
    out += "\n]}\n";
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
  }

 private:
  std::string name_;
  std::vector<std::string> rows_;
  bool flushed_{false};
};

}  // namespace optrep::bench
