// Contention benchmarks for the concurrent replica store: the rt::OLock
// versioned lock embedded in vv::RotatingVector and the sharded wave engine
// (repl::StateSystem::run_batch) built on it.
//
// Three kinds of output:
//   * structural rows in BENCH_contention.json — per (scenario, threads):
//     wave-schedule shape, the schedule-makespan speedup model, optimistic
//     lock traffic, and a conservation checksum of the final fleet state.
//     Every figure is a pure function of the workload spec (the wave plan is
//     thread-count independent and lock traffic under the wave rules is
//     deterministic), so the smoke rows are byte-identical on every machine
//     and serve as the committed baseline for the optrep_report gate. The
//     read-mostly scenario's modeled 1→8-thread speedup is the scaling claim
//     this PR commits to: >= 3x (asserted here, pinned by the baseline).
//   * a real-concurrency exercise — actual reader/writer threads hammering
//     one olock-guarded vector (optimistic reads with writer-queue fallback)
//     and the batch engine on a real pool. Wall-clock figures and validated
//     read counts are machine- and schedule-dependent, so they go to stdout
//     ONLY, never into the JSON. The TSan CI job runs this section to
//     sweep the lock protocol for races.
//   * BM_* wall-clock microbenchmarks of the lock primitives — never gated.
//
// Makespan model: a wave's sessions are partitioned over 64 write-key shards;
// a shard's sessions run sequentially, shards run on T workers. With unit
// session cost the wave's completion time on T workers is bounded below by
//   max(ceil(items / T), max shard load),
// and greedy shard-to-worker packing achieves it to within the usual LPT
// factor; we report the bound, which is exact at T=1 and tight for the
// near-uniform shard loads mix64 produces. Speedup(T) = makespan(1) /
// makespan(T). Read-mostly mixes (distinct receivers pulling from a few hot
// senders — senders are only READ, so they conflict with nobody) pack into
// wide waves and scale; write-heavy mixes (every session mutating one of a
// few hot receivers) serialize into deep shard chains and do not. That split
// is exactly the optimistic-lock-coupling story: readers do not serialize.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "obs/export.h"
#include "repl/state_system.h"
#include "rt/olock.h"
#include "rt/shard.h"
#include "rt/thread_pool.h"
#include "vv/rotating_vector.h"
#include "workload/trace.h"

using namespace optrep;
using namespace optrep::bench;

namespace {

using BE = repl::StateSystem::BatchEvent;

struct Scenario {
  const char* name;
  // Builds the batch: `n_sites` replicas of one object, `n_events` sessions.
  std::vector<BE> (*build)(std::uint32_t n_sites, std::uint32_t n_events);
};

// Read-mostly: every session pulls into a DISTINCT receiver from one of a
// few hot senders. Senders are read-shared (never written), receivers are
// disjoint, so the whole batch packs into maximally wide waves.
std::vector<BE> build_read_mostly(std::uint32_t n_sites, std::uint32_t n_events) {
  constexpr std::uint32_t kHotSenders = 4;
  std::vector<BE> ev;
  Rng rng(101);
  for (std::uint32_t i = 0; i < n_events; ++i) {
    const SiteId dst{kHotSenders + (i % (n_sites - kHotSenders))};
    const SiteId src{static_cast<std::uint32_t>(rng.below(kHotSenders))};
    ev.push_back({BE::Type::kSync, dst, src, ObjectId{0}, {}});
  }
  return ev;
}

// Write-heavy: every session mutates the same hot receiver, so the whole
// spec is one shard's sequential chain — the serialized end of the spectrum
// (no schedule, optimistic or otherwise, can run two writers to one replica
// concurrently).
std::vector<BE> build_write_heavy(std::uint32_t n_sites, std::uint32_t n_events) {
  std::vector<BE> ev;
  Rng rng(202);
  for (std::uint32_t i = 0; i < n_events; ++i) {
    const SiteId dst{0};
    const SiteId src{1 + static_cast<std::uint32_t>(rng.below(n_sites - 1))};
    ev.push_back({BE::Type::kSync, dst, src, ObjectId{0}, {}});
  }
  return ev;
}

// Mixed 90/10: mostly distinct-receiver pulls with an occasional write burst
// against a hot replica — the paper's gossip workloads look like this.
std::vector<BE> build_mixed(std::uint32_t n_sites, std::uint32_t n_events) {
  std::vector<BE> ev;
  Rng rng(303);
  for (std::uint32_t i = 0; i < n_events; ++i) {
    if (rng.below(10) == 0) {
      ev.push_back({BE::Type::kUpdate, SiteId{1 + static_cast<std::uint32_t>(rng.below(3))},
                    SiteId{}, ObjectId{0}, "w-" + std::to_string(i)});
    } else {
      const SiteId dst{4 + (i % (n_sites - 4))};
      const SiteId src{static_cast<std::uint32_t>(rng.below(4))};
      ev.push_back({BE::Type::kSync, dst, src, ObjectId{0}, {}});
    }
  }
  return ev;
}

constexpr Scenario kScenarios[] = {
    {"read_mostly", build_read_mostly},
    {"write_heavy", build_write_heavy},
    {"mixed", build_mixed},
};

// Schedule makespan of the plan on T workers, unit session cost (see the
// file comment for why the bound is the right deterministic proxy).
std::uint64_t makespan(const rt::WavePlan& plan, std::uint32_t t) {
  std::uint64_t total = 0;
  for (const rt::WavePlan::Wave& w : plan.waves) {
    std::uint64_t max_shard = 0;
    for (const auto& s : w.by_shard) {
      max_shard = s.size() > max_shard ? s.size() : max_shard;
    }
    const std::uint64_t spread = (w.items + t - 1) / t;
    total += spread > max_shard ? spread : max_shard;
  }
  return total;
}

// Conservation checksum over the final fleet: FNV over every replica's entry
// count and vector values in host/site order. Any cross-thread
// nondeterminism in the engine would shift it.
std::uint64_t fleet_checksum(const repl::StateSystem& sys, std::uint32_t n_sites) {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t x) { h = (h ^ x) * 1099511628211ull; };
  for (const SiteId site : sys.hosts_of(ObjectId{0})) {
    const repl::StateReplica& r = sys.replica(site, ObjectId{0});
    mix(site.value);
    mix(r.data.entries.size());
    for (std::uint32_t s = 0; s < n_sites; ++s) mix(r.vector.value(SiteId{s}));
  }
  return h;
}

struct ScenarioRun {
  rt::WavePlan plan;
  repl::StateSystem::BatchStats stats;
  std::uint64_t sessions{0};
  std::uint64_t checksum{0};
};

// Execute the scenario once through the real batch engine (on the bench
// pool — output is thread-count invariant) and derive its wave plan for the
// makespan model.
ScenarioRun run_scenario(const Scenario& sc, std::uint32_t n_sites,
                         std::uint32_t n_events) {
  repl::StateSystem::Config cfg;
  cfg.n_sites = n_sites;
  cfg.kind = vv::VectorKind::kSrv;
  cfg.cost = CostModel{.n = n_sites, .m = 1 << 16};
  repl::StateSystem sys(cfg);

  // Seed state: every sender-eligible site creates/updates so syncs move data.
  std::vector<BE> seed_ev;
  for (std::uint32_t s = 0; s < n_sites; ++s) {
    seed_ev.push_back({s == 0 ? BE::Type::kCreate : BE::Type::kSync, SiteId{s},
                       s == 0 ? SiteId{} : SiteId{0}, ObjectId{0},
                       s == 0 ? std::string("base") : std::string{}});
  }
  for (std::uint32_t s = 0; s < n_sites; ++s) {
    seed_ev.push_back({BE::Type::kUpdate, SiteId{s}, SiteId{}, ObjectId{0},
                       "seed-" + std::to_string(s)});
  }
  sys.run_batch(seed_ev, sweep_pool());

  const std::vector<BE> ev = sc.build(n_sites, n_events);

  ScenarioRun out;
  // The engine's own plan is private; rebuild it from the same spec (the
  // planner is a pure function) for the makespan model.
  const auto key = [](SiteId s) {
    return (std::uint64_t{1} << 63) | (std::uint64_t{s.value} << 32);
  };
  std::vector<rt::WaveItem> items;
  items.reserve(ev.size());
  for (const BE& e : ev) {
    items.push_back({key(e.site),
                     e.type == BE::Type::kSync ? key(e.peer) : std::uint64_t{0}});
  }
  out.plan = rt::plan_waves(items);

  sys.run_batch(ev, sweep_pool(), &out.stats);
  out.sessions = sys.totals().sessions;
  out.checksum = fleet_checksum(sys, n_sites);
  return out;
}

// ---- real-concurrency exercise (stdout only; TSan sweeps it) --------------

struct LiveResult {
  std::uint64_t writes{0};
  std::uint64_t validated{0};
  std::uint64_t fallbacks{0};
  double seconds{0};
};

LiveResult live_readers_vs_writer(std::uint32_t n_readers, std::uint64_t n_writes) {
  vv::RotatingVector vec;
  constexpr std::uint32_t kSites = 32;
  vec.reserve(kSites);
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> validated(n_readers, 0);
  std::vector<std::uint64_t> fallbacks(n_readers, 0);
  std::vector<std::thread> readers;
  for (std::uint32_t r = 0; r < n_readers; ++r) {
    readers.emplace_back([&vec, &stop, &validated, &fallbacks, r] {
      std::uint32_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        std::uint64_t sink = 0;
        const SiteId site{i++ % kSites};
        if (rt::optimistic_read(vec.olock(), 8,
                                [&] { sink = vec.value(site); })) {
          ++validated[r];
        } else {
          rt::OLockGuard g(vec.olock());  // documented writer-queue fallback
          sink = vec.value(site);
          ++fallbacks[r];
        }
        benchmark::DoNotOptimize(sink);
      }
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < n_writes; ++i) {
    rt::OLockGuard g(vec.olock());
    vec.record_update(SiteId{static_cast<std::uint32_t>(i % kSites)});
  }
  const auto t1 = std::chrono::steady_clock::now();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  LiveResult res;
  res.writes = n_writes;
  res.seconds = std::chrono::duration<double>(t1 - t0).count();
  for (std::uint32_t r = 0; r < n_readers; ++r) {
    res.validated += validated[r];
    res.fallbacks += fallbacks[r];
  }
  return res;
}

// End-to-end engine exercise on a real multi-worker pool (TSan coverage of
// run_batch's compute/commit split; results are checked against the
// single-thread run, which must match bit for bit).
bool live_engine_check(std::uint32_t steps) {
  wl::GeneratorConfig g;
  g.n_sites = 12;
  g.n_objects = 2;
  g.steps = steps;
  g.update_prob = 0.4;
  g.seed = 17;
  const wl::Trace trace = wl::generate(g);
  repl::StateSystem::Config cfg;
  cfg.n_sites = g.n_sites;
  cfg.kind = vv::VectorKind::kSrv;
  cfg.cost = CostModel{.n = g.n_sites, .m = 1 << 16};

  repl::StateSystem s1(cfg);
  rt::ThreadPool p1(1);
  wl::run_state_parallel(s1, trace, p1);
  repl::StateSystem s4(cfg);
  rt::ThreadPool p4(4);
  wl::run_state_parallel(s4, trace, p4);
  return fleet_checksum(s1, g.n_sites) == fleet_checksum(s4, g.n_sites) &&
         s1.totals().bits == s4.totals().bits;
}

// ---- wall-clock lock primitives (not gated) -------------------------------

void BM_OLockUncontendedCycle(benchmark::State& state) {
  rt::OLock lock;
  for (auto _ : state) {
    rt::OLockGuard g(lock);
    benchmark::DoNotOptimize(&lock);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OLockUncontendedCycle);

void BM_OLockOptimisticRead(benchmark::State& state) {
  vv::RotatingVector v;
  v.reserve(64);
  for (std::uint32_t i = 0; i < 64; ++i) v.record_update(SiteId{i});
  std::uint32_t i = 0;
  for (auto _ : state) {
    std::uint64_t sink = 0;
    rt::optimistic_read(v.olock(), 8, [&] { sink = v.value(SiteId{i++ % 64}); });
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OLockOptimisticRead);

void BM_OLockGuardedRead(benchmark::State& state) {
  vv::RotatingVector v;
  v.reserve(64);
  for (std::uint32_t i = 0; i < 64; ++i) v.record_update(SiteId{i});
  std::uint32_t i = 0;
  for (auto _ : state) {
    rt::OLockGuard g(v.olock());
    benchmark::DoNotOptimize(v.value(SiteId{i++ % 64}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OLockGuardedRead);

}  // namespace

int main(int argc, char** argv) {
  init_bench(&argc, argv);
  const std::uint32_t n_sites = 64;
  const std::uint32_t n_events = smoke() ? 512 : 4096;
  const std::vector<std::uint32_t> thread_counts{1, 2, 4, 8};

  std::printf("==== bench_contention: olock + sharded wave engine ====\n");
  std::printf("(%u sites, %u sessions per scenario; schedule-makespan speedup\n"
              " model over the deterministic 64-shard wave plan)\n\n",
              n_sites, n_events);
  std::printf("%-12s | %-8s %-6s %-9s %-10s %-12s %-10s\n", "scenario", "threads",
              "waves", "makespan", "speedup", "acquisitions", "checksum");
  print_rule(78);

  BenchReporter reporter("contention");
  std::uint64_t read_mostly_speedup_x1000_t8 = 0;
  for (const Scenario& sc : kScenarios) {
    const ScenarioRun run = run_scenario(sc, n_sites, n_events);
    const std::uint64_t base = makespan(run.plan, 1);
    for (const std::uint32_t t : thread_counts) {
      const std::uint64_t ms = makespan(run.plan, t);
      const std::uint64_t speedup_x1000 = ms == 0 ? 0 : base * 1000 / ms;
      if (std::string(sc.name) == "read_mostly" && t == 8) {
        read_mostly_speedup_x1000_t8 = speedup_x1000;
      }
      std::printf("%-12s | %-8u %-6zu %-9llu %llu.%03llux%-4s %-12llu %016llx\n",
                  sc.name, t, run.plan.waves.size(), (unsigned long long)ms,
                  (unsigned long long)(speedup_x1000 / 1000),
                  (unsigned long long)(speedup_x1000 % 1000), "",
                  (unsigned long long)run.stats.olock.acquisitions,
                  (unsigned long long)run.checksum);
      obs::JsonWriter w;
      w.begin_object();
      w.field("scenario", sc.name);
      w.field("threads", t);
      w.field("waves", static_cast<std::uint64_t>(run.plan.waves.size()));
      w.field("max_wave_items", static_cast<std::uint64_t>(run.plan.max_wave_items()));
      w.field("modeled_makespan", ms);
      w.field("modeled_speedup_x1000", speedup_x1000);
      w.field("olock_acquisitions", run.stats.olock.acquisitions);
      w.field("olock_opt_retries", run.stats.olock.opt_retries);
      w.field("olock_queue_waits", run.stats.olock.queue_waits);
      w.field("state_checksum", run.checksum);
      w.end_object();
      reporter.add_row(w.take());
    }
  }
  reporter.flush();

  // The PR's scaling claim, pinned by the committed baseline and asserted
  // here so a planner regression fails the smoke test loudly.
  std::printf("\nread-mostly modeled speedup 1->8 threads: %llu.%03llux (require >= 3x)\n",
              (unsigned long long)(read_mostly_speedup_x1000_t8 / 1000),
              (unsigned long long)(read_mostly_speedup_x1000_t8 % 1000));
  if (read_mostly_speedup_x1000_t8 < 3000) {
    std::fprintf(stderr,
                 "FAIL: read-mostly wave schedule no longer scales (%llu < 3000)\n",
                 (unsigned long long)read_mostly_speedup_x1000_t8);
    return 1;
  }

  std::printf("\n---- real concurrency (wall clock; machine-dependent, NOT in JSON) ----\n");
  const std::uint64_t live_writes = smoke() ? 20000 : 200000;
  for (const std::uint32_t readers : {1u, 3u}) {
    const LiveResult lr = live_readers_vs_writer(readers, live_writes);
    std::printf("%u readers vs writer: %llu writes in %.3fs (%.1f Mops/s), "
                "%llu validated optimistic reads, %llu queue fallbacks\n",
                readers, (unsigned long long)lr.writes, lr.seconds,
                lr.seconds > 0 ? (double)lr.writes / lr.seconds / 1e6 : 0.0,
                (unsigned long long)lr.validated, (unsigned long long)lr.fallbacks);
  }
  const bool engine_ok = live_engine_check(smoke() ? 150 : 600);
  std::printf("batch engine 1-thread vs 4-thread checksum: %s\n",
              engine_ok ? "identical" : "DIVERGED");
  if (!engine_ok) {
    std::fprintf(stderr, "FAIL: batch engine diverged across thread counts\n");
    return 1;
  }

  std::printf("\n(expected shape: read_mostly speedup approaches min(threads, shards)\n"
              " because senders are only read — optimistic readers never serialize;\n"
              " write_heavy stays at 1x because every session writes one replica and\n"
              " forms a single sequential shard chain. opt_retries and queue_waits\n"
              " are 0 by the wave invariant: the plan never schedules a reader\n"
              " against an in-flight writer.)\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
