// T2-bounds + E-lb — reproduces Table 2 ("Complexities of vector
// synchronization") empirically.
//
// Part 1 measures worst-case communication per algorithm and checks it
// against the paper's printed upper bounds:
//     BRV ≤ n·log(2mn)+2    CRV ≤ n·log(4mn)+2    SRV ≤ n·log(8mn)+n·log(2n)+1
// Part 2 measures the scaling behaviour (O(|Δ|), O(|Δ|+|Γ|), O(|Δ|+γ)) on
// randomized reconciliation workloads and reports each algorithm's measured
// bits as a multiple of the §5 lower bound Ω(|Δ|+γ) — SRV's ratio must stay
// O(1) (optimality), CRV's grows with the conflict rate.
//
// Part 3 times the synchronizations (google-benchmark) to back the
// time-complexity column.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

using namespace optrep;
using namespace optrep::bench;

namespace {

void part1_upper_bounds() {
  std::printf("\n== Table 2, communication upper bounds (worst case: receiver empty) ==\n");
  std::printf("%-6s %-8s %-22s %-22s %-8s\n", "n", "algo", "measured bits", "paper bound bits",
              "within");
  print_rule(70);
  BenchReporter reporter("table2_bounds");
  const std::vector<std::uint32_t> ns =
      smoke() ? std::vector<std::uint32_t>{8, 64}
              : std::vector<std::uint32_t>{8, 64, 256, 1024};
  for (std::uint32_t n : ns) {
    const CostModel cm{.n = n, .m = 1 << 16};
    const vv::RotatingVector full = linear_history(n);
    for (auto kind : {vv::VectorKind::kBrv, vv::VectorKind::kCrv, vv::VectorKind::kSrv}) {
      vv::RotatingVector empty;
      auto opt = ideal_options(kind, n);
      opt.known_relation = vv::Ordering::kBefore;
      sim::EventLoop loop;
      const auto rep = vv::sync_rotating(loop, empty, full, opt);
      const std::uint64_t bound = obs::table2_upper_bound_bits(cm, kind);
      std::printf("%-6u %-8s %-22llu %-22llu %-8s\n", n,
                  std::string(vv::to_string(kind)).c_str(),
                  (unsigned long long)rep.total_bits(), (unsigned long long)bound,
                  rep.total_bits() <= bound ? "yes" : "NO");
      obs::JsonWriter w;
      w.begin_object();
      w.field("n", n);
      w.field("algo", vv::to_string(kind));
      w.field("measured_bits", rep.total_bits());
      w.field("bound_bits", bound);
      w.field("within_bound", rep.total_bits() <= bound);
      w.end_object();
      reporter.add_row(w.take());
    }
  }
  reporter.flush();
}

void part2_scaling_and_lower_bound() {
  std::printf("\n== Scaling: measured traffic vs the Ω(|Δ|+γ) lower bound (§5) ==\n");
  std::printf("(random fleets, 64 sites; ratio = measured bits / [(|Δ|+γ+1)·elem_bits]; \n"
              " avg over sync sessions with data flow)\n\n");
  std::printf("%-14s %-10s %-12s %-12s %-12s %-10s\n", "update prob", "algo",
              "bits/sess", "Δ/sess", "Γ/sess", "LB ratio");
  print_rule(74);
  const std::vector<double> probs =
      smoke() ? std::vector<double>{0.6} : std::vector<double>{0.3, 0.6, 0.9};
  const std::uint32_t fleet_sites = smoke() ? 16 : 64;
  const std::uint32_t evolve_steps = smoke() ? 150 : 2000;
  const int samples = smoke() ? 100 : 1500;
  for (double p_update : probs) {
    for (auto kind : {vv::VectorKind::kCrv, vv::VectorKind::kSrv}) {
      VectorFleet fleet(fleet_sites, kind, /*seed=*/1234);
      fleet.evolve(evolve_steps, p_update);
      // Sample phase: measure a further 1500 sync sessions.
      const CostModel cm{.n = fleet_sites, .m = 1 << 16};
      const std::uint64_t elem_bits = cm.elem_bits(kind == vv::VectorKind::kCrv ? 1 : 2);
      std::uint64_t sessions = 0, bits = 0, delta = 0, gamma_red = 0;
      double ratio_sum = 0;
      for (int i = 0; i < samples; ++i) {
        const auto a = static_cast<std::uint32_t>(fleet.rng().below(fleet.size()));
        auto b = static_cast<std::uint32_t>(fleet.rng().below(fleet.size()));
        if (b == a) b = (b + 1) % fleet.size();
        if (fleet.rng().chance(p_update)) fleet.update(a);
        const auto rep = fleet.sync(a, b);
        if (rep.initial_relation == vv::Ordering::kEqual ||
            rep.initial_relation == vv::Ordering::kAfter) {
          continue;
        }
        ++sessions;
        bits += rep.total_bits();
        delta += rep.elems_applied;
        gamma_red += rep.elems_redundant;
        const double lb =
            static_cast<double>((rep.elems_applied + rep.segments_skipped + 1) * elem_bits);
        ratio_sum += static_cast<double>(rep.total_bits()) / lb;
      }
      if (sessions == 0) continue;
      std::printf("%-14.1f %-10s %-12.1f %-12.2f %-12.2f %-10.2f\n", p_update,
                  std::string(vv::to_string(kind)).c_str(),
                  (double)bits / (double)sessions, (double)delta / (double)sessions,
                  (double)gamma_red / (double)sessions, ratio_sum / (double)sessions);
    }
  }
  std::printf("\n(expected shape: SRV's LB ratio stays flat as conflicts rise; CRV's\n"
              " Γ column — and with it its ratio — grows. See EXPERIMENTS.md.)\n");
}

// Part 3: time per synchronization, scaling with |Δ| at fixed n — the
// O(|Δ|) time column of Table 2.
void BM_SyncTime(benchmark::State& state) {
  const auto kind = static_cast<vv::VectorKind>(state.range(0));
  const auto delta = static_cast<std::uint32_t>(state.range(1));
  const std::uint32_t n = 1024;
  vv::RotatingVector base = linear_history(n - delta);
  vv::RotatingVector b = base;
  for (std::uint32_t i = 0; i < delta; ++i) b.record_update(SiteId{n - delta + i});
  auto opt = ideal_options(kind, n);
  opt.known_relation = vv::Ordering::kBefore;
  for (auto _ : state) {
    state.PauseTiming();
    vv::RotatingVector a = base;  // receiver misses exactly Δ elements
    state.ResumeTiming();
    sim::EventLoop loop;
    auto rep = vv::sync_rotating(loop, a, b, opt);
    benchmark::DoNotOptimize(rep.total_bits());
  }
  state.counters["delta"] = delta;
}

BENCHMARK(BM_SyncTime)
    ->ArgsProduct({{static_cast<long>(vv::VectorKind::kBrv),
                    static_cast<long>(vv::VectorKind::kCrv),
                    static_cast<long>(vv::VectorKind::kSrv)},
                   {1, 8, 64, 512}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  init_bench(&argc, argv);
  std::printf("==== bench_table2: Table 2 reproduction ====\n");
  part1_upper_bounds();
  part2_scaling_and_lower_bound();
  std::printf("\n== Time per synchronization vs |Delta| (n=1024 fixed) ==\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
