// T2-bounds + E-lb — reproduces Table 2 ("Complexities of vector
// synchronization") empirically.
//
// Part 1 measures worst-case communication per algorithm and checks it
// against the paper's printed upper bounds:
//     BRV ≤ n·log(2mn)+2    CRV ≤ n·log(4mn)+2    SRV ≤ n·log(8mn)+n·log(2n)+1
// Part 2 measures the scaling behaviour (O(|Δ|), O(|Δ|+|Γ|), O(|Δ|+γ)) on
// randomized reconciliation workloads and reports each algorithm's measured
// bits as a multiple of the §5 lower bound Ω(|Δ|+γ) — SRV's ratio must stay
// O(1) (optimality), CRV's grows with the conflict rate.
//
// Part 3 times the synchronizations (google-benchmark) to back the
// time-complexity column.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

using namespace optrep;
using namespace optrep::bench;

namespace {

void part1_upper_bounds() {
  std::printf("\n== Table 2, communication upper bounds (worst case: receiver empty) ==\n");
  std::printf("%-6s %-8s %-22s %-22s %-8s\n", "n", "algo", "measured bits", "paper bound bits",
              "within");
  print_rule(70);
  BenchReporter reporter("table2_bounds");
  struct Config {
    std::uint32_t n;
    vv::VectorKind kind;
  };
  std::vector<Config> configs;
  const std::vector<std::uint32_t> ns =
      smoke() ? std::vector<std::uint32_t>{8, 64}
              : std::vector<std::uint32_t>{8, 64, 256, 1024};
  for (std::uint32_t n : ns) {
    for (auto kind : {vv::VectorKind::kBrv, vv::VectorKind::kCrv, vv::VectorKind::kSrv}) {
      configs.push_back({n, kind});
    }
  }
  struct Row {
    std::uint64_t measured{0};
    std::uint64_t bound{0};
    std::string json;
  };
  const auto rows = sweep(configs, [](const Config& c, std::size_t) {
    const CostModel cm{.n = c.n, .m = 1 << 16};
    const vv::RotatingVector full = linear_history(c.n);
    vv::RotatingVector empty;
    auto opt = ideal_options(c.kind, c.n);
    opt.known_relation = vv::Ordering::kBefore;
    sim::EventLoop loop;
    const auto rep = vv::sync_rotating(loop, empty, full, opt);
    Row row;
    row.measured = rep.total_bits();
    row.bound = obs::table2_upper_bound_bits(cm, c.kind);
    obs::JsonWriter w;
    w.begin_object();
    w.field("n", c.n);
    w.field("algo", vv::to_string(c.kind));
    w.field("measured_bits", row.measured);
    w.field("bound_bits", row.bound);
    w.field("within_bound", row.measured <= row.bound);
    w.end_object();
    row.json = w.take();
    return row;
  });
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::printf("%-6u %-8s %-22llu %-22llu %-8s\n", configs[i].n,
                std::string(vv::to_string(configs[i].kind)).c_str(),
                (unsigned long long)rows[i].measured, (unsigned long long)rows[i].bound,
                rows[i].measured <= rows[i].bound ? "yes" : "NO");
    reporter.add_row(rows[i].json);
  }
  reporter.flush();
}

void part2_scaling_and_lower_bound() {
  std::printf("\n== Scaling: measured traffic vs the Ω(|Δ|+γ) lower bound (§5) ==\n");
  std::printf("(random fleets, 64 sites; ratio = measured bits / [(|Δ|+γ+1)·elem_bits]; \n"
              " avg over sync sessions with data flow)\n\n");
  std::printf("%-14s %-10s %-12s %-12s %-12s %-10s\n", "update prob", "algo",
              "bits/sess", "Δ/sess", "Γ/sess", "LB ratio");
  print_rule(74);
  const std::vector<double> probs =
      smoke() ? std::vector<double>{0.6} : std::vector<double>{0.3, 0.6, 0.9};
  const std::uint32_t fleet_sites = smoke() ? 16 : 64;
  const std::uint32_t evolve_steps = smoke() ? 150 : 2000;
  const int samples = smoke() ? 100 : 1500;
  struct Config {
    double p_update;
    vv::VectorKind kind;
  };
  std::vector<Config> configs;
  for (double p_update : probs) {
    for (auto kind : {vv::VectorKind::kCrv, vv::VectorKind::kSrv}) {
      configs.push_back({p_update, kind});
    }
  }
  struct Row {
    std::uint64_t sessions{0};
    double bits_per{0}, delta_per{0}, gamma_per{0}, ratio{0};
  };
  const auto rows = sweep(configs, [&](const Config& c, std::size_t) {
    // Each sweep point owns its fleet and RNG (fixed seed), so points are
    // independent and the row is the same for any thread count.
    VectorFleet fleet(fleet_sites, c.kind, /*seed=*/1234);
    fleet.evolve(evolve_steps, c.p_update);
    // Sample phase: measure a further 1500 sync sessions.
    const CostModel cm{.n = fleet_sites, .m = 1 << 16};
    const std::uint64_t elem_bits = cm.elem_bits(c.kind == vv::VectorKind::kCrv ? 1 : 2);
    std::uint64_t sessions = 0, bits = 0, delta = 0, gamma_red = 0;
    double ratio_sum = 0;
    for (int i = 0; i < samples; ++i) {
      const auto a = static_cast<std::uint32_t>(fleet.rng().below(fleet.size()));
      auto b = static_cast<std::uint32_t>(fleet.rng().below(fleet.size()));
      if (b == a) b = (b + 1) % fleet.size();
      if (fleet.rng().chance(c.p_update)) fleet.update(a);
      const auto rep = fleet.sync(a, b);
      if (rep.initial_relation == vv::Ordering::kEqual ||
          rep.initial_relation == vv::Ordering::kAfter) {
        continue;
      }
      ++sessions;
      bits += rep.total_bits();
      delta += rep.elems_applied;
      gamma_red += rep.elems_redundant;
      const double lb =
          static_cast<double>((rep.elems_applied + rep.segments_skipped + 1) * elem_bits);
      ratio_sum += static_cast<double>(rep.total_bits()) / lb;
    }
    Row row;
    row.sessions = sessions;
    if (sessions > 0) {
      row.bits_per = (double)bits / (double)sessions;
      row.delta_per = (double)delta / (double)sessions;
      row.gamma_per = (double)gamma_red / (double)sessions;
      row.ratio = ratio_sum / (double)sessions;
    }
    return row;
  });
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].sessions == 0) continue;
    std::printf("%-14.1f %-10s %-12.1f %-12.2f %-12.2f %-10.2f\n", configs[i].p_update,
                std::string(vv::to_string(configs[i].kind)).c_str(), rows[i].bits_per,
                rows[i].delta_per, rows[i].gamma_per, rows[i].ratio);
  }
  std::printf("\n(expected shape: SRV's LB ratio stays flat as conflicts rise; CRV's\n"
              " Γ column — and with it its ratio — grows. See EXPERIMENTS.md.)\n");
}

// Part 3: time per synchronization, scaling with |Δ| at fixed n — the
// O(|Δ|) time column of Table 2.
void BM_SyncTime(benchmark::State& state) {
  const auto kind = static_cast<vv::VectorKind>(state.range(0));
  const auto delta = static_cast<std::uint32_t>(state.range(1));
  const std::uint32_t n = 1024;
  vv::RotatingVector base = linear_history(n - delta);
  vv::RotatingVector b = base;
  for (std::uint32_t i = 0; i < delta; ++i) b.record_update(SiteId{n - delta + i});
  auto opt = ideal_options(kind, n);
  opt.known_relation = vv::Ordering::kBefore;
  for (auto _ : state) {
    state.PauseTiming();
    vv::RotatingVector a = base;  // receiver misses exactly Δ elements
    state.ResumeTiming();
    sim::EventLoop loop;
    auto rep = vv::sync_rotating(loop, a, b, opt);
    benchmark::DoNotOptimize(rep.total_bits());
  }
  state.counters["delta"] = delta;
}

BENCHMARK(BM_SyncTime)
    ->ArgsProduct({{static_cast<long>(vv::VectorKind::kBrv),
                    static_cast<long>(vv::VectorKind::kCrv),
                    static_cast<long>(vv::VectorKind::kSrv)},
                   {1, 8, 64, 512}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  init_bench(&argc, argv);
  std::printf("==== bench_table2: Table 2 reproduction (threads=%u) ====\n", threads());
  part1_upper_bounds();
  part2_scaling_and_lower_bound();
  std::printf("\n== Time per synchronization vs |Delta| (n=1024 fixed) ==\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
