// E-scale — the §1 motivation: "the size of such metadata increases at least
// linearly with the number of active sites … transmitting the entire
// metadata imposes substantial overhead on every site."
//
// Sweeps the site count and measures per-synchronization metadata traffic on
// a fixed-shape workload for: traditional full vectors, Singhal–Kshemkalyani,
// SRV (this paper), and hash histories. The rotating-vector column must stay
// ~flat (difference-proportional) while the others grow with n or with the
// update count.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "metadata/hash_history.h"

using namespace optrep;
using namespace optrep::bench;

namespace {

struct ScaleRow {
  double srv_bits;
  double trad_bits;
  double sk_bits;
  double hh_bits;
};

// The §1 motivating shape: the object has history on *all* n sites (every
// vector spans n elements), but at any moment only a handful of sites are
// actively writing — so per-sync differences are small and constant while n
// grows. Every replica starts from the same warm base; then `rounds` rounds
// of [kHot hot-site updates + n ring-gossip pulls] run, and the final
// round's sessions are measured.
constexpr std::uint32_t kHot = 8;

ScaleRow measure(std::uint32_t n, std::uint32_t rounds) {
  const CostModel cm{.n = n, .m = 1 << 16};
  ScaleRow row{};

  {  // SRV.
    const vv::RotatingVector warm = linear_history(n);
    std::vector<vv::RotatingVector> vecs(n, warm);
    auto opt = ideal_options(vv::VectorKind::kSrv, n);
    std::uint64_t bits = 0, sessions = 0;
    sim::EventLoop loop;
    for (std::uint32_t r = 0; r < rounds; ++r) {
      for (std::uint32_t h = 0; h < kHot; ++h) vecs[h].record_update(SiteId{h});
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t src = (i + n - 1) % n;
        opt.known_relation.reset();
        const auto rel = vv::compare_fast(vecs[i], vecs[src]);
        vv::SyncReport rep;
        if (rel == vv::Ordering::kBefore || rel == vv::Ordering::kConcurrent) {
          opt.known_relation = rel;
          rep = vv::sync_rotating(loop, vecs[i], vecs[src], opt);
          if (rel == vv::Ordering::kConcurrent) vecs[i].record_update(SiteId{i});
        }
        if (r + 1 == rounds) {
          bits += rep.total_bits() + vv::compare_cost_bits(cm);
          ++sessions;
        }
      }
    }
    row.srv_bits = static_cast<double>(bits) / static_cast<double>(sessions);
  }

  {  // Traditional and SK on plain version vectors, same schedule.
    vv::VersionVector warm;
    for (std::uint32_t i = 0; i < n; ++i) warm.set(SiteId{i}, 1);
    std::vector<vv::VersionVector> vecs(n, warm);
    std::vector<vv::VersionVector> sk_vecs(n, warm);
    std::vector<vv::VersionVector> last_sent(n);
    auto opt = ideal_options(vv::VectorKind::kBrv, n);
    std::uint64_t tbits = 0, skbits = 0, sessions = 0;
    sim::EventLoop loop;
    for (std::uint32_t r = 0; r < rounds; ++r) {
      for (std::uint32_t h = 0; h < kHot; ++h) {
        vecs[h].increment(SiteId{h});
        sk_vecs[h].increment(SiteId{h});
      }
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t src = (i + n - 1) % n;
        const auto trep = vv::sync_traditional(loop, vecs[i], vecs[src], opt);
        const auto skrep =
            vv::sync_singhal_kshemkalyani(loop, sk_vecs[i], sk_vecs[src], last_sent[src], opt);
        if (r + 1 == rounds) {
          tbits += trep.total_bits() + vv::compare_full_cost_bits(cm, vecs[src].size());
          skbits += skrep.total_bits() + vv::compare_cost_bits(cm);
          ++sessions;
        }
      }
    }
    row.trad_bits = static_cast<double>(tbits) / static_cast<double>(sessions);
    row.sk_bits = static_cast<double>(skbits) / static_cast<double>(sessions);
  }

  {  // Hash histories: exchange = ship the whole version DAG.
    meta::HashHistory warm;
    for (std::uint32_t i = 0; i < n; ++i) warm.record_update(UpdateId{SiteId{i}, 1});
    std::vector<meta::HashHistory> hh(n, warm);
    std::uint64_t bytes = 0, sessions = 0;
    for (std::uint32_t r = 0; r < rounds; ++r) {
      for (std::uint32_t h = 0; h < kHot; ++h)
        hh[h].record_update(UpdateId{SiteId{h}, r + 2});
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t src = (i + n - 1) % n;
        if (r + 1 == rounds) {
          bytes += hh[src].exchange_bytes();
          ++sessions;
        }
        switch (hh[i].compare(hh[src])) {
          case vv::Ordering::kBefore: hh[i].fast_forward(hh[src]); break;
          case vv::Ordering::kConcurrent: hh[i].merge(hh[src]); break;
          default: break;
        }
      }
    }
    row.hh_bits = static_cast<double>(bytes * 8) / static_cast<double>(sessions);
  }
  return row;
}

// Wall-clock cost of one gossip pull as the fleet grows: rotating vectors
// keep per-session work difference-proportional.
void BM_GossipPull(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  VectorFleet fleet(n, vv::VectorKind::kSrv, 7);
  fleet.evolve(2 * n, 0.7);
  std::uint32_t i = 0;
  for (auto _ : state) {
    fleet.update(i % n);
    benchmark::DoNotOptimize(fleet.sync((i + 1) % n, i % n).total_bits());
    ++i;
  }
}
BENCHMARK(BM_GossipPull)->RangeMultiplier(4)->Range(16, 1024)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  init_bench(&argc, argv);
  std::printf("==== bench_scalability: per-sync metadata traffic vs site count ====\n");
  std::printf("(history spans all n sites, %u hot writers per round, ring gossip,\n"
              " 4 rounds; bits measured in the final round, averaged per session)\n\n",
              kHot);
  std::printf("%-8s | %-14s %-14s %-14s %-16s\n", "n sites", "SRV (paper)",
              "traditional", "SK [23]", "hash history [12]");
  print_rule(72);
  const std::vector<std::uint32_t> ns =
      smoke() ? std::vector<std::uint32_t>{8, 32}
              : std::vector<std::uint32_t>{8, 32, 128, 512, 2048};
  const std::uint32_t rounds = smoke() ? 2 : 4;
  const auto rows = sweep(
      ns, [rounds](std::uint32_t n, std::size_t) { return measure(n, rounds); });
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ScaleRow& r = rows[i];
    std::printf("%-8u | %-14.0f %-14.0f %-14.0f %-16.0f\n", ns[i], r.srv_bits, r.trad_bits,
                r.sk_bits, r.hh_bits);
  }
  std::printf("\n(expected shape: traditional grows linearly with n; hash histories grow\n"
              " with total versions — even faster here; SK repeats are small but need\n"
              " O(n) sender state per peer; SRV stays difference-proportional.)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
