// E-storage — Observation 2.1: "Among all known solutions, version vectors
// and variants have the minimal storage complexity for accurate conflict
// detection."
//
// Grows a replicated object's history and reports the per-replica metadata
// footprint of: version vectors (n-bounded), rotating vectors (version
// vector + order + 2 bits/element), predecessor sets (grows with updates),
// hash histories (grows with versions), and causal graphs (grow with
// operations — required for operation transfer, overkill for state transfer).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "graph/causal_graph.h"
#include "metadata/hash_history.h"
#include "metadata/predecessor_set.h"

using namespace optrep;
using namespace optrep::bench;

namespace {

// Cost-model footprints in bytes, consistent across schemes: 4-byte site,
// 8-byte counter/seq.
std::uint64_t version_vector_bytes(const vv::VersionVector& v) { return v.size() * 12; }
std::uint64_t rotating_vector_bytes(const vv::RotatingVector& v) {
  // value (12) + two order links (8) + two flag bits (1 byte, generous).
  return v.size() * (12 + 8 + 1);
}
std::uint64_t causal_graph_bytes(const graph::CausalGraph& g) {
  return g.node_count() * (3 * 12);  // id + two parent ids
}

struct StorageRow {
  std::uint64_t vv, rot, ps, hh, cg;
};

// One sweep point: every one of `n` sites updates `u` times, fully gossiped.
StorageRow measure(std::uint32_t n, std::uint32_t u) {
  vv::VersionVector vec;
  vv::RotatingVector rot;
  meta::PredecessorSet ps;
  meta::HashHistory hh;
  graph::CausalGraph cg;
  cg.create(UpdateId{SiteId{0}, 1});
  std::uint64_t cg_seq = 1;
  for (std::uint32_t round = 0; round < u; ++round) {
    for (std::uint32_t s = 0; s < n; ++s) {
      vec.increment(SiteId{s});
      rot.record_update(SiteId{s});
      const UpdateId id{SiteId{s}, round + 1};
      ps.record_update(id);
      hh.record_update(id);
      cg.append(UpdateId{SiteId{0}, ++cg_seq});
    }
  }
  return {version_vector_bytes(vec), rotating_vector_bytes(rot), ps.storage_bytes(),
          hh.storage_bytes(), causal_graph_bytes(cg)};
}

// The O(1) update cost that keeps rotating vectors cheap to maintain (§4.1:
// "Incrementing an element in SRV due to replica updates consumes O(1) space
// and time").
void BM_RecordUpdate(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  vv::RotatingVector v = linear_history(n);
  std::uint32_t i = 0;
  for (auto _ : state) {
    v.record_update(SiteId{i++ % n});
  }
  benchmark::DoNotOptimize(v.size());
}
BENCHMARK(BM_RecordUpdate)->RangeMultiplier(8)->Range(8, 32768);

}  // namespace

int main(int argc, char** argv) {
  init_bench(&argc, argv);
  std::printf("==== bench_storage: per-replica metadata footprint (Observation 2.1) ====\n");
  std::printf("(n = 32 sites, every site updates u times, fully gossiped)\n\n");
  std::printf("%-10s | %-10s %-10s %-12s %-12s %-12s\n", "updates u", "vv", "rotating",
              "pred. set", "hash hist.", "causal graph");
  print_rule(74);

  constexpr std::uint32_t n = 32;
  const std::vector<std::uint32_t> us =
      smoke() ? std::vector<std::uint32_t>{1, 4, 16}
              : std::vector<std::uint32_t>{1, 4, 16, 64, 256};
  const auto rows =
      sweep(us, [](std::uint32_t u, std::size_t) { return measure(n, u); });
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const StorageRow& r = rows[i];
    std::printf("%-10u | %-10llu %-10llu %-12llu %-12llu %-12llu\n", us[i],
                (unsigned long long)r.vv, (unsigned long long)r.rot,
                (unsigned long long)r.ps, (unsigned long long)r.hh,
                (unsigned long long)r.cg);
  }
  std::printf("\n(expected shape: the two vector columns are flat in u — O(n) only;\n"
              " predecessor sets, hash histories and causal graphs grow linearly with\n"
              " the update count. Rotating vectors pay a small constant factor over\n"
              " plain vectors for the order links and the two per-element bits.)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
