// E-delta — §3.3's SYNCB claim: communication is O(|Δ|), independent of the
// vector length n. The traditional algorithm ships the whole vector (O(n)).
//
// Sweeps n × |Δ| on fast-forward synchronizations and prints transmitted
// bits per session for BRV / CRV / SRV / traditional / Singhal–Kshemkalyani.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

using namespace optrep;
using namespace optrep::bench;

namespace {

struct Row {
  std::uint64_t brv, crv, srv, trad, sk_first, sk_second;
};

Row measure(std::uint32_t n, std::uint32_t delta) {
  Row row{};
  // Shared long history; sender gains `delta` fresh updates.
  const vv::RotatingVector base = linear_history(n - delta);
  vv::RotatingVector b = base;
  for (std::uint32_t i = 0; i < delta; ++i) b.record_update(SiteId{n - delta + i});

  for (auto kind : {vv::VectorKind::kBrv, vv::VectorKind::kCrv, vv::VectorKind::kSrv}) {
    vv::RotatingVector a = base;
    auto opt = ideal_options(kind, n);
    sim::EventLoop loop;
    const auto rep = vv::sync_rotating(loop, a, b, opt);
    (kind == vv::VectorKind::kBrv   ? row.brv
     : kind == vv::VectorKind::kCrv ? row.crv
                                    : row.srv) = rep.total_bits();
  }
  {
    vv::VersionVector a = base.to_version_vector();
    const vv::VersionVector bb = b.to_version_vector();
    auto opt = ideal_options(vv::VectorKind::kBrv, n);
    sim::EventLoop loop;
    const auto rep = vv::sync_traditional(loop, a, bb, opt);
    // Traditional systems also pay O(n) bits to compare.
    row.trad = rep.total_bits() + vv::compare_full_cost_bits(opt.cost, bb.size());
  }
  {
    // Singhal–Kshemkalyani: the first exchange to a destination ships
    // everything (empty last-sent state); repeat exchanges ship the delta.
    vv::VersionVector a = base.to_version_vector();
    vv::VersionVector last_sent;  // per-destination sender state, O(n) memory
    auto opt = ideal_options(vv::VectorKind::kBrv, n);
    sim::EventLoop l1;
    row.sk_first = vv::sync_singhal_kshemkalyani(l1, a, b.to_version_vector(), last_sent, opt)
                       .total_bits();
    vv::RotatingVector b2 = b;
    b2.record_update(SiteId{0});
    sim::EventLoop l2;
    row.sk_second =
        vv::sync_singhal_kshemkalyani(l2, a, b2.to_version_vector(), last_sent, opt)
            .total_bits();
  }
  return row;
}

void BM_FastForwardSync(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const vv::RotatingVector base = linear_history(n - 4);
  vv::RotatingVector b = base;
  for (std::uint32_t i = 0; i < 4; ++i) b.record_update(SiteId{n - 4 + i});
  auto opt = ideal_options(vv::VectorKind::kSrv, n);
  opt.known_relation = vv::Ordering::kBefore;
  for (auto _ : state) {
    state.PauseTiming();
    vv::RotatingVector a = base;
    state.ResumeTiming();
    sim::EventLoop loop;
    benchmark::DoNotOptimize(vv::sync_rotating(loop, a, b, opt).total_bits());
  }
}
// Time stays flat in n for fixed |Δ| (after the O(|Δ|) work, nothing scales).
BENCHMARK(BM_FastForwardSync)->RangeMultiplier(4)->Range(64, 16384)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  init_bench(&argc, argv);
  std::printf("==== bench_sync_state: SYNC* traffic = f(|Delta|), not f(n) ====\n\n");
  std::printf("%-7s %-7s | %-10s %-10s %-10s | %-12s %-12s %-12s\n", "n", "Delta", "BRV",
              "CRV", "SRV", "traditional", "SK(first)", "SK(repeat)");
  print_rule(92);
  BenchReporter reporter("sync_state");
  const std::vector<std::uint32_t> ns =
      smoke() ? std::vector<std::uint32_t>{64, 256}
              : std::vector<std::uint32_t>{64, 256, 1024, 4096};
  const std::vector<std::uint32_t> deltas =
      smoke() ? std::vector<std::uint32_t>{1, 4, 16}
              : std::vector<std::uint32_t>{1, 4, 16, 64};
  std::vector<std::pair<std::uint32_t, std::uint32_t>> configs;
  for (std::uint32_t n : ns) {
    for (std::uint32_t delta : deltas) {
      if (delta >= n) continue;
      configs.emplace_back(n, delta);
    }
  }
  const auto rows = sweep(
      configs, [](const std::pair<std::uint32_t, std::uint32_t>& c, std::size_t) {
        return measure(c.first, c.second);
      });
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto [n, delta] = configs[i];
    const Row& r = rows[i];
    std::printf("%-7u %-7u | %-10llu %-10llu %-10llu | %-12llu %-12llu %-12llu\n", n,
                delta, (unsigned long long)r.brv, (unsigned long long)r.crv,
                (unsigned long long)r.srv, (unsigned long long)r.trad,
                (unsigned long long)r.sk_first, (unsigned long long)r.sk_second);
    obs::JsonWriter w;
    w.begin_object();
    w.field("n", n);
    w.field("delta", delta);
    w.field("brv_bits", r.brv);
    w.field("crv_bits", r.crv);
    w.field("srv_bits", r.srv);
    w.field("traditional_bits", r.trad);
    w.field("sk_first_bits", r.sk_first);
    w.field("sk_repeat_bits", r.sk_second);
    w.end_object();
    reporter.add_row(w.take());
  }
  reporter.flush();
  std::printf("\n(read down a column: rotating-vector bits track Delta and barely move\n"
              " with n — the log n field width is the only growth; traditional traffic\n"
              " is proportional to n. SK repeats are delta-sized but cost O(n) sender\n"
              " state per destination and mis-handle replication causality, §7.)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
