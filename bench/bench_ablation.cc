// Ablations of the design choices DESIGN.md calls out.
//
// A1 — conflict bit (§3.2): run SYNCB where reconciliation demands SYNCC and
//      count replicas whose values diverge from the element-wise-max oracle.
//      The paper's θ1/θ2/θ3 example says this must happen; here is how often
//      on a realistic workload, and that CRV reduces it to zero.
// A2 — post-reconciliation increment ([11 §C], §2.2): omit the mandated
//      local update after reconciling and count COMPARE answers that
//      contradict ground-truth causality. The increment is what restores
//      the "front element dominates" invariant COMPARE relies on.
// A3 — rotating order itself: disable incremental halting by always sending
//      the full vector (the traditional baseline) and report the traffic
//      multiplier on the same trace.
#include "bench/bench_util.h"
#include "vv/compare.h"

using namespace optrep;
using namespace optrep::bench;

namespace {

struct AblationStats {
  std::uint64_t sessions{0};
  std::uint64_t divergences{0};
  std::uint64_t compare_errors{0};
  std::uint64_t bits{0};
};

// One evolving model with pluggable behaviour.
AblationStats run_model(vv::VectorKind kind, bool post_reconcile_increment,
                        std::uint64_t seed) {
  constexpr std::uint32_t kSites = 8;
  Rng rng(seed);
  std::vector<vv::RotatingVector> vec(kSites);
  std::vector<vv::VersionVector> oracle(kSites);
  AblationStats st;

  const int steps = smoke() ? 400 : 4000;
  for (int step = 0; step < steps; ++step) {
    const auto i = static_cast<std::uint32_t>(rng.below(kSites));
    if (rng.chance(0.5)) {
      vec[i].record_update(SiteId{i});
      oracle[i].increment(SiteId{i});
      continue;
    }
    auto j = static_cast<std::uint32_t>(rng.below(kSites));
    if (j == i) j = (j + 1) % kSites;

    // Ground truth relation from the oracle vectors.
    const vv::Ordering truth = oracle[i].compare(oracle[j]);
    const vv::Ordering fast = vv::compare_fast(vec[i], vec[j]);
    if (fast != truth) ++st.compare_errors;

    if (truth == vv::Ordering::kEqual || truth == vv::Ordering::kAfter) continue;
    auto opt = ideal_options(kind, kSites);
    opt.known_relation = truth;
    sim::EventLoop loop;
    const auto rep = vv::sync_rotating(loop, vec[i], vec[j], opt);
    st.bits += rep.total_bits();
    ++st.sessions;
    oracle[i].join(oracle[j]);
    if (truth == vv::Ordering::kConcurrent && post_reconcile_increment) {
      vec[i].record_update(SiteId{i});
      oracle[i].increment(SiteId{i});
    }
    if (!vec[i].same_values(oracle[i])) {
      ++st.divergences;
      // Repair from the oracle so one divergence is not counted forever:
      // rebuild the vector with correct values (order approximate).
      vv::RotatingVector fixed;
      for (const auto& [site, value] : oracle[i].elements()) {
        fixed.rotate_after(std::nullopt, site);
        fixed.set_element(site, value, false, false);
      }
      vec[i] = fixed;
    }
  }
  return st;
}

}  // namespace

int main(int argc, char** argv) {
  init_bench(&argc, argv);
  std::printf("==== bench_ablation: why each mechanism exists ====\n\n");

  std::printf("-- A1: conflict bit. Reconciling workload --\n");
  std::printf("%-30s %-12s %-14s\n", "configuration", "sessions", "divergences");
  print_rule(58);
  const std::uint64_t n_seeds = smoke() ? 2u : 5u;
  const std::vector<std::pair<vv::VectorKind, const char*>> kinds{
      {vv::VectorKind::kBrv, "SYNCB (no conflict bit)"},
      {vv::VectorKind::kCrv, "SYNCC (conflict bit)"},
      {vv::VectorKind::kSrv, "SYNCS (conflict+segment)"}};
  std::vector<std::pair<vv::VectorKind, std::uint64_t>> a1_configs;
  for (const auto& [kind, label] : kinds) {
    for (std::uint64_t seed = 1; seed <= n_seeds; ++seed) a1_configs.emplace_back(kind, seed);
  }
  const auto a1_rows = sweep(
      a1_configs, [](const std::pair<vv::VectorKind, std::uint64_t>& c, std::size_t) {
        return run_model(c.first, /*post_reconcile_increment=*/true, c.second);
      });
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    std::uint64_t sessions = 0, div = 0;
    for (std::uint64_t s = 0; s < n_seeds; ++s) {
      const AblationStats& st = a1_rows[k * n_seeds + s];
      sessions += st.sessions;
      div += st.divergences;
    }
    std::printf("%-30s %-12llu %-14llu\n", kinds[k].second, (unsigned long long)sessions,
                (unsigned long long)div);
  }
  std::printf("(expected: BRV loses values under reconciliation — the §3.2 failure;\n"
              " CRV and SRV never diverge.)\n\n");

  std::printf("-- A2: §2.2 post-reconciliation increment --\n");
  std::printf("%-30s %-16s\n", "configuration", "COMPARE errors");
  print_rule(48);
  std::vector<std::pair<bool, std::uint64_t>> a2_configs;
  for (bool inc : {true, false}) {
    for (std::uint64_t seed = 1; seed <= n_seeds; ++seed) a2_configs.emplace_back(inc, seed);
  }
  const auto a2_rows =
      sweep(a2_configs, [](const std::pair<bool, std::uint64_t>& c, std::size_t) {
        return run_model(vv::VectorKind::kSrv, c.first, c.second);
      });
  for (std::size_t k = 0; k < 2; ++k) {
    std::uint64_t errs = 0;
    for (std::uint64_t s = 0; s < n_seeds; ++s) errs += a2_rows[k * n_seeds + s].compare_errors;
    std::printf("%-30s %-16llu\n",
                k == 0 ? "with increment (paper)" : "increment omitted",
                (unsigned long long)errs);
  }
  std::printf("(expected: omitting the increment breaks the front-dominates invariant\n"
              " and COMPARE starts contradicting ground truth.)\n\n");

  std::printf("-- A3: incremental halting vs whole-vector shipping, same trace --\n");
  {
    const auto srv = run_model(vv::VectorKind::kSrv, true, 99);
    // Whole-vector cost on the same session count: every session ships a
    // full 8-site vector.
    const CostModel cm{.n = 8, .m = 1 << 16};
    const std::uint64_t full = srv.sessions * (8 * cm.elem_bits(0) + cm.halt_bits());
    std::printf("SRV incremental: %llu bits over %llu sessions\n",
                (unsigned long long)srv.bits, (unsigned long long)srv.sessions);
    std::printf("full vectors:    %llu bits over the same sessions (%.2fx)\n",
                (unsigned long long)full,
                srv.bits ? (double)full / (double)srv.bits : 0.0);
  }
  return 0;
}
