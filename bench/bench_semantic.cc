// E-semantic — §1/§4: semantic-over-syntactic detection uses the cheap
// syntactic signal (COMPARE, O(1)) as a trigger for a costlier semantic
// check; on write-disjoint workloads almost every syntactic conflict is a
// false alarm ("heavily updated objects can generate numerous syntactic-only
// conflicts"). This bench measures the filter rate as a function of the
// write working-set overlap, and the per-trigger cost split.
#include "bench/bench_util.h"
#include "repl/record_system.h"

using namespace optrep;
using namespace optrep::bench;

namespace {

struct SemSample {
  std::uint64_t syntactic;
  std::uint64_t syntactic_only;
  std::uint64_t semantic;
  std::uint64_t sessions;
  std::uint64_t bits;
};

// `overlap` controls how likely two sites write to the same keys: each write
// picks a key from a shared pool of size `key_pool` (small pool = heavy
// overlap) or, with probability 1-overlap, from the writer's private range.
SemSample run(double overlap, std::uint32_t key_pool, std::uint64_t seed) {
  constexpr std::uint32_t kSites = 8;
  repl::RecordSystem::Config cfg;
  cfg.n_sites = kSites;
  cfg.kind = vv::VectorKind::kSrv;
  cfg.policy = repl::SemanticPolicy::kLastWriterWins;
  cfg.cost = CostModel{.n = kSites, .m = 1 << 16};
  repl::RecordSystem sys(cfg);
  const ObjectId db{0};
  Rng rng(seed);

  sys.create_object(SiteId{0}, db, "genesis", "x");
  for (std::uint32_t s = 1; s < kSites; ++s) sys.sync(SiteId{s}, SiteId{0}, db);

  std::vector<std::uint64_t> priv(kSites, 0);
  const int steps = smoke() ? 400 : 4000;
  for (int step = 0; step < steps; ++step) {
    const auto s = static_cast<std::uint32_t>(rng.below(kSites));
    if (rng.chance(0.55)) {
      std::string key;
      if (rng.chance(overlap)) {
        key = "shared:" + std::to_string(rng.below(key_pool));
      } else {
        key = "own:" + std::to_string(s) + ":" + std::to_string(priv[s]++ % 64);
      }
      sys.put(SiteId{s}, db, key, "v" + std::to_string(step));
    } else {
      auto p = static_cast<std::uint32_t>(rng.below(kSites));
      if (p == s) p = (p + 1) % kSites;
      sys.sync(SiteId{s}, SiteId{p}, db);
    }
  }
  SemSample out{};
  out.syntactic = sys.totals().syntactic_conflicts;
  out.syntactic_only = sys.totals().syntactic_only;
  out.semantic = sys.totals().semantic_conflicts;
  out.sessions = sys.totals().sessions;
  out.bits = sys.totals().bits;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  init_bench(&argc, argv);
  std::printf("==== bench_semantic: syntactic triggers vs true semantic conflicts ====\n");
  std::printf("(8 sites, 4000 events, LWW resolution; overlap = P(write hits the\n"
              " shared key pool))\n\n");
  std::printf("%-9s %-9s | %-11s %-14s %-13s %-14s %-11s\n", "overlap", "pool",
              "triggers", "false alarms", "filtered", "record confl.", "bits/sess");
  print_rule(88);
  const std::vector<double> overlaps =
      smoke() ? std::vector<double>{0.0, 0.6}
              : std::vector<double>{0.0, 0.1, 0.3, 0.6, 0.9};
  std::vector<std::pair<double, std::uint32_t>> configs;
  for (double overlap : overlaps) {
    for (std::uint32_t pool : {4u, 64u}) {
      if (overlap == 0.0 && pool != 4u) continue;  // pool is moot at 0 overlap
      configs.emplace_back(overlap, pool);
    }
  }
  const auto rows =
      sweep(configs, [](const std::pair<double, std::uint32_t>& c, std::size_t) {
        return run(c.first, c.second, 42);
      });
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto [overlap, pool] = configs[i];
    const SemSample& s = rows[i];
    const double filtered =
        s.syntactic == 0 ? 0.0
                         : 100.0 * (double)s.syntactic_only / (double)s.syntactic;
    std::printf("%-9.1f %-9u | %-11llu %-14llu %-12.1f%% %-14llu %-11.1f\n", overlap,
                pool, (unsigned long long)s.syntactic,
                (unsigned long long)s.syntactic_only, filtered,
                (unsigned long long)s.semantic, (double)s.bits / (double)s.sessions);
  }
  std::printf("\n(expected shape: with disjoint write sets every syntactic conflict is\n"
              " filtered — ~100%% false alarms, exactly the regime where the cost of\n"
              " the trigger itself matters and SRV's cheap metadata exchange pays;\n"
              " with a tiny shared pool true conflicts emerge but most triggers are\n"
              " still syntactic-only.)\n");
  return 0;
}
