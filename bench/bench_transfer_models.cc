// §6 framing: "While state transfer overwrites an entire replica during
// synchronization, operation transfer maintains a history of operations and
// sends only missing operations to bring a replica up to date."
//
// Runs the *same* trace through the state-transfer system and the
// operation-transfer system (identical ~32-byte writes) and compares the
// content bytes each moves, alongside the metadata bits. Sweeping object
// "size" (accumulated entries) shows the regime where each model wins —
// and why hybrid transfer (bench_hybrid) interpolates between them.
#include "bench/bench_util.h"
#include "workload/trace.h"

using namespace optrep;
using namespace optrep::bench;

namespace {

struct ModelSample {
  std::uint64_t state_payload;
  std::uint64_t state_bits;
  std::uint64_t op_payload;
  std::uint64_t op_bits;
  bool both_consistent;
};

ModelSample run(std::uint32_t steps, double update_prob) {
  wl::GeneratorConfig g;
  g.n_sites = 8;
  g.n_objects = 1;
  g.steps = steps;
  g.update_prob = update_prob;
  g.seed = 17;
  const wl::Trace trace = wl::generate(g);

  repl::StateSystem::Config scfg;
  scfg.n_sites = g.n_sites;
  scfg.kind = vv::VectorKind::kSrv;
  scfg.policy = repl::ResolutionPolicy::kAutomatic;
  scfg.cost = CostModel{.n = g.n_sites, .m = 1 << 16};
  scfg.check_oracle = false;
  repl::StateSystem ssys(scfg);
  const auto sstats = wl::run_state(ssys, trace);

  repl::OpSystem::Config ocfg;
  ocfg.n_sites = g.n_sites;
  ocfg.cost = CostModel{.n = g.n_sites, .m = 1 << 20};
  repl::OpSystem osys(ocfg);
  const auto ostats = wl::run_op(osys, trace);

  ModelSample s{};
  s.state_payload = ssys.totals().payload_bytes;
  s.state_bits = ssys.totals().bits;
  s.op_payload = osys.totals().op_bytes;
  s.op_bits = osys.totals().bits;
  s.both_consistent = sstats.eventually_consistent && ostats.eventually_consistent;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  init_bench(&argc, argv);
  std::printf("==== bench_transfer_models: state vs operation transfer (§6) ====\n");
  std::printf("(same trace, 8 sites, ~9-byte entries; payload = content bytes moved,\n"
              " metadata = concurrency-control bits)\n\n");
  std::printf("%-8s %-8s | %-16s %-14s | %-16s %-14s | %-6s\n", "steps", "p(upd)",
              "state payload B", "state bits", "op payload B", "op bits", "ok");
  print_rule(96);
  const std::vector<std::uint32_t> step_counts =
      smoke() ? std::vector<std::uint32_t>{200}
              : std::vector<std::uint32_t>{200, 800, 3200};
  std::vector<std::pair<std::uint32_t, double>> configs;
  for (std::uint32_t steps : step_counts) {
    for (double p : {0.3, 0.7}) configs.emplace_back(steps, p);
  }
  const auto rows =
      sweep(configs, [](const std::pair<std::uint32_t, double>& c, std::size_t) {
        return run(c.first, c.second);
      });
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto [steps, p] = configs[i];
    const ModelSample& s = rows[i];
    std::printf("%-8u %-8.1f | %-16llu %-14llu | %-16llu %-14llu | %-6s\n", steps, p,
                (unsigned long long)s.state_payload, (unsigned long long)s.state_bits,
                (unsigned long long)s.op_payload, (unsigned long long)s.op_bits,
                s.both_consistent ? "yes" : "NO");
  }
  std::printf("\n(expected shape: operation transfer's payload traffic grows with the\n"
              " number of *new* operations per session and stays near-linear in the\n"
              " trace length; state transfer re-ships the ever-growing object on every\n"
              " pull, so its payload column grows super-linearly. Metadata stays small\n"
              " for both — that is the paper's point — but graphs cost more bits than\n"
              " vectors, which is why state-transfer systems prefer vectors, §2.2.)\n");
  return 0;
}
