// Serving-path benchmarks: the epoll sync server (src/net/server.h) driven
// end to end over loopback TCP by the closed-loop load generator
// (src/net/load_gen.h).
//
// Two kinds of output:
//   * structural rows in BENCH_serve.json — per vector kind, a single-client
//     stop-and-wait loopback run. One client in lockstep makes the server's
//     state evolution a pure function of the seed, so session mix, transfer
//     counts, element counts and exact wire bytes are machine-independent;
//     the smoke rows are the committed baseline for the optrep_report gate
//     (growing bytes_tx/bytes_rx = wire bloat, fails the "bytes" rule).
//   * the serving SLO gate row — measured wall-clock throughput and 1→4
//     worker scaling, reduced to two deliberately lenient booleans:
//     throughput_ok (>= 1000 sessions/s over loopback: an order of magnitude
//     below what a laptop does, so only a real serving-path collapse trips
//     it) and scaling_ok (>= 1.3x only when the machine actually has >= 8
//     hardware threads; trivially true on small CI runners where a reactor
//     scaling measurement is noise). Raw sessions/s, latency percentiles and
//     speedup go to stdout ONLY — never into the gated JSON.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "net/load_gen.h"
#include "net/server.h"
#include "obs/export.h"
#include "rt/thread_pool.h"

using namespace optrep;
using namespace optrep::bench;

namespace {

std::unique_ptr<net::Server> start_server(vv::VectorKind kind, unsigned workers,
                                          std::uint32_t replicas, std::uint32_t prefill) {
  net::ServerConfig cfg;
  cfg.workers = workers;
  cfg.store.kind = kind;
  cfg.store.replicas = replicas;
  cfg.store.site_capacity = 1024;
  cfg.store.seed = 42;
  cfg.store.prefill_updates = prefill;
  auto sv = std::make_unique<net::Server>(cfg);
  std::string err;
  if (!sv->start(&err)) {
    std::fprintf(stderr, "bench_serve: server start failed: %s\n", err.c_str());
    std::exit(1);
  }
  return sv;
}

net::LoadReport run(const net::Server& sv, net::LoadConfig cfg) {
  cfg.host = "127.0.0.1";
  cfg.port = sv.port();
  const net::LoadReport r = net::run_load(cfg);
  if (r.errors != 0) {
    std::fprintf(stderr, "bench_serve: load errors: %s\n", r.first_error.c_str());
    std::exit(1);
  }
  return r;
}

constexpr struct {
  vv::VectorKind kind;
  const char* name;
} kKinds[] = {
    {vv::VectorKind::kBrv, "brv"},
    {vv::VectorKind::kCrv, "crv"},
    {vv::VectorKind::kSrv, "srv"},
};

}  // namespace

int main(int argc, char** argv) {
  init_bench(&argc, argv);

  std::printf("==== bench_serve: epoll sync server over loopback TCP ====\n\n");
  BenchReporter reporter("serve");

  // ---- deterministic structural rows (the committed baseline) -------------
  const std::uint32_t det_sessions = smoke() ? 120 : 600;
  std::printf("single client, stop-and-wait (deterministic; %u sessions):\n",
              det_sessions);
  std::printf("%-5s | %-9s %-9s %-6s %-6s %-6s %-10s %-8s %-8s %-8s\n", "kind",
              "compare", "push", "pull", "xfers", "noops", "elems", "applied",
              "bytes_tx", "bytes_rx");
  print_rule(88);
  for (const auto& k : kKinds) {
    auto sv = start_server(k.kind, /*workers=*/1, /*replicas=*/8, /*prefill=*/6);
    net::LoadConfig cfg;
    cfg.kind = k.kind;
    cfg.clients = 1;
    cfg.sessions_per_client = det_sessions;
    cfg.replicas = 8;
    cfg.stop_and_wait = true;
    cfg.seed = 5;
    const net::LoadReport r = run(*sv, cfg);
    const net::ServerStats st = sv->stats();
    sv->stop();

    std::printf("%-5s | %-9llu %-9llu %-6llu %-6llu %-6llu %-10llu %-8llu %-8llu %-8llu\n",
                k.name, (unsigned long long)r.compare_sessions,
                (unsigned long long)r.push_sessions, (unsigned long long)r.pull_sessions,
                (unsigned long long)r.transfers, (unsigned long long)r.noops,
                (unsigned long long)r.elems_sent, (unsigned long long)r.elems_applied,
                (unsigned long long)r.bytes_tx, (unsigned long long)r.bytes_rx);

    obs::JsonWriter w;
    w.begin_object();
    w.field("kind", k.name);
    w.field("sessions", std::uint64_t{det_sessions});
    w.field("completed", r.completed);
    w.field("compare_sessions", r.compare_sessions);
    w.field("push_sessions", r.push_sessions);
    w.field("pull_sessions", r.pull_sessions);
    w.field("transfers", r.transfers);
    w.field("noops", r.noops);
    w.field("elems_sent", r.elems_sent);
    w.field("elems_applied", r.elems_applied);
    w.field("session_bytes_tx", r.bytes_tx);
    w.field("session_bytes_rx", r.bytes_rx);
    w.field("server_commits", st.commits);
    w.field("server_aborted", st.sessions_aborted);
    w.field("decode_errors", st.decode_errors);
    w.end_object();
    reporter.add_row(w.take());
  }

  // ---- serving SLO gate (measured; only the booleans enter the JSON) ------
  const std::uint32_t slo_sessions = smoke() ? 100 : 500;
  net::LoadConfig slo;
  slo.kind = vv::VectorKind::kSrv;
  slo.clients = 8;
  slo.sessions_per_client = slo_sessions;
  slo.replicas = 16;
  slo.seed = 9;

  double sps[2] = {0, 0};  // workers = 1, 4
  const unsigned worker_counts[2] = {1, 4};
  std::printf("\nthroughput (8 pipelined clients x %u sessions; wall clock,\n"
              " machine-dependent, NOT in JSON):\n", slo_sessions);
  for (int i = 0; i < 2; ++i) {
    auto sv = start_server(vv::VectorKind::kSrv, worker_counts[i], 16, /*prefill=*/8);
    const net::LoadReport r = run(*sv, slo);
    sv->stop();
    sps[i] = r.sessions_per_s;
    std::printf("  %u worker%s: %8.0f sessions/s, %8.0f bytes/s, "
                "p50=%.0fus p99=%.0fus p999=%.0fus\n",
                worker_counts[i], worker_counts[i] == 1 ? " " : "s", r.sessions_per_s,
                r.bytes_per_s, r.p50_us, r.p99_us, r.p999_us);
  }
  const double speedup = sps[0] > 0 ? sps[1] / sps[0] : 0;
  const unsigned hw = rt::ThreadPool::hardware_threads();
  const bool throughput_ok = sps[0] >= 1000.0 && sps[1] >= 1000.0;
  const bool scaling_ok = hw < 8 || speedup >= 1.3;
  std::printf("  1->4 worker speedup: %.2fx on %u hardware threads "
              "(gate %s: needs >= 1.3x only when hw >= 8)\n",
              speedup, hw, hw < 8 ? "waived" : "armed");

  obs::JsonWriter w;
  w.begin_object();
  w.field("gate", "serve_slo");
  w.field("throughput_ok", std::uint64_t{throughput_ok ? 1u : 0u});
  w.field("scaling_ok", std::uint64_t{scaling_ok ? 1u : 0u});
  w.end_object();
  reporter.add_row(w.take());
  reporter.flush();

  if (!throughput_ok || !scaling_ok) {
    std::fprintf(stderr, "FAIL: serving SLO gate (throughput_ok=%d scaling_ok=%d)\n",
                 throughput_ok ? 1 : 0, scaling_ok ? 1 : 0);
    return 1;
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
