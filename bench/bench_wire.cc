// W-frames — frame-batched sync transport (sim::FrameLink + vv/frame_codec).
//
// Part 1 runs pipelined worst-case sessions (receiver empty, sender holds n
// elements) with framing off and on and reports, per (n, algo, budget):
//   - executed event-loop dispatches, unframed vs framed (the tentpole claim:
//     ≥5× fewer at n=10k, checked in-process),
//   - §3.3 model bits (asserted identical with framing on/off),
//   - realistic wire bytes, per-message vs delta-varint framed (framed must
//     shrink, checked in-process).
// All row fields are model-derived integers, so the committed baseline under
// bench/baselines/ is byte-identical on every machine and thread count.
//
// Part 2 times the same sessions (google-benchmark): fewer dispatches and
// one encode per frame also shrink real wall-clock per simulated session.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/check.h"
#include "vv/frame_codec.h"

using namespace optrep;
using namespace optrep::bench;

namespace {

vv::SyncOptions pipelined_options(vv::VectorKind kind, std::uint32_t n,
                                  std::uint32_t budget) {
  vv::SyncOptions opt;
  opt.kind = kind;
  opt.mode = vv::TransferMode::kPipelined;
  opt.cost = CostModel{.n = n, .m = 1 << 16};
  // Finite, non-round figures: pipelined speculation needs a real link rate,
  // and off-grid timing keeps event-order ties honest.
  opt.net = {.latency_s = 0.0013, .bandwidth_bits_per_s = 99700.0};
  opt.net.frame_budget = budget;
  opt.known_relation = vv::Ordering::kBefore;
  return opt;
}

void part1_events_and_bytes() {
  std::printf("\n== Frame batching: dispatches and wire bytes per session "
              "(pipelined, receiver empty) ==\n");
  std::printf("%-8s %-6s %-8s %-12s %-12s %-8s %-12s %-12s %-8s\n", "n", "algo",
              "budget", "events[0]", "events[B]", "ratio", "bytes", "framed", "saved");
  print_rule(96);
  BenchReporter reporter("wire");
  struct Config {
    std::uint32_t n;
    vv::VectorKind kind;
    std::uint32_t budget;
  };
  std::vector<Config> configs;
  const std::vector<std::uint32_t> ns = smoke() ? std::vector<std::uint32_t>{1000, 10000}
                                                : std::vector<std::uint32_t>{1000, 10000, 50000};
  for (std::uint32_t n : ns) {
    for (auto kind : {vv::VectorKind::kBrv, vv::VectorKind::kCrv, vv::VectorKind::kSrv}) {
      for (std::uint32_t budget : {16u, 64u}) configs.push_back({n, kind, budget});
    }
  }
  struct Row {
    std::uint64_t events_unframed{0}, events_framed{0};
    std::uint64_t bytes{0}, framed_bytes{0}, frames{0};
    std::string json;
  };
  const auto rows = sweep(configs, [](const Config& c, std::size_t) {
    const vv::RotatingVector full = linear_history(c.n);

    vv::RotatingVector a0;
    sim::EventLoop loop0;
    const auto r0 = vv::sync_rotating(loop0, a0, full, pipelined_options(c.kind, c.n, 0));

    vv::RotatingVector a1;
    sim::EventLoop loop1;
    const auto r1 =
        vv::sync_rotating(loop1, a1, full, pipelined_options(c.kind, c.n, c.budget));

    // Framing must be invisible to the protocol and the §3.3 accounting...
    OPTREP_CHECK(r1.total_bits() == r0.total_bits());
    OPTREP_CHECK(r1.total_bytes() == r0.total_bytes());
    OPTREP_CHECK(r1.elems_sent == r0.elems_sent);
    OPTREP_CHECK(r1.duration == r0.duration);
    // ...while shrinking both dispatch count and realistic wire bytes: the
    // acceptance bar is ≥5× fewer executed events from n=1000 up.
    OPTREP_CHECK(r0.loop_events >= 5 * r1.loop_events);
    OPTREP_CHECK(r1.total_framed_bytes() < r0.total_bytes());

    Row row;
    row.events_unframed = r0.loop_events;
    row.events_framed = r1.loop_events;
    row.bytes = r1.total_bytes();
    row.framed_bytes = r1.total_framed_bytes();
    row.frames = r1.total_frames();
    obs::JsonWriter w;
    w.begin_object();
    w.field("n", c.n);
    w.field("algo", vv::to_string(c.kind));
    w.field("budget", c.budget);
    w.field("elems", r1.elems_sent);
    w.field("model_bits", r1.total_bits());
    w.field("wire_bytes", row.bytes);
    w.field("framed_wire_bytes", row.framed_bytes);
    w.field("frames", row.frames);
    w.field("events_unframed", row.events_unframed);
    w.field("events_framed", row.events_framed);
    w.end_object();
    row.json = w.take();
    return row;
  });
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::printf("%-8u %-6s %-8u %-12llu %-12llu %-8.1f %-12llu %-12llu %5.1f%%\n",
                configs[i].n, std::string(vv::to_string(configs[i].kind)).c_str(),
                configs[i].budget, (unsigned long long)r.events_unframed,
                (unsigned long long)r.events_framed,
                static_cast<double>(r.events_unframed) /
                    static_cast<double>(r.events_framed),
                (unsigned long long)r.bytes, (unsigned long long)r.framed_bytes,
                100.0 * (1.0 - static_cast<double>(r.framed_bytes) /
                                   static_cast<double>(r.bytes)));
    reporter.add_row(rows[i].json);
  }
  reporter.flush();
}

void BM_PipelinedSync(benchmark::State& state) {
  const auto budget = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t n = 10000;
  const vv::RotatingVector full = linear_history(n);
  const auto opt = pipelined_options(vv::VectorKind::kSrv, n, budget);
  for (auto _ : state) {
    state.PauseTiming();
    vv::RotatingVector a;
    state.ResumeTiming();
    sim::EventLoop loop;
    auto rep = vv::sync_rotating(loop, a, full, opt);
    benchmark::DoNotOptimize(rep.loop_events);
  }
  state.counters["budget"] = budget;
}

BENCHMARK(BM_PipelinedSync)->Arg(0)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_FrameEncode(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  std::vector<vv::VvMsg> msgs;
  for (std::size_t i = 0; i < len; ++i) {
    msgs.push_back(vv::VvMsg{.kind = vv::VvMsg::Kind::kElem,
                             .site = SiteId{static_cast<std::uint32_t>(i * 31)},
                             .value = 100000 + i * 5, .segment = i % 8 == 0});
  }
  std::vector<std::uint8_t> out;
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(vv::frame_encode(out, msgs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * len));
}

BENCHMARK(BM_FrameEncode)->Arg(16)->Arg(64)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  init_bench(&argc, argv);
  std::printf("==== bench_wire: frame-batched transport (threads=%u) ====\n", threads());
  part1_events_and_bytes();
  std::printf("\n== Wall-clock per n=10k pipelined session vs frame budget ==\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
