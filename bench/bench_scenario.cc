// Large-world scenario engine bench: the arena/SoA memory claim and the
// convergence-traffic shape of the four algorithms on real gossip meshes.
//
// Two kinds of output:
//   * structural rows in BENCH_scenario.json — one per (algo, mesh, script)
//     world: rounds to convergence, exchange/session counts, §3.3 model bits,
//     wire bytes, and the memory ledger (arena live/reserved, Σ replica
//     bytes, CSR mesh bytes). Every figure is a pure function of the seeded
//     world (the engine is single-threaded and allocation sizes are integer
//     functions of the reserve schedule), so the smoke rows are byte-identical
//     on every machine and serve as the committed baseline for the
//     optrep_report gate. Gated directions: bits/bytes/rounds must not grow,
//     `converged` must not flip to 0 (src/obs/report_diff.cc).
//   * full mode (no --smoke) scales the same worlds to the PR's headline
//     claim: a 10^5-site ring per algorithm runs to convergence, and on Linux
//     the process high-water RSS (VmHWM) is asserted < 2 GiB after each
//     world — the acceptance bound for million-site-class replica state.
//
// BM_* wall-clock microbenchmarks (gossip-round latency on a live wavefront)
// are machine-dependent and never gated.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "obs/export.h"
#include "sim/scenario.h"
#include "sim/topology.h"
#include "workload/scenario.h"

using namespace optrep;
using namespace optrep::bench;

namespace {

struct WorldSpec {
  sim::ScenarioAlgo algo;
  std::uint32_t sites;
  std::uint32_t writers;
  sim::MeshKind mesh;
  std::uint32_t degree;
  const char* script;
};

struct WorldResult {
  wl::ScenarioStats stats;
  sim::ScenarioWorld::Totals totals;
};

WorldResult run_world(const WorldSpec& s) {
  std::vector<wl::PhaseSpec> phases;
  std::string err;
  if (!wl::parse_scenario_script(s.script, s.sites, phases, err)) {
    std::fprintf(stderr, "bench_scenario: bad script '%s': %s\n", s.script, err.c_str());
    std::exit(1);
  }
  sim::ScenarioWorld::Config cfg;
  cfg.algo = s.algo;
  cfg.sites = s.sites;
  cfg.writers = s.writers;
  cfg.mesh = s.mesh;
  cfg.degree = s.degree;
  cfg.seed = 11;
  cfg.cost = CostModel{.n = s.sites, .m = 1 << 16};
  cfg.extra_writers = wl::scenario_flash_writers(phases);
  sim::ScenarioWorld world(cfg);
  WorldResult r;
  r.stats = wl::run_scenario(world, phases);
  r.totals = world.totals();
  return r;
}

// High-water RSS of this process in bytes (Linux VmHWM; 0 elsewhere). The
// full-mode worlds assert on it because the arena/SoA layout is exactly the
// thing that keeps a 10^5-site fleet inside the 2 GiB acceptance bound.
std::uint64_t high_water_rss_bytes() {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %llu kB", (unsigned long long*)&kb) == 1) break;
  }
  std::fclose(f);
  return kb * 1024;
#else
  return 0;
#endif
}

constexpr std::uint64_t kRssBound = std::uint64_t{2} << 30;  // 2 GiB

// Wall-clock cost of one gossip round on a live wavefront (one fresh update
// per iteration keeps the dirty set non-empty).
void BM_GossipRound(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  sim::ScenarioWorld::Config cfg;
  cfg.algo = sim::ScenarioAlgo::kSrv;
  cfg.sites = n;
  cfg.writers = 16;
  cfg.degree = 2;
  cfg.seed = 11;
  cfg.cost = CostModel{.n = n, .m = 1 << 16};
  sim::ScenarioWorld world(cfg);
  for (std::uint32_t i = 0; i < 16; ++i) world.local_update(world.next_writer());
  for (auto _ : state) {
    world.local_update(world.next_writer());
    benchmark::DoNotOptimize(world.gossip_round());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GossipRound)->RangeMultiplier(8)->Range(512, 32768)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  init_bench(&argc, argv);

  // Smoke worlds double as the committed baseline; full mode reruns the same
  // shapes at the acceptance scale. Writer pools: 1 for the single-writer
  // algorithms (brv holds conflicts, syncg ships sink ancestors), 16 for the
  // reconciling pair — the width that makes the O(w) replica claim visible.
  const std::uint32_t ring_n = smoke() ? 2048 : 100000;
  const std::uint32_t mesh_n = smoke() ? 1024 : 10000;
  std::vector<WorldSpec> specs = {
      {sim::ScenarioAlgo::kBrv, ring_n, 1, sim::MeshKind::kRing, 2, "converge"},
      {sim::ScenarioAlgo::kCrv, ring_n, 16, sim::MeshKind::kRing, 2, "converge"},
      {sim::ScenarioAlgo::kSrv, ring_n, 16, sim::MeshKind::kRing, 2, "converge"},
      {sim::ScenarioAlgo::kSyncg, ring_n, 1, sim::MeshKind::kRing, 2, "converge"},
      {sim::ScenarioAlgo::kSrv, mesh_n, 16, sim::MeshKind::kSmallWorld, 3, "converge"},
      {sim::ScenarioAlgo::kSrv, mesh_n, 16, sim::MeshKind::kScaleFree, 2, "converge"},
      {sim::ScenarioAlgo::kSrv, mesh_n, 16, sim::MeshKind::kGeoClustered, 2, "converge"},
      {sim::ScenarioAlgo::kSrv, mesh_n, 16, sim::MeshKind::kRing, 2, "partition-heal"},
      {sim::ScenarioAlgo::kSrv, mesh_n, 16, sim::MeshKind::kRing, 2, "churn"},
      {sim::ScenarioAlgo::kSrv, mesh_n, 16, sim::MeshKind::kRing, 2, "flash-crowd"},
  };

  std::printf("==== bench_scenario: large-world gossip engine ====\n");
  std::printf("(ring worlds at n=%u, mesh/script variety at n=%u; seed 11;\n"
              " memory ledger from the per-world arena — see src/vv/arena.h)\n\n",
              ring_n, mesh_n);
  std::printf("%-6s %-12s %-14s | %-7s %-9s %-12s %-11s %-11s %-10s\n", "algo",
              "mesh", "script", "conv", "rounds", "sessions", "Mbits", "arena KiB",
              "replica KiB");
  print_rule(104);

  BenchReporter reporter("scenario");
  bool rss_ok = true;
  for (const WorldSpec& s : specs) {
    const WorldResult r = run_world(s);
    if (!r.stats.converged) {
      std::fprintf(stderr, "FAIL: %s/%s/%s world did not converge\n",
                   std::string(to_string(s.algo)).c_str(),
                   std::string(to_string(s.mesh)).c_str(), s.script);
      return 1;
    }
    std::printf("%-6s %-12s %-14s | %-7s %-9llu %-12llu %-11.2f %-11llu %-10llu\n",
                std::string(to_string(s.algo)).c_str(),
                std::string(to_string(s.mesh)).c_str(), s.script,
                r.stats.converged ? "yes" : "NO",
                (unsigned long long)r.totals.rounds, (unsigned long long)r.totals.sessions,
                (double)r.totals.bits / 1e6,
                (unsigned long long)(r.stats.arena.live_bytes / 1024),
                (unsigned long long)(r.stats.replica_bytes / 1024));

    obs::JsonWriter w;
    w.begin_object();
    w.field("algo", to_string(s.algo));
    w.field("mesh", to_string(s.mesh));
    w.field("script", s.script);
    w.field("sites", s.sites);
    w.field("writers", s.writers);
    w.field("degree", s.degree);
    w.field("rounds", r.totals.rounds);
    w.field("updates", r.totals.updates);
    w.field("compares", r.totals.compares);
    w.field("sessions", r.totals.sessions);
    w.field("total_bits", r.totals.bits);
    w.field("wire_bytes", r.totals.wire_bytes);
    w.field("elems_applied", r.totals.elems_applied);
    w.field("nodes_applied", r.totals.nodes_applied);
    w.field("reconciliations", r.totals.reconciliations);
    w.field("conflicts_held", r.totals.conflicts_held);
    w.field("converged", r.stats.converged);
    w.field("convergence_rounds", r.stats.convergence_rounds);
    w.field("arena_live_bytes", r.stats.arena.live_bytes);
    w.field("arena_reserved_bytes", r.stats.arena.reserved_bytes);
    w.field("replica_bytes", r.stats.replica_bytes);
    w.field("mesh_bytes", r.stats.mesh_bytes);
    w.end_object();
    reporter.add_row(w.take());

    // Worlds are destroyed between specs, so VmHWM is the max single-world
    // peak, not a sum — exactly the acceptance bound's shape.
    if (!smoke()) {
      const std::uint64_t hwm = high_water_rss_bytes();
      if (hwm > 0) {
        std::printf("    high-water RSS after this world: %.1f MiB\n",
                    (double)hwm / (1024.0 * 1024.0));
        if (hwm >= kRssBound) rss_ok = false;
      }
    }
  }
  reporter.flush();

  if (!rss_ok) {
    std::fprintf(stderr, "FAIL: high-water RSS crossed the 2 GiB acceptance bound\n");
    return 1;
  }
  if (!smoke()) {
    std::printf("\nall full-scale worlds converged inside the 2 GiB high-water bound\n");
  }

  std::printf("\n(expected shape: srv/crv model bits stay difference-proportional as n\n"
              " grows — arena live bytes per replica are O(writers), not O(n); brv\n"
              " holds concurrent pairs instead of reconciling; syncg ships graph\n"
              " nodes, so replica_bytes is 0 and nodes_applied carries the traffic.)\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
