// E-gamma — §3.2/§4: CRV's redundant transfer |Γ| grows with the conflict
// rate; SRV replaces it with O(1)-per-segment skips (γ). This is the paper's
// central CRV-vs-SRV trade-off, driven here by the append-only-log style
// workload §4 motivates ("heavily updated objects can generate numerous
// syntactic-only conflicts").
//
// Sweeps the update probability (≈ conflict pressure) on identical traces
// and reports per-session traffic plus the Γ/γ split for both algorithms.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "workload/trace.h"

using namespace optrep;
using namespace optrep::bench;

namespace {

struct Sample {
  double bits_per_session;
  double redundant_per_session;  // |Γ| for CRV, straggler-free redundancy for SRV
  double skips_per_session;      // γ (SRV only)
  double conflict_fraction;
};

Sample run_kind(vv::VectorKind kind, double update_prob, std::uint64_t seed) {
  wl::GeneratorConfig g;
  g.n_sites = 16;
  g.n_objects = 1;
  g.steps = smoke() ? 300 : 3000;
  g.update_prob = update_prob;
  g.seed = seed;
  const wl::Trace trace = wl::generate(g);

  repl::StateSystem::Config cfg;
  cfg.n_sites = g.n_sites;
  cfg.kind = kind;
  cfg.policy = repl::ResolutionPolicy::kAutomatic;
  cfg.cost = CostModel{.n = g.n_sites, .m = 1 << 16};
  cfg.check_oracle = false;  // measured run; correctness is covered by tests
  repl::StateSystem sys(cfg);
  wl::run_state(sys, trace, /*drive_to_consistency=*/false);

  const auto& t = sys.totals();
  Sample s{};
  const double sessions = static_cast<double>(t.sessions ? t.sessions : 1);
  s.bits_per_session = static_cast<double>(t.bits) / sessions;
  s.redundant_per_session = static_cast<double>(t.elems_redundant) / sessions;
  s.skips_per_session = static_cast<double>(t.skips) / sessions;
  s.conflict_fraction = static_cast<double>(t.conflicts_detected) / sessions;
  return s;
}

void BM_ReconcileSession(benchmark::State& state) {
  const auto kind = static_cast<vv::VectorKind>(state.range(0));
  VectorFleet fleet(16, kind, 99);
  fleet.evolve(3000, 0.8);
  std::uint32_t a = 0;
  for (auto _ : state) {
    fleet.update(a % 16);
    fleet.update((a + 7) % 16);
    benchmark::DoNotOptimize(fleet.sync(a % 16, (a + 7) % 16).total_bits());
    ++a;
  }
}
BENCHMARK(BM_ReconcileSession)
    ->Arg(static_cast<long>(vv::VectorKind::kCrv))
    ->Arg(static_cast<long>(vv::VectorKind::kSrv))
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  init_bench(&argc, argv);
  std::printf("==== bench_conflict_rate: CRV |Gamma| vs SRV gamma ====\n\n");
  std::printf("%-8s %-10s | %-12s %-12s | %-12s %-12s %-10s\n", "p(upd)", "conflicts",
              "CRV bits/s", "SRV bits/s", "CRV Gamma/s", "SRV Gamma/s", "SRV skips/s");
  print_rule(86);
  const std::vector<double> probs =
      smoke() ? std::vector<double>{0.3, 0.85}
              : std::vector<double>{0.1, 0.3, 0.5, 0.7, 0.85, 0.95};
  struct Row {
    Sample crv, srv;
  };
  const auto rows = sweep(probs, [](double p, std::size_t) {
    return Row{run_kind(vv::VectorKind::kCrv, p, 7), run_kind(vv::VectorKind::kSrv, p, 7)};
  });
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& [crv, srv] = rows[i];
    std::printf("%-8.2f %-10.2f | %-12.1f %-12.1f | %-12.2f %-12.2f %-10.2f\n", probs[i],
                crv.conflict_fraction, crv.bits_per_session, srv.bits_per_session,
                crv.redundant_per_session, srv.redundant_per_session,
                srv.skips_per_session);
  }
  std::printf("\n(expected shape per the paper: at low conflict rates the two columns\n"
              " track each other — CRV 'incurs insignificant redundant transfer';\n"
              " as conflicts rise, CRV's Gamma/session climbs while SRV trades it\n"
              " for O(1)-cost skips, so SRV's bits/session stays lower.)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
