// E-pipe — §3.1's network-pipelining claims, measured on the simulator:
//   (1) pipelining reduces running time by (k−1)·rtt for k items sent;
//   (2) it suppresses (k−1) reply messages;
//   (3) it overshoots by at most β = bandwidth·rtt bytes after the receiver
//       emits its stop signal.
#include "bench/bench_util.h"
#include "workload/trace.h"

using namespace optrep;
using namespace optrep::bench;

namespace {

struct PipeSample {
  double t_pipe, t_saw;      // simulated seconds
  std::uint64_t msgs_rev_pipe, msgs_rev_saw;
  std::uint64_t overshoot_elems;
};

PipeSample run_case(std::uint32_t k, double rtt_s, double bw_bits) {
  // Receiver misses exactly k elements of a 2k-site vector.
  const std::uint32_t n = 2 * k;
  const vv::RotatingVector base = linear_history(n - k);
  vv::RotatingVector b = base;
  for (std::uint32_t i = 0; i < k; ++i) b.record_update(SiteId{n - k + i});

  vv::SyncOptions opt = ideal_options(vv::VectorKind::kSrv, n);
  opt.net = {.latency_s = rtt_s / 2, .bandwidth_bits_per_s = bw_bits};
  opt.known_relation = vv::Ordering::kBefore;

  PipeSample s{};
  {
    vv::RotatingVector a = base;
    opt.mode = vv::TransferMode::kPipelined;
    sim::EventLoop loop;
    const auto rep = vv::sync_rotating(loop, a, b, opt);
    s.t_pipe = rep.duration;
    s.msgs_rev_pipe = rep.msgs_rev;
    s.overshoot_elems = rep.elems_after_halt;
  }
  {
    vv::RotatingVector a = base;
    opt.mode = vv::TransferMode::kStopAndWait;
    sim::EventLoop loop;
    const auto rep = vv::sync_rotating(loop, a, b, opt);
    s.t_saw = rep.duration;
    s.msgs_rev_saw = rep.msgs_rev;
  }
  return s;
}

// Overshoot: receiver already dominates, sender streams a long vector; count
// elements transmitted after the receiver's HALT left.
std::uint64_t run_overshoot(double rtt_s, double bw_bits, const CostModel& cm,
                            std::uint64_t* beta_elems) {
  const std::uint32_t n = 2048;
  vv::RotatingVector b = linear_history(n);
  vv::RotatingVector a = b;
  a.record_update(SiteId{0});

  vv::SyncOptions opt = ideal_options(vv::VectorKind::kSrv, n);
  opt.net = {.latency_s = rtt_s / 2, .bandwidth_bits_per_s = bw_bits};
  opt.known_relation = vv::Ordering::kAfter;
  opt.mode = vv::TransferMode::kPipelined;
  sim::EventLoop loop;
  const auto rep = vv::sync_rotating(loop, a, b, opt);
  *beta_elems = static_cast<std::uint64_t>(bw_bits * rtt_s / cm.elem_bits(2)) + 2;
  return rep.elems_after_halt;
}

}  // namespace

int main(int argc, char** argv) {
  init_bench(&argc, argv);
  std::printf("==== bench_pipelining: §3.1 network pipelining ====\n\n");
  std::printf("-- running time: pipelined vs stop-and-wait (bandwidth 1 Mbit/s) --\n");
  std::printf("%-6s %-9s | %-12s %-12s %-14s %-14s | %-10s %-10s\n", "k", "rtt(ms)",
              "t_pipe(s)", "t_saw(s)", "saved(s)", "(k-1)*rtt", "replies_p", "replies_s");
  print_rule(100);
  const std::vector<std::uint32_t> ks =
      smoke() ? std::vector<std::uint32_t>{8} : std::vector<std::uint32_t>{8, 32, 128};
  const std::vector<double> rtts =
      smoke() ? std::vector<double>{10.0} : std::vector<double>{10.0, 50.0, 200.0};
  std::vector<std::pair<std::uint32_t, double>> pipe_configs;
  for (std::uint32_t k : ks) {
    for (double rtt_ms : rtts) pipe_configs.emplace_back(k, rtt_ms);
  }
  const auto pipe_rows =
      sweep(pipe_configs, [](const std::pair<std::uint32_t, double>& c, std::size_t) {
        return run_case(c.first, c.second / 1000.0, 1e6);
      });
  for (std::size_t i = 0; i < pipe_rows.size(); ++i) {
    const auto [k, rtt_ms] = pipe_configs[i];
    const PipeSample& s = pipe_rows[i];
    std::printf("%-6u %-9.0f | %-12.4f %-12.4f %-14.4f %-14.4f | %-10llu %-10llu\n", k,
                rtt_ms, s.t_pipe, s.t_saw, s.t_saw - s.t_pipe,
                (k - 1) * rtt_ms / 1000.0, (unsigned long long)s.msgs_rev_pipe,
                (unsigned long long)s.msgs_rev_saw);
  }
  std::printf("\n(paper: pipelining saves (k-1)*rtt and makes (k-1) replies implicit —\n"
              " the 'saved' column should track '(k-1)*rtt', and the pipelined reply\n"
              " count collapses to O(1).)\n");

  std::printf("\n-- overshoot after HALT vs the beta = bandwidth*rtt budget --\n");
  std::printf("%-9s %-14s | %-18s %-18s %-8s\n", "rtt(ms)", "bw(bit/s)",
              "overshoot elems", "beta budget elems", "within");
  print_rule(72);
  const CostModel cm{.n = 2048, .m = 1 << 16};
  const std::vector<double> over_rtts =
      smoke() ? std::vector<double>{10.0} : std::vector<double>{10.0, 100.0};
  const std::vector<double> bws =
      smoke() ? std::vector<double>{1e6} : std::vector<double>{1e5, 1e6, 1e7};
  std::vector<std::pair<double, double>> over_configs;
  for (double rtt_ms : over_rtts) {
    for (double bw : bws) over_configs.emplace_back(rtt_ms, bw);
  }
  struct OverRow {
    std::uint64_t got{0}, beta{0};
  };
  const auto over_rows =
      sweep(over_configs, [&cm](const std::pair<double, double>& c, std::size_t) {
        OverRow row;
        row.got = run_overshoot(c.first / 1000.0, c.second, cm, &row.beta);
        return row;
      });
  for (std::size_t i = 0; i < over_rows.size(); ++i) {
    const auto [rtt_ms, bw] = over_configs[i];
    std::printf("%-9.0f %-14.0f | %-18llu %-18llu %-8s\n", rtt_ms, bw,
                (unsigned long long)over_rows[i].got, (unsigned long long)over_rows[i].beta,
                over_rows[i].got <= over_rows[i].beta ? "yes" : "NO");
  }
  std::printf("\n-- whole-system effect: one trace, total simulated network time --\n");
  std::printf("(12 sites, 800 events, SRV, 20 ms latency, 1 Mbit/s)\n");
  std::printf("%-14s %-20s %-14s\n", "mode", "sim time (s)", "traffic bits");
  print_rule(50);
  for (auto [mode, label] : std::vector<std::pair<vv::TransferMode, const char*>>{
           {vv::TransferMode::kPipelined, "pipelined"},
           {vv::TransferMode::kStopAndWait, "stop-and-wait"}}) {
    repl::StateSystem::Config cfg;
    cfg.n_sites = 12;
    cfg.kind = vv::VectorKind::kSrv;
    cfg.policy = repl::ResolutionPolicy::kAutomatic;
    cfg.mode = mode;
    cfg.net = {.latency_s = 0.02, .bandwidth_bits_per_s = 1e6};
    cfg.cost = CostModel{.n = 12, .m = 1 << 16};
    cfg.check_oracle = false;
    repl::StateSystem sys(cfg);
    wl::GeneratorConfig g;
    g.n_sites = 12;
    g.steps = smoke() ? 150 : 800;
    g.update_prob = 0.5;
    g.seed = 5;
    wl::run_state(sys, wl::generate(g), /*drive_to_consistency=*/false);
    std::printf("%-14s %-20.3f %-14llu\n", label, sys.now(),
                (unsigned long long)sys.totals().bits);
  }
  std::printf("\n(both effects are measured in simulated network time; wall-clock\n"
              " microbenchmarks of the protocol engines live in bench_table2.)\n");
  (void)argc;
  (void)argv;
  return 0;
}
