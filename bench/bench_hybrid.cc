// §6 hybrid transfer: "a system may preserve a short history of operations
// and when a replica is too old, the entire object is transmitted [1, §7.2].
// As hybrid transfer is a degeneration of operation transfer…"
//
// Sweeps the retained-log length on a gossip workload and reports the split
// between operation-payload traffic and whole-state fallback traffic. Small
// logs save local storage but pay for it in state retransmission; the sweep
// locates the crossover for this workload.
#include "bench/bench_util.h"
#include "workload/trace.h"

using namespace optrep;
using namespace optrep::bench;

namespace {

struct HybridSample {
  std::uint64_t op_bytes;
  std::uint64_t fallback_bytes;
  std::uint64_t fallbacks;
  std::uint64_t sessions;
  bool consistent;
};

HybridSample run(std::uint32_t log_limit) {
  wl::GeneratorConfig g;
  g.n_sites = 10;
  g.n_objects = 1;
  g.steps = smoke() ? 200 : 1500;
  g.update_prob = 0.55;
  g.seed = 1234;
  const wl::Trace trace = wl::generate(g);

  repl::OpSystem::Config cfg;
  cfg.n_sites = g.n_sites;
  cfg.cost = CostModel{.n = g.n_sites, .m = 1 << 20};
  cfg.op_log_limit = log_limit;
  repl::OpSystem sys(cfg);
  const wl::RunStats stats = wl::run_op(sys, trace);

  HybridSample s{};
  s.op_bytes = sys.totals().op_bytes;
  s.fallback_bytes = sys.totals().state_fallback_bytes;
  s.fallbacks = sys.totals().state_fallbacks;
  s.sessions = sys.totals().sessions;
  s.consistent = stats.eventually_consistent;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  init_bench(&argc, argv);
  std::printf("==== bench_hybrid: operation-log length vs state fallbacks (§6) ====\n");
  std::printf("(10 sites, 1500 events, ~32-byte operations, gossip; 0 = keep all)\n\n");
  std::printf("%-10s | %-14s %-16s %-11s %-12s %-10s\n", "log limit", "op bytes",
              "fallback bytes", "fallbacks", "total bytes", "converged");
  print_rule(80);
  const std::vector<std::uint32_t> limits =
      smoke() ? std::vector<std::uint32_t>{0, 32, 2}
              : std::vector<std::uint32_t>{0, 512, 128, 32, 8, 2};
  const auto rows =
      sweep(limits, [](std::uint32_t limit, std::size_t) { return run(limit); });
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const HybridSample& s = rows[i];
    std::printf("%-10u | %-14llu %-16llu %-11llu %-12llu %-10s\n", limits[i],
                (unsigned long long)s.op_bytes, (unsigned long long)s.fallback_bytes,
                (unsigned long long)s.fallbacks,
                (unsigned long long)(s.op_bytes + s.fallback_bytes),
                s.consistent ? "yes" : "NO");
  }
  std::printf("\n(expected shape: unlimited and generous logs ship operations only; as\n"
              " the log shrinks below the typical inter-sync difference, whole-state\n"
              " fallbacks take over and total bytes climb — the hybrid crossover.)\n");
  return 0;
}
