// T2-compare — the "Comparison" row of §3.3: COMPARE costs O(1) time and
// 2·log(mn) bits, versus the classical full comparison at O(n) time and a
// whole vector on the wire.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

using namespace optrep;
using namespace optrep::bench;

namespace {

// Two vectors with a realistic relation: b extends a by one update.
std::pair<vv::RotatingVector, vv::RotatingVector> make_pair_of_size(std::uint32_t n) {
  vv::RotatingVector a = linear_history(n);
  vv::RotatingVector b = a;
  b.record_update(SiteId{0});
  return {a, b};
}

void BM_CompareFast(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  auto [a, b] = make_pair_of_size(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vv::compare_fast(a, b));
  }
  const CostModel cm{.n = n, .m = 1 << 16};
  state.counters["wire_bits"] = static_cast<double>(vv::compare_cost_bits(cm));
}

void BM_CompareFull(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  auto [a, b] = make_pair_of_size(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vv::compare_full(a, b));
  }
  const CostModel cm{.n = n, .m = 1 << 16};
  state.counters["wire_bits"] = static_cast<double>(vv::compare_full_cost_bits(cm, n));
}

BENCHMARK(BM_CompareFast)->RangeMultiplier(8)->Range(8, 32768);
BENCHMARK(BM_CompareFull)->RangeMultiplier(8)->Range(8, 32768);

// All four outcomes, to show COMPARE's constant cost is outcome-independent.
void BM_CompareFastOutcomes(benchmark::State& state) {
  vv::RotatingVector base = linear_history(512);
  vv::RotatingVector eq = base;
  vv::RotatingVector ahead = base;
  ahead.record_update(SiteId{1});
  vv::RotatingVector conc1 = base, conc2 = base;
  conc1.record_update(SiteId{2});
  conc2.record_update(SiteId{3});
  for (auto _ : state) {
    benchmark::DoNotOptimize(vv::compare_fast(base, eq));
    benchmark::DoNotOptimize(vv::compare_fast(base, ahead));
    benchmark::DoNotOptimize(vv::compare_fast(ahead, base));
    benchmark::DoNotOptimize(vv::compare_fast(conc1, conc2));
  }
}
BENCHMARK(BM_CompareFastOutcomes);

}  // namespace

int main(int argc, char** argv) {
  init_bench(&argc, argv);
  std::printf("==== bench_compare: §3.3 comparison row ====\n");
  std::printf("wire cost:  COMPARE = 2·log(mn) bits (constant);"
              " full comparison ships one whole vector (O(n)).\n");
  std::printf("%-8s %-18s %-18s\n", "n", "COMPARE bits", "full-compare bits");
  print_rule(46);
  for (std::uint32_t n : {8u, 64u, 512u, 4096u, 32768u}) {
    const CostModel cm{.n = n, .m = 1 << 16};
    std::printf("%-8u %-18llu %-18llu\n", n,
                (unsigned long long)vv::compare_cost_bits(cm),
                (unsigned long long)vv::compare_full_cost_bits(cm, n));
  }
  std::printf("\ntime: COMPARE must stay flat in n; the full comparison grows.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
