// E-graph + F3 — §6.1's SYNCG claim: transmitted data is
// O(|V_b \ V_a| + |A_b \ A_a|), i.e. proportional to the *difference*, while
// the traditional approach ships the whole graph. "Dramatically reducing
// network overhead for large graphs with small differences."
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "graph/sync_graph.h"

using namespace optrep;
using namespace optrep::bench;
using namespace optrep::graph;

namespace {

GraphSyncOptions gopt() {
  GraphSyncOptions o;
  o.mode = vv::TransferMode::kIdeal;
  o.cost = CostModel{.n = 64, .m = 1 << 20};
  o.ship_ops = false;  // metadata-only view; op payloads are scheme-independent
  return o;
}

// A shared history of `shared` ops with `branches` concurrent merged-in
// branches, then a fresh suffix of `diff` ops on the sender only.
std::pair<CausalGraph, CausalGraph> make_graphs(std::uint32_t shared, std::uint32_t diff,
                                                std::uint32_t branches) {
  CausalGraph b;
  b.create(UpdateId{SiteId{0}, 1});
  std::uint64_t seq = 1;
  for (std::uint32_t i = 1; i < shared; ++i) b.append(UpdateId{SiteId{0}, ++seq});
  for (std::uint32_t br = 0; br < branches; ++br) {
    // A concurrent branch of 3 ops hanging off the root, merged in.
    CausalGraph side;
    side.create(UpdateId{SiteId{0}, 1});
    for (std::uint64_t j = 1; j <= 3; ++j) side.append(UpdateId{SiteId{br + 1}, j});
    sim::EventLoop loop;
    auto o = gopt();
    sync_graph(loop, b, side, o);
    b.merge(UpdateId{SiteId{0}, ++seq}, side.sink());
  }
  CausalGraph a = b;  // receiver shares everything so far
  for (std::uint32_t i = 0; i < diff; ++i) b.append(UpdateId{SiteId{0}, ++seq});
  return {a, b};
}

void BM_SyncGraphIncremental(benchmark::State& state) {
  const auto shared = static_cast<std::uint32_t>(state.range(0));
  auto [a0, b] = make_graphs(shared, 8, 4);
  for (auto _ : state) {
    state.PauseTiming();
    CausalGraph a = a0;
    state.ResumeTiming();
    sim::EventLoop loop;
    auto o = gopt();
    benchmark::DoNotOptimize(sync_graph(loop, a, b, o).total_bits());
  }
}
BENCHMARK(BM_SyncGraphIncremental)->RangeMultiplier(4)->Range(64, 4096)->Unit(benchmark::kMicrosecond);

void BM_SyncGraphFull(benchmark::State& state) {
  const auto shared = static_cast<std::uint32_t>(state.range(0));
  auto [a0, b] = make_graphs(shared, 8, 4);
  for (auto _ : state) {
    state.PauseTiming();
    CausalGraph a = a0;
    state.ResumeTiming();
    sim::EventLoop loop;
    auto o = gopt();
    benchmark::DoNotOptimize(sync_graph_full(loop, a, b, o).total_bits());
  }
}
BENCHMARK(BM_SyncGraphFull)->RangeMultiplier(4)->Range(64, 4096)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  init_bench(&argc, argv);
  std::printf("==== bench_graph: SYNCG vs full graph transfer (§6.1) ====\n\n");
  std::printf("-- fixed difference (8 fresh ops), growing shared history --\n");
  std::printf("%-10s %-8s | %-14s %-14s | %-14s %-14s\n", "|V| shared", "diff",
              "SYNCG bits", "full bits", "SYNCG nodes", "full nodes");
  print_rule(84);
  const std::vector<std::uint32_t> shareds =
      smoke() ? std::vector<std::uint32_t>{32, 128}
              : std::vector<std::uint32_t>{32, 128, 512, 2048, 8192};
  struct SharedRow {
    GraphSyncReport inc, full;
  };
  const auto shared_rows = sweep(shareds, [](std::uint32_t shared, std::size_t) {
    auto [a1, b] = make_graphs(shared, 8, 4);
    CausalGraph a2 = a1;
    sim::EventLoop l1, l2;
    auto o = gopt();
    return SharedRow{sync_graph(l1, a1, b, o), sync_graph_full(l2, a2, b, o)};
  });
  for (std::size_t i = 0; i < shared_rows.size(); ++i) {
    const auto& [inc, full] = shared_rows[i];
    std::printf("%-10u %-8u | %-14llu %-14llu | %-14llu %-14llu\n", shareds[i], 8u,
                (unsigned long long)inc.total_bits(), (unsigned long long)full.total_bits(),
                (unsigned long long)inc.nodes_sent, (unsigned long long)full.nodes_sent);
  }

  std::printf("\n-- fixed shared history (1024 ops), growing difference --\n");
  std::printf("%-10s %-8s | %-14s %-14s | %-12s %-12s\n", "|V| shared", "diff",
              "SYNCG bits", "full bits", "new nodes", "overlap");
  print_rule(78);
  const std::uint32_t shared_fixed = smoke() ? 128 : 1024;
  const std::vector<std::uint32_t> diffs =
      smoke() ? std::vector<std::uint32_t>{1, 8}
              : std::vector<std::uint32_t>{1, 8, 64, 512};
  struct DiffRow {
    GraphSyncReport inc, full;
  };
  const auto diff_rows = sweep(diffs, [shared_fixed](std::uint32_t diff, std::size_t) {
    auto [a, b] = make_graphs(shared_fixed, diff, 4);
    sim::EventLoop l1;
    auto o = gopt();
    DiffRow row;
    row.inc = sync_graph(l1, a, b, o);
    auto [af, bf] = make_graphs(shared_fixed, diff, 4);  // rebuild for full
    sim::EventLoop l2;
    row.full = sync_graph_full(l2, af, bf, o);
    return row;
  });
  for (std::size_t i = 0; i < diff_rows.size(); ++i) {
    const auto& [inc, full] = diff_rows[i];
    std::printf("%-10u %-8u | %-14llu %-14llu | %-12llu %-12llu\n", shared_fixed, diffs[i],
                (unsigned long long)inc.total_bits(), (unsigned long long)full.total_bits(),
                (unsigned long long)inc.nodes_new, (unsigned long long)inc.nodes_redundant);
  }
  std::printf("\n(expected shape: SYNCG's column is flat in the shared-history sweep and\n"
              " linear in the difference sweep; the full transfer is linear in |V|\n"
              " regardless. Overlap stays at one node per explored branch.)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
