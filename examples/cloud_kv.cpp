// A cloud key-value store in the Dynamo/OceanStore mold (§1): hundreds of
// loosely-coupled storage nodes, many replicated objects, writes accepted on
// any replica. The demo drives a network partition: the cluster splits into
// two halves that keep accepting writes, then heals — producing a burst of
// syntactic conflicts that SRV reconciles with difference-only metadata
// exchange.
//
// Usage: cloud_kv [n_nodes] [n_keys]
#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "repl/state_system.h"

using namespace optrep;

namespace {

struct Cluster {
  repl::StateSystem sys;
  std::uint32_t n;
  Rng rng{2077};

  explicit Cluster(std::uint32_t n_nodes)
      : sys(repl::StateSystem::Config{
            .n_sites = n_nodes,
            .kind = vv::VectorKind::kSrv,
            .policy = repl::ResolutionPolicy::kAutomatic,
            .cost = CostModel{.n = n_nodes, .m = 1 << 16},
        }),
        n(n_nodes) {}

  // One gossip round restricted to [lo, hi).
  void gossip(ObjectId key, std::uint32_t lo, std::uint32_t hi) {
    for (std::uint32_t i = lo; i < hi; ++i) {
      auto j = lo + static_cast<std::uint32_t>(rng.below(hi - lo));
      if (j == i) continue;
      if (sys.has_replica(SiteId{j}, key)) sys.sync(SiteId{i}, SiteId{j}, key);
    }
  }

  // One anti-entropy sweep: a forward ring pass accumulates everything into
  // the last host, a backward pass fans the result out (cf. wl::run_state).
  void sweep(ObjectId key) {
    auto hosts = sys.hosts_of(key);
    for (std::size_t i = 0; i + 1 < hosts.size(); ++i) {
      sys.sync(hosts[i + 1], hosts[i], key);
    }
    for (std::size_t i = hosts.size(); i-- > 1;) {
      sys.sync(hosts[i - 1], hosts[i], key);
    }
  }

  void write(ObjectId key, std::uint32_t node, const std::string& value) {
    const SiteId s{node};
    if (!sys.has_replica(s, key)) {
      for (std::uint32_t j = 0; j < n; ++j) {
        if (j != node && sys.has_replica(SiteId{j}, key)) {
          sys.sync(s, SiteId{j}, key);
          break;
        }
      }
    }
    if (sys.has_replica(s, key)) sys.update(s, key, value);
  }
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t n = argc > 1 ? std::atoi(argv[1]) : 64;
  const std::uint32_t keys = argc > 2 ? std::atoi(argv[2]) : 8;
  Cluster c(n);

  std::printf("== cloud KV store: %u nodes, %u keys, SRV metadata ==\n\n", n, keys);
  for (std::uint32_t k = 0; k < keys; ++k) {
    c.sys.create_object(SiteId{k % n}, ObjectId{k}, "k" + std::to_string(k) + "=v0");
  }
  // Seed replicas around the cluster.
  for (int round = 0; round < 6; ++round) {
    for (std::uint32_t k = 0; k < keys; ++k) c.gossip(ObjectId{k}, 0, c.n);
  }
  const auto before_partition = c.sys.totals();
  std::printf("seeded: %llu sessions, %llu conflicts so far\n",
              (unsigned long long)before_partition.sessions,
              (unsigned long long)before_partition.conflicts_detected);

  // ---- partition: halves diverge -----------------------------------------
  const std::uint32_t half = n / 2;
  std::printf("\n-- partition: nodes [0,%u) and [%u,%u) diverge for 5 rounds --\n", half,
              half, n);
  for (int round = 0; round < 5; ++round) {
    for (std::uint32_t k = 0; k < keys; ++k) {
      const ObjectId key{k};
      c.write(key, static_cast<std::uint32_t>(c.rng.below(half)),
              "left-r" + std::to_string(round));
      c.write(key, half + static_cast<std::uint32_t>(c.rng.below(n - half)),
              "right-r" + std::to_string(round));
      c.gossip(key, 0, half);
      c.gossip(key, half, n);
    }
  }
  const auto at_heal = c.sys.totals();

  // ---- heal: cross-partition anti-entropy --------------------------------
  std::printf("-- heal: full-cluster anti-entropy sweeps until convergence --\n");
  int heal_rounds = 0;
  bool all = false;
  while (!all && heal_rounds < 16) {
    ++heal_rounds;
    all = true;
    for (std::uint32_t k = 0; k < keys; ++k) {
      c.sweep(ObjectId{k});
      if (!c.sys.replicas_consistent(ObjectId{k})) all = false;
    }
  }
  const auto after = c.sys.totals();

  std::printf("\nconverged: %s after %d healing rounds\n", all ? "yes" : "no", heal_rounds);
  std::printf("conflicts reconciled during divergence+heal: %llu\n",
              (unsigned long long)(after.conflicts_detected -
                                   before_partition.conflicts_detected));
  std::printf("healing traffic: %llu bits across %llu sessions (%.0f bits/session)\n",
              (unsigned long long)(after.bits - at_heal.bits),
              (unsigned long long)(after.sessions - at_heal.sessions),
              (double)(after.bits - at_heal.bits) /
                  (double)(after.sessions - at_heal.sessions));
  const CostModel cm{.n = n, .m = 1 << 16};
  const auto& rep = c.sys.replica(SiteId{0}, ObjectId{0});
  std::printf("(a traditional exchange ships the whole vector every time: %llu bits\n"
              " per session at this key's current %zu-element vector)\n",
              (unsigned long long)(cm.elem_bits(0) * rep.vector.size() + cm.halt_bits()),
              rep.vector.size());
  std::printf("\nsample key state on node 0:\n");
  std::printf("  vector: %s\n  entries: %zu\n", rep.vector.to_string().c_str(),
              rep.data.entries.size());
  return 0;
}
