// Multi-regional collaboration on a shared document ([8], §6): an
// operation-transfer system. Every edit is an operation in a causal graph;
// SYNCG ships only the operations a peer is missing, with causal relations
// intact for fine-grained merging.
//
// Usage: collab_edit [n_sites] [steps]
#include <cstdio>
#include <cstdlib>

#include "workload/trace.h"

using namespace optrep;

int main(int argc, char** argv) {
  const std::uint32_t n_sites = argc > 1 ? std::atoi(argv[1]) : 12;
  const std::uint32_t steps = argc > 2 ? std::atoi(argv[2]) : 2000;
  const ObjectId kDoc{0};

  std::printf("== collaborative editing across %u sites, %u events ==\n\n", n_sites,
              steps);
  const wl::Trace trace = wl::collaboration(n_sites, steps, /*seed=*/7);

  repl::OpSystem::Config inc_cfg;
  inc_cfg.n_sites = n_sites;
  inc_cfg.cost = CostModel{.n = n_sites, .m = 1 << 20};
  inc_cfg.use_incremental = true;
  repl::OpSystem::Config full_cfg = inc_cfg;
  full_cfg.use_incremental = false;

  repl::OpSystem inc(inc_cfg);
  repl::OpSystem full(full_cfg);
  const wl::RunStats si = wl::run_op(inc, trace);
  const wl::RunStats sf = wl::run_op(full, trace);

  std::printf("edits applied: %llu; sync sessions: %llu; reconciliations: %llu\n",
              (unsigned long long)si.updates, (unsigned long long)si.syncs,
              (unsigned long long)inc.totals().reconciliations);
  std::printf("document converged everywhere: %s\n\n",
              si.eventually_consistent && sf.eventually_consistent ? "yes" : "no");

  std::printf("causal-graph exchange traffic:\n");
  std::printf("  %-28s %14s %14s %14s\n", "", "nodes sent", "redundant", "model bits");
  std::printf("  %-28s %14llu %14llu %14llu\n", "SYNCG (incremental, §6.1)",
              (unsigned long long)inc.totals().nodes_sent,
              (unsigned long long)inc.totals().nodes_redundant,
              (unsigned long long)inc.totals().bits);
  std::printf("  %-28s %14llu %14llu %14llu\n", "full graph transfer",
              (unsigned long long)full.totals().nodes_sent,
              (unsigned long long)full.totals().nodes_redundant,
              (unsigned long long)full.totals().bits);
  if (inc.totals().bits > 0) {
    std::printf("  -> SYNCG moves %.1fx fewer metadata bits\n",
                (double)full.totals().bits / (double)inc.totals().bits);
  }

  // Show a slice of the converged document from two different regions.
  const std::string doc_a = inc.materialize(SiteId{0}, kDoc);
  const std::string doc_b = inc.materialize(SiteId{n_sites - 1}, kDoc);
  std::printf("\nreplicas on site A and site %s materialize identically: %s\n",
              site_name(SiteId{n_sites - 1}).c_str(), doc_a == doc_b ? "yes" : "no");
  std::printf("document holds %zu operations\n",
              inc.replica(SiteId{0}, kDoc).graph.node_count());
  return 0;
}
