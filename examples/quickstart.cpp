// Quickstart: the smallest end-to-end tour of optrep.
//
// Three laptops replicate one shopping list. A and B edit concurrently; the
// system detects the conflict with an O(1) COMPARE, reconciles it with SYNCS
// (skip rotating vectors), and converges — transmitting only vector
// differences, never whole vectors.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "repl/state_system.h"

using namespace optrep;

int main() {
  const SiteId kAlice{0}, kBob{1}, kCarol{2};
  const ObjectId kList{0};

  repl::StateSystem::Config cfg;
  cfg.n_sites = 3;
  cfg.kind = vv::VectorKind::kSrv;            // the paper's optimal implementation
  cfg.policy = repl::ResolutionPolicy::kAutomatic;
  cfg.cost = CostModel{.n = 3, .m = 1024};    // sizes wire fields (§3.3)
  repl::StateSystem sys(cfg);

  std::printf("== optrep quickstart ==\n\n");

  // Alice creates the list and shares it with Bob.
  sys.create_object(kAlice, kList, "milk");
  sys.sync(kBob, kAlice, kList);
  std::printf("Alice creates the list; Bob pulls a replica.\n");
  std::printf("  Alice: %s\n", sys.replica(kAlice, kList).vector.to_string().c_str());
  std::printf("  Bob:   %s\n\n", sys.replica(kBob, kList).vector.to_string().c_str());

  // Both edit while disconnected.
  sys.update(kAlice, kList, "eggs");
  sys.update(kBob, kList, "coffee");
  std::printf("Disconnected edits:\n");
  std::printf("  Alice: %s\n", sys.replica(kAlice, kList).vector.to_string().c_str());
  std::printf("  Bob:   %s\n\n", sys.replica(kBob, kList).vector.to_string().c_str());

  // Bob syncs from Alice: conflict detected (O(1)) and reconciled.
  const auto out = sys.sync(kBob, kAlice, kList);
  std::printf("Bob syncs from Alice -> relation: %s, action: %s\n",
              std::string(vv::to_string(out.relation)).c_str(),
              out.action == repl::SyncOutcome::Action::kReconciled ? "reconciled" : "other");
  std::printf("  transferred %llu model bits (%llu bytes) in %llu messages\n",
              (unsigned long long)out.report.total_bits(),
              (unsigned long long)out.report.total_bytes(),
              (unsigned long long)(out.report.msgs_fwd + out.report.msgs_rev));
  std::printf("  Bob now: %s\n", sys.replica(kBob, kList).vector.to_string().c_str());
  std::printf("  Bob's list:");
  for (const auto& e : sys.replica(kBob, kList).data.entries) std::printf(" %s", e.c_str());
  std::printf("\n\n");

  // Alice and Carol pull the merged state; everyone converges.
  sys.sync(kAlice, kBob, kList);
  sys.sync(kCarol, kBob, kList);
  std::printf("After Alice and Carol pull:\n");
  std::printf("  consistent everywhere: %s\n",
              sys.replicas_consistent(kList) ? "yes" : "no");
  std::printf("  total traffic: %llu bits across %llu sessions\n",
              (unsigned long long)sys.totals().bits,
              (unsigned long long)sys.totals().sessions);
  return 0;
}
