// A Bayou-style replicated database ([13], §2.1): field offices update a
// shared customer table while disconnected; synchronization detects
// syntactic conflicts in O(1) and a semantic checker distinguishes harmless
// concurrent writes (different records, or identical values) from true
// write-write conflicts, which resolve by deterministic last-writer-wins.
#include <cstdio>

#include "repl/record_system.h"

using namespace optrep;

namespace {

void show(const repl::RecordSystem& sys, SiteId site, const char* name) {
  const auto& r = sys.replica(site, ObjectId{0});
  std::printf("  %-8s %-24s", name, r.vector.to_string().c_str());
  for (const auto& [k, cell] : r.records) {
    std::printf(" %s=%s%s", k.c_str(), cell.value.c_str(), cell.flagged ? "!" : "");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const SiteId kHq{0}, kEast{1}, kWest{2};
  const ObjectId kTable{0};

  repl::RecordSystem::Config cfg;
  cfg.n_sites = 3;
  cfg.kind = vv::VectorKind::kSrv;
  cfg.policy = repl::SemanticPolicy::kLastWriterWins;
  cfg.cost = CostModel{.n = 3, .m = 1 << 10};
  repl::RecordSystem db(cfg);

  std::printf("== replicated customer table (semantic-over-syntactic detection) ==\n\n");
  db.create_object(kHq, kTable, "cust:100", "status=active");
  db.put(kHq, kTable, "cust:200", "status=active");
  db.sync(kEast, kHq, kTable);
  db.sync(kWest, kHq, kTable);
  std::printf("initial replication:\n");
  show(db, kHq, "hq");
  show(db, kEast, "east");
  show(db, kWest, "west");

  // Disconnected edits: east and west touch different customers (plus one
  // both agree on), and both touch cust:200 with different values.
  db.put(kEast, kTable, "cust:300", "status=new");
  db.put(kEast, kTable, "cust:100", "status=vip");     // only east touches 100
  db.put(kEast, kTable, "cust:200", "status=closed");  // true conflict ↓
  db.put(kWest, kTable, "cust:400", "status=new");
  db.put(kWest, kTable, "cust:200", "status=frozen");  // true conflict ↑

  std::printf("\nafter disconnected edits:\n");
  show(db, kEast, "east");
  show(db, kWest, "west");

  auto out = db.sync(kWest, kEast, kTable);
  std::printf("\nwest syncs from east:\n");
  std::printf("  syntactic conflict: %s (COMPARE, %u bits)\n",
              out.syntactic_conflict ? "yes" : "no",
              static_cast<unsigned>(vv::compare_cost_bits(cfg.cost)));
  std::printf("  semantic detector: %zu true conflict(s) among %zu records\n",
              out.semantic_conflicts, db.replica(kWest, kTable).records.size());
  show(db, kWest, "west");

  db.sync(kEast, kWest, kTable);
  db.sync(kHq, kEast, kTable);
  std::printf("\nafter full anti-entropy:\n");
  show(db, kHq, "hq");
  show(db, kEast, "east");
  show(db, kWest, "west");
  std::printf("\nconsistent: %s; totals: %llu syntactic trigger(s), %llu true "
              "conflict(s)\n",
              db.replicas_consistent(kTable) ? "yes" : "no",
              (unsigned long long)db.totals().syntactic_conflicts,
              (unsigned long long)db.totals().semantic_conflicts);
  std::printf("(the filtered difference is the §4 motivation for cheap syntactic\n"
              " triggers: most of them are false alarms on disjoint records)\n");
  return 0;
}
