// Reproduces the paper's worked examples end to end:
//   - Figure 1: the nine-node replication graph (vectors printed per node)
//   - Figure 2: the coalesced replication graph's prefixing segments as they
//     materialize in SRV segment bits
//   - §4's showcase synchronization SYNCC_θ9(θ7) vs SYNCS_θ9(θ7)
//     (|Δ|=2, |Γ|=3 for CRV; only C,H,G,B transmitted for SRV)
//   - Figure 3: causal graphs of sites A and C, synchronized with SYNCG
//   - §3.2's θ1/θ2/θ3 counterexample showing why BRV needs CRV
//
// Each block prints "paper says" vs "measured" so the reproduction is
// auditable. Also emits Graphviz for Figure 1/3 to stdout (--dot).
#include <cstdio>
#include <cstring>

#include "graph/dot.h"
#include "graph/sync_graph.h"
#include "sim/event_loop.h"
#include "vv/compare.h"
#include "vv/session.h"

using namespace optrep;
using namespace optrep::vv;

namespace {

const SiteId A{0}, B{1}, C{2}, E{4}, F{5}, G{6}, H{7};

SyncOptions ideal(VectorKind kind) {
  SyncOptions opt;
  opt.kind = kind;
  opt.mode = TransferMode::kIdeal;
  opt.cost = CostModel{.n = 8, .m = 16};
  return opt;
}

RotatingVector copy_replica(const RotatingVector& src, VectorKind kind) {
  RotatingVector dst;
  sim::EventLoop loop;
  sync_rotating(loop, dst, src, ideal(kind));
  return dst;
}

RotatingVector reconcile(RotatingVector a, const RotatingVector& b, VectorKind kind,
                         SyncReport* rep = nullptr) {
  sim::EventLoop loop;
  auto r = sync_rotating(loop, a, b, ideal(kind));
  if (rep != nullptr) *rep = r;
  return a;
}

struct Figure1 {
  RotatingVector theta[10];
  explicit Figure1(VectorKind kind) {
    theta[1].record_update(A);
    theta[2] = copy_replica(theta[1], kind);
    theta[2].record_update(B);
    theta[3] = copy_replica(theta[2], kind);
    theta[3].record_update(C);
    theta[4] = copy_replica(theta[1], kind);
    theta[4].record_update(E);
    theta[5] = copy_replica(theta[4], kind);
    theta[5].record_update(F);
    theta[6] = copy_replica(theta[5], kind);
    theta[6].record_update(G);
    theta[7] = reconcile(theta[2], theta[6], kind);  // footnote 1: SYNC*_θ6(θ2)
    theta[8] = copy_replica(theta[7], kind);
    theta[8].record_update(H);
    theta[9] = reconcile(theta[8], theta[3], kind);  // SYNC*_θ3(θ8)
  }
};

bool g_all_ok = true;

void check(const char* what, bool ok) {
  std::printf("  [%s] %s\n", ok ? "OK" : "MISMATCH", what);
  g_all_ok = g_all_ok && ok;
}

}  // namespace

int main(int argc, char** argv) {
  const bool emit_dot = argc > 1 && std::strcmp(argv[1], "--dot") == 0;

  std::printf("=== Figure 1: replication graph vectors (SRV build) ===\n");
  Figure1 srv(VectorKind::kSrv);
  const char* expected[10] = {
      nullptr,
      "<A:1>",
      "<B:1, A:1>",
      "<C:1, B:1, A:1>",
      "<E:1, A:1>",
      "<F:1, E:1, A:1>",
      "<G:1, F:1, E:1, A:1>",
      "<G:1*, F:1*, E:1*|, B:1, A:1>",
      "<H:1, G:1*, F:1*, E:1*|, B:1, A:1>",
      "<C:1*|, H:1, G:1*, F:1*, E:1*|, B:1, A:1>",
  };
  for (int i = 1; i <= 9; ++i) {
    std::printf("  θ%d = %-44s (paper: nodes match, * = conflict bit, | = segment end)\n",
                i, srv.theta[i].to_string().c_str());
    if (srv.theta[i].to_string() != expected[i]) {
      std::printf("    !! expected %s\n", expected[i]);
      g_all_ok = false;
    }
  }

  std::printf("\n=== Figure 2 / §4 showcase: synchronizing θ7 with θ9 ===\n");
  {
    Figure1 crv(VectorKind::kCrv);
    SyncReport crep;
    reconcile(crv.theta[7], crv.theta[9], VectorKind::kCrv, &crep);
    std::printf("CRV (SYNCC_θ9(θ7)): paper says 6 elements sent, |Δ|=2, |Γ|=3\n");
    std::printf("  measured: %llu sent, Δ=%llu, Γ=%llu\n",
                (unsigned long long)crep.elems_sent, (unsigned long long)crep.elems_applied,
                (unsigned long long)crep.elems_redundant);
    check("CRV element counts match the paper",
          crep.elems_sent == 6 && crep.elems_applied == 2 && crep.elems_redundant == 3);

    SyncReport srep;
    reconcile(srv.theta[7], srv.theta[9], VectorKind::kSrv, &srep);
    std::printf("SRV (SYNCS_θ9(θ7)): paper says only C, H, G, B are sent\n");
    std::printf("  measured: %llu sent, Δ=%llu, Γ=%llu, skips=%llu (γ=%llu)\n",
                (unsigned long long)srep.elems_sent, (unsigned long long)srep.elems_applied,
                (unsigned long long)srep.elems_redundant, (unsigned long long)srep.skip_msgs,
                (unsigned long long)srep.segments_skipped);
    check("SRV sends exactly 4 elements", srep.elems_sent == 4);
    check("one segment (<F,E> remainder) skipped", srep.segments_skipped == 1);
  }

  std::printf("\n=== §3.2 counterexample: why BRV breaks under reconciliation ===\n");
  {
    RotatingVector t1, t2;
    t1.record_update(B);
    t1.record_update(A);
    t1.record_update(A);  // θ1 = <A:2, B:1>
    t2.record_update(A);
    t2.record_update(B);
    t2.record_update(B);  // θ2 = <B:2, A:1>
    RotatingVector t3 = reconcile(t2, t1, VectorKind::kBrv);
    std::printf("  θ3 := SYNCB_θ1(θ2) = %s  (values correct once)\n",
                t3.to_string().c_str());
    RotatingVector t1_after = reconcile(t1, t3, VectorKind::kBrv);
    std::printf("  SYNCB_θ3(θ1) leaves θ1 = %s — B stale (paper: θ1[B] unsynchronized)\n",
                t1_after.to_string().c_str());
    check("BRV failure mode reproduced", t1_after.value(B) == 1);

    RotatingVector c1, c2;
    c1.record_update(B);
    c1.record_update(A);
    c1.record_update(A);
    c2.record_update(A);
    c2.record_update(B);
    c2.record_update(B);
    RotatingVector c3 = reconcile(c2, c1, VectorKind::kCrv);
    RotatingVector c1_after = reconcile(c1, c3, VectorKind::kCrv);
    check("CRV fixes it (θ1[B] = 2 after SYNCC)", c1_after.value(B) == 2);
  }

  std::printf("\n=== Figure 3: causal graphs of sites A and C, synchronized by SYNCG ===\n");
  {
    using namespace optrep::graph;
    const UpdateId n1{A, 1}, n2{B, 1}, n4{E, 1}, n5{F, 1}, n6{G, 1}, n7{A, 2};
    CausalGraph site_a, site_c;
    site_a.create(n1);
    site_a.append(n2);
    site_a.insert_raw(Node{n4, n1});
    site_a.insert_raw(Node{n5, n4});
    site_a.insert_raw(Node{n6, n5});
    site_a.merge(n7, n6);
    site_c.create(n1);
    site_c.append(n4);
    site_c.append(n5);
    site_c.append(n6);

    GraphSyncOptions opt;
    opt.mode = TransferMode::kIdeal;
    opt.cost = CostModel{.n = 8, .m = 16};
    sim::EventLoop loop;
    CausalGraph c_synced = site_c;
    auto rep = sync_graph(loop, c_synced, site_a, opt);
    std::printf("  paper: only missing nodes plus an overlapping node per branch\n");
    std::printf("  measured: %llu nodes sent (%llu new, %llu overlap), %llu skipto\n",
                (unsigned long long)rep.nodes_sent, (unsigned long long)rep.nodes_new,
                (unsigned long long)rep.nodes_redundant,
                (unsigned long long)rep.skipto_msgs);
    check("union achieved", c_synced.contains(n7) && c_synced.contains(n2));
    check("traffic = missing + O(1) overlap",
          rep.nodes_sent <= rep.nodes_new + 2);

    if (emit_dot) {
      std::printf("\n--- Figure 1 as Graphviz (site A's causal graph) ---\n%s",
                  to_dot(site_a, "figure3_site_a").c_str());
    }
  }

  std::printf("\n%s\n", g_all_ok
                             ? "Done. Every [OK] line is a reproduced paper claim."
                             : "MISMATCHES FOUND — the reproduction diverges from the paper.");
  return g_all_ok ? 0 : 1;
}
