// A DTN / mobile participatory data store ([10], §1 motivation): many small
// objects spread over mobile devices with opportunistic pairwise contacts.
// Power constraints make every transmitted byte count — exactly the setting
// where incremental vector exchange pays off.
//
// Runs the same contact trace under SRV and under the traditional
// full-vector baseline and prints the metadata traffic of each.
//
// Usage: dtn_store [n_sites] [n_objects] [steps]
#include <cstdio>
#include <cstdlib>

#include "vv/session.h"
#include "workload/trace.h"

using namespace optrep;

namespace {

// Traditional baseline: same trace, but every pull ships the whole vector.
struct TraditionalTotals {
  std::uint64_t bits{0};
  std::uint64_t sessions{0};
};

TraditionalTotals replay_traditional(const wl::Trace& trace, const CostModel& cm) {
  // Track per-site per-object version vectors and payload versions only at
  // the metadata level (content bytes are identical across schemes).
  std::unordered_map<std::uint32_t, std::unordered_map<std::uint32_t, vv::VersionVector>>
      vecs;
  TraditionalTotals t;
  sim::EventLoop loop;
  vv::SyncOptions opt;
  opt.cost = cm;
  opt.mode = vv::TransferMode::kIdeal;
  std::uint64_t seq = 0;
  for (const wl::Event& ev : trace.events) {
    switch (ev.type) {
      case wl::Event::Type::kCreate:
      case wl::Event::Type::kUpdate:
        vecs[ev.site.value][ev.obj.value].increment(ev.site);
        ++seq;
        break;
      case wl::Event::Type::kSync: {
        auto pit = vecs.find(ev.peer.value);
        if (pit == vecs.end() || !pit->second.contains(ev.obj.value)) break;
        vv::VersionVector& dst = vecs[ev.site.value][ev.obj.value];
        const vv::VersionVector& src = pit->second[ev.obj.value];
        auto rep = vv::sync_traditional(loop, dst, src, opt);
        // Traditional comparison also requires shipping a whole vector.
        t.bits += rep.total_bits() + vv::compare_full_cost_bits(cm, src.size());
        t.sessions += 1;
        break;
      }
    }
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t n_sites = argc > 1 ? std::atoi(argv[1]) : 24;
  const std::uint32_t n_objects = argc > 2 ? std::atoi(argv[2]) : 16;
  const std::uint32_t steps = argc > 3 ? std::atoi(argv[3]) : 4000;

  std::printf("== DTN participatory store: %u devices, %u objects, %u events ==\n\n",
              n_sites, n_objects, steps);
  const wl::Trace trace = wl::dtn_store(n_sites, n_objects, steps, /*seed=*/2026);
  const CostModel cm{.n = n_sites, .m = 1 << 16};

  repl::StateSystem::Config cfg;
  cfg.n_sites = n_sites;
  cfg.kind = vv::VectorKind::kSrv;
  cfg.policy = repl::ResolutionPolicy::kAutomatic;
  cfg.cost = cm;
  repl::StateSystem sys(cfg);
  const wl::RunStats stats = wl::run_state(sys, trace);

  const TraditionalTotals trad = replay_traditional(trace, cm);

  std::printf("trace executed: %llu updates, %llu syncs, %llu conflicts reconciled\n",
              (unsigned long long)stats.updates, (unsigned long long)stats.syncs,
              (unsigned long long)sys.totals().reconciliations);
  std::printf("eventually consistent: %s (after %u anti-entropy rounds)\n\n",
              stats.eventually_consistent ? "yes" : "no", stats.anti_entropy_rounds);

  const double srv_per_session =
      (double)sys.totals().bits / (double)std::max<std::uint64_t>(sys.totals().sessions, 1);
  const double trad_per_session =
      (double)trad.bits / (double)std::max<std::uint64_t>(trad.sessions, 1);
  std::printf("metadata traffic (model bits, §3.3 cost model):\n");
  std::printf("  SRV incremental exchange: %12llu bits over %llu sessions (%.0f bits/session)\n",
              (unsigned long long)sys.totals().bits,
              (unsigned long long)sys.totals().sessions, srv_per_session);
  std::printf("  traditional full vectors: %12llu bits over %llu sessions (%.0f bits/session)\n",
              (unsigned long long)trad.bits, (unsigned long long)trad.sessions,
              trad_per_session);
  if (srv_per_session > 0) {
    std::printf("  -> %.1fx less metadata per synchronization\n",
                trad_per_session / srv_per_session);
  }
  std::printf("\n(every session also cross-checked the rotating vectors against a\n"
              " traditional-vector oracle; a divergence would have aborted)\n");
  return 0;
}
