// A distributed-revision-control-style workflow (Mercurial/Pastwatch class,
// §1): state transfer with *manual* conflict resolution over BRV — the
// paper's "systems providing no conflict reconciliation". Concurrent edits
// exclude both replicas until a human resolves; COMPARE detects the conflict
// in O(1) and SYNCB moves only vector differences for fast-forward pulls.
#include <cstdio>

#include "repl/state_system.h"

using namespace optrep;

namespace {

void show(const repl::StateSystem& sys, SiteId s, ObjectId o, const char* name) {
  if (!sys.has_replica(s, o)) {
    std::printf("  %-7s (no checkout)\n", name);
    return;
  }
  const auto& r = sys.replica(s, o);
  std::printf("  %-7s %-28s%s\n", name, r.vector.to_string().c_str(),
              r.conflicted ? "  ** CONFLICT: excluded, needs manual merge **" : "");
}

}  // namespace

int main() {
  const SiteId kServer{0}, kDev1{1}, kDev2{2};
  const ObjectId kRepo{0};

  repl::StateSystem::Config cfg;
  cfg.n_sites = 3;
  cfg.kind = vv::VectorKind::kBrv;  // optimal when no reconciliation exists (§3.1)
  cfg.policy = repl::ResolutionPolicy::kManual;
  cfg.cost = CostModel{.n = 3, .m = 1 << 10};
  repl::StateSystem sys(cfg);

  std::printf("== toy distributed revision control (BRV + manual resolution) ==\n\n");

  sys.create_object(kServer, kRepo, "initial commit");
  sys.sync(kDev1, kServer, kRepo);
  sys.sync(kDev2, kServer, kRepo);
  std::printf("clone to both developers:\n");
  show(sys, kServer, kRepo, "server");
  show(sys, kDev1, kRepo, "dev1");
  show(sys, kDev2, kRepo, "dev2");

  // dev1 commits twice and pushes (server pulls).
  sys.update(kDev1, kRepo, "feature x");
  sys.update(kDev1, kRepo, "fix typo");
  auto push = sys.sync(kServer, kDev1, kRepo);
  std::printf("\ndev1 commits twice; server fast-forwards (%llu elements on the wire,\n"
              "vector has %zu — only the delta moved):\n",
              (unsigned long long)push.report.elems_sent,
              sys.replica(kDev1, kRepo).vector.size());
  show(sys, kServer, kRepo, "server");

  // dev2 commits concurrently, then tries to push: conflict.
  sys.update(kDev2, kRepo, "feature y");
  auto conflict = sys.sync(kServer, kDev2, kRepo);
  std::printf("\ndev2 pushes a concurrent commit -> COMPARE says '%s' in O(1):\n",
              std::string(vv::to_string(conflict.relation)).c_str());
  show(sys, kServer, kRepo, "server");
  show(sys, kDev2, kRepo, "dev2");
  std::printf("\n(the push transferred only %llu bits before stopping: the conflict\n"
              " was detected from the two front elements alone, §3.3)\n",
              (unsigned long long)conflict.report.total_bits());

  std::printf("\nconflicts detected so far: %llu; automatic merges performed: %llu\n",
              (unsigned long long)sys.totals().conflicts_detected,
              (unsigned long long)sys.totals().reconciliations);
  std::printf("a human (or a smarter policy — see CRV/SRV systems) must now merge.\n");
  return 0;
}
