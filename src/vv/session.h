// Vector synchronization sessions: SYNCB (Alg 2), SYNCC (Alg 3), SYNCS
// (Alg 4), plus the traditional full-vector baseline and the
// Singhal–Kshemkalyani incremental baseline [23].
//
// A session runs a sender actor (hosting vector b) and a receiver actor
// (hosting vector a, which is modified) on the discrete-event simulator and
// returns a SyncReport with exact traffic, element and timing accounting.
//
// Transfer modes:
//  - kPipelined:   the paper's network pipelining (§3.1): the sender streams
//                  speculatively, paced by link bandwidth, until it hears a
//                  negative response. Saves (k−1)·rtt of running time but may
//                  overshoot by up to β = bandwidth·rtt after the receiver
//                  halts — both effects are measurable in the report.
//  - kStopAndWait: one element per round trip; each element is acknowledged.
//                  The ablation baseline the paper compares pipelining against.
//  - kIdeal:       stop-and-wait flow control with zero-cost acks; measures
//                  the algorithms' idealized communication complexity exactly
//                  as stated in Table 2 (the halt takes effect instantly).
#pragma once

#include <optional>
#include <vector>

#include "common/cost_model.h"
#include "obs/causal.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/event_loop.h"
#include "sim/frame_link.h"
#include "sim/link.h"
#include "vv/compare.h"
#include "vv/rotating_vector.h"
#include "vv/version_vector.h"
#include "vv/wire.h"

namespace optrep::vv {

enum class TransferMode : std::uint8_t { kPipelined, kStopAndWait, kIdeal };

// Retry policy for sync_with_recovery: how many times a session may be
// re-run when fault injection keeps the replicas from converging, and the
// bounded exponential backoff between attempts.
struct RetryPolicy {
  std::uint32_t max_retries{6};
  sim::Time base_backoff_s{0.05};  // attempt k waits base · 2^k, capped below
  sim::Time max_backoff_s{2.0};
};

struct SyncOptions {
  VectorKind kind{VectorKind::kSrv};
  TransferMode mode{TransferMode::kPipelined};
  sim::NetConfig net{};
  CostModel cost{};
  // Relation between a and b if the caller already knows it (e.g. from a
  // prior COMPARE); otherwise the session runs COMPARE itself and charges
  // compare_cost_bits to the traffic totals.
  std::optional<Ordering> known_relation;
  // Optional transcript taps: each registered subscriber observes every
  // message as it enters a link (true = sender→receiver direction), in
  // registration order. For debugging and tests — a tracer and a test
  // assertion can watch the same session.
  using Tap = std::function<void(bool forward, const VvMsg&)>;
  std::vector<Tap> taps;
  void add_tap(Tap t) { taps.push_back(std::move(t)); }

  // Structured observability (optional, see src/obs/): typed protocol events
  // go to `tracer` stamped with `trace_session`; per-session aggregates
  // (counters + a total-bits histogram, "vv." prefix) go to `metrics`.
  // Neither adds heap allocation on the per-message path.
  obs::Tracer* tracer{nullptr};
  std::uint64_t trace_session{0};
  obs::Registry* metrics{nullptr};

  // Optional flight recorder (obs/flight_recorder.h): every wire message and
  // every injected fault lands in its ring, stamped with trace_session; typed
  // decode errors and retry exhaustion trigger it. Shares the tracer's tap —
  // no extra per-message cost when unset.
  obs::FlightRecorder* recorder{nullptr};

  // Causal propagation tracing (obs/causal.h): with `causal` set every
  // session opens a span (parented under `causal_parent`, stamped with the
  // retry `causal_attempt`) and emits send/receive/fault/apply edges onto
  // it; sync_with_recovery opens a root span per call and parents each
  // attempt under it. src_site/dst_site label the replica sites when the
  // caller knows them (the repl systems do; standalone sessions leave 0).
  obs::CausalTracer* causal{nullptr};
  std::uint64_t causal_parent{0};
  std::uint32_t causal_attempt{0};
  SiteId src_site{};
  SiteId dst_site{};

  // Used by sync_with_recovery when opt.net.faults.enabled().
  RetryPolicy retry{};
};

struct SyncReport {
  Ordering initial_relation{Ordering::kEqual};

  // Traffic (sender→receiver and receiver→sender), in §3.3 model bits and in
  // byte-aligned realistic encoding. Includes COMPARE probes if the session
  // ran COMPARE; excludes nothing else.
  std::uint64_t bits_fwd{0};
  std::uint64_t bits_rev{0};
  std::uint64_t bytes_fwd{0};
  std::uint64_t bytes_rev{0};
  std::uint64_t msgs_fwd{0};
  std::uint64_t msgs_rev{0};

  // Frame batching (sim::FrameLink, opt.net.frame_budget): coalesced wire
  // frames and their delta-varint byte totals (vv/frame_codec.h), plus the
  // event-loop dispatches the session executed. With frame_budget == 0 every
  // message is its own frame. Model-bit fields above are identical with
  // framing on or off.
  std::uint64_t frames_fwd{0};
  std::uint64_t frames_rev{0};
  std::uint64_t framed_bytes_fwd{0};
  std::uint64_t framed_bytes_rev{0};
  std::uint64_t loop_events{0};

  // Element accounting at the receiver.
  std::uint64_t elems_sent{0};        // Elem messages transmitted by sender
  std::uint64_t elems_applied{0};     // |Δ|: new values written into a
  std::uint64_t elems_redundant{0};   // |Γ|: known elements processed pre-halt
  std::uint64_t elems_straggler{0};   // known elements ignored while skipping
  std::uint64_t elems_after_halt{0};  // pipelining overshoot past HALT
  std::uint64_t skip_msgs{0};         // SKIP requests sent (SRV)
  std::uint64_t segments_skipped{0};  // honored skips: observed γ (SRV)
  std::uint64_t ack_msgs{0};          // stop-and-wait acks (ablation modes)

  // Simulated time from session start to quiescence, and to the moment the
  // receiver was done (halted or saw the sender's end-of-vector).
  sim::Time duration{0};
  sim::Time receiver_done_at{0};

  // Fault injection and recovery (all zero / defaults on fault-free runs).
  // attempts counts full session runs inside sync_with_recovery; retries is
  // attempts - 1; recovery_bits is the model-bit traffic attributable to
  // retries (attempts past the first, including their re-COMPAREs).
  std::uint32_t attempts{1};
  std::uint32_t retries{0};
  std::uint64_t recovery_bits{0};
  bool converged{true};  // receiver == element-wise max when the call returned
  // Messages the cores ignored because they were impossible in the current
  // state (duplicates of already-consumed control messages, stale skips, ...).
  std::uint64_t protocol_violations{0};
  std::uint64_t faults_dropped{0};
  std::uint64_t faults_duplicated{0};
  std::uint64_t faults_reordered{0};
  std::uint64_t faults_corrupted{0};
  std::uint64_t faults_decode_errors{0};  // corruptions the typed codec caught

  // Root causal span of this sync (0 when causal tracing is off): the
  // session's span for a direct call, the recovery root under faults. The
  // repl systems attach kDeliver events to it so the analyzer can charge a
  // delivery's latency/bits/retries to the hop that carried it.
  std::uint64_t causal_span{0};

  std::uint64_t total_bits() const { return bits_fwd + bits_rev; }
  std::uint64_t total_bytes() const { return bytes_fwd + bytes_rev; }
  std::uint64_t total_frames() const { return frames_fwd + frames_rev; }
  std::uint64_t total_framed_bytes() const { return framed_bytes_fwd + framed_bytes_rev; }
  std::uint64_t total_faults() const {
    return faults_dropped + faults_duplicated + faults_reordered + faults_corrupted;
  }
};

// SYNCB_b(a) — Algorithm 2. Requires a ∦ b (checked). After the call a's
// values equal max(a[i], b[i]): a becomes b when a ≺ b, stays a otherwise
// (Theorem 3.1).
SyncReport sync_basic(sim::EventLoop& loop, RotatingVector& a, const RotatingVector& b,
                      const SyncOptions& opt);

// SYNCC_b(a) — Algorithm 3. Handles concurrent vectors; tags elements
// modified during reconciliation with conflict bits. The §2.2-mandated local
// increment after reconciliation is the caller's responsibility.
SyncReport sync_conflict(sim::EventLoop& loop, RotatingVector& a, const RotatingVector& b,
                         const SyncOptions& opt);

// SYNCS_b(a) — Algorithm 4. Like SYNCC but skips whole segments the receiver
// already knows, using segment bits; O(|Δ|+γ) communication.
SyncReport sync_skip(sim::EventLoop& loop, RotatingVector& a, const RotatingVector& b,
                     const SyncOptions& opt);

// Dispatch on opt.kind.
SyncReport sync_rotating(sim::EventLoop& loop, RotatingVector& a, const RotatingVector& b,
                         const SyncOptions& opt);

// Fault-tolerant wrapper: runs sync_rotating under opt.net.faults, then
// re-COMPAREs (exact compare_full — faulted partial syncs may leave vectors
// outside the at-rest states compare_fast assumes) and retries with bounded
// exponential backoff (opt.retry) until the receiver covers the sender or
// the retry budget runs out. Each attempt derives an independent fault seed
// via sim::fault_attempt_seed. With faults disabled this is exactly
// sync_rotating. BRV + concurrent vectors run one best-effort pass
// (SYNCB cannot reconcile ‖; report.converged reflects the outcome).
//
// Atomicity: every attempt starts from the receiver's pre-call state — the
// protocols' receiver-halt rule is only sound against a prefix-closed
// receiver, which a faulted partial application is not — and when the call
// returns with report.converged == false the receiver is left exactly as it
// was (partial progress is discarded, its traffic charged to recovery_bits).
SyncReport sync_with_recovery(sim::EventLoop& loop, RotatingVector& a, const RotatingVector& b,
                              const SyncOptions& opt);

// Traditional baseline: ship the entire vector, receiver joins element-wise.
SyncReport sync_traditional(sim::EventLoop& loop, VersionVector& a, const VersionVector& b,
                            const SyncOptions& opt);

// Singhal–Kshemkalyani [23] baseline: the sender remembers, per destination,
// the vector it last sent there (`last_sent`, caller-owned state) and ships
// only elements that grew since. O(n) extra state per destination.
SyncReport sync_singhal_kshemkalyani(sim::EventLoop& loop, VersionVector& a,
                                     const VersionVector& b, VersionVector& last_sent,
                                     const SyncOptions& opt);

// Message sizing shared with benches.
std::uint64_t msg_model_bits(const CostModel& cm, VectorKind kind, const VvMsg& m);
std::uint64_t msg_wire_bytes(VectorKind kind, const VvMsg& m);

// The COMPARE protocol (Algorithm 1) as a distributed session: both sites
// transmit their front element simultaneously and each decides locally.
// Costs exactly 2·log(mn) bits and one half round trip of simulated time.
struct CompareSessionResult {
  Ordering at_a{Ordering::kEqual};  // a's verdict about (a vs b)
  Ordering at_b{Ordering::kEqual};  // b's verdict about (b vs a)
  std::uint64_t total_bits{0};
  sim::Time duration{0};
};
CompareSessionResult compare_session(sim::EventLoop& loop, const RotatingVector& a,
                                     const RotatingVector& b, const sim::NetConfig& net,
                                     const CostModel& cost);

}  // namespace optrep::vv
