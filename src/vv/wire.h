// Wire messages for the vector synchronization protocols.
//
// One message type serves SYNCB/SYNCC/SYNCS, the traditional full-transfer
// baseline, and the Singhal–Kshemkalyani baseline; each protocol only uses a
// subset of kinds and fields. Sizes are computed from the §3.3 cost model at
// send time (see session.cc).
#pragma once

#include <cstdint>
#include <string>

#include "common/ids.h"

namespace optrep::vv {

struct VvMsg {
  enum class Kind : std::uint8_t {
    kElem,     // one vector element; flags are meaningful for CRV/SRV
    kHalt,     // negative/stop response (receiver→sender), or end-of-vector
               // marker (sender→receiver, after the last element)
    kSkip,     // SRV receiver→sender: skip the rest of segment `arg`
    kSkipped,  // SRV sender→receiver: a skip was honored; one segment elided.
               // (An O(1) marker we add so the receiver can keep exact track
               // of the sender's segment index under pipelining; see
               // DESIGN.md "deviations".)
    kAck,      // stop-and-wait positive acknowledgement (ablation mode only)
    kProbe,    // COMPARE: one ⌊v⌋ element (value 0 encodes an empty vector)
    kVerdict,  // COMPARE: one domination bit ("my vector covers your probe")
  };

  Kind kind{Kind::kElem};
  SiteId site{};               // kElem / kProbe
  std::uint64_t value{0};      // kElem / kProbe
  bool conflict{false};        // kElem (CRV/SRV)
  bool segment{false};         // kElem (SRV)
  std::uint64_t arg{0};        // kSkip: segment index; kVerdict: 0/1

  std::string to_string() const;
};

}  // namespace optrep::vv
