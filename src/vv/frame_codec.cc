#include "vv/frame_codec.h"

#include "common/check.h"

namespace optrep::vv {

namespace {

// Message tags (one byte; see frame_codec.h for the map).
constexpr std::uint8_t kTagHalt = 0x01;
constexpr std::uint8_t kTagSkipped = 0x02;
constexpr std::uint8_t kTagAck = 0x03;
constexpr std::uint8_t kTagSkip = 0x04;
constexpr std::uint8_t kTagVerdictNot = 0x06;
constexpr std::uint8_t kTagVerdictCovers = 0x07;
constexpr std::uint8_t kTagProbe = 0x20;
constexpr std::uint8_t kTagElem = 0x80;

constexpr std::uint8_t kFlagConflict = 0x01;
constexpr std::uint8_t kFlagSegment = 0x02;
constexpr std::uint8_t kFlagWideSite = 0x04;
constexpr std::uint8_t kFlagWideValue = 0x08;
constexpr std::uint8_t kFlagWideSkip = 0x10;

// Fixed-width fallbacks: a site is 4 raw bytes, a value 8, matching the
// unframed realistic encoding — the wide flags guarantee framed ≤ unframed
// per message.
constexpr std::uint32_t kWideSiteBytes = 4;
constexpr std::uint32_t kWideValueBytes = 8;

std::uint32_t varint_len(std::uint64_t v) {
  std::uint32_t len = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++len;
  }
  return len;
}

std::uint64_t zigzag(std::int64_t n) {
  return (static_cast<std::uint64_t>(n) << 1) ^ static_cast<std::uint64_t>(n >> 63);
}

std::int64_t unzigzag(std::uint64_t z) {
  return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_fixed(std::vector<std::uint8_t>& out, std::uint64_t v, std::uint32_t bytes) {
  for (std::uint32_t i = 0; i < bytes; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

struct FieldPlan {
  std::uint64_t site_zz;
  std::uint64_t value_zz;
  bool wide_site;
  bool wide_value;
  std::uint64_t bytes;  // site field + value field
};

FieldPlan plan_fields(FrameDeltaState& st, const VvMsg& m) {
  FieldPlan p{};
  p.site_zz = zigzag(static_cast<std::int64_t>(m.site.value) -
                     static_cast<std::int64_t>(st.prev_site));
  p.value_zz = zigzag(static_cast<std::int64_t>(m.value - st.prev_value));
  p.wide_site = varint_len(p.site_zz) > kWideSiteBytes;
  p.wide_value = varint_len(p.value_zz) > kWideValueBytes;
  p.bytes = (p.wide_site ? kWideSiteBytes : varint_len(p.site_zz)) +
            (p.wide_value ? kWideValueBytes : varint_len(p.value_zz));
  st.prev_site = m.site.value;
  st.prev_value = m.value;
  return p;
}

std::uint64_t msg_framed_bytes(FrameDeltaState& st, const VvMsg& m) {
  switch (m.kind) {
    case VvMsg::Kind::kElem:
    case VvMsg::Kind::kProbe:
      return 1 + plan_fields(st, m).bytes;
    case VvMsg::Kind::kSkip: {
      // Segment indexes are 32-bit, like the unframed 5-byte SKIP encoding.
      OPTREP_CHECK_MSG(m.arg <= 0xFFFFFFFFull, "skip segment index exceeds 32 bits");
      const std::uint32_t len = varint_len(m.arg);
      return 1 + (len > kWideSiteBytes ? kWideSiteBytes : len);
    }
    case VvMsg::Kind::kHalt:
    case VvMsg::Kind::kSkipped:
    case VvMsg::Kind::kAck:
    case VvMsg::Kind::kVerdict:
      return 1;
  }
  OPTREP_CHECK(false);
  return 0;
}

// Non-aborting reader: every accessor reports truncation/overflow through its
// return value so the decoder can surface a typed error for untrusted bytes.
class FrameReader {
 public:
  FrameReader(const std::uint8_t* data, std::size_t size, std::size_t pos)
      : data_(data), size_(size), pos_(pos) {}

  bool done() const { return pos_ == size_; }
  std::size_t pos() const { return pos_; }

  bool byte(std::uint8_t* out) {
    if (pos_ >= size_) return false;
    *out = data_[pos_++];
    return true;
  }

  FrameDecodeError varint(std::uint64_t* out) {
    std::uint64_t v = 0;
    std::uint32_t shift = 0;
    while (true) {
      if (shift >= 64) return FrameDecodeError::kVarintOverflow;
      std::uint8_t b = 0;
      if (!byte(&b)) return FrameDecodeError::kTruncated;
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) {
        *out = v;
        return FrameDecodeError::kNone;
      }
      shift += 7;
    }
  }

  bool fixed(std::uint32_t bytes, std::uint64_t* out) {
    std::uint64_t v = 0;
    for (std::uint32_t i = 0; i < bytes; ++i) {
      std::uint8_t b = 0;
      if (!byte(&b)) return false;
      v |= static_cast<std::uint64_t>(b) << (8 * i);
    }
    *out = v;
    return true;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_;
};

// Decode one message. On success the reader sits past the message and *st has
// absorbed it; on any error the chain state is untouched (element decoding
// stages both fields in locals first), so the caller can rewind to the
// message start and retry byte-for-byte once more input arrives.
FrameDecodeError decode_one(FrameReader& r, FrameDeltaState& st, VvMsg* out) {
  std::uint8_t tag = 0;
  if (!r.byte(&tag)) return FrameDecodeError::kTruncated;
  VvMsg m;
  if ((tag & kTagElem) != 0 || (tag & kTagProbe) != 0) {
    m.kind = (tag & kTagElem) != 0 ? VvMsg::Kind::kElem : VvMsg::Kind::kProbe;
    m.conflict = m.kind == VvMsg::Kind::kElem && (tag & kFlagConflict) != 0;
    m.segment = m.kind == VvMsg::Kind::kElem && (tag & kFlagSegment) != 0;
    std::uint64_t raw = 0;
    if ((tag & kFlagWideSite) != 0) {
      if (!r.fixed(kWideSiteBytes, &raw)) return FrameDecodeError::kTruncated;
      m.site = SiteId{static_cast<std::uint32_t>(raw)};
    } else {
      if (const auto err = r.varint(&raw); err != FrameDecodeError::kNone) return err;
      m.site = SiteId{static_cast<std::uint32_t>(
          static_cast<std::int64_t>(st.prev_site) + unzigzag(raw))};
    }
    if ((tag & kFlagWideValue) != 0) {
      if (!r.fixed(kWideValueBytes, &raw)) return FrameDecodeError::kTruncated;
      m.value = raw;
    } else {
      if (const auto err = r.varint(&raw); err != FrameDecodeError::kNone) return err;
      m.value = st.prev_value + static_cast<std::uint64_t>(unzigzag(raw));
    }
    st.prev_site = m.site.value;
    st.prev_value = m.value;
  } else if ((tag & kTagSkip) != 0 && (tag & ~(kTagSkip | kFlagWideSkip)) == 0) {
    m.kind = VvMsg::Kind::kSkip;
    if ((tag & kFlagWideSkip) != 0) {
      if (!r.fixed(kWideSiteBytes, &m.arg)) return FrameDecodeError::kTruncated;
    } else {
      if (const auto err = r.varint(&m.arg); err != FrameDecodeError::kNone) return err;
    }
  } else {
    switch (tag) {
      case kTagHalt:
        m.kind = VvMsg::Kind::kHalt;
        break;
      case kTagSkipped:
        m.kind = VvMsg::Kind::kSkipped;
        break;
      case kTagAck:
        m.kind = VvMsg::Kind::kAck;
        break;
      case kTagVerdictNot:
        m.kind = VvMsg::Kind::kVerdict;
        m.arg = 0;
        break;
      case kTagVerdictCovers:
        m.kind = VvMsg::Kind::kVerdict;
        m.arg = 1;
        break;
      default:
        return FrameDecodeError::kUnknownTag;
    }
  }
  *out = m;
  return FrameDecodeError::kNone;
}

}  // namespace

std::uint64_t frame_wire_bytes(const std::vector<VvMsg>& msgs) {
  FrameDeltaState st;
  std::uint64_t total = 0;
  for (const VvMsg& m : msgs) total += msg_framed_bytes(st, m);
  return total;
}

std::uint64_t frame_wire_bytes_single(const VvMsg& m) {
  FrameDeltaState st;
  return msg_framed_bytes(st, m);
}

std::uint64_t frame_encode_msg(std::vector<std::uint8_t>& out, const VvMsg& m,
                               FrameDeltaState* st) {
  const std::size_t before = out.size();
  switch (m.kind) {
    case VvMsg::Kind::kElem:
    case VvMsg::Kind::kProbe: {
      const FieldPlan p = plan_fields(*st, m);
      std::uint8_t tag = m.kind == VvMsg::Kind::kElem ? kTagElem : kTagProbe;
      if (m.kind == VvMsg::Kind::kElem) {
        if (m.conflict) tag |= kFlagConflict;
        if (m.segment) tag |= kFlagSegment;
      }
      if (p.wide_site) tag |= kFlagWideSite;
      if (p.wide_value) tag |= kFlagWideValue;
      out.push_back(tag);
      if (p.wide_site) {
        put_fixed(out, m.site.value, kWideSiteBytes);
      } else {
        put_varint(out, p.site_zz);
      }
      if (p.wide_value) {
        put_fixed(out, m.value, kWideValueBytes);
      } else {
        put_varint(out, p.value_zz);
      }
      break;
    }
    case VvMsg::Kind::kSkip: {
      OPTREP_CHECK_MSG(m.arg <= 0xFFFFFFFFull, "skip segment index exceeds 32 bits");
      const bool wide = varint_len(m.arg) > kWideSiteBytes;
      out.push_back(static_cast<std::uint8_t>(kTagSkip | (wide ? kFlagWideSkip : 0)));
      if (wide) {
        put_fixed(out, m.arg, kWideSiteBytes);
      } else {
        put_varint(out, m.arg);
      }
      break;
    }
    case VvMsg::Kind::kHalt:
      out.push_back(kTagHalt);
      break;
    case VvMsg::Kind::kSkipped:
      out.push_back(kTagSkipped);
      break;
    case VvMsg::Kind::kAck:
      out.push_back(kTagAck);
      break;
    case VvMsg::Kind::kVerdict:
      out.push_back(m.arg != 0 ? kTagVerdictCovers : kTagVerdictNot);
      break;
  }
  return out.size() - before;
}

std::uint64_t frame_encode(std::vector<std::uint8_t>& out, const std::vector<VvMsg>& msgs) {
  FrameDeltaState st;
  std::uint64_t total = 0;
  for (const VvMsg& m : msgs) total += frame_encode_msg(out, m, &st);
  return total;
}

FrameDecodeError frame_decode_stream(const std::uint8_t* data, std::size_t size,
                                     std::size_t* pos, FrameDeltaState* st,
                                     std::vector<VvMsg>* out) {
  FrameReader r(data, size, *pos);
  while (!r.done()) {
    const std::size_t msg_start = r.pos();
    VvMsg m;
    if (const auto err = decode_one(r, *st, &m); err != FrameDecodeError::kNone) {
      *pos = msg_start;
      return err;
    }
    out->push_back(m);
    *pos = r.pos();
  }
  return FrameDecodeError::kNone;
}

FrameDecodeError try_frame_decode(const std::vector<std::uint8_t>& bytes,
                                  std::vector<VvMsg>* out) {
  out->clear();
  std::size_t pos = 0;
  FrameDeltaState st;
  return frame_decode_stream(bytes.data(), bytes.size(), &pos, &st, out);
}

std::vector<VvMsg> frame_decode(const std::vector<std::uint8_t>& bytes) {
  std::vector<VvMsg> msgs;
  const FrameDecodeError err = try_frame_decode(bytes, &msgs);
  OPTREP_CHECK_MSG(err != FrameDecodeError::kTruncated, "frame decode: truncated input");
  OPTREP_CHECK_MSG(err != FrameDecodeError::kVarintOverflow, "frame decode: varint overflow");
  OPTREP_CHECK_MSG(err != FrameDecodeError::kUnknownTag, "frame decode: unknown tag");
  return msgs;
}

}  // namespace optrep::vv
