#include "vv/session.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/check.h"
#include "obs/prof.h"
#include "vv/frame_codec.h"

namespace optrep::vv {

std::uint64_t msg_model_bits(const CostModel& cm, VectorKind kind, const VvMsg& m) {
  switch (m.kind) {
    case VvMsg::Kind::kElem:
      switch (kind) {
        case VectorKind::kBrv: return cm.elem_bits(0);
        case VectorKind::kCrv: return cm.elem_bits(1);
        case VectorKind::kSrv: return cm.elem_bits(2);
      }
      return cm.elem_bits(2);
    case VvMsg::Kind::kHalt: return cm.halt_bits();
    case VvMsg::Kind::kSkip: return cm.skip_bits();
    case VvMsg::Kind::kSkipped: return 2;  // O(1) marker; same budget as HALT
    case VvMsg::Kind::kAck: return cm.ack_bits();
    case VvMsg::Kind::kProbe: return cm.compare_probe_bits();
    case VvMsg::Kind::kVerdict: return 1;
  }
  return 0;
}

std::uint64_t msg_wire_bytes(VectorKind kind, const VvMsg& m) {
  switch (m.kind) {
    case VvMsg::Kind::kElem: return wire_bytes_elem(kind != VectorKind::kBrv);
    case VvMsg::Kind::kHalt: return wire_bytes_halt();
    case VvMsg::Kind::kSkip: return wire_bytes_skip();
    case VvMsg::Kind::kSkipped: return wire_bytes_halt();
    case VvMsg::Kind::kAck: return wire_bytes_ack();
    case VvMsg::Kind::kProbe: return wire_bytes_elem(false);
    case VvMsg::Kind::kVerdict: return 1;
  }
  return 0;
}

std::string VvMsg::to_string() const {
  switch (kind) {
    case Kind::kElem: {
      std::string s = "ELEM(" + site_name(site) + ":" + std::to_string(value);
      if (conflict) s += ",c";
      if (segment) s += ",s";
      return s + ")";
    }
    case Kind::kHalt: return "HALT";
    case Kind::kSkip: return "SKIP(" + std::to_string(arg) + ")";
    case Kind::kSkipped: return "SKIPPED";
    case Kind::kAck: return "ACK";
    case Kind::kProbe:
      return value == 0 ? "PROBE(empty)"
                        : "PROBE(" + site_name(site) + ":" + std::to_string(value) + ")";
    case Kind::kVerdict: return arg != 0 ? "VERDICT(covers)" : "VERDICT(not)";
  }
  return "?";
}

namespace {

// Map one wire message to its typed trace event (receiver-side semantic
// events — applied/redundant/straggler — are emitted by the receivers
// themselves, where the classification happens).
obs::TraceEventType wire_event_type(bool forward, const VvMsg& m) {
  switch (m.kind) {
    case VvMsg::Kind::kElem: return obs::TraceEventType::kElemSent;
    case VvMsg::Kind::kHalt: return obs::TraceEventType::kHalt;
    case VvMsg::Kind::kSkip: return obs::TraceEventType::kSkipIssued;
    case VvMsg::Kind::kSkipped: return obs::TraceEventType::kSkipHonored;
    case VvMsg::Kind::kAck: return obs::TraceEventType::kAck;
    case VvMsg::Kind::kProbe: return obs::TraceEventType::kProbe;
    case VvMsg::Kind::kVerdict: return obs::TraceEventType::kVerdict;
  }
  (void)forward;
  return obs::TraceEventType::kElemSent;
}

// Per-session aggregates under the "vv." prefix. Runs once per session (not
// per message); instrument lookups are heterogeneous map finds, so nothing
// here allocates after the first session.
void publish_session_metrics(obs::Registry* reg, const SyncReport& r) {
  if (reg == nullptr) return;
  reg->counter("vv.sessions").inc();
  reg->counter("vv.bits_fwd").inc(r.bits_fwd);
  reg->counter("vv.bits_rev").inc(r.bits_rev);
  reg->counter("vv.bytes").inc(r.total_bytes());
  reg->counter("vv.msgs").inc(r.msgs_fwd + r.msgs_rev);
  reg->counter("vv.elems_sent").inc(r.elems_sent);
  reg->counter("vv.elems_applied").inc(r.elems_applied);
  reg->counter("vv.elems_redundant").inc(r.elems_redundant);
  reg->counter("vv.elems_after_halt").inc(r.elems_after_halt);
  reg->counter("vv.skip_msgs").inc(r.skip_msgs);
  reg->counter("vv.segments_skipped").inc(r.segments_skipped);
  reg->counter("vv.ack_msgs").inc(r.ack_msgs);
  reg->counter("vv.frames").inc(r.total_frames());
  reg->counter("vv.framed_bytes").inc(r.total_framed_bytes());
  reg->counter("vv.loop_events").inc(r.loop_events);
  reg->histogram("vv.session_bits").record(r.total_bits());
  // Dispatch efficiency of the transport: executed events per transmitted
  // element, x100 (framing drives this far below 100).
  reg->histogram("vv.events_per_100_elems")
      .record(r.elems_sent > 0 ? r.loop_events * 100 / r.elems_sent : r.loop_events * 100);
}

// Shared plumbing for one endpoint of a session: counted sends over one link.
class Peer {
 public:
  Peer(sim::EventLoop* loop, sim::FrameLink<VvMsg>* tx, const SyncOptions* opt)
      : loop_(loop), tx_(tx), opt_(opt) {}
  virtual ~Peer() = default;

  virtual void on_message(const VvMsg& m) = 0;

 protected:
  // `revocable` marks a speculative framed send (pipelined burst) that a
  // later HALT/SKIP may take back before transmission starts; reactive
  // messages stay committed at hand-off, exactly as unframed.
  sim::Time send(const VvMsg& m, bool revocable = false) {
    std::uint64_t bits = msg_model_bits(opt_->cost, opt_->kind, m);
    std::uint64_t bytes = msg_wire_bytes(opt_->kind, m);
    if (m.kind == VvMsg::Kind::kAck && opt_->mode == TransferMode::kIdeal) {
      bits = 0;  // kIdeal: flow control is free; measures pure algorithm cost
      bytes = 0;
    }
    return tx_->send(m, bits, bytes, revocable);
  }

  bool pipelined() const { return opt_->mode == TransferMode::kPipelined; }

  sim::EventLoop* loop_;
  sim::FrameLink<VvMsg>* tx_;
  const SyncOptions* opt_;
};

// The sender side of SYNCB/SYNCC/SYNCS: streams b's elements in ≺ order.
// SYNCB and SYNCC senders are identical except for the element payload width
// (handled by the cost model); the SRV sender additionally honors SKIP.
class ElementSender : public Peer {
 public:
  ElementSender(sim::EventLoop* loop, sim::FrameLink<VvMsg>* tx, const SyncOptions* opt,
                const RotatingVector* b)
      : Peer(loop, tx, opt), b_(b), cur_(b->begin()) {}

  void start() {
    if (pipelined()) {
      pump();
    } else {
      send_next();
    }
  }

  void on_message(const VvMsg& m) override {
    switch (m.kind) {
      case VvMsg::Kind::kHalt:
        // Processed even when done_: under framing the speculative tail
        // (possibly including our own end-of-vector HALT) may still sit
        // untransmitted in the link and must be taken back — exactly the
        // elements the unframed pump would never have sent (§3.1 overshoot).
        revoke_speculative_tail();
        finish();
        break;
      case VvMsg::Kind::kSkip:
        OPTREP_CHECK_MSG(opt_->kind == VectorKind::kSrv, "SKIP outside SYNCS");
        handle_skip(m.arg);
        break;
      case VvMsg::Kind::kAck:
        if (done_) return;
        OPTREP_CHECK_MSG(!pipelined(), "ACK in pipelined mode");
        send_next();
        break;
      default:
        OPTREP_CHECK_MSG(false, "unexpected message at sender");
    }
  }

  std::uint64_t elems_sent() const { return elems_sent_; }

 private:
  // Pipelined streaming (§3.1): transmit the next element as soon as the link
  // frees, until HALT arrives or the vector is exhausted. Under framing, one
  // pump dispatch hands the link a whole frame's worth of speculative
  // (revocable) sends and parks a single continuation at the last link-free
  // time; the per-message transmission schedule is unchanged.
  void pump() {
    pending_ = 0;
    if (done_) return;
    const std::uint32_t burst = tx_->framed() ? tx_->config().frame_budget : 1;
    sim::Time free = loop_->now();
    for (std::uint32_t i = 0; i < burst; ++i) {
      // The first message of a pump dispatch is exactly what the unframed
      // pump would emit at this instant — committed at hand-off, like every
      // unframed send. Only the rest of the burst is speculation, committed
      // once its transmission starts.
      free = emit_current(/*revocable=*/tx_->framed() && i > 0);
      if (done_) return;  // emitted HALT
    }
    pending_ = loop_->schedule(free, [this] { pump(); });
  }

  // Stop-and-wait: transmit one element, then wait for ACK / SKIP / HALT.
  void send_next() {
    if (done_) return;
    emit_current();
  }

  // Send the element at cur_ (or HALT when exhausted); returns link-free time.
  sim::Time emit_current(bool revocable = false) {
    if (cur_ == b_->end()) {
      const sim::Time free = send(VvMsg{.kind = VvMsg::Kind::kHalt}, revocable);
      finish();
      return free;
    }
    const RotatingVector::Element& e = *cur_;
    VvMsg m;
    m.kind = VvMsg::Kind::kElem;
    m.site = e.site;
    m.value = e.value;
    m.conflict = e.conflict;
    m.segment = e.segment;
    const sim::Time free = send(m, revocable);
    ++elems_sent_;
    advance();
    return free;
  }

  // Move cur_ one step toward ⌈b⌉, tracking the segment counter (Alg 4
  // lines 11–14: segs advances when passing a segment-final element).
  void advance() {
    OPTREP_CHECK(cur_ != b_->end());
    if (cur_->segment) ++segs_;
    ++cur_;
  }

  // Take back the speculative sends whose transmission has not started,
  // rewinding the cursor (and segs_/elems_sent_/done_) step by step so the
  // sender state equals what the unframed pump would have produced by now.
  void revoke_speculative_tail() {
    tx_->cancel_tail([this](const VvMsg& m) {
      switch (m.kind) {
        case VvMsg::Kind::kHalt:
          done_ = false;  // un-emit the speculative end-of-vector marker
          break;
        case VvMsg::Kind::kElem:
          --cur_;
          if (cur_->segment) --segs_;
          --elems_sent_;
          break;
        default:
          OPTREP_CHECK_MSG(false, "unexpected revoked message at sender");
      }
    });
  }

  // SKIP(arg): honored only when we are still inside segment `arg`
  // (Alg 4 sender lines 8–10); stale requests are ignored. Under framing the
  // decision must be made against the *committed* (actually transmitted)
  // cursor state: peek at the speculative tail first, and only when the skip
  // is honored revoke that tail and fast-forward from the committed position.
  void handle_skip(std::uint64_t arg) {
    std::uint64_t tail_segs = 0;
    bool tail_halt = false;
    tx_->peek_tail([&](const VvMsg& m) {
      if (m.kind == VvMsg::Kind::kHalt) {
        tail_halt = true;
      } else if (m.kind == VvMsg::Kind::kElem && m.segment) {
        ++tail_segs;
      }
    });
    if (done_ && !tail_halt) return;  // end-of-vector HALT already committed
    if (arg != segs_ - tail_segs) {
      // Stale: the elements the receiver wanted skipped are already on the
      // wire (or speculatively queued behind them — the stream keeps going
      // either way). In stop-and-wait this cannot happen.
      OPTREP_CHECK_MSG(pipelined(), "stale SKIP in lockstep mode");
      return;
    }
    revoke_speculative_tail();
    // Fast-forward past the remainder of the current segment without sending.
    while (cur_ != b_->end()) {
      const bool end_of_segment = cur_->segment;
      advance();
      if (end_of_segment) break;
    }
    // The unframed pump's continuation fires when the link frees — capture
    // that instant before the marker occupies the link, so the framed resume
    // emits its first post-skip message at the exact legacy hand-off time.
    const sim::Time resume = std::max(loop_->now(), tx_->free_at());
    // Tell the receiver one segment was elided so its reconstruction of our
    // segment index stays exact (see wire.h kSkipped). Committed at hand-off.
    send(VvMsg{.kind = VvMsg::Kind::kSkipped});
    if (tx_->framed() && pipelined()) {
      // The old continuation pointed at the pre-revocation link-free time;
      // re-park it. (Unframed keeps its continuation: identical schedule.)
      if (pending_ != 0) loop_->cancel(pending_);
      pending_ = loop_->schedule(resume, [this] { pump(); });
    }
    if (!pipelined()) send_next();  // SKIP doubles as the ack
  }

  void finish() {
    done_ = true;
    if (pending_ != 0) {
      loop_->cancel(pending_);
      pending_ = 0;
    }
  }

  const RotatingVector* b_;
  // Walks b in ≺ order; b is not mutated during a session, so the iterator
  // stays valid for the session's lifetime.
  RotatingVector::const_iterator cur_;
  std::uint64_t segs_{0};
  std::uint64_t elems_sent_{0};
  bool done_{false};
  sim::EventLoop::EventId pending_{0};
};

// Counters shared by all receivers, harvested into the SyncReport.
struct ReceiverCounters {
  std::uint64_t applied{0};
  std::uint64_t redundant{0};
  std::uint64_t straggler{0};
  std::uint64_t after_halt{0};
  std::uint64_t skip_msgs{0};
  std::uint64_t segments_skipped{0};
  std::uint64_t acks{0};
  sim::Time done_at{0};
};

class ReceiverBase : public Peer {
 public:
  ReceiverBase(sim::EventLoop* loop, sim::FrameLink<VvMsg>* tx, const SyncOptions* opt,
               RotatingVector* a)
      : Peer(loop, tx, opt), a_(a) {}

  const ReceiverCounters& counters() const { return c_; }

 protected:
  void ack() {
    if (pipelined() || finished_) return;
    send(VvMsg{.kind = VvMsg::Kind::kAck});
    ++c_.acks;
  }

  void halt_sender() {
    send(VvMsg{.kind = VvMsg::Kind::kHalt});
    mark_finished();
  }

  void mark_finished() {
    if (!finished_) {
      finished_ = true;
      c_.done_at = loop_->now();
    }
  }

  // Receiver-side semantic trace events (element applied / known / ignored).
  void trace(obs::TraceEventType type, const VvMsg& m) {
    if (opt_->tracer == nullptr) return;
    opt_->tracer->record(obs::TraceEvent{.at = loop_->now(),
                                         .session = opt_->trace_session,
                                         .type = type,
                                         .forward = true,
                                         .site = m.site,
                                         .value = m.value,
                                         .bits = 0});
  }

  RotatingVector* a_;
  std::optional<SiteId> prev_;  // last modified element (Alg 2/3/4 `prev`)
  bool finished_{false};
  ReceiverCounters c_;
};

// Algorithm 2, receiver side.
class ReceiverBasic : public ReceiverBase {
 public:
  using ReceiverBase::ReceiverBase;

  void on_message(const VvMsg& m) override {
    if (m.kind == VvMsg::Kind::kHalt) {
      mark_finished();
      return;
    }
    OPTREP_CHECK(m.kind == VvMsg::Kind::kElem);
    if (finished_) {
      ++c_.after_halt;
      return;
    }
    if (m.value <= a_->value(m.site)) {
      // The element that triggers the halt is not part of Γ (§3.3).
      halt_sender();
      return;
    }
    a_->rotate_after(prev_, m.site);
    prev_ = m.site;
    a_->set_element(m.site, m.value, false, false);
    ++c_.applied;
    trace(obs::TraceEventType::kElemApplied, m);
    ack();
  }
};

// Algorithm 3, receiver side.
class ReceiverConflict : public ReceiverBase {
 public:
  ReceiverConflict(sim::EventLoop* loop, sim::FrameLink<VvMsg>* tx, const SyncOptions* opt,
                   RotatingVector* a, bool initially_concurrent)
      : ReceiverBase(loop, tx, opt, a), reconcile_(initially_concurrent) {}

  void on_message(const VvMsg& m) override {
    if (m.kind == VvMsg::Kind::kHalt) {
      mark_finished();
      return;
    }
    OPTREP_CHECK(m.kind == VvMsg::Kind::kElem);
    if (finished_) {
      ++c_.after_halt;
      return;
    }
    if (m.value <= a_->value(m.site)) {
      if (m.conflict) {
        reconcile_ = true;  // Alg 3 lines 6–7: overlook tagged elements
        ++c_.redundant;     // |Γ|: transmitted only because its bit is set
        trace(obs::TraceEventType::kElemRedundant, m);
        ack();
      } else {
        halt_sender();  // halt-trigger element is not part of Γ (§3.3)
      }
      return;
    }
    a_->rotate_after(prev_, m.site);
    prev_ = m.site;
    a_->set_element(m.site, m.value, reconcile_ || m.conflict, false);
    ++c_.applied;
    trace(obs::TraceEventType::kElemApplied, m);
    ack();
  }

 private:
  bool reconcile_;
};

// Algorithm 4, receiver side, with exact tracking of the sender's segment
// index: segs_ counts segment-final elements received plus SKIPPED markers
// (FIFO delivery makes this reconstruction exact; see DESIGN.md).
class ReceiverSkip : public ReceiverBase {
 public:
  ReceiverSkip(sim::EventLoop* loop, sim::FrameLink<VvMsg>* tx, const SyncOptions* opt,
               RotatingVector* a, bool initially_concurrent)
      : ReceiverBase(loop, tx, opt, a), reconcile_(initially_concurrent) {}

  void on_message(const VvMsg& m) override {
    switch (m.kind) {
      case VvMsg::Kind::kHalt:
        // Sender exhausted its vector: close off the run of rotated-in
        // elements if anything of ours follows it in ≺_a. Elements spliced
        // in by this session need not dominate what sits behind them, so
        // without the boundary a later SYNCS could treat the region as one
        // segment and skip elements its peer lacks. (Not spelled out in the
        // paper's pseudocode; see DESIGN.md "deviations".)
        if (!finished_ && prev_.has_value() && a_->next(*prev_).has_value()) {
          a_->set_segment_bit(*prev_, true);
        }
        mark_finished();
        return;
      case VvMsg::Kind::kSkipped:
        if (finished_) return;  // in-flight marker after our HALT: not γ
        ++segs_;
        skipping_ = false;
        ++c_.segments_skipped;
        return;
      case VvMsg::Kind::kElem:
        break;
      default:
        OPTREP_CHECK_MSG(false, "unexpected message at SYNCS receiver");
    }
    if (finished_) {
      ++c_.after_halt;
      return;
    }
    bool responded = false;
    if (m.value <= a_->value(m.site)) {
      if (!skipping_) {
        // Alg 4 lines 9–11, strengthened: the run of rotated-in elements is
        // interrupted, so it must be closed off *whenever* it exists — not
        // only when `reconcile` is already set. (The paper guards this with
        // `reconcile`, but the flag may only become true from this very
        // element's conflict bit, after later insertions have already been
        // spliced in front of elements they do not dominate; a finer
        // segmentation is always safe. See DESIGN.md "deviations".)
        if (prev_.has_value()) a_->set_segment_bit(*prev_, true);
        if (m.conflict) {
          reconcile_ = true;
          ++c_.redundant;
          trace(obs::TraceEventType::kElemRedundant, m);
          if (!m.segment) {
            // Something of this sender segment remains to be skipped.
            send(VvMsg{.kind = VvMsg::Kind::kSkip, .arg = segs_});
            ++c_.skip_msgs;
            skipping_ = true;
            responded = true;  // SKIP doubles as the stop-and-wait ack
          }
        } else {
          halt_sender();  // halt-trigger element is not part of Γ (§3.3)
          responded = true;
        }
      } else {
        ++c_.straggler;  // in-flight element of a segment we asked to skip
        trace(obs::TraceEventType::kElemStraggler, m);
      }
    } else {
      skipping_ = false;  // Alg 4 line 21
      a_->rotate_after(prev_, m.site);
      prev_ = m.site;
      a_->set_element(m.site, m.value, reconcile_ || m.conflict, m.segment);
      ++c_.applied;
      trace(obs::TraceEventType::kElemApplied, m);
    }
    // Segment bookkeeping from the received stream.
    if (m.segment) {
      ++segs_;
      skipping_ = false;
    }
    if (!responded && !finished_) ack();
  }

 private:
  bool reconcile_;
  bool skipping_{false};
  std::uint64_t segs_{0};
};

struct SessionWiring {
  explicit SessionWiring(sim::EventLoop& loop, const SyncOptions& opt)
      : duplex(&loop, opt.net), opt_(&opt), tracer(opt.tracer), session(opt.trace_session) {
    // Realistic framed-byte accounting (vv/frame_codec.h) and the control
    // flush rule. Function pointers and captureless lambdas: no per-session
    // heap allocation.
    duplex.b_to_a().set_frame_sizer(&frame_wire_bytes);
    duplex.a_to_b().set_frame_sizer(&frame_wire_bytes);
    duplex.b_to_a().set_msg_sizer(&frame_wire_bytes_single);
    duplex.a_to_b().set_msg_sizer(&frame_wire_bytes_single);
    const auto flush = [](const VvMsg& m) { return m.kind != VvMsg::Kind::kElem; };
    duplex.b_to_a().set_flush_after(flush);
    duplex.a_to_b().set_flush_after(flush);
    // Taps are read in place from the options (which outlive the session) —
    // copying them here would clone a std::function per tap per session.
    bool any_tap = false;
    for (const auto& t : opt.taps) any_tap = any_tap || static_cast<bool>(t);
    if (any_tap || tracer != nullptr) {
      duplex.b_to_a().set_tap([this](sim::Time at, const VvMsg& m, std::uint64_t bits) {
        observe(at, true, m, bits);
      });
      duplex.a_to_b().set_tap([this](sim::Time at, const VvMsg& m, std::uint64_t bits) {
        observe(at, false, m, bits);
      });
    }
  }

  void observe(sim::Time at, bool forward, const VvMsg& m, std::uint64_t bits) {
    for (const auto& t : opt_->taps) {
      if (t) t(forward, m);
    }
    if (tracer != nullptr) {
      tracer->record(obs::TraceEvent{.at = at,
                                     .session = session,
                                     .type = wire_event_type(forward, m),
                                     .forward = forward,
                                     .site = m.site,
                                     .value = m.kind == VvMsg::Kind::kSkip ? m.arg : m.value,
                                     .bits = bits});
    }
  }

  void trace_boundary(sim::EventLoop& loop, obs::TraceEventType type, std::uint64_t bits) {
    if (tracer != nullptr) {
      tracer->record(obs::TraceEvent{.at = loop.now(),
                                     .session = session,
                                     .type = type,
                                     .forward = true,
                                     .site = SiteId{},
                                     .value = 0,
                                     .bits = bits});
    }
  }

  // Close any open frames (end of session is a flush point) and harvest the
  // framing figures plus the event-loop dispatch count into the report.
  void harvest_framing(sim::EventLoop& loop, std::uint64_t events_before, SyncReport& r) {
    duplex.b_to_a().close_frame();
    duplex.a_to_b().close_frame();
    r.frames_fwd = duplex.b_to_a().stats().frames;
    r.frames_rev = duplex.a_to_b().stats().frames;
    r.framed_bytes_fwd = duplex.b_to_a().stats().framed_wire_bytes;
    r.framed_bytes_rev = duplex.a_to_b().stats().framed_wire_bytes;
    r.loop_events = loop.executed_events() - events_before;
  }

  sim::FrameDuplex<VvMsg> duplex;  // a_to_b: receiver→sender, b_to_a: sender→receiver
  const SyncOptions* opt_;
  obs::Tracer* tracer{nullptr};
  std::uint64_t session{0};
};

SyncReport assemble_report(Ordering rel, std::uint64_t compare_bits, sim::Time t0,
                           sim::Time t_end, const sim::LinkStats& fwd,
                           const sim::LinkStats& rev, std::uint64_t elems_sent,
                           const ReceiverCounters& rc, const CostModel& cm) {
  SyncReport r;
  r.initial_relation = rel;
  r.bits_fwd = fwd.model_bits + compare_bits / 2;
  r.bits_rev = rev.model_bits + compare_bits / 2;
  r.bytes_fwd = fwd.wire_bytes + (compare_bits > 0 ? wire_bytes_elem(false) : 0);
  r.bytes_rev = rev.wire_bytes + (compare_bits > 0 ? wire_bytes_elem(false) : 0);
  r.msgs_fwd = fwd.messages + (compare_bits > 0 ? 1 : 0);
  r.msgs_rev = rev.messages + (compare_bits > 0 ? 1 : 0);
  r.elems_sent = elems_sent;
  r.elems_applied = rc.applied;
  r.elems_redundant = rc.redundant;
  r.elems_straggler = rc.straggler;
  r.elems_after_halt = rc.after_halt;
  r.skip_msgs = rc.skip_msgs;
  r.segments_skipped = rc.segments_skipped;
  r.ack_msgs = rc.acks;
  r.duration = t_end - t0;
  r.receiver_done_at = (rc.done_at > t0 ? rc.done_at - t0 : 0);
  (void)cm;
  return r;
}

template <class Receiver, class... ReceiverArgs>
SyncReport run_rotating_session(sim::EventLoop& loop, RotatingVector& a,
                                const RotatingVector& b, const SyncOptions& opt,
                                Ordering rel, std::uint64_t compare_bits,
                                ReceiverArgs&&... rargs) {
  SessionWiring w(loop, opt);
  ElementSender sender(&loop, &w.duplex.b_to_a(), &opt, &b);
  Receiver receiver(&loop, &w.duplex.a_to_b(), &opt, &a,
                    std::forward<ReceiverArgs>(rargs)...);
  w.duplex.b_to_a().set_receiver([&receiver](const VvMsg& m) { receiver.on_message(m); });
  w.duplex.a_to_b().set_receiver([&sender](const VvMsg& m) { sender.on_message(m); });
  const sim::Time t0 = loop.now();
  const std::uint64_t ev0 = loop.executed_events();
  w.trace_boundary(loop, obs::TraceEventType::kSessionBegin, 0);
  loop.schedule(t0, [&sender] { sender.start(); });
  const sim::Time t_end = loop.run();
  SyncReport r = assemble_report(rel, compare_bits, t0, t_end, w.duplex.b_to_a().stats(),
                                 w.duplex.a_to_b().stats(), sender.elems_sent(),
                                 receiver.counters(), opt.cost);
  w.harvest_framing(loop, ev0, r);
  w.trace_boundary(loop, obs::TraceEventType::kSessionEnd, r.total_bits());
  publish_session_metrics(opt.metrics, r);
  return r;
}

Ordering resolve_relation(const RotatingVector& a, const RotatingVector& b,
                          const SyncOptions& opt, std::uint64_t* compare_bits) {
  if (opt.known_relation.has_value()) {
    *compare_bits = 0;
    return *opt.known_relation;
  }
  *compare_bits = compare_cost_bits(opt.cost);
  return compare_fast(a, b);
}

}  // namespace

SyncReport sync_basic(sim::EventLoop& loop, RotatingVector& a, const RotatingVector& b,
                      const SyncOptions& opt) {
  OPTREP_SPAN("vv.syncb");
  std::uint64_t cb = 0;
  const Ordering rel = resolve_relation(a, b, opt, &cb);
  return run_rotating_session<ReceiverBasic>(loop, a, b, opt, rel, cb);
}

SyncReport sync_conflict(sim::EventLoop& loop, RotatingVector& a, const RotatingVector& b,
                         const SyncOptions& opt) {
  OPTREP_SPAN("vv.syncc");
  std::uint64_t cb = 0;
  const Ordering rel = resolve_relation(a, b, opt, &cb);
  return run_rotating_session<ReceiverConflict>(loop, a, b, opt, rel, cb,
                                                rel == Ordering::kConcurrent);
}

SyncReport sync_skip(sim::EventLoop& loop, RotatingVector& a, const RotatingVector& b,
                     const SyncOptions& opt) {
  OPTREP_SPAN("vv.syncs");
  std::uint64_t cb = 0;
  const Ordering rel = resolve_relation(a, b, opt, &cb);
  return run_rotating_session<ReceiverSkip>(loop, a, b, opt, rel, cb,
                                            rel == Ordering::kConcurrent);
}

SyncReport sync_rotating(sim::EventLoop& loop, RotatingVector& a, const RotatingVector& b,
                         const SyncOptions& opt) {
  switch (opt.kind) {
    case VectorKind::kBrv: return sync_basic(loop, a, b, opt);
    case VectorKind::kCrv: return sync_conflict(loop, a, b, opt);
    case VectorKind::kSrv: return sync_skip(loop, a, b, opt);
  }
  OPTREP_CHECK(false);
  return {};
}

namespace {

// Baseline sessions: the send set is known upfront, so the sender enqueues
// everything (the link's FIFO pacing models transmission time) and the
// receiver simply joins.
SyncReport run_baseline_session(sim::EventLoop& loop, VersionVector& a,
                                const std::vector<std::pair<SiteId, std::uint64_t>>& to_send,
                                Ordering rel, const SyncOptions& opt) {
  SessionWiring w(loop, opt);
  std::uint64_t applied = 0;
  std::uint64_t redundant = 0;
  sim::Time done_at = 0;
  w.duplex.b_to_a().set_receiver([&](const VvMsg& m) {
    if (m.kind == VvMsg::Kind::kHalt) {
      done_at = loop.now();
      return;
    }
    const bool is_new = m.value > a.value(m.site);
    if (is_new) {
      a.set(m.site, m.value);
      ++applied;
    } else {
      ++redundant;
    }
    if (w.tracer != nullptr) {
      w.tracer->record(obs::TraceEvent{.at = loop.now(),
                                       .session = w.session,
                                       .type = is_new ? obs::TraceEventType::kElemApplied
                                                      : obs::TraceEventType::kElemRedundant,
                                       .forward = true,
                                       .site = m.site,
                                       .value = m.value,
                                       .bits = 0});
    }
  });
  w.duplex.a_to_b().set_receiver([](const VvMsg&) {});
  const sim::Time t0 = loop.now();
  const std::uint64_t ev0 = loop.executed_events();
  w.trace_boundary(loop, obs::TraceEventType::kSessionBegin, 0);
  loop.schedule(t0, [&] {
    for (const auto& [site, value] : to_send) {
      VvMsg m;
      m.kind = VvMsg::Kind::kElem;
      m.site = site;
      m.value = value;
      w.duplex.b_to_a().send(m, opt.cost.elem_bits(0), wire_bytes_elem(false));
    }
    w.duplex.b_to_a().send(VvMsg{.kind = VvMsg::Kind::kHalt}, opt.cost.halt_bits(),
                           wire_bytes_halt());
  });
  const sim::Time t_end = loop.run();
  ReceiverCounters rc;
  rc.applied = applied;
  rc.redundant = redundant;
  rc.done_at = done_at;
  SyncReport r = assemble_report(rel, 0, t0, t_end, w.duplex.b_to_a().stats(),
                                 w.duplex.a_to_b().stats(), to_send.size(), rc, opt.cost);
  w.harvest_framing(loop, ev0, r);
  w.trace_boundary(loop, obs::TraceEventType::kSessionEnd, r.total_bits());
  publish_session_metrics(opt.metrics, r);
  return r;
}

std::vector<std::pair<SiteId, std::uint64_t>> sorted_elements(const VersionVector& v) {
  std::vector<std::pair<SiteId, std::uint64_t>> out(v.elements().begin(), v.elements().end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

SyncReport sync_traditional(sim::EventLoop& loop, VersionVector& a, const VersionVector& b,
                            const SyncOptions& opt) {
  OPTREP_SPAN("vv.traditional");
  const Ordering rel = a.compare(b);
  return run_baseline_session(loop, a, sorted_elements(b), rel, opt);
}

SyncReport sync_singhal_kshemkalyani(sim::EventLoop& loop, VersionVector& a,
                                     const VersionVector& b, VersionVector& last_sent,
                                     const SyncOptions& opt) {
  OPTREP_SPAN("vv.sk");
  const Ordering rel = a.compare(b);
  std::vector<std::pair<SiteId, std::uint64_t>> delta;
  for (const auto& [site, value] : sorted_elements(b)) {
    if (value > last_sent.value(site)) delta.emplace_back(site, value);
  }
  last_sent = b;
  return run_baseline_session(loop, a, delta, rel, opt);
}

namespace {

// One endpoint of the COMPARE session: sends its probe, answers the peer's
// probe with a domination bit, and decides from (own bit, peer bit).
class ComparePeer {
 public:
  ComparePeer(const RotatingVector* v, sim::FrameLink<VvMsg>* tx, const CostModel* cm)
      : v_(v), tx_(tx), cm_(cm) {}

  void start() {
    VvMsg probe{.kind = VvMsg::Kind::kProbe};
    if (const auto f = v_->front()) {
      probe.site = f->site;
      probe.value = f->value;
    }
    tx_->send(probe, cm_->compare_probe_bits(), wire_bytes_elem(false));
  }

  void on_message(const VvMsg& m) {
    switch (m.kind) {
      case VvMsg::Kind::kProbe: {
        peer_probe_ = m;
        // Do we cover the peer's probe? (Empty probe: trivially covered;
        // our emptiness makes us cover nothing but the empty probe.)
        const bool covers = m.value == 0 || v_->value(m.site) >= m.value;
        // Our own bit: does the peer cover our front? We cannot know — the
        // peer tells us; we only emit our verdict about *their* probe.
        VvMsg verdict{.kind = VvMsg::Kind::kVerdict, .arg = covers ? 1u : 0u};
        i_cover_peer_ = covers;
        tx_->send(verdict, 1, 1);
        break;
      }
      case VvMsg::Kind::kVerdict:
        peer_covers_me_ = m.arg != 0;
        has_verdict_ = true;
        break;
      default:
        OPTREP_CHECK_MSG(false, "unexpected message in COMPARE session");
    }
  }

  Ordering decide() const {
    OPTREP_CHECK_MSG(has_verdict_, "COMPARE session incomplete");
    const bool self_empty = v_->empty();
    const bool peer_empty = peer_probe_.value == 0;
    if (self_empty && peer_empty) return Ordering::kEqual;
    if (self_empty) return Ordering::kBefore;
    if (peer_empty) return Ordering::kAfter;
    if (i_cover_peer_ && peer_covers_me_) return Ordering::kEqual;
    if (peer_covers_me_) return Ordering::kBefore;  // peer knows all we know
    if (i_cover_peer_) return Ordering::kAfter;
    return Ordering::kConcurrent;
  }

 private:
  const RotatingVector* v_;
  sim::FrameLink<VvMsg>* tx_;
  const CostModel* cm_;
  VvMsg peer_probe_{};
  bool i_cover_peer_{false};
  bool peer_covers_me_{false};
  bool has_verdict_{false};
};

}  // namespace

CompareSessionResult compare_session(sim::EventLoop& loop, const RotatingVector& a,
                                     const RotatingVector& b, const sim::NetConfig& net,
                                     const CostModel& cost) {
  OPTREP_SPAN("vv.compare");
  // COMPARE rides the framed transport too: probes and verdicts are control
  // messages (every frame flushes), so framing only affects byte accounting.
  sim::FrameDuplex<VvMsg> duplex(&loop, net);
  duplex.a_to_b().set_msg_sizer(&frame_wire_bytes_single);
  duplex.b_to_a().set_msg_sizer(&frame_wire_bytes_single);
  duplex.a_to_b().set_frame_sizer(&frame_wire_bytes);
  duplex.b_to_a().set_frame_sizer(&frame_wire_bytes);
  const auto flush = [](const VvMsg& m) { return m.kind != VvMsg::Kind::kElem; };
  duplex.a_to_b().set_flush_after(flush);
  duplex.b_to_a().set_flush_after(flush);
  ComparePeer pa(&a, &duplex.a_to_b(), &cost);
  ComparePeer pb(&b, &duplex.b_to_a(), &cost);
  duplex.a_to_b().set_receiver([&pb](const VvMsg& m) { pb.on_message(m); });
  duplex.b_to_a().set_receiver([&pa](const VvMsg& m) { pa.on_message(m); });
  const sim::Time t0 = loop.now();
  loop.schedule(t0, [&pa, &pb] {
    pa.start();
    pb.start();
  });
  const sim::Time t_end = loop.run();
  CompareSessionResult r;
  r.at_a = pa.decide();
  r.at_b = pb.decide();
  r.total_bits = duplex.a_to_b().stats().model_bits + duplex.b_to_a().stats().model_bits;
  r.duration = t_end - t0;
  return r;
}

}  // namespace optrep::vv
