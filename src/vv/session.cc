// Thin I/O binding for the sans-I/O protocol cores (vv/protocol/).
//
// All protocol logic — SYNCB/SYNCC/SYNCS, the two baselines, COMPARE — lives
// in pure step(event)->actions state machines. This file owns everything the
// cores must not: the event loop, the framed links, speculative send/revoke
// bookkeeping, message sizing (§3.3 model bits + realistic bytes), tracing,
// metrics, fault injection, and the retry loop (sync_with_recovery).
#include "vv/session.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "obs/prof.h"
#include "sim/fault_link.h"
#include "vv/codec.h"
#include "vv/frame_codec.h"
#include "vv/protocol/baseline_core.h"
#include "vv/protocol/compare_core.h"
#include "vv/protocol/core.h"
#include "vv/protocol/receiver_core.h"
#include "vv/protocol/sender_core.h"

namespace optrep::vv {

std::uint64_t msg_model_bits(const CostModel& cm, VectorKind kind, const VvMsg& m) {
  switch (m.kind) {
    case VvMsg::Kind::kElem:
      switch (kind) {
        case VectorKind::kBrv: return cm.elem_bits(0);
        case VectorKind::kCrv: return cm.elem_bits(1);
        case VectorKind::kSrv: return cm.elem_bits(2);
      }
      return cm.elem_bits(2);
    case VvMsg::Kind::kHalt: return cm.halt_bits();
    case VvMsg::Kind::kSkip: return cm.skip_bits();
    case VvMsg::Kind::kSkipped: return 2;  // O(1) marker; same budget as HALT
    case VvMsg::Kind::kAck: return cm.ack_bits();
    case VvMsg::Kind::kProbe: return cm.compare_probe_bits();
    case VvMsg::Kind::kVerdict: return 1;
  }
  return 0;
}

std::uint64_t msg_wire_bytes(VectorKind kind, const VvMsg& m) {
  switch (m.kind) {
    case VvMsg::Kind::kElem: return wire_bytes_elem(kind != VectorKind::kBrv);
    case VvMsg::Kind::kHalt: return wire_bytes_halt();
    case VvMsg::Kind::kSkip: return wire_bytes_skip();
    case VvMsg::Kind::kSkipped: return wire_bytes_halt();
    case VvMsg::Kind::kAck: return wire_bytes_ack();
    case VvMsg::Kind::kProbe: return wire_bytes_elem(false);
    case VvMsg::Kind::kVerdict: return 1;
  }
  return 0;
}

std::string VvMsg::to_string() const {
  switch (kind) {
    case Kind::kElem: {
      std::string s = "ELEM(" + site_name(site) + ":" + std::to_string(value);
      if (conflict) s += ",c";
      if (segment) s += ",s";
      return s + ")";
    }
    case Kind::kHalt: return "HALT";
    case Kind::kSkip: return "SKIP(" + std::to_string(arg) + ")";
    case Kind::kSkipped: return "SKIPPED";
    case Kind::kAck: return "ACK";
    case Kind::kProbe:
      return value == 0 ? "PROBE(empty)"
                        : "PROBE(" + site_name(site) + ":" + std::to_string(value) + ")";
    case Kind::kVerdict: return arg != 0 ? "VERDICT(covers)" : "VERDICT(not)";
  }
  return "?";
}

namespace {

// Map one wire message to its typed trace event (receiver-side semantic
// events — applied/redundant/straggler — are emitted by the receiver cores
// as trace actions, where the classification happens).
obs::TraceEventType wire_event_type(bool forward, const VvMsg& m) {
  switch (m.kind) {
    case VvMsg::Kind::kElem: return obs::TraceEventType::kElemSent;
    case VvMsg::Kind::kHalt: return obs::TraceEventType::kHalt;
    case VvMsg::Kind::kSkip: return obs::TraceEventType::kSkipIssued;
    case VvMsg::Kind::kSkipped: return obs::TraceEventType::kSkipHonored;
    case VvMsg::Kind::kAck: return obs::TraceEventType::kAck;
    case VvMsg::Kind::kProbe: return obs::TraceEventType::kProbe;
    case VvMsg::Kind::kVerdict: return obs::TraceEventType::kVerdict;
  }
  (void)forward;
  return obs::TraceEventType::kElemSent;
}

// Per-session aggregates under the "vv." prefix. Runs once per session (not
// per message); instrument lookups are heterogeneous map finds, so nothing
// here allocates after the first session. Fault/violation counters are only
// touched when nonzero, keeping fault-free metric sets unchanged.
void publish_session_metrics(obs::Registry* reg, const SyncReport& r) {
  if (reg == nullptr) return;
  reg->counter("vv.sessions").inc();
  reg->counter("vv.bits_fwd").inc(r.bits_fwd);
  reg->counter("vv.bits_rev").inc(r.bits_rev);
  reg->counter("vv.bytes").inc(r.total_bytes());
  reg->counter("vv.msgs").inc(r.msgs_fwd + r.msgs_rev);
  reg->counter("vv.elems_sent").inc(r.elems_sent);
  reg->counter("vv.elems_applied").inc(r.elems_applied);
  reg->counter("vv.elems_redundant").inc(r.elems_redundant);
  reg->counter("vv.elems_after_halt").inc(r.elems_after_halt);
  reg->counter("vv.skip_msgs").inc(r.skip_msgs);
  reg->counter("vv.segments_skipped").inc(r.segments_skipped);
  reg->counter("vv.ack_msgs").inc(r.ack_msgs);
  reg->counter("vv.frames").inc(r.total_frames());
  reg->counter("vv.framed_bytes").inc(r.total_framed_bytes());
  reg->counter("vv.loop_events").inc(r.loop_events);
  if (r.total_faults() > 0) reg->counter("vv.faults_injected").inc(r.total_faults());
  if (r.faults_decode_errors > 0) {
    reg->counter("vv.faults_decode_errors").inc(r.faults_decode_errors);
  }
  if (r.protocol_violations > 0) {
    reg->counter("vv.protocol_violations").inc(r.protocol_violations);
  }
  reg->histogram("vv.session_bits").record(r.total_bits());
  // Dispatch efficiency of the transport: executed events per transmitted
  // element, x100 (framing drives this far below 100).
  reg->histogram("vv.events_per_100_elems")
      .record(r.elems_sent > 0 ? r.loop_events * 100 / r.elems_sent : r.loop_events * 100);
}

obs::FlightFault flight_fault(sim::FaultKind k, bool decode_error) {
  switch (k) {
    case sim::FaultKind::kDropped: return obs::FlightFault::kDropped;
    case sim::FaultKind::kDuplicated: return obs::FlightFault::kDuplicated;
    case sim::FaultKind::kReordered: return obs::FlightFault::kReordered;
    case sim::FaultKind::kCorrupted:
      return decode_error ? obs::FlightFault::kDecodeError : obs::FlightFault::kCorrupted;
  }
  return obs::FlightFault::kNone;
}

// Builds the bit-flip corrupter the fault injector runs over discarded
// messages: encode with the real per-message codec, flip one uniformly
// chosen bit, and attempt the typed re-decode so FaultStats can report how
// many corruptions the decoder alone would have rejected.
sim::FaultInjector<VvMsg>::Corrupter make_corrupter(CostModel cm, VectorKind kind,
                                                    Direction dir) {
  return [cm, kind, dir](VvMsg& m, Rng& rng) -> bool {
    BitWriter w;
    encode_msg(w, cm, kind, dir, m);
    if (w.bit_size() == 0) return true;
    std::vector<std::uint8_t> buf = w.bytes();
    const std::uint64_t bit = rng.below(w.bit_size());
    buf[bit / 8] ^= static_cast<std::uint8_t>(0x80u >> (bit % 8));
    BitReader r(buf);
    const MsgDecodeResult d = try_decode_msg(r, cm, kind, dir, w.bit_size());
    if (!d.ok()) return true;
    m = d.msg;
    return false;
  };
}

// Scratch action buffer shared by every driver on this thread: dispatches
// never nest (links deliver via scheduled events, never synchronously), and
// the retained capacity keeps steady-state sessions off the allocator.
protocol::Actions& scratch_actions() {
  static thread_local protocol::Actions acts;
  return acts;
}

// Pumps one protocol core over one direction of the simulated transport:
// executes the core's actions (sized counted sends, revocations, parked
// continuations, trace markers) and feeds arriving messages back as events.
// This is the only place protocol state meets the clock.
template <class Core>
class CoreDriver {
 public:
  CoreDriver(sim::EventLoop* loop, sim::FrameLink<VvMsg>* tx, const SyncOptions* opt,
             VectorKind size_kind, Core core, const std::uint64_t* causal_span = nullptr)
      : loop_(loop),
        tx_(tx),
        opt_(opt),
        size_kind_(size_kind),
        core_(std::move(core)),
        causal_span_(causal_span) {}

  // Parked continuations capture `this`: pinned to the construction address.
  CoreDriver(const CoreDriver&) = delete;
  CoreDriver& operator=(const CoreDriver&) = delete;

  Core& core() { return core_; }
  const Core& core() const { return core_; }

  void start() { dispatch(protocol::Event::start()); }
  void abort() { dispatch(protocol::Event::abort()); }

  void on_message(const VvMsg& m) {
    protocol::TailView tail;
    if (m.kind == VvMsg::Kind::kHalt || m.kind == VvMsg::Kind::kSkip) {
      // Snapshot the speculative tail of our outgoing link: the core decides
      // on revocation from counts alone (sans-I/O), and cancel_tail revokes
      // exactly the messages this peek visits.
      tx_->peek_tail([&tail](const VvMsg& q) {
        if (q.kind == VvMsg::Kind::kHalt) {
          tail.halt = true;
        } else if (q.kind == VvMsg::Kind::kElem) {
          ++tail.elems;
          if (q.segment) ++tail.segment_finals;
        }
      });
    }
    dispatch(protocol::Event::msg_arrival(m, tail));
  }

  sim::Time done_at() const { return done_at_; }

 private:
  void on_pump() {
    pending_ = 0;
    dispatch(protocol::Event::link_free());
  }

  sim::Time send(const VvMsg& m, bool revocable) {
    std::uint64_t bits = msg_model_bits(opt_->cost, size_kind_, m);
    std::uint64_t bytes = msg_wire_bytes(size_kind_, m);
    if (m.kind == VvMsg::Kind::kAck && opt_->mode == TransferMode::kIdeal) {
      bits = 0;  // kIdeal: flow control is free; measures pure algorithm cost
      bytes = 0;
    }
    return tx_->send(m, bits, bytes, revocable);
  }

  void trace(obs::TraceEventType type, const VvMsg& m) {
    // The cores' trace actions carry causal context (protocol/core.h): an
    // applied element is the moment receiver state advanced, so it becomes a
    // kApply edge on the session's span.
    if (opt_->causal != nullptr && type == obs::TraceEventType::kElemApplied) {
      opt_->causal->apply(loop_->now(), causal_span_ != nullptr ? *causal_span_ : 0,
                          m.site, m.value);
    }
    if (opt_->tracer == nullptr) return;
    opt_->tracer->record(obs::TraceEvent{.at = loop_->now(),
                                         .session = opt_->trace_session,
                                         .type = type,
                                         .forward = true,
                                         .site = m.site,
                                         .value = m.value,
                                         .bits = 0});
  }

  void dispatch(const protocol::Event& ev) {
    protocol::Actions& acts = scratch_actions();
    acts.clear();
    core_.step(ev, acts);
    // `free` tracks the link-free time reached by this dispatch's sends —
    // where kPumpWhenFree parks the continuation (the unframed pump's
    // schedule, and the last burst message's free time when framed).
    sim::Time free = loop_->now();
    for (const protocol::Action& a : acts) {
      switch (a.type) {
        case protocol::Action::Type::kSend:
          free = send(a.msg, /*revocable=*/false);
          break;
        case protocol::Action::Type::kSendRevocable:
          free = send(a.msg, /*revocable=*/true);
          break;
        case protocol::Action::Type::kRevokeTail:
          // The core already rewound its cursor from the event's TailView.
          tx_->cancel_tail([](const VvMsg&) {});
          break;
        case protocol::Action::Type::kPumpWhenFree:
          pending_ = loop_->schedule(free, [this] { on_pump(); });
          break;
        case protocol::Action::Type::kCaptureResume:
          resume_ = std::max(loop_->now(), tx_->free_at());
          break;
        case protocol::Action::Type::kRepumpAtResume:
          if (pending_ != 0) loop_->cancel(pending_);
          pending_ = loop_->schedule(resume_, [this] { on_pump(); });
          break;
        case protocol::Action::Type::kFinished:
          if (done_at_ == 0) done_at_ = loop_->now();
          if (pending_ != 0) {
            loop_->cancel(pending_);
            pending_ = 0;
          }
          break;
        case protocol::Action::Type::kTraceApplied:
          trace(obs::TraceEventType::kElemApplied, a.msg);
          break;
        case protocol::Action::Type::kTraceRedundant:
          trace(obs::TraceEventType::kElemRedundant, a.msg);
          break;
        case protocol::Action::Type::kTraceStraggler:
          trace(obs::TraceEventType::kElemStraggler, a.msg);
          break;
      }
    }
  }

  sim::EventLoop* loop_;
  sim::FrameLink<VvMsg>* tx_;
  const SyncOptions* opt_;
  VectorKind size_kind_;
  Core core_;
  const std::uint64_t* causal_span_{nullptr};  // wiring's session span id
  sim::EventLoop::EventId pending_{0};
  sim::Time resume_{0};
  sim::Time done_at_{0};
};

struct SessionWiring {
  using Handler = std::function<void(const VvMsg&)>;

  explicit SessionWiring(sim::EventLoop& loop, const SyncOptions& opt)
      : duplex(&loop, opt.net),
        loop_(&loop),
        opt_(&opt),
        tracer(opt.tracer),
        recorder(opt.recorder),
        causal(opt.causal),
        session(opt.trace_session) {
    // Realistic framed-byte accounting (vv/frame_codec.h) and the control
    // flush rule. Function pointers and captureless lambdas: no per-session
    // heap allocation.
    duplex.b_to_a().set_frame_sizer(&frame_wire_bytes);
    duplex.a_to_b().set_frame_sizer(&frame_wire_bytes);
    duplex.b_to_a().set_msg_sizer(&frame_wire_bytes_single);
    duplex.a_to_b().set_msg_sizer(&frame_wire_bytes_single);
    const auto flush = [](const VvMsg& m) { return m.kind != VvMsg::Kind::kElem; };
    duplex.b_to_a().set_flush_after(flush);
    duplex.a_to_b().set_flush_after(flush);
    // Taps are read in place from the options (which outlive the session) —
    // copying them here would clone a std::function per tap per session.
    bool any_tap = false;
    for (const auto& t : opt.taps) any_tap = any_tap || static_cast<bool>(t);
    if (any_tap || tracer != nullptr || recorder != nullptr || causal != nullptr) {
      duplex.b_to_a().set_tap([this](sim::Time at, const VvMsg& m, std::uint64_t bits) {
        observe(at, true, m, bits);
      });
      duplex.a_to_b().set_tap([this](sim::Time at, const VvMsg& m, std::uint64_t bits) {
        observe(at, false, m, bits);
      });
    }
    if (causal != nullptr) {
      // The session's hop span, opened at construction (== session start
      // time). The delivery taps stamp the receive half of every
      // send → receive edge at the message's exact arrival instant.
      span = causal->begin_span(loop.now(), opt.causal_parent, opt.src_site,
                                opt.dst_site, opt.causal_attempt);
      duplex.b_to_a().set_delivery_tap([this](sim::Time at, const VvMsg& m) {
        observe_recv(at, true, m);
      });
      duplex.a_to_b().set_delivery_tap([this](sim::Time at, const VvMsg& m) {
        observe_recv(at, false, m);
      });
    }
  }

  // Install the endpoints' delivery handlers. When fault injection is on, a
  // FaultInjector interposes per direction; with faults off no injector is
  // constructed and the delivery path is identical to the pre-fault build
  // (fault-free bit-identity is a hard invariant, tested).
  void connect(Handler to_receiver, Handler to_sender, VectorKind size_kind) {
    if (opt_->net.faults.enabled()) {
      // Reordered messages are held one propagation latency by default (plus
      // ε so zero-latency links still reorder).
      const sim::Time hold = opt_->net.latency_s + 1e-6;
      // Decorrelate sessions sharing one loop: each session would otherwise
      // replay the identical prefix of the (seed, salt) fault stream — a few
      // unlucky leading rolls would then repeat in every session of a run.
      // The executed-event count is deterministic, so runs stay reproducible.
      sim::NetConfig::FaultConfig fc = opt_->net.faults;
      fc.seed = sim::fault_stream_seed(fc.seed, 0xA5A5ULL + loop_->executed_events());
      inj_fwd.emplace(loop_, fc, sim::kFaultSaltForward, hold);
      inj_rev.emplace(loop_, fc, sim::kFaultSaltReverse, hold);
      inj_fwd->set_receiver(std::move(to_receiver));
      inj_rev->set_receiver(std::move(to_sender));
      inj_fwd->set_corrupter(make_corrupter(opt_->cost, size_kind, Direction::kForward));
      inj_rev->set_corrupter(make_corrupter(opt_->cost, size_kind, Direction::kReverse));
      if (recorder != nullptr || causal != nullptr) {
        inj_fwd->set_observer([this](sim::FaultKind k, bool dec, const VvMsg& m) {
          on_fault(true, k, dec, m);
        });
        inj_rev->set_observer([this](sim::FaultKind k, bool dec, const VvMsg& m) {
          on_fault(false, k, dec, m);
        });
      }
      duplex.b_to_a().set_receiver([this](const VvMsg& m) { inj_fwd->deliver(m); });
      duplex.a_to_b().set_receiver([this](const VvMsg& m) { inj_rev->deliver(m); });
    } else {
      duplex.b_to_a().set_receiver(std::move(to_receiver));
      duplex.a_to_b().set_receiver(std::move(to_sender));
    }
  }

  void observe(sim::Time at, bool forward, const VvMsg& m, std::uint64_t bits) {
    for (const auto& t : opt_->taps) {
      if (t) t(forward, m);
    }
    if (tracer != nullptr) {
      tracer->record(obs::TraceEvent{.at = at,
                                     .session = session,
                                     .type = wire_event_type(forward, m),
                                     .forward = forward,
                                     .site = m.site,
                                     .value = m.kind == VvMsg::Kind::kSkip ? m.arg : m.value,
                                     .bits = bits});
    }
    if (recorder != nullptr) {
      recorder->record(obs::FlightRecord{
          .at = at,
          .session = session,
          .type = wire_event_type(forward, m),
          .forward = forward,
          .site = m.site,
          .value = m.kind == VvMsg::Kind::kSkip ? m.arg : m.value,
          .bits = bits,
          .fault = obs::FlightFault::kNone});
    }
    if (causal != nullptr) {
      const bool upd = protocol::carries_update_context(m);
      causal->wire(at, /*recv=*/false, span, forward, upd ? m.site : SiteId{},
                   upd ? m.value : (m.kind == VvMsg::Kind::kSkip ? m.arg : 0), bits);
    }
  }

  // Delivery tap: the receive half of a send → receive edge, stamped at the
  // message's arrival instant (before any fault-injector verdict — a dropped
  // message shows a recv followed by its kFault). Bits are charged on the
  // send event; the receive edge carries timing only.
  void observe_recv(sim::Time at, bool forward, const VvMsg& m) {
    const bool upd = protocol::carries_update_context(m);
    causal->wire(at, /*recv=*/true, span, forward, upd ? m.site : SiteId{},
                 upd ? m.value : (m.kind == VvMsg::Kind::kSkip ? m.arg : 0), 0);
  }

  // Fault-injection observer: annotate the affected message in the ring. A
  // typed decode error is the anomaly class worth a post-mortem on its own —
  // it means a corruption got past the model's checksum assumption and only
  // the codec caught it — so it also triggers the freeze.
  void on_fault(bool forward, sim::FaultKind k, bool decode_error, const VvMsg& m) {
    const obs::FlightFault f = flight_fault(k, decode_error);
    if (recorder != nullptr) {
      recorder->record(obs::FlightRecord{
          .at = loop_->now(),
          .session = session,
          .type = wire_event_type(forward, m),
          .forward = forward,
          .site = m.site,
          .value = m.kind == VvMsg::Kind::kSkip ? m.arg : m.value,
          .bits = 0,
          .fault = f});
      if (f == obs::FlightFault::kDecodeError) {
        recorder->trigger("decode_error", loop_->now());
      }
    }
    if (causal != nullptr) {
      causal->fault(loop_->now(), span, forward, f, m.site,
                    m.kind == VvMsg::Kind::kSkip ? m.arg : m.value);
    }
  }

  void trace_boundary(sim::EventLoop& loop, obs::TraceEventType type, std::uint64_t bits) {
    if (tracer != nullptr) {
      tracer->record(obs::TraceEvent{.at = loop.now(),
                                     .session = session,
                                     .type = type,
                                     .forward = true,
                                     .site = SiteId{},
                                     .value = 0,
                                     .bits = bits});
    }
  }

  // Close any open frames (end of session is a flush point) and harvest the
  // framing figures, the event-loop dispatch count, and the fault statistics
  // into the report.
  void harvest_framing(sim::EventLoop& loop, std::uint64_t events_before, SyncReport& r) {
    duplex.b_to_a().close_frame();
    duplex.a_to_b().close_frame();
    r.frames_fwd = duplex.b_to_a().stats().frames;
    r.frames_rev = duplex.a_to_b().stats().frames;
    r.framed_bytes_fwd = duplex.b_to_a().stats().framed_wire_bytes;
    r.framed_bytes_rev = duplex.a_to_b().stats().framed_wire_bytes;
    r.loop_events = loop.executed_events() - events_before;
    if (inj_fwd.has_value()) {
      r.faults_dropped = inj_fwd->stats().dropped + inj_rev->stats().dropped;
      r.faults_duplicated = inj_fwd->stats().duplicated + inj_rev->stats().duplicated;
      r.faults_reordered = inj_fwd->stats().reordered + inj_rev->stats().reordered;
      r.faults_corrupted = inj_fwd->stats().corrupted + inj_rev->stats().corrupted;
      r.faults_decode_errors =
          inj_fwd->stats().corrupt_decode_errors + inj_rev->stats().corrupt_decode_errors;
    }
  }

  sim::FrameDuplex<VvMsg> duplex;  // a_to_b: receiver→sender, b_to_a: sender→receiver
  sim::EventLoop* loop_;
  const SyncOptions* opt_;
  obs::Tracer* tracer{nullptr};
  obs::FlightRecorder* recorder{nullptr};
  obs::CausalTracer* causal{nullptr};
  std::uint64_t span{0};  // this session's causal hop span (0 when untraced)
  std::uint64_t session{0};
  std::optional<sim::FaultInjector<VvMsg>> inj_fwd;
  std::optional<sim::FaultInjector<VvMsg>> inj_rev;
};

// The one shared report builder: rotating sessions and baseline sessions
// fill the same fields from the same sources (link stats, receiver counters,
// timing) instead of each assembling a SyncReport by hand.
struct SessionAccounting {
  Ordering rel{Ordering::kEqual};
  std::uint64_t compare_bits{0};
  sim::Time t0{0};
  sim::Time t_end{0};
  const sim::LinkStats* fwd{nullptr};
  const sim::LinkStats* rev{nullptr};
  std::uint64_t elems_sent{0};
  const protocol::ReceiverCounters* rc{nullptr};
  sim::Time receiver_done_at{0};
  std::uint64_t sender_violations{0};

  SyncReport build() const {
    SyncReport r;
    r.initial_relation = rel;
    r.bits_fwd = fwd->model_bits + compare_bits / 2;
    r.bits_rev = rev->model_bits + compare_bits / 2;
    r.bytes_fwd = fwd->wire_bytes + (compare_bits > 0 ? wire_bytes_elem(false) : 0);
    r.bytes_rev = rev->wire_bytes + (compare_bits > 0 ? wire_bytes_elem(false) : 0);
    r.msgs_fwd = fwd->messages + (compare_bits > 0 ? 1 : 0);
    r.msgs_rev = rev->messages + (compare_bits > 0 ? 1 : 0);
    r.elems_sent = elems_sent;
    r.elems_applied = rc->applied;
    r.elems_redundant = rc->redundant;
    r.elems_straggler = rc->straggler;
    r.elems_after_halt = rc->after_halt;
    r.skip_msgs = rc->skip_msgs;
    r.segments_skipped = rc->segments_skipped;
    r.ack_msgs = rc->acks;
    r.duration = t_end - t0;
    r.receiver_done_at = (receiver_done_at > t0 ? receiver_done_at - t0 : 0);
    r.protocol_violations = sender_violations + rc->violations;
    return r;
  }
};

template <class ReceiverCore, class... ReceiverArgs>
SyncReport run_rotating_session(sim::EventLoop& loop, RotatingVector& a,
                                const RotatingVector& b, const SyncOptions& opt,
                                Ordering rel, std::uint64_t compare_bits,
                                ReceiverArgs&&... rargs) {
  SessionWiring w(loop, opt);
  protocol::ElementSenderCore::Config scfg;
  scfg.skip_enabled = opt.kind == VectorKind::kSrv;
  scfg.pipelined = opt.mode == TransferMode::kPipelined;
  scfg.framed = w.duplex.b_to_a().framed();
  scfg.burst = scfg.framed ? opt.net.frame_budget : 1;
  CoreDriver<protocol::ElementSenderCore> sender(
      &loop, &w.duplex.b_to_a(), &opt, opt.kind, protocol::ElementSenderCore(scfg, &b),
      &w.span);
  CoreDriver<ReceiverCore> receiver(
      &loop, &w.duplex.a_to_b(), &opt, opt.kind,
      ReceiverCore(scfg.pipelined, &a, std::forward<ReceiverArgs>(rargs)...), &w.span);
  w.connect([&receiver](const VvMsg& m) { receiver.on_message(m); },
            [&sender](const VvMsg& m) { sender.on_message(m); }, opt.kind);
  const sim::Time t0 = loop.now();
  const std::uint64_t ev0 = loop.executed_events();
  w.trace_boundary(loop, obs::TraceEventType::kSessionBegin, 0);
  loop.schedule(t0, [&sender] { sender.start(); });
  const sim::Time t_end = loop.run();
  if (opt.net.faults.enabled() && !receiver.core().finished()) {
    // The attempt stalled (a dropped HALT/ACK): tear the receiver down so it
    // closes any open SRV segment run — partial state must stay safe for the
    // next attempt and for future sessions.
    receiver.abort();
  }
  const SessionAccounting acc{rel,
                              compare_bits,
                              t0,
                              t_end,
                              &w.duplex.b_to_a().stats(),
                              &w.duplex.a_to_b().stats(),
                              sender.core().elems_sent(),
                              &receiver.core().counters(),
                              receiver.done_at(),
                              sender.core().violations()};
  SyncReport r = acc.build();
  w.harvest_framing(loop, ev0, r);
  w.trace_boundary(loop, obs::TraceEventType::kSessionEnd, r.total_bits());
  if (w.causal != nullptr) {
    // `ok` = the receiver reached clean protocol quiescence (always true
    // fault-free; under faults a dropped control message can strand it).
    w.causal->end_span(loop.now(), w.span, r.total_bits(), receiver.core().finished());
    r.causal_span = w.span;
  }
  publish_session_metrics(opt.metrics, r);
  return r;
}

Ordering resolve_relation(const RotatingVector& a, const RotatingVector& b,
                          const SyncOptions& opt, std::uint64_t* compare_bits) {
  if (opt.known_relation.has_value()) {
    *compare_bits = 0;
    return *opt.known_relation;
  }
  *compare_bits = compare_cost_bits(opt.cost);
  return compare_fast(a, b);
}

}  // namespace

SyncReport sync_basic(sim::EventLoop& loop, RotatingVector& a, const RotatingVector& b,
                      const SyncOptions& opt) {
  OPTREP_SPAN("vv.syncb");
  std::uint64_t cb = 0;
  const Ordering rel = resolve_relation(a, b, opt, &cb);
  return run_rotating_session<protocol::BasicReceiverCore>(loop, a, b, opt, rel, cb);
}

SyncReport sync_conflict(sim::EventLoop& loop, RotatingVector& a, const RotatingVector& b,
                         const SyncOptions& opt) {
  OPTREP_SPAN("vv.syncc");
  std::uint64_t cb = 0;
  const Ordering rel = resolve_relation(a, b, opt, &cb);
  return run_rotating_session<protocol::ConflictReceiverCore>(loop, a, b, opt, rel, cb,
                                                              rel == Ordering::kConcurrent);
}

SyncReport sync_skip(sim::EventLoop& loop, RotatingVector& a, const RotatingVector& b,
                     const SyncOptions& opt) {
  OPTREP_SPAN("vv.syncs");
  std::uint64_t cb = 0;
  const Ordering rel = resolve_relation(a, b, opt, &cb);
  return run_rotating_session<protocol::SkipReceiverCore>(loop, a, b, opt, rel, cb,
                                                          rel == Ordering::kConcurrent);
}

SyncReport sync_rotating(sim::EventLoop& loop, RotatingVector& a, const RotatingVector& b,
                         const SyncOptions& opt) {
  switch (opt.kind) {
    case VectorKind::kBrv: return sync_basic(loop, a, b, opt);
    case VectorKind::kCrv: return sync_conflict(loop, a, b, opt);
    case VectorKind::kSrv: return sync_skip(loop, a, b, opt);
  }
  OPTREP_CHECK(false);
  return {};
}

namespace {

// Fold one attempt's traffic/element/fault accounting into the recovery
// total. Retry attempts additionally charge recovery_bits.
void accumulate_attempt(SyncReport& total, const SyncReport& r, bool retry_attempt,
                        sim::Time attempt_offset) {
  total.bits_fwd += r.bits_fwd;
  total.bits_rev += r.bits_rev;
  total.bytes_fwd += r.bytes_fwd;
  total.bytes_rev += r.bytes_rev;
  total.msgs_fwd += r.msgs_fwd;
  total.msgs_rev += r.msgs_rev;
  total.frames_fwd += r.frames_fwd;
  total.frames_rev += r.frames_rev;
  total.framed_bytes_fwd += r.framed_bytes_fwd;
  total.framed_bytes_rev += r.framed_bytes_rev;
  total.loop_events += r.loop_events;
  total.elems_sent += r.elems_sent;
  total.elems_applied += r.elems_applied;
  total.elems_redundant += r.elems_redundant;
  total.elems_straggler += r.elems_straggler;
  total.elems_after_halt += r.elems_after_halt;
  total.skip_msgs += r.skip_msgs;
  total.segments_skipped += r.segments_skipped;
  total.ack_msgs += r.ack_msgs;
  total.protocol_violations += r.protocol_violations;
  total.faults_dropped += r.faults_dropped;
  total.faults_duplicated += r.faults_duplicated;
  total.faults_reordered += r.faults_reordered;
  total.faults_corrupted += r.faults_corrupted;
  total.faults_decode_errors += r.faults_decode_errors;
  if (r.receiver_done_at > 0) total.receiver_done_at = attempt_offset + r.receiver_done_at;
  if (retry_attempt) total.recovery_bits += r.total_bits();
}

sim::Time backoff_delay(const RetryPolicy& p, std::uint32_t retry_index) {
  sim::Time d = p.base_backoff_s;
  for (std::uint32_t i = 1; i < retry_index; ++i) {
    d *= 2;
    if (d >= p.max_backoff_s) return p.max_backoff_s;
  }
  return std::min(d, p.max_backoff_s);
}

}  // namespace

SyncReport sync_with_recovery(sim::EventLoop& loop, RotatingVector& a, const RotatingVector& b,
                              const SyncOptions& opt) {
  if (!opt.net.faults.enabled()) return sync_rotating(loop, a, b, opt);
  OPTREP_SPAN("vv.sync_recovery");
  const sim::Time t0 = loop.now();
  SyncReport total;
  bool converged = false;
  std::uint32_t runs = 0;
  // Causal root span for the whole recovery: each attempt's session span is
  // parented under it, so the analyzer can roll a delivery's retries and
  // backoff into one hop.
  std::uint64_t root = 0;
  if (opt.causal != nullptr) {
    root = opt.causal->begin_span(t0, opt.causal_parent, opt.src_site, opt.dst_site,
                                  opt.causal_attempt);
  }
  // The receiver's pre-sync state. Every attempt starts from here: the
  // receiver-halt rule (Alg 2/3/4 stop at the first already-known element)
  // is only sound when the receiver's knowledge is prefix-closed w.r.t. the
  // sender's rotation order, and a faulted partial application breaks that —
  // a retry against partial state would halt early forever. Discarding the
  // partial join costs re-sent elements (charged to recovery_bits), never
  // correctness.
  const RotatingVector original = a;
  Ordering rel0 = Ordering::kEqual;  // relation of (original, b), fixed
  while (true) {
    std::uint64_t cb = 0;
    if (runs == 0) {
      // Initial relation; re-used for every attempt since each starts from
      // `original`. The *exact* comparator: callers on lossy paths may hold
      // vectors outside the at-rest states compare_fast assumes.
      if (opt.known_relation.has_value()) {
        rel0 = *opt.known_relation;
      } else {
        rel0 = compare_full(a, b);
        cb = compare_cost_bits(opt.cost);
      }
      total.initial_relation = rel0;
      if (rel0 == Ordering::kEqual || rel0 == Ordering::kAfter) {
        converged = true;  // receiver already covers the sender
      }
    } else {
      // Convergence check on the last attempt's outcome (exact comparison:
      // a partial join is not an at-rest state).
      const Ordering rel = compare_full(a, b);
      cb = compare_cost_bits(opt.cost);
      total.recovery_bits += cb;
      if (rel == Ordering::kEqual || rel == Ordering::kAfter) {
        converged = true;  // receiver covers the sender: element-wise max holds
      } else {
        a = original;  // discard partial progress (halt-rule safety, above)
      }
    }
    total.bits_fwd += cb / 2;
    total.bits_rev += cb / 2;
    if (cb > 0) {
      total.bytes_fwd += wire_bytes_elem(false);
      total.bytes_rev += wire_bytes_elem(false);
      total.msgs_fwd += 1;
      total.msgs_rev += 1;
    }
    if (converged) break;
    if (opt.kind == VectorKind::kBrv && rel0 == Ordering::kConcurrent && runs > 0) {
      break;  // SYNCB cannot reconcile ‖ (Alg 2 precondition): best effort only
    }
    if (runs > opt.retry.max_retries) break;  // retry budget exhausted
    if (runs > 0) {
      // Bounded exponential backoff, advanced on the simulated clock by a
      // no-op event so the next attempt's timestamps reflect the wait.
      loop.schedule(loop.now() + backoff_delay(opt.retry, runs), [] {});
      loop.run();
    }
    SyncOptions cur = opt;
    cur.known_relation = rel0;
    // Every attempt observes an independent deterministic fault pattern.
    cur.net.faults.seed = sim::fault_attempt_seed(opt.net.faults.seed, runs);
    cur.causal_parent = root;
    cur.causal_attempt = runs;
    if (opt.recorder != nullptr) opt.recorder->note_attempt(runs);
    const sim::Time astart = loop.now();
    const SyncReport r = sync_rotating(loop, a, b, cur);
    accumulate_attempt(total, r, runs > 0, astart - t0);
    ++runs;
  }
  // A failed sync leaves the receiver exactly as it was: callers never see a
  // partially joined vector (the repl systems rely on this to keep metadata
  // and content atomic).
  if (!converged) {
    a = original;
    if (opt.recorder != nullptr) opt.recorder->trigger("retry_exhausted", loop.now());
  }
  total.attempts = runs;
  total.retries = runs > 0 ? runs - 1 : 0;
  total.converged = converged;
  total.duration = loop.now() - t0;
  if (opt.causal != nullptr) {
    opt.causal->end_span(loop.now(), root, total.total_bits(), converged);
    total.causal_span = root;
  }
  if (opt.metrics != nullptr) {
    if (total.retries > 0) opt.metrics->counter("vv.retries").inc(total.retries);
    if (!converged) opt.metrics->counter("vv.sync_failures").inc();
  }
  return total;
}

namespace {

// Baseline sessions: the send set is known upfront, so the sender core emits
// everything on kStart (the link's FIFO pacing models transmission time) and
// the receiver core simply joins. Baseline traffic is sized as BRV elements
// (no conflict/segment bits) regardless of opt.kind.
SyncReport run_baseline_session(sim::EventLoop& loop, VersionVector& a,
                                const std::vector<std::pair<SiteId, std::uint64_t>>& to_send,
                                Ordering rel, const SyncOptions& opt) {
  SessionWiring w(loop, opt);
  CoreDriver<protocol::BaselineSenderCore> sender(&loop, &w.duplex.b_to_a(), &opt,
                                                  VectorKind::kBrv,
                                                  protocol::BaselineSenderCore(&to_send),
                                                  &w.span);
  CoreDriver<protocol::BaselineReceiverCore> receiver(&loop, &w.duplex.a_to_b(), &opt,
                                                      VectorKind::kBrv,
                                                      protocol::BaselineReceiverCore(&a),
                                                      &w.span);
  w.connect([&receiver](const VvMsg& m) { receiver.on_message(m); },
            [&sender](const VvMsg& m) { sender.on_message(m); }, VectorKind::kBrv);
  const sim::Time t0 = loop.now();
  const std::uint64_t ev0 = loop.executed_events();
  w.trace_boundary(loop, obs::TraceEventType::kSessionBegin, 0);
  loop.schedule(t0, [&sender] { sender.start(); });
  const sim::Time t_end = loop.run();
  if (opt.net.faults.enabled() && !receiver.core().finished()) receiver.abort();
  const SessionAccounting acc{rel,
                              /*compare_bits=*/0,
                              t0,
                              t_end,
                              &w.duplex.b_to_a().stats(),
                              &w.duplex.a_to_b().stats(),
                              sender.core().elems_sent(),
                              &receiver.core().counters(),
                              receiver.done_at(),
                              /*sender_violations=*/0};
  SyncReport r = acc.build();
  w.harvest_framing(loop, ev0, r);
  w.trace_boundary(loop, obs::TraceEventType::kSessionEnd, r.total_bits());
  if (w.causal != nullptr) {
    w.causal->end_span(loop.now(), w.span, r.total_bits(), receiver.core().finished());
    r.causal_span = w.span;
  }
  publish_session_metrics(opt.metrics, r);
  return r;
}

std::vector<std::pair<SiteId, std::uint64_t>> sorted_elements(const VersionVector& v) {
  std::vector<std::pair<SiteId, std::uint64_t>> out(v.elements().begin(), v.elements().end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

SyncReport sync_traditional(sim::EventLoop& loop, VersionVector& a, const VersionVector& b,
                            const SyncOptions& opt) {
  OPTREP_SPAN("vv.traditional");
  const Ordering rel = a.compare(b);
  return run_baseline_session(loop, a, sorted_elements(b), rel, opt);
}

SyncReport sync_singhal_kshemkalyani(sim::EventLoop& loop, VersionVector& a,
                                     const VersionVector& b, VersionVector& last_sent,
                                     const SyncOptions& opt) {
  OPTREP_SPAN("vv.sk");
  const Ordering rel = a.compare(b);
  std::vector<std::pair<SiteId, std::uint64_t>> delta;
  for (const auto& [site, value] : sorted_elements(b)) {
    if (value > last_sent.value(site)) delta.emplace_back(site, value);
  }
  last_sent = b;
  return run_baseline_session(loop, a, delta, rel, opt);
}

CompareSessionResult compare_session(sim::EventLoop& loop, const RotatingVector& a,
                                     const RotatingVector& b, const sim::NetConfig& net,
                                     const CostModel& cost) {
  OPTREP_SPAN("vv.compare");
  // COMPARE rides the framed transport too: probes and verdicts are control
  // messages (every frame flushes), so framing only affects byte accounting.
  sim::FrameDuplex<VvMsg> duplex(&loop, net);
  duplex.a_to_b().set_msg_sizer(&frame_wire_bytes_single);
  duplex.b_to_a().set_msg_sizer(&frame_wire_bytes_single);
  duplex.a_to_b().set_frame_sizer(&frame_wire_bytes);
  duplex.b_to_a().set_frame_sizer(&frame_wire_bytes);
  const auto flush = [](const VvMsg& m) { return m.kind != VvMsg::Kind::kElem; };
  duplex.a_to_b().set_flush_after(flush);
  duplex.b_to_a().set_flush_after(flush);
  protocol::CompareCore ca(&a);
  protocol::CompareCore cb(&b);
  // COMPARE's binding is trivial (two counted sends per endpoint, no
  // speculation): a local pump suffices instead of a full CoreDriver.
  const auto drive = [&cost](protocol::CompareCore& core, sim::FrameLink<VvMsg>* tx,
                             const protocol::Event& ev) {
    protocol::Actions& acts = scratch_actions();
    acts.clear();
    core.step(ev, acts);
    for (const protocol::Action& act : acts) {
      if (act.type != protocol::Action::Type::kSend) continue;
      if (act.msg.kind == VvMsg::Kind::kProbe) {
        tx->send(act.msg, cost.compare_probe_bits(), wire_bytes_elem(false));
      } else {
        tx->send(act.msg, 1, 1);
      }
    }
  };
  duplex.a_to_b().set_receiver([&](const VvMsg& m) {
    drive(cb, &duplex.b_to_a(), protocol::Event::msg_arrival(m));
  });
  duplex.b_to_a().set_receiver([&](const VvMsg& m) {
    drive(ca, &duplex.a_to_b(), protocol::Event::msg_arrival(m));
  });
  const sim::Time t0 = loop.now();
  loop.schedule(t0, [&] {
    drive(ca, &duplex.a_to_b(), protocol::Event::start());
    drive(cb, &duplex.b_to_a(), protocol::Event::start());
  });
  const sim::Time t_end = loop.run();
  CompareSessionResult r;
  r.at_a = ca.decide();
  r.at_b = cb.decide();
  r.total_bits = duplex.a_to_b().stats().model_bits + duplex.b_to_a().stats().model_bits;
  r.duration = t_end - t0;
  return r;
}

}  // namespace optrep::vv
