#include "vv/version_vector.h"

#include <algorithm>
#include <vector>

namespace optrep::vv {

Ordering VersionVector::compare(const VersionVector& other) const {
  bool a_has_more = false;  // some a[i] > b[i]
  bool b_has_more = false;
  for (const auto& [site, val] : v_) {
    const std::uint64_t theirs = other.value(site);
    if (val > theirs) a_has_more = true;
    if (val < theirs) b_has_more = true;
  }
  for (const auto& [site, val] : other.v_) {
    if (val > value(site)) b_has_more = true;
  }
  if (a_has_more && b_has_more) return Ordering::kConcurrent;
  if (a_has_more) return Ordering::kAfter;
  if (b_has_more) return Ordering::kBefore;
  return Ordering::kEqual;
}

std::string VersionVector::to_string() const {
  std::vector<std::pair<SiteId, std::uint64_t>> sorted(v_.begin(), v_.end());
  std::sort(sorted.begin(), sorted.end());
  std::string out = "<";
  bool first = true;
  for (const auto& [site, val] : sorted) {
    if (!first) out += ", ";
    first = false;
    out += site_name(site) + ":" + std::to_string(val);
  }
  out += ">";
  return out;
}

}  // namespace optrep::vv
