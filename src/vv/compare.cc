#include "vv/compare.h"

namespace optrep::vv {

Ordering compare_fast(const RotatingVector& a, const RotatingVector& b) {
  const auto fa = a.front();
  const auto fb = b.front();
  if (!fa.has_value() && !fb.has_value()) return Ordering::kEqual;
  if (!fa.has_value()) return Ordering::kBefore;  // a has seen nothing
  if (!fb.has_value()) return Ordering::kAfter;

  const SiteId la = fa->site;
  const std::uint64_t ua = fa->value;
  const SiteId lb = fb->site;
  const std::uint64_t ub = fb->value;

  // Algorithm 1, lines 2–5.
  if (ua == b.value(la) && a.value(lb) == ub) return Ordering::kEqual;
  if (ua <= b.value(la)) return Ordering::kBefore;
  if (ub <= a.value(lb)) return Ordering::kAfter;
  return Ordering::kConcurrent;
}

Ordering compare_full(const RotatingVector& a, const RotatingVector& b) {
  return a.to_version_vector().compare(b.to_version_vector());
}

}  // namespace optrep::vv
