// Causal ordering between replicas (§2.2).
#pragma once

#include <string_view>

namespace optrep::vv {

// Result of comparing two replicas' metadata a vs b.
enum class Ordering {
  kEqual,       // a = b
  kBefore,      // a ≺ b : a causally precedes b
  kAfter,       // b ≺ a
  kConcurrent,  // a ‖ b : syntactic conflict
};

constexpr std::string_view to_string(Ordering o) {
  switch (o) {
    case Ordering::kEqual: return "=";
    case Ordering::kBefore: return "precedes";
    case Ordering::kAfter: return "succeeds";
    case Ordering::kConcurrent: return "concurrent";
  }
  return "?";
}

constexpr Ordering flip(Ordering o) {
  switch (o) {
    case Ordering::kBefore: return Ordering::kAfter;
    case Ordering::kAfter: return Ordering::kBefore;
    default: return o;
  }
}

}  // namespace optrep::vv
