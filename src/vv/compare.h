// Vector comparison.
//
// COMPARE (Algorithm 1) decides =, ≺, ≻ or ‖ between two rotating vectors by
// looking only at the two front elements — O(1) time and, on the wire,
// 2·log(mn) bits (each site sends its ⌊v⌋ to the other; §3.3).
//
// It is valid on "at-rest" vectors: vectors produced by local updates,
// overwrite synchronizations, and reconciliations that were followed by the
// mandated local increment ([11 §C], §2.2). In such vectors the front element
// always dominates the vector, which is what the algorithm exploits
// ([21, Lemma 3.4]).
#pragma once

#include "common/cost_model.h"
#include "vv/order.h"
#include "vv/rotating_vector.h"
#include "vv/version_vector.h"

namespace optrep::vv {

// Algorithm 1. Empty vectors (objects with no recorded updates yet) compare
// as causally-before any non-empty vector and equal to another empty one.
Ordering compare_fast(const RotatingVector& a, const RotatingVector& b);

// Bits exchanged by the COMPARE protocol: one (site, value) probe each way.
inline std::uint64_t compare_cost_bits(const CostModel& cm) {
  return 2 * cm.compare_probe_bits();
}

// The classical full comparison, lifted to rotating vectors (baseline: O(n)
// time, and O(n·log(mn)) bits if run remotely by shipping one whole vector).
Ordering compare_full(const RotatingVector& a, const RotatingVector& b);

inline std::uint64_t compare_full_cost_bits(const CostModel& cm, std::size_t vector_size) {
  return static_cast<std::uint64_t>(vector_size) * cm.elem_bits(0) + cm.halt_bits();
}

}  // namespace optrep::vv

// The distributed COMPARE protocol itself lives in session.h
// (vv::compare_session): both sites send their ⌊v⌋ probe simultaneously and
// decide locally — one half round trip, 2·log(mn) bits total.
