// Traditional version vectors (Parker et al. [11], §2.2).
//
// This is both the baseline ("send the whole vector") implementation and the
// oracle against which the rotating-vector implementations are continuously
// cross-checked in tests. Elements with value zero are not stored, matching
// the paper's convention ("zero valued elements have been removed").
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/ids.h"
#include "vv/order.h"

namespace optrep::vv {

class VersionVector {
 public:
  using Map = std::unordered_map<SiteId, std::uint64_t>;

  VersionVector() = default;

  // v[i]; zero when the site has no recorded updates.
  std::uint64_t value(SiteId site) const {
    auto it = v_.find(site);
    return it == v_.end() ? 0 : it->second;
  }

  bool contains(SiteId site) const { return v_.contains(site); }

  // Set v[i]. Setting zero erases the element.
  void set(SiteId site, std::uint64_t value) {
    if (value == 0) {
      v_.erase(site);
    } else {
      v_[site] = value;
    }
  }

  // Record one local update on `site` (v[i] += 1).
  void increment(SiteId site) { ++v_[site]; }

  // Element-wise max with other (the synchronization result of §2.2).
  void join(const VersionVector& other) {
    for (const auto& [site, val] : other.v_) {
      auto& mine = v_[site];
      if (val > mine) mine = val;
    }
  }

  // Number of non-zero elements.
  std::size_t size() const { return v_.size(); }
  bool empty() const { return v_.empty(); }

  const Map& elements() const { return v_; }

  // Full O(n) comparison (the classical algorithm).
  Ordering compare(const VersionVector& other) const;

  bool operator==(const VersionVector& other) const { return v_ == other.v_; }

  // "<A:2, B:1>" with sites ordered by id (orderless container; for debugging).
  std::string to_string() const;

 private:
  Map v_;
};

}  // namespace optrep::vv
