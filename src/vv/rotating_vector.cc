#include "vv/rotating_vector.h"

#include <algorithm>

namespace optrep::vv {

// Every read of a slot field, a list link, or head_/tail_ below goes through
// ld()/st() (acquire/release atomic_ref): mutations run under the writer
// queue of olock_, but optimistic readers may be mid-walk concurrently, so
// all shared words must be accessed atomically for the validation protocol
// to be sound (see rt/olock.h). Single-threaded cost: plain movs.

std::vector<RotatingVector::Element> RotatingVector::in_order() const {
  std::vector<Element> out;
  out.reserve(slots_.size());
  for (std::uint32_t s = ld(head_); s != kNil; s = ld(slots_[s].next)) {
    out.push_back(load_elem(s));
  }
  return out;
}

VersionVector RotatingVector::to_version_vector() const {
  VersionVector vv;
  for (std::uint32_t s = ld(head_); s != kNil; s = ld(slots_[s].next)) {
    vv.set(ld(slots_[s].elem.site), ld(slots_[s].elem.value));
  }
  return vv;
}

void RotatingVector::record_update(SiteId site) {
  rotate_after(std::nullopt, site);
  Slot& s = slot_of_mut(site);
  st(s.elem.value, ld(s.elem.value) + 1);
  st(s.elem.conflict, false);
  // The segment bit was already cleared by the carry in rotate_after; the
  // fresh element joins the current prefixing segment at the front.
}

void RotatingVector::rotate_after(std::optional<SiteId> prev, SiteId site) {
  std::uint32_t s = index_.find(site);
  if (s == kNil) s = insert_front(site);
  std::uint32_t p = kNil;
  if (prev.has_value()) {
    p = index_.find(*prev);
    OPTREP_CHECK_MSG(p != kNil, "ROTATE: prev element not present");
  }
  OPTREP_CHECK_MSG(p != s, "ROTATE: element cannot follow itself");
  // Rotating an element onto its current position is a no-op (and must not
  // trigger the segment-bit carry: the element is not leaving its segment).
  if (p == kNil ? ld(head_) == s : ld(slots_[s].prev) == p) return;
  unlink(s);
  link_after(p, s);
}

void RotatingVector::set_element(SiteId site, std::uint64_t value, bool conflict,
                                 bool segment) {
  std::uint32_t s = index_.find(site);
  if (s == kNil) s = insert_front(site);
  Slot& slot = slots_[s];
  st(slot.elem.value, value);
  st(slot.elem.conflict, conflict);
  st(slot.elem.segment, segment);
}

std::string RotatingVector::to_string() const {
  std::string out = "<";
  bool first = true;
  for (std::uint32_t s = ld(head_); s != kNil; s = ld(slots_[s].next)) {
    if (!first) out += ", ";
    first = false;
    const Element e = load_elem(s);
    out += site_name(e.site) + ":" + std::to_string(e.value);
    if (e.conflict) out += "*";
    if (e.segment) out += "|";
  }
  out += ">";
  return out;
}

bool RotatingVector::identical_to(const RotatingVector& other) const {
  if (size() != other.size()) return false;
  return std::equal(begin(), end(), other.begin());
}

bool RotatingVector::same_values(const VersionVector& oracle) const {
  if (size() != oracle.size()) return false;
  for (std::uint32_t s = ld(head_); s != kNil; s = ld(slots_[s].next)) {
    if (ld(slots_[s].elem.value) != oracle.value(ld(slots_[s].elem.site))) return false;
  }
  return true;
}

void RotatingVector::erase(SiteId site) {
  const std::uint32_t s = index_.find(site);
  if (s == kNil) return;
  unlink(s);  // carries a set segment bit to the predecessor
  Slot& slot = slots_[s];
  st(slot.elem.site, SiteId{});
  st(slot.elem.value, std::uint64_t{0});
  st(slot.elem.conflict, false);
  st(slot.elem.segment, false);
  free_slots_.push_back(s);
  index_.erase(site);
}

std::uint32_t RotatingVector::insert_front(SiteId site) {
  const std::uint32_t h = ld(head_);
  std::uint32_t s;
  if (!free_slots_.empty()) {
    // Recycled slots may still be visited by an in-flight optimistic walk,
    // so refill them field-wise (atomically), not by whole-struct assignment.
    s = free_slots_.back();
    free_slots_.pop_back();
    Slot& slot = slots_[s];
    st(slot.elem.site, site);
    st(slot.elem.value, std::uint64_t{0});
    st(slot.elem.conflict, false);
    st(slot.elem.segment, false);
    st(slot.prev, kNil);
    st(slot.next, h);
  } else {
    s = static_cast<std::uint32_t>(slots_.size());
    OPTREP_CHECK_MSG(s != kNil, "vector too large");
    // May reallocate: excluded while concurrent readers are active by the
    // reserve() capacity contract (header comment).
    slots_.push_back(Slot{Element{site, 0, false, false}, kNil, h});
  }
  if (h != kNil) st(slots_[h].prev, s);
  st(head_, s);
  if (ld(tail_) == kNil) st(tail_, s);
  index_.insert(site, s);
  return s;
}

void RotatingVector::unlink(std::uint32_t s) {
  Slot& slot = slots_[s];
  // §4 segment-bit maintenance: the rotated-out element was the last of its
  // segment, so the boundary moves to the element before it (if any).
  const std::uint32_t prev = ld(slot.prev);
  const std::uint32_t next = ld(slot.next);
  if (ld(slot.elem.segment)) {
    if (prev != kNil) st(slots_[prev].elem.segment, true);
    st(slot.elem.segment, false);
  }
  if (prev != kNil) {
    st(slots_[prev].next, next);
  } else {
    st(head_, next);
  }
  if (next != kNil) {
    st(slots_[next].prev, prev);
  } else {
    st(tail_, prev);
  }
  st(slot.prev, kNil);
  st(slot.next, kNil);
}

void RotatingVector::link_after(std::uint32_t p, std::uint32_t s) {
  Slot& slot = slots_[s];
  if (p == kNil) {
    const std::uint32_t h = ld(head_);
    st(slot.prev, kNil);
    st(slot.next, h);
    if (h != kNil) st(slots_[h].prev, s);
    st(head_, s);
    if (ld(tail_) == kNil) st(tail_, s);
  } else {
    Slot& after = slots_[p];
    const std::uint32_t an = ld(after.next);
    st(slot.prev, p);
    st(slot.next, an);
    if (an != kNil) st(slots_[an].prev, s);
    st(after.next, s);
    if (ld(tail_) == p) st(tail_, s);
  }
}

}  // namespace optrep::vv
