#include "vv/rotating_vector.h"

#include <algorithm>

namespace optrep::vv {

// Every read of an element column cell, a list link, or head_/tail_ below
// goes through ld()/st() (acquire/release atomic_ref): mutations run under
// the writer queue of olock_, but optimistic readers may be mid-walk
// concurrently, so all shared words must be accessed atomically for the
// validation protocol to be sound (see rt/olock.h). Single-threaded cost:
// plain movs.

std::vector<RotatingVector::Element> RotatingVector::in_order() const {
  std::vector<Element> out;
  out.reserve(site_.size());
  for (std::uint32_t s = ld(head_); s != kNil; s = ld(next_[s])) {
    out.push_back(load_elem(s));
  }
  return out;
}

VersionVector RotatingVector::to_version_vector() const {
  VersionVector vv;
  for (std::uint32_t s = ld(head_); s != kNil; s = ld(next_[s])) {
    vv.set(ld(site_[s]), ld(value_[s]));
  }
  return vv;
}

void RotatingVector::record_update(SiteId site) {
  rotate_after(std::nullopt, site);
  const std::uint32_t s = slot_of(site);
  st(value_[s], ld(value_[s]) + 1);
  set_flag(s, kConflictFlag, false);
  // The segment bit was already cleared by the carry in rotate_after; the
  // fresh element joins the current prefixing segment at the front.
}

void RotatingVector::rotate_after(std::optional<SiteId> prev, SiteId site) {
  std::uint32_t s = index_.find(site);
  if (s == kNil) s = insert_front(site);
  std::uint32_t p = kNil;
  if (prev.has_value()) {
    p = index_.find(*prev);
    OPTREP_CHECK_MSG(p != kNil, "ROTATE: prev element not present");
  }
  OPTREP_CHECK_MSG(p != s, "ROTATE: element cannot follow itself");
  // Rotating an element onto its current position is a no-op (and must not
  // trigger the segment-bit carry: the element is not leaving its segment).
  if (p == kNil ? ld(head_) == s : ld(prev_[s]) == p) return;
  unlink(s);
  link_after(p, s);
}

void RotatingVector::set_element(SiteId site, std::uint64_t value, bool conflict,
                                 bool segment) {
  std::uint32_t s = index_.find(site);
  if (s == kNil) s = insert_front(site);
  st(value_[s], value);
  std::uint8_t f = 0;
  if (conflict) f |= kConflictFlag;
  if (segment) f |= kSegmentFlag;
  st(flags_[s], f);
}

std::string RotatingVector::to_string() const {
  std::string out = "<";
  bool first = true;
  for (std::uint32_t s = ld(head_); s != kNil; s = ld(next_[s])) {
    if (!first) out += ", ";
    first = false;
    const Element e = load_elem(s);
    out += site_name(e.site) + ":" + std::to_string(e.value);
    if (e.conflict) out += "*";
    if (e.segment) out += "|";
  }
  out += ">";
  return out;
}

bool RotatingVector::identical_to(const RotatingVector& other) const {
  if (size() != other.size()) return false;
  return std::equal(begin(), end(), other.begin());
}

bool RotatingVector::same_values(const VersionVector& oracle) const {
  if (size() != oracle.size()) return false;
  for (std::uint32_t s = ld(head_); s != kNil; s = ld(next_[s])) {
    if (ld(value_[s]) != oracle.value(ld(site_[s]))) return false;
  }
  return true;
}

void RotatingVector::erase(SiteId site) {
  const std::uint32_t s = index_.find(site);
  if (s == kNil) return;
  unlink(s);  // carries a set segment bit to the predecessor
  st(site_[s], SiteId{});
  st(value_[s], std::uint64_t{0});
  st(flags_[s], std::uint8_t{0});
  free_slots_.push_back(s);
  index_.erase(site);
  // Reclaim dead slots once they outnumber live elements: without this, a
  // pruning workload that retires sites forever grows the free list (and the
  // column height) monotonically. The floor of 8 keeps small vectors from
  // compacting on every other erase.
  if (free_slots_.size() >= 8 && free_slots_.size() > index_.size()) compact();
}

std::uint32_t RotatingVector::insert_front(SiteId site) {
  const std::uint32_t h = ld(head_);
  std::uint32_t s;
  if (!free_slots_.empty()) {
    // Recycled slots may still be visited by an in-flight optimistic walk,
    // so refill them field-wise (atomically), not by whole-struct assignment.
    s = free_slots_.back();
    free_slots_.pop_back();
    st(site_[s], site);
    st(value_[s], std::uint64_t{0});
    st(flags_[s], std::uint8_t{0});
    st(prev_[s], kNil);
    st(next_[s], h);
  } else {
    s = static_cast<std::uint32_t>(site_.size());
    OPTREP_CHECK_MSG(s != kNil, "vector too large");
    // May reallocate: excluded while concurrent readers are active by the
    // reserve() capacity contract (header comment).
    site_.push_back(site);
    value_.push_back(0);
    flags_.push_back(0);
    prev_.push_back(kNil);
    next_.push_back(h);
  }
  if (h != kNil) st(prev_[h], s);
  st(head_, s);
  if (ld(tail_) == kNil) st(tail_, s);
  index_.insert(site, s);
  return s;
}

void RotatingVector::unlink(std::uint32_t s) {
  // §4 segment-bit maintenance: the rotated-out element was the last of its
  // segment, so the boundary moves to the element before it (if any).
  const std::uint32_t prev = ld(prev_[s]);
  const std::uint32_t next = ld(next_[s]);
  if ((ld(flags_[s]) & kSegmentFlag) != 0) {
    if (prev != kNil) set_flag(prev, kSegmentFlag, true);
    set_flag(s, kSegmentFlag, false);
  }
  if (prev != kNil) {
    st(next_[prev], next);
  } else {
    st(head_, next);
  }
  if (next != kNil) {
    st(prev_[next], prev);
  } else {
    st(tail_, prev);
  }
  st(prev_[s], kNil);
  st(next_[s], kNil);
}

void RotatingVector::link_after(std::uint32_t p, std::uint32_t s) {
  if (p == kNil) {
    const std::uint32_t h = ld(head_);
    st(prev_[s], kNil);
    st(next_[s], h);
    if (h != kNil) st(prev_[h], s);
    st(head_, s);
    if (ld(tail_) == kNil) st(tail_, s);
  } else {
    const std::uint32_t an = ld(next_[p]);
    st(prev_[s], p);
    st(next_[s], an);
    if (an != kNil) st(prev_[an], s);
    st(next_[p], s);
    if (ld(tail_) == p) st(tail_, s);
  }
}

void RotatingVector::compact() {
  // Holes (free-list entries) ascending; live tail slots will fill the holes
  // below the post-compaction height. In-place sort: no allocation, so the
  // zero-alloc steady state survives pruning churn.
  std::sort(free_slots_.data(), free_slots_.data() + free_slots_.size());
  const std::size_t holes = free_slots_.size();
  const std::size_t new_size = site_.size() - holes;
  // Walk holes from the bottom and live slots from the top; `top` consumes
  // tail holes (sorted descending from the back) so `from` only lands on
  // live slots. Hole/live counts below and above new_size match exactly.
  std::size_t top = holes;
  std::uint32_t from = static_cast<std::uint32_t>(site_.size());
  for (std::size_t h = 0; h < holes && free_slots_[h] < new_size; ++h) {
    for (--from; top > 0 && free_slots_[top - 1] == from; --from) --top;
    relocate(from, free_slots_[h]);
  }
  // Shrink keeps capacity (and any block a racing reader is pinned to):
  // Column::resize never reallocates downward.
  site_.resize(new_size);
  value_.resize(new_size);
  flags_.resize(new_size);
  prev_.resize(new_size);
  next_.resize(new_size);
  free_slots_.clear();
}

void RotatingVector::relocate(std::uint32_t from, std::uint32_t to) {
  const SiteId site = ld(site_[from]);
  st(site_[to], site);
  st(value_[to], ld(value_[from]));
  st(flags_[to], ld(flags_[from]));
  const std::uint32_t p = ld(prev_[from]);
  const std::uint32_t n = ld(next_[from]);
  st(prev_[to], p);
  st(next_[to], n);
  if (p != kNil) st(next_[p], to); else st(head_, to);
  if (n != kNil) st(prev_[n], to); else st(tail_, to);
  index_.update(site, to);
}

}  // namespace optrep::vv
