#include "vv/rotating_vector.h"

#include <algorithm>

namespace optrep::vv {

std::vector<RotatingVector::Element> RotatingVector::in_order() const {
  std::vector<Element> out;
  out.reserve(slots_.size());
  for (std::uint32_t s = head_; s != kNil; s = slots_[s].next) {
    out.push_back(slots_[s].elem);
  }
  return out;
}

VersionVector RotatingVector::to_version_vector() const {
  VersionVector vv;
  for (std::uint32_t s = head_; s != kNil; s = slots_[s].next) {
    vv.set(slots_[s].elem.site, slots_[s].elem.value);
  }
  return vv;
}

void RotatingVector::record_update(SiteId site) {
  rotate_after(std::nullopt, site);
  Slot& s = slot_of_mut(site);
  s.elem.value += 1;
  s.elem.conflict = false;
  // The segment bit was already cleared by the carry in rotate_after; the
  // fresh element joins the current prefixing segment at the front.
}

void RotatingVector::rotate_after(std::optional<SiteId> prev, SiteId site) {
  std::uint32_t s = index_.find(site);
  if (s == kNil) s = insert_front(site);
  std::uint32_t p = kNil;
  if (prev.has_value()) {
    p = index_.find(*prev);
    OPTREP_CHECK_MSG(p != kNil, "ROTATE: prev element not present");
  }
  OPTREP_CHECK_MSG(p != s, "ROTATE: element cannot follow itself");
  // Rotating an element onto its current position is a no-op (and must not
  // trigger the segment-bit carry: the element is not leaving its segment).
  if (p == kNil ? head_ == s : slots_[s].prev == p) return;
  unlink(s);
  link_after(p, s);
}

void RotatingVector::set_element(SiteId site, std::uint64_t value, bool conflict,
                                 bool segment) {
  std::uint32_t s = index_.find(site);
  if (s == kNil) s = insert_front(site);
  Slot& slot = slots_[s];
  slot.elem.value = value;
  slot.elem.conflict = conflict;
  slot.elem.segment = segment;
}

std::string RotatingVector::to_string() const {
  std::string out = "<";
  bool first = true;
  for (std::uint32_t s = head_; s != kNil; s = slots_[s].next) {
    if (!first) out += ", ";
    first = false;
    const Element& e = slots_[s].elem;
    out += site_name(e.site) + ":" + std::to_string(e.value);
    if (e.conflict) out += "*";
    if (e.segment) out += "|";
  }
  out += ">";
  return out;
}

bool RotatingVector::identical_to(const RotatingVector& other) const {
  if (size() != other.size()) return false;
  return std::equal(begin(), end(), other.begin());
}

bool RotatingVector::same_values(const VersionVector& oracle) const {
  if (size() != oracle.size()) return false;
  for (std::uint32_t s = head_; s != kNil; s = slots_[s].next) {
    if (slots_[s].elem.value != oracle.value(slots_[s].elem.site)) return false;
  }
  return true;
}

void RotatingVector::erase(SiteId site) {
  const std::uint32_t s = index_.find(site);
  if (s == kNil) return;
  unlink(s);  // carries a set segment bit to the predecessor
  slots_[s] = Slot{};
  free_slots_.push_back(s);
  index_.erase(site);
}

std::uint32_t RotatingVector::insert_front(SiteId site) {
  std::uint32_t s;
  if (!free_slots_.empty()) {
    s = free_slots_.back();
    free_slots_.pop_back();
    slots_[s] = Slot{Element{site, 0, false, false}, kNil, head_};
  } else {
    s = static_cast<std::uint32_t>(slots_.size());
    OPTREP_CHECK_MSG(s != kNil, "vector too large");
    slots_.push_back(Slot{Element{site, 0, false, false}, kNil, head_});
  }
  if (head_ != kNil) slots_[head_].prev = s;
  head_ = s;
  if (tail_ == kNil) tail_ = s;
  index_.insert(site, s);
  return s;
}

void RotatingVector::unlink(std::uint32_t s) {
  Slot& slot = slots_[s];
  // §4 segment-bit maintenance: the rotated-out element was the last of its
  // segment, so the boundary moves to the element before it (if any).
  if (slot.elem.segment) {
    if (slot.prev != kNil) slots_[slot.prev].elem.segment = true;
    slot.elem.segment = false;
  }
  if (slot.prev != kNil) {
    slots_[slot.prev].next = slot.next;
  } else {
    head_ = slot.next;
  }
  if (slot.next != kNil) {
    slots_[slot.next].prev = slot.prev;
  } else {
    tail_ = slot.prev;
  }
  slot.prev = slot.next = kNil;
}

void RotatingVector::link_after(std::uint32_t p, std::uint32_t s) {
  Slot& slot = slots_[s];
  if (p == kNil) {
    slot.prev = kNil;
    slot.next = head_;
    if (head_ != kNil) slots_[head_].prev = s;
    head_ = s;
    if (tail_ == kNil) tail_ = s;
  } else {
    Slot& after = slots_[p];
    slot.prev = p;
    slot.next = after.next;
    if (after.next != kNil) slots_[after.next].prev = s;
    after.next = s;
    if (tail_ == p) tail_ = s;
  }
}

}  // namespace optrep::vv
