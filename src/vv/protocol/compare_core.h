// Sans-I/O core for the COMPARE protocol (Algorithm 1): one endpoint sends
// its front-element probe, answers the peer's probe with a domination
// verdict, and decides =, ≺, ≻ or ‖ from (own bit, peer bit).
#pragma once

#include <cstdint>

#include "common/check.h"
#include "vv/order.h"
#include "vv/protocol/core.h"
#include "vv/rotating_vector.h"

namespace optrep::vv::protocol {

class CompareCore {
 public:
  explicit CompareCore(const RotatingVector* v) : v_(v) {}

  void step(const Event& ev, Actions& out) {
    switch (ev.type) {
      case Event::Type::kStart: {
        VvMsg probe{.kind = VvMsg::Kind::kProbe};
        if (const auto f = v_->front()) {
          probe.site = f->site;
          probe.value = f->value;
        }
        emit(out, Action::Type::kSend, probe);
        return;
      }
      case Event::Type::kMsg:
        on_msg(ev.msg, out);
        return;
      case Event::Type::kLinkFree:
      case Event::Type::kAbort:
        return;
    }
  }

  Ordering decide() const {
    OPTREP_CHECK_MSG(has_verdict_, "COMPARE session incomplete");
    const bool self_empty = v_->empty();
    const bool peer_empty = peer_probe_.value == 0;
    if (self_empty && peer_empty) return Ordering::kEqual;
    if (self_empty) return Ordering::kBefore;
    if (peer_empty) return Ordering::kAfter;
    if (i_cover_peer_ && peer_covers_me_) return Ordering::kEqual;
    if (peer_covers_me_) return Ordering::kBefore;  // peer knows all we know
    if (i_cover_peer_) return Ordering::kAfter;
    return Ordering::kConcurrent;
  }

  bool complete() const { return has_verdict_; }
  std::uint64_t violations() const { return violations_; }

 private:
  void on_msg(const VvMsg& m, Actions& out) {
    switch (m.kind) {
      case VvMsg::Kind::kProbe: {
        peer_probe_ = m;
        // Do we cover the peer's probe? (Empty probe: trivially covered;
        // our emptiness makes us cover nothing but the empty probe.)
        const bool covers = m.value == 0 || v_->value(m.site) >= m.value;
        // Our own bit: does the peer cover our front? We cannot know — the
        // peer tells us; we only emit our verdict about *their* probe.
        i_cover_peer_ = covers;
        emit(out, Action::Type::kSend,
             VvMsg{.kind = VvMsg::Kind::kVerdict, .arg = covers ? 1u : 0u});
        return;
      }
      case VvMsg::Kind::kVerdict:
        peer_covers_me_ = m.arg != 0;
        has_verdict_ = true;
        return;
      default:
        ++violations_;  // message kind COMPARE never exchanges
        return;
    }
  }

  const RotatingVector* v_;
  VvMsg peer_probe_{};
  bool i_cover_peer_{false};
  bool peer_covers_me_{false};
  bool has_verdict_{false};
  std::uint64_t violations_{0};
};

}  // namespace optrep::vv::protocol
