// Sans-I/O protocol core vocabulary.
//
// Every sync protocol in this repository (SYNCB/SYNCC/SYNCS, the two
// baselines, and COMPARE) is implemented as a pure state machine with a
// single entry point, `step(event, actions)`: the core consumes one Event
// (session start, a wire message, a link-free notification, an abort) and
// appends zero or more Actions describing what the transport should do.
// Cores never touch `sim::EventLoop`, `sim::FrameLink`, clocks, or tracing —
// all timing, framing, speculation bookkeeping, and observability live in the
// binding (vv/session.cc), which pumps cores over the simulator. The same
// cores can be driven by an in-memory queue harness with no event loop at
// all, which is what the adversarial interleaving fuzz tests do.
//
// Time never appears here. Where the legacy actors scheduled continuations
// ("pump again when the link frees"), a core emits a scheduling Action and
// the binding owns the clock. Where the legacy sender inspected the link's
// speculative tail (framed pipelining, §3.1), the binding snapshots that
// tail into the Event as a TailView; the core reasons about counts only.
//
// Robustness contract: a core must tolerate ANY event sequence without
// aborting. Wire-triggered impossibilities (a stale SKIP in lockstep mode,
// an ACK in pipelined mode, a message kind the role never receives) are
// counted as protocol violations and ignored — under fault injection these
// are reachable states, not programming errors. OPTREP_CHECK remains only
// for genuine API misuse by the caller.
#pragma once

#include <cstdint>
#include <vector>

#include "vv/wire.h"

namespace optrep::vv::protocol {

// Snapshot of the speculative (revocable, not-yet-transmitting) tail of the
// sender's outgoing link at the instant a message arrived. Computed by the
// binding via FrameLink::peek_tail; meaningless (all zero) when unframed.
struct TailView {
  std::uint64_t elems{0};           // speculative ELEM messages queued
  std::uint64_t segment_finals{0};  // ...of which carry the segment bit
  bool halt{false};                 // a speculative end-of-vector HALT queued
};

struct Event {
  enum class Type : std::uint8_t {
    kStart,     // session begins; the core may emit its opening sends
    kMsg,       // a wire message arrived (msg, plus tail for HALT/SKIP)
    kLinkFree,  // a previously requested pump continuation fired
    kAbort,     // session torn down mid-flight (fault recovery): close state
  };

  Type type{Type::kStart};
  VvMsg msg{};
  TailView tail{};

  static Event start() { return Event{Type::kStart, {}, {}}; }
  static Event msg_arrival(const VvMsg& m, TailView t = {}) {
    return Event{Type::kMsg, m, t};
  }
  static Event link_free() { return Event{Type::kLinkFree, {}, {}}; }
  static Event abort() { return Event{Type::kAbort, {}, {}}; }
};

struct Action {
  enum class Type : std::uint8_t {
    kSend,            // hand msg to the link, committed at hand-off
    kSendRevocable,   // hand msg to the link as a speculative (revocable) send
    kRevokeTail,      // take back the link's speculative tail (core state
                      // already rewound from the TailView)
    kPumpWhenFree,    // park one kLinkFree continuation at the link-free time
                      // reached by the preceding sends
    kCaptureResume,   // remember max(now, link-free) as the resume instant —
                      // emitted before a send that must not delay the resume
    kRepumpAtResume,  // cancel the parked continuation; re-park at the
                      // captured resume instant
    kFinished,        // this side is done: cancel continuations, stamp time
    kTraceApplied,    // receiver-side semantic trace events; msg carries the
    kTraceRedundant,  //   element being classified (no transport effect)
    kTraceStraggler,
  };

  Type type{Type::kSend};
  VvMsg msg{};
};

// Reused across dispatches by the binding; cores append only.
using Actions = std::vector<Action>;

inline void emit(Actions& out, Action::Type type, const VvMsg& msg = {}) {
  out.push_back(Action{type, msg});
}

// Causal context carried by protocol actions (obs/causal.h): an element's
// (site, value) pair IS the update identity the repl layer derives trace ids
// from, so cores propagate causal context in every kSend/kTrace* action
// without a single extra wire bit. True when the action's message carries
// update state the receiver can attribute to an originating site (ELEMs and
// COMPARE probes); control messages (HALT/SKIP/SKIPPED/ACK/VERDICT) carry
// protocol arguments instead.
inline bool carries_update_context(const VvMsg& m) {
  return m.kind == VvMsg::Kind::kElem || m.kind == VvMsg::Kind::kProbe;
}

// Counters shared by all receiver cores, harvested into the SyncReport.
// (The receiver's finish *time* is transport state and lives in the binding.)
struct ReceiverCounters {
  std::uint64_t applied{0};
  std::uint64_t redundant{0};
  std::uint64_t straggler{0};
  std::uint64_t after_halt{0};
  std::uint64_t skip_msgs{0};
  std::uint64_t segments_skipped{0};
  std::uint64_t acks{0};
  std::uint64_t violations{0};  // tolerated protocol violations (faults/fuzz)
};

}  // namespace optrep::vv::protocol
