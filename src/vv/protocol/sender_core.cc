#include "vv/protocol/sender_core.h"

namespace optrep::vv::protocol {

ElementSenderCore::ElementSenderCore(Config cfg, const RotatingVector* b)
    : cfg_(cfg), b_(b), cur_(b->begin()) {}

void ElementSenderCore::step(const Event& ev, Actions& out) {
  switch (ev.type) {
    case Event::Type::kStart:
      if (cfg_.pipelined) {
        pump(out);
      } else {
        send_next(out);
      }
      return;
    case Event::Type::kLinkFree:
      pump(out);
      return;
    case Event::Type::kAbort:
      done_ = true;
      return;
    case Event::Type::kMsg:
      on_msg(ev, out);
      return;
  }
}

void ElementSenderCore::on_msg(const Event& ev, Actions& out) {
  switch (ev.msg.kind) {
    case VvMsg::Kind::kHalt:
      // Processed even when done_: under framing the speculative tail
      // (possibly including our own end-of-vector HALT) may still sit
      // untransmitted in the link and must be taken back — exactly the
      // elements the unframed pump would never have sent (§3.1 overshoot).
      rewind(ev.tail);
      emit(out, Action::Type::kRevokeTail);
      finish(out);
      return;
    case VvMsg::Kind::kSkip:
      if (!cfg_.skip_enabled) {
        ++violations_;  // SKIP outside SYNCS
        return;
      }
      handle_skip(ev.msg.arg, ev.tail, out);
      return;
    case VvMsg::Kind::kAck:
      if (done_) return;
      if (cfg_.pipelined) {
        ++violations_;  // ACK in pipelined mode (duplicated/reordered wire)
        return;
      }
      send_next(out);
      return;
    default:
      ++violations_;  // message kind the sender never receives
      return;
  }
}

// Pipelined streaming (§3.1): transmit the next element as soon as the link
// frees, until HALT arrives or the vector is exhausted. Under framing, one
// pump dispatch hands the link a whole frame's worth of speculative
// (revocable) sends and parks a single continuation at the last link-free
// time; the per-message transmission schedule is unchanged.
void ElementSenderCore::pump(Actions& out) {
  if (done_) return;
  for (std::uint32_t i = 0; i < cfg_.burst; ++i) {
    // The first message of a pump dispatch is exactly what the unframed pump
    // would emit at this instant — committed at hand-off, like every unframed
    // send. Only the rest of the burst is speculation, committed once its
    // transmission starts.
    emit_current(out, /*revocable=*/cfg_.framed && i > 0);
    if (done_) return;  // emitted HALT
  }
  emit(out, Action::Type::kPumpWhenFree);
}

// Stop-and-wait: transmit one element, then wait for ACK / SKIP / HALT.
void ElementSenderCore::send_next(Actions& out) {
  if (done_) return;
  emit_current(out, /*revocable=*/false);
}

// Send the element at cur_ (or HALT when exhausted).
void ElementSenderCore::emit_current(Actions& out, bool revocable) {
  if (cur_ == b_->end()) {
    emit(out, revocable ? Action::Type::kSendRevocable : Action::Type::kSend,
         VvMsg{.kind = VvMsg::Kind::kHalt});
    finish(out);
    return;
  }
  const RotatingVector::Element& e = *cur_;
  VvMsg m;
  m.kind = VvMsg::Kind::kElem;
  m.site = e.site;
  m.value = e.value;
  m.conflict = e.conflict;
  m.segment = e.segment;
  emit(out, revocable ? Action::Type::kSendRevocable : Action::Type::kSend, m);
  ++elems_sent_;
  advance();
}

// Move cur_ one step toward ⌈b⌉, tracking the segment counter (Alg 4
// lines 11–14: segs advances when passing a segment-final element).
void ElementSenderCore::advance() {
  OPTREP_CHECK(cur_ != b_->end());
  if (cur_->segment) ++segs_;
  ++cur_;
}

// Un-emit the speculative tail the binding is about to revoke, rewinding the
// cursor (and segs_/elems_sent_/done_) so the sender state equals what the
// unframed pump would have produced by now. Counts are clamped so a
// malicious TailView (fuzzing) cannot walk the cursor out of range.
void ElementSenderCore::rewind(const TailView& tail) {
  if (tail.halt) done_ = false;  // un-emit the speculative end-of-vector marker
  std::uint64_t n = tail.elems;
  while (n > 0 && elems_sent_ > 0 && cur_ != b_->begin()) {
    --cur_;
    if (cur_->segment && segs_ > 0) --segs_;
    --elems_sent_;
    --n;
  }
  if (n > 0) ++violations_;  // tail view exceeded what was actually sent
}

// SKIP(arg): honored only when we are still inside segment `arg`
// (Alg 4 sender lines 8–10); stale requests are ignored. Under framing the
// decision must be made against the *committed* (actually transmitted)
// cursor state: the event's tail view subtracts the speculative sends, and
// only when the skip is honored is that tail revoked and the cursor
// fast-forwarded from the committed position.
void ElementSenderCore::handle_skip(std::uint64_t arg, const TailView& tail, Actions& out) {
  if (done_ && !tail.halt) return;  // end-of-vector HALT already committed
  if (tail.segment_finals > segs_) {
    ++violations_;  // inconsistent tail view (fuzzing only)
    return;
  }
  if (arg != segs_ - tail.segment_finals) {
    // Stale: the elements the receiver wanted skipped are already on the
    // wire (or speculatively queued behind them — the stream keeps going
    // either way). In fault-free stop-and-wait this cannot happen; a
    // duplicated or reordered SKIP makes it reachable, so count and ignore.
    if (!cfg_.pipelined) ++violations_;
    return;
  }
  rewind(tail);
  emit(out, Action::Type::kRevokeTail);
  // Fast-forward past the remainder of the current segment without sending.
  while (cur_ != b_->end()) {
    const bool end_of_segment = cur_->segment;
    advance();
    if (end_of_segment) break;
  }
  // The unframed pump's continuation fires when the link frees — the binding
  // captures that instant before the marker occupies the link, so the framed
  // resume emits its first post-skip message at the exact legacy hand-off
  // time.
  emit(out, Action::Type::kCaptureResume);
  // Tell the receiver one segment was elided so its reconstruction of our
  // segment index stays exact (see wire.h kSkipped). Committed at hand-off.
  emit(out, Action::Type::kSend, VvMsg{.kind = VvMsg::Kind::kSkipped});
  if (cfg_.framed && cfg_.pipelined) {
    // The old continuation pointed at the pre-revocation link-free time;
    // re-park it. (Unframed keeps its continuation: identical schedule.)
    emit(out, Action::Type::kRepumpAtResume);
  }
  if (!cfg_.pipelined) send_next(out);  // SKIP doubles as the ack
}

void ElementSenderCore::finish(Actions& out) {
  done_ = true;
  emit(out, Action::Type::kFinished);
}

}  // namespace optrep::vv::protocol
