// Sans-I/O sender core for the rotating-vector sync protocols.
//
// One core serves all three algorithms: the SYNCB and SYNCC senders are
// identical element streams (Alg 2/3 — payload width is the binding's
// concern), and the SYNCS sender (Alg 4) additionally honors SKIP requests
// when `Config::skip_enabled` is set.
#pragma once

#include <cstdint>

#include "vv/protocol/core.h"
#include "vv/rotating_vector.h"

namespace optrep::vv::protocol {

// Streams b's elements in ≺ order until the vector is exhausted (HALT sent)
// or the receiver halts us. Pipelined mode emits `burst` sends per pump
// dispatch (the frame budget when framed; 1 otherwise) — the first committed,
// the rest speculative — and parks a continuation at the link-free time.
// Stop-and-wait emits one element per ACK/SKIP round trip.
class ElementSenderCore {
 public:
  struct Config {
    bool skip_enabled{false};  // SYNCS: honor SKIP(segment) requests
    bool pipelined{true};
    bool framed{false};
    std::uint32_t burst{1};  // sends per pump dispatch
  };

  ElementSenderCore(Config cfg, const RotatingVector* b);

  void step(const Event& ev, Actions& out);

  std::uint64_t elems_sent() const { return elems_sent_; }
  bool done() const { return done_; }
  std::uint64_t violations() const { return violations_; }

 private:
  void on_msg(const Event& ev, Actions& out);
  void pump(Actions& out);
  void send_next(Actions& out);
  void emit_current(Actions& out, bool revocable);
  void advance();
  void rewind(const TailView& tail);
  void handle_skip(std::uint64_t arg, const TailView& tail, Actions& out);
  void finish(Actions& out);

  Config cfg_;
  const RotatingVector* b_;
  // Walks b in ≺ order; b is not mutated during a session, so the iterator
  // stays valid for the session's lifetime.
  RotatingVector::const_iterator cur_;
  std::uint64_t segs_{0};
  std::uint64_t elems_sent_{0};
  std::uint64_t violations_{0};
  bool done_{false};
};

// Per-algorithm names (Alg 2/3/4); see Config::skip_enabled for SYNCS.
using BasicSenderCore = ElementSenderCore;
using ConflictSenderCore = ElementSenderCore;
using SkipSenderCore = ElementSenderCore;

}  // namespace optrep::vv::protocol
