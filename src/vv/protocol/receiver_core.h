// Sans-I/O receiver cores for SYNCB (Alg 2), SYNCC (Alg 3) and SYNCS
// (Alg 4). Receivers own the vector being synchronized — mutating `a` is
// protocol logic, not I/O — and classify every incoming element (applied /
// redundant / straggler), emitting trace-marker actions so the binding can
// observe without the cores depending on obs.
#pragma once

#include <cstdint>
#include <optional>

#include "vv/protocol/core.h"
#include "vv/rotating_vector.h"

namespace optrep::vv::protocol {

class ReceiverCoreBase {
 public:
  const ReceiverCounters& counters() const { return c_; }
  bool finished() const { return finished_; }

 protected:
  ReceiverCoreBase(bool pipelined, RotatingVector* a) : pipelined_(pipelined), a_(a) {}

  void ack(Actions& out) {
    if (pipelined_ || finished_) return;
    emit(out, Action::Type::kSend, VvMsg{.kind = VvMsg::Kind::kAck});
    ++c_.acks;
  }

  void halt_sender(Actions& out) {
    emit(out, Action::Type::kSend, VvMsg{.kind = VvMsg::Kind::kHalt});
    mark_finished(out);
  }

  void mark_finished(Actions& out) {
    if (!finished_) {
      finished_ = true;
      emit(out, Action::Type::kFinished);
    }
  }

  bool pipelined_;
  RotatingVector* a_;
  std::optional<SiteId> prev_;  // last modified element (Alg 2/3/4 `prev`)
  bool finished_{false};
  ReceiverCounters c_;
};

// Algorithm 2, receiver side.
class BasicReceiverCore : public ReceiverCoreBase {
 public:
  BasicReceiverCore(bool pipelined, RotatingVector* a) : ReceiverCoreBase(pipelined, a) {}
  void step(const Event& ev, Actions& out);
};

// Algorithm 3, receiver side.
class ConflictReceiverCore : public ReceiverCoreBase {
 public:
  ConflictReceiverCore(bool pipelined, RotatingVector* a, bool initially_concurrent)
      : ReceiverCoreBase(pipelined, a), reconcile_(initially_concurrent) {}
  void step(const Event& ev, Actions& out);

 private:
  bool reconcile_;
};

// Algorithm 4, receiver side, with exact tracking of the sender's segment
// index: segs_ counts segment-final elements received plus SKIPPED markers
// (FIFO delivery makes this reconstruction exact; see DESIGN.md).
class SkipReceiverCore : public ReceiverCoreBase {
 public:
  SkipReceiverCore(bool pipelined, RotatingVector* a, bool initially_concurrent)
      : ReceiverCoreBase(pipelined, a), reconcile_(initially_concurrent) {}
  void step(const Event& ev, Actions& out);

 private:
  void close_open_run();

  bool reconcile_;
  bool skipping_{false};
  std::uint64_t segs_{0};
};

}  // namespace optrep::vv::protocol
