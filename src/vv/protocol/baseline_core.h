// Sans-I/O cores for the baseline protocols: the traditional full-vector
// transfer and the Singhal–Kshemkalyani incremental transfer [23]. Both ship
// a precomputed element set (the caller decides full vs delta) and join at
// the receiver; the send set is known upfront, so the sender emits everything
// on kStart and the link's FIFO pacing models transmission time.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "vv/protocol/core.h"
#include "vv/version_vector.h"

namespace optrep::vv::protocol {

class BaselineSenderCore {
 public:
  explicit BaselineSenderCore(const std::vector<std::pair<SiteId, std::uint64_t>>* to_send)
      : to_send_(to_send) {}

  void step(const Event& ev, Actions& out) {
    if (ev.type != Event::Type::kStart || done_) return;
    for (const auto& [site, value] : *to_send_) {
      VvMsg m;
      m.kind = VvMsg::Kind::kElem;
      m.site = site;
      m.value = value;
      emit(out, Action::Type::kSend, m);
    }
    emit(out, Action::Type::kSend, VvMsg{.kind = VvMsg::Kind::kHalt});
    done_ = true;
  }

  std::uint64_t elems_sent() const { return to_send_->size(); }

 private:
  const std::vector<std::pair<SiteId, std::uint64_t>>* to_send_;
  bool done_{false};
};

class BaselineReceiverCore {
 public:
  explicit BaselineReceiverCore(VersionVector* a) : a_(a) {}

  void step(const Event& ev, Actions& out) {
    if (ev.type == Event::Type::kAbort) {
      finished_ = true;
      return;
    }
    if (ev.type != Event::Type::kMsg) return;
    const VvMsg& m = ev.msg;
    if (m.kind == VvMsg::Kind::kHalt) {
      if (!finished_) {
        finished_ = true;
        emit(out, Action::Type::kFinished);
      }
      return;
    }
    if (m.kind != VvMsg::Kind::kElem) {
      ++c_.violations;
      return;
    }
    if (m.value > a_->value(m.site)) {
      a_->set(m.site, m.value);
      ++c_.applied;
      emit(out, Action::Type::kTraceApplied, m);
    } else {
      ++c_.redundant;
      emit(out, Action::Type::kTraceRedundant, m);
    }
  }

  const ReceiverCounters& counters() const { return c_; }
  bool finished() const { return finished_; }

 private:
  VersionVector* a_;
  bool finished_{false};
  ReceiverCounters c_;
};

}  // namespace optrep::vv::protocol
