#include "vv/protocol/receiver_core.h"

namespace optrep::vv::protocol {

void BasicReceiverCore::step(const Event& ev, Actions& out) {
  if (ev.type == Event::Type::kAbort) {
    finished_ = true;
    return;
  }
  if (ev.type != Event::Type::kMsg) return;
  const VvMsg& m = ev.msg;
  if (m.kind == VvMsg::Kind::kHalt) {
    mark_finished(out);
    return;
  }
  if (m.kind != VvMsg::Kind::kElem) {
    ++c_.violations;  // was a hard invariant; reachable under faults/fuzzing
    return;
  }
  if (finished_) {
    ++c_.after_halt;
    return;
  }
  if (m.value <= a_->value(m.site)) {
    // The element that triggers the halt is not part of Γ (§3.3).
    halt_sender(out);
    return;
  }
  a_->rotate_after(prev_, m.site);
  prev_ = m.site;
  a_->set_element(m.site, m.value, false, false);
  ++c_.applied;
  emit(out, Action::Type::kTraceApplied, m);
  ack(out);
}

void ConflictReceiverCore::step(const Event& ev, Actions& out) {
  if (ev.type == Event::Type::kAbort) {
    finished_ = true;
    return;
  }
  if (ev.type != Event::Type::kMsg) return;
  const VvMsg& m = ev.msg;
  if (m.kind == VvMsg::Kind::kHalt) {
    mark_finished(out);
    return;
  }
  if (m.kind != VvMsg::Kind::kElem) {
    ++c_.violations;
    return;
  }
  if (finished_) {
    ++c_.after_halt;
    return;
  }
  if (m.value <= a_->value(m.site)) {
    if (m.conflict) {
      reconcile_ = true;  // Alg 3 lines 6–7: overlook tagged elements
      ++c_.redundant;     // |Γ|: transmitted only because its bit is set
      emit(out, Action::Type::kTraceRedundant, m);
      ack(out);
    } else {
      halt_sender(out);  // halt-trigger element is not part of Γ (§3.3)
    }
    return;
  }
  a_->rotate_after(prev_, m.site);
  prev_ = m.site;
  a_->set_element(m.site, m.value, reconcile_ || m.conflict, false);
  ++c_.applied;
  emit(out, Action::Type::kTraceApplied, m);
  ack(out);
}

// Close off the run of rotated-in elements if anything of ours follows it in
// ≺_a. Elements spliced in by a session need not dominate what sits behind
// them, so without the boundary a later SYNCS could treat the region as one
// segment and skip elements its peer lacks. (Not spelled out in the paper's
// pseudocode; see DESIGN.md "deviations".) Also the right closure when a
// faulty session is torn down mid-flight: an aborted attempt leaves the same
// interrupted run a HALT would.
void SkipReceiverCore::close_open_run() {
  if (!finished_ && prev_.has_value() && a_->next(*prev_).has_value()) {
    a_->set_segment_bit(*prev_, true);
  }
}

void SkipReceiverCore::step(const Event& ev, Actions& out) {
  if (ev.type == Event::Type::kAbort) {
    close_open_run();
    finished_ = true;
    return;
  }
  if (ev.type != Event::Type::kMsg) return;
  const VvMsg& m = ev.msg;
  switch (m.kind) {
    case VvMsg::Kind::kHalt:
      // Sender exhausted its vector: close the open run (see above).
      close_open_run();
      mark_finished(out);
      return;
    case VvMsg::Kind::kSkipped:
      if (finished_) return;  // in-flight marker after our HALT: not γ
      ++segs_;
      skipping_ = false;
      ++c_.segments_skipped;
      return;
    case VvMsg::Kind::kElem:
      break;
    default:
      ++c_.violations;
      return;
  }
  if (finished_) {
    ++c_.after_halt;
    return;
  }
  bool responded = false;
  if (m.value <= a_->value(m.site)) {
    if (!skipping_) {
      // Alg 4 lines 9–11, strengthened: the run of rotated-in elements is
      // interrupted, so it must be closed off *whenever* it exists — not
      // only when `reconcile` is already set. (The paper guards this with
      // `reconcile`, but the flag may only become true from this very
      // element's conflict bit, after later insertions have already been
      // spliced in front of elements they do not dominate; a finer
      // segmentation is always safe. See DESIGN.md "deviations".)
      if (prev_.has_value()) a_->set_segment_bit(*prev_, true);
      if (m.conflict) {
        reconcile_ = true;
        ++c_.redundant;
        emit(out, Action::Type::kTraceRedundant, m);
        if (!m.segment) {
          // Something of this sender segment remains to be skipped.
          emit(out, Action::Type::kSend, VvMsg{.kind = VvMsg::Kind::kSkip, .arg = segs_});
          ++c_.skip_msgs;
          skipping_ = true;
          responded = true;  // SKIP doubles as the stop-and-wait ack
        }
      } else {
        halt_sender(out);  // halt-trigger element is not part of Γ (§3.3)
        responded = true;
      }
    } else {
      ++c_.straggler;  // in-flight element of a segment we asked to skip
      emit(out, Action::Type::kTraceStraggler, m);
    }
  } else {
    skipping_ = false;  // Alg 4 line 21
    a_->rotate_after(prev_, m.site);
    prev_ = m.site;
    a_->set_element(m.site, m.value, reconcile_ || m.conflict, m.segment);
    ++c_.applied;
    emit(out, Action::Type::kTraceApplied, m);
  }
  // Segment bookkeeping from the received stream.
  if (m.segment) {
    ++segs_;
    skipping_ = false;
  }
  if (!responded && !finished_) ack(out);
}

}  // namespace optrep::vv::protocol
