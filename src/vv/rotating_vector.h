// Rotating vectors: the storage shared by BRV (§3.1), CRV (§3.2) and SRV (§4).
//
// A rotating vector is a version vector paired with a total order ≺ of its
// elements; the element of site i rotates to the front of the order when
// site i updates the replica. CRV adds one conflict bit per element, SRV adds
// a second segment bit. All three use this class; BRV simply never sets the
// bits.
//
// Representation: a slot table plus a flat open-addressed site→slot index
// (vv/flat_index.h) plus an intrusive doubly-linked list over slots encoding
// ≺. Lookup, rotate and insert are O(1); storage is O(n) — exactly the
// assumptions of §3.3.
//
// Order convention: front() is ⌊v⌋ (the least element, i.e. the most recently
// updated site) and back() is ⌈v⌉. Iteration runs front→back, the order in
// which SYNC* algorithms transmit elements; begin()/end() walk that order
// without materializing anything.
//
// Concurrency (PR 8): the vector embeds an rt::OLock (one lock guards slots,
// list links AND the site index together — they mutate as a unit). Locking is
// EXTERNAL: no method below acquires it, so single-threaded callers pay only
// the relaxed/acquire plain-mov cost of the std::atomic_ref field accessors
// that every shared word (element fields, prev/next links, head_/tail_, index
// cells) is routed through. Concurrent use follows the olock protocol:
//   writer:  rt::OLockGuard g(v.olock()); v.record_update(i);
//   reader:  rt::optimistic_read(v.olock(), tries, [&]{ ...v.value(i)... })
//            — on persistent interference, fall back to an OLockGuard.
// Readers racing a writer observe defined (possibly stale or torn-across-
// fields) values; read_validate() rejects any execution that overlapped a
// writer, so a validated read saw one committed epoch (rt/olock.h note).
// Iterator walks are bounds-safe under races (slot indexes are masked to the
// table, traversal is cycle-bounded by validation) but REQUIRE the capacity
// contract: reserve(n) first — mutations must not reallocate the slot table
// while readers hold pointers into it. The wave scheduler (repl/wave.h)
// reserves every replica before going parallel.
#pragma once

#include <atomic>
#include <cstdint>
#include <iterator>
#include <optional>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "rt/olock.h"
#include "vv/flat_index.h"
#include "vv/version_vector.h"

namespace optrep::vv {

// Which of the three paper implementations a vector participates in. Only
// affects wire format and the sync algorithm choice; storage is identical.
enum class VectorKind : std::uint8_t { kBrv, kCrv, kSrv };

constexpr std::string_view to_string(VectorKind k) {
  switch (k) {
    case VectorKind::kBrv: return "BRV";
    case VectorKind::kCrv: return "CRV";
    case VectorKind::kSrv: return "SRV";
  }
  return "?";
}

class RotatingVector {
 public:
  struct Element {
    SiteId site{};
    std::uint64_t value{0};
    bool conflict{false};  // CRV/SRV conflict bit (§3.2)
    bool segment{false};   // SRV segment bit: 1 marks the last element of a segment (§4)

    friend bool operator==(const Element&, const Element&) = default;
  };

  RotatingVector() = default;

  // Copies/moves transfer the contents but NOT the lock: each vector guards
  // itself with a fresh, unlocked rt::OLock (sync_with_recovery's saved-state
  // snapshots and StateSystem replica copies stay plain value types).
  RotatingVector(const RotatingVector& o)
      : slots_(o.slots_),
        index_(o.index_),
        head_(o.head_),
        tail_(o.tail_),
        free_slots_(o.free_slots_) {}
  RotatingVector& operator=(const RotatingVector& o) {
    slots_ = o.slots_;
    index_ = o.index_;
    head_ = o.head_;
    tail_ = o.tail_;
    free_slots_ = o.free_slots_;
    return *this;
  }
  RotatingVector(RotatingVector&& o) noexcept
      : slots_(std::move(o.slots_)),
        index_(std::move(o.index_)),
        head_(o.head_),
        tail_(o.tail_),
        free_slots_(std::move(o.free_slots_)) {}
  RotatingVector& operator=(RotatingVector&& o) noexcept {
    slots_ = std::move(o.slots_);
    index_ = std::move(o.index_);
    head_ = o.head_;
    tail_ = o.tail_;
    free_slots_ = std::move(o.free_slots_);
    return *this;
  }

  // The versioned lock guarding this vector (slots + links + site index).
  // External discipline — see the header comment.
  rt::OLock& olock() const { return olock_; }

  // Pre-size slot table, free list, and index for `n` sites: afterwards, a
  // vector that never exceeds n elements performs no heap allocation in
  // record_update / rotate_after / set_element / erase — and, equivalently,
  // never invalidates a concurrent optimistic reader's view of the tables.
  void reserve(std::size_t n) {
    slots_.reserve(n);
    free_slots_.reserve(n);
    index_.reserve(n);
  }

  // ---- reads -------------------------------------------------------------

  // v[i]; zero when absent (zero-valued elements are not stored).
  std::uint64_t value(SiteId site) const {
    const std::uint32_t s = index_.find(site);
    return s == kNil ? 0 : ld(slots_[s].elem.value);
  }
  bool contains(SiteId site) const { return index_.contains(site); }

  bool conflict_bit(SiteId site) const { return ld(slot_of(site).elem.conflict); }
  bool segment_bit(SiteId site) const { return ld(slot_of(site).elem.segment); }

  std::size_t size() const { return index_.size(); }
  bool empty() const { return index_.empty(); }

  // ⌊v⌋ and ⌈v⌉; nullopt when the vector is empty.
  std::optional<Element> front() const {
    const std::uint32_t h = ld(head_);
    if (h == kNil) return std::nullopt;
    return load_elem(h);
  }
  std::optional<Element> back() const {
    const std::uint32_t t = ld(tail_);
    if (t == kNil) return std::nullopt;
    return load_elem(t);
  }

  // Successor of `site` in ≺ (one step toward back()); nullopt at the end.
  std::optional<SiteId> next(SiteId site) const {
    const Slot& s = slot_of(site);
    const std::uint32_t n = ld(s.next);
    if (n == kNil) return std::nullopt;
    return ld(slots_[n].elem.site);
  }

  // Iteration in ≺ order, front to back — no materialization; senders walk
  // this directly. Bidirectional: a pipelined sender that speculated ahead
  // rewinds its cursor with operator-- when a HALT or SKIP revokes the
  // untransmitted tail (sim::FrameLink). Mutating the vector invalidates
  // iterators.
  //
  // operator* returns the Element BY VALUE (an atomic field-wise snapshot),
  // not a reference into slot storage: an optimistic reader must never hold
  // a plain reference a concurrent writer could mutate under it. operator->
  // therefore yields a value-carrying proxy. (`const Element& e = *it;` still
  // works — lifetime extension — but the binding is to a snapshot.)
  class const_iterator {
   public:
    // A value-snapshot proxy so `it->site` works without a stable address.
    struct arrow_proxy {
      Element e;
      const Element* operator->() const { return &e; }
    };

    using iterator_category = std::bidirectional_iterator_tag;
    using value_type = Element;
    using difference_type = std::ptrdiff_t;
    using pointer = arrow_proxy;
    using reference = Element;

    const_iterator() = default;
    Element operator*() const { return owner_->load_elem(s_); }
    arrow_proxy operator->() const { return {owner_->load_elem(s_)}; }
    const_iterator& operator++() {
      s_ = ld(owner_->slots_[s_].next);
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator t = *this;
      ++*this;
      return t;
    }
    const_iterator& operator--() {
      s_ = s_ == kNil ? ld(owner_->tail_) : ld(owner_->slots_[s_].prev);
      return *this;
    }
    const_iterator operator--(int) {
      const_iterator t = *this;
      --*this;
      return t;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.s_ == b.s_;
    }

   private:
    friend class RotatingVector;
    const_iterator(const RotatingVector* owner, std::uint32_t s) : owner_(owner), s_(s) {}
    const RotatingVector* owner_{nullptr};
    std::uint32_t s_{0xffffffffu};
  };
  const_iterator begin() const { return {this, ld(head_)}; }
  const_iterator end() const { return {this, kNil}; }

  // Elements in ≺ order, front to back, as an owned vector. Prefer
  // begin()/end() on hot paths; this copies every element.
  std::vector<Element> in_order() const;

  // Values only, for oracle cross-checks.
  VersionVector to_version_vector() const;

  // ---- mutations ---------------------------------------------------------

  // Record one local update on `site` (§3.1): increment v[i], clear the
  // conflict bit (§3.2 "reset whenever v[i] is incremented due to a replica
  // update"), and ROTATE(φ, i) so the element becomes ⌊v⌋. The modified
  // ROTATE of §4 carries a set segment bit to the element's predecessor.
  void record_update(SiteId site);

  // ROTATE_v(prev, i) (§3.1 definition, with the §4 segment-bit carry):
  // position element i immediately after `prev`, or at the front when prev is
  // φ (nullopt). Inserts the element (value 0, bits clear) if absent.
  void rotate_after(std::optional<SiteId> prev, SiteId site);

  // Write value and bits of an existing-or-new element without changing its
  // position (receivers call rotate_after first, then set_element).
  void set_element(SiteId site, std::uint64_t value, bool conflict, bool segment);

  void set_conflict_bit(SiteId site, bool bit) { st(slot_of_mut(site).elem.conflict, bit); }
  void set_segment_bit(SiteId site, bool bit) { st(slot_of_mut(site).elem.segment, bit); }

  // Remove an element entirely (used by the §7 pruning extension for retired
  // sites). The segment-bit carry applies, exactly as for a rotation: the
  // boundary moves to the predecessor. No-op if the site is absent.
  void erase(SiteId site);

  // ---- debugging / figures -------------------------------------------------

  // "<C:3, A:2*, B:1|>" in ≺ order; '*' marks a set conflict bit, '|' a set
  // segment bit (the paper draws a bar above the element / a box boundary).
  std::string to_string() const;

  // Structural equality: same values, same ≺ order, same bits.
  bool identical_to(const RotatingVector& other) const;

  // Value equality ignoring order and bits (what Theorem 3.1 is about).
  bool same_values(const VersionVector& oracle) const;

  // Probe statistics of the site index (see FlatSiteIndex::probe_stats) —
  // deterministic index-quality numbers for bench_microops baselines.
  FlatSiteIndex::ProbeStats index_probe_stats() const { return index_.probe_stats(); }

 private:
  // Also the FlatSiteIndex empty marker: slot indexes stay below kNil (the
  // "vector too large" check in insert_front), so the index can use it freely.
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static_assert(kNil == FlatSiteIndex::kNilSlot);

  struct Slot {
    Element elem;
    std::uint32_t prev{kNil};  // toward front
    std::uint32_t next{kNil};  // toward back
  };

  // Shared-word accessors (same discipline as FlatSiteIndex): acquire loads,
  // release stores, via atomic_ref — so optimistic readers racing the single
  // queued writer read defined values and olock validation is sound.
  template <class T>
  static T ld(const T& cell) {
    return std::atomic_ref<T>(const_cast<T&>(cell)).load(std::memory_order_acquire);
  }
  template <class T>
  static void st(T& cell, T v) {
    std::atomic_ref<T>(cell).store(v, std::memory_order_release);
  }

  // Field-wise atomic snapshot of a slot's element.
  Element load_elem(std::uint32_t s) const {
    const Slot& sl = slots_[s];
    Element e;
    e.site = ld(sl.elem.site);
    e.value = ld(sl.elem.value);
    e.conflict = ld(sl.elem.conflict);
    e.segment = ld(sl.elem.segment);
    return e;
  }

  const Slot& slot_of(SiteId site) const {
    const std::uint32_t s = index_.find(site);
    OPTREP_CHECK_MSG(s != kNil, "element not present");
    return slots_[s];
  }
  Slot& slot_of_mut(SiteId site) {
    const std::uint32_t s = index_.find(site);
    OPTREP_CHECK_MSG(s != kNil, "element not present");
    return slots_[s];
  }

  // Insert a fresh zero-valued slot at the front; returns its index.
  std::uint32_t insert_front(SiteId site);
  // Detach slot s from the list, carrying its segment bit to its predecessor
  // (§4: "when the element is rotated, the bit shall be carried on to its
  // predecessor"). Clears the slot's own segment bit.
  void unlink(std::uint32_t s);
  // Attach slot s immediately after slot p (p == kNil → at front).
  void link_after(std::uint32_t p, std::uint32_t s);

  std::vector<Slot> slots_;
  FlatSiteIndex index_;
  std::uint32_t head_{kNil};
  std::uint32_t tail_{kNil};
  std::vector<std::uint32_t> free_slots_;  // reusable after erase()
  mutable rt::OLock olock_;
};

}  // namespace optrep::vv
