// Rotating vectors: the storage shared by BRV (§3.1), CRV (§3.2) and SRV (§4).
//
// A rotating vector is a version vector paired with a total order ≺ of its
// elements; the element of site i rotates to the front of the order when
// site i updates the replica. CRV adds one conflict bit per element, SRV adds
// a second segment bit. All three use this class; BRV simply never sets the
// bits.
//
// Representation (SoA): parallel columns over 32-bit slot handles — site,
// value, and flag columns for the element fields, prev/next index columns
// encoding ≺ as an intrusive doubly-linked list — plus a flat open-addressed
// site→slot index (vv/flat_index.h). Lookup, rotate and insert are O(1);
// storage is O(n) — exactly the assumptions of §3.3. The columns are
// vv::Column (vv/arena.h): heap-backed by default, or carved from a shared
// per-world Arena after attach_arena(), so a 10^5-site world is a few slabs
// instead of several heap blocks per replica. Sync senders walk site/value
// columns sequentially; the conflict/segment bits live in their own byte
// column so a BRV walk never drags flag bytes through the cache.
//
// Order convention: front() is ⌊v⌋ (the least element, i.e. the most recently
// updated site) and back() is ⌈v⌉. Iteration runs front→back, the order in
// which SYNC* algorithms transmit elements; begin()/end() walk that order
// without materializing anything.
//
// Concurrency (PR 8): the vector embeds an rt::OLock (one lock guards columns,
// list links AND the site index together — they mutate as a unit). Locking is
// EXTERNAL: no method below acquires it, so single-threaded callers pay only
// the relaxed/acquire plain-mov cost of the std::atomic_ref field accessors
// that every shared word (element columns, prev/next links, head_/tail_, index
// cells) is routed through. Concurrent use follows the olock protocol:
//   writer:  rt::OLockGuard g(v.olock()); v.record_update(i);
//   reader:  rt::optimistic_read(v.olock(), tries, [&]{ ...v.value(i)... })
//            — on persistent interference, fall back to an OLockGuard.
// Readers racing a writer observe defined (possibly stale or torn-across-
// fields) values; read_validate() rejects any execution that overlapped a
// writer, so a validated read saw one committed epoch (rt/olock.h note).
// Iterator walks are bounds-safe under races (slot indexes are masked to the
// table, traversal is cycle-bounded by validation) but REQUIRE the capacity
// contract: reserve(n) first — mutations must not reallocate the columns
// while readers hold pointers into them. The wave scheduler (repl/wave.h)
// reserves every replica before going parallel. Arena-backed columns keep
// outgrown blocks mapped (Arena never frees), which downgrades a violated
// capacity contract from use-after-free to a stale read that validation
// rejects — the contract itself is unchanged.
#pragma once

#include <atomic>
#include <cstdint>
#include <iterator>
#include <optional>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "rt/olock.h"
#include "vv/arena.h"
#include "vv/flat_index.h"
#include "vv/version_vector.h"

namespace optrep::vv {

// Which of the three paper implementations a vector participates in. Only
// affects wire format and the sync algorithm choice; storage is identical.
enum class VectorKind : std::uint8_t { kBrv, kCrv, kSrv };

constexpr std::string_view to_string(VectorKind k) {
  switch (k) {
    case VectorKind::kBrv: return "BRV";
    case VectorKind::kCrv: return "CRV";
    case VectorKind::kSrv: return "SRV";
  }
  return "?";
}

class RotatingVector {
 public:
  struct Element {
    SiteId site{};
    std::uint64_t value{0};
    bool conflict{false};  // CRV/SRV conflict bit (§3.2)
    bool segment{false};   // SRV segment bit: 1 marks the last element of a segment (§4)

    friend bool operator==(const Element&, const Element&) = default;
  };

  RotatingVector() = default;

  // Copies/moves transfer the contents but NOT the lock: each vector guards
  // itself with a fresh, unlocked rt::OLock (sync_with_recovery's saved-state
  // snapshots and StateSystem replica copies stay plain value types). Column
  // semantics apply: a copy is a heap-backed snapshot regardless of the
  // source's arena; copy-assignment keeps the destination's backing; a
  // moved-from source stays bound to its arena.
  RotatingVector(const RotatingVector& o)
      : site_(o.site_),
        value_(o.value_),
        flags_(o.flags_),
        prev_(o.prev_),
        next_(o.next_),
        index_(o.index_),
        head_(o.head_),
        tail_(o.tail_),
        free_slots_(o.free_slots_) {}
  RotatingVector& operator=(const RotatingVector& o) {
    site_ = o.site_;
    value_ = o.value_;
    flags_ = o.flags_;
    prev_ = o.prev_;
    next_ = o.next_;
    index_ = o.index_;
    head_ = o.head_;
    tail_ = o.tail_;
    free_slots_ = o.free_slots_;
    return *this;
  }
  RotatingVector(RotatingVector&& o) noexcept
      : site_(std::move(o.site_)),
        value_(std::move(o.value_)),
        flags_(std::move(o.flags_)),
        prev_(std::move(o.prev_)),
        next_(std::move(o.next_)),
        index_(std::move(o.index_)),
        head_(o.head_),
        tail_(o.tail_),
        free_slots_(std::move(o.free_slots_)) {}
  RotatingVector& operator=(RotatingVector&& o) noexcept {
    site_ = std::move(o.site_);
    value_ = std::move(o.value_);
    flags_ = std::move(o.flags_);
    prev_ = std::move(o.prev_);
    next_ = std::move(o.next_);
    index_ = std::move(o.index_);
    head_ = o.head_;
    tail_ = o.tail_;
    free_slots_ = std::move(o.free_slots_);
    return *this;
  }

  // The versioned lock guarding this vector (columns + links + site index).
  // External discipline — see the header comment.
  rt::OLock& olock() const { return olock_; }

  // Back every column and the site index with a per-world arena. Only legal
  // on a never-allocated vector; call before reserve().
  void attach_arena(Arena* arena) {
    site_.attach_arena(arena);
    value_.attach_arena(arena);
    flags_.attach_arena(arena);
    prev_.attach_arena(arena);
    next_.attach_arena(arena);
    free_slots_.attach_arena(arena);
    index_.attach_arena(arena);
  }

  // Pre-size columns, free list, and index for `n` sites: afterwards, a
  // vector that never exceeds n elements performs no heap allocation in
  // record_update / rotate_after / set_element / erase — and, equivalently,
  // never invalidates a concurrent optimistic reader's view of the columns.
  void reserve(std::size_t n) {
    site_.reserve(n);
    value_.reserve(n);
    flags_.reserve(n);
    prev_.reserve(n);
    next_.reserve(n);
    free_slots_.reserve(n);
    index_.reserve(n);
  }

  // ---- reads -------------------------------------------------------------

  // v[i]; zero when absent (zero-valued elements are not stored).
  std::uint64_t value(SiteId site) const {
    const std::uint32_t s = index_.find(site);
    return s == kNil ? 0 : ld(value_[s]);
  }
  bool contains(SiteId site) const { return index_.contains(site); }

  bool conflict_bit(SiteId site) const { return (ld(flags_[slot_of(site)]) & kConflictFlag) != 0; }
  bool segment_bit(SiteId site) const { return (ld(flags_[slot_of(site)]) & kSegmentFlag) != 0; }

  std::size_t size() const { return index_.size(); }
  bool empty() const { return index_.empty(); }

  // ⌊v⌋ and ⌈v⌉; nullopt when the vector is empty.
  std::optional<Element> front() const {
    const std::uint32_t h = ld(head_);
    if (h == kNil) return std::nullopt;
    return load_elem(h);
  }
  std::optional<Element> back() const {
    const std::uint32_t t = ld(tail_);
    if (t == kNil) return std::nullopt;
    return load_elem(t);
  }

  // Successor of `site` in ≺ (one step toward back()); nullopt at the end.
  std::optional<SiteId> next(SiteId site) const {
    const std::uint32_t n = ld(next_[slot_of(site)]);
    if (n == kNil) return std::nullopt;
    return ld(site_[n]);
  }

  // Iteration in ≺ order, front to back — no materialization; senders walk
  // this directly. Bidirectional: a pipelined sender that speculated ahead
  // rewinds its cursor with operator-- when a HALT or SKIP revokes the
  // untransmitted tail (sim::FrameLink). Mutating the vector invalidates
  // iterators.
  //
  // operator* returns the Element BY VALUE (an atomic field-wise snapshot),
  // not a reference into column storage: an optimistic reader must never hold
  // a plain reference a concurrent writer could mutate under it. operator->
  // therefore yields a value-carrying proxy. (`const Element& e = *it;` still
  // works — lifetime extension — but the binding is to a snapshot.)
  class const_iterator {
   public:
    // A value-snapshot proxy so `it->site` works without a stable address.
    struct arrow_proxy {
      Element e;
      const Element* operator->() const { return &e; }
    };

    using iterator_category = std::bidirectional_iterator_tag;
    using value_type = Element;
    using difference_type = std::ptrdiff_t;
    using pointer = arrow_proxy;
    using reference = Element;

    const_iterator() = default;
    Element operator*() const { return owner_->load_elem(s_); }
    arrow_proxy operator->() const { return {owner_->load_elem(s_)}; }
    const_iterator& operator++() {
      s_ = ld(owner_->next_[s_]);
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator t = *this;
      ++*this;
      return t;
    }
    const_iterator& operator--() {
      s_ = s_ == kNil ? ld(owner_->tail_) : ld(owner_->prev_[s_]);
      return *this;
    }
    const_iterator operator--(int) {
      const_iterator t = *this;
      --*this;
      return t;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.s_ == b.s_;
    }

   private:
    friend class RotatingVector;
    const_iterator(const RotatingVector* owner, std::uint32_t s) : owner_(owner), s_(s) {}
    const RotatingVector* owner_{nullptr};
    std::uint32_t s_{0xffffffffu};
  };
  const_iterator begin() const { return {this, ld(head_)}; }
  const_iterator end() const { return {this, kNil}; }

  // Elements in ≺ order, front to back, as an owned vector. Prefer
  // begin()/end() on hot paths; this copies every element.
  std::vector<Element> in_order() const;

  // Values only, for oracle cross-checks.
  VersionVector to_version_vector() const;

  // ---- mutations ---------------------------------------------------------

  // Record one local update on `site` (§3.1): increment v[i], clear the
  // conflict bit (§3.2 "reset whenever v[i] is incremented due to a replica
  // update"), and ROTATE(φ, i) so the element becomes ⌊v⌋. The modified
  // ROTATE of §4 carries a set segment bit to the element's predecessor.
  void record_update(SiteId site);

  // ROTATE_v(prev, i) (§3.1 definition, with the §4 segment-bit carry):
  // position element i immediately after `prev`, or at the front when prev is
  // φ (nullopt). Inserts the element (value 0, bits clear) if absent.
  void rotate_after(std::optional<SiteId> prev, SiteId site);

  // Write value and bits of an existing-or-new element without changing its
  // position (receivers call rotate_after first, then set_element).
  void set_element(SiteId site, std::uint64_t value, bool conflict, bool segment);

  void set_conflict_bit(SiteId site, bool bit) { set_flag(slot_of(site), kConflictFlag, bit); }
  void set_segment_bit(SiteId site, bool bit) { set_flag(slot_of(site), kSegmentFlag, bit); }

  // Remove an element entirely (used by the §7 pruning extension for retired
  // sites). The segment-bit carry applies, exactly as for a rotation: the
  // boundary moves to the predecessor. No-op if the site is absent.
  // Sustained erase churn triggers slot compaction — see compact().
  void erase(SiteId site);

  // ---- debugging / figures -------------------------------------------------

  // "<C:3, A:2*, B:1|>" in ≺ order; '*' marks a set conflict bit, '|' a set
  // segment bit (the paper draws a bar above the element / a box boundary).
  std::string to_string() const;

  // Structural equality: same values, same ≺ order, same bits.
  bool identical_to(const RotatingVector& other) const;

  // Value equality ignoring order and bits (what Theorem 3.1 is about).
  bool same_values(const VersionVector& oracle) const;

  // Probe statistics of the site index (see FlatSiteIndex::probe_stats) —
  // deterministic index-quality numbers for bench_microops baselines.
  FlatSiteIndex::ProbeStats index_probe_stats() const { return index_.probe_stats(); }

  // Footprint of this vector's storage at allocated capacity: all five SoA
  // columns, the free list, and the site index. Surfaced per-system as
  // state.vector_memory_bytes / state.index_memory_bytes gauges and in
  // optrep.run/v1 report "memory" sections.
  std::uint64_t memory_bytes() const {
    return site_.memory_bytes() + value_.memory_bytes() + flags_.memory_bytes() +
           prev_.memory_bytes() + next_.memory_bytes() + free_slots_.memory_bytes() +
           index_.memory_bytes();
  }
  std::uint64_t index_memory_bytes() const { return index_.memory_bytes(); }

  // Free-list/occupancy introspection for the compaction regression test:
  // slots currently awaiting reuse, and total column height (live + free).
  std::size_t free_slot_count() const { return free_slots_.size(); }
  std::size_t slot_count() const { return site_.size(); }

 private:
  // Also the FlatSiteIndex empty marker: slot indexes stay below kNil (the
  // "vector too large" check in insert_front), so the index can use it freely.
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static_assert(kNil == FlatSiteIndex::kNilSlot);

  // Flag column bits (one byte per slot).
  static constexpr std::uint8_t kConflictFlag = 1u << 0;
  static constexpr std::uint8_t kSegmentFlag = 1u << 1;

  // Shared-word accessors (same discipline as FlatSiteIndex): acquire loads,
  // release stores, via atomic_ref — so optimistic readers racing the single
  // queued writer read defined values and olock validation is sound.
  template <class T>
  static T ld(const T& cell) {
    return std::atomic_ref<T>(const_cast<T&>(cell)).load(std::memory_order_acquire);
  }
  template <class T>
  static void st(T& cell, T v) {
    std::atomic_ref<T>(cell).store(v, std::memory_order_release);
  }

  // Flag bit read-modify-write: safe as a load + release store because flag
  // mutations only happen under the single queued writer.
  void set_flag(std::uint32_t s, std::uint8_t mask, bool bit) {
    const std::uint8_t f = ld(flags_[s]);
    st(flags_[s], static_cast<std::uint8_t>(bit ? (f | mask) : (f & ~mask)));
  }

  // Field-wise atomic snapshot of a slot's element.
  Element load_elem(std::uint32_t s) const {
    Element e;
    e.site = ld(site_[s]);
    e.value = ld(value_[s]);
    const std::uint8_t f = ld(flags_[s]);
    e.conflict = (f & kConflictFlag) != 0;
    e.segment = (f & kSegmentFlag) != 0;
    return e;
  }

  std::uint32_t slot_of(SiteId site) const {
    const std::uint32_t s = index_.find(site);
    OPTREP_CHECK_MSG(s != kNil, "element not present");
    return s;
  }

  // Insert a fresh zero-valued slot at the front; returns its index.
  std::uint32_t insert_front(SiteId site);
  // Detach slot s from the list, carrying its segment bit to its predecessor
  // (§4: "when the element is rotated, the bit shall be carried on to its
  // predecessor"). Clears the slot's own segment bit.
  void unlink(std::uint32_t s);
  // Attach slot s immediately after slot p (p == kNil → at front).
  void link_after(std::uint32_t p, std::uint32_t s);

  // Reclaim the free list: relocate live tail slots into the holes left by
  // erase() and shrink the columns (capacity — and thus any reader-pinned
  // block — is kept). Triggered by erase() when dead slots outnumber live
  // elements, so column height stays O(live) through pruning churn instead
  // of growing monotonically with every retired site.
  void compact();
  // Move slot `from` to empty slot `to`: copy the element columns, rewire
  // both list neighbors (and head_/tail_), and point the site index at the
  // new slot in place (FlatSiteIndex::update — probe structure unchanged).
  void relocate(std::uint32_t from, std::uint32_t to);

  // SoA columns, all indexed by the same 32-bit slot handle.
  Column<SiteId> site_;
  Column<std::uint64_t> value_;
  Column<std::uint8_t> flags_;   // kConflictFlag | kSegmentFlag
  Column<std::uint32_t> prev_;   // toward front
  Column<std::uint32_t> next_;   // toward back
  FlatSiteIndex index_;
  std::uint32_t head_{kNil};
  std::uint32_t tail_{kNil};
  Column<std::uint32_t> free_slots_;  // reusable after erase()
  mutable rt::OLock olock_;
};

}  // namespace optrep::vv
