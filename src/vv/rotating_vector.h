// Rotating vectors: the storage shared by BRV (§3.1), CRV (§3.2) and SRV (§4).
//
// A rotating vector is a version vector paired with a total order ≺ of its
// elements; the element of site i rotates to the front of the order when
// site i updates the replica. CRV adds one conflict bit per element, SRV adds
// a second segment bit. All three use this class; BRV simply never sets the
// bits.
//
// Representation: a slot table plus a flat open-addressed site→slot index
// (vv/flat_index.h) plus an intrusive doubly-linked list over slots encoding
// ≺. Lookup, rotate and insert are O(1); storage is O(n) — exactly the
// assumptions of §3.3.
//
// Order convention: front() is ⌊v⌋ (the least element, i.e. the most recently
// updated site) and back() is ⌈v⌉. Iteration runs front→back, the order in
// which SYNC* algorithms transmit elements; begin()/end() walk that order
// without materializing anything.
#pragma once

#include <cstdint>
#include <iterator>
#include <optional>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "vv/flat_index.h"
#include "vv/version_vector.h"

namespace optrep::vv {

// Which of the three paper implementations a vector participates in. Only
// affects wire format and the sync algorithm choice; storage is identical.
enum class VectorKind : std::uint8_t { kBrv, kCrv, kSrv };

constexpr std::string_view to_string(VectorKind k) {
  switch (k) {
    case VectorKind::kBrv: return "BRV";
    case VectorKind::kCrv: return "CRV";
    case VectorKind::kSrv: return "SRV";
  }
  return "?";
}

class RotatingVector {
 public:
  struct Element {
    SiteId site{};
    std::uint64_t value{0};
    bool conflict{false};  // CRV/SRV conflict bit (§3.2)
    bool segment{false};   // SRV segment bit: 1 marks the last element of a segment (§4)

    friend bool operator==(const Element&, const Element&) = default;
  };

  RotatingVector() = default;

  // Pre-size slot table, free list, and index for `n` sites: afterwards, a
  // vector that never exceeds n elements performs no heap allocation in
  // record_update / rotate_after / set_element / erase.
  void reserve(std::size_t n) {
    slots_.reserve(n);
    free_slots_.reserve(n);
    index_.reserve(n);
  }

  // ---- reads -------------------------------------------------------------

  // v[i]; zero when absent (zero-valued elements are not stored).
  std::uint64_t value(SiteId site) const {
    const std::uint32_t s = index_.find(site);
    return s == kNil ? 0 : slots_[s].elem.value;
  }
  bool contains(SiteId site) const { return index_.contains(site); }

  bool conflict_bit(SiteId site) const { return slot_of(site).elem.conflict; }
  bool segment_bit(SiteId site) const { return slot_of(site).elem.segment; }

  std::size_t size() const { return index_.size(); }
  bool empty() const { return index_.empty(); }

  // ⌊v⌋ and ⌈v⌉; nullopt when the vector is empty.
  std::optional<Element> front() const {
    if (head_ == kNil) return std::nullopt;
    return slots_[head_].elem;
  }
  std::optional<Element> back() const {
    if (tail_ == kNil) return std::nullopt;
    return slots_[tail_].elem;
  }

  // Successor of `site` in ≺ (one step toward back()); nullopt at the end.
  std::optional<SiteId> next(SiteId site) const {
    const Slot& s = slot_of(site);
    if (s.next == kNil) return std::nullopt;
    return slots_[s.next].elem.site;
  }

  // Iteration in ≺ order, front to back — no materialization; senders walk
  // this directly. Bidirectional: a pipelined sender that speculated ahead
  // rewinds its cursor with operator-- when a HALT or SKIP revokes the
  // untransmitted tail (sim::FrameLink). Mutating the vector invalidates
  // iterators.
  class const_iterator {
   public:
    using iterator_category = std::bidirectional_iterator_tag;
    using value_type = Element;
    using difference_type = std::ptrdiff_t;
    using pointer = const Element*;
    using reference = const Element&;

    const_iterator() = default;
    reference operator*() const { return owner_->slots_[s_].elem; }
    pointer operator->() const { return &owner_->slots_[s_].elem; }
    const_iterator& operator++() {
      s_ = owner_->slots_[s_].next;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator t = *this;
      ++*this;
      return t;
    }
    const_iterator& operator--() {
      s_ = s_ == kNil ? owner_->tail_ : owner_->slots_[s_].prev;
      return *this;
    }
    const_iterator operator--(int) {
      const_iterator t = *this;
      --*this;
      return t;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.s_ == b.s_;
    }

   private:
    friend class RotatingVector;
    const_iterator(const RotatingVector* owner, std::uint32_t s) : owner_(owner), s_(s) {}
    const RotatingVector* owner_{nullptr};
    std::uint32_t s_{0xffffffffu};
  };
  const_iterator begin() const { return {this, head_}; }
  const_iterator end() const { return {this, kNil}; }

  // Elements in ≺ order, front to back, as an owned vector. Prefer
  // begin()/end() on hot paths; this copies every element.
  std::vector<Element> in_order() const;

  // Values only, for oracle cross-checks.
  VersionVector to_version_vector() const;

  // ---- mutations ---------------------------------------------------------

  // Record one local update on `site` (§3.1): increment v[i], clear the
  // conflict bit (§3.2 "reset whenever v[i] is incremented due to a replica
  // update"), and ROTATE(φ, i) so the element becomes ⌊v⌋. The modified
  // ROTATE of §4 carries a set segment bit to the element's predecessor.
  void record_update(SiteId site);

  // ROTATE_v(prev, i) (§3.1 definition, with the §4 segment-bit carry):
  // position element i immediately after `prev`, or at the front when prev is
  // φ (nullopt). Inserts the element (value 0, bits clear) if absent.
  void rotate_after(std::optional<SiteId> prev, SiteId site);

  // Write value and bits of an existing-or-new element without changing its
  // position (receivers call rotate_after first, then set_element).
  void set_element(SiteId site, std::uint64_t value, bool conflict, bool segment);

  void set_conflict_bit(SiteId site, bool bit) { slot_of_mut(site).elem.conflict = bit; }
  void set_segment_bit(SiteId site, bool bit) { slot_of_mut(site).elem.segment = bit; }

  // Remove an element entirely (used by the §7 pruning extension for retired
  // sites). The segment-bit carry applies, exactly as for a rotation: the
  // boundary moves to the predecessor. No-op if the site is absent.
  void erase(SiteId site);

  // ---- debugging / figures -------------------------------------------------

  // "<C:3, A:2*, B:1|>" in ≺ order; '*' marks a set conflict bit, '|' a set
  // segment bit (the paper draws a bar above the element / a box boundary).
  std::string to_string() const;

  // Structural equality: same values, same ≺ order, same bits.
  bool identical_to(const RotatingVector& other) const;

  // Value equality ignoring order and bits (what Theorem 3.1 is about).
  bool same_values(const VersionVector& oracle) const;

  // Probe statistics of the site index (see FlatSiteIndex::probe_stats) —
  // deterministic index-quality numbers for bench_microops baselines.
  FlatSiteIndex::ProbeStats index_probe_stats() const { return index_.probe_stats(); }

 private:
  // Also the FlatSiteIndex empty marker: slot indexes stay below kNil (the
  // "vector too large" check in insert_front), so the index can use it freely.
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static_assert(kNil == FlatSiteIndex::kNilSlot);

  struct Slot {
    Element elem;
    std::uint32_t prev{kNil};  // toward front
    std::uint32_t next{kNil};  // toward back
  };

  const Slot& slot_of(SiteId site) const {
    const std::uint32_t s = index_.find(site);
    OPTREP_CHECK_MSG(s != kNil, "element not present");
    return slots_[s];
  }
  Slot& slot_of_mut(SiteId site) {
    const std::uint32_t s = index_.find(site);
    OPTREP_CHECK_MSG(s != kNil, "element not present");
    return slots_[s];
  }

  // Insert a fresh zero-valued slot at the front; returns its index.
  std::uint32_t insert_front(SiteId site);
  // Detach slot s from the list, carrying its segment bit to its predecessor
  // (§4: "when the element is rotated, the bit shall be carried on to its
  // predecessor"). Clears the slot's own segment bit.
  void unlink(std::uint32_t s);
  // Attach slot s immediately after slot p (p == kNil → at front).
  void link_after(std::uint32_t p, std::uint32_t s);

  std::vector<Slot> slots_;
  FlatSiteIndex index_;
  std::uint32_t head_{kNil};
  std::uint32_t tail_{kNil};
  std::vector<std::uint32_t> free_slots_;  // reusable after erase()
};

}  // namespace optrep::vv
