#include "vv/codec.h"

namespace optrep::vv {

void BitWriter::put(std::uint64_t value, std::uint32_t bits) {
  OPTREP_CHECK(bits <= 64);
  if (bits < 64) {
    OPTREP_CHECK_MSG(value < (std::uint64_t{1} << bits), "value does not fit field");
  }
  for (std::uint32_t i = bits; i-- > 0;) {
    const std::uint64_t bit = (value >> i) & 1u;
    const std::uint64_t pos = bit_size_++;
    if (pos % 8 == 0) buf_.push_back(0);
    if (bit != 0) buf_.back() |= static_cast<std::uint8_t>(0x80u >> (pos % 8));
  }
}

std::uint64_t BitReader::get(std::uint32_t bits) {
  OPTREP_CHECK(bits <= 64);
  // Whole-field bounds check up front: truncated or corrupted input fails
  // loudly before any bit of the field is consumed.
  OPTREP_CHECK_MSG(pos_ + bits <= 8 * buf_->size(), "read past end of buffer");
  std::uint64_t out = 0;
  for (std::uint32_t i = 0; i < bits; ++i) {
    const std::uint64_t pos = pos_++;
    const std::uint8_t byte = (*buf_)[pos / 8];
    out = (out << 1) | ((byte >> (7 - pos % 8)) & 1u);
  }
  return out;
}

bool BitReader::try_get(std::uint32_t bits, std::uint64_t* out) {
  OPTREP_CHECK(bits <= 64);
  if (pos_ + bits > 8 * buf_->size()) return false;
  *out = get(bits);
  return true;
}

namespace {

std::uint32_t flag_bits(VectorKind kind) {
  switch (kind) {
    case VectorKind::kBrv: return 0;
    case VectorKind::kCrv: return 1;
    case VectorKind::kSrv: return 2;
  }
  return 2;
}

}  // namespace

void encode_msg(BitWriter& w, const CostModel& cm, VectorKind kind, Direction dir,
                const VvMsg& msg) {
  switch (msg.kind) {
    case VvMsg::Kind::kElem:
      OPTREP_CHECK(dir == Direction::kForward);
      w.put(1, 1);
      w.put(msg.site.value, cm.site_bits());
      w.put(msg.value, cm.value_bits());
      if (flag_bits(kind) >= 1) w.put(msg.conflict ? 1 : 0, 1);
      if (flag_bits(kind) >= 2) w.put(msg.segment ? 1 : 0, 1);
      return;
    case VvMsg::Kind::kHalt:
      w.put(0b00, 2);
      return;
    case VvMsg::Kind::kSkipped:
      OPTREP_CHECK(dir == Direction::kForward);
      w.put(0b01, 2);
      return;
    case VvMsg::Kind::kSkip:
      OPTREP_CHECK(dir == Direction::kReverse);
      w.put(1, 1);
      w.put(msg.arg, cm.site_bits());  // segment index ≤ n, log n bits (§4.1)
      return;
    case VvMsg::Kind::kAck:
      OPTREP_CHECK(dir == Direction::kReverse);
      w.put(0b01, 2);
      return;
    case VvMsg::Kind::kProbe:
      // COMPARE probes travel on a dedicated session: bare site+value.
      w.put(msg.site.value, cm.site_bits());
      w.put(msg.value, cm.value_bits());
      return;
    case VvMsg::Kind::kVerdict:
      w.put(msg.arg != 0 ? 1 : 0, 1);
      return;
  }
  OPTREP_CHECK(false);
}

VvMsg decode_msg(BitReader& r, const CostModel& cm, VectorKind kind, Direction dir) {
  VvMsg msg;
  if (r.get(1) == 1) {
    if (dir == Direction::kForward) {
      msg.kind = VvMsg::Kind::kElem;
      msg.site = SiteId{static_cast<std::uint32_t>(r.get(cm.site_bits()))};
      msg.value = r.get(cm.value_bits());
      if (flag_bits(kind) >= 1) msg.conflict = r.get(1) != 0;
      if (flag_bits(kind) >= 2) msg.segment = r.get(1) != 0;
    } else {
      msg.kind = VvMsg::Kind::kSkip;
      msg.arg = r.get(cm.site_bits());
    }
    return msg;
  }
  const bool second = r.get(1) != 0;
  if (!second) {
    msg.kind = VvMsg::Kind::kHalt;
  } else {
    msg.kind = dir == Direction::kForward ? VvMsg::Kind::kSkipped : VvMsg::Kind::kAck;
  }
  return msg;
}

MsgDecodeResult try_decode_msg(BitReader& r, const CostModel& cm, VectorKind kind,
                               Direction dir, std::uint64_t limit_bits) {
  MsgDecodeResult res;
  // A field may not run past the logical payload end (limit_bits) nor the
  // physical buffer; the logical limit is the tighter of the two because the
  // last byte is zero-padded.
  const auto take = [&](std::uint32_t bits, std::uint64_t* out) {
    if (r.bits_read() + bits > limit_bits) return false;
    return r.try_get(bits, out);
  };
  std::uint64_t prefix = 0;
  if (!take(1, &prefix)) {
    res.error = DecodeError::kTruncated;
    return res;
  }
  if (prefix == 1) {
    std::uint64_t site = 0, value = 0, flag = 0;
    if (dir == Direction::kForward) {
      res.msg.kind = VvMsg::Kind::kElem;
      if (!take(cm.site_bits(), &site) || !take(cm.value_bits(), &value)) {
        res.error = DecodeError::kTruncated;
        return res;
      }
      res.msg.site = SiteId{static_cast<std::uint32_t>(site)};
      res.msg.value = value;
      if (flag_bits(kind) >= 1) {
        if (!take(1, &flag)) {
          res.error = DecodeError::kTruncated;
          return res;
        }
        res.msg.conflict = flag != 0;
      }
      if (flag_bits(kind) >= 2) {
        if (!take(1, &flag)) {
          res.error = DecodeError::kTruncated;
          return res;
        }
        res.msg.segment = flag != 0;
      }
    } else {
      res.msg.kind = VvMsg::Kind::kSkip;
      if (!take(cm.site_bits(), &site)) {
        res.error = DecodeError::kTruncated;
        return res;
      }
      res.msg.arg = site;
    }
    return res;
  }
  std::uint64_t second = 0;
  if (!take(1, &second)) {
    res.error = DecodeError::kTruncated;
    return res;
  }
  if (second == 0) {
    res.msg.kind = VvMsg::Kind::kHalt;
  } else {
    res.msg.kind = dir == Direction::kForward ? VvMsg::Kind::kSkipped : VvMsg::Kind::kAck;
  }
  return res;
}

std::vector<std::uint8_t> encode_vector(const RotatingVector& v) {
  BitWriter w;
  w.put(v.size(), 32);
  for (const auto& e : v) {
    w.put(e.site.value, 32);
    w.put(e.value, 64);
    w.put(e.conflict ? 1 : 0, 1);
    w.put(e.segment ? 1 : 0, 1);
    w.put(0, 6);  // pad to byte-aligned element records
  }
  return w.bytes();
}

RotatingVector decode_vector(const std::vector<std::uint8_t>& bytes) {
  BitReader r(bytes);
  const auto count = r.get(32);
  RotatingVector v;
  v.reserve(count);
  std::optional<SiteId> prev;
  for (std::uint64_t i = 0; i < count; ++i) {
    const SiteId site{static_cast<std::uint32_t>(r.get(32))};
    const std::uint64_t value = r.get(64);
    const bool conflict = r.get(1) != 0;
    const bool segment = r.get(1) != 0;
    r.get(6);
    v.rotate_after(prev, site);
    v.set_element(site, value, conflict, segment);
    prev = site;
  }
  return v;
}

DecodeError try_decode_vector(const std::vector<std::uint8_t>& bytes, RotatingVector* out) {
  BitReader r(bytes);
  const std::uint64_t limit = 8 * bytes.size();
  std::uint64_t count = 0;
  if (!r.try_get(32, &count)) return DecodeError::kTruncated;
  // Each element record is a fixed 13 bytes; reject impossible counts before
  // reserving memory for them.
  if (count * 104 > limit - 32) return DecodeError::kTruncated;
  RotatingVector v;
  v.reserve(count);
  std::optional<SiteId> prev;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t site = 0, value = 0, conflict = 0, segment = 0, pad = 0;
    if (!r.try_get(32, &site) || !r.try_get(64, &value) || !r.try_get(1, &conflict) ||
        !r.try_get(1, &segment) || !r.try_get(6, &pad)) {
      return DecodeError::kTruncated;
    }
    // A valid snapshot never repeats a site and pads with zeros.
    if (pad != 0 || v.value(SiteId{static_cast<std::uint32_t>(site)}) != 0) {
      return DecodeError::kBadValue;
    }
    v.rotate_after(prev, SiteId{static_cast<std::uint32_t>(site)});
    v.set_element(SiteId{static_cast<std::uint32_t>(site)}, value, conflict != 0,
                  segment != 0);
    prev = SiteId{static_cast<std::uint32_t>(site)};
  }
  *out = std::move(v);
  return DecodeError::kNone;
}

}  // namespace optrep::vv
