// Vector pruning of retired sites — the §7 extension.
//
// §2.2 / §7: vector size can be reduced "by removing inactive sites from a
// vector [19, 20] … equivalent to the original version vector plus a
// distributed membership manager. These efforts are orthogonal and can
// easily be applied to any of BRV, CRV, and SRV."
//
// This module supplies that membership manager: sites are retired through
// an epoch-numbered retirement record; once a retirement is *stable* (every
// live replica of the object is known to have absorbed the retired site's
// final value), the element can be dropped from every vector without
// affecting any future comparison or synchronization. The stability floor
// is exactly the element-wise minimum over live replicas, which the manager
// tracks from gossiped replica summaries.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "vv/rotating_vector.h"
#include "vv/version_vector.h"

namespace optrep::vv {

class MembershipManager {
 public:
  // Declare a site permanently retired (it will never update again). Its
  // elements become prunable once stable. Returns the retirement epoch.
  std::uint64_t retire(SiteId site);

  bool is_retired(SiteId site) const { return retired_.contains(site); }
  std::uint64_t epoch() const { return epoch_; }

  // Feed the manager a live replica's current values (e.g. piggybacked on
  // anti-entropy). The stability floor is the min over all reports since a
  // site's retirement.
  void observe_replica(const VersionVector& values);

  // The set of (site, final value) pairs that are provably stable: every
  // observed live replica carries at least this value for the site. Only
  // meaningful once every live replica has been observed at least once;
  // callers gate on reports_seen() >= live replica count.
  std::vector<std::pair<SiteId, std::uint64_t>> prunable() const;

  std::size_t reports_seen() const { return reports_; }

  // Drop every stable retired element from v. Comparisons between any two
  // vectors pruned against the same floor are unchanged: a pruned element
  // has equal value on both sides by stability, so it can never decide an
  // ordering. Returns the number of elements removed.
  std::size_t prune(RotatingVector& v) const;

 private:
  std::uint64_t epoch_{0};
  std::unordered_set<SiteId> retired_;
  // Per retired site: the minimum value seen across replica reports, and
  // whether any report has arrived yet.
  std::unordered_map<SiteId, std::uint64_t> floor_;
  std::size_t reports_{0};
};

}  // namespace optrep::vv
