// Arena-backed columnar storage for replica state.
//
// A world with 10^5–10^6 sites cannot afford hundreds of malloc'd blocks per
// replica: the AoS layout this PR replaces kept one std::vector<Slot> plus a
// hash table per RotatingVector, so large fleets fragmented the heap and paid
// a pointer-chased cache miss per touched slot field. The columnar layout
// splits replica state into parallel arrays (SoA) whose backing memory comes
// from a per-world Arena, and every cross-reference inside replica state is a
// 32-bit slot handle into those arrays — never a pointer — so a replica's
// whole footprint is a handful of dense, relocatable columns.
//
// Arena: a bump/slab allocator. Allocation carves from the current slab and
// opens a new one when full; memory is never returned to the OS until the
// arena dies. That "never frees" property is load-bearing for concurrency:
// the PR 8 optimistic-read contract requires that a column a racing reader
// is probing stays mapped until validation — an arena-backed column that
// grows abandons its old block in place (retired, still mapped) instead of
// handing it back to the allocator the way std::vector does. reserve() is
// still the rule for zero-alloc steady state (and for readers to see a
// *consistent* column), but a missed reserve corrupts an answer that
// validation rejects rather than touching freed memory.
//
// Column<T>: a minimal growable array over an optional Arena. With no arena
// attached it behaves like std::vector (heap blocks, old block released on
// growth — callers owe the reserve() discipline exactly as before). Copies
// are always heap-backed value snapshots (sync_with_recovery's saved states
// and StateSystem replica copies must not pin a foreign world's arena);
// copy-assignment into an arena-backed column keeps the destination's arena.
// Moves transfer the data block and leave the source empty but still bound
// to its arena, vector-style.
//
// Accounting: the arena tracks reserved (slab) bytes, live bytes, retired
// bytes (blocks abandoned by column growth) and the live high-water mark —
// surfaced by the scenario engine as rt.arena.* gauges and timeline rows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <vector>

#include "common/check.h"

namespace optrep::vv {

class Arena {
 public:
  struct Stats {
    std::uint64_t reserved_bytes{0};  // Σ slab sizes held from the OS
    std::uint64_t live_bytes{0};      // allocated minus retired
    std::uint64_t retired_bytes{0};   // blocks abandoned by column growth
    std::uint64_t high_water_bytes{0};  // max live_bytes ever observed
    std::uint64_t slabs{0};
  };

  explicit Arena(std::size_t slab_bytes = kDefaultSlabBytes)
      : slab_bytes_(slab_bytes < kMinSlabBytes ? kMinSlabBytes : slab_bytes) {}
  ~Arena() {
    for (Slab& s : slabs_) ::operator delete(s.base, std::align_val_t{kAlign});
  }
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Bump-allocate `bytes` (alignment up to kAlign). Oversized requests get a
  // dedicated slab so one huge column cannot strand a half-used bump slab.
  void* allocate(std::size_t bytes) {
    if (bytes == 0) return nullptr;
    bytes = (bytes + kAlign - 1) & ~(kAlign - 1);
    if (bytes > slab_bytes_ / 2) {
      Slab s = new_slab(bytes);
      s.used = bytes;
      slabs_.push_back(s);
      account(bytes);
      return s.base;
    }
    if (slabs_.empty() || slabs_.back().size - slabs_.back().used < bytes) {
      slabs_.push_back(new_slab(slab_bytes_));
    }
    Slab& s = slabs_.back();
    void* p = static_cast<char*>(s.base) + s.used;
    s.used += bytes;
    account(bytes);
    return p;
  }

  // Blocks are never unmapped; "retiring" only moves bytes from live to
  // retired in the stats (a racing optimistic reader may still probe them).
  void retire(std::size_t bytes) {
    bytes = (bytes + kAlign - 1) & ~(kAlign - 1);
    stats_.retired_bytes += bytes;
    stats_.live_bytes -= bytes;
  }

  const Stats& stats() const { return stats_; }

  static constexpr std::size_t kAlign = 16;
  static constexpr std::size_t kDefaultSlabBytes = std::size_t{1} << 20;
  static constexpr std::size_t kMinSlabBytes = 4096;

 private:
  struct Slab {
    void* base{nullptr};
    std::size_t size{0};
    std::size_t used{0};
  };

  Slab new_slab(std::size_t size) {
    Slab s;
    s.base = ::operator new(size, std::align_val_t{kAlign});
    s.size = size;
    stats_.reserved_bytes += size;
    ++stats_.slabs;
    return s;
  }

  void account(std::size_t bytes) {
    stats_.live_bytes += bytes;
    if (stats_.live_bytes > stats_.high_water_bytes) {
      stats_.high_water_bytes = stats_.live_bytes;
    }
  }

  std::size_t slab_bytes_;
  std::vector<Slab> slabs_;
  Stats stats_;
};

// One column of an SoA layout: a contiguous array of trivially copyable
// cells, indexed by 32-bit slot handles. Growth copies into a fresh block;
// shrinking (resize down) never releases or moves memory, so a concurrent
// optimistic reader holding a stale handle below the old size still reads
// mapped (if meaningless) bytes, which its olock validation then rejects.
template <class T>
class Column {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  Column() = default;
  explicit Column(Arena* arena) : arena_(arena) {}
  ~Column() { release(); }

  // Copies are heap-backed value snapshots — never bound to the source's
  // arena (snapshots outlive worlds; see header comment).
  Column(const Column& o) { copy_in(o); }
  Column& operator=(const Column& o) {
    if (this != &o) {
      // Keep this column's backing (arena or heap); just ensure capacity.
      if (o.size_ > cap_) regrow(o.size_);
      if (o.size_ > 0) std::memcpy(data_, o.data_, o.size_ * sizeof(T));
      size_ = o.size_;
    }
    return *this;
  }
  Column(Column&& o) noexcept
      : data_(o.data_), size_(o.size_), cap_(o.cap_), arena_(o.arena_) {
    // The source stays bound to its arena but owns no block (vector-style
    // moved-from state): FlatSiteIndex::rehash moves the old table out and
    // re-assigns into the same member.
    o.data_ = nullptr;
    o.size_ = 0;
    o.cap_ = 0;
  }
  Column& operator=(Column&& o) noexcept {
    if (this != &o) {
      release();
      data_ = o.data_;
      size_ = o.size_;
      cap_ = o.cap_;
      arena_ = o.arena_;
      o.data_ = nullptr;
      o.size_ = 0;
      o.cap_ = 0;
    }
    return *this;
  }

  // Bind to an arena. Only legal before the first allocation — rebinding a
  // populated column would split its blocks across owners.
  void attach_arena(Arena* arena) {
    OPTREP_CHECK_MSG(cap_ == 0, "attach_arena: column already allocated");
    arena_ = arena;
  }
  Arena* arena() const { return arena_; }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return cap_; }
  bool empty() const { return size_ == 0; }
  std::uint64_t memory_bytes() const { return std::uint64_t{cap_} * sizeof(T); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void reserve(std::size_t n) {
    if (n > cap_) regrow(n);
  }

  void push_back(T v) {
    if (size_ == cap_) regrow(cap_ < 8 ? 8 : cap_ * 2);
    data_[size_++] = v;
  }
  void pop_back() { --size_; }

  // Grow-with-default or shrink. Shrinking keeps the block and capacity.
  void resize(std::size_t n) {
    if (n > cap_) regrow(n);
    for (std::size_t i = size_; i < n; ++i) data_[i] = T{};
    size_ = n;
  }

  void assign(std::size_t n, T v) {
    if (n > cap_) regrow(n);
    for (std::size_t i = 0; i < n; ++i) data_[i] = v;
    size_ = n;
  }

  void clear() { size_ = 0; }

 private:
  void copy_in(const Column& o) {
    arena_ = nullptr;
    data_ = nullptr;
    size_ = 0;
    cap_ = 0;
    if (o.size_ > 0) {
      regrow(o.size_);
      std::memcpy(data_, o.data_, o.size_ * sizeof(T));
      size_ = o.size_;
    }
  }

  void regrow(std::size_t new_cap) {
    T* nd;
    if (arena_ != nullptr) {
      nd = static_cast<T*>(arena_->allocate(new_cap * sizeof(T)));
    } else {
      nd = static_cast<T*>(::operator new(new_cap * sizeof(T), std::align_val_t{Arena::kAlign}));
    }
    // Callers only grow (new_cap ≥ size_); the clamp states that bound in a
    // form the compiler's object-size checker can see.
    const std::size_t keep = size_ < new_cap ? size_ : new_cap;
    if (keep > 0) std::memcpy(nd, data_, keep * sizeof(T));
    release();
    data_ = nd;
    cap_ = new_cap;
  }

  void release() {
    if (data_ == nullptr) return;
    if (arena_ != nullptr) {
      arena_->retire(cap_ * sizeof(T));  // stays mapped; see Arena::retire
    } else {
      ::operator delete(data_, std::align_val_t{Arena::kAlign});
    }
    data_ = nullptr;
  }

  T* data_{nullptr};
  std::size_t size_{0};
  std::size_t cap_{0};
  Arena* arena_{nullptr};
};

}  // namespace optrep::vv
