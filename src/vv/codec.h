// Bit-exact wire codec for the vector synchronization protocols.
//
// The §3.3 cost model is not just bookkeeping: this codec realizes it. Every
// message encodes to exactly msg_model_bits(...) bits and decodes back,
// which the tests assert — so the Table 2 bounds measured by the benches
// correspond to a real serialization.
//
// Prefix codes (per direction):
//   sender→receiver:  '1' elem(site,value[,c][,s])   '00' HALT   '01' SKIPPED
//   receiver→sender:  '1' skip(segment index)        '00' HALT   '01' ACK
//
// Also provides a byte-aligned snapshot codec for persisting a whole
// rotating vector (order, values and bits), e.g. for on-disk replica state.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/cost_model.h"
#include "vv/rotating_vector.h"
#include "vv/wire.h"

namespace optrep::vv {

class BitWriter {
 public:
  // Append the low `bits` bits of value, most significant first.
  void put(std::uint64_t value, std::uint32_t bits);
  std::uint64_t bit_size() const { return bit_size_; }
  const std::vector<std::uint8_t>& bytes() const { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::uint64_t bit_size_{0};
};

class BitReader {
 public:
  explicit BitReader(const std::vector<std::uint8_t>& buf) : buf_(&buf) {}
  std::uint64_t get(std::uint32_t bits);
  // Non-aborting variant for untrusted input: false (and *out untouched) when
  // the field would run past the end of the buffer.
  bool try_get(std::uint32_t bits, std::uint64_t* out);
  std::uint64_t bits_read() const { return pos_; }
  bool exhausted(std::uint64_t total_bits) const { return pos_ >= total_bits; }

 private:
  const std::vector<std::uint8_t>* buf_;
  std::uint64_t pos_{0};
};

// Typed decode errors for untrusted (possibly corrupted/truncated) input.
// The aborting decoders below remain for trusted buffers the caller
// constructed itself — feeding them garbage is API misuse.
enum class DecodeError : std::uint8_t {
  kNone = 0,
  kTruncated,  // a field ran past the end of the payload
  kBadValue,   // structurally impossible field contents
};

// Which half of the duplex a message travels on (the prefix codes differ).
enum class Direction : std::uint8_t { kForward, kReverse };

// Encodes one message; the number of bits appended equals
// msg_model_bits(cm, kind, msg).
void encode_msg(BitWriter& w, const CostModel& cm, VectorKind kind, Direction dir,
                const VvMsg& msg);

VvMsg decode_msg(BitReader& r, const CostModel& cm, VectorKind kind, Direction dir);

// Non-aborting decode of one message from an untrusted payload: never reads
// past `limit_bits` (or the underlying buffer). Corruption that flips a
// prefix bit can turn a 2-bit control code into an element header that wants
// far more bits than the payload holds — that surfaces as kTruncated here
// instead of a CHECK abort, making corrupted frames a recoverable protocol
// event (sim/fault_link.h).
struct MsgDecodeResult {
  VvMsg msg{};
  DecodeError error{DecodeError::kNone};
  bool ok() const { return error == DecodeError::kNone; }
};
MsgDecodeResult try_decode_msg(BitReader& r, const CostModel& cm, VectorKind kind,
                               Direction dir, std::uint64_t limit_bits);

// Byte-aligned snapshot of a full rotating vector (order, values, bits).
std::vector<std::uint8_t> encode_vector(const RotatingVector& v);
RotatingVector decode_vector(const std::vector<std::uint8_t>& bytes);

// Non-aborting snapshot decode for untrusted bytes (e.g. on-disk state):
// returns the error instead of aborting; *out is valid only on kNone.
DecodeError try_decode_vector(const std::vector<std::uint8_t>& bytes, RotatingVector* out);

}  // namespace optrep::vv
