// Bit-exact wire codec for the vector synchronization protocols.
//
// The §3.3 cost model is not just bookkeeping: this codec realizes it. Every
// message encodes to exactly msg_model_bits(...) bits and decodes back,
// which the tests assert — so the Table 2 bounds measured by the benches
// correspond to a real serialization.
//
// Prefix codes (per direction):
//   sender→receiver:  '1' elem(site,value[,c][,s])   '00' HALT   '01' SKIPPED
//   receiver→sender:  '1' skip(segment index)        '00' HALT   '01' ACK
//
// Also provides a byte-aligned snapshot codec for persisting a whole
// rotating vector (order, values and bits), e.g. for on-disk replica state.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/cost_model.h"
#include "vv/rotating_vector.h"
#include "vv/wire.h"

namespace optrep::vv {

class BitWriter {
 public:
  // Append the low `bits` bits of value, most significant first.
  void put(std::uint64_t value, std::uint32_t bits);
  std::uint64_t bit_size() const { return bit_size_; }
  const std::vector<std::uint8_t>& bytes() const { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::uint64_t bit_size_{0};
};

class BitReader {
 public:
  explicit BitReader(const std::vector<std::uint8_t>& buf) : buf_(&buf) {}
  std::uint64_t get(std::uint32_t bits);
  std::uint64_t bits_read() const { return pos_; }
  bool exhausted(std::uint64_t total_bits) const { return pos_ >= total_bits; }

 private:
  const std::vector<std::uint8_t>* buf_;
  std::uint64_t pos_{0};
};

// Which half of the duplex a message travels on (the prefix codes differ).
enum class Direction : std::uint8_t { kForward, kReverse };

// Encodes one message; the number of bits appended equals
// msg_model_bits(cm, kind, msg).
void encode_msg(BitWriter& w, const CostModel& cm, VectorKind kind, Direction dir,
                const VvMsg& msg);

VvMsg decode_msg(BitReader& r, const CostModel& cm, VectorKind kind, Direction dir);

// Byte-aligned snapshot of a full rotating vector (order, values, bits).
std::vector<std::uint8_t> encode_vector(const RotatingVector& v);
RotatingVector decode_vector(const std::vector<std::uint8_t>& bytes);

}  // namespace optrep::vv
