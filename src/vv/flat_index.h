// FlatSiteIndex: an open-addressed site→slot hash map for RotatingVector.
//
// The site index sits on every point operation of the §3–§4 algorithms —
// value(), rotate_after(), record_update() each do at least one lookup — and
// std::unordered_map pays a pointer chase into a heap node per probe plus a
// node allocation per insert. This index is two parallel flat arrays (SoA:
// 32-bit keys and 32-bit slot indexes) probed linearly over a power-of-two
// table, so a lookup is a multiply, a shift, and a short scan of contiguous
// cache lines, and inserts allocate only on the amortized table doubling.
//
// Deletion is tombstone-free: erase() backward-shifts the displaced suffix of
// the probe cluster into the hole (Knuth 6.4 Algorithm R), so long-lived
// vectors with churn (the §7 pruning extension) never degrade into
// tombstone-saturated scans.
//
// The empty marker is a slot value of kNilSlot (0xffffffff). RotatingVector
// caps its slot count below that (it already rejects vectors that large), so
// no stored slot index can collide with the marker and no separate occupancy
// bitmap is needed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/ids.h"

namespace optrep::vv {

class FlatSiteIndex {
 public:
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  FlatSiteIndex() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Slot index of `site`, or kNilSlot when absent.
  std::uint32_t find(SiteId site) const {
    if (size_ == 0) return kNilSlot;
    for (std::size_t i = home(site);; i = (i + 1) & mask_) {
      if (slots_[i] == kNilSlot) return kNilSlot;
      if (keys_[i] == site) return slots_[i];
    }
  }
  bool contains(SiteId site) const { return find(site) != kNilSlot; }

  // Insert an absent site. `slot` must not equal kNilSlot.
  void insert(SiteId site, std::uint32_t slot) {
    OPTREP_DCHECK(slot != kNilSlot);
    OPTREP_DCHECK(!contains(site));
    if ((size_ + 1) * 4 > capacity() * 3) grow();  // load factor ≤ 0.75
    std::size_t i = home(site);
    while (slots_[i] != kNilSlot) i = (i + 1) & mask_;
    keys_[i] = site;
    slots_[i] = slot;
    ++size_;
  }

  // Remove `site` if present; returns whether it was. Backward-shift: walk
  // the cluster after the hole and move back every entry whose home position
  // does not lie strictly between the hole and it.
  bool erase(SiteId site) {
    if (size_ == 0) return false;
    std::size_t i = home(site);
    for (;; i = (i + 1) & mask_) {
      if (slots_[i] == kNilSlot) return false;
      if (keys_[i] == site) break;
    }
    std::size_t hole = i;
    for (std::size_t j = (hole + 1) & mask_; slots_[j] != kNilSlot; j = (j + 1) & mask_) {
      // Distance from j's home to j vs. from the hole to j, both mod table
      // size: if the home is at or before the hole, j may legally move there.
      const std::size_t dist_home = (j - home_of(j)) & mask_;
      const std::size_t dist_hole = (j - hole) & mask_;
      if (dist_home >= dist_hole) {
        keys_[hole] = keys_[j];
        slots_[hole] = slots_[j];
        hole = j;
      }
    }
    slots_[hole] = kNilSlot;
    --size_;
    return true;
  }

  // Pre-size for `n` sites so steady-state inserts never reallocate.
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (n * 4 > cap * 3) cap <<= 1;
    if (cap > capacity()) rehash(cap);
  }

  // Index-quality introspection for benches: probe lengths (cells scanned to
  // find each present key, 1 = home hit) and the table footprint. O(capacity);
  // deterministic for a deterministic workload, so suitable as a committed
  // baseline metric.
  struct ProbeStats {
    std::uint64_t total{0};   // Σ probe length over present keys
    std::uint64_t max{0};     // worst single probe length
    std::uint64_t bytes{0};   // table footprint (keys + slots arrays)
  };
  ProbeStats probe_stats() const {
    ProbeStats st;
    st.bytes = capacity() * (sizeof(SiteId) + sizeof(std::uint32_t));
    for (std::size_t i = 0; i < capacity(); ++i) {
      if (slots_[i] == kNilSlot) continue;
      const std::uint64_t len = ((i - home_of(i)) & mask_) + 1;
      st.total += len;
      if (len > st.max) st.max = len;
    }
    return st;
  }

 private:
  static constexpr std::size_t kMinCapacity = 8;

  std::size_t capacity() const { return slots_.size(); }

  // Multiply-shift (Fibonacci) hash of the 32-bit site id, folded onto the
  // table: the high multiplier bits are the best-mixed, so take them via the
  // shift rather than masking the low ones.
  std::size_t home(SiteId site) const {
    return (site.value * 0x9e3779b9u) >> shift_;
  }
  std::size_t home_of(std::size_t i) const { return home(keys_[i]); }

  void grow() { rehash(capacity() == 0 ? kMinCapacity : capacity() * 2); }

  void rehash(std::size_t new_cap) {
    std::vector<SiteId> old_keys = std::move(keys_);
    std::vector<std::uint32_t> old_slots = std::move(slots_);
    keys_.assign(new_cap, SiteId{});
    slots_.assign(new_cap, kNilSlot);
    mask_ = new_cap - 1;
    shift_ = 32;
    for (std::size_t c = new_cap; c > 1; c >>= 1) --shift_;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (old_slots[i] == kNilSlot) continue;
      std::size_t j = home(old_keys[i]);
      while (slots_[j] != kNilSlot) j = (j + 1) & mask_;
      keys_[j] = old_keys[i];
      slots_[j] = old_slots[i];
    }
  }

  std::vector<SiteId> keys_;           // valid only where slots_[i] != kNilSlot
  std::vector<std::uint32_t> slots_;   // kNilSlot marks an empty cell
  std::size_t size_{0};
  std::size_t mask_{0};
  unsigned shift_{32};  // 32 - log2(capacity); capacity 0 ⇒ never probed
};

}  // namespace optrep::vv
