// FlatSiteIndex: an open-addressed site→slot hash map for RotatingVector.
//
// The site index sits on every point operation of the §3–§4 algorithms —
// value(), rotate_after(), record_update() each do at least one lookup — and
// std::unordered_map pays a pointer chase into a heap node per probe plus a
// node allocation per insert. This index is two parallel flat arrays (SoA:
// 32-bit keys and 32-bit slot indexes) probed linearly over a power-of-two
// table, so a lookup is a multiply, a shift, and a short scan of contiguous
// cache lines, and inserts allocate only on the amortized table doubling.
//
// The arrays are vv::Column (vv/arena.h): heap-backed by default, or carved
// from a per-world Arena after attach_arena() — a million-site world keeps
// its indexes in a handful of slabs instead of two mallocs per replica. An
// arena-backed table that rehashes retires its old arrays in place (still
// mapped) rather than freeing them, which strengthens concurrency rule 1
// below from "never rehash under readers" to "a racing reader reads stale
// mapped cells that validation rejects".
//
// Deletion is tombstone-free: erase() backward-shifts the displaced suffix of
// the probe cluster into the hole (Knuth 6.4 Algorithm R), so long-lived
// vectors with churn (the §7 pruning extension) never degrade into
// tombstone-saturated scans.
//
// The empty marker is a slot value of kNilSlot (0xffffffff). RotatingVector
// caps its slot count below that (it already rejects vectors that large), so
// no stored slot index can collide with the marker and no separate occupancy
// bitmap is needed.
//
// Concurrency (PR 8): the index embeds an rt::OLock and every table-cell and
// size access goes through std::atomic_ref (acquire loads, release stores —
// plain movs on x86), so OPTIMISTIC READERS may race a single writer with
// defined behavior: a reader snapshots olock().read_begin(), probes, then
// read_validate()s; a torn probe (e.g. mid backward-shift) yields a stale or
// bounded-miss answer that validation rejects. Locking is EXTERNAL — the
// structure never locks itself, so single-threaded callers pay nothing.
// Two hard rules for concurrent readers (see docs/PERFORMANCE.md):
//   1. reserve() must have sized the table first: rehash() reallocates the
//      arrays and (heap-backed) would leave a racing reader probing freed
//      memory. Arena-backed tables keep retired arrays mapped, but the
//      reserve discipline still holds — it is what makes probes consistent.
//   2. find() bounds its probe walk at the table capacity. A consistent
//      table terminates every probe at a nil cell far earlier (load ≤ 0.75);
//      only a torn cluster can reach the cap, and that read fails validation.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "common/check.h"
#include "common/ids.h"
#include "rt/olock.h"
#include "vv/arena.h"

namespace optrep::vv {

class FlatSiteIndex {
 public:
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  FlatSiteIndex() = default;

  // Copies/moves transfer the table but NOT the lock: each instance guards
  // itself with a fresh, unlocked rt::OLock (counters zeroed). Excluded while
  // concurrent readers are active, like every other mutation. Column copy
  // semantics apply: a copy is a heap-backed snapshot, copy-assignment keeps
  // the destination's backing, a moved-from source stays bound to its arena.
  FlatSiteIndex(const FlatSiteIndex& o)
      : keys_(o.keys_), slots_(o.slots_), size_(o.size_), mask_(o.mask_), shift_(o.shift_) {}
  FlatSiteIndex& operator=(const FlatSiteIndex& o) {
    keys_ = o.keys_;
    slots_ = o.slots_;
    size_ = o.size_;
    mask_ = o.mask_;
    shift_ = o.shift_;
    return *this;
  }
  FlatSiteIndex(FlatSiteIndex&& o) noexcept
      : keys_(std::move(o.keys_)),
        slots_(std::move(o.slots_)),
        size_(o.size_),
        mask_(o.mask_),
        shift_(o.shift_) {}
  FlatSiteIndex& operator=(FlatSiteIndex&& o) noexcept {
    keys_ = std::move(o.keys_);
    slots_ = std::move(o.slots_);
    size_ = o.size_;
    mask_ = o.mask_;
    shift_ = o.shift_;
    return *this;
  }

  // Back the table arrays with a per-world arena. Only legal before the
  // first allocation (reserve/insert); see Column::attach_arena.
  void attach_arena(Arena* arena) {
    keys_.attach_arena(arena);
    slots_.attach_arena(arena);
  }

  // Versioned lock guarding this index when used standalone (RotatingVector
  // guards index + slots together with its own lock). Callers lock
  // explicitly; no method below acquires it.
  rt::OLock& olock() const { return olock_; }

  std::size_t size() const { return ld(size_); }
  bool empty() const { return size() == 0; }

  // Slot index of `site`, or kNilSlot when absent. The probe walk is capped
  // at the table capacity: unreachable for a quiescent table (load ≤ 0.75
  // ⇒ every cluster ends at a nil cell), possible only for an optimistic
  // reader racing a writer — which read_validate() then rejects anyway.
  std::uint32_t find(SiteId site) const {
    if (size() == 0) return kNilSlot;
    std::size_t i = home(site);
    for (std::size_t probes = 0; probes <= mask_; ++probes, i = (i + 1) & mask_) {
      const std::uint32_t s = ld(slots_[i]);
      if (s == kNilSlot) return kNilSlot;
      if (ld(keys_[i]) == site) return s;
    }
    return kNilSlot;  // torn cluster under a concurrent writer
  }
  bool contains(SiteId site) const { return find(site) != kNilSlot; }

  // Insert an absent site. `slot` must not equal kNilSlot. The key is
  // published before the cell is marked occupied, so a racing reader that
  // observes the occupied cell also observes its key.
  void insert(SiteId site, std::uint32_t slot) {
    OPTREP_DCHECK(slot != kNilSlot);
    OPTREP_DCHECK(!contains(site));
    if ((ld(size_) + 1) * 4 > capacity() * 3) grow();  // load factor ≤ 0.75
    std::size_t i = home(site);
    while (ld(slots_[i]) != kNilSlot) i = (i + 1) & mask_;
    st(keys_[i], site);
    st(slots_[i], slot);
    st(size_, ld(size_) + 1);
  }

  // Overwrite the slot index of a PRESENT site in place. A pure cell-value
  // store: the probe structure (and probe_stats) are untouched, which is why
  // RotatingVector's slot compaction can relocate slots without perturbing
  // any index-quality baseline number.
  void update(SiteId site, std::uint32_t slot) {
    OPTREP_DCHECK(slot != kNilSlot);
    std::size_t i = home(site);
    for (std::size_t probes = 0; probes <= mask_; ++probes, i = (i + 1) & mask_) {
      OPTREP_CHECK_MSG(ld(slots_[i]) != kNilSlot, "update: site not present");
      if (ld(keys_[i]) == site) {
        st(slots_[i], slot);
        return;
      }
    }
    OPTREP_CHECK_MSG(false, "update: site not present");
  }

  // Remove `site` if present; returns whether it was. Backward-shift: walk
  // the cluster after the hole and move back every entry whose home position
  // does not lie strictly between the hole and it.
  bool erase(SiteId site) {
    if (ld(size_) == 0) return false;
    std::size_t i = home(site);
    for (;; i = (i + 1) & mask_) {
      if (ld(slots_[i]) == kNilSlot) return false;
      if (ld(keys_[i]) == site) break;
    }
    std::size_t hole = i;
    for (std::size_t j = (hole + 1) & mask_; ld(slots_[j]) != kNilSlot; j = (j + 1) & mask_) {
      // Distance from j's home to j vs. from the hole to j, both mod table
      // size: if the home is at or before the hole, j may legally move there.
      const std::size_t dist_home = (j - home_of(j)) & mask_;
      const std::size_t dist_hole = (j - hole) & mask_;
      if (dist_home >= dist_hole) {
        st(keys_[hole], ld(keys_[j]));
        st(slots_[hole], ld(slots_[j]));
        hole = j;
      }
    }
    st(slots_[hole], kNilSlot);
    st(size_, ld(size_) - 1);
    return true;
  }

  // Pre-size for `n` sites so steady-state inserts never reallocate (and,
  // with concurrent readers, so they never rehash — rule 1 above).
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (n * 4 > cap * 3) cap <<= 1;
    if (cap > capacity()) rehash(cap);
  }

  // Table footprint in bytes (both arrays, at allocated capacity).
  std::uint64_t memory_bytes() const {
    return keys_.memory_bytes() + slots_.memory_bytes();
  }

  // Index-quality introspection for benches: probe lengths (cells scanned to
  // find each present key, 1 = home hit) and the table footprint. O(capacity);
  // deterministic for a deterministic workload, so suitable as a committed
  // baseline metric.
  struct ProbeStats {
    std::uint64_t total{0};   // Σ probe length over present keys
    std::uint64_t max{0};     // worst single probe length
    std::uint64_t bytes{0};   // table footprint (keys + slots arrays)
  };
  ProbeStats probe_stats() const {
    ProbeStats st;
    st.bytes = capacity() * (sizeof(SiteId) + sizeof(std::uint32_t));
    for (std::size_t i = 0; i < capacity(); ++i) {
      if (ld(slots_[i]) == kNilSlot) continue;
      const std::uint64_t len = ((i - home_of(i)) & mask_) + 1;
      st.total += len;
      if (len > st.max) st.max = len;
    }
    return st;
  }

 private:
  static constexpr std::size_t kMinCapacity = 8;

  // Cell/size accessors: acquire loads and release stores via atomic_ref so
  // an optimistic reader racing the single writer reads defined (if possibly
  // stale) values and the olock validation protocol is sound — see the
  // memory-model note in rt/olock.h. Free on x86; keeps the arrays plainly
  // copyable. C++20 atomic_ref takes a mutable ref, hence the const_cast on
  // the load side (the load itself never writes).
  template <class T>
  static T ld(const T& cell) {
    return std::atomic_ref<T>(const_cast<T&>(cell)).load(std::memory_order_acquire);
  }
  template <class T>
  static void st(T& cell, T v) {
    std::atomic_ref<T>(cell).store(v, std::memory_order_release);
  }

  std::size_t capacity() const { return slots_.size(); }

  // Multiply-shift (Fibonacci) hash of the 32-bit site id, folded onto the
  // table: the high multiplier bits are the best-mixed, so take them via the
  // shift rather than masking the low ones.
  std::size_t home(SiteId site) const {
    return (site.value * 0x9e3779b9u) >> shift_;
  }
  std::size_t home_of(std::size_t i) const { return home(ld(keys_[i])); }

  void grow() { rehash(capacity() == 0 ? kMinCapacity : capacity() * 2); }

  void rehash(std::size_t new_cap) {
    // The moved-from columns stay bound to the arena (Column move semantics),
    // so the fresh arrays below are carved from the same backing. The old
    // arrays die at end of scope: freed when heap-backed (rule 1 applies),
    // retired-but-mapped when arena-backed.
    Column<SiteId> old_keys = std::move(keys_);
    Column<std::uint32_t> old_slots = std::move(slots_);
    keys_.assign(new_cap, SiteId{});
    slots_.assign(new_cap, kNilSlot);
    mask_ = new_cap - 1;
    shift_ = 32;
    for (std::size_t c = new_cap; c > 1; c >>= 1) --shift_;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (old_slots[i] == kNilSlot) continue;
      std::size_t j = home(old_keys[i]);
      while (slots_[j] != kNilSlot) j = (j + 1) & mask_;
      keys_[j] = old_keys[i];
      slots_[j] = old_slots[i];
    }
  }

  Column<SiteId> keys_;           // valid only where slots_[i] != kNilSlot
  Column<std::uint32_t> slots_;   // kNilSlot marks an empty cell
  std::size_t size_{0};
  std::size_t mask_{0};
  unsigned shift_{32};  // 32 - log2(capacity); capacity 0 ⇒ never probed
  mutable rt::OLock olock_;
};

}  // namespace optrep::vv
