#include "vv/pruning.h"

#include <algorithm>

namespace optrep::vv {

std::uint64_t MembershipManager::retire(SiteId site) {
  retired_.insert(site);
  return ++epoch_;
}

void MembershipManager::observe_replica(const VersionVector& values) {
  ++reports_;
  for (const SiteId site : retired_) {
    const std::uint64_t v = values.value(site);
    auto it = floor_.find(site);
    if (it == floor_.end()) {
      floor_.emplace(site, v);
    } else {
      it->second = std::min(it->second, v);
    }
  }
}

std::vector<std::pair<SiteId, std::uint64_t>> MembershipManager::prunable() const {
  std::vector<std::pair<SiteId, std::uint64_t>> out;
  for (const auto& [site, floor] : floor_) {
    out.emplace_back(site, floor);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t MembershipManager::prune(RotatingVector& v) const {
  std::size_t removed = 0;
  for (const auto& [site, floor] : floor_) {
    if (!v.contains(site)) continue;
    // Only prune the stable value; a higher value would mean the site was
    // not actually retired (or the floor is stale) — leave it.
    if (v.value(site) == floor && floor > 0) {
      v.erase(site);
      ++removed;
    }
  }
  return removed;
}

}  // namespace optrep::vv
