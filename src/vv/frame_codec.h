// Delta-varint frame codec: the realistic wire encoding of a coalesced
// message frame (sim::FrameLink) on the sender→receiver and receiver→sender
// vv links.
//
// The per-message codec (vv/codec.h) realizes the §3.3 cost model bit for
// bit; this codec is what the *bytes* of a batched implementation would look
// like, and only feeds the `framed_wire_bytes` figure — model-bit accounting
// and every Table 2 cross-check are computed from the per-message sizes and
// are untouched by framing (tests assert this).
//
// Layout: a frame is a self-delimiting byte string, one tag byte per message
// (no count header, so a one-message control frame costs exactly its
// unframed byte), followed by tag-dependent fields:
//
//   0x01 HALT            0x02 SKIPPED         0x03 ACK
//   0x06 VERDICT(not)    0x07 VERDICT(covers)
//   0x04|wide  SKIP      + segment index (varint, or 4-byte LE when wide)
//   0x20|flags PROBE     + site, value (delta-varint or wide, as elements)
//   0x80|flags ELEM      + site, value
//
// Element site ids and values are sent as zigzag-LEB128 *deltas* against the
// previous element of the same frame (the first element diffs against zero).
// Elements stream in ≺ order, and consecutive updates have nearby values, so
// the common delta fits one or two bytes. Wide flag bits (0x04 site,
// 0x08 value on elements/probes; 0x10 on SKIP) switch a field to its
// fixed-width raw encoding whenever the varint would be longer, which caps
// every message at its unframed byte size — a frame is never larger than the
// messages it replaces (fuzzed against the per-message codec as oracle).
#pragma once

#include <cstdint>
#include <vector>

#include "vv/wire.h"

namespace optrep::vv {

// Exact encoded size of one frame, computed without materializing bytes
// (this is the FrameLink sizer: it runs once per frame on the hot path).
std::uint64_t frame_wire_bytes(const std::vector<VvMsg>& msgs);

// Size of a one-message frame (the frame_budget == 0 accounting path).
std::uint64_t frame_wire_bytes_single(const VvMsg& m);

// Append the frame encoding of msgs to out; returns the bytes appended
// (== frame_wire_bytes(msgs)).
std::uint64_t frame_encode(std::vector<std::uint8_t>& out, const std::vector<VvMsg>& msgs);

// Typed decode errors for untrusted frame bytes (e.g. after in-flight
// corruption, sim/fault_link.h).
enum class FrameDecodeError : std::uint8_t {
  kNone = 0,
  kTruncated,       // a field ran past the end of the frame
  kVarintOverflow,  // a varint continued past 64 bits
  kUnknownTag,      // a tag byte outside the codec's map
};

// Delta chain for element/probe site+value fields. A frame is one chain; a
// byte *stream* (net/wire_stream.h) is a frame that never ends, so the chain
// state lives outside the codec calls and is reset at session boundaries.
struct FrameDeltaState {
  std::uint64_t prev_site{0};
  std::uint64_t prev_value{0};
};

// Append the encoding of one message to out, continuing the delta chain in
// *st; returns the bytes appended. frame_encode(msgs) is equivalent to this
// over a fresh chain.
std::uint64_t frame_encode_msg(std::vector<std::uint8_t>& out, const VvMsg& m,
                               FrameDeltaState* st);

// Incremental decode over a byte stream that arrives in arbitrary chunks.
// Starts at *pos, appends every complete message to *out (advancing *pos and
// *st past each), and stops at `size` (kNone) or on the first undecodable
// message. On any error *pos rests at the first byte of the offending
// message and *st is exactly the chain state before it, so the contract is:
//
//   kTruncated   ⇒ resume: call again with the same *pos/*st once more bytes
//                  arrived; the partial suffix re-decodes from scratch.
//   kUnknownTag  ⇒ data[*pos] is the foreign tag — the net layer checks it
//                  against its in-band control tags before treating it as
//                  corruption.
//   kVarintOverflow ⇒ corruption; the stream is dead.
FrameDecodeError frame_decode_stream(const std::uint8_t* data, std::size_t size,
                                     std::size_t* pos, FrameDeltaState* st,
                                     std::vector<VvMsg>* out);

// Decode a whole frame (consumes the full byte string) without aborting:
// returns the error and leaves *out with the messages decoded before it.
FrameDecodeError try_frame_decode(const std::vector<std::uint8_t>& bytes,
                                  std::vector<VvMsg>* out);

// Aborting decode for trusted buffers the caller encoded itself — feeding
// this garbage is API misuse.
std::vector<VvMsg> frame_decode(const std::vector<std::uint8_t>& bytes);

}  // namespace optrep::vv
