#include "repl/record_system.h"

#include "obs/export.h"
#include "obs/prof.h"

namespace optrep::repl {

void RecordSystem::create_object(SiteId site, ObjectId obj, const std::string& key,
                                 std::string value) {
  OPTREP_CHECK_MSG(!has_replica(site, obj), "object already exists on site");
  RecordReplica& r = sites_[site][obj];
  apply_put(r, site, key, std::move(value));
}

void RecordSystem::put(SiteId site, ObjectId obj, const std::string& key,
                       std::string value) {
  OPTREP_SPAN("records.put");
  apply_put(replica_mut(site, obj), site, key, std::move(value));
}

void RecordSystem::apply_put(RecordReplica& r, SiteId site, const std::string& key,
                             std::string value) {
  r.vector.record_update(site);
  RecordCell& cell = r.records[key];
  cell.value = std::move(value);
  cell.writer = UpdateId{site, r.vector.value(site)};
  cell.flagged = false;  // a fresh local write supersedes any flag
}

const RecordReplica& RecordSystem::replica(SiteId site, ObjectId obj) const {
  auto sit = sites_.find(site);
  OPTREP_CHECK_MSG(sit != sites_.end(), "site hosts nothing");
  auto rit = sit->second.find(obj);
  OPTREP_CHECK_MSG(rit != sit->second.end(), "no replica of object on site");
  return rit->second;
}

RecordReplica& RecordSystem::replica_mut(SiteId site, ObjectId obj) {
  auto sit = sites_.find(site);
  OPTREP_CHECK_MSG(sit != sites_.end(), "site hosts nothing");
  auto rit = sit->second.find(obj);
  OPTREP_CHECK_MSG(rit != sit->second.end(), "no replica of object on site");
  return rit->second;
}

bool RecordSystem::has_replica(SiteId site, ObjectId obj) const {
  auto sit = sites_.find(site);
  return sit != sites_.end() && sit->second.contains(obj);
}

RecordSystem::SyncResult RecordSystem::sync(SiteId dst, SiteId src, ObjectId obj) {
  OPTREP_SPAN("records.sync");
  OPTREP_CHECK_MSG(dst != src, "a site cannot synchronize with itself");
  SyncResult out;
  if (!has_replica(src, obj)) return out;
  const RecordReplica& sender = sites_[src][obj];
  RecordReplica& receiver = sites_[dst][obj];

  // Under fault injection an earlier failed sync may have left the receiver
  // partially joined, so the lossy path uses the exact comparison.
  const vv::Ordering rel = cfg_.net.faults.enabled()
                               ? vv::compare_full(receiver.vector, sender.vector)
                               : vv::compare_fast(receiver.vector, sender.vector);
  out.relation = rel;
  if (rel == vv::Ordering::kEqual || rel == vv::Ordering::kAfter) {
    out.report.bits_fwd = vv::compare_cost_bits(cfg_.cost) / 2;
    out.report.bits_rev = vv::compare_cost_bits(cfg_.cost) / 2;
    totals_.sessions += 1;
    totals_.bits += out.report.total_bits();
    publish_metrics();
    return out;
  }

  // Snapshot the receiver's causal knowledge before the vectors join: the
  // semantic detector judges each record against what each side knew at
  // write time.
  const vv::VersionVector dst_pre = receiver.vector.to_version_vector();

  vv::SyncOptions opt;
  opt.kind = cfg_.kind;
  opt.mode = cfg_.mode;
  opt.net = cfg_.net;
  opt.cost = cfg_.cost;
  opt.known_relation = rel;
  opt.tracer = cfg_.tracer;
  opt.trace_session = totals_.sessions + 1;
  opt.metrics = &metrics_;
  out.report = vv::sync_with_recovery(loop_, receiver.vector, sender.vector, opt);
  out.report.bits_fwd += vv::compare_cost_bits(cfg_.cost) / 2;
  out.report.bits_rev += vv::compare_cost_bits(cfg_.cost) / 2;

  if (!out.report.converged) {
    // Retry budget exhausted. sync_with_recovery left the vector untouched,
    // so the failed sync is a complete no-op — the vector never claims
    // knowledge of records that did not arrive (the semantic detector would
    // otherwise skip merging them later). A later sync redoes the work.
    ++totals_.sync_failures;
    totals_.sessions += 1;
    totals_.bits += out.report.total_bits();
    totals_.retries += out.report.retries;
    totals_.faults_injected += out.report.total_faults();
    totals_.recovery_bits += out.report.recovery_bits;
    publish_metrics();
    return out;
  }

  if (rel == vv::Ordering::kBefore) {
    // Plain state transfer: the sender's records strictly supersede ours.
    receiver.records = sender.records;
  } else {
    // Syntactic conflict (O(1) detection) → semantic detector (§1).
    out.syntactic_conflict = true;
    ++totals_.syntactic_conflicts;
    out.semantic_conflicts = semantic_merge(receiver, sender, dst_pre);
    totals_.semantic_conflicts += out.semantic_conflicts;
    if (out.semantic_conflicts == 0) ++totals_.syntactic_only;
    // §2.2: reconciliation ends with a separate local update.
    receiver.vector.record_update(dst);
  }

  totals_.sessions += 1;
  totals_.bits += out.report.total_bits();
  totals_.retries += out.report.retries;
  totals_.faults_injected += out.report.total_faults();
  totals_.recovery_bits += out.report.recovery_bits;
  // Table 2 bounds a single fault-free session; retried traffic is accounted
  // separately (recovery_bits), so the bound check only runs lossless.
  if (!cfg_.net.faults.enabled() &&
      !obs::within_table2_bound(cfg_.cost, cfg_.kind, out.report)) {
    ++totals_.bound_violations;
    metrics_.counter("obs.bound_violations").inc();
  }
  publish_metrics();
  return out;
}

void RecordSystem::publish_metrics() {
  metrics_.counter("records.sessions").set(totals_.sessions);
  metrics_.counter("records.syntactic_conflicts").set(totals_.syntactic_conflicts);
  metrics_.counter("records.syntactic_only").set(totals_.syntactic_only);
  metrics_.counter("records.semantic_conflicts").set(totals_.semantic_conflicts);
  metrics_.counter("records.records_merged").set(totals_.records_merged);
  metrics_.counter("records.flagged_records").set(totals_.flagged_records);
  if (cfg_.net.faults.enabled()) {
    metrics_.counter("records.retries").set(totals_.retries);
    metrics_.counter("records.sync_failures").set(totals_.sync_failures);
    metrics_.counter("records.faults_injected").set(totals_.faults_injected);
    metrics_.counter("records.recovery_bits").set(totals_.recovery_bits);
  }
  metrics_.gauge("sim.queue_depth").set(static_cast<std::int64_t>(loop_.queue_depth()));
  metrics_.gauge("sim.max_queue_depth").set(static_cast<std::int64_t>(loop_.max_queue_depth()));
  metrics_.gauge("sim.executed_events").set(static_cast<std::int64_t>(loop_.executed_events()));
  metrics_.gauge("sim.cancelled_events").set(static_cast<std::int64_t>(loop_.cancelled_events()));
}

std::size_t RecordSystem::semantic_merge(RecordReplica& dst, const RecordReplica& src,
                                         const vv::VersionVector& dst_pre) {
  std::size_t true_conflicts = 0;
  for (const auto& [key, theirs] : src.records) {
    auto it = dst.records.find(key);
    if (it == dst.records.end()) {
      dst.records.emplace(key, theirs);
      ++totals_.records_merged;
      continue;
    }
    RecordCell& mine = it->second;
    if (mine.writer == theirs.writer) {
      mine.flagged = mine.flagged && theirs.flagged;  // either side's repair wins
      continue;
    }
    // Per-record causality: a write is superseded if the replica holding the
    // other value had already absorbed it when diverging.
    const bool theirs_visible_to_me =
        theirs.writer.seq <= dst_pre.value(theirs.writer.site);
    if (theirs_visible_to_me) continue;  // my value already accounts for theirs
    const bool mine_visible_to_them =
        mine.writer.seq <= src.vector.value(mine.writer.site);
    if (mine_visible_to_them) {
      mine = theirs;  // their write knew mine: causal overwrite
      ++totals_.records_merged;
      continue;
    }
    // Concurrent writes to the same key.
    if (mine.value == theirs.value) {
      // Semantically consistent despite syntactic concurrency: converge
      // provenance deterministically and move on — this is exactly the
      // false-conflict class semantic-over-syntactic detection filters out.
      if (theirs.writer > mine.writer) mine.writer = theirs.writer;
      ++totals_.records_merged;
      continue;
    }
    // True (semantic) conflict.
    ++true_conflicts;
    switch (cfg_.policy) {
      case SemanticPolicy::kLastWriterWins:
        if (theirs.writer > mine.writer) mine = theirs;
        break;
      case SemanticPolicy::kFlag:
        mine.flagged = true;
        ++totals_.flagged_records;
        break;
    }
  }
  return true_conflicts;
}

bool RecordSystem::replicas_consistent(ObjectId obj) const {
  const RecordReplica* first = nullptr;
  for (const auto& [site, objs] : sites_) {
    auto it = objs.find(obj);
    if (it == objs.end()) continue;
    if (first == nullptr) {
      first = &it->second;
      continue;
    }
    if (!(it->second.records == first->records)) return false;
  }
  return true;
}

}  // namespace optrep::repl
