#include "repl/op_system.h"

#include <algorithm>

#include "obs/prof.h"

namespace optrep::repl {

void OpSystem::create_object(SiteId site, ObjectId obj, std::string content) {
  OPTREP_CHECK_MSG(!has_replica(site, obj), "object already exists on site");
  OpReplica& r = sites_[site][obj];
  const UpdateId op = fresh_op(site, obj);
  r.graph.create(op, static_cast<std::uint32_t>(content.size()));
  contents_[obj][op] = std::move(content);
  retain(r, op);
  causal_origin(obj, op);
}

void OpSystem::update(SiteId site, ObjectId obj, std::string content) {
  OpReplica& r = replica_mut(site, obj);
  const UpdateId op = fresh_op(site, obj);
  r.graph.append(op, static_cast<std::uint32_t>(content.size()));
  contents_[obj][op] = std::move(content);
  retain(r, op);
  causal_origin(obj, op);
}

OpSyncOutcome OpSystem::sync(SiteId dst, SiteId src, ObjectId obj) {
  OPTREP_SPAN("op.sync");
  OPTREP_CHECK_MSG(dst != src, "a site cannot synchronize with itself");
  OpSyncOutcome out;
  if (!has_replica(src, obj)) {
    out.action = OpSyncOutcome::Action::kSkipped;
    return out;
  }
  const OpReplica& sender = sites_[src][obj];
  OpReplica& receiver = sites_[dst][obj];  // created empty if absent

  const vv::Ordering rel = receiver.graph.compare(sender.graph);
  out.relation = rel;
  if (rel == vv::Ordering::kEqual || rel == vv::Ordering::kAfter) {
    out.action = OpSyncOutcome::Action::kNone;
    return out;
  }

  graph::GraphSyncOptions opt;
  opt.mode = cfg_.mode;
  opt.net = cfg_.net;
  opt.cost = cfg_.cost;
  // With a bounded log, graph metadata and operation payloads travel
  // separately: the payload fetch happens after the graph sync reveals which
  // operations are missing (and whether the sender still has them).
  opt.ship_ops = cfg_.op_log_limit == 0;
  out.report = cfg_.use_incremental
                   ? graph::sync_graph(loop_, receiver.graph, sender.graph, opt)
                   : graph::sync_graph_full(loop_, receiver.graph, sender.graph, opt);

  if (cfg_.op_log_limit > 0) {
    // Hybrid transfer: can the sender still supply every new payload? Merge
    // nodes carry no user content and never force a fallback.
    bool all_available = true;
    std::uint64_t needed_bytes = 0;
    for (const UpdateId& id : out.report.new_node_ids) {
      const graph::Node* n = receiver.graph.find(id);
      if (n == nullptr || n->op_bytes == 0) continue;
      needed_bytes += n->op_bytes;
      if (!sender.log.contains(id)) {
        all_available = false;
        break;
      }
    }
    if (all_available) {
      out.report.op_bytes_shipped = needed_bytes;  // per-operation fetch
      for (const UpdateId& id : out.report.new_node_ids) retain(receiver, id);
    } else {
      // §6/§1 [1, §7.2]: the replica is too old for the retained history —
      // ship the entire object state instead of individual operations.
      out.state_fallback = true;
      out.state_fallback_bytes = sender.graph.total_op_bytes();
      receiver.log_order = sender.log_order;
      receiver.log = sender.log;
      ++totals_.state_fallbacks;
      totals_.state_fallback_bytes += out.state_fallback_bytes;
    }
  }

  if (cfg_.causal != nullptr) {
    // new_node_ids (insertion order) are exactly the update identities this
    // session delivered; sorted for deterministic emission order. Operation
    // transfer has no vv session span, so delivers carry span 0.
    std::vector<UpdateId> fresh(out.report.new_node_ids.begin(),
                                out.report.new_node_ids.end());
    std::sort(fresh.begin(), fresh.end());
    for (const UpdateId& id : fresh) {
      cfg_.causal->deliver(loop_.now(), obj, id.site, id.seq, /*span=*/0, src, dst);
      causal_converge_check(obj, id);
    }
  }

  if (rel == vv::Ordering::kBefore) {
    receiver.graph.set_sink(sender.graph.sink());
    out.action = OpSyncOutcome::Action::kFastForwarded;
  } else {
    // Concurrent: reconciliation executes a merge operation (§6.1: "conflict
    // reconciliation is invoked and a new node is added as the new sink").
    const UpdateId merge_op = fresh_op(dst, obj);
    receiver.graph.merge(merge_op, sender.graph.sink());
    contents_[obj][merge_op] = "";  // merges carry no user content here
    retain(receiver, merge_op);
    causal_origin(obj, merge_op);
    ++totals_.reconciliations;
    out.action = OpSyncOutcome::Action::kReconciled;
  }

  if (cfg_.check_invariants) {
    OPTREP_CHECK_MSG(receiver.graph.validate_closed(),
                     "graph not closed after synchronization");
    for (const graph::Node& n : sender.graph.all_nodes()) {
      OPTREP_CHECK_MSG(receiver.graph.contains(n.id), "union is missing sender nodes");
    }
  }

  totals_.sessions += 1;
  totals_.bits += out.report.total_bits();
  totals_.bytes += out.report.bytes_fwd + out.report.bytes_rev;
  totals_.frames += out.report.frames_fwd + out.report.frames_rev;
  totals_.framed_bytes += out.report.framed_bytes_fwd + out.report.framed_bytes_rev;
  totals_.nodes_sent += out.report.nodes_sent;
  totals_.nodes_redundant += out.report.nodes_redundant;
  totals_.op_bytes += out.report.op_bytes_shipped;
  metrics_.histogram("op.session_bits").record(out.report.total_bits());
  publish_metrics();
  return out;
}

void OpSystem::publish_metrics() {
  metrics_.counter("op.sessions").set(totals_.sessions);
  metrics_.counter("op.bits").set(totals_.bits);
  metrics_.counter("op.bytes").set(totals_.bytes);
  metrics_.counter("op.frames").set(totals_.frames);
  metrics_.counter("op.framed_bytes").set(totals_.framed_bytes);
  metrics_.counter("op.nodes_sent").set(totals_.nodes_sent);
  metrics_.counter("op.nodes_redundant").set(totals_.nodes_redundant);
  metrics_.counter("op.op_bytes").set(totals_.op_bytes);
  metrics_.counter("op.reconciliations").set(totals_.reconciliations);
  metrics_.counter("op.state_fallbacks").set(totals_.state_fallbacks);
  metrics_.counter("op.state_fallback_bytes").set(totals_.state_fallback_bytes);
  metrics_.gauge("sim.queue_depth").set(static_cast<std::int64_t>(loop_.queue_depth()));
  metrics_.gauge("sim.max_queue_depth").set(static_cast<std::int64_t>(loop_.max_queue_depth()));
  metrics_.gauge("sim.executed_events").set(static_cast<std::int64_t>(loop_.executed_events()));
  metrics_.gauge("sim.cancelled_events").set(static_cast<std::int64_t>(loop_.cancelled_events()));
  metrics_.gauge("repl.divergence").set(static_cast<std::int64_t>(divergence()));
}

std::uint64_t OpSystem::divergence() const {
  // Per-object union of operation ids across all replicas.
  std::unordered_map<ObjectId, std::unordered_set<UpdateId>> known;
  for (const auto& [site, objs] : sites_) {
    for (const auto& [obj, r] : objs) {
      auto& k = known[obj];
      for (const graph::Node& n : r.graph.all_nodes()) k.insert(n.id);
    }
  }
  std::uint64_t d = 0;
  for (const auto& [site, objs] : sites_) {
    for (const auto& [obj, r] : objs) {
      d += known.at(obj).size() - r.graph.node_count();
    }
  }
  return d;
}

bool OpSystem::has_replica(SiteId site, ObjectId obj) const {
  auto sit = sites_.find(site);
  return sit != sites_.end() && sit->second.contains(obj);
}

const OpReplica& OpSystem::replica(SiteId site, ObjectId obj) const {
  auto sit = sites_.find(site);
  OPTREP_CHECK_MSG(sit != sites_.end(), "site hosts nothing");
  auto rit = sit->second.find(obj);
  OPTREP_CHECK_MSG(rit != sit->second.end(), "no replica of object on site");
  return rit->second;
}

std::string OpSystem::materialize(SiteId site, ObjectId obj) const {
  const OpReplica& r = replica(site, obj);
  auto cit = contents_.find(obj);
  OPTREP_CHECK(cit != contents_.end());
  // Graph nodes in id order form a deterministic linearization compatible
  // across replicas holding the same node set (ops here are commutative
  // inserts; richer semantics would topo-sort with id tie-breaks).
  std::vector<graph::Node> nodes = r.graph.all_nodes();
  std::sort(nodes.begin(), nodes.end(),
            [](const graph::Node& a, const graph::Node& b) { return a.id < b.id; });
  std::string out;
  for (const graph::Node& n : nodes) {
    auto oit = cit->second.find(n.id);
    if (oit != cit->second.end() && !oit->second.empty()) {
      out += oit->second;
      out += '\n';
    }
  }
  return out;
}

bool OpSystem::replicas_consistent(ObjectId obj) const {
  const OpReplica* first = nullptr;
  for (const auto& [site, objs] : sites_) {
    auto it = objs.find(obj);
    if (it == objs.end()) continue;
    if (first == nullptr) {
      first = &it->second;
      continue;
    }
    if (!(it->second.graph == first->graph)) return false;
  }
  return true;
}

OpReplica& OpSystem::replica_mut(SiteId site, ObjectId obj) {
  auto sit = sites_.find(site);
  OPTREP_CHECK_MSG(sit != sites_.end(), "site hosts nothing");
  auto rit = sit->second.find(obj);
  OPTREP_CHECK_MSG(rit != sit->second.end(), "no replica of object on site");
  return rit->second;
}

UpdateId OpSystem::fresh_op(SiteId site, ObjectId obj) {
  return UpdateId{site, ++seq_[site][obj]};
}

void OpSystem::causal_origin(ObjectId obj, const UpdateId& op) {
  if (cfg_.causal == nullptr) return;
  cfg_.causal->origin(loop_.now(), obj, op.site, op.seq);
  causal_converge_check(obj, op);  // single-host objects converge at once
}

void OpSystem::causal_converge_check(ObjectId obj, const UpdateId& op) {
  // Coverage of an operation only changes when some replica absorbs it, so a
  // check at every origin/deliver closes each trace exactly when the
  // operation stops diverging. Graphs are ancestor-closed, so containment of
  // the node id is exact coverage.
  for (const auto& [site, objs] : sites_) {
    auto it = objs.find(obj);
    if (it == objs.end()) continue;
    if (!it->second.graph.contains(op)) return;
  }
  cfg_.causal->converge(loop_.now(), obj, op.site, op.seq);
}

void OpSystem::retain(OpReplica& r, UpdateId op) {
  if (cfg_.op_log_limit == 0) return;  // unlimited history: no bookkeeping
  if (!r.log.insert(op).second) return;
  r.log_order.push_back(op);
  while (r.log_order.size() > cfg_.op_log_limit) {
    r.log.erase(r.log_order.front());
    r.log_order.pop_front();
  }
}

}  // namespace optrep::repl
