#include "repl/state_system.h"

#include <algorithm>
#include <utility>

#include "obs/export.h"
#include "obs/prof.h"

namespace optrep::repl {

StateSystem::StateSystem(Config cfg) : cfg_(cfg) {
  OPTREP_CHECK_MSG(cfg_.kind != vv::VectorKind::kBrv ||
                       cfg_.policy == ResolutionPolicy::kManual,
                   "BRV supports no conflict reconciliation (§3.1); use manual "
                   "resolution or CRV/SRV");
  // Lossy-network runs: a sync that exhausts its retry budget leaves the
  // receiver's vector partially joined, a state the at-rest oracles cannot
  // describe — history containment no longer matches the vector order.
  if (cfg_.net.faults.enabled()) cfg_.check_oracle = false;
  if (cfg_.recorder != nullptr) cfg_.recorder->set_fault_seed(cfg_.net.faults.seed);
  if (cfg_.timeline != nullptr) {
    if (cfg_.timeline_every_s > 0) {
      cfg_.timeline->set_axis("time_s");
      loop_.set_time_sampler(cfg_.timeline_every_s, this, &StateSystem::time_sample_thunk);
    } else {
      cfg_.timeline->set_axis("sessions");
    }
  }
}

void StateSystem::create_object(SiteId site, ObjectId obj, std::string entry) {
  OPTREP_CHECK_MSG(!has_replica(site, obj), "object already exists on site");
  StateReplica& r = sites_[site][obj];
  apply_update(r, site, obj, std::move(entry));
}

void StateSystem::update(SiteId site, ObjectId obj, std::string entry) {
  OPTREP_SPAN("state.update");
  StateReplica& r = replica_mut(site, obj);
  OPTREP_CHECK_MSG(!r.conflicted, "update on an excluded (conflicted) replica");
  apply_update(r, site, obj, std::move(entry));
}

SyncOutcome StateSystem::sync(SiteId dst, SiteId src, ObjectId obj) {
  OPTREP_SPAN("state.sync");
  OPTREP_CHECK_MSG(dst != src, "a site cannot synchronize with itself");
  SyncOutcome out;
  if (!has_replica(src, obj)) {
    out.action = SyncOutcome::Action::kSkipped;
    return out;
  }
  StateReplica& sender = sites_[src][obj];
  if (sender.conflicted) {
    out.action = SyncOutcome::Action::kSkipped;
    return out;
  }
  StateReplica& receiver = sites_[dst][obj];  // created empty if absent

  // COMPARE runs first (O(1) traffic); the session charges its bits. Under
  // fault injection a previously failed sync may have left the receiver
  // partially joined — outside the at-rest states compare_fast assumes — so
  // the lossy path pays for the exact comparison.
  const vv::Ordering rel = cfg_.net.faults.enabled()
                               ? vv::compare_full(receiver.vector, sender.vector)
                               : vv::compare_fast(receiver.vector, sender.vector);
  out.relation = rel;

  if (cfg_.check_oracle) {
    // Ground truth: causal relation by history containment.
    const auto& ha = receiver.oracle_history;
    const auto& hb = sender.oracle_history;
    const bool a_in_b = std::all_of(ha.begin(), ha.end(),
                                    [&](const UpdateId& u) { return hb.contains(u); });
    const bool b_in_a = std::all_of(hb.begin(), hb.end(),
                                    [&](const UpdateId& u) { return ha.contains(u); });
    vv::Ordering truth = vv::Ordering::kConcurrent;
    if (a_in_b && b_in_a) truth = vv::Ordering::kEqual;
    else if (a_in_b) truth = vv::Ordering::kBefore;
    else if (b_in_a) truth = vv::Ordering::kAfter;
    OPTREP_CHECK_MSG(rel == truth, "COMPARE disagrees with ground-truth causality");
  }

  vv::SyncOptions opt;
  opt.kind = cfg_.kind;
  opt.mode = cfg_.mode;
  opt.net = cfg_.net;
  opt.cost = cfg_.cost;
  opt.known_relation = rel;
  opt.tracer = cfg_.tracer;
  opt.trace_session = totals_.sessions + 1;
  opt.metrics = &metrics_;
  opt.recorder = cfg_.recorder;
  opt.causal = cfg_.causal;
  opt.src_site = src;
  opt.dst_site = dst;

  switch (rel) {
    case vv::Ordering::kEqual:
    case vv::Ordering::kAfter:
      // Nothing to pull. (A real system might push back; traces model that
      // as a separate sync in the other direction.)
      out.action = (rel == vv::Ordering::kEqual) ? SyncOutcome::Action::kNone
                                                 : SyncOutcome::Action::kPushedBack;
      // Charge the COMPARE probes.
      out.report.initial_relation = rel;
      out.report.bits_fwd = vv::compare_cost_bits(cfg_.cost) / 2;
      out.report.bits_rev = vv::compare_cost_bits(cfg_.cost) / 2;
      break;

    case vv::Ordering::kBefore: {
      out.report = vv::sync_with_recovery(loop_, receiver.vector, sender.vector, opt);
      out.report.bits_fwd += vv::compare_cost_bits(cfg_.cost) / 2;
      out.report.bits_rev += vv::compare_cost_bits(cfg_.cost) / 2;
      if (!out.report.converged) {
        // Retry budget exhausted: sync_with_recovery left the vector as it
        // was, so the failed sync is a complete no-op — metadata never
        // claims content that was not transferred.
        out.action = SyncOutcome::Action::kFailed;
        break;
      }
      for (const auto& e : sender.data.entries) totals_.payload_bytes += e.size();
      const std::vector<UpdateId> fresh = causal_fresh(sender, receiver);
      receiver.data = sender.data;  // state transfer overwrites the replica
      receiver.oracle_vector.join(sender.oracle_vector);
      receiver.oracle_history.insert(sender.oracle_history.begin(),
                                     sender.oracle_history.end());
      for (const UpdateId& u : fresh) {
        cfg_.causal->deliver(loop_.now(), obj, u.site, u.seq, out.report.causal_span, src,
                             dst);
        causal_converge_check(obj, u);
      }
      out.action = SyncOutcome::Action::kPulled;
      break;
    }

    case vv::Ordering::kConcurrent: {
      ++totals_.conflicts_detected;
      if (cfg_.policy == ResolutionPolicy::kManual) {
        // §2.1: both replicas leave the system until resolved manually.
        receiver.conflicted = true;
        sender.conflicted = true;
        out.action = SyncOutcome::Action::kConflictHeld;
        out.report.initial_relation = rel;
        out.report.bits_fwd = vv::compare_cost_bits(cfg_.cost) / 2;
        out.report.bits_rev = vv::compare_cost_bits(cfg_.cost) / 2;
        break;
      }
      // Automatic reconciliation: vector sync, payload merge, then the
      // mandated local update on the receiving site ([11 §C], §2.2).
      out.report = vv::sync_with_recovery(loop_, receiver.vector, sender.vector, opt);
      out.report.bits_fwd += vv::compare_cost_bits(cfg_.cost) / 2;
      out.report.bits_rev += vv::compare_cost_bits(cfg_.cost) / 2;
      if (!out.report.converged) {
        out.action = SyncOutcome::Action::kFailed;
        break;
      }
      for (const auto& e : sender.data.entries) totals_.payload_bytes += e.size();
      const std::vector<UpdateId> fresh = causal_fresh(sender, receiver);
      receiver.data.merge(sender.data);
      receiver.oracle_vector.join(sender.oracle_vector);
      receiver.oracle_history.insert(sender.oracle_history.begin(),
                                     sender.oracle_history.end());
      for (const UpdateId& u : fresh) {
        cfg_.causal->deliver(loop_.now(), obj, u.site, u.seq, out.report.causal_span, src,
                             dst);
        causal_converge_check(obj, u);
      }
      if (cfg_.check_oracle) check_replica(receiver);
      // The separate post-reconciliation update (metadata only: the merged
      // payload is the new version's content).
      receiver.vector.record_update(dst);
      receiver.oracle_vector.increment(dst);
      receiver.oracle_history.insert(UpdateId{dst, receiver.oracle_vector.value(dst)});
      if (cfg_.causal != nullptr) {
        const UpdateId u{dst, receiver.oracle_vector.value(dst)};
        cfg_.causal->origin(loop_.now(), obj, dst, u.seq);
        causal_converge_check(obj, u);
      }
      ++totals_.reconciliations;
      out.action = SyncOutcome::Action::kReconciled;
      break;
    }
  }

  if (cfg_.check_oracle) check_replica(receiver);

  totals_.sessions += 1;
  totals_.bits += out.report.total_bits();
  totals_.bytes += out.report.total_bytes();
  totals_.msgs += out.report.msgs_fwd + out.report.msgs_rev;
  totals_.frames += out.report.total_frames();
  totals_.framed_bytes += out.report.total_framed_bytes();
  totals_.elems_sent += out.report.elems_sent;
  totals_.elems_applied += out.report.elems_applied;
  totals_.elems_redundant += out.report.elems_redundant;
  totals_.skips += out.report.segments_skipped;
  totals_.retries += out.report.retries;
  totals_.faults_injected += out.report.total_faults();
  totals_.recovery_bits += out.report.recovery_bits;
  if (!out.report.converged) ++totals_.sync_failures;
  // Table 2 bounds a single fault-free session; retried traffic is accounted
  // separately (recovery_bits), so the bound check only runs lossless.
  if (!cfg_.net.faults.enabled() &&
      !obs::within_table2_bound(cfg_.cost, cfg_.kind, out.report)) {
    ++totals_.bound_violations;
    metrics_.counter("obs.bound_violations").inc();
    if (cfg_.recorder != nullptr) {
      cfg_.recorder->trigger("table2_bound_violation", loop_.now());
    }
  }
  publish_metrics();
  if (cfg_.timeline != nullptr && cfg_.timeline_every_s == 0 &&
      cfg_.timeline_every > 0 && totals_.sessions % cfg_.timeline_every == 0) {
    sample_timeline();
  }
  return out;
}

std::uint64_t StateSystem::divergence() const {
  // Per-object element-wise supremum over every replica's vector.
  std::unordered_map<ObjectId, std::unordered_map<SiteId, std::uint64_t>> sup;
  for (const auto& [site, objs] : sites_) {
    for (const auto& [obj, r] : objs) {
      auto& s = sup[obj];
      for (const auto& e : r.vector) {
        auto& v = s[e.site];
        if (e.value > v) v = e.value;
      }
    }
  }
  std::uint64_t d = 0;
  for (const auto& [site, objs] : sites_) {
    for (const auto& [obj, r] : objs) {
      for (const auto& [sid, v] : sup.at(obj)) {
        if (r.vector.value(sid) < v) ++d;
      }
      if (r.conflicted) ++d;
    }
  }
  return d;
}

void StateSystem::sample_timeline() {
  if (cfg_.timeline == nullptr) return;
  if (totals_.sessions == sampled_at_sessions_) return;
  sampled_at_sessions_ = totals_.sessions;
  sample_timeline_at(cfg_.timeline_every_s > 0 ? loop_.now()
                                               : static_cast<double>(totals_.sessions));
}

void StateSystem::sample_timeline_at(double x) {
  metrics_.gauge("repl.divergence").set(static_cast<std::int64_t>(divergence()));
  publish_metrics();
  cfg_.timeline->begin_sample(x);
  cfg_.timeline->sample_registry(metrics_);
}

void StateSystem::time_sample_thunk(void* ctx, sim::Time t) {
  static_cast<StateSystem*>(ctx)->sample_timeline_at(t);
}

void StateSystem::publish_metrics() {
  metrics_.counter("state.sessions").set(totals_.sessions);
  metrics_.counter("state.frames").set(totals_.frames);
  metrics_.counter("state.framed_bytes").set(totals_.framed_bytes);
  metrics_.counter("state.payload_bytes").set(totals_.payload_bytes);
  metrics_.counter("state.conflicts_detected").set(totals_.conflicts_detected);
  metrics_.counter("state.reconciliations").set(totals_.reconciliations);
  if (cfg_.net.faults.enabled()) {
    metrics_.counter("state.retries").set(totals_.retries);
    metrics_.counter("state.sync_failures").set(totals_.sync_failures);
    metrics_.counter("state.faults_injected").set(totals_.faults_injected);
    metrics_.counter("state.recovery_bits").set(totals_.recovery_bits);
  }
  metrics_.gauge("sim.queue_depth").set(static_cast<std::int64_t>(loop_.queue_depth()));
  metrics_.gauge("sim.max_queue_depth").set(static_cast<std::int64_t>(loop_.max_queue_depth()));
  metrics_.gauge("sim.executed_events").set(static_cast<std::int64_t>(loop_.executed_events()));
  metrics_.gauge("sim.cancelled_events").set(static_cast<std::int64_t>(loop_.cancelled_events()));
}

bool StateSystem::has_replica(SiteId site, ObjectId obj) const {
  auto sit = sites_.find(site);
  return sit != sites_.end() && sit->second.contains(obj);
}

const StateReplica& StateSystem::replica(SiteId site, ObjectId obj) const {
  auto sit = sites_.find(site);
  OPTREP_CHECK_MSG(sit != sites_.end(), "site hosts nothing");
  auto rit = sit->second.find(obj);
  OPTREP_CHECK_MSG(rit != sit->second.end(), "no replica of object on site");
  return rit->second;
}

bool StateSystem::replicas_consistent(ObjectId obj) const {
  const StateReplica* first = nullptr;
  for (const auto& [site, objs] : sites_) {
    auto it = objs.find(obj);
    if (it == objs.end()) continue;
    if (first == nullptr) {
      first = &it->second;
      continue;
    }
    if (!(it->second.data == first->data)) return false;
    if (!(it->second.vector.to_version_vector() == first->vector.to_version_vector()))
      return false;
  }
  return true;
}

std::vector<SiteId> StateSystem::hosts_of(ObjectId obj) const {
  std::vector<SiteId> out;
  for (const auto& [site, objs] : sites_) {
    if (objs.contains(obj)) out.push_back(site);
  }
  std::sort(out.begin(), out.end());
  return out;
}

StateReplica& StateSystem::replica_mut(SiteId site, ObjectId obj) {
  auto sit = sites_.find(site);
  OPTREP_CHECK_MSG(sit != sites_.end(), "site hosts nothing");
  auto rit = sit->second.find(obj);
  OPTREP_CHECK_MSG(rit != sit->second.end(), "no replica of object on site");
  return rit->second;
}

void StateSystem::apply_update(StateReplica& r, SiteId site, ObjectId obj,
                               std::string entry) {
  r.data.entries.insert(std::move(entry));
  r.vector.record_update(site);
  r.oracle_vector.increment(site);
  const UpdateId u{site, r.oracle_vector.value(site)};
  r.oracle_history.insert(u);
  // Note: the oracle history uses the replica's own per-site counter, which
  // equals the global per-site sequence because a site's updates are serial
  // on its single replica of the object.
  if (cfg_.causal != nullptr) {
    cfg_.causal->origin(loop_.now(), obj, site, u.seq);
    // A single-host object converges the instant it is updated.
    causal_converge_check(obj, u);
  }
  if (cfg_.check_oracle) check_replica(r);
}

std::vector<UpdateId> StateSystem::causal_fresh(const StateReplica& sender,
                                                const StateReplica& receiver) const {
  std::vector<UpdateId> fresh;
  if (cfg_.causal == nullptr) return fresh;
  for (const UpdateId& u : sender.oracle_history) {
    if (!receiver.oracle_history.contains(u)) fresh.push_back(u);
  }
  std::sort(fresh.begin(), fresh.end());
  return fresh;
}

void StateSystem::causal_converge_check(ObjectId obj, const UpdateId& u) {
  // Coverage of u only changes when some replica absorbs u itself, so
  // checking at every origin/deliver of u closes each trace exactly when the
  // update stops diverging. Replica-set growth (a fresh empty replica created
  // by a later sync) re-opens the trace until the newcomer catches up; the
  // analyzer keys on the *last* kConverge of a trace.
  for (const auto& [site, objs] : sites_) {
    auto it = objs.find(obj);
    if (it == objs.end()) continue;
    if (!it->second.oracle_history.contains(u)) return;
  }
  cfg_.causal->converge(loop_.now(), obj, u.site, u.seq);
}

void StateSystem::check_replica(const StateReplica& r) const {
  OPTREP_CHECK_MSG(r.vector.same_values(r.oracle_vector),
                   "rotating vector diverged from the traditional-vector oracle");
}

}  // namespace optrep::repl
