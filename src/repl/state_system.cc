#include "repl/state_system.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "obs/export.h"
#include "obs/prof.h"
#include "sim/fault_link.h"

namespace optrep::repl {

StateSystem::StateSystem(Config cfg) : cfg_(cfg) {
  OPTREP_CHECK_MSG(cfg_.kind != vv::VectorKind::kBrv ||
                       cfg_.policy == ResolutionPolicy::kManual,
                   "BRV supports no conflict reconciliation (§3.1); use manual "
                   "resolution or CRV/SRV");
  // Lossy-network runs: a sync that exhausts its retry budget leaves the
  // receiver's vector partially joined, a state the at-rest oracles cannot
  // describe — history containment no longer matches the vector order.
  if (cfg_.net.faults.enabled()) cfg_.check_oracle = false;
  if (cfg_.recorder != nullptr) cfg_.recorder->set_fault_seed(cfg_.net.faults.seed);
  if (cfg_.timeline != nullptr) {
    if (cfg_.timeline_every_s > 0) {
      cfg_.timeline->set_axis("time_s");
      loop_.set_time_sampler(cfg_.timeline_every_s, this, &StateSystem::time_sample_thunk);
    } else {
      cfg_.timeline->set_axis("sessions");
    }
  }
}

void StateSystem::create_object(SiteId site, ObjectId obj, std::string entry) {
  OPTREP_CHECK_MSG(!has_replica(site, obj), "object already exists on site");
  StateReplica& r = sites_[site][obj];
  apply_update(r, site, obj, std::move(entry));
}

void StateSystem::update(SiteId site, ObjectId obj, std::string entry) {
  OPTREP_SPAN("state.update");
  StateReplica& r = replica_mut(site, obj);
  OPTREP_CHECK_MSG(!r.conflicted, "update on an excluded (conflicted) replica");
  apply_update(r, site, obj, std::move(entry));
}

SyncOutcome StateSystem::sync(SiteId dst, SiteId src, ObjectId obj) {
  OPTREP_SPAN("state.sync");
  OPTREP_CHECK_MSG(dst != src, "a site cannot synchronize with itself");
  SyncOutcome out;
  if (!has_replica(src, obj)) {
    out.action = SyncOutcome::Action::kSkipped;
    return out;
  }
  StateReplica& sender = sites_[src][obj];
  if (sender.conflicted) {
    out.action = SyncOutcome::Action::kSkipped;
    return out;
  }
  StateReplica& receiver = sites_[dst][obj];  // created empty if absent
  out = sync_pair(receiver, sender, dst, src, obj, loop_, &metrics_,
                  cfg_.causal, totals_.sessions + 1, nullptr);
  finish_session(out);
  publish_metrics();
  if (cfg_.timeline != nullptr && cfg_.timeline_every_s == 0 &&
      cfg_.timeline_every > 0 && totals_.sessions % cfg_.timeline_every == 0) {
    sample_timeline();
  }
  return out;
}

SyncOutcome StateSystem::sync_pair(StateReplica& receiver, StateReplica& sender,
                                   SiteId dst, SiteId src, ObjectId obj,
                                   sim::EventLoop& loop, obs::Registry* metrics,
                                   obs::CausalTracer* causal,
                                   std::uint64_t session_no,
                                   SessionEffects* fx, std::uint64_t fault_salt) {
  SyncOutcome out;
  // COMPARE runs first (O(1) traffic); the session charges its bits. Under
  // fault injection a previously failed sync may have left the receiver
  // partially joined — outside the at-rest states compare_fast assumes — so
  // the lossy path pays for the exact comparison.
  const vv::Ordering rel = cfg_.net.faults.enabled()
                               ? vv::compare_full(receiver.vector, sender.vector)
                               : vv::compare_fast(receiver.vector, sender.vector);
  out.relation = rel;

  if (cfg_.check_oracle) {
    // Ground truth: causal relation by history containment.
    const auto& ha = receiver.oracle_history;
    const auto& hb = sender.oracle_history;
    const bool a_in_b = std::all_of(ha.begin(), ha.end(),
                                    [&](const UpdateId& u) { return hb.contains(u); });
    const bool b_in_a = std::all_of(hb.begin(), hb.end(),
                                    [&](const UpdateId& u) { return ha.contains(u); });
    vv::Ordering truth = vv::Ordering::kConcurrent;
    if (a_in_b && b_in_a) truth = vv::Ordering::kEqual;
    else if (a_in_b) truth = vv::Ordering::kBefore;
    else if (b_in_a) truth = vv::Ordering::kAfter;
    OPTREP_CHECK_MSG(rel == truth, "COMPARE disagrees with ground-truth causality");
  }

  vv::SyncOptions opt;
  opt.kind = cfg_.kind;
  opt.mode = cfg_.mode;
  opt.net = cfg_.net;
  if (fault_salt != 0 && opt.net.faults.enabled()) {
    // Batch sessions run on fresh local loops, so the wiring-level salt (the
    // loop's executed-event count) restarts at zero for every session; mix
    // the spec index in here so sessions do not replay one fault prefix.
    opt.net.faults.seed = sim::fault_stream_seed(opt.net.faults.seed, fault_salt);
  }
  opt.cost = cfg_.cost;
  opt.known_relation = rel;
  opt.tracer = cfg_.tracer;
  opt.trace_session = session_no;
  opt.metrics = metrics;
  opt.recorder = cfg_.recorder;
  opt.causal = causal;
  opt.src_site = src;
  opt.dst_site = dst;

  switch (rel) {
    case vv::Ordering::kEqual:
    case vv::Ordering::kAfter:
      // Nothing to pull. (A real system might push back; traces model that
      // as a separate sync in the other direction.)
      out.action = (rel == vv::Ordering::kEqual) ? SyncOutcome::Action::kNone
                                                 : SyncOutcome::Action::kPushedBack;
      // Charge the COMPARE probes.
      out.report.initial_relation = rel;
      out.report.bits_fwd = vv::compare_cost_bits(cfg_.cost) / 2;
      out.report.bits_rev = vv::compare_cost_bits(cfg_.cost) / 2;
      break;

    case vv::Ordering::kBefore: {
      out.report = vv::sync_with_recovery(loop, receiver.vector, sender.vector, opt);
      out.report.bits_fwd += vv::compare_cost_bits(cfg_.cost) / 2;
      out.report.bits_rev += vv::compare_cost_bits(cfg_.cost) / 2;
      if (!out.report.converged) {
        // Retry budget exhausted: sync_with_recovery left the vector as it
        // was, so the failed sync is a complete no-op — metadata never
        // claims content that was not transferred.
        out.action = SyncOutcome::Action::kFailed;
        break;
      }
      for (const auto& e : sender.data.entries) out.payload_bytes += e.size();
      std::vector<UpdateId> fresh = causal_fresh(sender, receiver, causal);
      receiver.data = sender.data;  // state transfer overwrites the replica
      receiver.oracle_vector.join(sender.oracle_vector);
      receiver.oracle_history.insert(sender.oracle_history.begin(),
                                     sender.oracle_history.end());
      if (fx != nullptr) {
        fx->fresh = std::move(fresh);
      } else {
        for (const UpdateId& u : fresh) {
          causal->deliver(loop.now(), obj, u.site, u.seq, out.report.causal_span,
                          src, dst);
          causal_converge_check(obj, u);
        }
      }
      out.action = SyncOutcome::Action::kPulled;
      break;
    }

    case vv::Ordering::kConcurrent: {
      if (cfg_.policy == ResolutionPolicy::kManual) {
        // §2.1: both replicas leave the system until resolved manually.
        receiver.conflicted = true;
        sender.conflicted = true;
        out.action = SyncOutcome::Action::kConflictHeld;
        out.report.initial_relation = rel;
        out.report.bits_fwd = vv::compare_cost_bits(cfg_.cost) / 2;
        out.report.bits_rev = vv::compare_cost_bits(cfg_.cost) / 2;
        break;
      }
      // Automatic reconciliation: vector sync, payload merge, then the
      // mandated local update on the receiving site ([11 §C], §2.2).
      out.report = vv::sync_with_recovery(loop, receiver.vector, sender.vector, opt);
      out.report.bits_fwd += vv::compare_cost_bits(cfg_.cost) / 2;
      out.report.bits_rev += vv::compare_cost_bits(cfg_.cost) / 2;
      if (!out.report.converged) {
        out.action = SyncOutcome::Action::kFailed;
        break;
      }
      for (const auto& e : sender.data.entries) out.payload_bytes += e.size();
      std::vector<UpdateId> fresh = causal_fresh(sender, receiver, causal);
      receiver.data.merge(sender.data);
      receiver.oracle_vector.join(sender.oracle_vector);
      receiver.oracle_history.insert(sender.oracle_history.begin(),
                                     sender.oracle_history.end());
      if (fx != nullptr) {
        fx->fresh = std::move(fresh);
      } else {
        for (const UpdateId& u : fresh) {
          causal->deliver(loop.now(), obj, u.site, u.seq, out.report.causal_span,
                          src, dst);
          causal_converge_check(obj, u);
        }
      }
      if (cfg_.check_oracle) check_replica(receiver);
      // The separate post-reconciliation update (metadata only: the merged
      // payload is the new version's content).
      receiver.vector.record_update(dst);
      receiver.oracle_vector.increment(dst);
      receiver.oracle_history.insert(UpdateId{dst, receiver.oracle_vector.value(dst)});
      const UpdateId u{dst, receiver.oracle_vector.value(dst)};
      if (fx != nullptr) {
        fx->has_origin = true;
        fx->origin = u;
      } else if (causal != nullptr) {
        causal->origin(loop.now(), obj, dst, u.seq);
        causal_converge_check(obj, u);
      }
      out.action = SyncOutcome::Action::kReconciled;
      break;
    }
  }

  if (cfg_.check_oracle) check_replica(receiver);
  return out;
}

void StateSystem::finish_session(const SyncOutcome& out) {
  totals_.sessions += 1;
  totals_.bits += out.report.total_bits();
  totals_.bytes += out.report.total_bytes();
  totals_.msgs += out.report.msgs_fwd + out.report.msgs_rev;
  totals_.frames += out.report.total_frames();
  totals_.framed_bytes += out.report.total_framed_bytes();
  totals_.payload_bytes += out.payload_bytes;
  totals_.elems_sent += out.report.elems_sent;
  totals_.elems_applied += out.report.elems_applied;
  totals_.elems_redundant += out.report.elems_redundant;
  totals_.skips += out.report.segments_skipped;
  totals_.retries += out.report.retries;
  totals_.faults_injected += out.report.total_faults();
  totals_.recovery_bits += out.report.recovery_bits;
  if (out.relation == vv::Ordering::kConcurrent) ++totals_.conflicts_detected;
  if (out.action == SyncOutcome::Action::kReconciled) ++totals_.reconciliations;
  if (!out.report.converged) ++totals_.sync_failures;
  // Table 2 bounds a single fault-free session; retried traffic is accounted
  // separately (recovery_bits), so the bound check only runs lossless.
  if (!cfg_.net.faults.enabled() &&
      !obs::within_table2_bound(cfg_.cost, cfg_.kind, out.report)) {
    ++totals_.bound_violations;
    metrics_.counter("obs.bound_violations").inc();
    if (cfg_.recorder != nullptr) {
      cfg_.recorder->trigger("table2_bound_violation", loop_.now());
    }
  }
}

std::vector<SyncOutcome> StateSystem::run_batch(const std::vector<BatchEvent>& events,
                                                rt::ThreadPool& pool,
                                                BatchStats* stats) {
  OPTREP_SPAN("state.run_batch");
  OPTREP_CHECK_MSG(cfg_.policy == ResolutionPolicy::kAutomatic,
                   "run_batch requires automatic resolution: a manual conflict "
                   "hold mutates the sender, which wave read-sharing forbids");
  OPTREP_CHECK_MSG(cfg_.tracer == nullptr && cfg_.recorder == nullptr &&
                       cfg_.timeline == nullptr,
                   "run_batch: tracer/recorder/timeline are sequential "
                   "per-session instruments; use the sequential driver");
  batch_ran_ = true;

  // Replica key: high bit keeps every key nonzero (0 is plan_waves' "no read"
  // sentinel and site 0 / object 0 would otherwise collide with it).
  const auto key = [](SiteId s, ObjectId o) {
    return (std::uint64_t{1} << 63) | (std::uint64_t{s.value} << 32) |
           std::uint64_t{o.value};
  };

  // Shadow convergence state for causal tracing: host set and causal history
  // per replica, advanced at each event's spec-order COMMIT — exactly when a
  // sequential execution would advance the real state — so kConverge fires at
  // the same events it would sequentially. Snapshotted before prepare creates
  // the batch's receiver replicas (a replica becomes a host only when its
  // creating event commits).
  std::unordered_map<std::uint64_t, std::unordered_set<UpdateId>> shadow;
  std::unordered_map<ObjectId, std::vector<std::uint64_t>> hosts_by_obj;
  if (cfg_.causal != nullptr) {
    for (const auto& [site, objs] : sites_) {
      for (const auto& [o, r] : objs) {
        shadow.emplace(key(site, o), r.oracle_history);
        hosts_by_obj[o].push_back(key(site, o));
      }
    }
  }
  auto ensure_host = [&](SiteId site, ObjectId o) -> std::unordered_set<UpdateId>& {
    const std::uint64_t k = key(site, o);
    auto [it, inserted] = shadow.try_emplace(k);
    if (inserted) hosts_by_obj[o].push_back(k);
    return it->second;
  };
  auto converge_check = [&](ObjectId o, const UpdateId& u, double at) {
    for (const std::uint64_t k : hosts_by_obj[o]) {
      if (!shadow[k].contains(u)) return;
    }
    cfg_.causal->converge(at, o, u.site, u.seq);
  };

  // Prepare, pass 1 (spec order): validate presence against the evolving map
  // — sites_ itself tracks which replicas exist "so far" because creations
  // happen here, in order — create every receiver replica, and derive the
  // wave items.
  std::vector<rt::WaveItem> items;
  items.reserve(events.size());
  for (const BatchEvent& ev : events) {
    switch (ev.type) {
      case BatchEvent::Type::kCreate:
        OPTREP_CHECK_MSG(!has_replica(ev.site, ev.obj), "object already exists on site");
        sites_[ev.site][ev.obj];
        break;
      case BatchEvent::Type::kUpdate:
        OPTREP_CHECK_MSG(has_replica(ev.site, ev.obj),
                         "update without a replica: the driver injects the "
                         "creator sync first (see wl::run_state_parallel)");
        break;
      case BatchEvent::Type::kSync:
        OPTREP_CHECK_MSG(ev.site != ev.peer, "a site cannot synchronize with itself");
        OPTREP_CHECK_MSG(has_replica(ev.peer, ev.obj),
                         "sync from an absent sender: the driver filters (and "
                         "counts) such skips");
        sites_[ev.site][ev.obj];  // receiver replica, created empty if absent
        break;
    }
    items.push_back({key(ev.site, ev.obj),
                     ev.type == BatchEvent::Type::kSync ? key(ev.peer, ev.obj)
                                                        : std::uint64_t{0}});
  }

  // Prepare, pass 2: all map entries now exist, so replica addresses are
  // stable (unordered_map never moves values) — resolve them once, and pin
  // vector capacity: concurrent optimistic readers tolerate slot recycling
  // but not element-array relocation (see vv::RotatingVector::reserve).
  struct Prepared {
    StateReplica* receiver{nullptr};
    StateReplica* sender{nullptr};  // kSync only
  };
  std::vector<Prepared> prep(events.size());
  std::unordered_set<const vv::RotatingVector*> touched;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const BatchEvent& ev = events[i];
    StateReplica& r = sites_[ev.site][ev.obj];
    r.vector.reserve(cfg_.n_sites);
    prep[i].receiver = &r;
    touched.insert(&r.vector);
    if (ev.type == BatchEvent::Type::kSync) {
      StateReplica& s = sites_[ev.peer][ev.obj];
      s.vector.reserve(cfg_.n_sites);
      prep[i].sender = &s;
      touched.insert(&s.vector);
    }
  }
  const auto sum_olock = [&touched] {
    rt::OLock::Counters c;
    for (const vv::RotatingVector* v : touched) {
      const rt::OLock::Counters k = v->olock().counters();
      c.acquisitions += k.acquisitions;
      c.opt_retries += k.opt_retries;
      c.queue_waits += k.queue_waits;
    }
    return c;
  };
  const rt::OLock::Counters olock_before = sum_olock();

  // Scratch causal rings are sized for one whole session: ≤ 7 attempts
  // (default retry budget), each bounded by a few wire/apply events per site.
  const std::size_t scratch_cap =
      std::size_t{7} * (std::size_t{8} * cfg_.n_sites + 64);
  const std::uint64_t causal_seed =
      cfg_.causal != nullptr ? cfg_.causal->run_seed() : 0;

  struct ComputeResult {
    SyncOutcome out;
    SessionEffects fx;
    double end_time{0};
    std::unique_ptr<obs::CausalTracer> scratch;
  };
  std::vector<ComputeResult> results(events.size());
  const rt::WavePlan plan = rt::plan_waves(items);
  // Per-shard metric registries: a shard's sessions run sequentially, so no
  // locking; merged into metrics_ in shard order after the last wave (counter
  // and histogram merges add, so final counts equal a sequential run's).
  std::vector<obs::Registry> shard_metrics(plan.n_shards);

  const auto compute_one = [&](std::size_t i, std::size_t shard) {
    const BatchEvent& ev = events[i];
    ComputeResult& res = results[i];
    StateReplica& r = *prep[i].receiver;
    if (ev.type != BatchEvent::Type::kSync) {
      rt::OLockGuard g(r.vector.olock());
      OPTREP_CHECK_MSG(!r.conflicted, "update on an excluded (conflicted) replica");
      r.data.entries.insert(ev.entry);
      r.vector.record_update(ev.site);
      r.oracle_vector.increment(ev.site);
      const UpdateId u{ev.site, r.oracle_vector.value(ev.site)};
      r.oracle_history.insert(u);
      res.fx.has_origin = true;
      res.fx.origin = u;
      if (cfg_.check_oracle) check_replica(r);
      return;
    }
    StateReplica& sender = *prep[i].sender;
    if (cfg_.causal != nullptr) {
      res.scratch = std::make_unique<obs::CausalTracer>(causal_seed, scratch_cap);
    }
    sim::EventLoop loop;
    // The wave plan promises no writer touches the sender while this session
    // reads it; assert that with an optimistic read spanning the session.
    const std::uint64_t snap = sender.vector.olock().read_begin();
    {
      rt::OLockGuard g(r.vector.olock());
      res.out = sync_pair(r, sender, ev.site, ev.peer, ev.obj, loop,
                          &shard_metrics[shard], res.scratch.get(),
                          static_cast<std::uint64_t>(i) + 1, &res.fx,
                          /*fault_salt=*/static_cast<std::uint64_t>(i) + 1);
    }
    OPTREP_CHECK_MSG(sender.vector.olock().read_validate(snap),
                     "wave invariant violated: a sender was mutated during a "
                     "parallel session");
    res.end_time = loop.now();
  };

  std::size_t wave_start = 0;
  for (const rt::WavePlan::Wave& wave : plan.waves) {
    pool.for_each_index(plan.n_shards, [&](std::size_t shard) {
      for (const std::uint32_t idx : wave.by_shard[shard]) {
        compute_one(idx, shard);
      }
    });
    // Commit in spec order (waves cover contiguous index ranges): session
    // accounting, then causal emission against the shared tracer — scratch
    // ring first (span ids rebased by absorb), then the deliver/origin and
    // convergence events the sequential path would emit inline.
    for (std::size_t i = wave_start; i < wave_start + wave.items; ++i) {
      const BatchEvent& ev = events[i];
      ComputeResult& res = results[i];
      if (ev.type == BatchEvent::Type::kSync) finish_session(res.out);
      if (cfg_.causal == nullptr) continue;
      ensure_host(ev.site, ev.obj);
      std::uint64_t span = 0;
      if (res.scratch != nullptr) {
        const std::uint64_t offset = cfg_.causal->spans_opened();
        cfg_.causal->absorb(*res.scratch);
        span = res.out.report.causal_span == 0
                   ? 0
                   : res.out.report.causal_span + offset;
      }
      {
        auto& hist = shadow[key(ev.site, ev.obj)];
        for (const UpdateId& u : res.fx.fresh) hist.insert(u);
      }
      for (const UpdateId& u : res.fx.fresh) {
        cfg_.causal->deliver(res.end_time, ev.obj, u.site, u.seq, span, ev.peer,
                             ev.site);
        converge_check(ev.obj, u, res.end_time);
      }
      if (res.fx.has_origin) {
        shadow[key(ev.site, ev.obj)].insert(res.fx.origin);
        cfg_.causal->origin(res.end_time, ev.obj, res.fx.origin.site,
                            res.fx.origin.seq);
        converge_check(ev.obj, res.fx.origin, res.end_time);
      }
    }
    wave_start += wave.items;
  }

  for (const obs::Registry& reg : shard_metrics) metrics_.merge_from(reg);
  const rt::OLock::Counters olock_after = sum_olock();
  rt::OLock::Counters delta;
  delta.acquisitions = olock_after.acquisitions - olock_before.acquisitions;
  delta.opt_retries = olock_after.opt_retries - olock_before.opt_retries;
  delta.queue_waits = olock_after.queue_waits - olock_before.queue_waits;
  olock_totals_.acquisitions += delta.acquisitions;
  olock_totals_.opt_retries += delta.opt_retries;
  olock_totals_.queue_waits += delta.queue_waits;
  publish_metrics();
  if (stats != nullptr) {
    stats->waves = plan.waves.size();
    stats->max_wave_items = plan.max_wave_items();
    stats->olock = delta;
  }

  std::vector<SyncOutcome> outs(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) outs[i] = std::move(results[i].out);
  return outs;
}

std::uint64_t StateSystem::divergence() const {
  // Per-object element-wise supremum over every replica's vector.
  std::unordered_map<ObjectId, std::unordered_map<SiteId, std::uint64_t>> sup;
  for (const auto& [site, objs] : sites_) {
    for (const auto& [obj, r] : objs) {
      auto& s = sup[obj];
      for (const auto& e : r.vector) {
        auto& v = s[e.site];
        if (e.value > v) v = e.value;
      }
    }
  }
  std::uint64_t d = 0;
  for (const auto& [site, objs] : sites_) {
    for (const auto& [obj, r] : objs) {
      for (const auto& [sid, v] : sup.at(obj)) {
        if (r.vector.value(sid) < v) ++d;
      }
      if (r.conflicted) ++d;
    }
  }
  return d;
}

StateSystem::MemoryStats StateSystem::memory_stats() const {
  MemoryStats m;
  for (const auto& [site, objs] : sites_) {
    for (const auto& [obj, r] : objs) {
      ++m.replicas;
      m.vector_bytes += r.vector.memory_bytes();
      m.index_bytes += r.vector.index_memory_bytes();
    }
  }
  return m;
}

void StateSystem::sample_timeline() {
  if (cfg_.timeline == nullptr) return;
  if (totals_.sessions == sampled_at_sessions_) return;
  sampled_at_sessions_ = totals_.sessions;
  sample_timeline_at(cfg_.timeline_every_s > 0 ? loop_.now()
                                               : static_cast<double>(totals_.sessions));
}

void StateSystem::sample_timeline_at(double x) {
  metrics_.gauge("repl.divergence").set(static_cast<std::int64_t>(divergence()));
  const MemoryStats mem = memory_stats();
  metrics_.gauge("state.replicas").set(static_cast<std::int64_t>(mem.replicas));
  metrics_.gauge("state.vector_memory_bytes").set(static_cast<std::int64_t>(mem.vector_bytes));
  metrics_.gauge("state.index_memory_bytes").set(static_cast<std::int64_t>(mem.index_bytes));
  publish_metrics();
  cfg_.timeline->begin_sample(x);
  cfg_.timeline->sample_registry(metrics_);
}

void StateSystem::time_sample_thunk(void* ctx, sim::Time t) {
  static_cast<StateSystem*>(ctx)->sample_timeline_at(t);
}

void StateSystem::publish_metrics() {
  metrics_.counter("state.sessions").set(totals_.sessions);
  metrics_.counter("state.frames").set(totals_.frames);
  metrics_.counter("state.framed_bytes").set(totals_.framed_bytes);
  metrics_.counter("state.payload_bytes").set(totals_.payload_bytes);
  metrics_.counter("state.conflicts_detected").set(totals_.conflicts_detected);
  metrics_.counter("state.reconciliations").set(totals_.reconciliations);
  if (cfg_.net.faults.enabled()) {
    metrics_.counter("state.retries").set(totals_.retries);
    metrics_.counter("state.sync_failures").set(totals_.sync_failures);
    metrics_.counter("state.faults_injected").set(totals_.faults_injected);
    metrics_.counter("state.recovery_bits").set(totals_.recovery_bits);
  }
  if (batch_ran_) {
    metrics_.counter("rt.olock.acquisitions").set(olock_totals_.acquisitions);
    metrics_.counter("rt.olock.opt_retries").set(olock_totals_.opt_retries);
    metrics_.counter("rt.olock.queue_waits").set(olock_totals_.queue_waits);
  }
  metrics_.gauge("sim.queue_depth").set(static_cast<std::int64_t>(loop_.queue_depth()));
  metrics_.gauge("sim.max_queue_depth").set(static_cast<std::int64_t>(loop_.max_queue_depth()));
  metrics_.gauge("sim.executed_events").set(static_cast<std::int64_t>(loop_.executed_events()));
  metrics_.gauge("sim.cancelled_events").set(static_cast<std::int64_t>(loop_.cancelled_events()));
}

bool StateSystem::has_replica(SiteId site, ObjectId obj) const {
  auto sit = sites_.find(site);
  return sit != sites_.end() && sit->second.contains(obj);
}

const StateReplica& StateSystem::replica(SiteId site, ObjectId obj) const {
  auto sit = sites_.find(site);
  OPTREP_CHECK_MSG(sit != sites_.end(), "site hosts nothing");
  auto rit = sit->second.find(obj);
  OPTREP_CHECK_MSG(rit != sit->second.end(), "no replica of object on site");
  return rit->second;
}

bool StateSystem::replicas_consistent(ObjectId obj) const {
  const StateReplica* first = nullptr;
  for (const auto& [site, objs] : sites_) {
    auto it = objs.find(obj);
    if (it == objs.end()) continue;
    if (first == nullptr) {
      first = &it->second;
      continue;
    }
    if (!(it->second.data == first->data)) return false;
    if (!(it->second.vector.to_version_vector() == first->vector.to_version_vector()))
      return false;
  }
  return true;
}

std::vector<SiteId> StateSystem::hosts_of(ObjectId obj) const {
  std::vector<SiteId> out;
  for (const auto& [site, objs] : sites_) {
    if (objs.contains(obj)) out.push_back(site);
  }
  std::sort(out.begin(), out.end());
  return out;
}

StateReplica& StateSystem::replica_mut(SiteId site, ObjectId obj) {
  auto sit = sites_.find(site);
  OPTREP_CHECK_MSG(sit != sites_.end(), "site hosts nothing");
  auto rit = sit->second.find(obj);
  OPTREP_CHECK_MSG(rit != sit->second.end(), "no replica of object on site");
  return rit->second;
}

void StateSystem::apply_update(StateReplica& r, SiteId site, ObjectId obj,
                               std::string entry) {
  r.data.entries.insert(std::move(entry));
  r.vector.record_update(site);
  r.oracle_vector.increment(site);
  const UpdateId u{site, r.oracle_vector.value(site)};
  r.oracle_history.insert(u);
  // Note: the oracle history uses the replica's own per-site counter, which
  // equals the global per-site sequence because a site's updates are serial
  // on its single replica of the object.
  if (cfg_.causal != nullptr) {
    cfg_.causal->origin(loop_.now(), obj, site, u.seq);
    // A single-host object converges the instant it is updated.
    causal_converge_check(obj, u);
  }
  if (cfg_.check_oracle) check_replica(r);
}

std::vector<UpdateId> StateSystem::causal_fresh(const StateReplica& sender,
                                                const StateReplica& receiver,
                                                const obs::CausalTracer* causal) const {
  std::vector<UpdateId> fresh;
  if (causal == nullptr) return fresh;
  for (const UpdateId& u : sender.oracle_history) {
    if (!receiver.oracle_history.contains(u)) fresh.push_back(u);
  }
  std::sort(fresh.begin(), fresh.end());
  return fresh;
}

void StateSystem::causal_converge_check(ObjectId obj, const UpdateId& u) {
  // Coverage of u only changes when some replica absorbs u itself, so
  // checking at every origin/deliver of u closes each trace exactly when the
  // update stops diverging. Replica-set growth (a fresh empty replica created
  // by a later sync) re-opens the trace until the newcomer catches up; the
  // analyzer keys on the *last* kConverge of a trace.
  for (const auto& [site, objs] : sites_) {
    auto it = objs.find(obj);
    if (it == objs.end()) continue;
    if (!it->second.oracle_history.contains(u)) return;
  }
  cfg_.causal->converge(loop_.now(), obj, u.site, u.seq);
}

void StateSystem::check_replica(const StateReplica& r) const {
  OPTREP_CHECK_MSG(r.vector.same_values(r.oracle_vector),
                   "rotating vector diverged from the traditional-vector oracle");
}

}  // namespace optrep::repl
