// A complete state-transfer optimistic replication system (§2.1) built on
// rotating vectors: sites host replicas of objects, updates mutate payloads
// and rotate vectors, and synchronization sessions run the paper's protocols
// over the simulated network.
//
// The harness continuously cross-checks the rotating-vector implementation
// against two oracles:
//   - a traditional VersionVector carried next to every replica (values must
//     match after every operation), and
//   - the ground-truth causal history (the set of update ids a replica has
//     absorbed), against which conflict detection is validated.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/cost_model.h"
#include "common/ids.h"
#include "obs/causal.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "rt/olock.h"
#include "rt/shard.h"
#include "rt/thread_pool.h"
#include "sim/event_loop.h"
#include "sim/link.h"
#include "vv/compare.h"
#include "vv/rotating_vector.h"
#include "vv/session.h"

namespace optrep::repl {

// §1/§2.1: manual resolution excludes conflicting replicas from the system
// (BRV-class systems); automatic resolution reconciles them (CRV/SRV-class).
enum class ResolutionPolicy : std::uint8_t { kManual, kAutomatic };

// Replica content: a set of entries (think lines of a replicated file or
// records of a log). The automatic resolver is set union — a deterministic
// merge both sides agree on.
struct Payload {
  std::set<std::string> entries;

  void merge(const Payload& other) { entries.insert(other.entries.begin(), other.entries.end()); }
  bool operator==(const Payload&) const = default;
};

struct StateReplica {
  vv::RotatingVector vector;
  Payload data;
  bool conflicted{false};  // manual policy: excluded until resolved

  // Oracles (not part of the protocol state).
  vv::VersionVector oracle_vector;
  std::unordered_set<UpdateId> oracle_history;
};

// What a synchronization session did.
struct SyncOutcome {
  vv::Ordering relation{vv::Ordering::kEqual};
  enum class Action : std::uint8_t {
    kNone,         // already consistent
    kPulled,       // receiver overwritten by sender
    kPushedBack,   // receiver dominated; nothing pulled
    kReconciled,   // automatic conflict resolution ran
    kConflictHeld, // manual policy: replicas excluded, no transfer
    kSkipped,      // replica missing/excluded
    kFailed,       // fault injection: retry budget exhausted, no merge applied
  } action{Action::kNone};
  vv::SyncReport report;  // traffic of the vector exchange (zeroed for kNone paths)
  // Object content shipped by this session (Σ entry sizes on pull/reconcile
  // paths). Folded into Totals::payload_bytes by the accounting tail.
  std::uint64_t payload_bytes{0};
};

class StateSystem {
 public:
  struct Config {
    std::uint32_t n_sites{4};
    vv::VectorKind kind{vv::VectorKind::kSrv};
    ResolutionPolicy policy{ResolutionPolicy::kAutomatic};
    vv::TransferMode mode{vv::TransferMode::kIdeal};
    sim::NetConfig net{};
    CostModel cost{};
    // Cross-check against the traditional-vector and causal-history oracles.
    // Forced off when net.faults is enabled: a failed (non-converged) session
    // leaves the receiver's vector partially joined, which the oracles — built
    // around complete at-rest merges — cannot model.
    bool check_oracle{true};
    // Optional structured tracing: every session's protocol events land
    // here, tagged with a per-system session id (see src/obs/trace.h).
    obs::Tracer* tracer{nullptr};
    // Time-series telemetry (obs/timeline.h): with `timeline` set the system
    // samples its metric registry — including the repl.divergence convergence
    // probe — either every `timeline_every` completed sync sessions (axis
    // "sessions", the default) or, when timeline_every_s > 0, at every
    // timeline_every_s seconds of simulated time via the event loop's
    // time-advance sampler (axis "time_s").
    obs::Timeline* timeline{nullptr};
    std::uint32_t timeline_every{16};
    double timeline_every_s{0};
    // Optional flight recorder (obs/flight_recorder.h): wired into every
    // session's wire tap and fault observer; a Table 2 bound violation
    // triggers (freezes) it here, decode errors and retry exhaustion trigger
    // it inside the vv layer.
    obs::FlightRecorder* recorder{nullptr};
    // Causal propagation tracing (obs/causal.h): every local update opens a
    // trace (kOrigin), every sync session stamps send/recv/fault/apply edges
    // onto a per-attempt span tree, every pull records which update ids the
    // receiver learned (kDeliver, attributed to the session's root span), and
    // the system closes a trace (kConverge) the moment every current host of
    // the object covers the update. The delivery identities come from the
    // causal-history oracle, which is maintained on all converged paths even
    // under fault injection (only the *checks* are disabled there).
    obs::CausalTracer* causal{nullptr};
  };

  explicit StateSystem(Config cfg);

  const Config& config() const { return cfg_; }

  // Create the object on `site` with an initial entry; counts as the first
  // update (the paper's replication graphs begin with an update, Figure 1).
  void create_object(SiteId site, ObjectId obj, std::string entry);

  // Local update: requires a (non-excluded) replica of obj at site.
  void update(SiteId site, ObjectId obj, std::string entry);

  // Synchronize dst's replica with src's (dst pulls; src is the sender).
  // Creates dst's replica if absent. Returns what happened plus traffic.
  SyncOutcome sync(SiteId dst, SiteId src, ObjectId obj);

  // ---- sharded parallel batch execution ----------------------------------
  //
  // run_batch executes a spec-order list of operations with replica-disjoint
  // sessions running concurrently. Each operation declares the replica it
  // writes (site, obj) and, for syncs, the replica it reads (peer, obj); the
  // list is split into waves by rt::plan_waves, every wave's sessions run in
  // parallel across a fixed 64-shard partition of the write keys, and each
  // session's side effects — totals, causal events, oracle convergence
  // bookkeeping — are committed sequentially in spec order after the wave
  // joins. The wave rules guarantee the execution is EXACTLY equivalent to
  // running the operations one by one (see rt/shard.h), so results are
  // byte-identical for any thread count.
  //
  // Requirements (checked): automatic resolution (manual mutates the sender,
  // which would break wave read-sharing), and no tracer / flight recorder /
  // timeline (all three are sequential per-session-order instruments; causal
  // tracing IS supported via per-session scratch rings absorbed in spec
  // order). Fault injection is supported and deterministic: each session's
  // fault stream derives from the configured seed salted with the event's
  // spec index, so faulty batches are byte-identical for any thread count.
  // The stream differs from the sequential engine's, though — sequential
  // sessions decorrelate via the shared loop's cumulative event count, a
  // quantity only defined under in-order execution — so under ACTIVE faults
  // run_batch matches the sequential driver in protocol outcomes (eventual
  // consistency, final replica contents) but not in per-session traffic.
  // Fault-free batches are exactly byte-equivalent.
  struct BatchEvent {
    enum class Type : std::uint8_t { kCreate, kUpdate, kSync };
    Type type{Type::kSync};
    SiteId site{};   // replica written: update/create target, or sync receiver
    SiteId peer{};   // kSync only: the sender (read, never written)
    ObjectId obj{};
    std::string entry;  // kCreate/kUpdate payload
  };
  struct BatchStats {
    std::uint64_t waves{0};
    std::uint64_t max_wave_items{0};
    rt::OLock::Counters olock{};  // lock traffic attributable to this batch
  };
  // Returns one outcome per event, in spec order; kCreate/kUpdate slots hold
  // a default (kNone) outcome. `pool` supplies the workers; with one thread
  // the engine runs inline through the identical wave schedule.
  std::vector<SyncOutcome> run_batch(const std::vector<BatchEvent>& events,
                                     rt::ThreadPool& pool,
                                     BatchStats* stats = nullptr);

  // Total optimistic-lock traffic observed by run_batch so far (exported as
  // rt.olock.* counters once a batch has run).
  const rt::OLock::Counters& olock_totals() const { return olock_totals_; }

  bool has_replica(SiteId site, ObjectId obj) const;
  const StateReplica& replica(SiteId site, ObjectId obj) const;

  // All sites hosting obj agree on payload and metadata values.
  bool replicas_consistent(ObjectId obj) const;

  // Aggregated traffic over all sync sessions so far.
  struct Totals {
    std::uint64_t sessions{0};
    std::uint64_t bits{0};
    std::uint64_t bytes{0};
    std::uint64_t msgs{0};
    // Frame batching (net.frame_budget): coalesced wire frames and their
    // delta-varint byte totals; frames == msgs when framing is off.
    std::uint64_t frames{0};
    std::uint64_t framed_bytes{0};
    // Object content shipped: state transfer moves the whole payload on
    // every pull/reconciliation (§6 contrasts this with operation transfer).
    std::uint64_t payload_bytes{0};
    std::uint64_t elems_sent{0};
    std::uint64_t elems_applied{0};    // Σ|Δ| across sessions
    std::uint64_t elems_redundant{0};  // Σ|Γ|
    std::uint64_t skips{0};            // observed γ (honored segment skips)
    std::uint64_t conflicts_detected{0};
    std::uint64_t reconciliations{0};
    // Fault injection (net.faults): session re-runs, sessions that never
    // converged within the retry budget, injected message faults, and the
    // model-bit traffic attributable to recovery attempts.
    std::uint64_t retries{0};
    std::uint64_t sync_failures{0};
    std::uint64_t faults_injected{0};
    std::uint64_t recovery_bits{0};
    // Sessions whose measured traffic exceeded the Table 2 upper bound for
    // the configured kind (expected 0 in kIdeal mode; pipelined runs may
    // overshoot by β, §3.1 — either way it is never silent).
    std::uint64_t bound_violations{0};
  };
  const Totals& totals() const { return totals_; }

  // Fleet-level metrics: per-session aggregates from the vv layer ("vv.*")
  // plus system counters/histograms ("state.*") and simulator gauges
  // ("sim.*"). Exported via obs::metrics_to_json.
  const obs::Registry& metrics() const { return metrics_; }
  obs::Registry& metrics() { return metrics_; }

  // Simulated clock shared by all sessions.
  sim::Time now() const { return loop_.now(); }

  std::vector<SiteId> hosts_of(ObjectId obj) const;

  // Residual divergence: distance of the fleet from the converged state.
  // Counts, over every (replica, site) pair, vector entries strictly below
  // the per-object element-wise supremum, plus one per excluded (conflicted)
  // replica. Zero iff every replica holds the element-wise max and none is
  // excluded. Order-independent sum — deterministic across map iteration
  // orders. Emitted as the `repl.divergence` gauge in timeline samples.
  std::uint64_t divergence() const;

  // Storage footprint of the fleet's rotating-vector metadata at allocated
  // capacity (SoA columns + free list + site index, see vv/arena.h). O(replicas);
  // sampled into state.replicas / state.vector_memory_bytes /
  // state.index_memory_bytes gauges with every timeline sample and exported
  // in the optrep.run/v1 "memory" object.
  struct MemoryStats {
    std::uint64_t replicas{0};
    std::uint64_t vector_bytes{0};  // Σ RotatingVector::memory_bytes (index included)
    std::uint64_t index_bytes{0};   // Σ site-index share alone
  };
  MemoryStats memory_stats() const;

  // Record one timeline sample now (no-op without cfg.timeline). The
  // session-count axis samples automatically every timeline_every sessions;
  // call this to flush a final sample at the end of a run. Samples taken at
  // an already-sampled session count are suppressed.
  void sample_timeline();

 private:
  // Deferred causal side effects of one parallel session: emitted at commit
  // time, in spec order, against the shared tracer and the shadow histories.
  struct SessionEffects {
    std::vector<UpdateId> fresh;  // update ids the receiver learned
    bool has_origin{false};       // local update / reconciliation update ran
    UpdateId origin{};
  };

  StateReplica& replica_mut(SiteId site, ObjectId obj);
  void apply_update(StateReplica& r, SiteId site, ObjectId obj, std::string entry);
  // The protocol core of sync(): COMPARE, oracle cross-check, the session
  // switch, and all receiver-state mutation. Pure over its arguments —
  // `loop`, `metrics` and `causal` are the legacy members for sequential
  // calls and per-session/per-shard instances for parallel ones. With
  // `fx == nullptr` causal events are emitted inline (legacy); otherwise
  // they are recorded into *fx for spec-order commit. A nonzero `fault_salt`
  // re-seeds the session's fault stream with sim::fault_stream_seed — the
  // batch engine passes the spec index so sessions on fresh local event
  // loops stay decorrelated (the sequential engine decorrelates via the
  // shared loop's cumulative event count, which parallel sessions cannot
  // observe without serializing; see run_batch's doc for the consequence).
  SyncOutcome sync_pair(StateReplica& receiver, StateReplica& sender,
                        SiteId dst, SiteId src, ObjectId obj,
                        sim::EventLoop& loop, obs::Registry* metrics,
                        obs::CausalTracer* causal, std::uint64_t session_no,
                        SessionEffects* fx, std::uint64_t fault_salt = 0);
  // The accounting tail of sync(): totals and the Table 2 bound check.
  void finish_session(const SyncOutcome& out);
  // Causal tracing helpers (no-ops when cfg_.causal is null): update ids the
  // receiver is about to learn, in deterministic (site, seq) order; emit the
  // kDeliver edges for them; close any trace every host now covers.
  std::vector<UpdateId> causal_fresh(const StateReplica& sender,
                                     const StateReplica& receiver,
                                     const obs::CausalTracer* causal) const;
  void causal_converge_check(ObjectId obj, const UpdateId& u);
  void check_replica(const StateReplica& r) const;
  void publish_metrics();
  void sample_timeline_at(double x);
  static void time_sample_thunk(void* ctx, sim::Time t);

  Config cfg_;
  sim::EventLoop loop_;
  std::unordered_map<SiteId, std::unordered_map<ObjectId, StateReplica>> sites_;
  Totals totals_;
  obs::Registry metrics_;
  std::uint64_t sampled_at_sessions_{~std::uint64_t{0}};
  rt::OLock::Counters olock_totals_{};
  bool batch_ran_{false};
};

}  // namespace optrep::repl
