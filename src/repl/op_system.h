// A complete operation-transfer optimistic replication system (§6) built on
// causal graphs: every replica logs operations as graph nodes; SYNCG ships
// only the missing sub-DAG; reconciliation adds a merge node as the new sink.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/cost_model.h"
#include "common/ids.h"
#include "graph/sync_graph.h"
#include "obs/causal.h"
#include "obs/metrics.h"
#include "sim/event_loop.h"

namespace optrep::repl {

struct OpReplica {
  graph::CausalGraph graph;
  // Hybrid transfer (§6): the short operation history this site retains.
  // Only maintained when Config::op_log_limit > 0; ids of operations whose
  // payloads are still available locally, oldest first.
  std::deque<UpdateId> log_order;
  std::unordered_set<UpdateId> log;
};

struct OpSyncOutcome {
  vv::Ordering relation{vv::Ordering::kEqual};
  enum class Action : std::uint8_t { kNone, kFastForwarded, kReconciled, kSkipped }
      action{Action::kNone};
  graph::GraphSyncReport report;
  // Hybrid transfer: the sender no longer held some needed operation
  // payloads, so the whole object state was shipped instead (§6: "when a
  // replica is too old, the entire object is transmitted").
  bool state_fallback{false};
  std::uint64_t state_fallback_bytes{0};
};

class OpSystem {
 public:
  struct Config {
    std::uint32_t n_sites{4};
    vv::TransferMode mode{vv::TransferMode::kIdeal};
    sim::NetConfig net{};
    CostModel cost{};
    bool use_incremental{true};  // false: full-graph-transfer baseline
    bool check_invariants{true};
    // Hybrid transfer (§6): number of recent operations whose payloads each
    // site retains; 0 keeps everything (pure operation transfer). When a
    // peer needs an evicted payload, the session falls back to shipping the
    // whole object state.
    std::uint32_t op_log_limit{0};
    // Causal propagation tracing (obs/causal.h): every operation (including
    // reconciliation merge nodes) opens a trace; each sync's newly-absorbed
    // node ids (GraphSyncReport::new_node_ids) become kDeliver edges; a trace
    // closes (kConverge) when every current host's graph contains the node.
    // Operation transfer has no vv session spans, so delivers carry span 0 —
    // the analyzer still builds propagation trees from the (src, dst) edges.
    obs::CausalTracer* causal{nullptr};
  };

  explicit OpSystem(Config cfg) : cfg_(cfg) {
    // The fault model covers vv sessions only: graph synchronization has no
    // recovery wrapper, so a lossy network would silently lose operations.
    OPTREP_CHECK_MSG(!cfg_.net.faults.enabled(),
                     "fault injection is not supported for operation transfer");
  }

  const Config& config() const { return cfg_; }

  // Create the object on `site`; `content` is the initial operation payload.
  void create_object(SiteId site, ObjectId obj, std::string content);

  // Execute an operation on site's replica (appends a graph node).
  void update(SiteId site, ObjectId obj, std::string content);

  // dst pulls src's operations; fast-forwards or reconciles the sink.
  OpSyncOutcome sync(SiteId dst, SiteId src, ObjectId obj);

  bool has_replica(SiteId site, ObjectId obj) const;
  const OpReplica& replica(SiteId site, ObjectId obj) const;

  // Deterministic materialized state: operation contents in a topological,
  // id-tie-broken order. Two replicas with equal graphs materialize equally.
  std::string materialize(SiteId site, ObjectId obj) const;

  bool replicas_consistent(ObjectId obj) const;

  // Residual divergence: over every replica, the number of operations in the
  // per-object union of all replicas' causal graphs that this replica has not
  // absorbed yet. Zero iff every replica holds the full operation history.
  // Published as the `repl.divergence` gauge after every session.
  std::uint64_t divergence() const;

  struct Totals {
    std::uint64_t sessions{0};
    std::uint64_t bits{0};
    std::uint64_t bytes{0};
    // Frame batching (net.frame_budget): coalesced wire frames and their
    // delta-varint byte totals; frames == messages when framing is off.
    std::uint64_t frames{0};
    std::uint64_t framed_bytes{0};
    std::uint64_t nodes_sent{0};
    std::uint64_t nodes_redundant{0};
    std::uint64_t op_bytes{0};
    std::uint64_t reconciliations{0};
    std::uint64_t state_fallbacks{0};
    std::uint64_t state_fallback_bytes{0};
  };
  const Totals& totals() const { return totals_; }

  // Fleet metrics ("op.*" counters, a per-session-bits histogram, and "sim.*"
  // gauges from the event loop). Exported via obs::metrics_to_json.
  const obs::Registry& metrics() const { return metrics_; }
  obs::Registry& metrics() { return metrics_; }

 private:
  OpReplica& replica_mut(SiteId site, ObjectId obj);
  UpdateId fresh_op(SiteId site, ObjectId obj);
  void retain(OpReplica& r, UpdateId op);
  void publish_metrics();
  // Causal tracing helpers (no-ops when cfg_.causal is null).
  void causal_origin(ObjectId obj, const UpdateId& op);
  void causal_converge_check(ObjectId obj, const UpdateId& op);

  Config cfg_;
  sim::EventLoop loop_;
  std::unordered_map<SiteId, std::unordered_map<ObjectId, OpReplica>> sites_;
  // Per-site, per-object operation sequence (a site's ops are serial, §2.1).
  std::unordered_map<SiteId, std::unordered_map<ObjectId, std::uint64_t>> seq_;
  // Operation contents, keyed per object (contents travel as node payloads;
  // the registry mirrors what every host would store in its log).
  std::unordered_map<ObjectId, std::map<UpdateId, std::string>> contents_;
  Totals totals_;
  obs::Registry metrics_;
};

}  // namespace optrep::repl
