// Semantic-over-syntactic conflict detection (§1) on a replicated record
// store — the Bayou-class use case ([13], §2.1 "an object can be as large as
// a full-fledged relational database").
//
// §1's taxonomy: *syntactic* detection flags all causally-independent update
// pairs; *semantic-over-syntactic* detection uses the cheap syntactic signal
// as a trigger for a costlier application-level check that filters out
// false conflicts. §4 motivates SRV with exactly this pattern: "heavily
// updated objects can generate numerous syntactic-only conflicts (e.g., a
// replicated append-only log file)".
//
// Here the object is a keyed record store. A syntactic conflict (concurrent
// vectors, detected by COMPARE in O(1)) triggers the semantic detector,
// which inspects per-record provenance: two writes truly conflict only if
// they touched the same key, concurrently, with different values. Everything
// else merges silently. True conflicts resolve by policy (deterministic
// last-writer-wins, or flagging for manual repair).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/cost_model.h"
#include "common/ids.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/event_loop.h"
#include "vv/compare.h"
#include "vv/rotating_vector.h"
#include "vv/session.h"

namespace optrep::repl {

enum class SemanticPolicy : std::uint8_t {
  kLastWriterWins,  // deterministic resolution by largest writer id
  kFlag,            // keep local value, flag the record for manual repair
};

struct RecordCell {
  std::string value;
  UpdateId writer{};     // provenance: the update that wrote this value
  bool flagged{false};   // kFlag policy: unresolved true conflict

  friend bool operator==(const RecordCell&, const RecordCell&) = default;
};

struct RecordReplica {
  vv::RotatingVector vector;
  std::map<std::string, RecordCell> records;

  // Has this replica absorbed update `u`? Observation 2.1 in action: the
  // version vector is the compact representation of the predecessor set, so
  // provenance checks need no separate write log.
  bool has_seen(UpdateId u) const { return u.seq <= vector.value(u.site); }
};

class RecordSystem {
 public:
  struct Config {
    std::uint32_t n_sites{4};
    vv::VectorKind kind{vv::VectorKind::kSrv};
    SemanticPolicy policy{SemanticPolicy::kLastWriterWins};
    vv::TransferMode mode{vv::TransferMode::kIdeal};
    sim::NetConfig net{};
    CostModel cost{};
    // Optional structured tracing (see src/obs/trace.h).
    obs::Tracer* tracer{nullptr};
  };

  explicit RecordSystem(Config cfg) : cfg_(cfg) {}

  const Config& config() const { return cfg_; }

  // Create the store on `site` with one initial record.
  void create_object(SiteId site, ObjectId obj, const std::string& key,
                     std::string value);

  // Write one record on site's replica (an update in the §2.1 sense).
  void put(SiteId site, ObjectId obj, const std::string& key, std::string value);

  const RecordReplica& replica(SiteId site, ObjectId obj) const;
  bool has_replica(SiteId site, ObjectId obj) const;

  struct SyncResult {
    vv::Ordering relation{vv::Ordering::kEqual};
    bool syntactic_conflict{false};
    std::size_t semantic_conflicts{0};  // records that truly conflicted
    vv::SyncReport report;
  };

  // dst pulls from src: COMPARE, vector sync, then — on a syntactic
  // conflict — the semantic detector merges record-wise.
  SyncResult sync(SiteId dst, SiteId src, ObjectId obj);

  bool replicas_consistent(ObjectId obj) const;

  struct Totals {
    std::uint64_t sessions{0};
    std::uint64_t bits{0};
    std::uint64_t syntactic_conflicts{0};
    std::uint64_t syntactic_only{0};       // triggers the detector dismissed entirely
    std::uint64_t semantic_conflicts{0};   // truly conflicting record pairs
    std::uint64_t records_merged{0};       // silently merged on conflict syncs
    std::uint64_t flagged_records{0};      // kFlag policy only
    std::uint64_t bound_violations{0};     // sessions exceeding Table 2 (+COMPARE)
    // Fault injection (net.faults): session re-runs, sessions abandoned after
    // the retry budget (rolled back, redone by a later sync), injected
    // message faults, and the model-bit traffic attributable to recovery.
    std::uint64_t retries{0};
    std::uint64_t sync_failures{0};
    std::uint64_t faults_injected{0};
    std::uint64_t recovery_bits{0};
  };
  const Totals& totals() const { return totals_; }

  // Fleet metrics ("vv.*" from sessions, "records.*" counters, "sim.*"
  // gauges). Exported via obs::metrics_to_json.
  const obs::Registry& metrics() const { return metrics_; }
  obs::Registry& metrics() { return metrics_; }

 private:
  void publish_metrics();
  RecordReplica& replica_mut(SiteId site, ObjectId obj);
  void apply_put(RecordReplica& r, SiteId site, const std::string& key,
                 std::string value);
  // The semantic detector + resolver: merge src's records into dst, judging
  // per-record causality against the receiver's pre-join vector snapshot and
  // the sender's (unchanged) vector. Returns the count of true conflicts.
  std::size_t semantic_merge(RecordReplica& dst, const RecordReplica& src,
                             const vv::VersionVector& dst_pre);

  Config cfg_;
  sim::EventLoop loop_;
  std::unordered_map<SiteId, std::unordered_map<ObjectId, RecordReplica>> sites_;
  Totals totals_;
  obs::Registry metrics_;
};

}  // namespace optrep::repl
