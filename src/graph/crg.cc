#include "graph/crg.h"

#include <algorithm>

namespace optrep::graph {

ReplicationGraph::NodeIdx ReplicationGraph::add_root(SiteId site) {
  Node n;
  n.updater = site;
  n.update_value = 1;
  vv::VersionVector vec;
  vec.set(site, 1);
  return push(n, std::move(vec));
}

ReplicationGraph::NodeIdx ReplicationGraph::add_update(NodeIdx parent, SiteId site) {
  OPTREP_CHECK(parent < nodes_.size());
  Node n;
  n.lp = parent;
  n.updater = site;
  vv::VersionVector vec = vectors_[parent];
  vec.increment(site);
  n.update_value = vec.value(site);
  return push(n, std::move(vec));
}

ReplicationGraph::NodeIdx ReplicationGraph::add_merge(NodeIdx left, NodeIdx right) {
  OPTREP_CHECK(left < nodes_.size() && right < nodes_.size());
  OPTREP_CHECK_MSG(left != right, "merge of a node with itself");
  Node n;
  n.lp = left;
  n.rp = right;
  vv::VersionVector vec = vectors_[left];
  vec.join(vectors_[right]);
  return push(n, std::move(vec));
}

ReplicationGraph::NodeIdx ReplicationGraph::push(Node n, vv::VersionVector vec) {
  const auto idx = static_cast<NodeIdx>(nodes_.size());
  if (n.lp != kNone) {
    Node& p = nodes_[n.lp];
    p.children += 1;
    if (p.children == 1) only_child_[n.lp] = idx;
  }
  if (n.rp != kNone) {
    Node& p = nodes_[n.rp];
    p.children += 1;
    if (p.children == 1) only_child_[n.rp] = idx;
  }
  nodes_.push_back(n);
  only_child_.push_back(kNone);
  vectors_.push_back(std::move(vec));
  return idx;
}

// Does the edge parent→child coalesce? Both update nodes, child the only one.
bool ReplicationGraph::coalesces(NodeIdx parent, NodeIdx child) const {
  const Node& p = nodes_[parent];
  const Node& c = nodes_[child];
  return !p.is_merge() && !c.is_merge() && c.lp == parent && p.children == 1;
}

ReplicationGraph::ChainId ReplicationGraph::chain_of(NodeIdx i) const {
  OPTREP_CHECK(i < nodes_.size());
  if (nodes_[i].is_merge()) return kNone;
  // Walk to the youngest node of the chain.
  NodeIdx cur = i;
  while (nodes_[cur].children == 1) {
    const NodeIdx child = only_child_[cur];
    if (!coalesces(cur, child)) break;
    cur = child;
  }
  return cur;
}

std::vector<ReplicationGraph::SegElem> ReplicationGraph::prefixing_segment(
    ChainId chain) const {
  OPTREP_CHECK(chain < nodes_.size());
  OPTREP_CHECK_MSG(!nodes_[chain].is_merge(), "merge nodes have no prefixing segment");
  std::vector<SegElem> out;
  NodeIdx cur = chain;
  for (;;) {
    const Node& n = nodes_[cur];
    out.push_back(SegElem{n.updater, n.update_value});
    if (n.lp == kNone || !coalesces(n.lp, cur)) break;
    cur = n.lp;
  }
  return out;  // youngest update first, matching ≺ order
}

std::unordered_set<ReplicationGraph::ChainId> ReplicationGraph::pi(NodeIdx v) const {
  OPTREP_CHECK(v < nodes_.size());
  std::unordered_set<ChainId> chains;
  std::vector<NodeIdx> stack{v};
  std::vector<bool> seen(nodes_.size(), false);
  while (!stack.empty()) {
    const NodeIdx cur = stack.back();
    stack.pop_back();
    if (seen[cur]) continue;
    seen[cur] = true;
    const Node& n = nodes_[cur];
    if (!n.is_merge()) chains.insert(chain_of(cur));
    if (n.lp != kNone) stack.push_back(n.lp);
    if (n.rp != kNone) stack.push_back(n.rp);
  }
  return chains;
}

std::size_t ReplicationGraph::gamma_bound(NodeIdx a, NodeIdx b) const {
  const auto pa = pi(a);
  const auto pb = pi(b);
  std::size_t shared = 0;
  for (const ChainId c : pb) shared += pa.contains(c);
  return shared;
}

std::vector<std::vector<ReplicationGraph::SegElem>> ReplicationGraph::live_segments(
    NodeIdx v) const {
  const vv::VersionVector& vec = vectors_[v];
  std::vector<ChainId> chains(pi(v).begin(), pi(v).end());
  std::sort(chains.begin(), chains.end());
  std::vector<std::vector<SegElem>> out;
  for (const ChainId c : chains) {
    std::vector<SegElem> live;
    for (const SegElem& e : prefixing_segment(c)) {
      if (vec.value(e.site) == e.value) live.push_back(e);
    }
    if (!live.empty()) out.push_back(std::move(live));  // Φ: vanished segments
  }
  return out;
}

std::string ReplicationGraph::to_string(NodeIdx v) const {
  std::string out = "node " + std::to_string(v) + " " + vectors_[v].to_string();
  if (nodes_[v].is_merge()) out += " (merge)";
  return out;
}

}  // namespace optrep::graph
